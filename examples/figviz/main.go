// Figure visualisation: export the paper's constructions as Graphviz DOT
// files for inspection (render with `dot -Tpng fig2-spider.dot -o ...`).
// Writes into the directory given as the first argument (default ".").
// The unit-budget equilibrium highlights its unique cycle — the object
// Theorems 4.1/4.2 are about.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}

	// Figure 1: the Theorem 2.3 case-2 equilibrium.
	budgets := make([]int, 22)
	budgets[16] = 2
	for i := 17; i < 22; i++ {
		budgets[i] = 5
	}
	fig1, err := construct.Existence(budgets)
	if err != nil {
		log.Fatal(err)
	}
	labels := make([]string, 22)
	for i := range labels {
		labels[i] = fmt.Sprintf("v%d", i+1) // the paper's 1-based names
	}
	write(dir, "fig1-existence.dot", fig1, graph.DOTOptions{Name: "fig1", Labels: labels})

	// Figure 2: the spider.
	spider, _, err := construct.Spider(4)
	if err != nil {
		log.Fatal(err)
	}
	write(dir, "fig2-spider.dot", spider, graph.DOTOptions{Name: "spider", Highlight: []int{0}})

	// Theorem 3.4: the binary tree.
	tree, _, err := construct.PerfectBinaryTree(3)
	if err != nil {
		log.Fatal(err)
	}
	write(dir, "thm34-binarytree.dot", tree, graph.DOTOptions{Name: "binarytree", Highlight: []int{0}})

	// A unit-budget equilibrium reached by dynamics, unique cycle
	// highlighted.
	g := core.UniformGame(12, 1, core.MAX)
	res, err := dynamics.RunFromRandom(g, rand.New(rand.NewSource(6)), dynamics.Options{
		Responder:   core.ExactResponder(0),
		DetectLoops: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatal("unit dynamics did not converge")
	}
	cycle := graph.UniqueDirectedCycle(res.Final)
	write(dir, "unit-equilibrium.dot", res.Final,
		graph.DOTOptions{Name: "unitEq", Highlight: cycle})

	fmt.Println("wrote fig1-existence.dot, fig2-spider.dot, thm34-binarytree.dot, unit-equilibrium.dot")
	fmt.Printf("unit equilibrium: cycle length %d, diameter %d (Theorem 4.2: <= 7, < 8)\n",
		len(cycle), graph.Diameter(res.Final.Underlying()))
}

func write(dir, name string, d *graph.Digraph, opts graph.DOTOptions) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := d.WriteDOT(f, opts); err != nil {
		log.Fatal(err)
	}
}
