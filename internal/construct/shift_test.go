package construct

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestShiftGraphBasicStructure(t *testing.T) {
	sg, err := NewShiftGraph(4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sg.D.N() != 16 {
		t.Fatalf("n = %d, want 16", sg.D.N())
	}
	a := sg.D.Underlying()
	if !graph.IsConnected(a) {
		t.Fatal("shift graph disconnected")
	}
	if a.MaxDegree() > 8 {
		t.Fatalf("max degree = %d, want <= 2t = 8", a.MaxDegree())
	}
	if a.MinDegree() < 3 {
		t.Fatalf("min degree = %d, want >= t-1 = 3", a.MinDegree())
	}
	if len(sg.D.Braces()) != 0 {
		t.Fatalf("orientation created braces: %v", sg.D.Braces())
	}
	for _, b := range sg.Budgets() {
		if b < 1 {
			t.Fatal("orientation left a vertex with zero outdegree")
		}
	}
}

func TestShiftGraphAdjacencyDefinition(t *testing.T) {
	// Spot-check the shift adjacency at t=3, k=2 against the definition:
	// (x1,x2) ~ (y1,y2) iff x1 = y2 or y1 = x2.
	sg, err := NewShiftGraph(3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := sg.D.Underlying()
	id := func(x1, x2 int) int { return x1*3 + x2 }
	for x1 := 0; x1 < 3; x1++ {
		for x2 := 0; x2 < 3; x2++ {
			for y1 := 0; y1 < 3; y1++ {
				for y2 := 0; y2 < 3; y2++ {
					u, v := id(x1, x2), id(y1, y2)
					if u == v {
						continue
					}
					want := x1 == y2 || y1 == x2
					if a.HasEdge(u, v) != want {
						t.Fatalf("adjacency(%d%d,%d%d) = %v, want %v",
							x1, x2, y1, y2, a.HasEdge(u, v), want)
					}
				}
			}
		}
	}
}

func TestShiftGraphHypothesis(t *testing.T) {
	holds := func(tt, k int) bool {
		sg, err := NewShiftGraph(tt, k, 0)
		if err != nil {
			t.Fatalf("t=%d k=%d: %v", tt, k, err)
		}
		return sg.HypothesisHolds()
	}
	if !holds(3, 2) || !holds(4, 2) || !holds(5, 3) || !holds(9, 4) {
		t.Fatal("hypothesis should hold (2^k < 2t-1)")
	}
	if holds(2, 2) || holds(4, 3) || holds(8, 4) {
		t.Fatal("hypothesis should fail (2^k >= 2t-1)")
	}
}

func TestShiftGraphCertificate(t *testing.T) {
	for _, p := range []struct{ t, k int }{{3, 2}, {4, 2}, {5, 2}, {5, 3}, {6, 3}} {
		sg, err := NewShiftGraph(p.t, p.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		cert := sg.CertifyEquilibrium()
		if !cert.OK {
			t.Fatalf("t=%d k=%d: certificate failed: %+v", p.t, p.k, cert)
		}
		if cert.EccMin != int32(p.k) || cert.EccMax != int32(p.k) {
			t.Fatalf("t=%d k=%d: eccentricities [%d,%d], want all %d",
				p.t, p.k, cert.EccMin, cert.EccMax, p.k)
		}
	}
}

func TestShiftGraphExactNashSmall(t *testing.T) {
	// Exact verification of Lemma 5.2's conclusion where enumeration is
	// feasible: the orientation is a MAX Nash equilibrium.
	for _, p := range []struct{ t, k int }{{3, 2}, {4, 2}} {
		sg, err := NewShiftGraph(p.t, p.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		g := core.MustGame(sg.Budgets(), core.MAX)
		dev, err := g.VerifyNash(sg.D, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dev != nil {
			t.Fatalf("t=%d k=%d: shift orientation not a MAX equilibrium: %v", p.t, p.k, dev)
		}
	}
}

func TestShiftGraphSwapStableMedium(t *testing.T) {
	sg, err := NewShiftGraph(5, 3, 0) // n = 125
	if err != nil {
		t.Fatal(err)
	}
	g := core.MustGame(sg.Budgets(), core.MAX)
	dev, err := g.VerifySwapStable(sg.D)
	if err != nil {
		t.Fatal(err)
	}
	if dev != nil {
		t.Fatalf("shift(5,3) not swap-stable: %v", dev)
	}
}

func TestShiftGraphDiameterSqrtLogN(t *testing.T) {
	// Theorem 5.3's series t = 2^k: diameter k = sqrt(log2 n). k=3 gives
	// t=8, n=512.
	sg, err := NewShiftGraph(8, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	cert := sg.CertifyEquilibrium()
	if !cert.OK {
		t.Fatalf("t=2^k certificate failed: %+v", cert)
	}
	// log2(512) = 9, sqrt = 3 = k.
	if cert.EccMax != 3 {
		t.Fatalf("diameter = %d, want sqrt(log n) = 3", cert.EccMax)
	}
}

func TestShiftGraphParameterValidation(t *testing.T) {
	if _, err := NewShiftGraph(1, 2, 0); err == nil {
		t.Fatal("t=1 accepted")
	}
	if _, err := NewShiftGraph(4, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewShiftGraph(10, 10, 1000); err == nil {
		t.Fatal("vertex-count guard did not trip")
	}
}

func TestOrientWithPositiveOutdegrees(t *testing.T) {
	// Random connected graphs containing a cycle: orientation must cover
	// every edge exactly once and give everyone outdegree >= 1.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(10)
		// Random tree plus a few extra edges to guarantee a cycle.
		d := graph.RandomTree(n, rng)
		for e := 0; e < 2+rng.Intn(3); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				a := d.Underlying()
				if !a.HasEdge(u, v) {
					d.AddArc(u, v)
				}
			}
		}
		adj := d.Underlying()
		if adj.EdgeCount() < n {
			continue // all extras were duplicates; no guaranteed cycle
		}
		o, err := orientWithPositiveOutdegrees(adj)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(o.Braces()) != 0 {
			t.Fatalf("trial %d: braces created", trial)
		}
		if !equalUnd(o.Underlying(), adj) {
			t.Fatalf("trial %d: orientation changed the underlying graph", trial)
		}
		for v := 0; v < n; v++ {
			if o.OutDegree(v) < 1 {
				t.Fatalf("trial %d: vertex %d has outdegree 0", trial, v)
			}
		}
	}
}

func TestOrientRejectsForest(t *testing.T) {
	tree := graph.PathGraph(5).Underlying()
	if _, err := orientWithPositiveOutdegrees(tree); err == nil {
		t.Fatal("forest accepted")
	}
}

func TestOrientRejectsDisconnected(t *testing.T) {
	d := graph.NewDigraph(6)
	d.AddArc(0, 1)
	d.AddArc(1, 2)
	d.AddArc(2, 0)
	// vertices 3..5 isolated
	if _, err := orientWithPositiveOutdegrees(d.Underlying()); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func equalUnd(a, b graph.Und) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if len(a[v]) != len(b[v]) {
			return false
		}
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				return false
			}
		}
	}
	return true
}
