package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/pkg/bbncg/api"
)

// quotaServer spins a server with the given quota over a fresh manager.
func quotaServer(t *testing.T, qc QuotaConfig) (*httptest.Server, *Manager) {
	t.Helper()
	m := openManager(t, t.TempDir(), Options{})
	ts := httptest.NewServer(NewServer(m, Config{Quota: qc}))
	t.Cleanup(ts.Close)
	return ts, m
}

// get performs one request with an optional api key and returns the
// response (body decoded into an envelope when the status is an error).
func get(t *testing.T, ts *httptest.Server, method, path, key string) (*http.Response, api.ErrorEnvelope) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-Api-Key", key)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env api.ErrorEnvelope
	if resp.StatusCode >= 400 {
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("%s %s -> %d with unparseable envelope: %v", method, path, resp.StatusCode, err)
		}
	}
	return resp, env
}

func TestQuotaRateLimits(t *testing.T) {
	// RPS so low the bucket never refills mid-test; burst 2 admits
	// exactly two requests per client.
	ts, m := quotaServer(t, QuotaConfig{RPS: 0.001, Burst: 2})
	if _, err := m.Create(cycleRequest("q")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, _ := get(t, ts, "GET", "/v1/sessions/q", "alice")
		if resp.StatusCode != 200 {
			t.Fatalf("request %d within burst: %d", i, resp.StatusCode)
		}
	}
	resp, env := get(t, ts, "GET", "/v1/sessions/q", "alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: %d", resp.StatusCode)
	}
	if env.Err.Code != api.CodeRateLimited {
		t.Fatalf("over-burst code %q", env.Err.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Quotas are per client: a different key still has its burst.
	if resp, _ := get(t, ts, "GET", "/v1/sessions/q", "bob"); resp.StatusCode != 200 {
		t.Fatalf("fresh client throttled: %d", resp.StatusCode)
	}
	// Health, readiness and stats bypass quota — monitoring never
	// competes with traffic.
	for _, path := range []string{"/healthz", "/readyz", "/statsz"} {
		if resp, _ := get(t, ts, "GET", path, "alice"); resp.StatusCode != 200 {
			t.Fatalf("%s throttled: %d", path, resp.StatusCode)
		}
	}
	// The throttle shows up in the stats counter.
	var st api.StatsSnapshot
	if code := call(t, ts, "GET", "/statsz", nil, &st); code != 200 || st.Throttled == 0 {
		t.Fatalf("throttled counter: code %d snapshot %+v", code, st)
	}
}

func TestQuotaConcurrencyCap(t *testing.T) {
	ts, m := quotaServer(t, QuotaConfig{MaxInFlight: 1})
	if _, err := m.Create(cycleRequest("c")); err != nil {
		t.Fatal(err)
	}
	// Park one slow request in the only slot via the round delay
	// failpoint, then probe: same client must get 429
	// concurrency_limited, another client must pass.
	fault.Install(fault.NewSet(fault.Rule{
		Site: "serve.dynamics.round", Mode: fault.ModeDelay,
		Delay: 300 * time.Millisecond, Sched: fault.Always(),
	}))
	defer fault.Disarm()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/c/dynamics", strings.NewReader(`{"rounds":3}`))
		req.Header.Set("X-Api-Key", "alice")
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait until the slow request occupies the slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, env := get(t, ts, "GET", "/v1/sessions/c", "alice")
		if resp.StatusCode == http.StatusTooManyRequests {
			if env.Err.Code != api.CodeConcurrencyLimited {
				t.Fatalf("cap code %q", env.Err.Code)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never hit the concurrency cap")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if resp, _ := get(t, ts, "GET", "/v1/sessions/c", "bob"); resp.StatusCode != 200 {
		t.Fatalf("other client caught in alice's cap: %d", resp.StatusCode)
	}
	wg.Wait()
	// Slot released: alice is admitted again.
	if resp, _ := get(t, ts, "GET", "/v1/sessions/c", "alice"); resp.StatusCode != 200 {
		t.Fatalf("slot not released: %d", resp.StatusCode)
	}
}
