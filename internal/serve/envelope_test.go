package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/pkg/bbncg/api"
)

// TestErrorEnvelopeEverywhere: every failure shape — bad body, missing
// session, closed session, wrong method, unknown route, unknown
// version — is the one envelope with the right status and code.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	ts, m := newTestServer(t, Options{})
	if _, err := m.Create(cycleRequest("env")); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("env"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(cycleRequest("live")); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"unknown route", "GET", "/nope", "", 404, api.CodeNotFound},
		{"unknown session", "GET", "/v1/sessions/ghost", "", 404, api.CodeNotFound},
		{"unknown version", "GET", "/v9/sessions", "", 404, api.CodeUnsupportedVersion},
		{"wrong method", "PUT", "/v1/sessions/live", "", 405, api.CodeMethodNotAllowed},
		{"bad body", "POST", "/v1/sessions", `{"bogus":1}`, 400, api.CodeBadRequest},
		{"bad rewire", "POST", "/v1/sessions/live/rewire", `{"player":99,"strategy":[1]}`, 400, api.CodeBadRequest},
		{"bad query", "GET", "/v1/sessions/live/bestresponse?player=banana", "", 400, api.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if got := resp.Header.Get(api.VersionHeader); got != api.Version {
				t.Fatalf("version header %q", got)
			}
			var env api.ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("body is not the envelope: %v", err)
			}
			if env.Err.Code != tc.code {
				t.Fatalf("code %q, want %q", env.Err.Code, tc.code)
			}
			if env.Err.Message == "" {
				t.Fatal("envelope without a message")
			}
			if tc.status == 405 && resp.Header.Get("Allow") == "" {
				t.Fatal("405 without Allow")
			}
		})
	}

	// Operations on a tombstoned session are gone, not bad requests.
	// (Deleted ids 404 at the registry; gone needs a live handle, so
	// exercise it via a session deleted mid-request path: recreate and
	// delete leaves only 404 — the Gone mapping is covered by the unit
	// path below.)
	status, code := errToAPI(ErrSessionClosed)
	if status != http.StatusGone || code != api.CodeGone {
		t.Fatalf("ErrSessionClosed maps to %d/%s", status, code)
	}
}

func TestVersionNegotiation(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	var vi api.VersionInfo
	if code := call(t, ts, "GET", "/v1", nil, &vi); code != 200 {
		t.Fatalf("GET /v1: %d", code)
	}
	if vi.API != api.Version || len(vi.Versions) != 1 || vi.Versions[0] != api.Version {
		t.Fatalf("version info: %+v", vi)
	}
	resp, err := ts.Client().Get(ts.URL + "/v2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 || env.Err.Code != api.CodeUnsupportedVersion {
		t.Fatalf("GET /v2: %d %+v", resp.StatusCode, env)
	}
}

func TestReadyzDraining(t *testing.T) {
	m := openManager(t, t.TempDir(), Options{})
	sv := NewServer(m, Config{})
	ts := newTSFromServer(t, sv)

	var rd api.Ready
	if code := call(t, ts, "GET", "/readyz", nil, &rd); code != 200 || !rd.Ready || rd.Status != "ok" {
		t.Fatalf("readyz live: %d %+v", code, rd)
	}
	sv.SetDraining(true)
	if code := call(t, ts, "GET", "/readyz", nil, &rd); code != 503 || rd.Ready || rd.Status != "draining" {
		t.Fatalf("readyz draining: %d %+v", code, rd)
	}
	// Liveness is unaffected: the process is healthy while it drains.
	var h api.Health
	if code := call(t, ts, "GET", "/healthz", nil, &h); code != 200 || h.Status != "ok" {
		t.Fatalf("healthz while draining: %d %+v", code, h)
	}
	var st api.StatsSnapshot
	if code := call(t, ts, "GET", "/statsz", nil, &st); code != 200 || !st.Draining {
		t.Fatalf("statsz while draining: %d %+v", code, st)
	}
}

// newTSFromServer serves an already-constructed Server (tests that
// need the handle, e.g. to flip draining).
func newTSFromServer(t *testing.T, sv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(sv)
	t.Cleanup(ts.Close)
	return ts
}
