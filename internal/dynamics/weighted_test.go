package dynamics

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// A weighted run must be invariant across the whole engine knob matrix
// and across pooled vs plain responders: the weighted cache tier, the
// Δ-stepping fill, the stamps ladder and the SUM kernel select
// implementations, never trajectories.
func TestRunWeightedKnobMatrix(t *testing.T) {
	g := core.UniformGame(20, 2, core.SUM)
	wts := graph.NewWeights(20, 11, 7)
	start := RandomProfile(g, rand.New(rand.NewSource(3)))

	run := func(pooled bool) Result {
		opts := Options{
			Responder:        core.WeightedGreedyResponder(wts),
			Weights:          wts,
			MaxRounds:        40,
			RecordTrajectory: true,
		}
		if pooled {
			opts.Cached = core.GreedyDeviatorResponder
		}
		res, err := Run(g, start, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	same := func(a, b Result, label string) {
		t.Helper()
		if a.Moves != b.Moves || a.Rounds != b.Rounds || a.Converged != b.Converged ||
			!a.Final.Equal(b.Final) || fmt.Sprint(a.Trajectory) != fmt.Sprint(b.Trajectory) {
			t.Fatalf("%s diverged:\nref %+v\ngot %+v", label, a, b)
		}
	}

	ref := run(true)
	if !ref.Converged {
		t.Fatalf("weighted dynamics did not converge: %+v", ref)
	}
	same(ref, run(false), "plain responder")
	for _, wstep := range []string{"1", "0"} {
		for _, stamps := range []string{"1", "0"} {
			for _, kernel := range []string{"1", "0"} {
				t.Setenv("BBNCG_WSTEP", wstep)
				t.Setenv("BBNCG_STAMPS", stamps)
				t.Setenv("BBNCG_SUMKERNEL", kernel)
				same(ref, run(true), fmt.Sprintf("wstep=%s stamps=%s kernel=%s", wstep, stamps, kernel))
			}
		}
	}
	t.Setenv("BBNCG_INCREMENTAL", "0")
	same(ref, run(true), "incremental off")
}

// An externally supplied weighted pool must survive across runs the way
// run-owned pools survive across rounds, and the simultaneous engine
// must record the weighted trajectory metric.
func TestRunWeightedExternalPoolAndSimultaneous(t *testing.T) {
	g := core.UniformGame(16, 2, core.SUM)
	wts := graph.NewWeights(16, 4, 5)
	start := RandomProfile(g, rand.New(rand.NewSource(6)))
	pool := core.NewWeightedCachePool(g, 0, wts)
	defer pool.Close()
	opts := Options{
		Responder: core.WeightedGreedyResponder(wts),
		Cached:    core.GreedyDeviatorResponder,
		Weights:   wts,
		Pool:      pool,
		MaxRounds: 40,
	}
	var first Result
	for i := 0; i < 3; i++ {
		res, err := Run(g, start, opts)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
		} else if res.Moves != first.Moves || !res.Final.Equal(first.Final) {
			t.Fatalf("pooled weighted run %d diverged: %+v vs %+v", i, res, first)
		}
	}
	if st := pool.Stats(); st.Fills != int64(g.N()) {
		t.Fatalf("external weighted pool refilled across runs: %+v", st)
	}

	sOpts := opts
	sOpts.Pool = nil
	sOpts.RecordTrajectory = true
	sOpts.MaxRounds = 5
	res, err := RunSimultaneous(g, start, sOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) == 0 {
		t.Fatal("no weighted trajectory recorded")
	}
	if res.Trajectory[0] != g.WeightedSocialCost(res.Final, wts) && !res.Loop {
		// The last trajectory entry is the final profile's weighted
		// diameter unless the run broke on a loop.
		if res.Trajectory[len(res.Trajectory)-1] != g.WeightedSocialCost(res.Final, wts) {
			t.Fatalf("trajectory %v does not end at the weighted social cost of the final profile", res.Trajectory)
		}
	}
}
