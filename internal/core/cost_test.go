package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestVersionString(t *testing.T) {
	if SUM.String() != "SUM" || MAX.String() != "MAX" {
		t.Fatal("version names wrong")
	}
	if Version(9).String() == "" {
		t.Fatal("unknown version should still render")
	}
}

func TestNewGameValidation(t *testing.T) {
	if _, err := NewGame([]int{0, 1, 2}, SUM); err != nil {
		t.Fatalf("valid game rejected: %v", err)
	}
	if _, err := NewGame([]int{3, 0, 0}, SUM); err == nil {
		t.Fatal("budget >= n accepted")
	}
	if _, err := NewGame([]int{-1, 0}, MAX); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestGameAccessors(t *testing.T) {
	g := MustGame([]int{1, 2, 0, 1}, SUM)
	if g.N() != 4 || g.TotalBudget() != 4 || g.Cinf() != 16 {
		t.Fatalf("accessors wrong: n=%d total=%d cinf=%d", g.N(), g.TotalBudget(), g.Cinf())
	}
	u := UniformGame(5, 2, MAX)
	for _, b := range u.Budgets {
		if b != 2 {
			t.Fatal("UniformGame budgets wrong")
		}
	}
}

func TestCostSumOnPath(t *testing.T) {
	// Path 0-1-2-3: SUM cost of endpoint = 1+2+3 = 6, of inner = 1+1+2 = 4.
	d := graph.PathGraph(4)
	g := GameOf(d, SUM)
	if c := g.Cost(d, 0); c != 6 {
		t.Fatalf("cost(0) = %d, want 6", c)
	}
	if c := g.Cost(d, 1); c != 4 {
		t.Fatalf("cost(1) = %d, want 4", c)
	}
}

func TestCostMaxOnPath(t *testing.T) {
	d := graph.PathGraph(5)
	g := GameOf(d, MAX)
	if c := g.Cost(d, 0); c != 4 {
		t.Fatalf("MAX cost(0) = %d, want 4", c)
	}
	if c := g.Cost(d, 2); c != 2 {
		t.Fatalf("MAX cost(2) = %d, want 2", c)
	}
}

func TestCostDisconnectedSUM(t *testing.T) {
	// 4 vertices, one arc 0->1: components {0,1},{2},{3}; n^2 = 16.
	d := graph.NewDigraph(4)
	d.AddArc(0, 1)
	g := GameOf(d, SUM)
	// cost(0) = dist(0,1) + 2 * Cinf = 1 + 32.
	if c := g.Cost(d, 0); c != 33 {
		t.Fatalf("SUM cost(0) = %d, want 33", c)
	}
	// cost(2) = 3 unreachable vertices * 16.
	if c := g.Cost(d, 2); c != 48 {
		t.Fatalf("SUM cost(2) = %d, want 48", c)
	}
}

func TestCostDisconnectedMAX(t *testing.T) {
	d := graph.NewDigraph(4)
	d.AddArc(0, 1)
	g := GameOf(d, MAX)
	// kappa = 3; local diameter = n^2 = 16 for every vertex;
	// cost = 16 + 2*16 = 48.
	for u := 0; u < 4; u++ {
		if c := g.Cost(d, u); c != 48 {
			t.Fatalf("MAX cost(%d) = %d, want 48", u, c)
		}
	}
}

func TestAllCostsMatchesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	budgets := []int{2, 1, 0, 1, 2, 1}
	d := graph.RandomOutDigraph(budgets, rng)
	for _, v := range []Version{SUM, MAX} {
		g := MustGame(budgets, v)
		all := g.AllCosts(d)
		for u := range all {
			if got := g.Cost(d, u); got != all[u] {
				t.Fatalf("%v: AllCosts[%d] = %d, Cost = %d", v, u, all[u], got)
			}
		}
	}
}

func TestSocialCost(t *testing.T) {
	d := graph.PathGraph(5)
	g := GameOf(d, SUM)
	if sc := g.SocialCost(d); sc != 4 {
		t.Fatalf("social cost = %d, want 4", sc)
	}
	d2 := graph.NewDigraph(3)
	g2 := GameOf(d2, SUM)
	if sc := g2.SocialCost(d2); sc != 9 {
		t.Fatalf("disconnected social cost = %d, want Cinf=9", sc)
	}
}

func TestCheckRealization(t *testing.T) {
	d := graph.PathGraph(3)
	g := GameOf(d, SUM)
	if err := g.CheckRealization(d); err != nil {
		t.Fatalf("valid realization rejected: %v", err)
	}
	d.AddArc(2, 0)
	if err := g.CheckRealization(d); err == nil {
		t.Fatal("outdegree mismatch accepted")
	}
	if err := g.CheckRealization(graph.NewDigraph(5)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// Property: Deviator.Eval(S) equals the cost computed on an explicitly
// rewired graph, across random graphs, players and strategies, both
// versions. This is the correctness core of everything downstream.
func TestDeviatorMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(9)
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = rng.Intn(n)
		}
		d := graph.RandomOutDigraph(budgets, rng)
		u := rng.Intn(n)
		cand := make([]int, 0, n-1)
		for v := 0; v < n; v++ {
			if v != u {
				cand = append(cand, v)
			}
		}
		rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		newS := cand[:budgets[u]]

		for _, ver := range []Version{SUM, MAX} {
			g := MustGame(budgets, ver)
			dv := NewDeviator(g, d, u)
			got := dv.Eval(newS)
			h := d.Clone()
			h.SetOut(u, newS)
			want := g.Cost(h, u)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The deviator must also evaluate the *current* strategy to the current cost.
func TestDeviatorCurrentStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	budgets := []int{1, 2, 1, 0, 2}
	d := graph.RandomOutDigraph(budgets, rng)
	for _, ver := range []Version{SUM, MAX} {
		g := MustGame(budgets, ver)
		for u := 0; u < g.N(); u++ {
			dv := NewDeviator(g, d, u)
			if got, want := dv.Eval(d.Out(u)), g.Cost(d, u); got != want {
				t.Fatalf("%v vertex %d: Eval(current) = %d, Cost = %d", ver, u, got, want)
			}
		}
	}
}
