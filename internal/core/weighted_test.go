package core

import (
	"testing"

	"repro/internal/graph"
)

func TestWeightedCostUnitWeightsMatchesSUM(t *testing.T) {
	d := graph.PathGraph(5)
	g := GameOf(d, SUM)
	wg := NewWeighted(d.Clone())
	for u := 0; u < 5; u++ {
		if got, want := wg.Cost(u), g.Cost(d, u); got != want {
			t.Fatalf("unit-weight cost(%d) = %d, SUM cost = %d", u, got, want)
		}
	}
}

func TestPoorAndRichLeaves(t *testing.T) {
	// 0 -> 1 (1 is poor: degree 1, owns nothing), 2 -> 0 (2 is rich).
	d := graph.NewDigraph(3)
	d.AddArc(0, 1)
	d.AddArc(2, 0)
	wg := NewWeighted(d)
	poor := wg.PoorLeaves()
	rich := wg.RichLeaves()
	if len(poor) != 1 || poor[0] != 1 {
		t.Fatalf("poor leaves = %v, want [1]", poor)
	}
	if len(rich) != 1 || rich[0] != 2 {
		t.Fatalf("rich leaves = %v, want [2]", rich)
	}
}

func TestFoldPoorLeaf(t *testing.T) {
	d := graph.NewDigraph(3)
	d.AddArc(0, 1)
	d.AddArc(0, 2)
	wg := NewWeighted(d)
	if err := wg.FoldPoorLeaf(1); err != nil {
		t.Fatal(err)
	}
	if wg.W[0] != 2 || wg.W[1] != 0 {
		t.Fatalf("weights after fold: %v", wg.W)
	}
	if d.HasArc(0, 1) {
		t.Fatal("arc to folded leaf not removed")
	}
	if wg.AliveCount() != 2 {
		t.Fatalf("alive = %d, want 2", wg.AliveCount())
	}
	if wg.TotalWeight() != 3 {
		t.Fatalf("total weight changed: %d", wg.TotalWeight())
	}
}

func TestFoldPoorLeafErrors(t *testing.T) {
	d := graph.NewDigraph(3)
	d.AddArc(0, 1)
	d.AddArc(1, 2)
	wg := NewWeighted(d)
	if err := wg.FoldPoorLeaf(1); err == nil {
		t.Fatal("vertex owning arcs folded as poor leaf")
	}
	if err := wg.FoldPoorLeaf(2); err != nil {
		t.Fatalf("genuine poor leaf rejected: %v", err)
	}
	if err := wg.FoldPoorLeaf(2); err == nil {
		t.Fatal("double fold accepted")
	}
}

func TestFoldAllPoorLeavesStar(t *testing.T) {
	// Star centre owning all arcs: every leaf is poor; all fold into the
	// centre, which ends with weight n.
	d := graph.StarGraph(6)
	wg := NewWeighted(d)
	folds := wg.FoldAllPoorLeaves()
	if folds != 5 {
		t.Fatalf("folds = %d, want 5", folds)
	}
	if wg.W[0] != 6 || wg.AliveCount() != 1 {
		t.Fatalf("after folding star: W=%v", wg.W)
	}
}

func TestFoldAllPoorLeavesCascade(t *testing.T) {
	// Directed path 0->1->2->3: only 3 is poor; folding it makes 2 a
	// leaf but 2 owns an arc... after removing 2->3, vertex 2 owns
	// nothing and has degree 1 (edge 1-2): poor. Cascades to the root.
	d := graph.PathGraph(4)
	wg := NewWeighted(d)
	folds := wg.FoldAllPoorLeaves()
	if folds != 3 {
		t.Fatalf("folds = %d, want 3", folds)
	}
	if wg.W[0] != 4 || wg.AliveCount() != 1 {
		t.Fatalf("cascade fold wrong: W=%v", wg.W)
	}
}

func TestFoldPreservesTotalWeight(t *testing.T) {
	d := graph.StarGraph(8)
	wg := NewWeighted(d)
	before := wg.TotalWeight()
	wg.FoldAllPoorLeaves()
	if wg.TotalWeight() != before {
		t.Fatalf("total weight changed %d -> %d", before, wg.TotalWeight())
	}
}

func TestWeightedCostSkipsFolded(t *testing.T) {
	d := graph.NewDigraph(4)
	d.AddArc(0, 1)
	d.AddArc(0, 2)
	d.AddArc(0, 3)
	wg := NewWeighted(d)
	if err := wg.FoldPoorLeaf(3); err != nil {
		t.Fatal(err)
	}
	// Cost of 1: dist to 0 (1) * w0=2... wait w0 = 1+1 = 2, dist 1;
	// dist to 2 = 2 * w2=1. Folded 3 excluded.
	if got := wg.Cost(1); got != 2*1+1*2 {
		t.Fatalf("cost(1) = %d, want 4", got)
	}
}

func TestWeakDeviationNilOnStar(t *testing.T) {
	wg := NewWeighted(graph.StarGraph(5))
	if dev := wg.WeakDeviation(); dev != nil {
		t.Fatalf("star has improving weighted swap: %v", dev)
	}
}

func TestWeakDeviationFindsPathImprovement(t *testing.T) {
	wg := NewWeighted(graph.PathGraph(6))
	dev := wg.WeakDeviation()
	if dev == nil {
		t.Fatal("long path should admit an improving swap")
	}
	if dev.NewCost >= dev.OldCost {
		t.Fatalf("witness does not improve: %v", dev)
	}
}

func TestWeakDeviationRespectsFoldedVertices(t *testing.T) {
	// After folding, swaps may not target dead vertices.
	d := graph.PathGraph(5)
	wg := NewWeighted(d)
	wg.FoldAllPoorLeaves()
	if dev := wg.WeakDeviation(); dev != nil {
		for _, v := range dev.NewStrategy {
			if !wg.Alive(v) {
				t.Fatalf("deviation targets folded vertex: %v", dev)
			}
		}
	}
}
