package graph

import (
	"math/rand"
	"testing"
)

// scalarEccReach is the reference the bitset kernels must match: over
// the distance rows of csr, the covering radius (max over covered w of
// the min distance from the anchor set) and covered-vertex count of an
// anchor set.
func scalarEccReach(rows []int32, n int, anchors []int) (ecc int32, covered int) {
	for w := 0; w < n; w++ {
		m := InfDist
		for _, v := range anchors {
			if r := rows[v*n+w]; r < m {
				m = r
			}
		}
		if m < InfDist {
			covered++
			if m > ecc {
				ecc = m
			}
		}
	}
	return ecc, covered
}

func TestLevelUnionMatchesScalarMinMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(90) // cross the 64-vertex word boundary often
		d := randomDigraphFor(n, 2, rng)
		c := NewCSR(d.Underlying())
		rows := c.DistanceRows()
		lc := NewLevelCache(n)
		for s := 0; s < n; s++ {
			lc.SetRow(s, rows[s*n:(s+1)*n])
		}
		lu := NewLevelUnion(n)
		var anchors []int
		for k := 0; k < 4 && k < n; k++ {
			// First probe the candidate without merging, then merge it.
			v := rng.Intn(n)
			gotEcc, gotCov := lu.AggregateWith(lc, v)
			wantEcc, wantCov := scalarEccReach(rows, n, append(append([]int(nil), anchors...), v))
			if gotEcc != wantEcc || gotCov != wantCov {
				t.Fatalf("n=%d anchors=%v +%d: AggregateWith=(%d,%d), scalar=(%d,%d)",
					n, anchors, v, gotEcc, gotCov, wantEcc, wantCov)
			}
			lu.Merge(lc, v)
			anchors = append(anchors, v)
			gotEcc, gotCov = lu.Aggregate()
			if gotEcc != wantEcc || gotCov != wantCov {
				t.Fatalf("n=%d anchors=%v: Aggregate=(%d,%d), scalar=(%d,%d)",
					n, anchors, gotEcc, gotCov, wantEcc, wantCov)
			}
		}
	}
}

func TestLevelUnionCopyIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	d := randomDigraphFor(20, 2, rng)
	c := NewCSR(d.Underlying())
	rows := c.DistanceRows()
	lc := NewLevelCache(20)
	for s := 0; s < 20; s++ {
		lc.SetRow(s, rows[s*20:(s+1)*20])
	}
	base := NewLevelUnion(20)
	base.Merge(lc, 3)
	e0, c0 := base.Aggregate()
	cp := NewLevelUnion(20)
	cp.CopyFrom(base)
	cp.Merge(lc, 7)
	if e, c := base.Aggregate(); e != e0 || c != c0 {
		t.Fatalf("merging into a copy mutated the original: (%d,%d) -> (%d,%d)", e0, c0, e, c)
	}
}

func TestAggregateBFSMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(100)
		d := randomDigraphFor(n, 2, rng)
		a := d.Underlying()
		ecc, sums, reached := AggregateBFS(a)
		s := NewScratch(n)
		for src := 0; src < n; src++ {
			r := s.BFS(a, src)
			if ecc[src] != r.Ecc || sums[src] != r.Sum || int(reached[src]) != r.Reached {
				t.Fatalf("n=%d src=%d: batched (ecc=%d,sum=%d,reached=%d), scalar (%d,%d,%d)",
					n, src, ecc[src], sums[src], reached[src], r.Ecc, r.Sum, r.Reached)
			}
		}
	}
}
