// Package client is the typed Go client of the bbncg session service:
// one method per /v1 route, speaking exactly the pkg/bbncg/api wire
// types the server marshals. Errors come back as *api.Error (the
// decoded envelope, decorated with the HTTP status and Retry-After),
// so callers branch on api codes instead of parsing bodies:
//
//	c := client.New("http://127.0.0.1:8080")
//	info, err := c.CreateSession(ctx, api.CreateRequest{ID: "g", N: 6, Arcs: arcs})
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == api.CodeRateLimited { ... }
//
// StreamDynamics (stream.go) consumes the SSE variant of the dynamics
// route, surfacing each round to a callback and handling reconnect
// cursors via the round numbers it reports.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/pkg/bbncg/api"
)

// Client talks to one bbncg serve instance.
type Client struct {
	base string
	hc   *http.Client
	key  string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithAPIKey sends key as X-Api-Key on every request — the quota
// principal when the server enforces per-client limits.
func WithAPIKey(key string) Option { return func(c *Client) { c.key = key } }

// New builds a client for the server at base (e.g.
// "http://127.0.0.1:8080"; a bare host:port gets http://).
func New(base string, opts ...Option) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do runs one JSON round-trip: marshal in (when non-nil), decode the
// 2xx body into out (when non-nil), decode everything else as the
// error envelope.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.key != "" {
		req.Header.Set("X-Api-Key", c.key)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// decodeError turns a non-2xx response into *api.Error, preserving the
// envelope code and decorating it with the transport facts.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Err.Code == "" {
		env.Err = api.Error{
			Code:    api.CodeInternal,
			Message: fmt.Sprintf("http %d: %s", resp.StatusCode, strings.TrimSpace(string(raw))),
		}
	}
	e := env.Err
	e.Status = resp.StatusCode
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return &e
}

// Versions negotiates: GET /v1.
func (c *Client) Versions(ctx context.Context) (api.VersionInfo, error) {
	var vi api.VersionInfo
	err := c.do(ctx, "GET", "/v1", nil, &vi)
	return vi, err
}

// Health reports liveness: GET /healthz.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.do(ctx, "GET", "/healthz", nil, &h)
	return h, err
}

// Ready reports readiness: GET /readyz. A draining server answers 503,
// which surfaces as *api.Error with Status 503.
func (c *Client) Ready(ctx context.Context) (api.Ready, error) {
	var rd api.Ready
	err := c.do(ctx, "GET", "/readyz", nil, &rd)
	return rd, err
}

// Stats snapshots every session's counters plus the server gauges:
// GET /statsz.
func (c *Client) Stats(ctx context.Context) (api.StatsSnapshot, error) {
	var st api.StatsSnapshot
	err := c.do(ctx, "GET", "/statsz", nil, &st)
	return st, err
}

// CreateSession creates a session: POST /v1/sessions.
func (c *Client) CreateSession(ctx context.Context, req api.CreateRequest) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.do(ctx, "POST", "/v1/sessions", req, &info)
	return info, err
}

// ListSessions lists every live session's stats: GET /v1/sessions.
func (c *Client) ListSessions(ctx context.Context) ([]api.SessionStats, error) {
	var ss []api.SessionStats
	err := c.do(ctx, "GET", "/v1/sessions", nil, &ss)
	return ss, err
}

// Session fetches one session's metadata: GET /v1/sessions/{id};
// withArcs includes the full profile.
func (c *Client) Session(ctx context.Context, id string, withArcs bool) (api.SessionInfo, error) {
	path := "/v1/sessions/" + url.PathEscape(id)
	if withArcs {
		path += "?arcs=1"
	}
	var info api.SessionInfo
	err := c.do(ctx, "GET", path, nil, &info)
	return info, err
}

// DeleteSession tombstones a session: DELETE /v1/sessions/{id}.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, "DELETE", "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Rewire posts one strategy change: POST /v1/sessions/{id}/rewire.
func (c *Client) Rewire(ctx context.Context, id string, req api.RewireRequest) (api.RewireResult, error) {
	var res api.RewireResult
	err := c.do(ctx, "POST", "/v1/sessions/"+url.PathEscape(id)+"/rewire", req, &res)
	return res, err
}

// BestResponse queries one player's best response:
// GET /v1/sessions/{id}/bestresponse. responder "" and exactCap 0 take
// the session defaults.
func (c *Client) BestResponse(ctx context.Context, id string, player int, responder string, exactCap int64) (api.BestResponseResult, error) {
	q := url.Values{"player": {strconv.Itoa(player)}}
	if responder != "" {
		q.Set("responder", responder)
	}
	if exactCap > 0 {
		q.Set("exactCap", strconv.FormatInt(exactCap, 10))
	}
	var br api.BestResponseResult
	err := c.do(ctx, "GET", "/v1/sessions/"+url.PathEscape(id)+"/bestresponse?"+q.Encode(), nil, &br)
	return br, err
}

// Equilibrium checks stability: GET /v1/sessions/{id}/equilibrium.
func (c *Client) Equilibrium(ctx context.Context, id, responder string, exactCap int64) (api.EquilibriumResult, error) {
	q := url.Values{}
	if responder != "" {
		q.Set("responder", responder)
	}
	if exactCap > 0 {
		q.Set("exactCap", strconv.FormatInt(exactCap, 10))
	}
	path := "/v1/sessions/" + url.PathEscape(id) + "/equilibrium"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var eq api.EquilibriumResult
	err := c.do(ctx, "GET", path, nil, &eq)
	return eq, err
}

// Welfare reports social cost and per-player costs:
// GET /v1/sessions/{id}/welfare.
func (c *Client) Welfare(ctx context.Context, id string) (api.WelfareResult, error) {
	var wf api.WelfareResult
	err := c.do(ctx, "GET", "/v1/sessions/"+url.PathEscape(id)+"/welfare", nil, &wf)
	return wf, err
}

// Dynamics runs up to rounds of best-response dynamics, buffered:
// POST /v1/sessions/{id}/dynamics. The result carries the full
// per-round trace; use StreamDynamics to consume it incrementally.
func (c *Client) Dynamics(ctx context.Context, id string, rounds int) (api.DynamicsResult, error) {
	var rep api.DynamicsResult
	err := c.do(ctx, "POST", "/v1/sessions/"+url.PathEscape(id)+"/dynamics", api.DynamicsRequest{Rounds: rounds}, &rep)
	return rep, err
}

// Batch executes ops in one request: POST /v1/batch.
func (c *Client) Batch(ctx context.Context, ops []api.BatchOp) (api.BatchResult, error) {
	var res api.BatchResult
	err := c.do(ctx, "POST", "/v1/batch", api.BatchRequest{Ops: ops}, &res)
	return res, err
}
