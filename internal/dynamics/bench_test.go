package dynamics

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// BenchmarkDynamicsRoundIncremental is the headline A/B of this layer:
// one full greedy dynamics round with the incremental path (round-level
// cache pool + delta-BFS repair + bitset MAX kernel) against the PR 1
// cached path (refill-per-mover, BBNCG_INCREMENTAL=0). The measured op
// is one round over a profile the dynamics have settled into — the
// regime that dominates converging runs, and exactly the shape ISSUE 4
// targets: the refill path rebuilds every player's dist_{G-u} from
// scratch although (almost) nothing moved, the incremental path serves
// every player from its repaired pool entry. The n=128 case doubles as
// a CI regression guard by asserting both modes produce identical
// results before timing.
func BenchmarkDynamicsRoundIncremental(b *testing.B) {
	for _, cfg := range []struct {
		n    int
		ver  core.Version
		pool int64 // pool budget bytes; 0 = DefaultPoolBudget
		tag  string
	}{
		{128, core.MAX, 0, ""},
		{512, core.MAX, 0, ""},
		{512, core.SUM, 0, ""},
		// At n=1024 the default 1 GiB budget pools ~244 of 1024 players;
		// the fullpool variant (-poolmb 5120 equivalent) pools everyone —
		// ~4.3 GiB resident, so it only runs when explicitly requested
		// (BENCH_FULLPOOL=1), keeping the CI bench smoke small-memory.
		{1024, core.MAX, 0, ""},
		{1024, core.MAX, 5 << 30, "-fullpool"},
	} {
		cfg := cfg
		// One nested level per config, so -bench filters (e.g. the CI
		// n=128 gate) prune the expensive settle runs of the other sizes.
		b.Run(fmt.Sprintf("n=%d/%v%s", cfg.n, cfg.ver, cfg.tag), func(b *testing.B) {
			if cfg.pool > 0 && os.Getenv("BENCH_FULLPOOL") == "" {
				b.Skip("set BENCH_FULLPOOL=1 to run the 4.3 GiB full-pool variant")
			}
			if cfg.n >= 512 && os.Getenv("BENCH_LARGE") == "" {
				// Keep the generic `-bench . -benchtime=1x` CI smoke a
				// smoke: the large configs cost ~40s of settle/warm-up and
				// a multi-hundred-MB pool per run (BENCH_2.json runs them
				// with BENCH_LARGE=1 locally).
				b.Skip("set BENCH_LARGE=1 to run the n>=512 configs")
			}
			g := core.UniformGame(cfg.n, 2, cfg.ver)
			start := RandomProfile(g, rand.New(rand.NewSource(9)))
			// Settle: a few rounds of (incremental) dynamics move the
			// profile into the converging regime; the settled graph is the
			// bench input.
			pre, err := Run(g, start, Options{
				Responder: core.GreedyResponder, Cached: core.GreedyDeviatorResponder, MaxRounds: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			settled := pre.Final
			opts := Options{
				Responder: core.GreedyResponder,
				Cached:    core.GreedyDeviatorResponder,
				MaxRounds: 1,
			}
			if cfg.n == 128 {
				assertModesAgree(b, g, settled, opts)
			}
			for _, mode := range []struct{ name, env string }{
				{"incremental", "1"},
				{"refill", "0"},
			} {
				if cfg.tag != "" && mode.env == "0" {
					continue // the refill baseline does not depend on the pool budget
				}
				b.Run(mode.name, func(b *testing.B) {
					b.Setenv("BBNCG_INCREMENTAL", mode.env)
					// Pin the stamp fast paths off: this benchmark measures
					// the repair machinery itself, which stamped settled
					// rounds would skip entirely (BenchmarkDynamicsRoundStamps
					// is that A/B).
					b.Setenv("BBNCG_STAMPS", "0")
					runOpts := opts
					if mode.env == "1" {
						// The pool is the round-level state under test: share
						// it across the measured rounds the way one long Run
						// shares it across its rounds. The untimed warm-up
						// rounds fill the matrices and pass the stability
						// hysteresis that gates the bitset MAX kernel.
						runOpts.Pool = core.NewCachePool(g, cfg.pool)
						defer runOpts.Pool.Close()
						for i := 0; i < 3; i++ {
							if _, err := Run(g, settled, runOpts); err != nil {
								b.Fatal(err)
							}
						}
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := Run(g, settled, runOpts)
						if err != nil {
							b.Fatal(err)
						}
						if res.Rounds == 0 {
							b.Fatal("no rounds executed")
						}
					}
				})
			}
		})
	}
}

// BenchmarkDynamicsRoundSUM is the headline A/B of the SUM evaluation
// kernel (ISSUE 5): one full greedy dynamics round over a settled SUM
// profile, with the incremental pool on in both modes, comparing the
// blocked min-merge + candidate-pruning kernel (BBNCG_SUMKERNEL=1,
// the default) against the scalar min-merge paths it replaced
// (BBNCG_SUMKERNEL=0). The settled round is the regime the kernel
// targets: the pool already removed the matrix refills, so the scalar
// O(n) min-merge per candidate is what dominates — exactly the cost the
// pruning bounds cut. The n=128 case doubles as a CI regression guard
// by asserting both modes produce identical dynamics before timing.
func BenchmarkDynamicsRoundSUM(b *testing.B) {
	for _, cfg := range []struct{ n int }{{128}, {512}} {
		cfg := cfg
		b.Run(fmt.Sprintf("n=%d", cfg.n), func(b *testing.B) {
			if cfg.n >= 512 && os.Getenv("BENCH_LARGE") == "" {
				b.Skip("set BENCH_LARGE=1 to run the n>=512 configs")
			}
			g := core.UniformGame(cfg.n, 2, core.SUM)
			start := RandomProfile(g, rand.New(rand.NewSource(9)))
			pre, err := Run(g, start, Options{
				Responder: core.GreedyResponder, Cached: core.GreedyDeviatorResponder, MaxRounds: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			settled := pre.Final
			opts := Options{
				Responder: core.GreedyResponder,
				Cached:    core.GreedyDeviatorResponder,
				MaxRounds: 1,
			}
			if cfg.n == 128 {
				assertSumModesAgree(b, g, settled, opts)
			}
			for _, mode := range []struct{ name, env string }{
				{"kernel", "1"},
				{"scalar", "0"},
			} {
				b.Run(mode.name, func(b *testing.B) {
					b.Setenv("BBNCG_SUMKERNEL", mode.env)
					// Pin the stamp fast paths off: stamped settled rounds
					// skip the candidate scans this benchmark measures.
					b.Setenv("BBNCG_STAMPS", "0")
					runOpts := opts
					// The pool is shared across measured rounds the way one
					// long run shares it across its rounds; the untimed
					// warm-up rounds fill the matrices (and, in kernel mode,
					// the column-min pruning bounds).
					runOpts.Pool = core.NewCachePool(g, 0)
					defer runOpts.Pool.Close()
					for i := 0; i < 3; i++ {
						if _, err := Run(g, settled, runOpts); err != nil {
							b.Fatal(err)
						}
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := Run(g, settled, runOpts)
						if err != nil {
							b.Fatal(err)
						}
						if res.Rounds == 0 {
							b.Fatal("no rounds executed")
						}
					}
				})
			}
		})
	}
}

// assertSumModesAgree fails the benchmark if the blocked SUM kernel and
// the scalar min-merge paths diverge — the CI SUM bench gate runs this
// at n=128 before timing, so a pruning-soundness regression fails fast
// instead of surfacing as a golden drift. Each mode runs several rounds
// over a pool shared across runs, exactly like the timed loops: the
// pruning machinery only engages for pool-owned Deviators past the
// stability hysteresis, so a single cold run would compare two copies
// of the trivial path and assert nothing about the bounds or the memo.
// Every run of the sequence is compared pairwise, covering the cold
// (fill), warming (bounds built) and warm (memo-served) rounds.
func assertSumModesAgree(b *testing.B, g *core.Game, start *graph.Digraph, opts Options) {
	b.Helper()
	runs := func(env string) []Result {
		b.Setenv("BBNCG_SUMKERNEL", env)
		b.Setenv("BBNCG_STAMPS", "0") // compare the kernels, not the stamp skip
		o := opts
		o.Pool = core.NewCachePool(g, 0)
		defer o.Pool.Close()
		var out []Result
		for i := 0; i < 4; i++ {
			res, err := Run(g, start, o)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}
	kernel := runs("1")
	scalar := runs("0")
	for i := range kernel {
		if kernel[i].Moves != scalar[i].Moves || kernel[i].Rounds != scalar[i].Rounds ||
			!kernel[i].Final.Equal(scalar[i].Final) {
			b.Fatalf("SUM kernel and scalar dynamics diverge on run %d:\nkernel %+v\nscalar %+v",
				i, kernel[i], scalar[i])
		}
	}
}

// BenchmarkDynamicsRoundStamps is the headline A/B of the settled-round
// ladder (ISSUE 7): one full greedy dynamics round over a *converged*
// profile, with the incremental pool on in both modes, comparing
// generation-stamped resync (BBNCG_STAMPS=1, the default: anchor
// comparisons, journal delta repair, round memo) against the diff-always
// path it replaced (BBNCG_STAMPS=0: every acquisition rebuilds
// UnderlyingWithout and diffs it). The converged round is the regime the
// stamps target — nothing moves, so the diff path's per-player O(n+m)
// resync is pure overhead and the stamped round is O(movers) = O(1).
// The n=128 case doubles as a CI regression guard: both modes must
// produce identical dynamics, and a stamped settled round must report
// zero resyncs and zero delta repairs for untouched players.
func BenchmarkDynamicsRoundStamps(b *testing.B) {
	for _, cfg := range []struct{ n int }{{128}, {512}} {
		cfg := cfg
		b.Run(fmt.Sprintf("n=%d", cfg.n), func(b *testing.B) {
			if cfg.n >= 512 && os.Getenv("BENCH_LARGE") == "" {
				b.Skip("set BENCH_LARGE=1 to run the n>=512 configs")
			}
			g := core.UniformGame(cfg.n, 2, core.SUM)
			start := RandomProfile(g, rand.New(rand.NewSource(9)))
			// Settle to full convergence — the measured round must contain
			// no movers, or the zero-resync invariant below would be vacuous.
			pre, err := Run(g, start, Options{
				Responder: core.GreedyResponder, Cached: core.GreedyDeviatorResponder, MaxRounds: 600,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !pre.Converged {
				b.Fatal("dynamics did not converge within the settle budget")
			}
			settled := pre.Final
			opts := Options{
				Responder: core.GreedyResponder,
				Cached:    core.GreedyDeviatorResponder,
				MaxRounds: 1,
			}
			if cfg.n == 128 {
				assertStampModesAgree(b, g, settled, opts)
			}
			for _, mode := range []struct{ name, env string }{
				{"stamps", "1"},
				{"diff", "0"},
			} {
				b.Run(mode.name, func(b *testing.B) {
					b.Setenv("BBNCG_STAMPS", mode.env)
					runOpts := opts
					runOpts.Pool = core.NewCachePool(g, 0)
					defer runOpts.Pool.Close()
					for i := 0; i < 3; i++ {
						if _, err := Run(g, settled, runOpts); err != nil {
							b.Fatal(err)
						}
					}
					if mode.env == "1" {
						// The O(movers) invariant, gated in CI at n=128: a
						// warm settled round resyncs no untouched player.
						before := runOpts.Pool.Stats()
						if _, err := Run(g, settled, runOpts); err != nil {
							b.Fatal(err)
						}
						after := runOpts.Pool.Stats()
						if d := after.Resyncs - before.Resyncs; d != 0 {
							b.Fatalf("settled round ran %d resyncs, want 0 (stats %+v)", d, after)
						}
						if d := after.DeltaRepairs - before.DeltaRepairs; d != 0 {
							b.Fatalf("settled round ran %d delta repairs, want 0", d)
						}
						if after.StampSkips+after.MemoHits <= before.StampSkips+before.MemoHits {
							b.Fatalf("settled round exercised no stamp fast path (stats %+v)", after)
						}
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := Run(g, settled, runOpts)
						if err != nil {
							b.Fatal(err)
						}
						if res.Rounds == 0 {
							b.Fatal("no rounds executed")
						}
					}
				})
			}
		})
	}
}

// assertStampModesAgree fails the benchmark if the stamped and
// diff-always paths diverge, comparing several consecutive runs over
// shared pools pairwise — cold, warming and warm (memo-served) rounds —
// exactly like the timed loops.
func assertStampModesAgree(b *testing.B, g *core.Game, start *graph.Digraph, opts Options) {
	b.Helper()
	runs := func(env string) []Result {
		b.Setenv("BBNCG_STAMPS", env)
		o := opts
		o.Pool = core.NewCachePool(g, 0)
		defer o.Pool.Close()
		var out []Result
		for i := 0; i < 4; i++ {
			res, err := Run(g, start, o)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}
	stamped := runs("1")
	diffed := runs("0")
	for i := range stamped {
		if stamped[i].Moves != diffed[i].Moves || stamped[i].Rounds != diffed[i].Rounds ||
			!stamped[i].Final.Equal(diffed[i].Final) {
			b.Fatalf("stamped and diff-always dynamics diverge on run %d:\nstamps %+v\ndiff   %+v",
				i, stamped[i], diffed[i])
		}
	}
}

// BenchmarkDynamicsRoundWeighted is the headline A/B of the weighted
// distance kernel (ISSUE 9): one full greedy dynamics round over a
// settled *arc-weighted* SUM profile, comparing the weighted cache tier
// (Δ-stepping fill, incremental weighted repair, stamps, SUM kernel —
// all defaults) against the scalar reference it replaced (per-candidate
// Dijkstra: BBNCG_WSTEP=0 forces scalar fills/refills, and with stamps
// and the SUM kernel off the pool diffs and min-merges the historical
// way). The settled round is the regime the tier targets: the reference
// path re-runs Dijkstra work the warm weighted rows already hold. The
// n=128 case doubles as a CI regression guard: both modes must produce
// identical dynamics (stepping ≡ Dijkstra, end to end), and a stamped
// settled weighted round must report zero resyncs — weight staleness
// rides the generation counter, never the topology ladder.
func BenchmarkDynamicsRoundWeighted(b *testing.B) {
	for _, cfg := range []struct{ n int }{{128}, {512}} {
		cfg := cfg
		b.Run(fmt.Sprintf("n=%d", cfg.n), func(b *testing.B) {
			if cfg.n >= 512 && os.Getenv("BENCH_LARGE") == "" {
				b.Skip("set BENCH_LARGE=1 to run the n>=512 configs")
			}
			g := core.UniformGame(cfg.n, 2, core.SUM)
			wts := graph.NewWeights(cfg.n, 9, 8)
			start := RandomProfile(g, rand.New(rand.NewSource(9)))
			// Settle to full convergence — the measured round must contain
			// no movers, or the zero-resync invariant below would be vacuous.
			pre, err := Run(g, start, Options{
				Responder: core.WeightedGreedyResponder(wts),
				Cached:    core.GreedyDeviatorResponder,
				Weights:   wts,
				MaxRounds: 600,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !pre.Converged {
				b.Fatal("weighted dynamics did not converge within the settle budget")
			}
			settled := pre.Final
			opts := Options{
				Responder: core.WeightedGreedyResponder(wts),
				Cached:    core.GreedyDeviatorResponder,
				Weights:   wts,
				MaxRounds: 1,
			}
			if cfg.n == 128 {
				assertWeightedModesAgree(b, g, settled, opts)
			}
			for _, mode := range []struct{ name, wstep, stamps, kernel string }{
				{"kernel", "1", "1", "1"},
				{"reference", "0", "0", "0"},
			} {
				b.Run(mode.name, func(b *testing.B) {
					b.Setenv("BBNCG_WSTEP", mode.wstep)
					b.Setenv("BBNCG_STAMPS", mode.stamps)
					b.Setenv("BBNCG_SUMKERNEL", mode.kernel)
					runOpts := opts
					runOpts.Pool = core.NewWeightedCachePool(g, 0, wts)
					defer runOpts.Pool.Close()
					for i := 0; i < 3; i++ {
						if _, err := Run(g, settled, runOpts); err != nil {
							b.Fatal(err)
						}
					}
					if mode.name == "kernel" {
						// The settled weighted invariant, gated in CI at n=128:
						// a warm settled round resyncs no untouched player and
						// runs no weight repairs (the weight stream is quiet).
						before := runOpts.Pool.Stats()
						if _, err := Run(g, settled, runOpts); err != nil {
							b.Fatal(err)
						}
						after := runOpts.Pool.Stats()
						if d := after.Resyncs - before.Resyncs; d != 0 {
							b.Fatalf("settled weighted round ran %d resyncs, want 0 (stats %+v)", d, after)
						}
						if d := after.Repairs - before.Repairs; d != 0 {
							b.Fatalf("settled weighted round ran %d weight repairs, want 0", d)
						}
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := Run(g, settled, runOpts)
						if err != nil {
							b.Fatal(err)
						}
						if res.Rounds == 0 {
							b.Fatal("no rounds executed")
						}
					}
				})
			}
		})
	}
}

// assertWeightedModesAgree fails the benchmark if the weighted kernel
// tier and the scalar Dijkstra reference diverge, comparing several
// consecutive runs over shared weighted pools pairwise — cold, warming
// and warm rounds — exactly like the timed loops.
func assertWeightedModesAgree(b *testing.B, g *core.Game, start *graph.Digraph, opts Options) {
	b.Helper()
	runs := func(env string) []Result {
		b.Setenv("BBNCG_WSTEP", env)
		b.Setenv("BBNCG_STAMPS", env)
		b.Setenv("BBNCG_SUMKERNEL", env)
		o := opts
		o.Pool = core.NewWeightedCachePool(g, 0, o.Weights)
		defer o.Pool.Close()
		var out []Result
		for i := 0; i < 4; i++ {
			res, err := Run(g, start, o)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}
	kernel := runs("1")
	reference := runs("0")
	for i := range kernel {
		if kernel[i].Moves != reference[i].Moves || kernel[i].Rounds != reference[i].Rounds ||
			!kernel[i].Final.Equal(reference[i].Final) {
			b.Fatalf("weighted kernel and Dijkstra-reference dynamics diverge on run %d:\nkernel    %+v\nreference %+v",
				i, kernel[i], reference[i])
		}
	}
}

// BenchmarkDynamicsRunIncremental measures whole bounded runs from a
// random profile — the adversarial mix for the pool: the early rounds
// carry heavy move traffic (repairs degrade to refills plus bookkeeping)
// before the converging tail starts paying. Kept honest alongside the
// settled-round headline.
func BenchmarkDynamicsRunIncremental(b *testing.B) {
	g := core.UniformGame(256, 2, core.MAX)
	start := RandomProfile(g, rand.New(rand.NewSource(9)))
	opts := Options{
		Responder: core.GreedyResponder,
		Cached:    core.GreedyDeviatorResponder,
		MaxRounds: 6,
	}
	for _, mode := range []struct{ name, env string }{
		{"incremental", "1"},
		{"refill", "0"},
	} {
		b.Run(fmt.Sprintf("n=256/MAX/%s", mode.name), func(b *testing.B) {
			b.Setenv("BBNCG_INCREMENTAL", mode.env)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(g, start, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// assertModesAgree fails the benchmark if the incremental and refill
// paths diverge — the CI bench smoke runs one iteration of every
// benchmark, so a repair-path regression fails fast here.
func assertModesAgree(b *testing.B, g *core.Game, start *graph.Digraph, opts Options) {
	b.Helper()
	b.Setenv("BBNCG_STAMPS", "0") // compare the repair paths, not the stamp skip
	b.Setenv("BBNCG_INCREMENTAL", "1")
	inc, err := Run(g, start, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Setenv("BBNCG_INCREMENTAL", "0")
	ref, err := Run(g, start, opts)
	if err != nil {
		b.Fatal(err)
	}
	if inc.Moves != ref.Moves || inc.Rounds != ref.Rounds || !inc.Final.Equal(ref.Final) {
		b.Fatalf("incremental and refill dynamics diverge:\nincremental %+v\nrefill      %+v", inc, ref)
	}
}

func BenchmarkRunUnitExact(b *testing.B) {
	g := core.UniformGame(32, 1, core.SUM)
	rng := rand.New(rand.NewSource(1))
	start := RandomProfile(g, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, start, Options{
			Responder: core.ExactResponder(0), DetectLoops: true, MaxRounds: 100,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunGreedyBudget3(b *testing.B) {
	g := core.UniformGame(48, 3, core.SUM)
	rng := rand.New(rand.NewSource(1))
	start := RandomProfile(g, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, start, Options{
			Responder: core.GreedyResponder, DetectLoops: true, MaxRounds: 50,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSimultaneous(b *testing.B) {
	g := core.UniformGame(16, 1, core.MAX)
	rng := rand.New(rand.NewSource(1))
	start := RandomProfile(g, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSimultaneous(g, start, Options{
			Responder: core.ExactResponder(0), MaxRounds: 100,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWelfareTrace(b *testing.B) {
	g := core.UniformGame(24, 1, core.SUM)
	rng := rand.New(rand.NewSource(1))
	start := RandomProfile(g, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := WelfareTrace(g, start, Options{
			Responder: core.ExactResponder(0), MaxRounds: 50,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
