// Package dynamics runs (best-)response dynamics for bounded budget
// network creation games: starting from a profile, players revise their
// strategies one at a time until a fixed point (a Nash equilibrium when
// the responder is exact), a detected cycle of profiles, or a round
// budget is exhausted. Section 8 of the paper leaves convergence of these
// dynamics open — Laoutaris et al. exhibited loops in the directed
// variant — so the engine detects loops exactly via profile hashing with
// full-profile confirmation, and the harness reports convergence
// statistics as an empirical answer.
package dynamics

import (
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sweep"
)

// Scheduler yields the order in which players move in one round.
type Scheduler interface {
	// Order fills dst with a permutation of 0..n-1 for the given round.
	Order(dst []int, round int)
	Name() string
}

// RoundRobin moves players in index order every round.
type RoundRobin struct{}

// Order fills dst with the identity permutation.
func (RoundRobin) Order(dst []int, round int) {
	for i := range dst {
		dst[i] = i
	}
}

// Name identifies the scheduler in reports.
func (RoundRobin) Name() string { return "round-robin" }

// RandomOrder shuffles the player order independently each round.
type RandomOrder struct{ Rng *rand.Rand }

// Order fills dst with a fresh random permutation.
func (s RandomOrder) Order(dst []int, round int) {
	for i := range dst {
		dst[i] = i
	}
	s.Rng.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}

// Name identifies the scheduler in reports.
func (s RandomOrder) Name() string { return "random-order" }

// Options configure a dynamics run.
type Options struct {
	Responder core.Responder // required
	Scheduler Scheduler      // defaults to RoundRobin
	MaxRounds int            // defaults to 1000
	// RecordTrajectory stores the social cost (diameter) after every
	// round in Result.Trajectory.
	RecordTrajectory bool
	// DetectLoops tracks visited profiles and stops when one repeats.
	// Hash hits are confirmed against the stored profile, so a reported
	// loop is exact, never a collision artefact.
	DetectLoops bool
	// Parallel evaluates responders on a worker pool. Results are
	// identical to the sequential engine: sequential rounds precompute
	// every player's response against the round-start profile in
	// parallel and revalidate sequentially once a move lands
	// (speculation pays off because converging runs spend most rounds
	// with few or no moves); simultaneous rounds are embarrassingly
	// parallel by definition. Requires the Responder to be safe for
	// concurrent invocation against a fixed graph — all responders in
	// package core are.
	Parallel bool
}

// Result summarises a dynamics run.
type Result struct {
	Converged  bool // a full round passed with no strategy change
	Loop       bool // an earlier profile recurred (only if DetectLoops)
	LoopLength int  // rounds between the repeats, when Loop
	Rounds     int  // full rounds executed
	Moves      int  // strategy changes applied
	Final      *graph.Digraph
	Trajectory []int64 // social cost after each round (if recorded)
}

// Run executes response dynamics for game g from the initial realization
// start (which is not modified). If the responder is exact, a converged
// final graph is a Nash equilibrium of g.
func Run(g *core.Game, start *graph.Digraph, opts Options) (Result, error) {
	if err := g.CheckRealization(start); err != nil {
		return Result{}, err
	}
	if opts.Responder == nil {
		return Result{}, fmt.Errorf("dynamics: Options.Responder is required")
	}
	if opts.Scheduler == nil {
		opts.Scheduler = RoundRobin{}
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 1000
	}
	d := start.Clone()
	n := g.N()
	order := make([]int, n)
	res := Result{}
	var seen map[uint64][]seenProfile
	if opts.DetectLoops {
		seen = make(map[uint64][]seenProfile)
		recordProfile(seen, core.ProfileOf(d), 0)
	}
	for round := 1; round <= opts.MaxRounds; round++ {
		opts.Scheduler.Order(order, round)
		changed := false
		var speculative []core.BestResponse
		if opts.Parallel && runtime.GOMAXPROCS(0) > 1 {
			// Speculation only pays when the precompute actually runs on
			// spare cores; on one core it would double the work of every
			// round that contains a move.
			speculative = responsesAgainst(g, d, order, opts.Responder)
		}
		for idx, u := range order {
			if g.Budgets[u] == 0 {
				continue
			}
			var br core.BestResponse
			if speculative != nil && !changed {
				// No move has landed this round, so the response
				// precomputed against the round-start profile is exact.
				br = speculative[idx]
			} else {
				br = opts.Responder(g, d, u)
			}
			if br.Improves() {
				d.SetOut(u, br.Strategy)
				res.Moves++
				changed = true
			}
		}
		res.Rounds = round
		if opts.RecordTrajectory {
			res.Trajectory = append(res.Trajectory, g.SocialCost(d))
		}
		if !changed {
			res.Converged = true
			break
		}
		if opts.DetectLoops {
			p := core.ProfileOf(d)
			if prev, ok := lookupProfile(seen, p); ok {
				res.Loop = true
				res.LoopLength = round - prev
				break
			}
			recordProfile(seen, p, round)
		}
	}
	res.Final = d
	return res, nil
}

// responsesAgainst computes every listed player's response against the
// current (fixed) profile on a worker pool; entries for budget-0 players
// are zero values. The graph is only read during the map, so the
// concurrent invocations satisfy the Responder contract.
//
// The pool is bounded so that the distance caches of concurrently running
// responders stay within core.DefaultCacheBudget in aggregate — each
// cached responder holds a 4·n·(n+1)-byte matrix, so an unbounded
// GOMAXPROCS fan-out would multiply the budget by the worker count.
func responsesAgainst(g *core.Game, d *graph.Digraph, players []int, respond core.Responder) []core.BestResponse {
	workers := runtime.GOMAXPROCS(0)
	if budget := core.DefaultCacheBudget; budget > 0 {
		n := int64(g.N())
		if perCache := 4 * n * (n + 1); perCache > 0 {
			if byMem := int(budget / perCache); byMem < workers {
				workers = byMem
			}
		}
	}
	if workers < 1 {
		workers = 1
	}
	return sweep.ParallelN(players, workers, func(u int) core.BestResponse {
		if g.Budgets[u] == 0 {
			return core.BestResponse{}
		}
		return respond(g, d, u)
	})
}

type seenProfile struct {
	p     core.Profile
	round int
}

func recordProfile(seen map[uint64][]seenProfile, p core.Profile, round int) {
	h := p.Hash()
	seen[h] = append(seen[h], seenProfile{p: p, round: round})
}

func lookupProfile(seen map[uint64][]seenProfile, p core.Profile) (round int, ok bool) {
	for _, sp := range seen[p.Hash()] {
		if sp.p.Equal(p) {
			return sp.round, true
		}
	}
	return 0, false
}

// RandomProfile realizes a uniformly random valid profile of g.
func RandomProfile(g *core.Game, rng *rand.Rand) *graph.Digraph {
	return graph.RandomOutDigraph(g.Budgets, rng)
}

// RunFromRandom is a convenience wrapper: random initial profile, then Run.
func RunFromRandom(g *core.Game, rng *rand.Rand, opts Options) (Result, error) {
	return Run(g, RandomProfile(g, rng), opts)
}
