package graph

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the CSR substrate of the deviation engine:
// construction invariants of the flat adjacency, and agreement between
// the word-parallel batched BFS (DistanceRowsInto) and the scalar
// per-source BFS (BFSRow), including the distance symmetry the batched
// fill exploits when writing column blocks. CI runs each target as a
// short -fuzztime smoke on top of the seeded corpus below.

// decodeGraph turns fuzz bytes into an undirected adjacency: byte 0
// picks n in [1, 48], the rest are consumed pairwise as arcs u->v
// (mod n, self-loops skipped). Going through Digraph.Underlying keeps
// the decoded graphs inside the invariant every real caller provides
// (sorted, deduplicated neighbour lists).
func decodeGraph(data []byte) (Und, *Digraph) {
	if len(data) == 0 {
		return nil, nil
	}
	n := int(data[0])%48 + 1
	d := NewDigraph(n)
	rest := data[1:]
	for i := 0; i+1 < len(rest); i += 2 {
		u := int(rest[i]) % n
		v := int(rest[i+1]) % n
		if u != v {
			d.AddArc(u, v)
		}
	}
	return d.Underlying(), d
}

// fuzzSeeds are byte encodings of the shapes that historically break
// BFS code: empty, singleton, a path, a dense blob, and a graph with
// more than 64 vertices (two word-parallel batches).
func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3})
	f.Add([]byte{7, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 1, 2, 3, 4, 5, 6})
	big := []byte{47}
	for i := byte(0); i < 46; i++ {
		big = append(big, i, i+1)
	}
	f.Add(big)
	f.Add(bytes.Repeat([]byte{13, 2, 9}, 20))
}

func FuzzCSR(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, _ := decodeGraph(data)
		if a == nil {
			return
		}
		n := a.N()
		c := NewCSR(a)
		if c.N() != n {
			t.Fatalf("CSR.N = %d, want %d", c.N(), n)
		}
		if len(c.Indptr) != n+1 || c.Indptr[0] != 0 || int(c.Indptr[n]) != len(c.Nbrs) {
			t.Fatalf("Indptr malformed: %v with %d nbrs", c.Indptr, len(c.Nbrs))
		}
		for v := 0; v < n; v++ {
			if c.Indptr[v] > c.Indptr[v+1] {
				t.Fatalf("Indptr not monotone at %d: %v", v, c.Indptr)
			}
			row := c.Nbrs[c.Indptr[v]:c.Indptr[v+1]]
			if len(row) != len(a[v]) {
				t.Fatalf("vertex %d: CSR degree %d, Und degree %d", v, len(row), len(a[v]))
			}
			for i, w := range row {
				if int(w) != a[v][i] {
					t.Fatalf("vertex %d: CSR nbrs %v, Und nbrs %v", v, row, a[v])
				}
			}
		}
		// Exclusion: every u-free row of NewCSRExcluding matches the
		// adjacency with u dropped, and u's own row is empty.
		u := 0
		if len(data) > 1 {
			u = int(data[1]) % n
		}
		ce := NewCSRExcluding(a, u)
		if got := ce.Nbrs[ce.Indptr[u]:ce.Indptr[u+1]]; len(got) != 0 {
			t.Fatalf("excluded vertex %d still has neighbours %v", u, got)
		}
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			row := ce.Nbrs[ce.Indptr[v]:ce.Indptr[v+1]]
			want := make([]int32, 0, len(a[v]))
			for _, w := range a[v] {
				if w != u {
					want = append(want, int32(w))
				}
			}
			if len(row) != len(want) {
				t.Fatalf("excl %d, vertex %d: got %v, want %v", u, v, row, want)
			}
			for i := range row {
				if row[i] != want[i] {
					t.Fatalf("excl %d, vertex %d: got %v, want %v", u, v, row, want)
				}
			}
		}
	})
}

func FuzzBatchedBFS(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, _ := decodeGraph(data)
		if a == nil {
			return
		}
		n := a.N()
		c := NewCSR(a)
		dist := c.DistanceRows()
		row := make([]int32, n)
		queue := make([]int32, 0, n)
		for v := 0; v < n; v++ {
			// Agreement with the scalar BFS, source by source.
			c.BFSRow(int32(v), row, queue)
			for w := 0; w < n; w++ {
				if dist[v*n+w] != row[w] {
					t.Fatalf("dist[%d][%d]: batched %d, scalar %d", v, w, dist[v*n+w], row[w])
				}
			}
			for w := 0; w < n; w++ {
				dvw := dist[v*n+w]
				// Symmetry on undirected inputs.
				if dwv := dist[w*n+v]; dvw != dwv {
					t.Fatalf("asymmetry: dist[%d][%d]=%d, dist[%d][%d]=%d", v, w, dvw, w, v, dwv)
				}
				// Range: 0 on the diagonal, else positive and < n or InfDist.
				switch {
				case v == w:
					if dvw != 0 {
						t.Fatalf("dist[%d][%d] = %d on diagonal", v, w, dvw)
					}
				case dvw == InfDist:
				case dvw <= 0 || dvw >= int32(n):
					t.Fatalf("dist[%d][%d] = %d out of range", v, w, dvw)
				}
				// Adjacent vertices are at distance exactly 1.
				if v != w && a.HasEdge(v, w) && dvw != 1 {
					t.Fatalf("adjacent %d,%d at distance %d", v, w, dvw)
				}
			}
		}
	})
}

// FuzzDeviationCSR drives the G-u exclusion path the deviation engine
// relies on: distances in NewCSRExcluding(a, u) must match a scalar
// BFS on the explicitly rebuilt G-u adjacency.
func FuzzDeviationCSR(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, _ := decodeGraph(data)
		if a == nil || a.N() < 2 {
			return
		}
		n := a.N()
		u := int(data[0]) % n
		ce := NewCSRExcluding(a, u)
		// Rebuild G-u the slow way.
		gu := make(Und, n)
		for v, nb := range a {
			if v == u {
				continue
			}
			for _, w := range nb {
				if w != u {
					gu[v] = append(gu[v], w)
				}
			}
		}
		cref := NewCSR(gu)
		got := ce.DistanceRows()
		want := cref.DistanceRows()
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("excl %d: dist[%d][%d] batched-on-excluded %d, reference %d",
					u, i/n, i%n, got[i], want[i])
			}
		}
	})
}

// FuzzDeltaBFS drives the incremental repair path: decode a graph,
// rewire one fuzz-chosen vertex's out-set, and require the repaired
// distance matrix (RepairRows over the DiffUnd edge delta) to equal a
// fresh refill — both for the plain CSR and for a CSR with an excluded
// vertex, the exact shape the deviation-cache pool repairs.
func FuzzDeltaBFS(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, d := decodeGraph(data)
		if d == nil {
			return
		}
		n := d.N()
		old := d.Underlying()
		// Consume the tail as (mover, new out-set) and apply the move.
		m := 0
		var out []int
		if len(data) > 1 {
			m = int(data[1]) % n
			have := make([]bool, n)
			for _, b := range data[2:] {
				v := int(b) % n
				if v != m && !have[v] {
					have[v] = true
					out = append(out, v)
				}
			}
		}
		d.SetOut(m, out)
		cur := d.Underlying()
		for _, skip := range []int{-1, m % n} {
			var oldCSR, newCSR *CSR
			if skip >= 0 {
				oldCSR, newCSR = NewCSRExcluding(old, skip), NewCSRExcluding(cur, skip)
			} else {
				oldCSR, newCSR = NewCSR(old), NewCSR(cur)
			}
			rows := oldCSR.DistanceRows()
			removed, added := DiffUnd(old, cur, skip)
			newCSR.RepairRows(rows, removed, added, NewDeltaScratch(n))
			want := newCSR.DistanceRows()
			for i := range want {
				if rows[i] != want[i] {
					t.Fatalf("skip=%d cell (%d,%d): repaired %d, refilled %d (removed=%v added=%v)",
						skip, i/n, i%n, rows[i], want[i], removed, added)
				}
			}
		}
	})
}
