package bbc

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestDirectedCostCycle(t *testing.T) {
	// Directed 4-cycle: cost of each vertex = 1+2+3 = 6.
	g := UniformGame(4, 1)
	d := graph.CycleGraph(4)
	for u := 0; u < 4; u++ {
		if c := g.Cost(d, u); c != 6 {
			t.Fatalf("cost(%d) = %d, want 6", u, c)
		}
	}
}

func TestDirectedCostUnreachable(t *testing.T) {
	// Arc 0->1 only: vertex 1 reaches nothing; n^2 = 9 per missing.
	d := graph.NewDigraph(3)
	d.AddArc(0, 1)
	g, err := NewGame([]int{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c := g.Cost(d, 0); c != 1+9 {
		t.Fatalf("cost(0) = %d, want 10", c)
	}
	if c := g.Cost(d, 1); c != 18 {
		t.Fatalf("cost(1) = %d, want 18", c)
	}
}

func TestDirectedVsUndirectedSemantics(t *testing.T) {
	// The defining difference from the paper's game: in BBC the arc
	// 1->0 does NOT help 0 reach 1.
	d := graph.NewDigraph(2)
	d.AddArc(1, 0)
	g, err := NewGame([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c := g.Cost(d, 1); c != 1 {
		t.Fatalf("owner cost = %d, want 1", c)
	}
	if c := g.Cost(d, 0); c != 4 {
		t.Fatalf("non-owner cost = %d, want C_inf = 4", c)
	}
}

func TestBestResponseDirectedStar(t *testing.T) {
	// 4 players, budget 1 each, all pointing at 0 except 0 points at 1.
	d := graph.NewDigraph(4)
	d.AddArc(0, 1)
	d.AddArc(2, 0)
	d.AddArc(3, 0)
	g := UniformGame(4, 1)
	// Player 2: current cost = d(2,0)=1, d(2,1)=2, d(2,3)=C_inf.
	_, c, cur := g.BestResponse(d, 2)
	if cur != 1+2+16 {
		t.Fatalf("current = %d, want 19", cur)
	}
	if c > cur {
		t.Fatal("best response worse than current")
	}
}

func TestVerifyNashDirectedCycleSmall(t *testing.T) {
	// The directed triangle is an equilibrium for budget 1: each vertex
	// reaches the other two at cost 1+2 and no single arc can beat that.
	g := UniformGame(3, 1)
	d := graph.CycleGraph(3)
	if u, _ := g.VerifyNash(d); u >= 0 {
		t.Fatalf("directed triangle refuted by player %d", u)
	}
}

func TestRunConvergesOrLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{4, 5, 6} {
		g := UniformGame(n, 1)
		for trial := 0; trial < 10; trial++ {
			res, err := g.Run(g.RandomRealization(rng), 500)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged && !res.Loop {
				t.Fatalf("n=%d trial %d: no verdict in 500 rounds", n, trial)
			}
			if res.Converged {
				if u, _ := g.VerifyNash(res.Final); u >= 0 {
					t.Fatalf("converged graph refuted by player %d", u)
				}
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	g := UniformGame(4, 1)
	if _, err := g.Run(graph.NewDigraph(3), 10); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := g.Run(graph.NewDigraph(4), 10); err == nil {
		t.Fatal("budget mismatch accepted")
	}
}

func TestNewGameValidation(t *testing.T) {
	if _, err := NewGame([]int{3, 0, 0}); err == nil {
		t.Fatal("budget >= n accepted")
	}
	if _, err := NewGame([]int{-1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestGraphHashDistinguishesOrientation(t *testing.T) {
	a := graph.NewDigraph(2)
	a.AddArc(0, 1)
	b := graph.NewDigraph(2)
	b.AddArc(1, 0)
	if hashGraph(a) == hashGraph(b) {
		t.Fatal("hash ignores arc direction")
	}
}
