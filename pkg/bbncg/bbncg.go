// Package bbncg is the public API surface of the bounded budget network
// creation game engine: game construction, realizations, best-response
// computation, equilibrium checks, welfare, response dynamics, and the
// warm distance-cache pool that makes repeated queries against a slowly
// mutating graph cheap (stamp skip → journal delta repair → full
// resync; see internal/core).
//
// The heavy machinery lives in internal packages; this package promotes
// the session-facing types and constructors so that long-running
// embedders — `bbncg serve` first among them — are thin shells over a
// stable surface instead of forks of the CLI. Types are aliased rather
// than wrapped: a bbncg.Game IS a core.Game, so there is no translation
// layer to drift.
package bbncg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Version selects the cost function of the game: SUM (total distance)
// or MAX (local diameter).
type Version = core.Version

// The two cost versions of the paper.
const (
	SUM = core.SUM
	MAX = core.MAX
)

// ParseVersion maps the wire names "SUM" and "MAX" (case-sensitive, as
// rendered by Version.String) to the Version constants.
func ParseVersion(s string) (Version, error) {
	switch s {
	case "SUM", "":
		return SUM, nil
	case "MAX":
		return MAX, nil
	default:
		return SUM, fmt.Errorf("bbncg: unknown version %q (want SUM or MAX)", s)
	}
}

// Game is a (b1,...,bn)-BG instance: a budget vector plus a cost
// version.
type Game = core.Game

// NewGame validates the budget vector and returns the game instance.
func NewGame(budgets []int, v Version) (*Game, error) { return core.NewGame(budgets, v) }

// UniformGame returns the n-player game with every budget equal to b.
func UniformGame(n, b int, v Version) *Game { return core.UniformGame(n, b, v) }

// Digraph is a directed graph on vertices 0..n-1 whose arcs are owned
// by their tails; it carries the generation stamps, content anchor and
// optional mutation journal the cache pool's resync ladder consumes.
type Digraph = graph.Digraph

// NewDigraph returns an empty digraph on n vertices.
func NewDigraph(n int) *Digraph { return graph.NewDigraph(n) }

// FromArcs builds a digraph from an explicit arc list (owner, target).
// Unlike the graph-layer constructors it validates instead of
// panicking, so it is safe on wire input. Duplicate arcs are no-ops.
func FromArcs(n int, arcs [][2]int) (*Digraph, error) {
	if n < 0 {
		return nil, fmt.Errorf("bbncg: negative vertex count %d", n)
	}
	d := graph.NewDigraph(n)
	for _, a := range arcs {
		u, v := a[0], a[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("bbncg: arc (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("bbncg: self-loop arc (%d,%d)", u, v)
		}
		d.AddArc(u, v)
	}
	return d, nil
}

// Arcs flattens a digraph to the (owner, target) list FromArcs accepts,
// sorted by owner then target — the canonical wire form of a profile.
func Arcs(d *Digraph) [][2]int {
	arcs := make([][2]int, 0, d.ArcCount())
	for u := 0; u < d.N(); u++ {
		for _, v := range d.Out(u) {
			arcs = append(arcs, [2]int{u, v})
		}
	}
	return arcs
}

// BudgetsOf derives the budget vector implied by a realization (the
// out-degrees).
func BudgetsOf(d *Digraph) []int { return graph.BudgetsOf(d) }

// ValidateStrategy checks that s is a legal strategy for player u in an
// n-player game with budget b: exactly b distinct targets, all in
// range, none equal to u. It is the wire-input guard in front of
// Digraph.SetOut, which panics on malformed input by design.
func ValidateStrategy(n, u, b int, s []int) error {
	if len(s) != b {
		return fmt.Errorf("bbncg: player %d has budget %d, strategy has %d targets", u, b, len(s))
	}
	seen := make(map[int]bool, len(s))
	for _, v := range s {
		if v < 0 || v >= n {
			return fmt.Errorf("bbncg: target %d out of range [0,%d)", v, n)
		}
		if v == u {
			return fmt.Errorf("bbncg: player %d cannot target itself", u)
		}
		if seen[v] {
			return fmt.Errorf("bbncg: duplicate target %d", v)
		}
		seen[v] = true
	}
	return nil
}

// BestResponse is the outcome of a best-response computation.
type BestResponse = core.BestResponse

// Deviation witnesses that a profile is not stable.
type Deviation = core.Deviation

// Responder computes a (possibly heuristic) response for a player;
// DeviatorResponder is its pooled form evaluating on a warm cache.
type (
	Responder         = core.Responder
	DeviatorResponder = core.DeviatorResponder
	Deviator          = core.Deviator
)

// CachePool keeps per-player distance caches warm across the mutations
// of one graph; PoolStats are its lifetime counters (StampSkips,
// DeltaRepairs, Resyncs, MemoHits, ...).
type (
	CachePool = core.CachePool
	PoolStats = core.PoolStats
)

// NewCachePool returns a warm-cache pool for g bounded by budgetBytes
// (<= 0 means core.DefaultPoolBudget).
func NewCachePool(g *Game, budgetBytes int64) *CachePool { return core.NewCachePool(g, budgetBytes) }

// Weights is a symmetric positive arc-weight assignment: a deterministic
// seeded base in [1, max] plus explicit overrides, with the bounded
// change log the weighted cache tier's repair path consumes.
type Weights = graph.Weights

// NewWeights returns the weight assignment for n vertices with base
// weights hashed from seed into [1, max].
func NewWeights(n int, seed int64, max int32) *Weights { return graph.NewWeights(n, seed, max) }

// NewWeightedCachePool is NewCachePool over the arc-weighted game: pool
// entries hold weighted distance rows (Δ-stepping fill, incremental
// weighted repair) and track wts's generation as a second staleness
// stream — weight-only mutations need no Invalidate call.
func NewWeightedCachePool(g *Game, budgetBytes int64, wts *Weights) *CachePool {
	return core.NewWeightedCachePool(g, budgetBytes, wts)
}

// WeightsSpec is the declarative, JSON-encodable recipe for a session's
// arc weights: a deterministic seeded base in [1, Max]. Explicit
// overrides are not part of the spec — persistent embedders replay them
// from their mutation log (each carrying its weight), exactly like
// rewires.
type WeightsSpec struct {
	Seed int64 `json:"seed,omitempty"`
	Max  int32 `json:"max"`
}

// Build materialises the spec for an n-vertex session, refusing weight
// ranges whose adjusted distances the weighted cache tier cannot encode
// (the service would silently lose the warm-row fast path otherwise).
func (s WeightsSpec) Build(n int) (*Weights, error) {
	if s.Max < 1 {
		return nil, fmt.Errorf("bbncg: weights max must be >= 1, got %d", s.Max)
	}
	if !graph.FitsWeightedCache(n, s.Max) {
		return nil, fmt.Errorf("bbncg: weights max %d on %d vertices exceeds the encodable distance range", s.Max, n)
	}
	return NewWeights(n, s.Seed, s.Max), nil
}

// DefaultExactCap bounds exact best-response enumeration on service
// paths: C(n-1,b) above it is refused instead of attempted, since the
// exact solver is exponential in the budget (Theorem 2.1).
const DefaultExactCap int64 = 1 << 20

// ResponderChoice pairs the plain and pooled forms of one responder.
type ResponderChoice struct {
	Name   string
	Plain  Responder
	Cached DeviatorResponder
	// Exact reports whether the responder enumerates the full strategy
	// space (so a non-improving answer certifies a best response).
	Exact bool
	// Cap is the enumeration bound of an exact responder (0 for the
	// heuristics, which never enumerate).
	Cap int64
}

// ResponderByName resolves the wire names "greedy", "swap" and "exact".
// exactCap bounds exact enumeration (<= 0 means DefaultExactCap).
func ResponderByName(name string, exactCap int64) (ResponderChoice, error) {
	switch name {
	case "greedy", "":
		return ResponderChoice{Name: "greedy", Plain: core.GreedyResponder, Cached: core.GreedyDeviatorResponder}, nil
	case "swap":
		return ResponderChoice{Name: "swap", Plain: core.SwapResponder, Cached: core.SwapDeviatorResponder}, nil
	case "exact":
		if exactCap <= 0 {
			exactCap = DefaultExactCap
		}
		return ResponderChoice{
			Name:   "exact",
			Plain:  core.ExactResponder(exactCap),
			Cached: core.ExactDeviatorResponder(exactCap),
			Exact:  true,
			Cap:    exactCap,
		}, nil
	default:
		return ResponderChoice{}, fmt.Errorf("bbncg: unknown responder %q (want greedy, swap or exact)", name)
	}
}

// CheckExactSpace verifies that player u's strategy space fits the
// exact enumeration cap, returning a descriptive error otherwise — the
// wire-input guard in front of the exact responders, which panic on
// oversized spaces by design.
func CheckExactSpace(g *Game, u int, cap int64) error {
	space := core.StrategySpaceSize(g.N(), g.Budgets[u])
	if cap > 0 && space > cap {
		return fmt.Errorf("bbncg: player %d strategy space C(%d,%d) = %d exceeds exact cap %d",
			u, g.N()-1, g.Budgets[u], space, cap)
	}
	return nil
}

// PooledResponse computes player u's best response against d riding the
// pool's warm-cache ladder: the entry is stamp-checked/repaired by
// Acquire, the scan runs on the cached matrix, and the outcome is
// recorded in the pool's round memo (note=true) so an unchanged graph
// can skip u's next scan entirely. The caller owns the pool's
// single-goroutine discipline. The skip path is the caller's concern
// (CachePool.SkipResponse) because a memo hit cannot reproduce the
// non-zero cost fields.
func PooledResponse(g *Game, d *Digraph, pool *CachePool, u int, r DeviatorResponder, note bool) BestResponse {
	dv := pool.Acquire(d, u)
	br := r(g, d, dv)
	dv.Release()
	if note {
		pool.NoteResponse(d, u, br.Improves())
	}
	return br
}

// Welfare summarises a profile: the social cost and each player's cost,
// computed matrix-free (no distance cache is touched or built).
type Welfare struct {
	Social int64   `json:"social"`
	Costs  []int64 `json:"costs"`
}

// WelfareOf evaluates g's welfare on d.
func WelfareOf(g *Game, d *Digraph) Welfare {
	return Welfare{Social: g.SocialCost(d), Costs: g.AllCosts(d)}
}

// WeightedWelfareOf is WelfareOf on the arc-weighted game: weighted
// eccentricities and distance sums, with unreachable pairs costed at
// n²·maxW.
func WeightedWelfareOf(g *Game, d *Digraph, wts *Weights) Welfare {
	return Welfare{Social: g.WeightedSocialCost(d, wts), Costs: g.WeightedAllCosts(d, wts)}
}
