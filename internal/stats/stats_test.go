package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]int64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("std = %f, want 2", s.Std)
	}
	if s.Median != 4.5 {
		t.Fatalf("median = %f, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]int64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []int64{3, 1, 2}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 3 {
		t.Fatal("endpoint percentiles wrong")
	}
	if Percentile(xs, 50) != 2 {
		t.Fatalf("median = %f", Percentile(xs, 50))
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []int64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestMeanStdFormat(t *testing.T) {
	s := Summarize([]int64{1, 3})
	if got := s.MeanStd(); !strings.Contains(got, "2.00") || !strings.Contains(got, "1.00") {
		t.Fatalf("MeanStd = %q", got)
	}
}

// Property: Min <= Median <= Max and Mean within [Min, Max].
func TestSummaryInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		s := Summarize(xs)
		return float64(s.Min) <= s.Median && s.Median <= float64(s.Max) &&
			float64(s.Min) <= s.Mean && s.Mean <= float64(s.Max) && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
