package runner

import (
	"fmt"
	"testing"

	"repro/internal/store"
)

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    Shard
		wantErr bool
	}{
		{"", Shard{}, false},
		{"0/1", Shard{0, 1}, false},
		{"0/3", Shard{0, 3}, false},
		{"2/3", Shard{2, 3}, false},
		{"3/3", Shard{}, true},
		{"-1/3", Shard{}, true},
		{"1/0", Shard{}, true},
		{"1", Shard{}, true},
		{"a/b", Shard{}, true},
		{"0/2x", Shard{}, true},
		{"1/2/4", Shard{}, true},
		{" 0/2", Shard{}, true},
		{"0/2 ", Shard{}, true},
	} {
		got, err := ParseShard(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseShard(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseShard(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// The partitioning contract: for every k, each point belongs to exactly
// one of the k shards (disjoint and complete), deterministically.
func TestShardPartitionDisjointComplete(t *testing.T) {
	var evals int64
	job := testJob(97, &evals)
	for k := 1; k <= 6; k++ {
		for _, p := range job.Points {
			id := p.ID()
			owners := 0
			for i := 0; i < k; i++ {
				sh := Shard{Index: i, Count: k}
				if sh.Contains(id) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("k=%d: point %s owned by %d shards", k, p.Key, owners)
			}
		}
	}
}

// Sharding must spread points: with 97 points over 3 shards every shard
// gets a non-trivial slice (a degenerate hash would put everything in
// one shard and turn scale-out into a no-op).
func TestShardSpread(t *testing.T) {
	var evals int64
	job := testJob(97, &evals)
	counts := make([]int, 3)
	for _, p := range job.Points {
		for i := range counts {
			if (Shard{Index: i, Count: 3}).Contains(p.ID()) {
				counts[i]++
			}
		}
	}
	for i, c := range counts {
		if c < 10 {
			t.Fatalf("shard %d/3 got %d of 97 points: %v", i, c, counts)
		}
	}
}

// Running every shard of a job into its own store, concatenating the
// stores, and merging must reproduce the unsharded values exactly, with
// each point evaluated exactly once across all shards.
func TestShardedRunConcatMerge(t *testing.T) {
	const n, k = 20, 3
	var direct int64
	full, err := Run(testJob(n, &direct), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var evals int64
	dirs := make([]string, k)
	for i := 0; i < k; i++ {
		dirs[i] = t.TempDir()
		st, err := store.Open(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(testJob(n, &evals), st, Options{Shard: Shard{Index: i, Count: k}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Evaluated+rep.Filtered != n || rep.Skipped != 0 {
			t.Fatalf("shard %d report = %+v", i, rep)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if evals != n {
		t.Fatalf("shards evaluated %d points in total, want %d", evals, n)
	}

	merged := t.TempDir()
	added, err := store.Concat(merged, dirs...)
	if err != nil {
		t.Fatal(err)
	}
	if added != n {
		t.Fatalf("Concat added %d records, want %d", added, n)
	}
	st, err := store.Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rep, err := Merge(testJob(n, &evals), st)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Values {
		if string(rep.Values[i]) != string(full.Values[i]) {
			t.Fatalf("value %d differs after shard+concat+merge:\n%s\n%s",
				i, rep.Values[i], full.Values[i])
		}
	}
}

// A merge over a store missing one shard must fail and name the gap.
func TestMergeMissingShardFails(t *testing.T) {
	var evals int64
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := Run(testJob(10, &evals), st, Options{Shard: Shard{Index: 0, Count: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(testJob(10, &evals), st); err == nil {
		t.Fatal("merge succeeded with a missing shard")
	} else if got := fmt.Sprint(err); got == "" {
		t.Fatal("empty error")
	}
}
