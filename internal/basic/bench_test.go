package basic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func BenchmarkBestSwapBasic(b *testing.B) {
	a := graph.PathGraph(32).Underlying()
	bg := Game{Version: core.MAX}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bg.BestSwap(a, i%32)
	}
}

func BenchmarkSwapDynamicsFromPath(b *testing.B) {
	bg := Game{Version: core.MAX}
	start := graph.PathGraph(17).Underlying()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := bg.SwapDynamics(start, rng, 500)
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}

func BenchmarkIsSwapEquilibrium(b *testing.B) {
	a := graph.StarGraph(24).Underlying()
	bg := Game{Version: core.SUM}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sw := bg.IsSwapEquilibrium(a); sw != nil {
			b.Fatal("star refuted")
		}
	}
}
