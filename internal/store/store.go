// Package store is a durable, sharded results store for experiment
// sweeps: one append-only JSONL shard per experiment plus a manifest,
// designed so a sweep killed mid-run loses at most the record being
// written. It is the persistence layer under internal/runner.
//
// Layout of a store directory:
//
//	manifest.json        format version, shard list, record counts
//	<experiment>.jsonl   one JSON record per line, append-only
//	<experiment>.bad.jsonl  quarantined corrupt records (when any)
//	failed.jsonl         quarantined point failures (when any)
//
// Appends are single write(2) calls on O_APPEND descriptors, so
// concurrent appenders never interleave bytes and a crash can only
// truncate the final line. Open detects such a truncated tail (a last
// line that is not newline-terminated) and cuts the shard back to its
// last good record before any new append, which is what makes resuming
// after a kill safe. Every record carries a CRC32 of its content, so
// mid-file bit-rot — a malformed or checksum-failing interior line — is
// distinguished from the crash-tail signature: the corrupt line is
// quarantined to <experiment>.bad.jsonl and every valid record after it
// is preserved, never truncated away. The manifest is rewritten
// atomically (temp file + rename) on Sync/Close; Open treats the
// shards, not the manifest, as the source of truth, and marks the
// session dirty when the manifest is stale so the next Close refreshes
// it. Audit (the engine behind `bbncg doctor`) checks all of this
// read-only.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/fault"
)

// FormatVersion guards against reading stores written by an
// incompatible future layout.
const FormatVersion = 1

// maxRecordBytes bounds one JSONL record: Append refuses anything
// larger, so every record the store accepts is guaranteed readable on
// reopen; a longer line on disk can only be corruption.
const maxRecordBytes = 64 << 20

// failuresFile quarantines point failures (see Failure); badSuffix
// marks per-shard quarantine files of corrupt records. Neither is a
// shard: Open skips both when loading.
const (
	failuresFile = "failed.jsonl"
	badSuffix    = ".bad.jsonl"
)

// Failpoint sites owned by the store (see internal/fault).
var (
	siteAppendWrite    = fault.Register("store.append.write", "shard record append write")
	siteTailTruncate   = fault.Register("store.tail.truncate", "crash-tail repair truncate at open")
	siteManifestWrite  = fault.Register("store.manifest.write", "manifest temp-file write")
	siteManifestRename = fault.Register("store.manifest.rename", "manifest rename into place")
	siteShardOpen      = fault.Register("store.shard.open", "shard file read at open")
	siteConcatAppend   = fault.Register("store.concat.append", "concat per-record append")
)

// Record is one stored experiment result.
type Record struct {
	// ID is the deterministic point identity (see runner.Point.ID);
	// the store treats it as an opaque unique key.
	ID string `json:"id"`
	// Exp names the experiment; it selects the shard file.
	Exp string `json:"exp"`
	// Key is the human-readable point key within the experiment.
	Key string `json:"key"`
	// Value is the experiment-defined result payload.
	Value json.RawMessage `json:"value"`
	// Sum is the hex CRC32 (IEEE) of (id, exp, key, value), written by
	// Append and verified on load; a record without it (an older
	// store) is accepted unverified.
	Sum string `json:"crc,omitempty"`
}

// checksum returns the record's content CRC in the stored form.
func (r Record) checksum() string {
	h := crc32.NewIEEE()
	io.WriteString(h, r.ID)
	h.Write([]byte{0})
	io.WriteString(h, r.Exp)
	h.Write([]byte{0})
	io.WriteString(h, r.Key)
	h.Write([]byte{0})
	h.Write(r.Value)
	return fmt.Sprintf("%08x", h.Sum32())
}

// Failure is one quarantined point failure, appended to failed.jsonl
// by the runner's keep-going mode with enough context to debug it
// offline; the failed point itself is absent from the shard, so
// -resume retries exactly the quarantined points.
type Failure struct {
	ID       string `json:"id"`
	Exp      string `json:"exp"`
	Key      string `json:"key"`
	Err      string `json:"err"`
	Stack    string `json:"stack,omitempty"` // panic stack, when the failure was a panic
	Attempts int    `json:"attempts"`
}

// Manifest is the metadata file of a store directory.
type Manifest struct {
	Format int             `json:"format"`
	Shards []ShardManifest `json:"shards"`
}

// ShardManifest describes one shard file.
type ShardManifest struct {
	Exp     string `json:"exp"`
	File    string `json:"file"`
	Records int    `json:"records"`
}

// Options configures an open store session.
type Options struct {
	// Fsync extends the durability contract from process death to
	// machine death: every append is fsynced, and the manifest rename
	// is followed by a directory fsync. Appends get slower; data
	// survives power loss.
	Fsync bool
}

// Store is an open store directory. All methods are safe for
// concurrent use.
type Store struct {
	dir string
	opt Options

	mu     sync.Mutex
	index  map[string]Record   // id -> record
	counts map[string]int      // experiment -> record count
	files  map[string]*os.File // experiment -> open shard (O_APPEND)
	// torn marks experiments whose last append failed mid-write; the
	// next append to them leads with a newline so the torn prefix
	// becomes its own (quarantinable) line instead of gluing onto the
	// retried record.
	torn map[string]bool
	// dirty is set by Append — and by Open when the manifest is stale
	// or missing; Close only rewrites the manifest when it is, so
	// read-only sessions (merge) work on read-only directories.
	dirty bool
	// recovered counts shards whose truncated tail (the crash
	// signature of a killed appender) was repaired at Open time;
	// quarantined counts corrupt interior records moved to
	// *.bad.jsonl. Both are diagnostics for crash-recovery tests, logs
	// and doctor.
	recovered   int
	quarantined int
}

// Open opens (creating if necessary) the store directory with default
// options, loads every shard into the in-memory index, and repairs
// truncated or corrupt shards.
func Open(dir string) (*Store, error) { return OpenWith(dir, Options{}) }

// OpenWith is Open with explicit options.
func OpenWith(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:    dir,
		opt:    opt,
		index:  make(map[string]Record),
		counts: make(map[string]int),
		files:  make(map[string]*os.File),
		torn:   make(map[string]bool),
	}
	manifest, err := s.checkManifest()
	if err != nil {
		return nil, err
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		base := filepath.Base(name)
		if base == failuresFile || strings.HasSuffix(base, badSuffix) {
			continue
		}
		if err := s.loadShard(name); err != nil {
			return nil, err
		}
	}
	// A stale or missing manifest (a crash between an append and a
	// manifest write, or between the manifest temp-write and rename)
	// marks the session dirty so the next Sync/Close refreshes it.
	if !manifestMatches(manifest, s.counts) {
		s.dirty = true
	}
	return s, nil
}

// checkManifest validates the format version when a manifest exists
// and returns its per-experiment record counts (nil when absent).
// Shard contents, not the manifest, are the source of truth.
func (s *Store) checkManifest() (map[string]int, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, "manifest.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: corrupt manifest: %w", err)
	}
	if m.Format != FormatVersion {
		return nil, fmt.Errorf("store: manifest format %d, this build reads %d", m.Format, FormatVersion)
	}
	counts := make(map[string]int, len(m.Shards))
	for _, sh := range m.Shards {
		counts[sh.Exp] = sh.Records
	}
	return counts, nil
}

// manifestMatches reports whether the manifest counts (nil = no
// manifest) agree exactly with the loaded shard counts.
func manifestMatches(manifest, counts map[string]int) bool {
	if manifest == nil {
		return len(counts) == 0
	}
	if len(manifest) != len(counts) {
		return false
	}
	for e, n := range counts {
		if manifest[e] != n {
			return false
		}
	}
	return true
}

// loadShard reads one shard file into the index and repairs it:
//
//   - An unterminated final line is the crash signature of a killed
//     appender; it is dropped and the file truncated back to the last
//     complete record (recovered counter).
//   - A malformed or checksum-failing interior line is corruption, not
//     a crash: only that line is quarantined to <shard>.bad.jsonl and
//     every valid record after it is preserved (quarantined counter).
//     Blank lines (the torn-append recovery marker) are dropped
//     silently.
func (s *Store) loadShard(name string) error {
	if err := fault.Hit(siteShardOpen); err != nil {
		return fmt.Errorf("store: reading shard %s: %w", name, err)
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	type span struct{ start, end int }
	var drop []span  // byte ranges to remove on rewrite (bad + blank lines)
	var bad [][]byte // quarantined line contents, in file order
	tailStart := -1  // start of an unterminated final line, if any
	for pos := 0; pos < len(data); {
		nl := bytes.IndexByte(data[pos:], '\n')
		if nl < 0 {
			tailStart = pos
			break
		}
		line := data[pos : pos+nl]
		end := pos + nl + 1
		if len(line) == 0 {
			drop = append(drop, span{pos, end})
			pos = end
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" ||
			len(line) >= maxRecordBytes || (rec.Sum != "" && rec.Sum != rec.checksum()) {
			drop = append(drop, span{pos, end})
			bad = append(bad, line)
			s.quarantined++
			pos = end
			continue
		}
		s.remember(rec)
		pos = end
	}
	if tailStart >= 0 {
		s.recovered++
	}
	switch {
	case len(drop) == 0 && tailStart < 0:
		return nil
	case len(drop) == 0:
		// Pure crash tail: cut the file back in place.
		if err := fault.Hit(siteTailTruncate); err != nil {
			return fmt.Errorf("store: repairing truncated shard %s: %w", name, err)
		}
		if err := os.Truncate(name, int64(tailStart)); err != nil {
			return fmt.Errorf("store: repairing truncated shard %s: %w", name, err)
		}
		return nil
	}
	// Corruption: quarantine the bad lines, then rewrite the shard
	// atomically with only the good records (and without any crash
	// tail).
	if len(bad) > 0 {
		if err := appendLines(strings.TrimSuffix(name, ".jsonl")+badSuffix, bad); err != nil {
			return fmt.Errorf("store: quarantining corrupt records of %s: %w", name, err)
		}
	}
	good := make([]byte, 0, len(data))
	pos := 0
	for _, sp := range drop {
		good = append(good, data[pos:sp.start]...)
		pos = sp.end
	}
	if tailStart >= 0 {
		good = append(good, data[pos:tailStart]...)
	} else {
		good = append(good, data[pos:]...)
	}
	tmp := name + ".tmp"
	if err := os.WriteFile(tmp, good, 0o666); err != nil {
		return fmt.Errorf("store: rewriting shard %s: %w", name, err)
	}
	if err := os.Rename(tmp, name); err != nil {
		return fmt.Errorf("store: rewriting shard %s: %w", name, err)
	}
	return nil
}

// appendLines appends raw lines to a quarantine file.
func appendLines(name string, lines [][]byte) error {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return err
	}
	for _, line := range lines {
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// remember indexes one record, last write wins for duplicate IDs.
func (s *Store) remember(rec Record) {
	if _, dup := s.index[rec.ID]; !dup {
		s.counts[rec.Exp]++
	}
	s.index[rec.ID] = rec
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of distinct records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Recovered reports how many shards had a truncated tail repaired at
// Open time.
func (s *Store) Recovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Quarantined reports how many corrupt interior records were moved to
// *.bad.jsonl quarantine files at Open time.
func (s *Store) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Has reports whether a record with the given ID is stored.
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[id]
	return ok
}

// Get returns the stored record with the given ID.
func (s *Store) Get(id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.index[id]
	return rec, ok
}

// Records returns every stored record in deterministic order
// (experiment, then key, then ID) — the iteration side of Concat and of
// external tooling that post-processes a store.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]Record, 0, len(s.index))
	for _, rec := range s.index {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Exp != recs[j].Exp {
			return recs[i].Exp < recs[j].Exp
		}
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return recs[i].ID < recs[j].ID
	})
	return recs
}

// Concat appends every record of the source store directories into dst
// (created if missing), skipping records dst already holds — the fetch
// step of a sharded run: each machine's -shard i/k store directory is
// copied somewhere local and concatenated into one store, which Merge
// then renders. Records already present in dst (same ID) are skipped,
// so concatenating overlapping or repeated sources is safe — a Concat
// that failed mid-copy is simply re-run and resumes where it stopped.
// It returns the number of records added.
func Concat(dst string, srcs ...string) (int, error) {
	d, err := Open(dst)
	if err != nil {
		return 0, err
	}
	added := 0
	for _, src := range srcs {
		s, err := Open(src)
		if err != nil {
			d.Close()
			return added, err
		}
		for _, rec := range s.Records() {
			if d.Has(rec.ID) {
				continue
			}
			err := fault.Hit(siteConcatAppend)
			if err == nil {
				err = d.Append(rec)
			}
			if err != nil {
				s.Close()
				d.Close()
				return added, err
			}
			added++
		}
		if err := s.Close(); err != nil {
			d.Close()
			return added, err
		}
	}
	return added, d.Close()
}

// Experiments lists the experiments with at least one record, sorted.
func (s *Store) Experiments() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	exps := make([]string, 0, len(s.counts))
	for e := range s.counts {
		exps = append(exps, e)
	}
	sort.Strings(exps)
	return exps
}

// shardFile returns the shard filename of an experiment. Experiment
// names are lowercase [a-z0-9-] by convention; anything else is
// escaped defensively so names can never traverse directories.
func shardFile(exp string) string {
	var b strings.Builder
	for _, r := range exp {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			fmt.Fprintf(&b, "%%%04x", r)
		}
	}
	return b.String() + ".jsonl"
}

// Append durably adds one record: a single O_APPEND write of the
// record's JSON line, carrying a content CRC32. Duplicate IDs are
// rejected (a resume must skip, not rewrite). A failed write is safe
// to retry: the next append to the same shard leads with a newline so
// any torn prefix becomes its own line, quarantined on the next open.
func (s *Store) Append(rec Record) error {
	if rec.ID == "" || rec.Exp == "" {
		return fmt.Errorf("store: record needs id and exp")
	}
	rec.Sum = rec.checksum()
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(line) >= maxRecordBytes {
		// Open's shard loader quarantines any longer line as corrupt;
		// a larger record would be written fine but unreadable
		// afterwards.
		return fmt.Errorf("store: record %s is %d bytes, limit %d", rec.ID, len(line), maxRecordBytes)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.index[rec.ID]; dup {
		return fmt.Errorf("store: duplicate record %s", rec.ID)
	}
	f := s.files[rec.Exp]
	if f == nil {
		f, err = os.OpenFile(filepath.Join(s.dir, shardFile(rec.Exp)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.files[rec.Exp] = f
	}
	if s.torn[rec.Exp] {
		line = append([]byte{'\n'}, line...)
	}
	if _, err := fault.WriteThrough(siteAppendWrite, f, line); err != nil {
		s.torn[rec.Exp] = true
		return fmt.Errorf("store: append: %w", err)
	}
	delete(s.torn, rec.Exp)
	if s.opt.Fsync {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("store: append fsync: %w", err)
		}
	}
	s.remember(rec)
	s.dirty = true
	return nil
}

// AppendFailure quarantines one point failure to failed.jsonl. The
// file is an append-only log across resumes: entries whose point later
// succeeds stay as history (doctor reports them as resolved).
func (s *Store) AppendFailure(f Failure) error {
	line, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return appendLines(filepath.Join(s.dir, failuresFile), [][]byte{line})
}

// Failures reads the failed.jsonl quarantine log (nil when absent).
func (s *Store) Failures() ([]Failure, error) {
	return readFailures(s.dir)
}

func readFailures(dir string) ([]Failure, error) {
	data, err := os.ReadFile(filepath.Join(dir, failuresFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var fails []Failure
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var f Failure
		if err := json.Unmarshal(line, &f); err != nil {
			continue // a torn failure line is not worth failing a run over
		}
		fails = append(fails, f)
	}
	return fails, nil
}

// Sync rewrites the manifest atomically from the in-memory counts.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

func (s *Store) writeManifestLocked() error {
	m := Manifest{Format: FormatVersion}
	exps := make([]string, 0, len(s.counts))
	for e := range s.counts {
		exps = append(exps, e)
	}
	sort.Strings(exps)
	for _, e := range exps {
		m.Shards = append(m.Shards, ShardManifest{Exp: e, File: shardFile(e), Records: s.counts[e]})
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(s.dir, ".manifest.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := fault.WriteThrough(siteManifestWrite, f, data); err != nil {
		f.Close()
		return fmt.Errorf("store: manifest: %w", err)
	}
	if s.opt.Fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: manifest fsync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := fault.Hit(siteManifestRename); err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "manifest.json")); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.opt.Fsync {
		if err := syncDir(s.dir); err != nil {
			return fmt.Errorf("store: manifest dir fsync: %w", err)
		}
	}
	return nil
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close syncs the manifest (only if records were appended or the
// manifest was stale this session, so a pure read works on a read-only
// directory) and closes every shard descriptor. The store must not be
// used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.dirty {
		err = s.writeManifestLocked()
		s.dirty = false
	}
	for _, f := range s.files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	s.files = nil
	return err
}
