package enumerate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
)

func TestSpace(t *testing.T) {
	// (1,1,1)-BG: each player picks 1 of 2 targets -> 8 profiles.
	g := core.UniformGame(3, 1, core.SUM)
	if s := Space(g); s != 8 {
		t.Fatalf("space = %d, want 8", s)
	}
	// Budget-0 players contribute factor 1.
	g2 := core.MustGame([]int{0, 1, 0}, core.SUM)
	if s := Space(g2); s != 2 {
		t.Fatalf("space = %d, want 2", s)
	}
	// Saturation.
	g3 := core.UniformGame(30, 14, core.SUM)
	if Space(g3) != math.MaxInt64 {
		t.Fatal("expected saturation")
	}
}

func TestAllTriangleUnit(t *testing.T) {
	// (1,1,1)-BG: every profile realizes either a triangle-ish path or a
	// brace + pendant. Exhaustive check of all 8 profiles; the min
	// diameter is 1 (two mutual arcs impossible to beat... the triangle
	// 0->1,1->2,2->0 has diameter 1). Every profile with a connected
	// underlying graph of 3 vertices and 3 arcs: diameters 1 or 2.
	g := core.UniformGame(3, 1, core.SUM)
	res, err := All(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profiles != 8 {
		t.Fatalf("profiles = %d, want 8", res.Profiles)
	}
	if res.Equilibria == 0 {
		t.Fatal("the unit triangle game must have equilibria (Theorem 2.3)")
	}
	if res.MinDiameter != 1 {
		t.Fatalf("min diameter = %d, want 1", res.MinDiameter)
	}
	if res.PoA < 1 || math.IsNaN(res.PoA) {
		t.Fatalf("PoA = %f", res.PoA)
	}
	if res.PoS > res.PoA {
		t.Fatal("PoS must not exceed PoA")
	}
}

func TestAllAgainstVerifyNash(t *testing.T) {
	// Cross-validation: every equilibrium found by All must pass
	// VerifyNash, and dynamics fixed points must appear among them.
	g := core.MustGame([]int{1, 1, 1, 0}, core.MAX)
	res, err := All(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equilibria == 0 {
		t.Fatal("no equilibria found")
	}
	for _, eq := range []*graph.Digraph{res.BestEquilibrium, res.WorstEquilibrium} {
		dev, err := g.VerifyNash(eq, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dev != nil {
			t.Fatalf("enumerated equilibrium refuted by VerifyNash: %v", dev)
		}
	}
	// A converged dynamics run must land on a diameter within the
	// enumerated equilibrium range.
	rng := rand.New(rand.NewSource(3))
	out, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
		Responder: core.ExactResponder(0), DetectLoops: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Converged {
		sc := g.SocialCost(out.Final)
		if sc < res.MinEqDiameter || sc > res.MaxEqDiameter {
			t.Fatalf("dynamics equilibrium diameter %d outside enumerated range [%d,%d]",
				sc, res.MinEqDiameter, res.MaxEqDiameter)
		}
	}
}

func TestAllCapEnforced(t *testing.T) {
	g := core.UniformGame(6, 2, core.SUM)
	if _, err := All(g, 10); err == nil {
		t.Fatal("cap not enforced")
	}
}

func TestAllZeroBudgets(t *testing.T) {
	g := core.MustGame([]int{0, 0, 0}, core.SUM)
	res, err := All(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profiles != 1 || res.Equilibria != 1 {
		t.Fatalf("empty game enumeration wrong: %+v", res)
	}
	if res.MinDiameter != 9 {
		t.Fatalf("disconnected social cost = %d, want n^2 = 9", res.MinDiameter)
	}
	if res.PoA != 1 {
		t.Fatalf("sub-threshold PoA = %f, want 1 (paper Section 1.2)", res.PoA)
	}
}

func TestUniformSweep(t *testing.T) {
	// Section 8 open problem, exact at n=4: uniform budgets B = 1, 2.
	rows, err := Uniform(4, []int{1, 2}, core.SUM, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Equilibria == 0 {
			t.Fatalf("uniform (%d,%d) game has no equilibria, contradicting Theorem 2.3", r.N, r.B)
		}
		if r.PoA < 1 {
			t.Fatalf("PoA = %f < 1", r.PoA)
		}
	}
	// With B=2 at n=4 the complete-ish graphs dominate: min diameter 1.
	if rows[1].MinDiameter != 1 {
		t.Fatalf("B=2 min diameter = %d, want 1", rows[1].MinDiameter)
	}
}

func TestUniformEquilibriaRespectSection4Bounds(t *testing.T) {
	// Exact confirmation of Theorem 4.1/4.2 at n=5: every unit-budget
	// equilibrium diameter is below the proven caps.
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		rows, err := Uniform(5, []int{1}, ver, 0)
		if err != nil {
			t.Fatal(err)
		}
		r := rows[0]
		capDiam := int64(5) // SUM: diameter < 5
		if ver == core.MAX {
			capDiam = 8 // MAX: diameter < 8
		}
		if r.MaxEqDiameter >= capDiam {
			t.Fatalf("%v: worst unit equilibrium diameter %d >= %d", ver, r.MaxEqDiameter, capDiam)
		}
	}
}
