package experiments

import (
	"encoding/json"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sweep"
)

// Kind classifies a spec's artifact.
type Kind int

const (
	// Sweep specs produce one or more table rows per point over a
	// parameter sweep; they are what point-level sharding is for.
	Sweep Kind = iota
	// Figure specs reproduce one printed figure from a single
	// deterministic construction (one point per job).
	Figure
)

func (k Kind) String() string {
	if k == Figure {
		return "figure"
	}
	return "sweep"
}

// Spec presents one experiment in checkpointable runner form: a Job
// factory (deterministic point list + pure evaluator, see
// internal/runner) and a renderer from stored values back to the
// experiment's tables, plus the metadata the CLI needs to dispatch,
// document, and shard it. The registry (Specs) is the single source of
// truth: the CLI's subcommand table, usage text, `list` output, and
// `all` sequence are all derived from it, and the exported experiment
// functions are wrappers that run the same jobs in memory, so
// store-backed and direct runs produce byte-identical output.
type Spec struct {
	// Name is the canonical spec (and store shard) name.
	Name string
	// Desc is the one-line description shown by usage and `list`.
	Desc string
	// Aliases are alternate subcommand names resolving to this spec;
	// the first alias, when present, is the primary CLI subcommand
	// (e.g. spec "existence" runs as `bbncg exist`).
	Aliases []string
	// Seeded reports whether the point list or evaluation depends on
	// the -seed flag (seed-sensitive experiments never share stored
	// results across seeds; see runner.Point).
	Seeded bool
	// Kind classifies the artifact (sweep table vs printed figure).
	Kind Kind
	// Job builds the experiment's point list and evaluator for one
	// (effort, seed). It must be deterministic: a resumed run
	// regenerates the list and trusts point IDs to mean "same
	// computation".
	Job func(effort Effort, seed int64) runner.Job
	// Render converts the job's values (canonical JSON, point order)
	// into the experiment's output tables.
	Render func(values []json.RawMessage) ([]*sweep.Table, error)
}

// Specs lists every experiment in runner form — the full registry, in
// Table 1 then paper order. Every bbncg subcommand dispatches to one or
// more of these.
func Specs() []Spec {
	return []Spec{
		{
			Name: "table1-trees-max",
			Desc: "Table 1 [Trees, MAX]: spider equilibria, PoA = Theta(n)",
			Job:  func(e Effort, _ int64) runner.Job { return treesMAXJob(e) },
			Render: renderRows(func(rows []treesMAXRow) ([]*sweep.Table, error) {
				return []*sweep.Table{treesMAXTable(rows)}, nil
			}),
		},
		{
			Name: "table1-trees-sum",
			Desc: "Table 1 [Trees, SUM]: binary-tree equilibria, PoA = Theta(log n)",
			Job:  func(e Effort, _ int64) runner.Job { return treesSUMJob(e) },
			Render: renderRows(func(rows []treesSUMRow) ([]*sweep.Table, error) {
				return []*sweep.Table{treesSUMTable(rows)}, nil
			}),
		},
		{
			Name:   "table1-unit-sum",
			Desc:   "Table 1 [All-Unit, SUM]: unit-budget dynamics sweep (Theorem 4.1)",
			Seeded: true,
			Job:    func(e Effort, s int64) runner.Job { return unitJob(core.SUM, e, s) },
			Render: renderRows(func(rows []UnitResult) ([]*sweep.Table, error) {
				return []*sweep.Table{unitTable(core.SUM, rows)}, nil
			}),
		},
		{
			Name:   "table1-unit-max",
			Desc:   "Table 1 [All-Unit, MAX]: unit-budget dynamics sweep (Theorem 4.2)",
			Seeded: true,
			Job:    func(e Effort, s int64) runner.Job { return unitJob(core.MAX, e, s) },
			Render: renderRows(func(rows []UnitResult) ([]*sweep.Table, error) {
				return []*sweep.Table{unitTable(core.MAX, rows)}, nil
			}),
		},
		{
			Name: "table1-positive-max",
			Desc: "Table 1 [All-Positive, MAX]: shift-graph equilibria (Lemma 5.2)",
			Job:  func(e Effort, _ int64) runner.Job { return positiveMAXJob(e) },
			Render: renderRows(func(rows []positiveMAXRow) ([]*sweep.Table, error) {
				return []*sweep.Table{positiveMAXTable(rows)}, nil
			}),
		},
		{
			Name:   "table1-general-sum",
			Desc:   "Table 1 [General, SUM]: diameter upper-bound sweep (Theorem 6.9)",
			Seeded: true,
			Job:    generalSUMJob,
			Render: renderRows(generalSUMTables),
		},
		{
			Name: "fig1",
			Desc: "Figure 1: Theorem 2.3 case-2 equilibrium (n=22)",
			Kind: Figure,
			Job:  figure1Job,
			Render: renderRows(func(rows []fig1Row) ([]*sweep.Table, error) {
				return []*sweep.Table{figure1Table(rows)}, nil
			}),
		},
		{
			Name: "fig2",
			Desc: "Figure 2: spider MAX tree equilibrium",
			Kind: Figure,
			Job: func(e Effort, _ int64) runner.Job {
				k := 5
				if e == Full {
					k = 16
				}
				return figure2Job(k)
			},
			Render: renderRows(func(rows []fig2Row) ([]*sweep.Table, error) {
				return []*sweep.Table{figure2Table(rows)}, nil
			}),
		},
		{
			Name: "fig3",
			Desc: "Figure 3: subtree weights along a longest path",
			Kind: Figure,
			Job: func(e Effort, _ int64) runner.Job {
				k := 4
				if e == Full {
					k = 7
				}
				return figure3Job(k)
			},
			Render: renderRows(func(rows []fig3Row) ([]*sweep.Table, error) {
				return []*sweep.Table{figure3Table(rows)}, nil
			}),
		},
		{
			Name:    "existence",
			Desc:    "existence & price of stability (Theorem 2.3)",
			Aliases: []string{"exist"},
			Seeded:  true,
			Job:     existenceJob,
			Render: renderRows(func(rows []existenceRow) ([]*sweep.Table, error) {
				return []*sweep.Table{existenceTable(rows)}, nil
			}),
		},
		{
			Name:    "reduction",
			Desc:    "NP-hardness reduction cross-check (Theorem 2.1)",
			Aliases: []string{"nphard"},
			Seeded:  true,
			Job:     reductionJob,
			Render: renderRows(func(rows []reductionRow) ([]*sweep.Table, error) {
				t, err := reductionTable(rows)
				if err != nil {
					return nil, err
				}
				return []*sweep.Table{t}, nil
			}),
		},
		{
			Name:    "connectivity",
			Desc:    "connectivity dichotomy (Theorem 7.2)",
			Aliases: []string{"conn"},
			Seeded:  true,
			Job:     connectivityJob,
			Render: renderRows(func(rows []connectivityRow) ([]*sweep.Table, error) {
				return []*sweep.Table{connectivityTable(rows)}, nil
			}),
		},
		{
			Name:    "dynamics-stats",
			Desc:    "convergence statistics (Section 8)",
			Aliases: []string{"dyn"},
			Seeded:  true,
			Job:     dynamicsStatsJob,
			Render: renderRows(func(rows []dynStatsRow) ([]*sweep.Table, error) {
				return []*sweep.Table{dynamicsStatsTable(rows)}, nil
			}),
		},
		{
			Name:    "exact-poa",
			Desc:    "exact PoA/PoS by exhaustive profile enumeration (small n)",
			Aliases: []string{"poa"},
			Job:     func(e Effort, _ int64) runner.Job { return exactPoAJob(e) },
			Render: renderRows(func(rows []poaRow) ([]*sweep.Table, error) {
				return []*sweep.Table{exactPoATable(rows)}, nil
			}),
		},
		{
			Name:    "uniform-budget",
			Desc:    "the Section 8 uniform-budget (B > 1) open problem",
			Aliases: []string{"uniform"},
			Seeded:  true,
			Job:     uniformBudgetJob,
			Render: renderRows(func(rows []uniformRow) ([]*sweep.Table, error) {
				return []*sweep.Table{uniformBudgetTable(rows)}, nil
			}),
		},
		{
			Name:   "baseline",
			Desc:   "contrast with basic network creation games (Alon et al.)",
			Seeded: true,
			Job:    baselineJob,
			Render: renderRows(func(rows [][]baselineRow) ([]*sweep.Table, error) {
				return []*sweep.Table{baselineTable(flatten(rows))}, nil
			}),
		},
		{
			Name:    "weak-machinery",
			Desc:    "Section 6 machinery audits (tree balls, rich leaves, folding)",
			Aliases: []string{"weak"},
			Seeded:  true,
			Job:     weakMachineryJob,
			Render: renderRows(func(rows [][]weakRow) ([]*sweep.Table, error) {
				return []*sweep.Table{weakMachineryTable(flatten(rows))}, nil
			}),
		},
		{
			Name:    "simultaneous",
			Desc:    "sequential vs simultaneous dynamics (Section 8)",
			Aliases: []string{"simul"},
			Seeded:  true,
			Job:     simultaneousJob,
			Render: renderRows(func(rows []simulRow) ([]*sweep.Table, error) {
				return []*sweep.Table{simultaneousTable(rows)}, nil
			}),
		},
		{
			Name: "fip",
			Desc: "exact finite-improvement-property analysis (Section 8)",
			Job:  func(e Effort, _ int64) runner.Job { return fipJob(e) },
			Render: renderRows(func(rows []fipRow) ([]*sweep.Table, error) {
				return []*sweep.Table{fipTable(rows)}, nil
			}),
		},
		{
			Name:   "directed",
			Desc:   "contrast with the directed BBC game (Laoutaris et al.)",
			Seeded: true,
			Job:    directedJob,
			Render: renderRows(func(rows []directedRow) ([]*sweep.Table, error) {
				return []*sweep.Table{directedTable(rows)}, nil
			}),
		},
		{
			Name:    "robustness",
			Desc:    "dynamics robustness across initial overlay families",
			Aliases: []string{"robust"},
			Seeded:  true,
			Job:     robustnessJob,
			Render: renderRows(func(rows []robustRow) ([]*sweep.Table, error) {
				return []*sweep.Table{robustnessTable(rows)}, nil
			}),
		},
		{
			Name:   "treedyn",
			Desc:   "dynamics on random Tree-BG instances (Section 3 empirics)",
			Seeded: true,
			Job:    treeDynamicsJob,
			Render: renderRows(func(rows []treedynRow) ([]*sweep.Table, error) {
				return []*sweep.Table{treeDynamicsTable(rows)}, nil
			}),
		},
		{
			Name:    "weighted-dyn",
			Desc:    "greedy dynamics on arc-weighted overlays (weighted cache tier)",
			Aliases: []string{"wdyn"},
			Seeded:  true,
			Job:     weightedDynJob,
			Render: renderRows(func(rows []weightedDynRow) ([]*sweep.Table, error) {
				return []*sweep.Table{weightedDynTable(rows)}, nil
			}),
		},
	}
}

// SpecNames lists every spec's canonical name, in registry order — the
// experiment vocabulary of this build, which `bbncg doctor` uses to
// flag store shards belonging to no known experiment.
func SpecNames() []string {
	specs := Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// SpecByName finds a spec by canonical name or alias.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
		for _, a := range s.Aliases {
			if a == name {
				return s, true
			}
		}
	}
	return Spec{}, false
}

// Command is one CLI subcommand: a named, documented bundle of specs
// rendered in order. Most commands wrap a single spec (their name is
// the spec's primary alias); table1 and its row shortcuts bundle
// several, and all bundles everything in paper order.
type Command struct {
	Name  string
	Desc  string
	Specs []string
}

// table1Specs is the Table 1 bundle, in printed row order.
var table1Specs = []string{"table1-trees-max", "table1-trees-sum",
	"table1-unit-sum", "table1-unit-max", "table1-positive-max",
	"table1-general-sum"}

// allOrder is the paper-order command sequence reproduced by `all`;
// engine-validation sweeps (wdyn) follow the paper tables.
var allOrder = []string{"fig1", "fig2", "fig3", "table1", "exist",
	"nphard", "conn", "dyn", "poa", "uniform", "baseline", "weak",
	"simul", "fip", "directed", "robust", "treedyn", "wdyn"}

// Commands returns the CLI subcommand registry in usage order,
// generated from the spec registry: single-spec commands inherit the
// spec's primary alias and description, bundles are defined here.
func Commands() []Command {
	one := func(name string) Command {
		s, ok := SpecByName(name)
		if !ok {
			panic("experiments: no spec behind command " + name)
		}
		cmd := Command{Name: s.Name, Desc: s.Desc, Specs: []string{s.Name}}
		if len(s.Aliases) > 0 {
			cmd.Name = s.Aliases[0]
		}
		return cmd
	}
	cmds := []Command{
		{Name: "table1", Desc: "reproduce Table 1 (all rows, both versions)", Specs: table1Specs},
		one("fig1"), one("fig2"), one("fig3"),
		{Name: "unit", Desc: "all-unit-budget dynamics (Theorems 4.1/4.2)",
			Specs: []string{"table1-unit-sum", "table1-unit-max"}},
		{Name: "shift", Desc: "shift-graph lower bound (Lemma 5.2/Theorem 5.3)",
			Specs: []string{"table1-positive-max"}},
		{Name: "sumupper", Desc: "SUM diameter upper-bound sweep (Theorem 6.9)",
			Specs: []string{"table1-general-sum"}},
		one("exist"), one("nphard"), one("conn"), one("dyn"), one("poa"),
		one("uniform"), one("baseline"), one("weak"), one("simul"),
		one("fip"), one("directed"), one("robust"), one("treedyn"),
		one("wdyn"),
	}
	all := Command{Name: "all", Desc: "everything, in paper order"}
	for _, name := range allOrder {
		for _, c := range cmds {
			if c.Name == name {
				all.Specs = append(all.Specs, c.Specs...)
				break
			}
		}
	}
	return append(cmds, all)
}

// CommandByName resolves a CLI subcommand: first the command registry,
// then any spec by canonical name or alias (so every spec is directly
// addressable, e.g. `bbncg table1-unit-sum`).
func CommandByName(name string) (Command, bool) {
	for _, c := range Commands() {
		if c.Name == name {
			return c, true
		}
	}
	if s, ok := SpecByName(name); ok {
		return Command{Name: s.Name, Desc: s.Desc, Specs: []string{s.Name}}, true
	}
	return Command{}, false
}

// renderRows adapts a typed row renderer to the Spec.Render signature.
func renderRows[T any](render func([]T) ([]*sweep.Table, error)) func([]json.RawMessage) ([]*sweep.Table, error) {
	return func(values []json.RawMessage) ([]*sweep.Table, error) {
		rows, err := runner.DecodeAll[T](values)
		if err != nil {
			return nil, err
		}
		return render(rows)
	}
}

// flatten joins per-point row slices (the shape of single-point jobs
// whose one value is the whole row list) into one row list.
func flatten[T any](rows [][]T) []T {
	var out []T
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}

// runRows runs a job in memory and decodes its values; the common body
// of the exported experiment functions. Results round-trip through JSON
// exactly as store-backed runs do.
func runRows[T any](job runner.Job) ([]T, error) {
	rep, err := runner.Run(job, nil, runner.Options{})
	if err != nil {
		return nil, err
	}
	return runner.DecodeAll[T](rep.Values)
}
