package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/bbc"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/runner"
	"repro/internal/sweep"
)

type directedCell struct {
	n, b, trials int
}

type directedRow struct {
	N          int `json:"n"`
	B          int `json:"b"`
	Trials     int `json:"trials"`
	UndConv    int `json:"undConv"`
	UndLoop    int `json:"undLoop"`
	UndNoVer   int `json:"undNoVer"`
	DirConv    int `json:"dirConv"`
	DirLoop    int `json:"dirLoop"`
	DirNoVer   int `json:"dirNoVer"`
	DirMaxLoop int `json:"dirMaxLoop"`
}

func directedJob(effort Effort, seed int64) runner.Job {
	type pt struct{ n, b int }
	pts := []pt{{4, 1}, {5, 1}, {5, 2}}
	trials := 10
	if effort == Full {
		pts = []pt{{4, 1}, {5, 1}, {6, 1}, {7, 1}, {8, 1}, {5, 2}, {6, 2}, {7, 2}}
		trials = 25
	}
	points := make([]runner.Point, len(pts))
	for i, p := range pts {
		points[i] = runner.Point{Exp: "directed",
			Key:  fmt.Sprintf("n=%d,B=%d,trials=%d", p.n, p.b, trials),
			Seed: seed, Data: directedCell{n: p.n, b: p.b, trials: trials}}
	}
	return runner.Job{Exp: "directed", Points: points, Eval: evalDirected}
}

// evalDirected feeds the same starting profiles to the bidirectional
// and the directed engines for one (n, B) cell, so differences are
// attributable to link semantics alone.
func evalDirected(p runner.Point) (any, error) {
	c := p.Data.(directedCell)
	rng := rand.New(rand.NewSource(p.Seed + int64(c.n)*271 + int64(c.b)))
	und := core.UniformGame(c.n, c.b, core.SUM)
	dir := bbc.UniformGame(c.n, c.b)
	r := directedRow{N: c.n, B: c.b, Trials: c.trials}
	pool := cellPool(und)
	defer pool.Close()
	for trial := 0; trial < c.trials; trial++ {
		start := dynamics.RandomProfile(und, rng)
		uRes, err := dynamics.Run(und, start, dynamics.Options{
			Responder:   core.ExactResponder(0),
			Cached:      core.ExactDeviatorResponder(0),
			DetectLoops: true,
			MaxRounds:   600,
			Pool:        pool,
		})
		if err != nil {
			return nil, err
		}
		switch {
		case uRes.Converged:
			r.UndConv++
		case uRes.Loop:
			r.UndLoop++
		default:
			r.UndNoVer++
		}
		dRes, err := dir.Run(start, 600)
		if err != nil {
			return nil, err
		}
		switch {
		case dRes.Converged:
			r.DirConv++
		case dRes.Loop:
			r.DirLoop++
			if dRes.LoopLength > r.DirMaxLoop {
				r.DirMaxLoop = dRes.LoopLength
			}
		default:
			r.DirNoVer++
		}
	}
	return r, nil
}

func directedTable(rows []directedRow) *sweep.Table {
	t := sweep.NewTable("Directed (Laoutaris et al.) vs bidirectional (this paper) dynamics, uniform budgets, SUM",
		"n", "B", "trials", "bidir-converged", "bidir-loops", "dir-converged", "dir-loops", "dir-max-loop-len")
	for _, r := range rows {
		t.Addf(r.N, r.B, r.Trials, r.UndConv, r.UndLoop, r.DirConv, r.DirLoop, r.DirMaxLoop)
	}
	return t
}

// DirectedContrast compares the convergence behaviour of this paper's
// bidirectional game against its ancestor, the directed BBC game of
// Laoutaris et al. (Section 1.1). Laoutaris et al. proved directed
// best-response dynamics can cycle; the bidirectional game converged in
// every run of this repo. The same starting profiles are fed to both
// engines so differences are attributable to link semantics alone.
func DirectedContrast(effort Effort, seed int64) (*sweep.Table, error) {
	rows, err := runRows[directedRow](directedJob(effort, seed))
	if err != nil {
		return nil, err
	}
	return directedTable(rows), nil
}
