package graph

import (
	"math/rand"
	"testing"
)

func TestPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, err := PreferentialAttachment(50, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 50 {
		t.Fatalf("n = %d", d.N())
	}
	// Arriving vertices own exactly m arcs.
	for v := 3; v < 50; v++ {
		if d.OutDegree(v) != 2 {
			t.Fatalf("vertex %d outdegree %d, want 2", v, d.OutDegree(v))
		}
	}
	if !IsConnected(d.Underlying()) {
		t.Fatal("preferential attachment graph disconnected")
	}
	// Degree skew: the max degree should exceed the arrival budget by a
	// fair margin (hubs emerge).
	if d.Underlying().MaxDegree() < 5 {
		t.Fatalf("max degree %d suspiciously small", d.Underlying().MaxDegree())
	}
}

func TestPreferentialAttachmentValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := PreferentialAttachment(5, 0, rng); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := PreferentialAttachment(5, 5, rng); err == nil {
		t.Fatal("m=n accepted")
	}
}

func TestSmallWorldLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, err := SmallWorld(20, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// p=0: pure ring lattice; every vertex owns exactly k/2 = 2 arcs.
	for v := 0; v < 20; v++ {
		if d.OutDegree(v) != 2 {
			t.Fatalf("vertex %d outdegree %d, want 2", v, d.OutDegree(v))
		}
		if !d.HasArc(v, (v+1)%20) || !d.HasArc(v, (v+2)%20) {
			t.Fatalf("vertex %d missing lattice arcs", v)
		}
	}
	// Lattice diameter of C20 with chords to distance 2: 5.
	if diam := Diameter(d.Underlying()); diam != 5 {
		t.Fatalf("lattice diameter = %d, want 5", diam)
	}
}

func TestSmallWorldRewiringShrinksDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lattice, err := SmallWorld(100, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	rewired, err := SmallWorld(100, 4, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	dl := Diameter(lattice.Underlying())
	dr := Diameter(rewired.Underlying())
	if dr < 0 {
		t.Skip("rewired graph disconnected for this seed")
	}
	if dr >= dl {
		t.Fatalf("rewiring did not shrink diameter: %d -> %d", dl, dr)
	}
}

func TestSmallWorldValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SmallWorld(10, 3, 0, rng); err == nil {
		t.Fatal("odd k accepted")
	}
	if _, err := SmallWorld(4, 4, 0, rng); err == nil {
		t.Fatal("k=n accepted")
	}
	if _, err := SmallWorld(10, 2, 1.5, rng); err == nil {
		t.Fatal("p>1 accepted")
	}
}

func TestBudgetsOf(t *testing.T) {
	d := StarGraph(4)
	b := BudgetsOf(d)
	if b[0] != 3 || b[1] != 0 {
		t.Fatalf("budgets = %v", b)
	}
}
