package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// The cost model on a concrete graph: a directed path, SUM version.
func ExampleGame_Cost() {
	d := graph.PathGraph(4) // 0 -> 1 -> 2 -> 3
	g := core.GameOf(d, core.SUM)
	fmt.Println(g.Cost(d, 0)) // 1 + 2 + 3
	fmt.Println(g.Cost(d, 1)) // 1 + 1 + 2
	// Output:
	// 6
	// 4
}

// Computing a best response: the path endpoint rewires to the centre.
func ExampleGame_ExactBestResponse() {
	d := graph.PathGraph(5)
	g := core.GameOf(d, core.SUM)
	br, _ := g.ExactBestResponse(d, 0, 0)
	fmt.Println(br.Strategy, br.Current, "->", br.Cost)
	// Output: [2] 10 -> 8
}

// Verifying an equilibrium: the star is stable, the path is not.
func ExampleGame_VerifyNash() {
	star := graph.StarGraph(5)
	g := core.GameOf(star, core.MAX)
	dev, _ := g.VerifyNash(star, 0)
	fmt.Println("star deviation:", dev)

	path := graph.PathGraph(5)
	gp := core.GameOf(path, core.MAX)
	dev, _ = gp.VerifyNash(path, 0)
	fmt.Println("path has deviation:", dev != nil)
	// Output:
	// star deviation: <nil>
	// path has deviation: true
}

// Section 6's weighted folding: leaves collapse into their owners.
func ExampleWeightedGraph_FoldAllPoorLeaves() {
	wg := core.NewWeighted(graph.StarGraph(4))
	folds := wg.FoldAllPoorLeaves()
	fmt.Println(folds, wg.W[0], wg.AliveCount())
	// Output: 3 4 1
}
