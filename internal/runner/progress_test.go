package runner

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// fakeClock advances a deterministic amount on every reading, so ETA
// lines are exact.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	tick time.Duration
}

func (c *fakeClock) read() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.tick)
	return c.now
}

func progressJob(n int) Job {
	points := make([]Point, n)
	for i := range points {
		points[i] = Point{Exp: "prog", Key: fmt.Sprintf("i=%d", i)}
	}
	return Job{Exp: "prog", Points: points, Eval: func(p Point) (any, error) {
		return map[string]string{"k": p.Key}, nil
	}}
}

// Run must emit throttled progress lines with an ETA, ending on a final
// 100% line.
func TestRunProgressETA(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0), tick: 2 * time.Second}
	defer func(n func() time.Time, iv time.Duration) { timeNow, progressInterval = n, iv }(timeNow, progressInterval)
	timeNow = clock.read
	progressInterval = time.Second // every tick exceeds it: one line per point

	var sb strings.Builder
	rep, err := Run(progressJob(4), nil, Options{Workers: 1, Progress: &sb})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated != 4 {
		t.Fatalf("evaluated %d, want 4", rep.Evaluated)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d progress lines, want 4:\n%s", len(lines), sb.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "runner: prog ") || !strings.Contains(line, "eta ") {
			t.Fatalf("malformed progress line %q", line)
		}
	}
	if want := "runner: prog 4/4 point(s) (100%), eta 0s"; lines[3] != want {
		t.Fatalf("final line %q, want %q", lines[3], want)
	}
	// With one point done every 2s, 3 remain after the first: eta 6s.
	if want := "eta 6s"; !strings.Contains(lines[0], want) {
		t.Fatalf("first line %q does not contain %q", lines[0], want)
	}
}

// A resumed run must report progress over the whole point list (stored
// points count as done), with the ETA extrapolated from this run's
// evaluation rate only.
func TestRunProgressResumed(t *testing.T) {
	clock := &fakeClock{now: time.Unix(2000, 0), tick: 2 * time.Second}
	defer func(n func() time.Time, iv time.Duration) { timeNow, progressInterval = n, iv }(timeNow, progressInterval)
	timeNow = clock.read
	progressInterval = time.Second

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := Run(progressJob(4), st, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep, err := Run(progressJob(6), st, Options{Workers: 1, Progress: &sb})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 4 || rep.Evaluated != 2 {
		t.Fatalf("skipped %d evaluated %d, want 4 and 2", rep.Skipped, rep.Evaluated)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d progress lines, want 2:\n%s", len(lines), sb.String())
	}
	// First evaluated point: 5 of 6 done overall; one point left at one
	// point per 2s.
	if want := "runner: prog 5/6 point(s) (83%), eta 2s"; lines[0] != want {
		t.Fatalf("first line %q, want %q", lines[0], want)
	}
	if want := "runner: prog 6/6 point(s) (100%), eta 0s"; lines[1] != want {
		t.Fatalf("final line %q, want %q", lines[1], want)
	}
}

// No Progress writer, no output path exercised: the meter must be a
// no-op and Run must behave exactly as before.
func TestRunProgressDisabled(t *testing.T) {
	rep, err := Run(progressJob(3), nil, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated != 3 || rep.ShardCounts != nil {
		t.Fatalf("unexpected report %+v", rep)
	}
}

// A sharded Run must report the size of every partition of the full
// point list; partitions are disjoint and complete, and the filtered
// count agrees with the out-of-shard partitions.
func TestRunShardCounts(t *testing.T) {
	job := progressJob(20)
	const k = 3
	var reports []*Report
	total := 0
	for i := 0; i < k; i++ {
		rep, err := Run(job, nil, Options{Workers: 1, Shard: Shard{Index: i, Count: k}})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
		if len(rep.ShardCounts) != k {
			t.Fatalf("shard %d: ShardCounts = %v, want %d entries", i, rep.ShardCounts, k)
		}
		if got := rep.ShardCounts[i]; got != rep.Evaluated {
			t.Fatalf("shard %d: counts[%d] = %d, evaluated %d", i, i, got, rep.Evaluated)
		}
		if rep.Evaluated+rep.Filtered != len(job.Points) {
			t.Fatalf("shard %d: evaluated %d + filtered %d != %d", i, rep.Evaluated, rep.Filtered, len(job.Points))
		}
		total += rep.Evaluated
	}
	for i := 1; i < k; i++ {
		for j := range reports[i].ShardCounts {
			if reports[i].ShardCounts[j] != reports[0].ShardCounts[j] {
				t.Fatalf("shard %d reports counts %v, shard 0 reports %v", i, reports[i].ShardCounts, reports[0].ShardCounts)
			}
		}
	}
	if total != len(job.Points) {
		t.Fatalf("shards evaluated %d points in total, want %d", total, len(job.Points))
	}
}
