package graph

import (
	"math/rand"
	"testing"
)

// scalarSumMerge is the reference the blocked kernel must match: the
// pre-kernel per-entry loop, kept here verbatim as the oracle.
func scalarSumMerge(vec, row []int32) (sum int64, reached int) {
	for w, m := range vec {
		if row != nil {
			if r := row[w]; r < m {
				m = r
			}
		}
		if m < InfDist {
			sum += int64(m) + 1
			reached++
		}
	}
	return sum, reached
}

// randVec draws a distance vector with a mixture of small distances and
// InfDist sentinels (the shapes real rows have).
func randVec(n int, rng *rand.Rand) []int32 {
	v := make([]int32, n)
	for i := range v {
		switch rng.Intn(4) {
		case 0:
			v[i] = InfDist
		default:
			v[i] = int32(rng.Intn(n + 2))
		}
	}
	return v
}

func TestSumMergeMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 3, 4, 5, 7, 8, 63, 64, 65, 200, 513} {
		for trial := 0; trial < 20; trial++ {
			vec := randVec(n, rng)
			row := randVec(n, rng)
			gotS, gotR := SumMerge(vec, row)
			wantS, wantR := scalarSumMerge(vec, row)
			if gotS != wantS || gotR != wantR {
				t.Fatalf("n=%d merged: got (%d,%d), want (%d,%d)", n, gotS, gotR, wantS, wantR)
			}
			gotS, gotR = SumMerge(vec, nil)
			wantS, wantR = scalarSumMerge(vec, nil)
			if gotS != wantS || gotR != wantR {
				t.Fatalf("n=%d vec-only: got (%d,%d), want (%d,%d)", n, gotS, gotR, wantS, wantR)
			}
		}
	}
}

// contribTotal is the "total contribution" the bounded kernel reasons
// in: m+1 per reachable entry, cinf per unreachable one.
func contribTotal(vec, row []int32, cinf int64) int64 {
	var total int64
	for w, m := range vec {
		if row != nil {
			if r := row[w]; r < m {
				m = r
			}
		}
		if m < InfDist {
			total += int64(m) + 1
		} else {
			total += cinf
		}
	}
	return total
}

// TestSumMergeBounded pins the pruning contract on random inputs with a
// valid random floor: when the scan prunes, the true total strictly
// exceeds the budget; when it does not, sum and reached equal SumMerge's.
func TestSumMergeBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 5, 64, 65, 129, 400} {
		cinf := int64(n) * int64(n)
		for trial := 0; trial < 40; trial++ {
			vec := randVec(n, rng)
			row := randVec(n, rng)
			// A sound floor: entrywise at most the merged value.
			suffix := make([]int64, n+1)
			for w := n - 1; w >= 0; w-- {
				m := vec[w]
				if r := row[w]; r < m {
					m = r
				}
				if rng.Intn(2) == 0 && m > 0 && m < InfDist {
					m-- // floors may be slack
				}
				c := cinf
				if m < InfDist {
					c = int64(m) + 1
				}
				suffix[w] = suffix[w+1] + c
			}
			total := contribTotal(vec, row, cinf)
			for _, budget := range []int64{0, total - 1, total, total + 1, 1 << 40} {
				sum, reached, pruned := SumMergeBounded(vec, row, suffix, cinf, budget)
				if pruned {
					if total <= budget {
						t.Fatalf("n=%d: pruned although total %d <= budget %d", n, total, budget)
					}
					continue
				}
				wantS, wantR := SumMerge(vec, row)
				if sum != wantS || reached != wantR {
					t.Fatalf("n=%d: bounded (%d,%d) != merge (%d,%d)", n, sum, reached, wantS, wantR)
				}
			}
		}
	}
}

func TestWeightedSumMergeMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{0, 1, 4, 7, 65, 130} {
		cinf := int64(n) * int64(n)
		for trial := 0; trial < 20; trial++ {
			vec := randVec(n, rng)
			row := randVec(n, rng)
			weight := make([]int64, n)
			for i := range weight {
				weight[i] = int64(rng.Intn(4)) // folded zeros included
			}
			var want int64
			for w, m := range vec {
				if r := row[w]; r < m {
					m = r
				}
				if m < InfDist {
					want += weight[w] * int64(m+1)
				} else {
					want += weight[w] * cinf
				}
			}
			if got := WeightedSumMerge(vec, row, weight, cinf); got != want {
				t.Fatalf("n=%d: got %d, want %d", n, got, want)
			}
			var wantNil int64
			for w, m := range vec {
				if m < InfDist {
					wantNil += weight[w] * int64(m+1)
				} else {
					wantNil += weight[w] * cinf
				}
			}
			if got := WeightedSumMerge(vec, nil, weight, cinf); got != wantNil {
				t.Fatalf("n=%d nil-row: got %d, want %d", n, got, wantNil)
			}
		}
	}
}

func TestMinInto(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{0, 1, 3, 4, 9, 64, 201} {
		vec := randVec(n, rng)
		row := randVec(n, rng)
		want := make([]int32, n)
		for i := range want {
			want[i] = vec[i]
			if row[i] < want[i] {
				want[i] = row[i]
			}
		}
		MinInto(vec, row)
		for i := range want {
			if vec[i] != want[i] {
				t.Fatalf("n=%d entry %d: got %d, want %d", n, i, vec[i], want[i])
			}
		}
	}
}

func BenchmarkSumMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 1024
	vec := randVec(n, rng)
	row := randVec(n, rng)
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SumMerge(vec, row)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scalarSumMerge(vec, row)
		}
	})
}
