//go:build !unix

package fault

import "os"

// die exits immediately with the conventional SIGKILL status. os.Exit
// runs no deferred functions, so the filesystem state it leaves behind
// matches a kill closely enough for crash testing off unix.
func die() {
	os.Exit(137)
}
