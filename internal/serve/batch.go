package serve

import (
	"fmt"
	"net/http"

	"repro/internal/sweep"
	"repro/pkg/bbncg/api"
)

// maxBatchOps bounds one batch request; larger workloads page.
const maxBatchOps = 1024

// handleBatch executes N operations across sessions in one scheduler
// pass. Ops naming the same session run sequentially in request order
// (create-then-query of one id composes inside a single batch);
// distinct sessions run concurrently on the worker pool, amortising
// both HTTP round-trips and pool acquisition. An op that fails fills
// its item's Error and never fails the batch; results come back in
// request order.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("serve: batch has no ops"))
		return
	}
	if len(req.Ops) > maxBatchOps {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Errorf("serve: batch has %d ops; max %d", len(req.Ops), maxBatchOps))
		return
	}
	writeJSON(w, http.StatusOK, s.executeBatch(req))
}

// executeBatch groups ops by session key preserving request order
// within each group, runs the groups concurrently, and reassembles
// results in request order. One Rebalance pass settles pool budgets
// after the whole batch instead of after every op.
func (s *Server) executeBatch(req api.BatchRequest) api.BatchResult {
	type indexed struct {
		i  int
		op api.BatchOp
	}
	groups := make(map[string][]indexed)
	var keys []string
	for i, op := range req.Ops {
		key := op.Session
		if key == "" {
			// A sessionless op (malformed, or a create relying on
			// CreateRequest.ID) gets its own group: nothing to order
			// against.
			key = fmt.Sprintf("\x00op-%d", i)
		}
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], indexed{i, op})
	}
	items := make([]api.BatchItem, len(req.Ops))
	sweep.Parallel(keys, func(key string) struct{} {
		for _, ix := range groups[key] {
			items[ix.i] = s.executeOp(ix.op)
		}
		return struct{}{}
	})
	s.m.Rebalance("")
	return api.BatchResult{Results: items}
}

// executeOp dispatches one batch op, mirroring the corresponding
// HTTP handler.
func (s *Server) executeOp(op api.BatchOp) api.BatchItem {
	item := api.BatchItem{Session: op.Session, Op: op.Op}
	fail := func(err error) api.BatchItem {
		_, code := errToAPI(err)
		item.Error = &api.Error{Code: code, Message: err.Error()}
		return item
	}
	if op.Op == api.OpCreate {
		req := api.CreateRequest{}
		if op.Create != nil {
			req = *op.Create
		}
		if req.ID == "" {
			req.ID = op.Session
		}
		sess, err := s.m.Create(req)
		if err != nil {
			return fail(err)
		}
		info, err := sess.Info(false)
		if err != nil {
			return fail(err)
		}
		item.Session = sess.ID()
		item.Info = &info
		return item
	}
	sess, ok := s.m.Get(op.Session)
	if !ok {
		item.Error = &api.Error{Code: api.CodeNotFound, Message: fmt.Sprintf("serve: no session %q", op.Session)}
		return item
	}
	switch op.Op {
	case api.OpInfo:
		info, err := sess.Info(false)
		if err != nil {
			return fail(err)
		}
		item.Info = &info
	case api.OpRewire:
		if op.Rewire == nil {
			return fail(fmt.Errorf("serve: rewire op needs a rewire body"))
		}
		changed, err := sess.Rewire(op.Rewire.Player, op.Rewire.Strategy, op.Rewire.Weight)
		if err != nil {
			return fail(err)
		}
		item.Rewire = &api.RewireResult{Changed: changed}
	case api.OpBestResponse:
		br, err := sess.BestResponse(op.Player, op.Responder, op.ExactCap)
		if err != nil {
			return fail(err)
		}
		item.BestResponse = &br
	case api.OpEquilibrium:
		eq, err := sess.Equilibrium(op.Responder, op.ExactCap)
		if err != nil {
			return fail(err)
		}
		item.Equilibrium = &eq
	case api.OpWelfare:
		wf, err := sess.Welfare()
		if err != nil {
			return fail(err)
		}
		item.Welfare = &wf
	case api.OpDynamics:
		rounds := 0
		if op.Dynamics != nil {
			if op.Dynamics.From != 0 {
				return fail(fmt.Errorf("serve: dynamics from applies to streamed runs only"))
			}
			rounds = op.Dynamics.Rounds
		}
		rep, err := sess.Step(rounds)
		if err != nil {
			return fail(err)
		}
		item.Dynamics = &rep
	default:
		return fail(fmt.Errorf("serve: unknown batch op %q", op.Op))
	}
	return item
}
