// Command bbncg regenerates every table and figure of "On a Bounded
// Budget Network Creation Game" (SPAA 2011) from the library's exact
// simulators. Every subcommand dispatches through the experiment
// registry (internal/experiments.Specs): each experiment is a Spec — a
// deterministic point list, a pure per-point evaluator, and a renderer
// from stored values to tables — so every command checkpoints, resumes,
// shards, and merges uniformly; `bbncg all` reproduces everything in
// one resumable invocation.
//
// Usage:
//
//	bbncg [-full] [-csv] [-seed N] [-out DIR [-resume] [-shard i/k]] <command>
//	bbncg -out DIR merge <command>
//	bbncg -out DIR fetch SRC [SRC...]
//	bbncg serve -out DIR [-addr :8080]
//	bbncg doctor DIR
//	bbncg version
//	bbncg list
//
// Run `bbncg` with no arguments for the registry-generated command
// list. With -out DIR, results stream point-by-point into a durable
// store (one JSONL shard per experiment, see internal/store); a run
// killed mid-sweep is resumed with -resume, which re-evaluates only the
// missing points and renders output byte-identical to an uninterrupted
// run. SIGINT/SIGTERM stop a checkpointed sweep gracefully: in-flight
// points finish, the store manifest is flushed, and the process exits 5
// with the store ready for -resume. -shard i/k restricts a run to a
// deterministic i-of-k partition of every experiment's point list, the
// unit of scale-out across machines; `fetch` concatenates the shard
// stores and `merge` renders a command's tables purely from the
// combined store, without evaluating anything. `doctor` audits a store
// read-only. `serve` runs the persistent game-session HTTP service
// over the same store machinery (see docs/SERVE.md). See
// docs/RUNNER.md.
//
// Exit codes: 0 success; 1 error; 2 usage; 3 the run completed but
// quarantined point failures (-max-failures; rerun with -resume);
// 4 doctor found problems; 5 a checkpointed sweep was interrupted by
// SIGINT/SIGTERM (continue with -resume).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/version"
)

func main() {
	// serve owns its flag set (its flags are unrelated to the sweep
	// flags), and version must work without parsing anything, so both
	// dispatch before the global flag.Parse.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serveMain(os.Args[2:])
			return
		case "loadgen":
			loadgenMain(os.Args[2:])
			return
		case "version", "-version", "--version":
			fmt.Println(version.String())
			return
		}
	}
	full := flag.Bool("full", false, "run the full sweep ranges from EXPERIMENTS.md (slower)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := flag.Int64("seed", 1, "seed for randomized sweeps")
	out := flag.String("out", "", "stream sweep results into a checkpoint store at this directory")
	resume := flag.Bool("resume", false, "continue an existing store: skip already-evaluated points")
	shardFlag := flag.String("shard", "", "evaluate only partition i of k (\"i/k\") of every point list")
	poolMB := flag.Int64("poolmb", 0, "dynamics distance-cache pool budget in MiB (0 = default 1024; MAX games add level sets worth ~(diam+1)/32 of it on top; see docs/RUNNER.md)")
	retry := flag.Int("retry", 0, "re-attempt each transiently failing point up to N extra times")
	maxFailures := flag.Int("max-failures", 0, "keep going while at most N points fail, quarantining them for -resume (-1 = unlimited, 0 = abort on failure)")
	fsync := flag.Bool("fsync", false, "fsync every store append and manifest write (survives power loss, slower)")
	flag.Usage = usage
	flag.Parse()
	// Fault injection (BBNCG_FAULTS) is armed before anything can hit a
	// failpoint; unset, this is a no-op and every site stays free.
	if err := fault.ArmFromEnv(); err != nil {
		fatal(err)
	}
	effort := experiments.Quick
	if *full {
		effort = experiments.Full
	}
	if *poolMB > 0 {
		core.DefaultPoolBudget = *poolMB << 20
	}
	shard, err := runner.ParseShard(*shardFlag)
	if err != nil {
		fatal(err)
	}
	app := &app{out: os.Stdout, effort: effort, csv: *csv, seed: *seed, shard: shard}
	if *out != "" {
		// Long checkpointed sweeps get progress/ETA lines on stderr;
		// rendered output on stdout is untouched.
		app.progress = os.Stderr
	}

	cmd := flag.Arg(0)
	want := 1
	if cmd == "merge" {
		app.merge = true
		cmd = flag.Arg(1)
		want = 2
	}
	if cmd == "fetch" {
		// fetch concatenates shard stores into -out and exits; it never
		// evaluates or renders anything, so evaluation flags are errors
		// rather than silent no-ops.
		if *out == "" || flag.NArg() < 2 || app.merge {
			usage()
			os.Exit(2)
		}
		if *resume || shard.Active() {
			fatal(fmt.Errorf("fetch only concatenates stores; -resume and -shard do not apply"))
		}
		added, err := store.Concat(*out, flag.Args()[1:]...)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fetch: %d record(s) added to %s\n", added, *out)
		return
	}
	if cmd == "doctor" {
		// doctor audits a store directory read-only and exits; the
		// directory is positional, so the store/evaluation flags are
		// usage errors.
		if flag.NArg() != 2 || app.merge || *out != "" || *resume || shard.Active() {
			usage()
			os.Exit(2)
		}
		doctor(flag.Arg(1))
		return
	}
	if cmd == "list" && (*out != "" || *resume || shard.Active() || app.merge) {
		fatal(fmt.Errorf("list only prints the registry; store flags and merge do not apply"))
	}
	if flag.NArg() != want || cmd == "" {
		usage()
		os.Exit(2)
	}
	if app.merge && *out == "" {
		fatal(fmt.Errorf("merge needs -out DIR to read from"))
	}
	if *resume && *out == "" {
		fatal(fmt.Errorf("-resume needs -out DIR (there is no default store)"))
	}
	if shard.Active() {
		if *out == "" {
			fatal(fmt.Errorf("-shard evaluates into a store and renders nothing; it needs -out DIR"))
		}
		if app.merge {
			fatal(fmt.Errorf("merge renders the full point list; -shard applies to evaluation runs"))
		}
	}
	if *fsync && *out == "" {
		fatal(fmt.Errorf("-fsync applies to store writes; it needs -out DIR"))
	}
	if *out != "" && cmd != "list" {
		st, err := store.OpenWith(*out, store.Options{Fsync: *fsync})
		if err != nil {
			fatal(err)
		}
		if !app.merge && !*resume && st.Len() > 0 {
			st.Close()
			fatal(fmt.Errorf("store %s already holds %d result(s); pass -resume to continue it", *out, st.Len()))
		}
		app.st = st
	}
	app.retry = *retry
	app.maxFailures = *maxFailures
	if app.st != nil && !app.merge {
		// Checkpointed evaluation runs stop gracefully on SIGINT/SIGTERM:
		// no new point starts, in-flight points land in the store, the
		// manifest is flushed on close, and the process exits 5 so driving
		// scripts know to come back with -resume. A second signal falls
		// through to the default handler and kills immediately.
		done := make(chan struct{})
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			signal.Stop(sigc)
			fmt.Fprintln(os.Stderr, "bbncg: interrupted — finishing in-flight points and flushing the store (continue with -resume)")
			close(done)
		}()
		app.done = done
	}
	err = app.run(cmd)
	if app.st != nil {
		if cerr := app.st.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			line := fmt.Sprintf("runner: %d point(s) evaluated, %d served from %s",
				app.evaluated, app.skipped, *out)
			if app.retried > 0 {
				line += fmt.Sprintf(", %d retried", app.retried)
			}
			if app.failed > 0 {
				line += fmt.Sprintf(", %d FAILED (quarantined)", app.failed)
			}
			if app.interrupted > 0 {
				line += fmt.Sprintf(", %d interrupted", app.interrupted)
			}
			if app.shard.Active() {
				line += fmt.Sprintf(", %d outside shard %s", app.filtered, app.shard)
			}
			fmt.Fprintln(os.Stderr, line)
			if app.shard.Active() && len(app.shardCounts) > 0 {
				fmt.Fprintf(os.Stderr, "runner: shard point counts: %s (this shard: %d)\n",
					intsLine(app.shardCounts), app.shard.Index)
			}
		}
	}
	if err != nil {
		fatal(err)
	}
	if app.interrupted > 0 {
		// The signal handler already explained itself; the distinct exit
		// code is the machine-readable half of the contract.
		os.Exit(5)
	}
	if app.failed > 0 {
		// The run finished but -max-failures quarantined some points:
		// nothing was rendered and the store is incomplete. A distinct
		// exit code keeps driving scripts honest.
		fmt.Fprintf(os.Stderr, "bbncg: %d point(s) failed and are quarantined in %s; inspect with `bbncg doctor %s`, retry with -resume\n",
			app.failed, *out, *out)
		os.Exit(3)
	}
}

// doctor runs the read-only store audit, printing the machine-readable
// report on stdout; problems exit 4.
func doctor(dir string) {
	rep, err := store.Audit(dir, append(experiments.SpecNames(), serve.ExpPattern)...)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if !rep.OK() {
		fmt.Fprintf(os.Stderr, "bbncg: doctor found %d problem(s) in %s\n", len(rep.Problems), dir)
		os.Exit(4)
	}
	fmt.Fprintf(os.Stderr, "bbncg: doctor found no problems in %s\n", dir)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bbncg: %v\n", err)
	os.Exit(1)
}

// serveMain runs the persistent game-session service (internal/serve):
// sessions are created and queried over HTTP/JSON, every mutation is
// durably event-logged into the -out store, and a restart on the same
// directory replays each session byte-identically. SIGINT/SIGTERM
// drain in-flight requests and flush the store. See docs/SERVE.md.
func serveMain(args []string) {
	fs := flag.NewFlagSet("bbncg serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; :0 picks a free port, printed on stderr)")
	out := fs.String("out", "", "session store directory (required; reopened stores replay their sessions)")
	sessionMB := fs.Int64("sessionmb", 0, "per-session warm-cache budget in MiB (0 = library default)")
	poolMB := fs.Int64("poolmb", 0, "global warm-cache cap in MiB across sessions; exceeding it evicts LRU sessions' caches (0 = uncapped)")
	anchorEvery := fs.Int("anchor", 0, "event-log snapshot cadence in mutations (0 = default 64)")
	maxN := fs.Int("maxn", 0, "largest session player count accepted (0 = default 4096)")
	fsync := fs.Bool("fsync", false, "fsync every event append (survives power loss, slower)")
	rps := fs.Float64("rps", 0, "per-client token rate on /v1 routes (0 = unthrottled)")
	burst := fs.Int("burst", 0, "per-client token-bucket burst (0 with -rps = 2*rps)")
	inflight := fs.Int("inflight", 0, "per-client concurrent /v1 request cap (0 = uncapped)")
	heartbeat := fs.Duration("heartbeat", 0, "SSE heartbeat cadence for streamed dynamics (0 = default 10s)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bbncg serve -out DIR [-addr :8080] [-sessionmb N] [-poolmb N] [-anchor N] [-maxn N] [-fsync] [-rps N -burst N] [-inflight N] [-heartbeat D]")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *out == "" || fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}
	if err := fault.ArmFromEnv(); err != nil {
		fatal(err)
	}
	m, err := serve.Open(*out, serve.Options{
		SessionPoolBudget: *sessionMB << 20,
		GlobalPoolBudget:  *poolMB << 20,
		AnchorEvery:       *anchorEvery,
		MaxSessionN:       *maxN,
		Fsync:             *fsync,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bbncg serve: %s — %d session(s) replayed from %s\n", version.String(), m.Len(), *out)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ready := make(chan net.Addr, 1)
	go func() {
		// The "listening on" line is the machine-readable half of -addr
		// :0 — the crash suite and the smoke script parse the bound port
		// from it.
		fmt.Fprintf(os.Stderr, "bbncg serve: listening on %s\n", <-ready)
	}()
	cfg := serve.Config{
		Quota:          serve.QuotaConfig{RPS: *rps, Burst: *burst, MaxInFlight: *inflight},
		HeartbeatEvery: *heartbeat,
	}
	if err := serve.Run(ctx, *addr, m, cfg, ready); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "bbncg serve: drained, store flushed")
}

// usage is generated from the command registry, so the help text can
// never drift from what actually dispatches.
func usage() {
	fmt.Fprintf(os.Stderr, `usage: bbncg [-full] [-csv] [-seed N] [-out DIR [-resume] [-shard i/k] [-retry N] [-max-failures N] [-fsync]] <command>
       bbncg -out DIR merge <command>
       bbncg -out DIR fetch SRC [SRC...]
       bbncg serve -out DIR [-addr :8080]
       bbncg loadgen -addr HOST:PORT [-sessions N] [-check]
       bbncg doctor DIR
       bbncg version

commands:
`)
	cmds := experiments.Commands()
	width := len("merge")
	for _, c := range cmds {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, c := range cmds {
		fmt.Fprintf(os.Stderr, "  %-*s  %s\n", width, c.Name, c.Desc)
	}
	fmt.Fprintf(os.Stderr, "  %-*s  %s\n", width, "list", "print the experiment registry (specs, flags, point counts)")
	fmt.Fprintf(os.Stderr, "  %-*s  %s\n", width, "merge", "render a command's tables from an existing -out store")
	fmt.Fprintf(os.Stderr, "  %-*s  %s\n", width, "fetch", "concatenate shard stores (e.g. from -shard runs) into -out")
	fmt.Fprintf(os.Stderr, "  %-*s  %s\n", width, "doctor", "audit a store directory read-only (counts, checksums, failures)")
	fmt.Fprintf(os.Stderr, "  %-*s  %s\n", width, "serve", "persistent game-session HTTP service over a durable store (docs/SERVE.md)")
	fmt.Fprintf(os.Stderr, "  %-*s  %s\n", width, "loadgen", "drive mixed traffic at a running serve instance and report latency/pool gates")
	fmt.Fprintf(os.Stderr, "  %-*s  %s\n", width, "version", "print the build identity (module, VCS revision, go version)")
	fmt.Fprintf(os.Stderr, `
Any spec name from `+"`bbncg list`"+` is also a command. -out DIR
checkpoints results per point (with progress/ETA on stderr); -resume
continues an interrupted -out run; -shard i/k evaluates one
deterministic partition of every point list (run all k shards, fetch,
then merge). -retry N re-attempts transiently failing points;
-max-failures N quarantines up to N failed points for a later -resume
(exit code 3). -poolmb caps the incremental dynamics cache pool
(BBNCG_INCREMENTAL=0 disables it). See docs/RUNNER.md.
`)
}

type app struct {
	out      io.Writer
	effort   experiments.Effort
	csv      bool
	seed     int64
	shard    runner.Shard
	progress io.Writer // stderr for -out runs; nil otherwise

	// Checkpointing state (nil/false without -out).
	st    *store.Store
	merge bool
	// Failure-handling knobs forwarded to runner.Options.
	retry       int
	maxFailures int
	// done, when non-nil, is closed by the signal handler to stop the
	// sweep gracefully (forwarded to runner.Options.Done).
	done <-chan struct{}
	// Resume accounting, reported on stderr and asserted by tests.
	evaluated   int
	skipped     int
	filtered    int
	retried     int
	failed      int
	interrupted int
	// Per-partition point counts summed over the run's specs (sharded
	// runs only).
	shardCounts []int
}

// retryBackoff is the first-retry sleep under -retry; each further
// attempt doubles it (see runner.Options.RetryBackoff).
const retryBackoff = 100 * time.Millisecond

// intsLine renders shard counts as a space-separated list.
func intsLine(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, " ")
}

func (a *app) emit(t *sweep.Table) error {
	var err error
	if a.csv {
		err = t.CSV(a.out)
	} else {
		err = t.Render(a.out)
	}
	if err == nil {
		_, err = fmt.Fprintln(a.out)
	}
	return err
}

// runSpecs runs (or, under merge, re-renders) the named experiment
// specs against the app's store, emitting every table. Under an active
// shard the evaluated results stream into the store and rendering is
// skipped — a shard holds only part of every point list.
func (a *app) runSpecs(names ...string) error {
	for _, name := range names {
		spec, ok := experiments.SpecByName(name)
		if !ok {
			return fmt.Errorf("no spec %q registered", name)
		}
		job := spec.Job(a.effort, a.seed)
		var rep *runner.Report
		var err error
		if a.merge {
			rep, err = runner.Merge(job, a.st)
		} else {
			rep, err = runner.Run(job, a.st, runner.Options{
				Shard: a.shard, Progress: a.progress,
				Retry: a.retry, RetryBackoff: retryBackoff, MaxFailures: a.maxFailures,
				Done: a.done,
			})
		}
		if err != nil {
			return err
		}
		a.evaluated += rep.Evaluated
		a.skipped += rep.Skipped
		a.filtered += rep.Filtered
		a.retried += rep.Retried
		a.failed += rep.Failed
		a.interrupted += rep.Interrupted
		if rep.ShardCounts != nil {
			if a.shardCounts == nil {
				a.shardCounts = make([]int, len(rep.ShardCounts))
			}
			for i, c := range rep.ShardCounts {
				a.shardCounts[i] += c
			}
		}
		if a.shard.Active() {
			continue
		}
		if rep.Failed > 0 || rep.Interrupted > 0 {
			// Quarantined or interrupted points left nil values; the spec
			// cannot render a partial sweep. The run keeps going so the
			// other specs still checkpoint (an interrupted run drains them
			// near-instantly), and main exits 3 or 5.
			continue
		}
		tables, err := spec.Render(rep.Values)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := a.emit(t); err != nil {
				return err
			}
		}
	}
	return nil
}

// run dispatches one subcommand through the registry.
func (a *app) run(cmd string) error {
	if cmd == "list" {
		return a.list()
	}
	c, ok := experiments.CommandByName(cmd)
	if !ok {
		return fmt.Errorf("unknown command %q (run with no arguments for usage)", cmd)
	}
	return a.runSpecs(c.Specs...)
}

// list prints the experiment registry: every spec with its metadata and
// Quick/Full point counts, then the subcommand bundles.
func (a *app) list() error {
	st := sweep.NewTable("experiment registry (specs)",
		"spec", "kind", "seeded", "points(quick)", "points(full)", "aliases", "description")
	for _, s := range experiments.Specs() {
		aliases := strings.Join(s.Aliases, " ")
		if aliases == "" {
			aliases = "-"
		}
		st.Addf(s.Name, s.Kind, yesNo(s.Seeded),
			len(s.Job(experiments.Quick, a.seed).Points),
			len(s.Job(experiments.Full, a.seed).Points), aliases, s.Desc)
	}
	if err := a.emit(st); err != nil {
		return err
	}
	ct := sweep.NewTable("subcommands", "command", "specs", "description")
	for _, c := range experiments.Commands() {
		ct.Addf(c.Name, len(c.Specs), c.Desc)
	}
	return a.emit(ct)
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
