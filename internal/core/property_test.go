package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Property-based equivalence across the graph generator families: on
// realizations drawn from every generator in internal/graph, the cached
// (EnsureCache) and uncached (per-candidate BFS) Deviator paths must
// agree exactly — candidate evaluation, exact best-response values, and
// the equilibrium verdict — for both SUM and MAX. The existing
// distcache tests cover random out-digraphs; this suite pins the
// engine's behaviour on the structured families (paths, cycles, stars,
// grids, trees, preferential attachment, small world), whose
// bridge/leaf/hub structure exercises different component and
// eccentricity shapes.

// generatorCorpus draws one realization per generator family. Sizes are
// kept small enough for exact verification of every instance.
func generatorCorpus(rng *rand.Rand) []struct {
	name string
	d    *graph.Digraph
} {
	pa, err := graph.PreferentialAttachment(9, 2, rng)
	if err != nil {
		panic(err)
	}
	sw, err := graph.SmallWorld(10, 2, 0.3, rng)
	if err != nil {
		panic(err)
	}
	budgets := make([]int, 8)
	for i := range budgets {
		budgets[i] = rng.Intn(3)
	}
	return []struct {
		name string
		d    *graph.Digraph
	}{
		{"path", graph.PathGraph(7)},
		{"cycle", graph.CycleGraph(8)},
		{"star", graph.StarGraph(8)},
		{"tree", graph.RandomTree(9, rng)},
		{"grid", graph.GridGraph(3, 3)},
		{"random-out", graph.RandomOutDigraph(budgets, rng)},
		{"pref-attach", pa},
		{"small-world", sw},
	}
}

func TestPropertyCachedEvalAcrossGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(7001))
	for round := 0; round < 5; round++ {
		for _, inst := range generatorCorpus(rng) {
			for _, version := range []Version{SUM, MAX} {
				g := GameOf(inst.d, version)
				n := g.N()
				for u := 0; u < n; u++ {
					plain := NewDeviator(g, inst.d, u)
					cached := NewDeviator(g, inst.d, u)
					if !cached.EnsureCache(1 << 40) {
						t.Fatalf("%s: cache refused", inst.name)
					}
					for k := 0; k <= 3 && k <= n-1; k++ {
						s := randomStrategy(n, u, k, rng)
						if got, want := cached.Eval(s), plain.Eval(s); got != want {
							t.Fatalf("%s %v u=%d s=%v: cached %d, BFS %d",
								inst.name, version, u, s, got, want)
						}
					}
					cached.Release()
				}
			}
		}
	}
}

func TestPropertyBestResponseAcrossGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(7002))
	for _, inst := range generatorCorpus(rng) {
		for _, version := range []Version{SUM, MAX} {
			g := GameOf(inst.d, version)
			for u := 0; u < g.N(); u++ {
				fast, err := g.ExactBestResponse(inst.d, u, 0)
				if err != nil {
					t.Fatal(err)
				}
				var slow BestResponse
				var slowErr error
				withCacheBudget(0, func() { slow, slowErr = g.ExactBestResponse(inst.d, u, 0) })
				if slowErr != nil {
					t.Fatal(slowErr)
				}
				if fast.Cost != slow.Cost || fast.Current != slow.Current || fast.Explored != slow.Explored {
					t.Fatalf("%s %v u=%d: cached %+v, uncached %+v", inst.name, version, u, fast, slow)
				}
				if !equalInts(fast.Strategy, slow.Strategy) {
					t.Fatalf("%s %v u=%d: cached strategy %v, uncached %v",
						inst.name, version, u, fast.Strategy, slow.Strategy)
				}
			}
		}
	}
}

func TestPropertyVerifyNashAcrossGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(7003))
	for _, inst := range generatorCorpus(rng) {
		for _, version := range []Version{SUM, MAX} {
			g := GameOf(inst.d, version)
			devFast, err := g.VerifyNash(inst.d, 0)
			if err != nil {
				t.Fatal(err)
			}
			var devSlow *Deviation
			var slowErr error
			withCacheBudget(0, func() { devSlow, slowErr = g.VerifyNash(inst.d, 0) })
			if slowErr != nil {
				t.Fatal(slowErr)
			}
			if (devFast == nil) != (devSlow == nil) {
				t.Fatalf("%s %v: cached verdict %v, uncached %v", inst.name, version, devFast, devSlow)
			}
			// Witnesses may name different players (the parallel scan
			// returns the first found), but each must be a genuine strict
			// improvement under the opposite path.
			for label, dev := range map[string]*Deviation{"cached": devFast, "uncached": devSlow} {
				if dev == nil {
					continue
				}
				dv := NewDeviator(g, inst.d, dev.Vertex)
				if got := dv.Eval(dev.NewStrategy); got != dev.NewCost || got >= dev.OldCost {
					t.Fatalf("%s %v: %s witness %v does not replay (eval %d)",
						inst.name, version, label, dev, got)
				}
			}
		}
	}
}

// The kappa (component-counting) rule must agree between paths on
// disconnected strategies too: strip a generator instance down to
// isolated pockets by zeroing some budgets.
func TestPropertyDisconnectedAcrossGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(7004))
	for round := 0; round < 10; round++ {
		for _, inst := range generatorCorpus(rng) {
			d := inst.d.Clone()
			n := d.N()
			// Remove every arc of a few random owners.
			for i := 0; i < 1+n/3; i++ {
				d.SetOut(rng.Intn(n), nil)
			}
			for _, version := range []Version{SUM, MAX} {
				g := GameOf(d, version)
				u := rng.Intn(n)
				plain := NewDeviator(g, d, u)
				cached := NewDeviator(g, d, u)
				if !cached.EnsureCache(1 << 40) {
					t.Fatalf("%s: cache refused", inst.name)
				}
				for k := 0; k <= 2 && k <= n-1; k++ {
					s := randomStrategy(n, u, k, rng)
					if got, want := cached.Eval(s), plain.Eval(s); got != want {
						t.Fatalf("%s %v u=%d s=%v (sparse): cached %d, BFS %d",
							inst.name, version, u, s, got, want)
					}
				}
				cached.Release()
			}
		}
	}
}
