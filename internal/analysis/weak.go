package analysis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Section 6 audits: the machinery behind the 2^O(sqrt(log n)) SUM upper
// bound, checked computationally. Theorem 6.1 bounds the radius of
// tree-like balls around any vertex of an equilibrium by O(log n);
// Lemma 6.4 pins any two rich leaves of a weak equilibrium within
// distance 2; Corollary 6.3 says folding away all poor leaves preserves
// weak equilibrium and shrinks the diameter by only O(log w(G)).

// TreeBallRadius returns the largest radius r such that the subgraph
// induced by B_r(u) = {v : dist(u,v) <= r} is a tree (connected and
// acyclic, counting a brace as a cycle). For a vertex inside a tree
// component it returns the eccentricity of u. Theorem 6.1: on SUM
// equilibria this radius is O(log n).
func TreeBallRadius(d *graph.Digraph, u int) int {
	a := d.Underlying()
	n := d.N()
	dist := graph.BFSDist(a, u)
	var maxEcc int32
	for _, dv := range dist {
		if dv > maxEcc {
			maxEcc = dv
		}
	}
	// Braces inside the ball are 2-cycles: radius must stop before
	// swallowing both endpoints of one.
	braceAt := func(r int32) bool {
		for _, br := range d.Braces() {
			if dist[br[0]] >= 0 && dist[br[1]] >= 0 && dist[br[0]] <= r && dist[br[1]] <= r {
				return true
			}
		}
		return false
	}
	best := 0
	for r := int32(0); r <= maxEcc; r++ {
		// Count vertices and induced edges within radius r.
		vertices, edges := 0, 0
		for v := 0; v < n; v++ {
			if dist[v] < 0 || dist[v] > r {
				continue
			}
			vertices++
			for _, w := range a[v] {
				if w > v && dist[w] >= 0 && dist[w] <= r {
					edges++
				}
			}
		}
		if edges != vertices-1 || braceAt(r) {
			break // induced ball has a cycle (or is somehow fragmented)
		}
		best = int(r)
	}
	return best
}

// MaxTreeBallRadius returns the largest tree-ball radius over all
// vertices — the quantity Theorem 6.1 bounds by O(log n) on equilibria.
func MaxTreeBallRadius(d *graph.Digraph) int {
	best := 0
	for u := 0; u < d.N(); u++ {
		if r := TreeBallRadius(d, u); r > best {
			best = r
		}
	}
	return best
}

// RichLeafAudit is the Lemma 6.4 check on a weighted weak equilibrium.
type RichLeafAudit struct {
	RichLeaves  []int
	MaxPairDist int32 // 0 when fewer than two rich leaves
	Holds       bool  // MaxPairDist <= 2
}

// AuditRichLeaves measures the maximum pairwise distance between rich
// leaves of wg. On weighted weak equilibria Lemma 6.4 caps it at 2.
func AuditRichLeaves(wg *core.WeightedGraph) RichLeafAudit {
	audit := RichLeafAudit{RichLeaves: wg.RichLeaves(), Holds: true}
	a := wg.D.Underlying()
	for i, u := range audit.RichLeaves {
		dist := graph.BFSDist(a, u)
		for _, v := range audit.RichLeaves[i+1:] {
			if dist[v] < 0 {
				continue // different components: lemma assumes connected
			}
			if dist[v] > audit.MaxPairDist {
				audit.MaxPairDist = dist[v]
			}
		}
	}
	audit.Holds = audit.MaxPairDist <= 2
	return audit
}

// FoldReport records a Corollary 6.3 folding experiment.
type FoldReport struct {
	Folds            int
	DiameterBefore   int32
	DiameterAfter    int32 // diameter of the alive induced subgraph
	AliveBefore      int
	AliveAfter       int
	WeightConserved  bool
	WeakBefore       bool // no improving swap before folding
	WeakAfter        bool // ... and after (Corollary 6.3's invariant)
	DiameterShrink   int32
	LogWeightCeiling int // ceil(log2 w(G)) + 1, the shrink budget per fold chain
}

// FoldExperiment runs the Corollary 6.3 pipeline on a weighted graph:
// measure, fold all poor leaves, re-measure. The weak-equilibrium flags
// let tests confirm the corollary's "G' is also a weak equilibrium"
// claim on graphs that start as weak equilibria.
func FoldExperiment(wg *core.WeightedGraph) (FoldReport, error) {
	if wg.AliveCount() == 0 {
		return FoldReport{}, fmt.Errorf("analysis: empty weighted graph")
	}
	report := FoldReport{
		AliveBefore:    wg.AliveCount(),
		DiameterBefore: aliveDiameter(wg),
		WeakBefore:     wg.WeakDeviation() == nil,
	}
	weightBefore := wg.TotalWeight()
	report.Folds = wg.FoldAllPoorLeaves()
	report.AliveAfter = wg.AliveCount()
	report.DiameterAfter = aliveDiameter(wg)
	report.WeightConserved = wg.TotalWeight() == weightBefore
	report.WeakAfter = wg.WeakDeviation() == nil
	report.DiameterShrink = report.DiameterBefore - report.DiameterAfter
	for w := int64(1); w < weightBefore; w *= 2 {
		report.LogWeightCeiling++
	}
	report.LogWeightCeiling++
	return report, nil
}

// aliveDiameter computes the diameter of the subgraph induced by alive
// vertices (the folded graph), -1 if disconnected or empty.
func aliveDiameter(wg *core.WeightedGraph) int32 {
	a := wg.D.Underlying()
	alive := make([]int, 0, wg.D.N())
	for v := 0; v < wg.D.N(); v++ {
		if wg.Alive(v) {
			alive = append(alive, v)
		}
	}
	if len(alive) == 0 {
		return -1
	}
	// Folding only removes leaves, so alive vertices keep their pairwise
	// distances within the alive subgraph equal to distances in the full
	// graph; BFS from each alive vertex over the full adjacency is exact.
	var diam int32
	for _, u := range alive {
		dist := graph.BFSDist(a, u)
		for _, v := range alive {
			if dist[v] < 0 {
				return -1
			}
			if dist[v] > diam {
				diam = dist[v]
			}
		}
	}
	return diam
}

// DegreeTwoPathEdges counts, along the path vertices supplied, the edges
// whose two endpoints both have degree 2 — the quantity Lemma 6.5 bounds
// by O(log w(P)) on weak equilibria.
func DegreeTwoPathEdges(a graph.Und, path []int) int {
	count := 0
	for i := 0; i+1 < len(path); i++ {
		if a.Degree(path[i]) == 2 && a.Degree(path[i+1]) == 2 {
			count++
		}
	}
	return count
}
