package graph

import "math/bits"

// Flat compressed-sparse-row adjacency. The pointer-per-vertex layout of
// Und is convenient for mutation but hostile to the cache during bulk BFS
// work: every neighbour list is a separate allocation. CSR packs the whole
// adjacency into two flat int32 arrays, so the distance-matrix fill phase
// of the deviation engine (internal/core) streams memory linearly and the
// per-row BFS touches no pointers at all.

// InfDist is the "unreachable" sentinel used by CSR distance rows. It is
// large enough that min-merges over rows never have to special-case it
// (InfDist+1 does not overflow int32) while any finite distance, at most
// n-1 < 2^31, stays below it.
const InfDist int32 = 1 << 30

// CSR is an immutable compressed-sparse-row view of an undirected
// adjacency: the neighbours of v are Nbrs[Indptr[v]:Indptr[v+1]]. A CSR is
// safe for concurrent use by any number of readers.
type CSR struct {
	Indptr []int32 // length n+1, monotone
	Nbrs   []int32 // length sum of degrees
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.Indptr) - 1 }

// NewCSR packs a into compressed-sparse-row form.
func NewCSR(a Und) *CSR {
	return newCSR(a, -1)
}

// NewCSRExcluding packs a with vertex u deleted: u's row is empty and u is
// dropped from every neighbour list. BFS over the result computes
// distances in G - u, the quantity the deviation engine caches (a shortest
// path from a deviating player never revisits the player, so distances
// from every anchor in G - u determine every deviated distance).
func NewCSRExcluding(a Und, u int) *CSR {
	return newCSR(a, u)
}

func newCSR(a Und, skip int) *CSR {
	n := len(a)
	indptr := make([]int32, n+1)
	total := 0
	for v, nb := range a {
		if v == skip {
			indptr[v+1] = int32(total)
			continue
		}
		for _, w := range nb {
			if w != skip {
				total++
			}
		}
		indptr[v+1] = int32(total)
	}
	nbrs := make([]int32, 0, total)
	for v, nb := range a {
		if v == skip {
			continue
		}
		for _, w := range nb {
			if w != skip {
				nbrs = append(nbrs, int32(w))
			}
		}
	}
	return &CSR{Indptr: indptr, Nbrs: nbrs}
}

// BFSRow fills row (length n) with distances from src over c, writing
// InfDist for unreachable vertices. queue must have capacity n; it is
// used as the BFS frontier and returned contents are unspecified. The
// whole row is rewritten, so no clearing between calls is needed.
func (c *CSR) BFSRow(src int32, row []int32, queue []int32) {
	for i := range row {
		row[i] = InfDist
	}
	row[src] = 0
	queue = queue[:0]
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := row[v] + 1
		for _, w := range c.Nbrs[c.Indptr[v]:c.Indptr[v+1]] {
			if row[w] == InfDist {
				row[w] = dv
				queue = append(queue, w)
			}
		}
	}
}

// DistanceRowsInto fills dst (length n*n) with all-pairs distances over c:
// dst[v*n+w] is the distance from v to w, InfDist when unreachable.
//
// Sources are processed in batches of 64 by a word-parallel BFS: each
// vertex carries a bitmask of which sources in the batch have reached it,
// so one level of 64 simultaneous BFS costs O(n + m) word operations
// instead of 64 separate traversals — a ~word-width win on the
// low-diameter graphs the game produces. Distances are recorded through
// the symmetry D[v][w] = D[w][v] of the undirected graph: a batch writes
// the contiguous column block [batch*64, batch*64+64) of row w, keeping
// the writes cache-resident and the batches disjoint. Batches are
// distributed over the AllPairs worker pool, each worker owning private
// mask buffers.
func (c *CSR) DistanceRowsInto(dst []int32) {
	n := c.N()
	for i := range dst {
		dst[i] = InfDist
	}
	batches := (n + 63) / 64
	parallelRange(batches, 2, func() *maskScratch { return newMaskScratch(n) }, func(ms *maskScratch, batch int) {
		c.fillBatch(dst, batch, ms)
	})
}

// maskScratch is the per-worker state of the word-parallel fill: one
// 64-bit reach/frontier mask per vertex plus frontier vertex lists.
type maskScratch struct {
	reach []uint64 // sources that have reached v
	front []uint64 // sources whose frontier contains v (current level)
	acc   []uint64 // next-level accumulator
	list  []int32  // current frontier vertices
	next  []int32  // next frontier vertices
}

func newMaskScratch(n int) *maskScratch {
	return &maskScratch{
		reach: make([]uint64, n),
		front: make([]uint64, n),
		acc:   make([]uint64, n),
		list:  make([]int32, 0, n),
		next:  make([]int32, 0, n),
	}
}

// fillBatch runs the 64 simultaneous BFS of sources [batch*64, ...) and
// writes their distance rows. (Frontier-loop triplet with fillRowsSubset
// below and aggBatch in ecc.go; propagation fixes apply to all three.)
func (c *CSR) fillBatch(dst []int32, batch int, ms *maskScratch) {
	n := c.N()
	base := batch * 64
	width := n - base
	if width > 64 {
		width = 64
	}
	for i := range ms.reach {
		ms.reach[i] = 0
		ms.acc[i] = 0
	}
	ms.list = ms.list[:0]
	for i := 0; i < width; i++ {
		s := base + i
		dst[s*n+s] = 0
		ms.reach[s] |= 1 << i
		ms.front[s] = ms.reach[s]
		ms.list = append(ms.list, int32(s))
	}
	for d := int32(1); len(ms.list) > 0; d++ {
		// Push every frontier mask across its vertex's edges.
		ms.next = ms.next[:0]
		for _, v := range ms.list {
			m := ms.front[v]
			for _, w := range c.Nbrs[c.Indptr[v]:c.Indptr[v+1]] {
				if ms.acc[w] == 0 {
					ms.next = append(ms.next, w)
				}
				ms.acc[w] |= m
			}
		}
		// Keep only the sources seeing each vertex for the first time and
		// record their distances.
		ms.list = ms.list[:0]
		for _, w := range ms.next {
			nb := ms.acc[w] &^ ms.reach[w]
			ms.acc[w] = 0
			if nb == 0 {
				continue
			}
			ms.reach[w] |= nb
			ms.front[w] = nb
			ms.list = append(ms.list, w)
			// Symmetric write: D[src][w] lands at dst[w*n+src], so the
			// batch's sources form one contiguous column block of row w.
			col := dst[int(w)*n+base:]
			for rem := nb; rem != 0; rem &= rem - 1 {
				col[bits.TrailingZeros64(rem)] = d
			}
		}
	}
}

// fillRowsSubset recomputes the rows of up to 64 arbitrary sources by
// one word-parallel BFS pass, writing each source's full row (row-major,
// no symmetry trick: the subset is not a contiguous column block). The
// repair path uses it to refill damaged rows at batch cost instead of
// one scalar BFS per row.
//
// NOTE: the frontier loop is a deliberate triplet with fillBatch
// (above) and aggBatch (ecc.go) — same reach/acc/front propagation,
// different seeding and per-newly-reached action. The hot inner loops
// cannot afford a per-edge closure, so a fix to the propagation must
// be applied to all three.
func (c *CSR) fillRowsSubset(srcs []int32, dst []int32, ms *maskScratch) {
	n := c.N()
	for i := range ms.reach {
		ms.reach[i] = 0
		ms.acc[i] = 0
	}
	ms.list = ms.list[:0]
	for i, s := range srcs {
		row := dst[int(s)*n : (int(s)+1)*n]
		for w := range row {
			row[w] = InfDist
		}
		row[s] = 0
		ms.reach[s] |= 1 << i
		ms.front[s] = ms.reach[s]
		ms.list = append(ms.list, s)
	}
	for d := int32(1); len(ms.list) > 0; d++ {
		ms.next = ms.next[:0]
		for _, v := range ms.list {
			m := ms.front[v]
			for _, w := range c.Nbrs[c.Indptr[v]:c.Indptr[v+1]] {
				if ms.acc[w] == 0 {
					ms.next = append(ms.next, w)
				}
				ms.acc[w] |= m
			}
		}
		ms.list = ms.list[:0]
		for _, w := range ms.next {
			nb := ms.acc[w] &^ ms.reach[w]
			ms.acc[w] = 0
			if nb == 0 {
				continue
			}
			ms.reach[w] |= nb
			ms.front[w] = nb
			ms.list = append(ms.list, w)
			for rem := nb; rem != 0; rem &= rem - 1 {
				dst[int(srcs[bits.TrailingZeros64(rem)])*n+int(w)] = d
			}
		}
	}
}

// DistanceRows allocates and fills the flat n×n distance matrix of c.
func (c *CSR) DistanceRows() []int32 {
	n := c.N()
	dst := make([]int32, n*n)
	c.DistanceRowsInto(dst)
	return dst
}
