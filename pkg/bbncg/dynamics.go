package bbncg

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynamics"
)

// DynamicsResult summarises a response-dynamics run.
type DynamicsResult = dynamics.Result

// DynamicsOptions is the wire-friendly form of a dynamics run: the
// responder by name, a round budget, and the engine knobs that matter
// to embedders. Zero values pick the engine defaults.
type DynamicsOptions struct {
	// Responder names the per-player responder: greedy (default), swap
	// or exact. ExactCap bounds exact enumeration (0 = DefaultExactCap).
	Responder string `json:"responder,omitempty"`
	ExactCap  int64  `json:"exactCap,omitempty"`
	// MaxRounds bounds the run (0 = engine default, 1000).
	MaxRounds int `json:"maxRounds,omitempty"`
	// ShuffleSeed, when non-zero, moves players in a fresh random order
	// each round instead of round-robin.
	ShuffleSeed int64 `json:"shuffleSeed,omitempty"`
	// DetectLoops stops on an exactly-recurring profile.
	DetectLoops bool `json:"detectLoops,omitempty"`
	// RecordTrajectory stores the social cost after every round.
	RecordTrajectory bool `json:"recordTrajectory,omitempty"`
	// Parallel fans responders out over the worker pool.
	Parallel bool `json:"parallel,omitempty"`
	// Pool supplies an external warm-cache pool surviving across runs;
	// the caller owns its lifetime.
	Pool *CachePool `json:"-"`
	// Weights makes the run arc-weighted: responders optimise weighted
	// costs, trajectories record the weighted social cost, and a run-owned
	// pool becomes a weighted pool. An external Pool must then be a
	// NewWeightedCachePool over the same Weights.
	Weights *Weights `json:"-"`
}

// engineOptions lowers the wire form onto the dynamics engine,
// resolving the responder pair and validating exact spaces up front so
// the engine cannot panic on wire input.
func (o DynamicsOptions) engineOptions(g *Game) (dynamics.Options, error) {
	rc, err := ResponderByName(o.Responder, o.ExactCap)
	if err != nil {
		return dynamics.Options{}, err
	}
	if rc.Exact {
		for u := range g.Budgets {
			if err := CheckExactSpace(g, u, rc.Cap); err != nil {
				return dynamics.Options{}, err
			}
		}
	}
	opts := dynamics.Options{
		Responder:        rc.Plain,
		Cached:           rc.Cached,
		MaxRounds:        o.MaxRounds,
		DetectLoops:      o.DetectLoops,
		RecordTrajectory: o.RecordTrajectory,
		Parallel:         o.Parallel,
		Pool:             o.Pool,
		Weights:          o.Weights,
	}
	if o.Weights != nil {
		// The plain responder (the no-pool fallback path) must optimise
		// the weighted costs; the pooled DeviatorResponder needs no
		// variant — it evaluates through the acquired Deviator, which
		// carries the weighted state.
		switch rc.Name {
		case "greedy":
			opts.Responder = core.WeightedGreedyResponder(o.Weights)
		case "swap":
			opts.Responder = core.WeightedSwapResponder(o.Weights)
		case "exact":
			opts.Responder = core.WeightedExactResponder(o.Weights, rc.Cap)
		}
	}
	if o.ShuffleSeed != 0 {
		opts.Scheduler = dynamics.RandomOrder{Rng: rand.New(rand.NewSource(o.ShuffleSeed))}
	}
	return opts, nil
}

// RunDynamics executes response dynamics for g from start (which is not
// modified) until convergence, a loop, or the round budget.
func RunDynamics(g *Game, start *Digraph, o DynamicsOptions) (DynamicsResult, error) {
	opts, err := o.engineOptions(g)
	if err != nil {
		return DynamicsResult{}, err
	}
	return dynamics.Run(g, start, opts)
}

// RunSimultaneousDynamics is RunDynamics with all players moving at
// once each round (the Section 8 simultaneous variant).
func RunSimultaneousDynamics(g *Game, start *Digraph, o DynamicsOptions) (DynamicsResult, error) {
	opts, err := o.engineOptions(g)
	if err != nil {
		return DynamicsResult{}, err
	}
	return dynamics.RunSimultaneous(g, start, opts)
}

// RandomRealization draws a uniformly random valid profile of g.
func RandomRealization(g *Game, seed int64) *Digraph {
	return dynamics.RandomProfile(g, rand.New(rand.NewSource(seed)))
}

// VerifyNash checks d against every player's exact best response,
// returning a witness deviation when d is not a Nash equilibrium.
// exactCap bounds each player's enumeration (<= 0 = DefaultExactCap).
func VerifyNash(g *Game, d *Digraph, exactCap int64) (*Deviation, error) {
	if exactCap <= 0 {
		exactCap = DefaultExactCap
	}
	for u := range g.Budgets {
		if err := CheckExactSpace(g, u, exactCap); err != nil {
			return nil, fmt.Errorf("bbncg: VerifyNash: %w", err)
		}
	}
	return g.VerifyNash(d, exactCap)
}
