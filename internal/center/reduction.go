package center

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Theorem 2.1 reduction: solving k-center (resp. k-median) on a graph H
// is exactly computing the best response of a fresh (n+1)-th player with
// budget k joining a game whose other players realize H. These adapters
// run the reduction in both directions so tests can confirm the optima
// coincide — the computational content of the NP-hardness proof.

// augmentedGame builds the (b1,...,bn,k)-BG instance of the proof: the
// first n players realize H (each owning its orientation's out-arcs), and
// player n has budget k and an empty initial strategy, completed to an
// arbitrary valid one so the realization is well-formed.
func augmentedGame(h *graph.Digraph, k int, version core.Version) (*core.Game, *graph.Digraph, error) {
	n := h.N()
	if k < 1 || k > n {
		return nil, nil, fmt.Errorf("center: k=%d out of range [1,%d]", k, n)
	}
	d := graph.NewDigraph(n + 1)
	budgets := make([]int, n+1)
	for u := 0; u < n; u++ {
		budgets[u] = h.OutDegree(u)
		for _, v := range h.Out(u) {
			d.AddArc(u, v)
		}
	}
	budgets[n] = k
	// Fill player n's strategy with the first k vertices; the best
	// response computation replaces it anyway.
	init := make([]int, k)
	for i := range init {
		init[i] = i
	}
	d.SetOut(n, init)
	g, err := core.NewGame(budgets, version)
	if err != nil {
		return nil, nil, err
	}
	return g, d, nil
}

// KCenterViaBestResponse solves k-center on the underlying graph of h by
// computing the new player's exact best response in the MAX version.
// For a connected H with k < n, cMAX(new) = 1 + max_v dist(v, S), so the
// k-center value is the best-response cost minus one.
func KCenterViaBestResponse(h *graph.Digraph, k int, maxCandidates int64) (Solution, error) {
	g, d, err := augmentedGame(h, k, core.MAX)
	if err != nil {
		return Solution{}, err
	}
	br, err := g.ExactBestResponse(d, h.N(), maxCandidates)
	if err != nil {
		return Solution{}, err
	}
	value := br.Cost - 1
	if k == h.N() {
		// Every vertex is a centre; the new player's eccentricity is 1
		// but the k-center value is 0.
		value = 0
	}
	return Solution{Centers: br.Strategy, Value: value, Explored: br.Explored}, nil
}

// KMedianViaBestResponse solves k-median on the underlying graph of h by
// computing the new player's exact best response in the SUM version:
// cSUM(new) = n + sum_v dist(v, S) on connected instances, so the
// k-median value is the best-response cost minus n.
func KMedianViaBestResponse(h *graph.Digraph, k int, maxCandidates int64) (Solution, error) {
	g, d, err := augmentedGame(h, k, core.SUM)
	if err != nil {
		return Solution{}, err
	}
	br, err := g.ExactBestResponse(d, h.N(), maxCandidates)
	if err != nil {
		return Solution{}, err
	}
	return Solution{Centers: br.Strategy, Value: br.Cost - int64(h.N()), Explored: br.Explored}, nil
}
