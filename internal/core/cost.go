package core

import "repro/internal/graph"

// Costs of vertices in a realized graph, straight from Section 1.2 of the
// paper. All costs are int64: with C_inf = n^2 the SUM cost is bounded by
// n * n^2, which stays well inside int64 for every instance size swept
// here.

// Cost returns the cost incurred to vertex u in realization d under the
// game's version.
func (g *Game) Cost(d *graph.Digraph, u int) int64 {
	a := d.Underlying()
	s := graph.NewScratch(d.N())
	return g.costFromBFS(s.BFS(a, u), componentCount(a))
}

// AllCosts returns every vertex's cost in one pass: a shared component
// count plus one batched aggregate BFS (graph.AggregateBFS) that
// computes every source's eccentricity, distance sum and reach without
// materialising per-pair distances.
func (g *Game) AllCosts(d *graph.Digraph) []int64 {
	n := d.N()
	a := d.Underlying()
	_, kappa := graph.Components(a)
	ecc, sums, reached := graph.AggregateBFS(a)
	costs := make([]int64, n)
	for u := 0; u < n; u++ {
		r := graph.BFSResult{Ecc: ecc[u], Sum: sums[u], Reached: int(reached[u])}
		costs[u] = g.costFromBFS(r, kappa)
	}
	return costs
}

// SocialCost returns the social cost of the realization: its diameter,
// or C_inf = n^2 when disconnected (the diameter convention the paper
// uses when defining the price of anarchy for sub-threshold budgets).
func (g *Game) SocialCost(d *graph.Digraph) int64 {
	diam := graph.Diameter(d.Underlying())
	if diam == graph.InfDiameter {
		return g.Cinf()
	}
	return int64(diam)
}

// costFromBFS converts one BFS result plus the global component count into
// the player cost. reached == n means connected from u's side; kappa is
// the component count of the whole graph.
func (g *Game) costFromBFS(r graph.BFSResult, kappa int) int64 {
	return costFrom(g.N(), g.Cinf(), g.Version, r, kappa)
}

// costFrom is the cost rule with an explicit disconnection penalty, so
// weighted Deviators (cinf = n²·maxW, dominating every finite weighted
// sum exactly as n² dominates every hop count) share one funnel with
// the unweighted engines.
func costFrom(n int, cinf int64, v Version, r graph.BFSResult, kappa int) int64 {
	return costFromAgg(n, cinf, v, int64(r.Ecc), r.Sum, r.Reached, kappa)
}

// costFromAgg is costFrom over int64 aggregates — the weighted Dijkstra
// fallback produces eccentricities that need not fit int32.
func costFromAgg(n int, cinf int64, v Version, ecc, sum int64, reached, kappa int) int64 {
	switch v {
	case SUM:
		return sum + int64(n-reached)*cinf
	case MAX:
		local := ecc
		if kappa > 1 {
			// Disconnected: every vertex has local diameter n^2.
			local = cinf
		}
		return local + int64(kappa-1)*cinf
	default:
		panic("core: unknown version")
	}
}

func componentCount(a graph.Und) int {
	_, c := graph.Components(a)
	return c
}

// Deviator evaluates candidate strategies for one player without
// rebuilding the graph: the fixed part of the adjacency (everything except
// u's owned arcs) and the component structure of G - u are computed once,
// after which each candidate strategy costs a single BFS — or, once
// EnsureCache has built the distance cache (see distcache.go), a single
// O(n) min-merge over precomputed G-u distance rows. A Deviator is not
// safe for concurrent use; the parallel responders give each worker a
// clone sharing the immutable cache.
type Deviator struct {
	game  *Game
	u     int
	base  graph.Und // adjacency with u's owned arcs removed
	in    []int     // owners of arcs into u (edges u keeps regardless)
	label []int     // component labels of G - u
	comps int       // component count of G - u
	seen  []bool    // scratch for CountComponentsTouched
	s     *graph.Scratch

	// Distance cache (nil until EnsureCache succeeds; see distcache.go).
	rows  []int32 // flat n×n: rows[v*n+w] = dist_{G-u}(v, w), InfDist if unreachable
	inMin []int32 // per-vertex min over the rows of in(u) (InfDist when in(u) is empty)

	// Bitset level cache for the MAX eccentricity kernel (nil until
	// ensureLevels; shadows rows exactly, patched row-wise on Repair).
	lc   *graph.LevelCache
	inLv *graph.LevelUnion // union of the in(u) anchors' level sets

	// Incremental-repair state (see Repair and pool.go). pool is non-nil
	// while the Deviator's matrices are owned by a CachePool, in which
	// case Release leaves them to the pool instead of recycling them
	// globally. stable counts consecutive acquisitions whose rows
	// survived (un- or cheaply repaired); full refills zero it — the
	// hysteresis that keeps level sets from churning in heavy-move
	// phases.
	ds     *graph.DeltaScratch
	pool   *CachePool
	stable int8

	// Weighted cache mode (see wcache.go; nil wts = unweighted). Rows
	// hold offset-adjusted weighted distances (graph/weighted.go):
	// woff[v] = w(u,v) - 1, wgen the weights generation the rows are
	// synced to, cinf the disconnection penalty (n²·maxW; n² when
	// unweighted, so unit weights reduce exactly to the BFS engine).
	wts  *graph.Weights
	woff []int32
	wgen int64
	wds  *graph.WDeltaScratch
	wes  *graph.WEvalScratch
	cinf int64

	// SUM evaluation kernel state (see sumkernel.go). sumOn snapshots
	// SumKernelEnabled at construction; colMin is an entrywise lower
	// bound of every cached row (exact after fill/refill, folded — and
	// possibly slack — after row repairs); sumSufT holds the per-scan
	// tiered suffix-bound scratch and sumSufIn the memoised inMin-only
	// bound for EvalBounded (valid while sumSufInOK).
	sumOn      bool
	colMin     []int32
	sumSufT    [][]int64
	sumSufIn   []int64
	sumSufInOK bool
	memo       *sumMemo // pooled greedy candidate-cost memo (SUM only)
}

// U returns the player this Deviator evaluates deviations for.
func (dv *Deviator) U() int { return dv.u }

// NewDeviator prepares deviation evaluation for player u in realization d.
func NewDeviator(g *Game, d *graph.Digraph, u int) *Deviator {
	base := d.UnderlyingWithout(u)
	label, comps := graph.ComponentsExcluding(base, u)
	return &Deviator{
		game:  g,
		u:     u,
		base:  base,
		in:    d.In(u),
		label: label,
		comps: comps,
		seen:  make([]bool, comps+1),
		s:     graph.NewScratch(d.N()),
		sumOn: SumKernelEnabled(),
		cinf:  g.Cinf(),
	}
}

// NewWeightedDeviator prepares weighted deviation evaluation for player
// u: distances are weighted shortest paths under wts and the
// disconnection penalty scales to n²·MaxW so it keeps dominating every
// finite weighted sum. With unit weights (MaxW == 1) every evaluation
// is bit-identical to NewDeviator's.
func NewWeightedDeviator(g *Game, d *graph.Digraph, u int, wts *graph.Weights) *Deviator {
	dv := NewDeviator(g, d, u)
	if wts != nil {
		dv.wts = wts
		dv.wgen = wts.Gen()
		dv.cinf = int64(g.N()) * int64(g.N()) * int64(wts.MaxW())
	}
	return dv
}

// Eval returns the cost player u would incur by playing strategy s
// (assumed valid: distinct vertices != u; size is the caller's concern
// since budgets fix it). With an active distance cache this is an O(n)
// min-merge over cached rows; otherwise one BFS. The two paths return
// bit-identical costs.
func (dv *Deviator) Eval(strategy []int) int64 {
	if dv.rows != nil {
		return dv.evalCached(strategy)
	}
	if dv.wts != nil {
		return dv.evalWeightedDijkstra(strategy)
	}
	r := dv.s.DeviationBFS(dv.base, dv.u, strategy, dv.in)
	kappa := 1
	if r.Reached != dv.game.N() {
		touched := graph.CountComponentsTouched(dv.label, dv.seen, dv.u, strategy, dv.in)
		kappa = dv.comps - touched + 1
	}
	return costFrom(dv.game.N(), dv.cinf, dv.game.Version, r, kappa)
}

// In returns the owners of arcs into u (fixed edges during deviation).
func (dv *Deviator) In() []int { return dv.in }
