package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// mutateRandomPlayer rewires one random player's out-set to a fresh
// random strategy of the same budget.
func mutateRandomPlayer(g *Game, d *graph.Digraph, rng *rand.Rand) int {
	n := g.N()
	m := rng.Intn(n)
	d.SetOut(m, randomStrategy(n, m, g.Budgets[m], rng))
	return m
}

// Repair after arbitrary accumulated moves must leave the Deviator
// bit-identical to one built fresh against the mutated graph: matrix,
// inMin, component structure, and every evaluation — across all 8
// generator families and both versions.
func TestPropertyRepairMatchesRebuildAcrossGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(8001))
	for round := 0; round < 4; round++ {
		for _, inst := range generatorCorpus(rng) {
			for _, version := range []Version{SUM, MAX} {
				g := GameOf(inst.d, version)
				n := g.N()
				d := inst.d.Clone()
				u := rng.Intn(n)
				dv := NewDeviator(g, d, u)
				if !dv.EnsureCache(1 << 40) {
					t.Fatalf("%s: cache refused", inst.name)
				}
				dv.ensureLevels() // force the MAX level cache through repairs too
				for step := 0; step < 4; step++ {
					moves := 1 + rng.Intn(3)
					for i := 0; i < moves; i++ {
						mutateRandomPlayer(g, d, rng)
					}
					dv.Repair(d)
					fresh := NewDeviator(g, d, u)
					if !fresh.EnsureCache(1 << 40) {
						t.Fatalf("%s: fresh cache refused", inst.name)
					}
					for i := range fresh.rows {
						if dv.rows[i] != fresh.rows[i] {
							t.Fatalf("%s %v u=%d step=%d: repaired rows[%d,%d]=%d, fresh=%d",
								inst.name, version, u, step, i/n, i%n, dv.rows[i], fresh.rows[i])
						}
					}
					for i := range fresh.inMin {
						if dv.inMin[i] != fresh.inMin[i] {
							t.Fatalf("%s %v u=%d step=%d: repaired inMin[%d]=%d, fresh=%d",
								inst.name, version, u, step, i, dv.inMin[i], fresh.inMin[i])
						}
					}
					if dv.comps != fresh.comps {
						t.Fatalf("%s %v u=%d: repaired comps=%d, fresh=%d", inst.name, version, u, dv.comps, fresh.comps)
					}
					plain := NewDeviator(g, d, u)
					for k := 0; k <= 3 && k <= n-1; k++ {
						s := randomStrategy(n, u, k, rng)
						if got, want := dv.Eval(s), plain.Eval(s); got != want {
							t.Fatalf("%s %v u=%d s=%v: repaired eval %d, BFS %d",
								inst.name, version, u, s, got, want)
						}
					}
					fresh.Release()
				}
				dv.Release()
			}
		}
	}
}

// The pooled responders must return exactly what the plain responders
// return, move for move, as the profile evolves.
func TestPooledRespondersMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(8002))
	for _, inst := range generatorCorpus(rng) {
		for _, version := range []Version{SUM, MAX} {
			g := GameOf(inst.d, version)
			d := inst.d.Clone()
			pool := NewCachePool(g, 0)
			for step := 0; step < 6; step++ {
				u := rng.Intn(g.N())
				if g.Budgets[u] == 0 {
					continue
				}
				dv := pool.Acquire(d, u)
				var pooled, plain BestResponse
				switch step % 3 {
				case 0:
					pooled, plain = GreedyDeviatorResponder(g, d, dv), GreedyResponder(g, d, u)
				case 1:
					pooled, plain = SwapDeviatorResponder(g, d, dv), SwapResponder(g, d, u)
				default:
					pooled, plain = ExactDeviatorResponder(0)(g, d, dv), ExactResponder(0)(g, d, u)
				}
				dv.Release()
				if pooled.Cost != plain.Cost || pooled.Current != plain.Current ||
					pooled.Explored != plain.Explored || !equalInts(pooled.Strategy, plain.Strategy) {
					t.Fatalf("%s %v u=%d step=%d: pooled %+v, plain %+v", inst.name, version, u, step, pooled, plain)
				}
				if plain.Improves() {
					d.SetOut(u, plain.Strategy)
					pool.Invalidate()
				}
			}
			pool.Close()
		}
	}
}

// Releasing a pooled Deviator must keep its matrices alive in the pool
// (round-scoped reuse), not recycle them into the global allocator.
func TestPooledReleaseKeepsCache(t *testing.T) {
	g := UniformGame(12, 2, SUM)
	rng := rand.New(rand.NewSource(8003))
	d := graph.RandomOutDigraph(g.Budgets, rng)
	pool := NewCachePool(g, 0)
	defer pool.Close()
	dv := pool.Acquire(d, 3)
	if !dv.HasCache() {
		t.Fatal("pooled Deviator has no cache")
	}
	rows := &dv.rows[0]
	dv.Release()
	if !dv.HasCache() {
		t.Fatal("Release dropped a pooled cache")
	}
	again := pool.Acquire(d, 3)
	if again != dv || &again.rows[0] != rows {
		t.Fatal("re-acquire did not return the pooled entry")
	}
	st := pool.Stats()
	if st.Fills != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 fill and 1 hit", st)
	}
}

// A pool with room for a single matrix must pool exactly one player
// (static admission: dynamics visit players cyclically, where eviction
// policies degenerate to churn) and serve everyone else with plain,
// still-correct Deviators.
func TestPoolAdmissionUnderPressure(t *testing.T) {
	g := UniformGame(10, 1, SUM)
	rng := rand.New(rand.NewSource(8004))
	d := graph.RandomOutDigraph(g.Budgets, rng)
	per := 4 * int64(10) * int64(11)
	pool := NewCachePool(g, per) // exactly one pooled matrix
	defer pool.Close()
	a := pool.Acquire(d, 0)
	if !a.HasCache() {
		t.Fatal("first entry not pooled")
	}
	a.Release()
	b := pool.Acquire(d, 1) // budget is spent: b stays unpooled
	if b.HasCache() {
		t.Fatal("second entry pooled beyond the budget")
	}
	b.Release()
	again := pool.Acquire(d, 0) // the resident player keeps hitting
	if again != a || !again.HasCache() {
		t.Fatal("resident entry lost")
	}
	st := pool.Stats()
	if st.Fills != 1 || st.Hits != 1 || st.Unpooled != 1 {
		t.Fatalf("stats = %+v, want 1 fill, 1 hit, 1 unpooled", st)
	}
	// The unpooled Deviator must still evaluate correctly.
	plain := NewDeviator(g, d, 1)
	s := randomStrategy(10, 1, 1, rng)
	if b.Eval(s) != plain.Eval(s) {
		t.Fatal("unpooled Deviator evaluates wrong")
	}
}
