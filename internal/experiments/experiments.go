// Package experiments implements the paper's evaluation artifacts as
// reusable functions: every cell of Table 1, Figures 1-3, and the
// auxiliary theorem checks (existence/PoS, the Theorem 2.1 reduction,
// the Theorem 7.2 connectivity dichotomy, and Section 8's convergence
// question). The CLI (cmd/bbncg) and the benchmark harness
// (bench_test.go) both call into this package, so the printed tables and
// the benchmarked work are the same code.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/sweep"
)

// Effort scales experiment sizes: quick configurations for tests and
// benchmarks, full configurations for the CLI reproduction run.
type Effort int

const (
	// Quick keeps every instance small enough for exhaustive
	// verification in well under a second.
	Quick Effort = iota
	// Full runs the sweep ranges reported in EXPERIMENTS.md.
	Full
)

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Table1TreesMAX reproduces the Trees/MAX cell of Table 1: the spider of
// Theorem 3.2 (Figure 2) is a MAX equilibrium with diameter 2k = Theta(n)
// while the optimum stays O(1), so PoA = Theta(n). Equilibria are
// verified exactly (parallel enumeration) for every point.
func Table1TreesMAX(effort Effort) (*sweep.Table, error) {
	ks := []int{2, 3, 4, 6, 8}
	if effort == Full {
		ks = []int{2, 3, 4, 6, 8, 12, 16, 24, 32, 40}
	}
	type row struct {
		k, n     int
		diam     int64
		poa      float64
		verified bool
		err      error
	}
	rows := sweep.Parallel(ks, func(k int) row {
		d, budgets, err := construct.Spider(k)
		if err != nil {
			return row{err: err}
		}
		g := core.MustGame(budgets, core.MAX)
		dev, err := g.VerifyNash(d, 0)
		if err != nil {
			return row{err: err}
		}
		poa, err := analysis.PriceOfAnarchy(g, d)
		if err != nil {
			return row{err: err}
		}
		return row{k: k, n: d.N(), diam: poa.EquilibriumDiameter, poa: poa.Ratio, verified: dev == nil}
	})
	t := sweep.NewTable("Table 1 [Trees, MAX]: spider equilibria, PoA = Theta(n)",
		"k", "n", "eq-diameter", "2k(paper)", "PoA>=", "nash-verified")
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		t.Addf(r.k, r.n, r.diam, construct.SpiderDiameter(r.k), r.poa, yesNo(r.verified))
	}
	return t, nil
}

// Table1TreesSUM reproduces the Trees/SUM cell: the perfect binary tree
// of Theorem 3.4 is a SUM equilibrium with diameter 2k = Theta(log n);
// Theorem 3.3 proves no tree equilibrium does asymptotically worse.
// Verification is exact up to n = 63 and swap-stability beyond.
func Table1TreesSUM(effort Effort) (*sweep.Table, error) {
	ks := []int{1, 2, 3, 4}
	if effort == Full {
		ks = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	const exactLimit = 5
	type row struct {
		k, n     int
		diam     int32
		mode     string
		verified bool
		ineqOK   bool
		err      error
	}
	rows := sweep.Parallel(ks, func(k int) row {
		d, budgets, err := construct.PerfectBinaryTree(k)
		if err != nil {
			return row{err: err}
		}
		g := core.MustGame(budgets, core.SUM)
		r := row{k: k, n: d.N(), diam: graph.Diameter(d.Underlying())}
		var dev *core.Deviation
		if k <= exactLimit {
			r.mode = "exact"
			dev, err = g.VerifyNash(d, 0)
		} else {
			r.mode = "swap"
			dev, err = g.VerifySwapStable(d)
		}
		if err != nil {
			return row{err: err}
		}
		r.verified = dev == nil
		if k >= 1 {
			audit, err := analysis.AuditTreeSumPath(d)
			if err != nil {
				return row{err: err}
			}
			r.ineqOK = audit.InequalityOK
		}
		return r
	})
	t := sweep.NewTable("Table 1 [Trees, SUM]: binary-tree equilibria, PoA = Theta(log n)",
		"k", "n", "eq-diameter", "2*log2(n+1)-2", "verified", "mode", "thm3.3-ineq")
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		bound := 2*int(math.Log2(float64(r.n+1))) - 2
		t.Addf(r.k, r.n, r.diam, bound, yesNo(r.verified), r.mode, yesNo(r.ineqOK))
	}
	return t, nil
}

// UnitResult aggregates a unit-budget dynamics sweep cell.
type UnitResult struct {
	N          int
	Trials     int
	Converged  int
	Loops      int
	MaxDiam    int64
	MaxCycle   int
	AuditFails int
}

// Table1Unit reproduces the All-Unit-Budgets row: best-response dynamics
// on (1,...,1)-BG reach equilibria whose diameter is O(1); every reached
// equilibrium is audited against the structure of Theorems 4.1/4.2.
func Table1Unit(version core.Version, effort Effort, seed int64) (*sweep.Table, []UnitResult, error) {
	ns := []int{5, 8, 12}
	trials := 6
	if effort == Full {
		ns = []int{5, 8, 12, 16, 24, 32, 48, 64}
		trials = 20
	}
	results := sweep.Parallel(ns, func(n int) UnitResult {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := core.UniformGame(n, 1, version)
		res := UnitResult{N: n, Trials: trials}
		for trial := 0; trial < trials; trial++ {
			out, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
				Responder:   core.ExactResponder(0),
				DetectLoops: true,
				MaxRounds:   2000,
			})
			if err != nil {
				res.AuditFails++
				continue
			}
			if out.Loop {
				res.Loops++
				continue
			}
			if !out.Converged {
				continue
			}
			res.Converged++
			audit := analysis.AuditUnitBudget(out.Final)
			ok := audit.SatisfiesSUM
			if version == core.MAX {
				ok = audit.SatisfiesMAX
			}
			if !ok {
				res.AuditFails++
			}
			if audit.SocialCost > res.MaxDiam {
				res.MaxDiam = audit.SocialCost
			}
			if audit.CycleLen > res.MaxCycle {
				res.MaxCycle = audit.CycleLen
			}
		}
		return res
	})
	t := sweep.NewTable(
		fmt.Sprintf("Table 1 [All-Unit, %v]: dynamics equilibria have O(1) diameter", version),
		"n", "trials", "converged", "loops", "max-eq-diam", "max-cycle", "audit-fails")
	for _, r := range results {
		t.Addf(r.N, r.Trials, r.Converged, r.Loops, r.MaxDiam, r.MaxCycle, r.AuditFails)
	}
	return t, results, nil
}

// Table1PositiveMAX reproduces the All-Positive/MAX cell: shift graphs
// (Lemma 5.2) with all-positive budgets whose equilibrium diameter is
// k = sqrt(log n). Small instances are verified exactly; larger ones get
// the Lemma 5.2 certificate (plus swap-stability at Full effort).
func Table1PositiveMAX(effort Effort) (*sweep.Table, error) {
	type point struct{ t, k int }
	points := []point{{3, 2}, {4, 2}}
	if effort == Full {
		points = []point{{3, 2}, {4, 2}, {5, 2}, {8, 2}, {5, 3}, {6, 3}, {8, 3}, {9, 4}}
	}
	const exactVertexLimit = 20
	type row struct {
		t, k, n  int
		diam     int32
		sqrtLogN float64
		mode     string
		verified bool
		err      error
	}
	rows := sweep.Parallel(points, func(p point) row {
		sg, err := construct.NewShiftGraph(p.t, p.k, 0)
		if err != nil {
			return row{err: err}
		}
		cert := sg.CertifyEquilibrium()
		r := row{t: p.t, k: p.k, n: cert.N, diam: cert.EccMax,
			sqrtLogN: math.Sqrt(math.Log2(float64(cert.N)))}
		if cert.N <= exactVertexLimit {
			r.mode = "exact"
			g := core.MustGame(sg.Budgets(), core.MAX)
			dev, err := g.VerifyNash(sg.D, 0)
			if err != nil {
				return row{err: err}
			}
			r.verified = dev == nil && cert.OK
		} else {
			r.mode = "certificate"
			r.verified = cert.OK
		}
		return r
	})
	t := sweep.NewTable("Table 1 [All-Positive, MAX]: shift-graph equilibria, diameter = sqrt(log n)",
		"t", "k", "n", "eq-diameter", "sqrt(log2 n)", "verified", "mode")
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		t.Addf(r.t, r.k, r.n, r.diam, r.sqrtLogN, yesNo(r.verified), r.mode)
	}
	return t, nil
}

// Table1GeneralSUM reproduces the General/SUM cell: best-response
// dynamics over random budget vectors reach SUM equilibria; their
// diameters stay far below the 2^O(sqrt(log n)) bound of Theorem 6.9 (and
// empirically track O(log n), consistent with the paper's conjecture that
// the strange bound is not tight).
func Table1GeneralSUM(effort Effort, seed int64) (*sweep.Table, []float64, []float64, error) {
	ns := []int{8, 12, 16}
	trials := 4
	if effort == Full {
		ns = []int{8, 12, 16, 24, 32, 48, 64, 96}
		trials = 10
	}
	type row struct {
		n         int
		converged int
		maxDiam   int64
		bound     float64
	}
	rows := sweep.Parallel(ns, func(n int) row {
		rng := rand.New(rand.NewSource(seed + int64(7*n)))
		r := row{n: n, bound: math.Exp2(math.Sqrt(math.Log2(float64(n))))}
		for trial := 0; trial < trials; trial++ {
			budgets := randomConnectedBudgets(n, rng)
			g := core.MustGame(budgets, core.SUM)
			responder := core.Responder(core.GreedyResponder)
			if n <= 12 {
				responder = core.ExactResponder(0)
			}
			out, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
				Responder:   responder,
				DetectLoops: true,
				MaxRounds:   400,
			})
			if err != nil || !out.Converged {
				continue
			}
			r.converged++
			if sc := g.SocialCost(out.Final); sc > r.maxDiam {
				r.maxDiam = sc
			}
		}
		return r
	})
	t := sweep.NewTable("Table 1 [General, SUM]: dynamics equilibria vs the 2^O(sqrt(log n)) bound",
		"n", "trials", "converged", "max-eq-diam", "2^sqrt(log2 n)")
	var ns64, diams []float64
	for _, r := range rows {
		t.Addf(r.n, trials, r.converged, r.maxDiam, r.bound)
		if r.converged > 0 {
			ns64 = append(ns64, float64(r.n))
			diams = append(diams, float64(r.maxDiam))
		}
	}
	return t, ns64, diams, nil
}

// randomConnectedBudgets draws a positive-total budget vector with
// sum >= n-1 (so equilibria are connected, Lemma 3.1): a random spanning
// allocation plus random extras, each budget < n.
func randomConnectedBudgets(n int, rng *rand.Rand) []int {
	budgets := make([]int, n)
	// Give out n-1 units round-robin from a random start, then sprinkle.
	start := rng.Intn(n)
	for i := 0; i < n-1; i++ {
		budgets[(start+i)%n]++
	}
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		v := rng.Intn(n)
		if budgets[v] < n-1 {
			budgets[v]++
		}
	}
	return budgets
}
