package enumerate

import (
	"testing"

	"repro/internal/core"
)

func TestFIPUnitTriangle(t *testing.T) {
	// (1,1,1)-BG SUM: 8 profiles. The improvement-graph analysis must
	// agree with All() on the equilibrium count.
	g := core.UniformGame(3, 1, core.SUM)
	fip, err := BestResponseImprovementGraph(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	all, err := All(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fip.Profiles != all.Profiles {
		t.Fatalf("profiles %d != %d", fip.Profiles, all.Profiles)
	}
	if fip.Equilibria != all.Equilibria {
		t.Fatalf("sinks %d != equilibria %d", fip.Equilibria, all.Equilibria)
	}
	if !fip.HasFIP {
		err := VerifyCycleWitness(g, fip.CycleWitness)
		if err != nil {
			t.Fatalf("cycle witness invalid: %v", err)
		}
	} else if fip.LongestPath < 1 {
		t.Fatalf("acyclic improvement graph with no improving move at all? %+v", fip)
	}
}

func TestFIPAnalysisSmallGames(t *testing.T) {
	// Exact Section 8 evidence battery: record FIP verdicts for the
	// games the dynamics experiments sample statistically. Any reported
	// cycle must replay correctly; any FIP verdict means guaranteed
	// convergence for every scheduler at this size.
	cases := []struct {
		budgets []int
		version core.Version
	}{
		{[]int{1, 1, 1}, core.SUM},
		{[]int{1, 1, 1}, core.MAX},
		{[]int{1, 1, 1, 1}, core.SUM},
		{[]int{1, 1, 1, 1}, core.MAX},
		{[]int{2, 1, 0, 0}, core.SUM},
		{[]int{2, 1, 1, 0}, core.MAX},
	}
	for _, c := range cases {
		g := core.MustGame(c.budgets, c.version)
		fip, err := BestResponseImprovementGraph(g, 100_000)
		if err != nil {
			t.Fatalf("%v %v: %v", c.budgets, c.version, err)
		}
		if fip.Equilibria == 0 {
			t.Fatalf("%v %v: no sinks, contradicting Theorem 2.3", c.budgets, c.version)
		}
		if !fip.HasFIP {
			if err := VerifyCycleWitness(g, fip.CycleWitness); err != nil {
				t.Fatalf("%v %v: invalid cycle witness: %v", c.budgets, c.version, err)
			}
		} else if fip.Profiles > 1 && fip.LongestPath == 0 && fip.Moves > 0 {
			t.Fatalf("%v %v: inconsistent longest path", c.budgets, c.version)
		}
	}
}

func TestFIPCapEnforced(t *testing.T) {
	g := core.UniformGame(6, 2, core.SUM)
	if _, err := BestResponseImprovementGraph(g, 100); err == nil {
		t.Fatal("cap not enforced")
	}
}

func TestVerifyCycleWitnessRejectsBadCycles(t *testing.T) {
	g := core.UniformGame(3, 1, core.SUM)
	if err := VerifyCycleWitness(g, nil); err == nil {
		t.Fatal("empty cycle accepted")
	}
	p := core.Profile{{1}, {0}, {0}}
	if err := VerifyCycleWitness(g, []core.Profile{p, p.Clone()}); err == nil {
		t.Fatal("no-op cycle accepted")
	}
	// Two players change in one step.
	q := core.Profile{{2}, {2}, {0}}
	if err := VerifyCycleWitness(g, []core.Profile{p, q}); err == nil {
		t.Fatal("two-player step accepted")
	}
}

func TestSinksAreExactlyNashEquilibria(t *testing.T) {
	// Structural cross-check on a slightly larger instance.
	g := core.MustGame([]int{1, 1, 1, 1, 0}, core.SUM)
	fip, err := BestResponseImprovementGraph(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	all, err := All(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fip.Equilibria != all.Equilibria {
		t.Fatalf("sinks %d, equilibria %d", fip.Equilibria, all.Equilibria)
	}
}
