package construct

import (
	"fmt"

	"repro/internal/graph"
)

// PerfectBinaryTree builds the Theorem 3.4 tree: a perfect binary tree on
// n = 2^(k+1)-1 vertices in which every internal vertex u_i owns arcs to
// its children u_{2i} and u_{2i+1} (1-based heap indexing; vertex v here
// is u_{v+1}). It is a Tree-BG realization (budgets sum to n-1) and a
// Nash equilibrium in the SUM version, with diameter 2k = Theta(log n):
// the witness that the O(log n) bound of Theorem 3.3 is tight.
func PerfectBinaryTree(k int) (*graph.Digraph, []int, error) {
	if k < 0 {
		return nil, nil, fmt.Errorf("construct: binary tree needs k >= 0, got %d", k)
	}
	if k > 25 {
		return nil, nil, fmt.Errorf("construct: k = %d would allocate 2^%d vertices", k, k+1)
	}
	n := 1<<(k+1) - 1
	d := graph.NewDigraph(n)
	for i := 1; 2*i+1 <= n; i++ {
		d.AddArc(i-1, 2*i-1)
		d.AddArc(i-1, 2*i)
	}
	budgets := make([]int, n)
	for v := 0; v < n; v++ {
		budgets[v] = d.OutDegree(v)
	}
	return d, budgets, nil
}

// PerfectBinaryTreeDiameter returns the diameter of PerfectBinaryTree(k):
// 2k, realised between two leaves in different root subtrees.
func PerfectBinaryTreeDiameter(k int) int { return 2 * k }
