package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/pkg/bbncg/api"
)

// ErrStreamTruncated reports a streamed dynamics connection that ended
// before its terminal `done` event. The StreamResult returned alongside
// it carries NextFrom — pass it to the next StreamDynamics call to
// resume where the trace stopped.
var ErrStreamTruncated = errors.New("client: dynamics stream ended before done")

// StreamResult summarises one streamed dynamics connection.
type StreamResult struct {
	// Summary is the terminal done event (zero when the stream was
	// truncated).
	Summary api.DynamicsResult
	// Rounds counts the round events delivered on THIS connection,
	// replayed ones included.
	Rounds int
	// NextFrom is the resume cursor: one past the last round received.
	// On truncation, pass it as from to the next call.
	NextFrom int
}

// StreamDynamics consumes POST /v1/sessions/{id}/dynamics?stream=1:
// onRound is called for every `round` event in order (replayed entries
// first when from > 0), and the terminal `done` summary is returned.
// Heartbeat comments are skipped. An onRound error aborts the stream
// and is returned verbatim. When the connection dies mid-run the error
// wraps ErrStreamTruncated and the result's NextFrom resumes the trace.
func (c *Client) StreamDynamics(ctx context.Context, id string, rounds, from int, onRound func(api.RoundTrace) error) (StreamResult, error) {
	var res StreamResult
	res.NextFrom = from
	raw, err := json.Marshal(api.DynamicsRequest{Rounds: rounds, From: from})
	if err != nil {
		return res, err
	}
	path := c.base + "/v1/sessions/" + url.PathEscape(id) + "/dynamics?stream=1"
	req, err := http.NewRequestWithContext(ctx, "POST", path, bytes.NewReader(raw))
	if err != nil {
		return res, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	if c.key != "" {
		req.Header.Set("X-Api-Key", c.key)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return res, decodeError(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event, data string
	flush := func() (terminal bool, err error) {
		ev, payload := event, data
		event, data = "", ""
		switch ev {
		case "":
			return false, nil // comment/heartbeat frame
		case api.StreamEventRound:
			var rt api.RoundTrace
			if err := json.Unmarshal([]byte(payload), &rt); err != nil {
				return false, fmt.Errorf("client: round event: %w", err)
			}
			res.Rounds++
			res.NextFrom = rt.Round + 1
			if onRound != nil {
				if err := onRound(rt); err != nil {
					return true, err
				}
			}
			return false, nil
		case api.StreamEventDone:
			if err := json.Unmarshal([]byte(payload), &res.Summary); err != nil {
				return false, fmt.Errorf("client: done event: %w", err)
			}
			return true, nil
		case api.StreamEventError:
			var env api.ErrorEnvelope
			if err := json.Unmarshal([]byte(payload), &env); err != nil {
				return false, fmt.Errorf("client: error event: %w", err)
			}
			e := env.Err
			return true, &e
		default:
			return false, nil // unknown event kinds are skippable per SSE
		}
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			terminal, err := flush()
			if terminal {
				return res, err
			}
			if err != nil {
				return res, err
			}
		case len(line) > 7 && line[:7] == "event: ":
			event = line[7:]
		case len(line) > 6 && line[:6] == "data: ":
			data = line[6:]
			// id: lines are ignored — the round event's own Round field
			// is the authoritative cursor.
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return res, fmt.Errorf("%w: %w (resume with from=%d)", ErrStreamTruncated, err, res.NextFrom)
	}
	return res, fmt.Errorf("%w (resume with from=%d)", ErrStreamTruncated, res.NextFrom)
}
