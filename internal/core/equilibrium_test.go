package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestStarIsNashBothVersions(t *testing.T) {
	// Centre owns all arcs (budget n-1), leaves have budget 0: centre has
	// local diameter 1 and leaves cannot move, so this is an equilibrium
	// in both versions (Lemma 2.2).
	d := graph.StarGraph(6)
	for _, ver := range []Version{SUM, MAX} {
		g := GameOf(d, ver)
		dev, err := g.VerifyNash(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dev != nil {
			t.Fatalf("%v: star reported non-equilibrium: %v", ver, dev)
		}
	}
}

func TestPathIsNotNash(t *testing.T) {
	d := graph.PathGraph(6)
	for _, ver := range []Version{SUM, MAX} {
		g := GameOf(d, ver)
		dev, err := g.VerifyNash(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dev == nil {
			t.Fatalf("%v: long path reported as equilibrium", ver)
		}
		if dev.NewCost >= dev.OldCost {
			t.Fatalf("%v: witness does not improve: %v", ver, dev)
		}
	}
}

func TestWitnessDeviationIsReal(t *testing.T) {
	// Applying the witness must reproduce exactly the claimed costs.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(6)
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = rng.Intn(2)
		}
		d := graph.RandomOutDigraph(budgets, rng)
		for _, ver := range []Version{SUM, MAX} {
			g := MustGame(budgets, ver)
			dev, err := g.VerifyNash(d, 0)
			if err != nil {
				t.Fatal(err)
			}
			if dev == nil {
				continue
			}
			if got := g.Cost(d, dev.Vertex); got != dev.OldCost {
				t.Fatalf("%v: OldCost %d, actual %d", ver, dev.OldCost, got)
			}
			h := d.Clone()
			h.SetOut(dev.Vertex, dev.NewStrategy)
			if got := g.Cost(h, dev.Vertex); got != dev.NewCost {
				t.Fatalf("%v: NewCost %d, actual %d", ver, dev.NewCost, got)
			}
		}
	}
}

func TestVerifySwapStableWeakerThanNash(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(5)
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = rng.Intn(2)
		}
		d := graph.RandomOutDigraph(budgets, rng)
		for _, ver := range []Version{SUM, MAX} {
			g := MustGame(budgets, ver)
			nashDev, err := g.VerifyNash(d, 0)
			if err != nil {
				t.Fatal(err)
			}
			swapDev, err := g.VerifySwapStable(d)
			if err != nil {
				t.Fatal(err)
			}
			// Nash => swap-stable: if no Nash deviation exists, no swap
			// deviation may exist either.
			if nashDev == nil && swapDev != nil {
				t.Fatalf("%v: Nash equilibrium with improving swap %v", ver, swapDev)
			}
		}
	}
}

func TestIsBestResponse(t *testing.T) {
	d := graph.StarGraph(5)
	g := GameOf(d, SUM)
	ok, err := g.IsBestResponse(d, 0, 0)
	if err != nil || !ok {
		t.Fatalf("centre best response check: %v %v", ok, err)
	}
	p := graph.PathGraph(5)
	gp := GameOf(p, SUM)
	ok, err = gp.IsBestResponse(p, 0, 0)
	if err != nil || ok {
		t.Fatalf("path endpoint should not be best response: %v %v", ok, err)
	}
}

func TestVerifyNashRejectsWrongRealization(t *testing.T) {
	d := graph.PathGraph(4)
	g := MustGame([]int{2, 1, 1, 0}, SUM) // vertex 0 owns only 1 arc
	if _, err := g.VerifyNash(d, 0); err == nil {
		t.Fatal("realization mismatch not reported")
	}
}

func TestVerifyNashSpaceCapPropagates(t *testing.T) {
	d := graph.CompleteDigraph(12)
	g := GameOf(d, SUM)
	if _, err := g.VerifyNash(d, 3); err == nil {
		t.Fatal("expected space-cap error from some player")
	}
}

func TestLemma22(t *testing.T) {
	star := graph.StarGraph(5)
	if !Lemma22Satisfied(star, 0) {
		t.Fatal("star centre has local diameter 1")
	}
	if !Lemma22Satisfied(star, 2) {
		t.Fatal("star leaf has local diameter 2, no brace")
	}
	path := graph.PathGraph(5)
	if Lemma22Satisfied(path, 0) {
		t.Fatal("path endpoint has local diameter 4")
	}
	// A brace disqualifies vertices at local diameter exactly 2, but not
	// at local diameter 1.
	braced := graph.NewDigraph(4)
	braced.AddArc(0, 1)
	braced.AddArc(1, 0)
	braced.AddArc(1, 2)
	braced.AddArc(2, 3)
	if Lemma22Satisfied(braced, 1) {
		t.Fatal("vertex 1: local diameter 2 and in a brace, should fail")
	}
	tiny := graph.NewDigraph(2)
	tiny.AddArc(0, 1)
	tiny.AddArc(1, 0)
	if !Lemma22Satisfied(tiny, 0) {
		t.Fatal("2-cycle vertex has local diameter 1, should pass despite brace")
	}
}

func TestLemma22Disconnected(t *testing.T) {
	d := graph.NewDigraph(3)
	d.AddArc(0, 1)
	if Lemma22Satisfied(d, 0) {
		t.Fatal("disconnected graph cannot satisfy Lemma 2.2")
	}
}

// Parallel verification must agree with sequential on larger instances.
func TestVerifyParallelConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	budgets := make([]int, 40)
	for i := range budgets {
		budgets[i] = 1
	}
	d := graph.RandomOutDigraph(budgets, rng)
	g := MustGame(budgets, SUM)
	dev1, err := g.VerifyNash(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference: check each vertex directly.
	found := false
	for u := 0; u < g.N() && !found; u++ {
		br, err := g.ExactBestResponse(d, u, 0)
		if err != nil {
			t.Fatal(err)
		}
		if br.Improves() {
			found = true
		}
	}
	if (dev1 != nil) != found {
		t.Fatalf("parallel verdict %v, sequential %v", dev1 != nil, found)
	}
}
