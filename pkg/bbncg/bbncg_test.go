package bbncg

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseVersion(t *testing.T) {
	for s, want := range map[string]Version{"": SUM, "SUM": SUM, "MAX": MAX} {
		v, err := ParseVersion(s)
		if err != nil || v != want {
			t.Errorf("ParseVersion(%q) = %v, %v", s, v, err)
		}
	}
	for _, s := range []string{"sum", "Max", "AVG"} {
		if _, err := ParseVersion(s); err == nil {
			t.Errorf("ParseVersion(%q) accepted", s)
		}
	}
}

func TestFromArcsRoundTrip(t *testing.T) {
	arcs := [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}}
	d, err := FromArcs(4, arcs)
	if err != nil {
		t.Fatal(err)
	}
	if got := Arcs(d); !reflect.DeepEqual(got, arcs) {
		t.Fatalf("Arcs round trip: %v != %v", got, arcs)
	}
	if got := BudgetsOf(d); !reflect.DeepEqual(got, []int{1, 1, 2, 0}) {
		t.Fatalf("BudgetsOf = %v", got)
	}
	for _, bad := range [][][2]int{
		{{0, 4}},  // target out of range
		{{-1, 0}}, // owner out of range
		{{2, 2}},  // self-loop
	} {
		if _, err := FromArcs(4, bad); err == nil {
			t.Errorf("FromArcs(4, %v) accepted", bad)
		}
	}
}

func TestValidateStrategy(t *testing.T) {
	if err := ValidateStrategy(5, 0, 2, []int{1, 4}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int{
		{1},       // under budget
		{1, 2, 3}, // over budget
		{1, 1},    // duplicate
		{0, 1},    // self
		{1, 5},    // range
	} {
		if err := ValidateStrategy(5, 0, 2, bad); err == nil {
			t.Errorf("ValidateStrategy accepted %v", bad)
		}
	}
}

func TestGeneratorSpecKinds(t *testing.T) {
	cases := []struct {
		spec GeneratorSpec
		n    int
	}{
		{GeneratorSpec{Kind: "path", N: 5}, 5},
		{GeneratorSpec{Kind: "cycle", N: 5}, 5},
		{GeneratorSpec{Kind: "star", N: 5}, 5},
		{GeneratorSpec{Kind: "complete", N: 4}, 4},
		{GeneratorSpec{Kind: "grid", Rows: 2, Cols: 3}, 6},
		{GeneratorSpec{Kind: "tree", N: 7, Seed: 3}, 7},
		{GeneratorSpec{Kind: "random", N: 6, B: 2, Seed: 3}, 6},
		{GeneratorSpec{Kind: "random", Budgets: []int{1, 2, 0, 1}}, 4},
		{GeneratorSpec{Kind: "pa", N: 8, M: 2, Seed: 3}, 8},
		{GeneratorSpec{Kind: "smallworld", N: 8, K: 2, P: 0.1, Seed: 3}, 8},
	}
	for _, c := range cases {
		d, err := c.spec.Build()
		if err != nil {
			t.Errorf("%+v: %v", c.spec, err)
			continue
		}
		if d.N() != c.n {
			t.Errorf("%+v: n = %d, want %d", c.spec, d.N(), c.n)
		}
	}
	for _, bad := range []GeneratorSpec{
		{},
		{Kind: "blob", N: 5},
		{Kind: "path", N: 1},
		{Kind: "grid", Rows: 0, Cols: 3},
		{Kind: "random", N: 4, B: 4},
		{Kind: "random", Budgets: []int{5}},
	} {
		if _, err := bad.Build(); err == nil {
			t.Errorf("Build accepted %+v", bad)
		}
	}
	// Determinism: same spec, same profile.
	s := GeneratorSpec{Kind: "random", N: 10, B: 2, Seed: 42}
	d1, _ := s.Build()
	d2, _ := s.Build()
	if !reflect.DeepEqual(Arcs(d1), Arcs(d2)) {
		t.Fatal("seeded build is not deterministic")
	}
}

func TestResponderByNameAndExactGuard(t *testing.T) {
	for _, name := range []string{"", "greedy", "swap", "exact"} {
		rc, err := ResponderByName(name, 0)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if rc.Plain == nil || rc.Cached == nil {
			t.Fatalf("%q: nil responder", name)
		}
	}
	if _, err := ResponderByName("best", 0); err == nil {
		t.Fatal("unknown responder accepted")
	}
	rc, _ := ResponderByName("exact", 0)
	if !rc.Exact || rc.Cap != DefaultExactCap {
		t.Fatalf("exact choice: %+v", rc)
	}
	// The guard rejects a space the panicking solver would die on.
	g := UniformGame(40, 15, SUM)
	if err := CheckExactSpace(g, 0, 1000); err == nil {
		t.Fatal("oversized space accepted")
	}
	if err := CheckExactSpace(UniformGame(6, 1, SUM), 0, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestWelfareAndPooledResponse(t *testing.T) {
	g := UniformGame(6, 1, SUM)
	d, err := GeneratorSpec{Kind: "cycle", N: 6}.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Social cost is the paper's diameter convention (3 for a 6-cycle);
	// each player's SUM cost is 1+2+3+2+1 = 9.
	wf := WelfareOf(g, d)
	if wf.Social != 3 {
		t.Fatalf("6-cycle social cost = %d, want diameter 3", wf.Social)
	}
	for u, c := range wf.Costs {
		if c != 9 {
			t.Fatalf("cost[%d] = %d, want 9 (%+v)", u, c, wf)
		}
	}

	pool := NewCachePool(g, 0)
	defer pool.Close()
	rc, _ := ResponderByName("greedy", 0)
	d.StartJournal(64)
	br := PooledResponse(g, d, pool, 0, rc.Cached, true)
	plain := rc.Plain(g, d, 0)
	if br.Improves() != plain.Improves() || br.Cost != plain.Cost {
		t.Fatalf("pooled and plain answers differ: %+v vs %+v", br, plain)
	}
	// note=true recorded the outcome; an unchanged graph can skip.
	if br.Improves() {
		if pool.SkipResponse(d, 0) {
			t.Fatal("memo claims skip after an improving answer")
		}
	} else if !pool.SkipResponse(d, 0) {
		t.Fatal("memo does not skip an unchanged graph")
	}
}

func TestRunDynamicsAndVerifyNash(t *testing.T) {
	g := UniformGame(8, 1, SUM)
	start := RandomRealization(g, 5)
	if err := g.CheckRealization(start); err != nil {
		t.Fatal(err)
	}
	res, err := RunDynamics(g, start, DynamicsOptions{MaxRounds: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("greedy dynamics did not converge: %+v", res)
	}
	dev, err := VerifyNash(g, res.Final, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy convergence need not be Nash; but a returned witness must
	// genuinely improve.
	if dev != nil && dev.NewCost >= dev.OldCost {
		t.Fatalf("non-improving witness: %+v", dev)
	}

	// Wire-input guards: bad responder name, oversized exact space.
	if _, err := RunDynamics(g, start, DynamicsOptions{Responder: "nope"}); err == nil {
		t.Fatal("unknown responder accepted")
	}
	big := UniformGame(40, 15, SUM)
	if _, err := RunDynamics(big, RandomRealization(big, 1), DynamicsOptions{Responder: "exact", ExactCap: 100}); err == nil {
		t.Fatal("oversized exact dynamics accepted")
	}
	if _, err := VerifyNash(big, RandomRealization(big, 1), 100); err == nil {
		t.Fatal("oversized VerifyNash accepted")
	}

	// Simultaneous variant stays on the public surface too.
	if _, err := RunSimultaneousDynamics(g, start, DynamicsOptions{MaxRounds: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewGameValidation(t *testing.T) {
	if _, err := NewGame([]int{1, 1, 5}, SUM); err == nil {
		t.Fatal("budget >= n accepted")
	}
	g, err := NewGame([]int{1, 0, 2}, MAX)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.Version != MAX {
		t.Fatalf("game: %+v", g)
	}
	if !strings.Contains(g.Version.String(), "MAX") {
		t.Fatalf("version string: %q", g.Version.String())
	}
}
