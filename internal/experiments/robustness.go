package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/sweep"
)

type robustCell struct {
	family    string
	n, trials int
}

type robustRow struct {
	Family    string  `json:"family"`
	N         int     `json:"n"`
	Trials    int     `json:"trials"`
	Converged int     `json:"converged"`
	Diams     []int64 `json:"diams"`
	Rounds    []int64 `json:"rounds"`
}

// robustFamilies names the initial-overlay generators, in output order.
var robustFamilies = []string{"random", "pref-attach", "small-world", "lattice"}

// makeOverlay draws one starting overlay of the named family.
func makeOverlay(family string, n int, rng *rand.Rand) (*graph.Digraph, error) {
	switch family {
	case "random":
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = 2
		}
		return graph.RandomOutDigraph(budgets, rng), nil
	case "pref-attach":
		return graph.PreferentialAttachment(n, 2, rng)
	case "small-world":
		return graph.SmallWorld(n, 4, 0.2, rng)
	case "lattice":
		return graph.SmallWorld(n, 4, 0, rng)
	default:
		return nil, fmt.Errorf("experiments: unknown overlay family %q", family)
	}
}

func robustnessJob(effort Effort, seed int64) runner.Job {
	n := 20
	trials := 4
	if effort == Full {
		n = 32
		trials = 10
	}
	points := make([]runner.Point, len(robustFamilies))
	for i, f := range robustFamilies {
		points[i] = runner.Point{Exp: "robustness",
			Key:  fmt.Sprintf("family=%s,n=%d,trials=%d", f, n, trials),
			Seed: seed, Data: robustCell{family: f, n: n, trials: trials}}
	}
	return runner.Job{Exp: "robustness", Points: points, Eval: evalRobustness}
}

// evalRobustness drives greedy dynamics from one start family's random
// overlays and collects equilibrium quality samples.
func evalRobustness(p runner.Point) (any, error) {
	c := p.Data.(robustCell)
	rng := rand.New(rand.NewSource(p.Seed + int64(len(c.family))))
	r := robustRow{Family: c.family, N: c.n, Trials: c.trials}
	for trial := 0; trial < c.trials; trial++ {
		start, err := makeOverlay(c.family, c.n, rng)
		if err != nil {
			return nil, err
		}
		g := core.MustGame(graph.BudgetsOf(start), core.SUM)
		out, err := dynamics.Run(g, start, dynamics.Options{
			Responder:   core.GreedyResponder,
			Cached:      core.GreedyDeviatorResponder,
			DetectLoops: true,
			MaxRounds:   300,
		})
		if err != nil {
			return nil, err
		}
		if !out.Converged {
			continue
		}
		r.Converged++
		r.Diams = append(r.Diams, g.SocialCost(out.Final))
		r.Rounds = append(r.Rounds, int64(out.Rounds))
	}
	return r, nil
}

func robustnessTable(rows []robustRow) *sweep.Table {
	n := 0
	if len(rows) > 0 {
		n = rows[0].N
	}
	t := sweep.NewTable(
		fmt.Sprintf("Robustness: greedy dynamics from diverse initial overlays (n=%d, SUM)", n),
		"start-family", "trials", "converged", "eq-diameter", "rounds")
	for _, r := range rows {
		t.Addf(r.Family, r.Trials, r.Converged,
			stats.Summarize(r.Diams).MeanStd(), stats.Summarize(r.Rounds).MeanStd())
	}
	return t
}

// Robustness runs best-response dynamics from structurally diverse
// initial overlays — uniform random, preferential attachment (hub-heavy,
// the shape real P2P bootstrap tends toward), small-world lattices and
// long paths — and reports equilibrium quality per start family. The
// game's predictions (convergence; small equilibrium diameters) should
// not depend on where the dynamics start; this sweep is the evidence.
func Robustness(effort Effort, seed int64) (*sweep.Table, error) {
	rows, err := runRows[robustRow](robustnessJob(effort, seed))
	if err != nil {
		return nil, err
	}
	return robustnessTable(rows), nil
}
