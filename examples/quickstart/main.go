// Quickstart: define a bounded budget network creation game, realize a
// profile, inspect costs, compute a best response, run best-response
// dynamics to a Nash equilibrium, and verify it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
)

func main() {
	// Six players. Player budgets say how many links each may own:
	// players 0 and 1 can buy two links, the rest one.
	budgets := []int{2, 2, 1, 1, 1, 1}
	game, err := core.NewGame(budgets, core.SUM)
	if err != nil {
		log.Fatal(err)
	}

	// A realization assigns each player exactly its budget of arcs.
	// Start from a deliberately bad one: a long chain.
	d := graph.NewDigraph(6)
	d.SetOut(0, []int{1, 2})
	d.SetOut(1, []int{2, 3})
	d.SetOut(2, []int{3})
	d.SetOut(3, []int{4})
	d.SetOut(4, []int{5})
	d.SetOut(5, []int{0})
	fmt.Println("start:", d)
	fmt.Println("social cost (diameter):", game.SocialCost(d))
	fmt.Println("player costs:", game.AllCosts(d))

	// What is player 3's best response to everyone else's strategy?
	br, err := game.ExactBestResponse(d, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("player 3: current cost %d, best response %v with cost %d\n",
		br.Current, br.Strategy, br.Cost)

	// Let everyone improve until no one can: best-response dynamics.
	res, err := dynamics.Run(game, d, dynamics.Options{
		Responder:   core.ExactResponder(0),
		DetectLoops: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamics: converged=%v after %d rounds, %d moves\n",
		res.Converged, res.Rounds, res.Moves)
	fmt.Println("equilibrium:", res.Final)
	fmt.Println("equilibrium social cost:", game.SocialCost(res.Final))

	// Double-check the fixed point is a Nash equilibrium.
	dev, err := game.VerifyNash(res.Final, 0)
	if err != nil {
		log.Fatal(err)
	}
	if dev == nil {
		fmt.Println("verified: no player can improve unilaterally")
	} else {
		fmt.Println("not an equilibrium:", dev)
	}

	// The same machinery runs the MAX version, where players minimise
	// their worst-case distance instead of the total.
	maxGame := core.MustGame(budgets, core.MAX)
	res2, err := dynamics.RunFromRandom(maxGame, rand.New(rand.NewSource(1)), dynamics.Options{
		Responder:   core.ExactResponder(0),
		DetectLoops: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MAX version from a random start: converged=%v, diameter=%d\n",
		res2.Converged, maxGame.SocialCost(res2.Final))
}
