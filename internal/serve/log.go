// Package serve exposes persistent game sessions as an HTTP/JSON
// service over the warm distance-cache pool: create a game, post
// rewirings, and query best responses, equilibrium status, welfare and
// dynamics rounds, with repeated queries riding the stamp-skip /
// delta-repair / memo ladder instead of rebuilding distance caches.
//
// Sessions are durable. Every mutation is appended to a
// store-backed JSONL event log (one shard per session, the same
// crash-safety contract the sweep store gives experiment results:
// single-write O_APPEND records with content CRCs, torn tails repaired
// on open) before it is applied in memory, and a periodic full-profile
// anchor bounds replay length. A server restarted on the same -out
// directory replays every session to a byte-identical profile, so
// best-response answers and welfare match across a crash.
package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/store"
	"repro/pkg/bbncg"
)

// Failpoint sites owned by serve (see internal/fault): the periodic
// anchor snapshot write, the per-session replay at startup, and the
// top of every served dynamics round (delay schedules there let tests
// pace streamed runs deterministically).
var (
	siteSnapshotWrite = fault.Register("serve.snapshot.write", "session anchor snapshot append")
	siteSessionReplay = fault.Register("serve.session.replay", "session event-log replay at open")
	siteDynamicsRound = fault.Register("serve.dynamics.round", "top of each served dynamics round")
)

// sessionExpPrefix namespaces session shards inside the store; the
// session id follows. ExpPattern is the store.Audit prefix pattern
// matching every session shard — the doctor admits serve stores with
// it without enumerating session ids.
const (
	sessionExpPrefix = "session-"
	ExpPattern       = sessionExpPrefix + "*"
)

// event is one session event-log entry. Kind selects which fields are
// meaningful:
//
//	create: Version, Budgets, Arcs (the materialised initial profile;
//	        authoritative for replay), Graph (provenance only),
//	        Responder (the session's memoised responder), Weights
//	        (the seeded weight recipe of an arc-weighted session)
//	rewire: Player, Strategy, and in weighted sessions an optional
//	        Weight (> 0: the new arcs' weight; replayed since the
//	        create, not the anchor — anchors snapshot topology only)
//	anchor: Out (full out-lists; replay restarts here)
//	delete: nothing (tombstone; a later create reopens the id)
type event struct {
	Seq  int64  `json:"seq"`
	Kind string `json:"kind"`

	Version   string               `json:"version,omitempty"`
	Budgets   []int                `json:"budgets,omitempty"`
	Arcs      [][2]int             `json:"arcs,omitempty"`
	Graph     *bbncg.GeneratorSpec `json:"graph,omitempty"`
	Responder string               `json:"responder,omitempty"`
	Weights   *bbncg.WeightsSpec   `json:"weights,omitempty"`

	Player   int   `json:"player,omitempty"`
	Strategy []int `json:"strategy,omitempty"`
	Weight   int32 `json:"weight,omitempty"`

	Out [][]int `json:"out,omitempty"`
}

const (
	evCreate = "create"
	evRewire = "rewire"
	evAnchor = "anchor"
	evDelete = "delete"
)

func marshalEvent(ev event) (json.RawMessage, error) { return json.Marshal(ev) }

func unmarshalEvent(raw json.RawMessage) (event, error) {
	var ev event
	err := json.Unmarshal(raw, &ev)
	return ev, err
}

// sessionExp returns the store experiment name of a session.
func sessionExp(id string) string { return sessionExpPrefix + id }

// eventID is the store record identity of one event: unique across the
// store, ordered within a session.
func eventID(id string, seq int64) string { return fmt.Sprintf("%s#%012d", id, seq) }

// ValidSessionID restricts session ids to the store's shard-name-safe
// alphabet: 1-40 chars of [a-z0-9-], starting with an alphanumeric.
func ValidSessionID(id string) error {
	if id == "" || len(id) > 40 {
		return fmt.Errorf("serve: session id must be 1-40 characters, got %d", len(id))
	}
	for i, r := range id {
		ok := r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' && i > 0
		if !ok {
			return fmt.Errorf("serve: session id %q: want [a-z0-9] and interior dashes", id)
		}
	}
	return nil
}

// appendEvent durably logs one event for session id. Mutations are
// logged before they are applied in memory, so a crash between the two
// replays the mutation instead of losing it.
func appendEvent(st *store.Store, id string, ev event) error {
	raw, err := marshalEvent(ev)
	if err != nil {
		return err
	}
	return st.Append(store.Record{
		ID:    eventID(id, ev.Seq),
		Exp:   sessionExp(id),
		Key:   fmt.Sprintf("%d", ev.Seq),
		Value: raw,
	})
}

// replayState is the reconstruction of one session from its event log.
type replayState struct {
	id      string
	create  event // the last create event (authoritative metadata)
	d       *bbncg.Digraph
	wts     *bbncg.Weights // rebuilt weights of an arc-weighted session
	nextSeq int64
	moves   int64 // rewires replayed since the last create
	dead    bool  // tombstoned by a trailing delete
}

// replaySessions reconstructs every session recorded in st. Dead
// sessions are returned too (dead=true) so their next-seq survives a
// delete/create cycle of the same id.
func replaySessions(st *store.Store) ([]*replayState, error) {
	byID := make(map[string][]store.Record)
	for _, rec := range st.Records() {
		if !strings.HasPrefix(rec.Exp, sessionExpPrefix) {
			continue
		}
		id := strings.TrimPrefix(rec.Exp, sessionExpPrefix)
		byID[id] = append(byID[id], rec)
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*replayState, 0, len(ids))
	for _, id := range ids {
		rs, err := replaySession(id, byID[id])
		if err != nil {
			return nil, fmt.Errorf("serve: replaying session %s: %w", id, err)
		}
		out = append(out, rs)
	}
	return out, nil
}

// replaySession rebuilds one session: find the last create, honour a
// trailing delete as a tombstone, start from the last anchor after the
// create, and apply the rewires recorded since. The profile this
// produces is byte-identical to the pre-crash one — rewires are
// explicit strategies, so replay involves no recomputation.
func replaySession(id string, recs []store.Record) (*replayState, error) {
	if err := fault.Hit(siteSessionReplay); err != nil {
		return nil, err
	}
	events := make([]event, 0, len(recs))
	var nextSeq int64
	for _, rec := range recs {
		ev, err := unmarshalEvent(rec.Value)
		if err != nil {
			return nil, fmt.Errorf("event %s: %w", rec.ID, err)
		}
		events = append(events, ev)
		if ev.Seq+1 > nextSeq {
			nextSeq = ev.Seq + 1
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })

	createIdx := -1
	for i, ev := range events {
		if ev.Kind == evCreate {
			createIdx = i
		}
	}
	if createIdx < 0 {
		return nil, fmt.Errorf("log holds %d event(s) but no create", len(events))
	}
	rs := &replayState{id: id, create: events[createIdx], nextSeq: nextSeq}
	if spec := rs.create.Weights; spec != nil {
		wts, err := spec.Build(len(rs.create.Budgets))
		if err != nil {
			return nil, err
		}
		rs.wts = wts
	}
	for _, ev := range events[createIdx+1:] {
		if ev.Kind == evDelete {
			rs.dead = true
			return rs, nil
		}
		if ev.Kind == evRewire {
			rs.moves++ // counted across anchors; applied only after the last one
			// Weight overrides replay from the create, not the anchor:
			// anchors snapshot topology only, and Weights.Set is
			// idempotent in sequence order.
			if rs.wts != nil && ev.Weight > 0 {
				for _, v := range ev.Strategy {
					if err := rs.wts.Set(ev.Player, v, ev.Weight); err != nil {
						return nil, fmt.Errorf("event seq %d: %w", ev.Seq, err)
					}
				}
			}
		}
	}

	// Start from the newest anchor at or after the create.
	startIdx := createIdx
	for i := createIdx + 1; i < len(events); i++ {
		if events[i].Kind == evAnchor {
			startIdx = i
		}
	}
	var d *bbncg.Digraph
	var err error
	if start := events[startIdx]; start.Kind == evAnchor {
		d = bbncg.NewDigraph(len(start.Out))
		for u, s := range start.Out {
			d.SetOut(u, s)
		}
	} else {
		d, err = bbncg.FromArcs(len(start.Budgets), start.Arcs)
		if err != nil {
			return nil, err
		}
	}
	for _, ev := range events[startIdx+1:] {
		if ev.Kind != evRewire {
			continue
		}
		if ev.Player < 0 || ev.Player >= d.N() {
			return nil, fmt.Errorf("event seq %d rewires out-of-range player %d", ev.Seq, ev.Player)
		}
		d.SetOut(ev.Player, ev.Strategy)
	}
	rs.d = d
	return rs, nil
}

// anchorEvent snapshots d's full out-lists.
func anchorEvent(seq int64, d *bbncg.Digraph) event {
	out := make([][]int, d.N())
	for u := range out {
		out[u] = append([]int{}, d.Out(u)...)
	}
	return event{Seq: seq, Kind: evAnchor, Out: out}
}
