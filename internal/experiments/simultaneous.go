package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/sweep"
)

// SimultaneousContrast compares sequential and simultaneous-move
// best-response dynamics (Section 8 context): sequential dynamics
// converged in every experiment in this repo, while simultaneous moves
// let players chase each other and cycle. Loop lengths are exact
// (profile-confirmed).
func SimultaneousContrast(effort Effort, seed int64) (*sweep.Table, error) {
	ns := []int{5, 6}
	trials := 10
	if effort == Full {
		ns = []int{5, 6, 8, 10, 12}
		trials = 25
	}
	type cell struct {
		ver                    core.Version
		n                      int
		seqConv, seqLoop       int
		simConv, simLoop       int
		maxLoopLen             int
		seqTimeouts, simMisses int
		err                    error
	}
	var points []cell
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		for _, n := range ns {
			points = append(points, cell{ver: ver, n: n})
		}
	}
	rows := sweep.Parallel(points, func(c cell) cell {
		rng := rand.New(rand.NewSource(seed + int64(c.n)*1001 + int64(c.ver)))
		g := core.UniformGame(c.n, 1, c.ver)
		for trial := 0; trial < trials; trial++ {
			start := dynamics.RandomProfile(g, rng)
			seq, err := dynamics.Run(g, start, dynamics.Options{
				Responder:   core.ExactResponder(0),
				DetectLoops: true,
				MaxRounds:   800,
			})
			if err != nil {
				c.err = err
				return c
			}
			switch {
			case seq.Converged:
				c.seqConv++
			case seq.Loop:
				c.seqLoop++
			default:
				c.seqTimeouts++
			}
			sim, err := dynamics.RunSimultaneous(g, start, dynamics.Options{
				Responder: core.ExactResponder(0),
				MaxRounds: 800,
			})
			if err != nil {
				c.err = err
				return c
			}
			switch {
			case sim.Converged:
				c.simConv++
			case sim.Loop:
				c.simLoop++
				if sim.LoopLength > c.maxLoopLen {
					c.maxLoopLen = sim.LoopLength
				}
			default:
				c.simMisses++
			}
		}
		return c
	})
	t := sweep.NewTable("Section 8: sequential vs simultaneous best-response dynamics (unit budgets)",
		"version", "n", "trials", "seq-converged", "seq-loops", "sim-converged", "sim-loops", "max-sim-loop-len")
	for _, c := range rows {
		if c.err != nil {
			return nil, c.err
		}
		t.Addf(c.ver.String(), c.n, trials, c.seqConv, c.seqLoop, c.simConv, c.simLoop, c.maxLoopLen)
	}
	return t, nil
}
