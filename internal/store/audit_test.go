package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// auditStore builds a clean two-experiment store for audit tests.
func auditStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Record{
		rec("a1", "alpha", "k=1", 1),
		rec("a2", "alpha", "k=2", 2),
		rec("b1", "beta", "k=1", 3),
	} {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func hasProblem(rep *AuditReport, substr string) bool {
	for _, p := range rep.Problems {
		if strings.Contains(p, substr) {
			return true
		}
	}
	return false
}

func TestAuditCleanStore(t *testing.T) {
	dir := auditStore(t)
	rep, err := Audit(dir, "alpha", "beta")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean store has problems: %v", rep.Problems)
	}
	if len(rep.Shards) != 2 || rep.Shards[0].Records != 2 || rep.Shards[0].Manifest != 2 {
		t.Fatalf("shards = %+v", rep.Shards)
	}
}

func TestAuditFindsCorruptionWithoutRepairing(t *testing.T) {
	dir := auditStore(t)
	shard := filepath.Join(dir, "alpha.jsonl")
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	i := len(data) / 4
	data[i] ^= 0x01
	if err := os.WriteFile(shard, data, 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("audit missed a flipped bit")
	}
	// Strictly read-only: the shard must be byte-identical afterwards.
	after, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(data) {
		t.Fatal("audit modified the shard")
	}
}

func TestAuditFindsStaleManifestAndTail(t *testing.T) {
	dir := auditStore(t)
	shard := filepath.Join(dir, "beta.jsonl")
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shard, data[:len(data)-4], 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !hasProblem(rep, "unterminated final line") || !hasProblem(rep, "manifest claims") {
		t.Fatalf("problems = %v", rep.Problems)
	}
}

func TestAuditFindsMissingAndOrphanShards(t *testing.T) {
	dir := auditStore(t)
	if err := os.Remove(filepath.Join(dir, "beta.jsonl")); err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(dir, "alpha") // beta also unknown to this build
	if err != nil {
		t.Fatal(err)
	}
	if !hasProblem(rep, "beta.jsonl but the file is missing") {
		t.Fatalf("problems = %v", rep.Problems)
	}

	dir2 := auditStore(t)
	rep2, err := Audit(dir2, "alpha") // beta shard exists but is unknown
	if err != nil {
		t.Fatal(err)
	}
	if !hasProblem(rep2, `"beta", unknown`) {
		t.Fatalf("problems = %v", rep2.Problems)
	}

	// A trailing-star entry admits every experiment with that prefix —
	// how the doctor accepts serve's session-<id> shards.
	rep3, err := Audit(dir2, "alpha", "be*")
	if err != nil {
		t.Fatal(err)
	}
	if hasProblem(rep3, "unknown") {
		t.Fatalf("prefix pattern not honoured: %v", rep3.Problems)
	}
}

func TestAuditFailuresOutstandingVsResolved(t *testing.T) {
	dir := auditStore(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// a2 failed once but its record exists (resolved); zz is outstanding.
	if err := s.AppendFailure(Failure{ID: "a2", Exp: "alpha", Key: "k=2", Err: "flaky", Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFailure(Failure{ID: "zz", Exp: "alpha", Key: "k=9", Err: "panic: boom", Attempts: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 2 || len(rep.Outstanding) != 1 || rep.Outstanding[0].ID != "zz" {
		t.Fatalf("Failures=%d Outstanding=%+v", rep.Failures, rep.Outstanding)
	}
	if !hasProblem(rep, "never re-evaluated") {
		t.Fatalf("problems = %v", rep.Problems)
	}

	// After the outstanding point succeeds, only a note remains.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(rec("zz", "alpha", "k=9", 9)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	rep2, err := Audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.OK() {
		t.Fatalf("resolved failures still problems: %v", rep2.Problems)
	}
	if len(rep2.Notes) == 0 {
		t.Fatal("resolved failures left no note")
	}
}

func TestAuditQuarantineFileIsNoteNotProblem(t *testing.T) {
	dir := auditStore(t)
	if err := os.WriteFile(filepath.Join(dir, "alpha.bad.jsonl"), []byte("{junk}\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("quarantine file treated as problem: %v", rep.Problems)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "alpha.bad.jsonl") {
			found = true
		}
	}
	if !found {
		t.Fatalf("notes = %v", rep.Notes)
	}
}
