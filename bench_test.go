// Benchmark harness: one benchmark per evaluation artifact of the paper
// (every Table 1 cell and every figure), plus ablation benchmarks for the
// design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Each Table/Figure benchmark executes the same code path as the
// corresponding `bbncg` subcommand at Quick effort, so benchmark time is
// the cost of regenerating that artifact.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/experiments"
	"repro/internal/graph"
)

// --- Table 1 ---------------------------------------------------------

// BenchmarkTable1TreesMAX regenerates the Trees/MAX cell: spider
// construction + exact parallel Nash verification + PoA measurement.
func BenchmarkTable1TreesMAX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1TreesMAX(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1TreesSUM regenerates the Trees/SUM cell: binary-tree
// equilibria + Theorem 3.3 inequality audit.
func BenchmarkTable1TreesSUM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1TreesSUM(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1UnitSUM regenerates the All-Unit/SUM cell: exact
// best-response dynamics to equilibrium plus structure audits.
func BenchmarkTable1UnitSUM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table1Unit(core.SUM, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1UnitMAX regenerates the All-Unit/MAX cell.
func BenchmarkTable1UnitMAX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table1Unit(core.MAX, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1PositiveMAX regenerates the All-Positive/MAX cell:
// shift-graph construction, Lemma 5.2 certification and exact Nash checks.
func BenchmarkTable1PositiveMAX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1PositiveMAX(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1GeneralSUM regenerates the General/SUM cell: dynamics
// over random budget vectors against the 2^O(sqrt(log n)) bound.
func BenchmarkTable1GeneralSUM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := experiments.Table1GeneralSUM(experiments.Quick, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1GeneralMAX regenerates the General/MAX cell, whose
// Theta(n) lower bound is witnessed by the same spider family as the
// tree row (the general row's upper bound is trivial).
func BenchmarkTable1GeneralMAX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1TreesMAX(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures ---------------------------------------------------------

// BenchmarkFigure1 rebuilds and fully verifies the printed Figure 1
// equilibrium (n=22, both versions).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 rebuilds and verifies the Figure 2 spider at k=5.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 runs the Figure 3 subtree-weight audit at k=4.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Auxiliary theorem harnesses --------------------------------------

// BenchmarkExistence sweeps Theorem 2.3 constructions with verification.
func BenchmarkExistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Existence(experiments.Quick, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReduction cross-checks the Theorem 2.1 reduction.
func BenchmarkReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Reduction(experiments.Quick, 11); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConnectivity runs the Theorem 7.2 dichotomy sweep.
func BenchmarkConnectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Connectivity(experiments.Quick, 17); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamics runs the Section 8 convergence statistics sweep.
func BenchmarkDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DynamicsStats(experiments.Quick, 23); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactPoA enumerates the full profile space of the small
// instance battery (exact price of anarchy / stability).
func BenchmarkExactPoA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExactPoA(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUniformBudget runs the Section 8 uniform-budget exploration.
func BenchmarkUniformBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.UniformBudget(experiments.Quick, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineContrast runs the basic-game baseline comparison.
func BenchmarkBaselineContrast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BaselineContrast(experiments.Quick, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeakMachinery runs the Section 6 audits.
func BenchmarkWeakMachinery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WeakMachinery(experiments.Quick, 13); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md) --------------------------------------------

func ablationGame() (*core.Game, *graph.Digraph) {
	g := core.UniformGame(24, 2, core.SUM)
	d := dynamics.RandomProfile(g, rand.New(rand.NewSource(42)))
	return g, d
}

// BenchmarkAblationResponderExact: full C(n-1,b) enumeration per move.
func BenchmarkAblationResponderExact(b *testing.B) {
	g, d := ablationGame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynamics.Run(g, d, dynamics.Options{
			Responder: core.ExactResponder(0), MaxRounds: 5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationResponderGreedy: marginal-cost greedy per move.
func BenchmarkAblationResponderGreedy(b *testing.B) {
	g, d := ablationGame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynamics.Run(g, d, dynamics.Options{
			Responder: core.GreedyResponder, MaxRounds: 5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationResponderSwap: best single-arc swap per move.
func BenchmarkAblationResponderSwap(b *testing.B) {
	g, d := ablationGame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynamics.Run(g, d, dynamics.Options{
			Responder: core.SwapResponder, MaxRounds: 5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCostEvalDeviator: evaluating 100 candidate strategies
// through the incremental Deviator (one BFS each, no graph rebuild).
func BenchmarkAblationCostEvalDeviator(b *testing.B) {
	g, d := ablationGame()
	dv := core.NewDeviator(g, d, 0)
	cands := candidateStrategies(g.N(), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range cands {
			dv.Eval(s)
		}
	}
}

// BenchmarkAblationCostEvalRebuild: the naive alternative — clone the
// graph, rewrite the strategy, recompute the cost from scratch.
func BenchmarkAblationCostEvalRebuild(b *testing.B) {
	g, d := ablationGame()
	cands := candidateStrategies(g.N(), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range cands {
			h := d.Clone()
			h.SetOut(0, s)
			g.Cost(h, 0)
		}
	}
}

func candidateStrategies(n, count int) [][]int {
	rng := rand.New(rand.NewSource(7))
	cands := make([][]int, count)
	for i := range cands {
		a := 1 + rng.Intn(n-1)
		c := 1 + rng.Intn(n-1)
		for c == a {
			c = 1 + rng.Intn(n-1)
		}
		cands[i] = []int{a, c}
	}
	return cands
}

// BenchmarkAblationLoopDetectOn/Off: profile hashing cost in dynamics.
func BenchmarkAblationLoopDetectOn(b *testing.B) {
	g, d := ablationGame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynamics.Run(g, d, dynamics.Options{
			Responder: core.GreedyResponder, MaxRounds: 20, DetectLoops: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLoopDetectOff(b *testing.B) {
	g, d := ablationGame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynamics.Run(g, d, dynamics.Options{
			Responder: core.GreedyResponder, MaxRounds: 20,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAPSPParallel measures the worker-pool all-sources BFS
// (n = 2048 ring-with-chords, large enough to engage the pool).
func BenchmarkAblationAPSPParallel(b *testing.B) {
	a := chordRing(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, connected := graph.Eccentricities(a); !connected {
			b.Fatal("disconnected bench graph")
		}
	}
}

// BenchmarkAblationAPSPSequential is the single-scratch baseline.
func BenchmarkAblationAPSPSequential(b *testing.B) {
	a := chordRing(2048)
	s := graph.NewScratch(len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for src := 0; src < len(a); src++ {
			s.BFS(a, src)
		}
	}
}

func chordRing(n int) graph.Und {
	d := graph.CycleGraph(n)
	for v := 0; v < n; v += 16 {
		d.AddArc(v, (v+n/2)%n)
	}
	return d.Underlying()
}

// BenchmarkGreedyDynamicsRound measures one full greedy-response round
// (every player responds once) across the perf-trajectory sizes:
// "Baseline" is the pre-cache configuration (BFS per candidate,
// sequential round), "Fast" the distance-cache engine with parallel
// within-round evaluation.
func BenchmarkGreedyDynamicsRound(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		g := core.UniformGame(n, 2, core.SUM)
		start := dynamics.RandomProfile(g, rand.New(rand.NewSource(1)))
		round := func(b *testing.B, parallel bool) {
			for i := 0; i < b.N; i++ {
				if _, err := dynamics.Run(g, start, dynamics.Options{
					Responder: core.GreedyResponder, MaxRounds: 1, Parallel: parallel,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(fmt.Sprintf("Baseline/n=%d", n), func(b *testing.B) {
			old := core.DefaultCacheBudget
			core.DefaultCacheBudget = 0
			defer func() { core.DefaultCacheBudget = old }()
			round(b, false)
		})
		b.Run(fmt.Sprintf("Fast/n=%d", n), func(b *testing.B) {
			round(b, true)
		})
	}
}

// BenchmarkVerifySpider measures exact parallel Nash verification on a
// single large spider (the dominant cost of the Trees/MAX row at Full
// effort).
func BenchmarkVerifySpider(b *testing.B) {
	d, budgets, err := construct.Spider(10)
	if err != nil {
		b.Fatal(err)
	}
	g := core.MustGame(budgets, core.MAX)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev, err := g.VerifyNash(d, 0)
		if err != nil || dev != nil {
			b.Fatalf("dev=%v err=%v", dev, err)
		}
	}
}

// BenchmarkConnectivityAudit measures the max-flow k-connectivity audit
// used by the Theorem 7.2 sweep.
func BenchmarkConnectivityAudit(b *testing.B) {
	sg, err := construct.NewShiftGraph(4, 2, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.AuditConnectivity(sg.D, 2)
	}
}
