package graph

import "math/bits"

// Eccentricity-only word-parallel BFS. The MAX cost, the social cost
// (diameter) and the SUM cost all consume per-source *aggregates* of the
// BFS — eccentricity, distance sum, reached count — never the per-pair
// distances themselves. This kernel runs the same 64-sources-per-pass
// bitmask BFS as DistanceRowsInto but accumulates those aggregates
// directly from the frontier masks, so it writes no n×n matrix at all:
// per batch it touches O(n) mask words plus three 64-entry accumulators,
// instead of streaming 4·n² bytes of distance cells — the memory-traffic
// cut that makes MAX-objective sweeps cache-resident at large n.

// AggregatesInto fills per-source ecc (eccentricity within the reached
// set), sum (total distance to reached vertices) and reached (count,
// including the source) for every vertex of c. Each slice must have
// length n.
func (c *CSR) AggregatesInto(ecc []int32, sum []int64, reached []int32) {
	n := c.N()
	batches := (n + 63) / 64
	parallelRange(batches, 2, func() *maskScratch { return newMaskScratch(n) }, func(ms *maskScratch, batch int) {
		c.aggBatch(batch, ms, ecc, sum, reached)
	})
}

// aggBatch runs the 64 simultaneous BFS of one source batch, folding
// each newly-reached vertex into its sources' aggregates. (Frontier-loop
// triplet with fillBatch and fillRowsSubset in csr.go; propagation fixes
// apply to all three.)
func (c *CSR) aggBatch(batch int, ms *maskScratch, ecc []int32, sum []int64, reached []int32) {
	n := c.N()
	base := batch * 64
	width := n - base
	if width > 64 {
		width = 64
	}
	var cnt [64]int32
	var sums [64]int64
	var eccs [64]int32
	for i := range ms.reach {
		ms.reach[i] = 0
		ms.acc[i] = 0
	}
	ms.list = ms.list[:0]
	for i := 0; i < width; i++ {
		s := base + i
		cnt[i] = 1 // the source reaches itself at distance 0
		ms.reach[s] |= 1 << i
		ms.front[s] = ms.reach[s]
		ms.list = append(ms.list, int32(s))
	}
	for d := int32(1); len(ms.list) > 0; d++ {
		ms.next = ms.next[:0]
		for _, v := range ms.list {
			m := ms.front[v]
			for _, w := range c.Nbrs[c.Indptr[v]:c.Indptr[v+1]] {
				if ms.acc[w] == 0 {
					ms.next = append(ms.next, w)
				}
				ms.acc[w] |= m
			}
		}
		ms.list = ms.list[:0]
		for _, w := range ms.next {
			nb := ms.acc[w] &^ ms.reach[w]
			ms.acc[w] = 0
			if nb == 0 {
				continue
			}
			ms.reach[w] |= nb
			ms.front[w] = nb
			ms.list = append(ms.list, w)
			for rem := nb; rem != 0; rem &= rem - 1 {
				i := bits.TrailingZeros64(rem)
				cnt[i]++
				sums[i] += int64(d)
				eccs[i] = d // levels are visited in increasing d
			}
		}
	}
	for i := 0; i < width; i++ {
		ecc[base+i] = eccs[i]
		sum[base+i] = sums[i]
		reached[base+i] = cnt[i]
	}
}

// AggregateBFS computes every vertex's BFS aggregates over the
// undirected adjacency a in one batched pass: eccentricities, distance
// sums and reached counts, without materialising any distance matrix.
func AggregateBFS(a Und) (ecc []int32, sums []int64, reached []int32) {
	n := len(a)
	ecc = make([]int32, n)
	sums = make([]int64, n)
	reached = make([]int32, n)
	if n == 0 {
		return
	}
	NewCSR(a).AggregatesInto(ecc, sums, reached)
	return
}
