package bbncg

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// GeneratorSpec is a declarative, JSON-encodable recipe for an initial
// realization — the create-request form of the graph generators in
// internal/graph. Builds are deterministic in (Kind, parameters, Seed),
// but callers that persist sessions should persist the materialised arc
// list, not the spec: the arc list is what replays byte-identically
// even if a generator's sampling ever changes.
type GeneratorSpec struct {
	// Kind selects the generator: path, cycle, star, complete, grid,
	// tree, random, pa (preferential attachment), smallworld.
	Kind string `json:"kind"`
	// N is the vertex count (all kinds except grid).
	N int `json:"n,omitempty"`
	// B is the uniform per-player budget of kind "random" when Budgets
	// is not given.
	B int `json:"b,omitempty"`
	// Budgets is the explicit budget vector of kind "random".
	Budgets []int `json:"budgets,omitempty"`
	// M is the arcs-per-arrival of kind "pa".
	M int `json:"m,omitempty"`
	// K is the ring half-degree and P the rewiring probability of kind
	// "smallworld".
	K int     `json:"k,omitempty"`
	P float64 `json:"p,omitempty"`
	// Rows and Cols shape kind "grid".
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Seed drives the randomized kinds (tree, random, pa, smallworld).
	Seed int64 `json:"seed,omitempty"`
}

// Build materialises the spec into a realization.
func (s GeneratorSpec) Build() (*Digraph, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	switch s.Kind {
	case "path":
		if err := s.needN(2); err != nil {
			return nil, err
		}
		return graph.PathGraph(s.N), nil
	case "cycle":
		if err := s.needN(3); err != nil {
			return nil, err
		}
		return graph.CycleGraph(s.N), nil
	case "star":
		if err := s.needN(2); err != nil {
			return nil, err
		}
		return graph.StarGraph(s.N), nil
	case "complete":
		if err := s.needN(2); err != nil {
			return nil, err
		}
		return graph.CompleteDigraph(s.N), nil
	case "grid":
		if s.Rows < 1 || s.Cols < 1 {
			return nil, fmt.Errorf("bbncg: grid needs rows and cols >= 1, got %dx%d", s.Rows, s.Cols)
		}
		return graph.GridGraph(s.Rows, s.Cols), nil
	case "tree":
		if err := s.needN(1); err != nil {
			return nil, err
		}
		return graph.RandomTree(s.N, rng), nil
	case "random":
		budgets := s.Budgets
		if budgets == nil {
			if err := s.needN(1); err != nil {
				return nil, err
			}
			if s.B < 0 || s.B >= s.N {
				return nil, fmt.Errorf("bbncg: uniform budget %d out of range [0,%d)", s.B, s.N)
			}
			budgets = make([]int, s.N)
			for i := range budgets {
				budgets[i] = s.B
			}
		}
		n := len(budgets)
		for i, b := range budgets {
			if b < 0 || b >= n {
				return nil, fmt.Errorf("bbncg: budget b[%d]=%d out of range [0,%d)", i, b, n)
			}
		}
		return graph.RandomOutDigraph(budgets, rng), nil
	case "pa":
		if err := s.needN(1); err != nil {
			return nil, err
		}
		return graph.PreferentialAttachment(s.N, s.M, rng)
	case "smallworld":
		if err := s.needN(1); err != nil {
			return nil, err
		}
		return graph.SmallWorld(s.N, s.K, s.P, rng)
	case "":
		return nil, fmt.Errorf("bbncg: generator spec needs a kind")
	default:
		return nil, fmt.Errorf("bbncg: unknown generator kind %q", s.Kind)
	}
}

func (s GeneratorSpec) needN(min int) error {
	if s.N < min {
		return fmt.Errorf("bbncg: generator %q needs n >= %d, got %d", s.Kind, min, s.N)
	}
	return nil
}
