package basic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestCostMatchesCoreOnConnectedGraphs(t *testing.T) {
	d := graph.PathGraph(6)
	a := d.Underlying()
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		bg := Game{Version: ver}
		cg := core.GameOf(d, ver)
		for u := 0; u < 6; u++ {
			if got, want := bg.Cost(a, u), cg.Cost(d, u); got != want {
				t.Fatalf("%v cost(%d) = %d, core says %d", ver, u, got, want)
			}
		}
	}
}

func TestStarIsBasicSwapEquilibrium(t *testing.T) {
	a := graph.StarGraph(7).Underlying()
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		if sw := (Game{Version: ver}).IsSwapEquilibrium(a); sw != nil {
			t.Fatalf("%v: star admits improving swap %v", ver, sw)
		}
	}
}

func TestPathIsNotBasicSwapEquilibrium(t *testing.T) {
	a := graph.PathGraph(6).Underlying()
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		if sw := (Game{Version: ver}).IsSwapEquilibrium(a); sw == nil {
			t.Fatalf("%v: long path reported as swap equilibrium", ver)
		}
	}
}

func TestSpiderContrast(t *testing.T) {
	// The paper's Section 1.1 contrast: the spider is a bounded-budget
	// MAX equilibrium (ownership protects it), but in the basic ownerless
	// model some vertex can swap its way to an improvement.
	d, budgets, err := constructSpider(t, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := core.MustGame(budgets, core.MAX)
	dev, err := g.VerifyNash(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dev != nil {
		t.Fatalf("spider should be a BG MAX equilibrium: %v", dev)
	}
	if sw := (Game{Version: core.MAX}).IsSwapEquilibrium(d.Underlying()); sw == nil {
		t.Fatal("spider should NOT be a basic swap equilibrium")
	}
}

func TestBasicTreeDynamicsReachSmallDiameter(t *testing.T) {
	// Alon et al.: MAX tree swap equilibria have diameter <= 3. Run swap
	// dynamics from long paths and spiders; converged trees must land at
	// diameter <= 3.
	rng := rand.New(rand.NewSource(11))
	bg := Game{Version: core.MAX}
	starts := []graph.Und{
		graph.PathGraph(17).Underlying(),
	}
	if d, _, err := constructSpider(t, 5); err == nil {
		starts = append(starts, d.Underlying())
	}
	for i, start := range starts {
		res := bg.SwapDynamics(start, rng, 500)
		if !res.Converged {
			t.Fatalf("start %d: basic dynamics did not converge", i)
		}
		// Swaps preserve edge count, so a tree stays a tree.
		if res.Final.EdgeCount() != start.EdgeCount() {
			t.Fatalf("start %d: edge count changed", i)
		}
		diam := graph.Diameter(res.Final)
		if diam < 0 || diam > 3 {
			t.Fatalf("start %d: basic MAX tree equilibrium has diameter %d, Alon et al. cap is 3", i, diam)
		}
	}
}

func TestBasicSUMTreeDynamics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bg := Game{Version: core.SUM}
	res := bg.SwapDynamics(graph.PathGraph(15).Underlying(), rng, 500)
	if !res.Converged {
		t.Fatal("SUM basic dynamics did not converge")
	}
	if sw := bg.IsSwapEquilibrium(res.Final); sw != nil {
		t.Fatalf("fixed point admits a swap: %v", sw)
	}
	if diam := graph.Diameter(res.Final); diam < 0 || diam > 5 {
		t.Fatalf("SUM basic tree equilibrium diameter %d unexpectedly large", diam)
	}
}

func TestBestSwapDoesNotMutate(t *testing.T) {
	a := graph.PathGraph(6).Underlying()
	snapshot := a.Clone()
	(Game{Version: core.SUM}).BestSwap(a, 0)
	for v := range a {
		if len(a[v]) != len(snapshot[v]) {
			t.Fatal("BestSwap mutated the adjacency")
		}
		for i := range a[v] {
			if a[v][i] != snapshot[v][i] {
				t.Fatal("BestSwap mutated the adjacency")
			}
		}
	}
}

func TestSwapPreservesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	bg := Game{Version: core.MAX}
	for trial := 0; trial < 10; trial++ {
		d := graph.RandomTree(10, rng)
		res := bg.SwapDynamics(d.Underlying(), rng, 200)
		if !graph.IsConnected(res.Final) {
			t.Fatal("swap dynamics disconnected the graph")
		}
	}
}

// constructSpider rebuilds the Theorem 3.2 spider locally so the
// baseline package's tests stay self-contained (same layout as
// construct.Spider, which is covered by its own tests).
func constructSpider(t *testing.T, k int) (*graph.Digraph, []int, error) {
	t.Helper()
	n := 3*k + 1
	d := graph.NewDigraph(n)
	for leg := 0; leg < 3; leg++ {
		first := leg*k + 1
		d.AddArc(first, 0)
		for i := 0; i+1 < k; i++ {
			d.AddArc(first+i, first+i+1)
		}
	}
	budgets := make([]int, n)
	for v := 0; v < n; v++ {
		budgets[v] = d.OutDegree(v)
	}
	return d, budgets, nil
}
