package center

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func benchMetric() graph.Und {
	rng := rand.New(rand.NewSource(1))
	d := graph.RandomTree(14, rng)
	d.AddArc(13, 2)
	d.AddArc(11, 4)
	return d.Underlying()
}

func BenchmarkKCenterExact(b *testing.B) {
	a := benchMetric()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KCenterExact(a, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMedianExact(b *testing.B) {
	a := benchMetric()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMedianExact(a, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKCenterGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := graph.RandomTree(400, rng).Underlying()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KCenterGreedy(a, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMedianGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := graph.RandomTree(200, rng).Underlying()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMedianGreedy(a, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReductionKCenter(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	h := graph.RandomTree(12, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KCenterViaBestResponse(h, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}
