package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestStrategySpaceSize(t *testing.T) {
	cases := []struct {
		n, b int
		want int64
	}{
		{5, 0, 1}, {5, 1, 4}, {5, 2, 6}, {5, 4, 1},
		{10, 3, 84}, {10, 9, 1}, {3, 5, 0}, {4, -1, 0},
		{64, 32, 916312070471295267}, // C(63,32)
	}
	for _, c := range cases {
		if got := StrategySpaceSize(c.n, c.b); got != c.want {
			t.Errorf("C(%d-1,%d) = %d, want %d", c.n, c.b, got, c.want)
		}
	}
	if StrategySpaceSize(200, 100) != math.MaxInt64 {
		t.Error("expected saturation at MaxInt64")
	}
}

func TestExactBestResponsePathEndpoint(t *testing.T) {
	// Path 0-1-2-3-4: endpoint 0 (budget 1) should rewire to the centre 2
	// in both versions.
	d := graph.PathGraph(5)
	for _, ver := range []Version{SUM, MAX} {
		g := GameOf(d, ver)
		br, err := g.ExactBestResponse(d, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !br.Improves() {
			t.Fatalf("%v: endpoint should improve", ver)
		}
		if len(br.Strategy) != 1 || br.Strategy[0] != 2 {
			t.Fatalf("%v: best strategy = %v, want [2]", ver, br.Strategy)
		}
		if br.Explored != 4 {
			t.Fatalf("%v: explored %d strategies, want 4", ver, br.Explored)
		}
	}
}

func TestExactBestResponseTieKeepsCurrent(t *testing.T) {
	// Star centre already plays optimally; exact BR must return its own
	// strategy, not an equal-cost alternative.
	d := graph.StarGraph(5)
	g := GameOf(d, SUM)
	br, err := g.ExactBestResponse(d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if br.Improves() {
		t.Fatal("star centre should not improve")
	}
	if len(br.Strategy) != 4 {
		t.Fatalf("strategy size changed: %v", br.Strategy)
	}
}

func TestExactBestResponseBudgetZero(t *testing.T) {
	d := graph.StarGraph(4)
	g := GameOf(d, SUM)
	br, err := g.ExactBestResponse(d, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if br.Improves() || len(br.Strategy) != 0 || br.Explored != 1 {
		t.Fatalf("zero-budget BR wrong: %+v", br)
	}
}

func TestExactBestResponseSpaceCap(t *testing.T) {
	d := graph.CompleteDigraph(12)
	g := GameOf(d, SUM)
	// Vertex 0 has budget 11, space C(11,11)=1: fine. Vertex 5 has budget
	// 6, C(11,6) = 462 > 100.
	if _, err := g.ExactBestResponse(d, 5, 100); err == nil {
		t.Fatal("expected space-cap error")
	}
	if _, err := g.ExactBestResponse(d, 5, 462); err != nil {
		t.Fatalf("space exactly at cap should pass: %v", err)
	}
}

func TestGreedyNeverWorseThanCurrent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = rng.Intn(3)
			if budgets[i] >= n {
				budgets[i] = n - 1
			}
		}
		d := graph.RandomOutDigraph(budgets, rng)
		u := rng.Intn(n)
		for _, ver := range []Version{SUM, MAX} {
			g := MustGame(budgets, ver)
			br := g.GreedyBestResponse(d, u)
			if br.Cost > br.Current {
				return false
			}
			if len(br.Strategy) != budgets[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestExactAtLeastAsGoodAsGreedyAndSwap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7)
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = rng.Intn(3)
			if budgets[i] >= n {
				budgets[i] = n - 1
			}
		}
		d := graph.RandomOutDigraph(budgets, rng)
		u := rng.Intn(n)
		for _, ver := range []Version{SUM, MAX} {
			g := MustGame(budgets, ver)
			exact, err := g.ExactBestResponse(d, u, 0)
			if err != nil {
				return false
			}
			if g.GreedyBestResponse(d, u).Cost < exact.Cost {
				return false
			}
			if g.BestSwap(d, u).Cost < exact.Cost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBestSwapImprovesOnPath(t *testing.T) {
	d := graph.PathGraph(6)
	g := GameOf(d, SUM)
	br := g.BestSwap(d, 0)
	if !br.Improves() {
		t.Fatal("endpoint swap should improve")
	}
	if len(br.Strategy) != 1 {
		t.Fatalf("swap changed strategy size: %v", br.Strategy)
	}
}

func TestBestSwapNoArcs(t *testing.T) {
	d := graph.StarGraph(4)
	g := GameOf(d, SUM)
	br := g.BestSwap(d, 2) // leaf owns nothing
	if br.Improves() || br.Explored != 0 {
		t.Fatalf("zero-budget swap wrong: %+v", br)
	}
}

func TestRespondersAgreeWithMethods(t *testing.T) {
	d := graph.PathGraph(5)
	g := GameOf(d, SUM)
	// Path 0-1-2-3-4, player 0: attaching to vertex 2 gives distances
	// 2,1,2,3, total 8, which is optimal.
	if got := ExactResponder(0)(g, d, 0); got.Cost != 8 {
		t.Fatalf("exact responder cost = %d, want 8", got.Cost)
	}
	if got := GreedyResponder(g, d, 0); got.Cost > 8 {
		t.Fatalf("greedy responder cost = %d, want <= 8", got.Cost)
	}
	if got := SwapResponder(g, d, 0); got.Cost != 8 {
		t.Fatalf("swap responder cost = %d, want 8", got.Cost)
	}
}

func TestExactResponderPanicsOverCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExactResponder should panic over cap")
		}
	}()
	d := graph.CompleteDigraph(12)
	g := GameOf(d, SUM)
	ExactResponder(10)(g, d, 5)
}
