package experiments

import (
	"repro/internal/core"
	"repro/internal/enumerate"
	"repro/internal/runner"
	"repro/internal/sweep"
)

type fipInst struct {
	budgets []int
	version core.Version
}

func fipInsts(effort Effort) []fipInst {
	insts := []fipInst{
		{[]int{1, 1, 1}, core.SUM},
		{[]int{1, 1, 1}, core.MAX},
		{[]int{1, 1, 1, 1}, core.SUM},
		{[]int{1, 1, 1, 1}, core.MAX},
	}
	if effort == Full {
		insts = append(insts,
			fipInst{[]int{2, 1, 0, 0}, core.SUM},
			fipInst{[]int{2, 1, 0, 0}, core.MAX},
			fipInst{[]int{2, 1, 1, 0}, core.SUM},
			fipInst{[]int{2, 1, 1, 0}, core.MAX},
			fipInst{[]int{1, 1, 1, 1, 1}, core.SUM},
			fipInst{[]int{1, 1, 1, 1, 1}, core.MAX},
			fipInst{[]int{2, 2, 1, 1}, core.SUM},
			fipInst{[]int{2, 2, 1, 1}, core.MAX},
		)
	}
	return insts
}

type fipRow struct {
	Budgets    []int  `json:"budgets"`
	Version    string `json:"version"`
	Profiles   int64  `json:"profiles"`
	Moves      int64  `json:"moves"`
	Equilibria int64  `json:"equilibria"`
	HasFIP     bool   `json:"hasFIP"`
	// Tail is the longest improvement path when acyclic, else the
	// verified cycle witness length.
	Tail int `json:"tail"`
}

// fipJob enumerates one improvement graph per point; instances mean the
// same computation at every effort, so Quick results are reused by Full.
func fipJob(effort Effort) runner.Job {
	insts := fipInsts(effort)
	points := make([]runner.Point, len(insts))
	for i, in := range insts {
		points[i] = runner.Point{Exp: "fip",
			Key:  "budgets=" + intsString(in.budgets) + ",ver=" + in.version.String(),
			Data: in}
	}
	return runner.Job{Exp: "fip", Points: points, Eval: evalFIP}
}

// evalFIP builds one game's exact best-response improvement graph; a
// cycle witness is re-verified step by step before being reported.
func evalFIP(p runner.Point) (any, error) {
	in := p.Data.(fipInst)
	g := core.MustGame(in.budgets, in.version)
	fip, err := enumerate.BestResponseImprovementGraph(g, 50_000_000)
	if err != nil {
		return nil, err
	}
	tail := fip.LongestPath
	if !fip.HasFIP {
		if err := enumerate.VerifyCycleWitness(g, fip.CycleWitness); err != nil {
			return nil, err
		}
		tail = len(fip.CycleWitness)
	}
	return fipRow{Budgets: in.budgets, Version: in.version.String(),
		Profiles: fip.Profiles, Moves: fip.Moves, Equilibria: fip.Equilibria,
		HasFIP: fip.HasFIP, Tail: tail}, nil
}

func fipTable(rows []fipRow) *sweep.Table {
	t := sweep.NewTable("Section 8 (exact): finite improvement property of best-response dynamics",
		"budgets", "version", "profiles", "moves", "equilibria", "FIP", "longest-path/cycle-len")
	for _, r := range rows {
		t.Addf(intsString(r.Budgets), r.Version, r.Profiles,
			r.Moves, r.Equilibria, yesNo(r.HasFIP), r.Tail)
	}
	return t
}

// FIP runs the exact finite-improvement-property analysis (Section 8):
// for each small game the entire best-response improvement graph is
// built; an acyclic graph certifies convergence of best-response
// dynamics under *every* scheduler, and a cycle is a replayable
// counterexample. Cycle witnesses are re-verified step by step before
// being reported.
func FIP(effort Effort) (*sweep.Table, error) {
	rows, err := runRows[fipRow](fipJob(effort))
	if err != nil {
		return nil, err
	}
	return fipTable(rows), nil
}

func intsString(s []int) string {
	out := "("
	for i, v := range s {
		if i > 0 {
			out += ","
		}
		out += string(rune('0' + v))
	}
	return out + ")"
}
