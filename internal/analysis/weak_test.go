package analysis

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
)

func TestTreeBallRadiusOnTree(t *testing.T) {
	// A tree: the ball is always a tree, so the radius is the
	// eccentricity of u.
	d, _, err := construct.PerfectBinaryTree(3)
	if err != nil {
		t.Fatal(err)
	}
	if r := TreeBallRadius(d, 0); r != 3 {
		t.Fatalf("root tree-ball radius = %d, want ecc = 3", r)
	}
	leaf := d.N() - 1
	if r := TreeBallRadius(d, leaf); r != 6 {
		t.Fatalf("leaf tree-ball radius = %d, want ecc = 6", r)
	}
}

func TestTreeBallRadiusStopsAtCycle(t *testing.T) {
	// A cycle with a pendant path: from the path's far end the ball is a
	// tree until it wraps the cycle.
	d := graph.NewDigraph(8)
	// 5-cycle 0..4, path 5-6-7 hanging off 0.
	for i := 0; i < 5; i++ {
		d.AddArc(i, (i+1)%5)
	}
	d.AddArc(5, 0)
	d.AddArc(6, 5)
	d.AddArc(7, 6)
	// From vertex 7: dist to cycle vertices 0:3, 1/4:4, 2/3:5. The ball
	// of radius 4 contains 0,1,4 but not the full cycle: edges 0-1, 0-4
	// only -> still a tree. Radius 5 swallows the cycle.
	if r := TreeBallRadius(d, 7); r != 4 {
		t.Fatalf("tree-ball radius from 7 = %d, want 4", r)
	}
	// From a cycle vertex the radius is smaller.
	if r := TreeBallRadius(d, 0); r >= 3 {
		t.Fatalf("tree-ball radius from 0 = %d, want < 3", r)
	}
}

func TestTreeBallRadiusBraceIsCycle(t *testing.T) {
	d := graph.NewDigraph(3)
	d.AddArc(0, 1)
	d.AddArc(1, 0)
	d.AddArc(1, 2)
	// From 2: radius 1 ball = {2,1}: tree. Radius 2 includes the brace.
	if r := TreeBallRadius(d, 2); r != 1 {
		t.Fatalf("radius = %d, want 1 (brace is a 2-cycle)", r)
	}
}

func TestMaxTreeBallRadiusEquilibriaLogBound(t *testing.T) {
	// Theorem 6.1 on dynamics-reached SUM equilibria: tree-ball radii
	// stay O(log n) — for these sizes, comfortably under 2*log2(n)+4.
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{8, 12, 16} {
		g := core.UniformGame(n, 1, core.SUM)
		out, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
			Responder: core.ExactResponder(0), DetectLoops: true, MaxRounds: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Converged {
			continue
		}
		r := MaxTreeBallRadius(out.Final)
		bound := 2*int(math.Log2(float64(n))) + 4
		if r > bound {
			t.Fatalf("n=%d: max tree-ball radius %d exceeds %d", n, r, bound)
		}
	}
}

func TestAuditRichLeavesPath(t *testing.T) {
	// Directed path 0->1->...->4: vertex 0 is a rich leaf (degree 1,
	// owns an arc); vertex 4 is a poor leaf. Only one rich leaf: holds.
	wg := core.NewWeighted(graph.PathGraph(5))
	audit := AuditRichLeaves(wg)
	if len(audit.RichLeaves) != 1 || audit.RichLeaves[0] != 0 {
		t.Fatalf("rich leaves = %v, want [0]", audit.RichLeaves)
	}
	if !audit.Holds {
		t.Fatal("single rich leaf must trivially satisfy Lemma 6.4")
	}
}

func TestAuditRichLeavesViolationDetected(t *testing.T) {
	// Two rich leaves at distance 4: 0->1, 1->2 chain with rich leaves
	// 0 and 4 (4 owns arc to 3). Not a weak equilibrium, and the audit
	// must say the lemma's conclusion fails here.
	d := graph.NewDigraph(5)
	d.AddArc(0, 1)
	d.AddArc(1, 2)
	d.AddArc(3, 2)
	d.AddArc(4, 3)
	wg := core.NewWeighted(d)
	audit := AuditRichLeaves(wg)
	if len(audit.RichLeaves) != 2 {
		t.Fatalf("rich leaves = %v, want two", audit.RichLeaves)
	}
	if audit.Holds {
		t.Fatal("distance-4 rich leaves should violate the lemma's conclusion")
	}
	// Consistency with Lemma 6.4: the graph must then admit an improving
	// swap (it is not a weak equilibrium).
	if wg.WeakDeviation() == nil {
		t.Fatal("contrapositive failed: no improving swap found")
	}
}

func TestFoldExperimentStar(t *testing.T) {
	wg := core.NewWeighted(graph.StarGraph(9))
	report, err := FoldExperiment(wg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Folds != 8 || report.AliveAfter != 1 {
		t.Fatalf("star fold report: %+v", report)
	}
	if !report.WeightConserved {
		t.Fatal("folding must conserve total weight")
	}
	if !report.WeakBefore || !report.WeakAfter {
		t.Fatalf("star is a weak equilibrium before and after folding: %+v", report)
	}
}

func TestFoldExperimentBinaryTreePreservesWeakEquilibrium(t *testing.T) {
	// Corollary 6.3 on a genuine SUM equilibrium: folding the leaves
	// of the binary tree yields another weak equilibrium, with the
	// diameter shrinking by at most O(log w).
	d, _, err := construct.PerfectBinaryTree(3)
	if err != nil {
		t.Fatal(err)
	}
	wg := core.NewWeighted(d.Clone())
	report, err := FoldExperiment(wg)
	if err != nil {
		t.Fatal(err)
	}
	if !report.WeakBefore {
		t.Fatal("binary tree should be a weak equilibrium")
	}
	if !report.WeakAfter {
		t.Fatal("Corollary 6.3 violated: folded graph admits an improving swap")
	}
	if report.DiameterShrink < 0 {
		t.Fatal("folding cannot increase the diameter")
	}
	if int(report.DiameterShrink) > 2*report.LogWeightCeiling {
		t.Fatalf("diameter shrank by %d, beyond the O(log w) budget %d",
			report.DiameterShrink, 2*report.LogWeightCeiling)
	}
}

func TestFoldExperimentEmptyGraph(t *testing.T) {
	wg := core.NewWeighted(graph.NewDigraph(0))
	if _, err := FoldExperiment(wg); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestDegreeTwoPathEdges(t *testing.T) {
	a := graph.PathGraph(6).Underlying()
	path := []int{0, 1, 2, 3, 4, 5}
	// Interior vertices 1..4 have degree 2; edges 1-2, 2-3, 3-4 qualify.
	if got := DegreeTwoPathEdges(a, path); got != 3 {
		t.Fatalf("degree-2 edges = %d, want 3", got)
	}
	star := graph.StarGraph(4).Underlying()
	if got := DegreeTwoPathEdges(star, []int{1, 0, 2}); got != 0 {
		t.Fatalf("star degree-2 edges = %d, want 0", got)
	}
}
