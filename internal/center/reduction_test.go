package center

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// The computational content of Theorem 2.1: the fresh player's exact best
// response in the MAX version attains exactly the optimal k-center value
// (and k-median in the SUM version), on connected instances.

func TestKCenterReductionPath(t *testing.T) {
	h := graph.PathGraph(7)
	direct, err := KCenterExact(h.Underlying(), 2)
	if err != nil {
		t.Fatal(err)
	}
	viaGame, err := KCenterViaBestResponse(h, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Value != viaGame.Value {
		t.Fatalf("k-center direct = %d, via best response = %d", direct.Value, viaGame.Value)
	}
}

func TestKMedianReductionStar(t *testing.T) {
	h := graph.StarGraph(6)
	direct, err := KMedianExact(h.Underlying(), 1)
	if err != nil {
		t.Fatal(err)
	}
	viaGame, err := KMedianViaBestResponse(h, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Value != viaGame.Value {
		t.Fatalf("k-median direct = %d, via best response = %d", direct.Value, viaGame.Value)
	}
}

func TestReductionEquivalenceRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(7)
		h := graph.RandomTree(n, rng)
		// Add a couple of extra edges for non-tree metrics.
		for e := 0; e < rng.Intn(3); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !h.Underlying().HasEdge(u, v) {
				h.AddArc(u, v)
			}
		}
		k := 1 + rng.Intn(3)
		if k > n {
			k = n
		}
		dc, err := KCenterExact(h.Underlying(), k)
		if err != nil {
			return false
		}
		gc, err := KCenterViaBestResponse(h, k, 0)
		if err != nil {
			return false
		}
		if dc.Value != gc.Value {
			return false
		}
		dm, err := KMedianExact(h.Underlying(), k)
		if err != nil {
			return false
		}
		gm, err := KMedianViaBestResponse(h, k, 0)
		if err != nil {
			return false
		}
		return dm.Value == gm.Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionAllCentres(t *testing.T) {
	h := graph.CycleGraph(5)
	viaGame, err := KCenterViaBestResponse(h, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if viaGame.Value != 0 {
		t.Fatalf("k=n reduction value = %d, want 0", viaGame.Value)
	}
}

func TestReductionValidation(t *testing.T) {
	h := graph.PathGraph(4)
	if _, err := KCenterViaBestResponse(h, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMedianViaBestResponse(h, 5, 0); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := KCenterViaBestResponse(h, 2, 1); err == nil {
		t.Fatal("candidate cap not propagated")
	}
}

func TestReductionCentersAreOptimal(t *testing.T) {
	// Not only the value: the returned centre set must achieve it.
	h := graph.PathGraph(9)
	sol, err := KCenterViaBestResponse(h, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := h.Underlying()
	d := graph.DistancesToSet(a, sol.Centers)
	var worst int32
	for _, dist := range d {
		if dist > worst {
			worst = dist
		}
	}
	if int64(worst) != sol.Value {
		t.Fatalf("returned centres achieve %d, reported %d", worst, sol.Value)
	}
}
