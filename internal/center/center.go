// Package center implements the k-center and k-median facility-location
// problems on graphs, the two NP-hard problems Theorem 2.1 reduces to
// best-response computation: a best response of a fresh player with
// budget k in the MAX version is an optimal k-center of the existing
// graph, and in the SUM version an optimal k-median. Exact solvers
// (subset enumeration with multi-source BFS) serve small instances and
// the reduction cross-checks; greedy algorithms (Gonzalez farthest-point
// for k-center, marginal-gain for k-median) scale to sweeps.
package center

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Solution is a chosen centre set with its objective value.
type Solution struct {
	Centers  []int
	Value    int64 // k-center: max distance; k-median: sum of distances
	Explored int64 // candidate sets evaluated (exact solvers)
}

// unreachablePenalty is the distance charged for vertices in components
// not touched by the centre set, mirroring the game's C_inf = n^2.
func unreachablePenalty(n int) int64 { return int64(n) * int64(n) }

// objective computes both objectives for one centre set via a
// multi-source BFS.
func objective(a graph.Und, s *graph.Scratch, centers []int) (maxDist, sumDist int64) {
	n := len(a)
	d := graph.DistancesToSetScratch(a, s, centers)
	pen := unreachablePenalty(n)
	for v := 0; v < n; v++ {
		dv := int64(d.Dist(v))
		if d.Dist(v) < 0 {
			dv = pen
		}
		if dv > maxDist {
			maxDist = dv
		}
		sumDist += dv
	}
	return maxDist, sumDist
}

// enumerateExact drives both exact solvers: it enumerates all k-subsets
// and keeps the one minimising pick(max, sum).
func enumerateExact(a graph.Und, k int, pick func(maxDist, sumDist int64) int64) (Solution, error) {
	n := len(a)
	if k < 1 || k > n {
		return Solution{}, fmt.Errorf("center: k=%d out of range [1,%d]", k, n)
	}
	s := graph.NewScratch(n)
	best := Solution{Value: math.MaxInt64}
	comb := make([]int, k)
	var rec func(start, at int)
	rec = func(start, at int) {
		if at == k {
			best.Explored++
			m, su := objective(a, s, comb)
			if v := pick(m, su); v < best.Value {
				best.Value = v
				best.Centers = append(best.Centers[:0:0], comb...)
			}
			return
		}
		for v := start; v <= n-(k-at); v++ {
			comb[at] = v
			rec(v+1, at+1)
		}
	}
	rec(0, 0)
	return best, nil
}

// KCenterExact solves min over |S|=k of max_v dist(v, S) by enumeration.
func KCenterExact(a graph.Und, k int) (Solution, error) {
	return enumerateExact(a, k, func(m, _ int64) int64 { return m })
}

// KMedianExact solves min over |S|=k of sum_v dist(v, S) by enumeration.
func KMedianExact(a graph.Und, k int) (Solution, error) {
	return enumerateExact(a, k, func(_, s int64) int64 { return s })
}

// KCenterGreedy is the Gonzalez farthest-point heuristic: repeatedly add
// the vertex farthest from the current centre set. It is a 2-approximation
// on connected graphs. The first centre is vertex 0 for determinism.
func KCenterGreedy(a graph.Und, k int) (Solution, error) {
	n := len(a)
	if k < 1 || k > n {
		return Solution{}, fmt.Errorf("center: k=%d out of range [1,%d]", k, n)
	}
	s := graph.NewScratch(n)
	centers := []int{0}
	for len(centers) < k {
		d := graph.DistancesToSetScratch(a, s, centers)
		far, farDist := -1, int64(-1)
		pen := unreachablePenalty(n)
		for v := 0; v < n; v++ {
			dv := int64(d.Dist(v))
			if d.Dist(v) < 0 {
				dv = pen
			}
			if dv > farDist {
				farDist = dv
				far = v
			}
		}
		centers = append(centers, far)
	}
	m, _ := objective(a, s, centers)
	return Solution{Centers: centers, Value: m}, nil
}

// KMedianGreedy adds, in each of k rounds, the vertex whose inclusion
// most reduces the total distance (the standard marginal-gain greedy,
// a (1-1/e)-style heuristic for the supermodular-cost variant).
func KMedianGreedy(a graph.Und, k int) (Solution, error) {
	n := len(a)
	if k < 1 || k > n {
		return Solution{}, fmt.Errorf("center: k=%d out of range [1,%d]", k, n)
	}
	s := graph.NewScratch(n)
	var centers []int
	for len(centers) < k {
		bestV, bestVal := -1, int64(math.MaxInt64)
		for v := 0; v < n; v++ {
			if intsContain(centers, v) {
				continue
			}
			_, su := objective(a, s, append(centers, v))
			if su < bestVal {
				bestVal = su
				bestV = v
			}
		}
		centers = append(centers, bestV)
	}
	_, su := objective(a, s, centers)
	return Solution{Centers: centers, Value: su}, nil
}

func intsContain(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
