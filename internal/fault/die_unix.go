//go:build unix

package fault

import (
	"os"
	"syscall"
)

// die kills the process exactly as SIGKILL would: no deferred cleanup,
// no atexit, no flushing — the honest crash the store's durability
// contract is written against.
func die() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// SIGKILL delivery can race the return; never resume the caller.
	for {
		os.Exit(137)
	}
}
