package core

import (
	"fmt"

	"repro/internal/graph"
)

// Exact best response in the weighted SUM game of Section 6. The folding
// argument needs only single-swap (weak equilibrium) stability, but the
// full best response rounds out the weighted model: it is used by tests
// to confirm that folding cannot create *any* improving deviation on the
// graphs the proofs manipulate, a strictly stronger check than
// WeakDeviation.

// WeightedBestResponse enumerates all C(alive-1, outdeg(u)) strategies of
// u over alive vertices and returns a minimiser with ties broken toward
// the current strategy. maxCandidates guards the enumeration (0 = none).
//
// Candidates are evaluated on the distance-cache deviation engine
// (Deviator.EnsureCache): dist_{G-u} is materialised once and each
// strategy costs one O(n) weighted min-merge over the cached rows —
// folded (weight-0) vertices contribute nothing — instead of a graph
// rebuild plus BFS per candidate. When the cache exceeds
// DefaultCacheBudget the historical rebuild path runs instead; both
// paths are bit-identical (weighted_br_test.go pins the equivalence).
func (wg *WeightedGraph) WeightedBestResponse(u int, maxCandidates int64) (BestResponse, error) {
	return wg.WeightedBestResponsePooled(u, maxCandidates, nil)
}

// WeightedBestResponsePooled is WeightedBestResponse evaluating on a
// warm CachePool entry instead of a throwaway Deviator: repeated calls
// (the WeightedNashDeviation sweep, analysis audits over a run) reuse
// the pooled G-u rows across players and rounds — one stamp check or
// repair instead of a full matrix fill per call. pool must be an
// unweighted (arc-wise) SUM pool over wg.D's vertex count; nil pool, an
// over-budget player or an arc-weighted pool fall back to the one-shot
// Deviator. All paths are bit-identical.
func (wg *WeightedGraph) WeightedBestResponsePooled(u int, maxCandidates int64, pool *CachePool) (BestResponse, error) {
	if !wg.Alive(u) {
		return BestResponse{}, fmt.Errorf("core: vertex %d is folded away", u)
	}
	b := wg.D.OutDegree(u)
	var targets []int
	for v := 0; v < wg.D.N(); v++ {
		if v != u && wg.Alive(v) {
			targets = append(targets, v)
		}
	}
	space := StrategySpaceSize(len(targets)+1, b)
	if maxCandidates > 0 && space > maxCandidates {
		return BestResponse{}, fmt.Errorf("core: weighted strategy space %d exceeds %d", space, maxCandidates)
	}
	cur := append([]int(nil), wg.D.Out(u)...)
	var dv *Deviator
	if pool != nil && pool.wts == nil {
		// Section-6 weighting is per-vertex over unweighted distances, so
		// only an unweighted pool's rows are the rows this scan needs.
		dv = pool.Acquire(wg.D, u)
	} else {
		dv = NewDeviator(GameOf(wg.D, SUM), wg.D, u)
	}
	defer dv.Release()
	cached := dv.EnsureCache(DefaultCacheBudget)

	res := BestResponse{Strategy: cur}
	if cached {
		res.Current = dv.weightedEval(cur, wg.W)
	} else {
		res.Current = wg.Cost(u)
	}
	res.Cost = res.Current

	// With the kernel on, the enumeration keeps a stack of partial
	// min-vectors over the combination prefix (exactly like the exact
	// responder), so a leaf costs one fused O(n) weighted pass instead of
	// re-merging all b rows; BBNCG_SUMKERNEL=0 restores the historical
	// per-candidate weightedEval. Both paths are bit-identical.
	n := wg.D.N()
	kernel := cached && dv.sumOn
	var vecs [][]int32
	var w0 []int64
	if kernel {
		w0 = append([]int64(nil), wg.W...)
		w0[u] = 0 // the source never pays for itself; vec[u] is InfDist
		vecs = make([][]int32, b)
		if b > 0 {
			vecs[0] = dv.inMin
			for k := 1; k < b; k++ {
				vecs[k] = getInt32(n)
				defer putInt32(vecs[k])
			}
		}
	}
	cinf := int64(n) * int64(n)

	comb := make([]int, b)
	trial := make([]int, b)
	var rec func(start, at int)
	rec = func(start, at int) {
		if at == b {
			for i, idx := range comb {
				trial[i] = targets[idx]
			}
			var c int64
			switch {
			case kernel:
				if b == 0 {
					c = graph.WeightedSumMerge(dv.inMin, nil, w0, cinf)
				} else {
					last := trial[b-1]
					c = graph.WeightedSumMerge(vecs[b-1], dv.rows[last*n:(last+1)*n], w0, cinf)
				}
			case cached:
				c = dv.weightedEval(trial, wg.W)
			default:
				wg.D.SetOut(u, trial)
				c = wg.Cost(u)
			}
			res.Explored++
			if c < res.Cost {
				res.Cost = c
				res.Strategy = append(res.Strategy[:0:0], trial...)
			}
			return
		}
		for i := start; i <= len(targets)-(b-at); i++ {
			comb[at] = i
			if kernel && at < b-1 {
				copy(vecs[at+1], vecs[at])
				v := targets[i]
				graph.MinInto(vecs[at+1], dv.rows[v*n:(v+1)*n])
			}
			rec(i+1, at+1)
		}
	}
	rec(0, 0)
	if !cached {
		wg.D.SetOut(u, cur) // restore
	}
	return res, nil
}

// weightedEval is the weighted-SUM analogue of evalCached: the cost u
// would incur playing strategy s, summed over positive-weight vertices
// with unreachable ones costed at C_inf = n^2 (matching
// WeightedGraph.Cost exactly). Shortest paths from u never revisit u,
// so every distance is 1 + the min over the anchors s ∪ in(u) of the
// cached G-u rows.
func (dv *Deviator) weightedEval(strategy []int, w []int64) int64 {
	n := dv.game.N()
	cinf := int64(n) * int64(n)
	rows, inMin := dv.rows, dv.inMin
	var c int64
	for x := 0; x < n; x++ {
		if x == dv.u || w[x] == 0 {
			continue
		}
		m := inMin[x]
		for _, v := range strategy {
			if r := rows[v*n+x]; r < m {
				m = r
			}
		}
		if m < graph.InfDist {
			c += w[x] * int64(m+1)
		} else {
			c += w[x] * cinf
		}
	}
	return c
}

// WeightedNashDeviation searches all alive vertices for an improving
// full-strategy deviation, returning nil if the weighted graph is a Nash
// equilibrium of the weighted SUM game restricted to alive vertices.
func (wg *WeightedGraph) WeightedNashDeviation(maxCandidates int64) (*Deviation, error) {
	return wg.WeightedNashDeviationPooled(maxCandidates, nil)
}

// WeightedNashDeviationPooled is WeightedNashDeviation over a warm
// CachePool (see WeightedBestResponsePooled): the per-player sweep is
// exactly where the throwaway-Deviator cost compounded, n cache fills
// per audit.
func (wg *WeightedGraph) WeightedNashDeviationPooled(maxCandidates int64, pool *CachePool) (*Deviation, error) {
	for u := 0; u < wg.D.N(); u++ {
		if !wg.Alive(u) || wg.D.OutDegree(u) == 0 {
			continue
		}
		br, err := wg.WeightedBestResponsePooled(u, maxCandidates, pool)
		if err != nil {
			return nil, err
		}
		if br.Improves() {
			return &Deviation{Vertex: u, NewStrategy: br.Strategy, OldCost: br.Current, NewCost: br.Cost}, nil
		}
	}
	return nil, nil
}

// UnweightedEquivalent checks that with unit weights and no folds, the
// weighted best response of u agrees in cost with the unweighted SUM
// ExactBestResponse — the consistency bridge between the Section 6 model
// and the main game. It returns both costs.
func (wg *WeightedGraph) UnweightedEquivalent(u int, d *graph.Digraph) (weighted, plain int64, err error) {
	br, err := wg.WeightedBestResponse(u, 0)
	if err != nil {
		return 0, 0, err
	}
	g := GameOf(d, SUM)
	pbr, err := g.ExactBestResponse(d, u, 0)
	if err != nil {
		return 0, 0, err
	}
	return br.Cost, pbr.Cost, nil
}
