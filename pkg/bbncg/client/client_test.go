package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
	"repro/pkg/bbncg"
	"repro/pkg/bbncg/api"
)

// testClient spins a full serve stack and a client over it.
func testClient(t *testing.T, cfg serve.Config) (*Client, *serve.Manager) {
	t.Helper()
	m, err := serve.Open(t.TempDir(), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	ts := httptest.NewServer(serve.NewServer(m, cfg))
	t.Cleanup(ts.Close)
	return New(ts.URL, WithHTTPClient(ts.Client()), WithAPIKey("test")), m
}

func TestClientRoundTrip(t *testing.T) {
	ctx := context.Background()
	c, _ := testClient(t, serve.Config{})

	vi, err := c.Versions(ctx)
	if err != nil || vi.API != api.Version {
		t.Fatalf("versions: %+v %v", vi, err)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v %v", h, err)
	}
	rd, err := c.Ready(ctx)
	if err != nil || !rd.Ready {
		t.Fatalf("ready: %+v %v", rd, err)
	}

	info, err := c.CreateSession(ctx, api.CreateRequest{ID: "rt", Graph: &bbncg.GeneratorSpec{Kind: "random", N: 12, B: 2, Seed: 5}})
	if err != nil || info.ID != "rt" || info.N != 12 {
		t.Fatalf("create: %+v %v", info, err)
	}

	eq, err := c.Equilibrium(ctx, "rt", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Stable {
		if _, err := c.Rewire(ctx, "rt", api.RewireRequest{Player: eq.Witness.Player, Strategy: eq.Witness.Strategy}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.Dynamics(ctx, "rt", 100)
	if err != nil || !rep.Converged {
		t.Fatalf("dynamics: %+v %v", rep, err)
	}
	br, err := c.BestResponse(ctx, "rt", 0, "", 0)
	if err != nil || br.Improves {
		t.Fatalf("settled best response improves: %+v %v", br, err)
	}
	wf, err := c.Welfare(ctx, "rt")
	if err != nil || wf.Social <= 0 || len(wf.Costs) != 12 {
		t.Fatalf("welfare: %+v %v", wf, err)
	}
	ss, err := c.ListSessions(ctx)
	if err != nil || len(ss) != 1 || ss[0].ID != "rt" {
		t.Fatalf("list: %+v %v", ss, err)
	}
	st, err := c.Stats(ctx)
	if err != nil || len(st.Sessions) != 1 {
		t.Fatalf("stats: %+v %v", st, err)
	}

	// Batch through the client.
	res, err := c.Batch(ctx, []api.BatchOp{
		{Session: "rt", Op: api.OpWelfare},
		{Session: "rt", Op: api.OpEquilibrium},
	})
	if err != nil || len(res.Results) != 2 {
		t.Fatalf("batch: %+v %v", res, err)
	}
	if res.Results[0].Welfare == nil || res.Results[0].Welfare.Social != wf.Social {
		t.Fatalf("batch welfare: %+v", res.Results[0])
	}

	if err := c.DeleteSession(ctx, "rt"); err != nil {
		t.Fatal(err)
	}

	// Typed errors: a missing session is *api.Error with code not_found.
	_, err = c.Welfare(ctx, "rt")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound || apiErr.Status != 404 {
		t.Fatalf("typed error: %v", err)
	}
}

// TestClientStreamMatchesPlain mirrors the server-side byte-identity
// gate through the client: the streamed rounds must marshal exactly as
// the plain response's trace.
func TestClientStreamMatchesPlain(t *testing.T) {
	ctx := context.Background()
	c, _ := testClient(t, serve.Config{})
	spec := &bbncg.GeneratorSpec{Kind: "random", N: 14, B: 2, Seed: 42}
	if _, err := c.CreateSession(ctx, api.CreateRequest{ID: "plain", Graph: spec}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, api.CreateRequest{ID: "stream", Graph: spec}); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Dynamics(ctx, "plain", 200)
	if err != nil || !rep.Converged {
		t.Fatalf("plain: %+v %v", rep, err)
	}
	var rounds []api.RoundTrace
	res, err := c.StreamDynamics(ctx, "stream", 200, 0, func(rt api.RoundTrace) error {
		rounds = append(rounds, rt)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Summary.Converged || res.Summary.Moves != rep.Moves || res.Rounds != len(rep.Trace) {
		t.Fatalf("stream summary %+v (%d rounds), plain %+v", res.Summary, res.Rounds, rep)
	}
	for i, rt := range rounds {
		got, _ := json.Marshal(rt)
		want, _ := json.Marshal(rep.Trace[i])
		if string(got) != string(want) {
			t.Fatalf("round %d: stream %s plain %s", i, got, want)
		}
	}
	if res.NextFrom != rounds[len(rounds)-1].Round+1 {
		t.Fatalf("NextFrom %d after round %d", res.NextFrom, rounds[len(rounds)-1].Round)
	}

	// Aborting from onRound surfaces the callback's error verbatim.
	sentinel := errors.New("stop here")
	if _, err := c.StreamDynamics(ctx, "stream", 5, 0, func(api.RoundTrace) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("onRound abort: %v", err)
	}
}
