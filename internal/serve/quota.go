package serve

import (
	"sync"
	"time"

	"repro/pkg/bbncg/api"
)

// QuotaConfig bounds one client's traffic (a client is its X-Api-Key,
// or its remote host when unkeyed). The zero value disables the
// corresponding limit.
type QuotaConfig struct {
	// RPS refills each client's token bucket; a request spends one
	// token. <= 0 disables rate limiting.
	RPS float64
	// Burst caps the bucket (instantaneous excursions above RPS).
	// <= 0 with RPS > 0 defaults to max(1, 2*RPS).
	Burst int
	// MaxInFlight caps one client's concurrent /v1 requests.
	// <= 0 disables the cap.
	MaxInFlight int
}

func (c QuotaConfig) enabled() bool { return c.RPS > 0 || c.MaxInFlight > 0 }

// clientState is one client's bucket and in-flight gauge.
type clientState struct {
	tokens   float64
	last     time.Time
	inflight int
}

// quota is the admission controller behind Server.ServeHTTP: a
// per-client token bucket plus a per-client concurrency gauge, both
// under one small mutex (admission is O(1); the handlers behind it do
// the real work).
type quota struct {
	cfg   QuotaConfig
	burst float64
	mu    sync.Mutex
	byKey map[string]*clientState
	now   func() time.Time // test hook
}

func newQuota(cfg QuotaConfig) *quota {
	q := &quota{cfg: cfg, byKey: make(map[string]*clientState), now: time.Now}
	q.burst = float64(cfg.Burst)
	if q.burst <= 0 {
		q.burst = 2 * cfg.RPS
		if q.burst < 1 {
			q.burst = 1
		}
	}
	return q
}

// admit charges one request to key. On success it returns a release
// func (drops the in-flight slot) and an empty code. On rejection the
// code names the exhausted limit (api.CodeRateLimited or
// api.CodeConcurrencyLimited) and retryAfter suggests the wait.
func (q *quota) admit(key string) (release func(), retryAfter time.Duration, code string) {
	if !q.cfg.enabled() {
		return func() {}, 0, ""
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	st, ok := q.byKey[key]
	if !ok {
		q.pruneLocked(now)
		st = &clientState{tokens: q.burst, last: now}
		q.byKey[key] = st
	}
	if q.cfg.RPS > 0 {
		st.tokens += now.Sub(st.last).Seconds() * q.cfg.RPS
		if st.tokens > q.burst {
			st.tokens = q.burst
		}
		st.last = now
		if st.tokens < 1 {
			wait := time.Duration((1 - st.tokens) / q.cfg.RPS * float64(time.Second))
			return nil, wait, api.CodeRateLimited
		}
	}
	if q.cfg.MaxInFlight > 0 && st.inflight >= q.cfg.MaxInFlight {
		return nil, time.Second, api.CodeConcurrencyLimited
	}
	if q.cfg.RPS > 0 {
		st.tokens--
	}
	st.inflight++
	return func() {
		q.mu.Lock()
		st.inflight--
		q.mu.Unlock()
	}, 0, ""
}

// pruneLocked drops idle clients (full bucket, nothing in flight) so
// the map tracks active traffic, not every address ever seen. Called
// on new-client admission — the only time the map grows.
func (q *quota) pruneLocked(now time.Time) {
	if len(q.byKey) < 1024 {
		return
	}
	for k, st := range q.byKey {
		if st.inflight > 0 {
			continue
		}
		idle := now.Sub(st.last)
		if q.cfg.RPS <= 0 || idle.Seconds()*q.cfg.RPS >= q.burst {
			delete(q.byKey, k)
		}
	}
}
