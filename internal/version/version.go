// Package version derives the build identity reported by `bbncg
// version`, the -version flag and the serve /healthz endpoint from the
// information the go toolchain already embeds — no ldflags or
// generated files to keep in sync.
package version

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// String renders the one-line build identity: module path and version,
// the VCS revision (short) with a +dirty marker when the working tree
// had local modifications, and the go toolchain version.
func String() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "bbncg (no build info)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "bbncg %s", bi.Main.Path)
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		fmt.Fprintf(&b, "@%s", v)
	}
	if rev, dirty := vcsInfo(bi); rev != "" {
		fmt.Fprintf(&b, " %s", rev)
		if dirty {
			b.WriteString("+dirty")
		}
	}
	fmt.Fprintf(&b, " %s", bi.GoVersion)
	return b.String()
}

// vcsInfo extracts the short revision and dirty bit from the build
// settings (present when the binary was built inside a VCS checkout).
func vcsInfo(bi *debug.BuildInfo) (rev string, dirty bool) {
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, dirty
}
