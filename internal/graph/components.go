package graph

// Components labels the connected components of a. It returns a label
// vector (labels are 0..count-1, assigned in order of lowest-numbered
// member) and the number of components.
func Components(a Und) (label []int, count int) {
	n := len(a)
	label = make([]int, n)
	for i := range label {
		label[i] = -1
	}
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = count
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range a[u] {
				if label[v] < 0 {
					label[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return label, count
}

// IsConnected reports whether a is connected (true for n <= 1).
func IsConnected(a Und) bool {
	if len(a) <= 1 {
		return true
	}
	_, c := Components(a)
	return c == 1
}

// ComponentsExcluding labels the components of the graph a with vertex u
// deleted. label[u] is -1 and count ignores u. This is the quantity needed
// to evaluate the component term of a deviating player's cost: whatever
// strategy S player u picks, the component count of the deviated graph is
//
//	count - distinct(labels of In(u) ∪ S) + 1.
func ComponentsExcluding(a Und, u int) (label []int, count int) {
	n := len(a)
	label = make([]int, n)
	for i := range label {
		label[i] = -1
	}
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if s == u || label[s] >= 0 {
			continue
		}
		label[s] = count
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			w := queue[head]
			for _, v := range a[w] {
				if v != u && label[v] < 0 {
					label[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return label, count
}

// CountComponentsTouched returns the number of distinct component labels
// among the vertices in the given groups, skipping entries equal to skip
// and ignoring repeats. seen must be a reusable buffer of length >= count
// with all entries false; it is cleaned before return.
func CountComponentsTouched(label []int, seen []bool, skip int, groups ...[]int) int {
	d := 0
	var touched []int
	for _, g := range groups {
		for _, v := range g {
			if v == skip {
				continue
			}
			l := label[v]
			if l < 0 || seen[l] {
				continue
			}
			seen[l] = true
			touched = append(touched, l)
			d++
		}
	}
	for _, l := range touched {
		seen[l] = false
	}
	return d
}
