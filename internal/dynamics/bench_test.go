package dynamics

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func BenchmarkRunUnitExact(b *testing.B) {
	g := core.UniformGame(32, 1, core.SUM)
	rng := rand.New(rand.NewSource(1))
	start := RandomProfile(g, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, start, Options{
			Responder: core.ExactResponder(0), DetectLoops: true, MaxRounds: 100,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunGreedyBudget3(b *testing.B) {
	g := core.UniformGame(48, 3, core.SUM)
	rng := rand.New(rand.NewSource(1))
	start := RandomProfile(g, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, start, Options{
			Responder: core.GreedyResponder, DetectLoops: true, MaxRounds: 50,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSimultaneous(b *testing.B) {
	g := core.UniformGame(16, 1, core.MAX)
	rng := rand.New(rand.NewSource(1))
	start := RandomProfile(g, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSimultaneous(g, start, Options{
			Responder: core.ExactResponder(0), MaxRounds: 100,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWelfareTrace(b *testing.B) {
	g := core.UniformGame(24, 1, core.SUM)
	rng := rand.New(rand.NewSource(1))
	start := RandomProfile(g, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := WelfareTrace(g, start, Options{
			Responder: core.ExactResponder(0), MaxRounds: 50,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
