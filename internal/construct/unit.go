package construct

import (
	"fmt"

	"repro/internal/graph"
)

// Canonical instances of (1,...,1)-BG for Section 4. Every equilibrium of
// the unit-budget game is a connected unicyclic graph: a unique directed
// cycle (of length at most 5 in the SUM version and at most 7 in the MAX
// version) with all other vertices hanging close to it. These generators
// produce the canonical members of that family for direct verification.

// UnitCycle returns the directed cycle on n >= 2 vertices, the minimal
// realization of (1,...,1)-BG. It is an equilibrium of both versions for
// small n (n <= 5 in SUM, n <= 7 in MAX; tests pin the exact thresholds).
func UnitCycle(n int) (*graph.Digraph, []int, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("construct: unit cycle needs n >= 2, got %d", n)
	}
	d := graph.CycleGraph(n)
	return d, uniformOnes(n), nil
}

// UnitSatellite returns a c-cycle whose remaining n-c vertices each own
// one arc to a cycle vertex, distributed round-robin. For c in the legal
// range this realises the structure Theorems 4.1/4.2 prove equilibria
// must have: every vertex on the cycle or adjacent to it.
func UnitSatellite(n, c int) (*graph.Digraph, []int, error) {
	if c < 2 || c > n {
		return nil, nil, fmt.Errorf("construct: satellite cycle length %d out of range [2,%d]", c, n)
	}
	d := graph.NewDigraph(n)
	for i := 0; i < c; i++ {
		d.AddArc(i, (i+1)%c)
	}
	for v := c; v < n; v++ {
		d.AddArc(v, (v-c)%c)
	}
	return d, uniformOnes(n), nil
}

// UnitBrace returns the 2-player instance: the only realization of
// (1,1)-BG is the brace {0,1}, which is trivially an equilibrium.
func UnitBrace() (*graph.Digraph, []int) {
	d := graph.NewDigraph(2)
	d.AddArc(0, 1)
	d.AddArc(1, 0)
	return d, uniformOnes(2)
}

func uniformOnes(n int) []int {
	b := make([]int, n)
	for i := range b {
		b[i] = 1
	}
	return b
}
