package bbc

import (
	"math/rand"
	"testing"
)

func BenchmarkDirectedBestResponse(b *testing.B) {
	g := UniformGame(16, 2)
	d := g.RandomRealization(rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BestResponse(d, i%16)
	}
}

func BenchmarkDirectedRun(b *testing.B) {
	g := UniformGame(8, 1)
	start := g.RandomRealization(rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(start, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirectedVerifyNash(b *testing.B) {
	g := UniformGame(10, 1)
	// Drive to a fixed point first.
	d := g.RandomRealization(rand.New(rand.NewSource(2)))
	res, err := g.Run(d, 300)
	if err != nil || !res.Converged {
		b.Skip("no converged instance for this seed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if u, _ := g.VerifyNash(res.Final); u >= 0 {
			b.Fatal("fixed point refuted")
		}
	}
}
