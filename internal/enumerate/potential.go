package enumerate

import (
	"fmt"

	"repro/internal/core"
)

// Ordinal potential extraction. A game has a generalized ordinal
// potential for best-response dynamics iff its improvement graph is
// acyclic; in that case any reverse-topological rank is such a
// potential: every strict best-response move strictly decreases it.
// Exhibiting the potential is a constructive convergence proof for the
// instance — stronger than observing that sampled runs happened to
// converge.

// Potential maps canonical profile hashes to ranks. Lower is "closer to
// equilibrium"; equilibria have rank 0.
type Potential struct {
	rank map[uint64]int
	// MaxRank is the largest rank assigned (the potential's range).
	MaxRank int
}

// Rank returns the potential value of p, or an error if p was not part
// of the enumerated game.
func (pt *Potential) Rank(p core.Profile) (int, error) {
	r, ok := pt.rank[p.Hash()]
	if !ok {
		return 0, fmt.Errorf("enumerate: profile not in potential domain")
	}
	return r, nil
}

// OrdinalPotential builds a generalized ordinal potential for g's
// best-response dynamics, or an error carrying the cycle witness when
// none exists (the improvement graph has a cycle). cap bounds the
// profile space as in BestResponseImprovementGraph.
//
// The construction assigns every profile the length of its longest
// outgoing improvement path: sinks (Nash equilibria) get 0, and each
// best-response move from p to q satisfies rank(q) <= rank(p) - 1.
func OrdinalPotential(g *core.Game, cap int64) (*Potential, error) {
	profiles, index, err := allProfiles(g, cap)
	if err != nil {
		return nil, err
	}
	// Rebuild arcs as in BestResponseImprovementGraph (shared helper
	// would force an awkward double traversal; the structure is small).
	n := g.N()
	adj := make([][]int32, len(profiles))
	for pi, p := range profiles {
		d := p.Realize()
		for u := 0; u < n; u++ {
			if g.Budgets[u] == 0 {
				continue
			}
			dv := core.NewDeviator(g, d, u)
			if core.StrategySpaceSize(n, g.Budgets[u]) >= int64(n) {
				// Amortise one cache fill over the full candidate scan,
				// as in BestResponseImprovementGraph.
				dv.EnsureCache(core.DefaultCacheBudget)
			}
			cur := dv.Eval(p[u])
			best := cur
			var bests [][]int
			forEachStrategy(n, u, g.Budgets[u], func(s []int) {
				c := dv.Eval(s)
				if c < best {
					best = c
					bests = bests[:0]
				}
				if c == best && c < cur {
					bests = append(bests, append([]int(nil), s...))
				}
			})
			dv.Release()
			for _, s := range bests {
				q := p.Clone()
				q[u] = s
				qi, ok := index[q.Hash()]
				if !ok {
					return nil, fmt.Errorf("enumerate: successor profile not indexed")
				}
				adj[pi] = append(adj[pi], int32(qi))
			}
		}
	}
	// Longest outgoing path via reverse topological order (Kahn on the
	// reversed graph = process vertices whose successors are all done).
	outdeg := make([]int32, len(profiles))
	radj := make([][]int32, len(profiles))
	for pi, outs := range adj {
		outdeg[pi] = int32(len(outs))
		for _, q := range outs {
			radj[q] = append(radj[q], int32(pi))
		}
	}
	order := make([]int32, 0, len(profiles))
	for i, d := range outdeg {
		if d == 0 {
			order = append(order, int32(i))
		}
	}
	rank := make([]int32, len(profiles))
	for head := 0; head < len(order); head++ {
		q := order[head]
		for _, p := range radj[q] {
			if rank[q]+1 > rank[p] {
				rank[p] = rank[q] + 1
			}
			outdeg[p]--
			if outdeg[p] == 0 {
				order = append(order, p)
			}
		}
	}
	if len(order) != len(profiles) {
		fip, err := BestResponseImprovementGraph(g, cap)
		if err != nil {
			return nil, err
		}
		return nil, &NoPotentialError{Cycle: fip.CycleWitness}
	}
	pt := &Potential{rank: make(map[uint64]int, len(profiles))}
	for pi, p := range profiles {
		r := int(rank[pi])
		pt.rank[p.Hash()] = r
		if r > pt.MaxRank {
			pt.MaxRank = r
		}
	}
	return pt, nil
}

// NoPotentialError reports that the game admits no generalized ordinal
// potential for best-response moves, with the improvement cycle as
// evidence.
type NoPotentialError struct {
	Cycle []core.Profile
}

func (e *NoPotentialError) Error() string {
	return fmt.Sprintf("enumerate: no ordinal potential (best-response cycle of length %d)", len(e.Cycle))
}
