package dynamics

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Simultaneous-move dynamics: in each round every player computes a
// response against the *current* profile and all updates apply at once.
// Unlike the sequential engine, simultaneous moves are the classic
// source of oscillation in network formation (two players chasing the
// same position can swap forever), which makes this variant a sharper
// probe of the Section 8 convergence question: sequential dynamics
// converged in every experiment, while simultaneous dynamics visibly
// loop on small instances.

// RunSimultaneous executes simultaneous response dynamics. Loop
// detection is always on (simultaneous runs that do not converge
// almost always cycle).
func RunSimultaneous(g *core.Game, start *graph.Digraph, opts Options) (Result, error) {
	if err := g.CheckRealization(start); err != nil {
		return Result{}, err
	}
	if opts.Responder == nil {
		return Result{}, fmt.Errorf("dynamics: Options.Responder is required")
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 1000
	}
	d := start.Clone()
	n := g.N()
	res := Result{}
	pool, ownedPool := opts.newPool(g)
	if ownedPool {
		defer pool.Close()
	} else {
		// An external pool may have been repaired toward some other
		// graph since its last use here; force the first acquisition of
		// every entry to re-diff against this run's start (a no-op diff
		// or stamp skip when nothing actually changed), and drop the
		// response memo, which a different responder may have recorded.
		pool.Invalidate()
		pool.ResetResponseMemo()
	}
	startJournal(d, pool)
	respond := respondWith(g, pool, opts)
	seen := make(map[uint64][]seenProfile)
	recordProfile(seen, core.ProfileOf(d), 0)
	next := make([][]int, n)
	var players []int
	if opts.Parallel {
		players = make([]int, n)
		for u := range players {
			players[u] = u
		}
	}
	for round := 1; round <= opts.MaxRounds; round++ {
		changed := false
		if opts.Parallel {
			// Every response is computed against the same fixed profile,
			// so the simultaneous round is embarrassingly parallel.
			var brs []core.BestResponse
			if pool != nil {
				brs = pooledResponsesAgainst(g, d, players, pool, opts.Cached)
			} else {
				brs = responsesAgainst(g, d, players, opts.Responder)
			}
			for u, br := range brs {
				next[u] = nil
				if g.Budgets[u] != 0 && br.Improves() {
					next[u] = br.Strategy
				}
			}
		} else {
			for u := 0; u < n; u++ {
				next[u] = nil
				if g.Budgets[u] == 0 {
					continue
				}
				br := respond(d, u, -1)
				if br.Improves() {
					next[u] = br.Strategy
				}
			}
		}
		for u, s := range next {
			if s != nil {
				d.SetOut(u, s)
				pool.Invalidate()
				res.Moves++
				changed = true
			}
		}
		res.Rounds = round
		if opts.RecordTrajectory {
			res.Trajectory = append(res.Trajectory, opts.socialCost(g, d))
		}
		if !changed {
			res.Converged = true
			break
		}
		p := core.ProfileOf(d)
		if prev, ok := lookupProfile(seen, p); ok {
			res.Loop = true
			res.LoopLength = round - prev
			break
		}
		recordProfile(seen, p, round)
	}
	res.Final = d
	return res, nil
}

// WelfareTrace records the total player cost (the utilitarian welfare
// measure, distinct from the paper's diameter social cost) after each
// round of sequential dynamics. Its non-monotonicity is evidence that
// the game admits no obvious exact potential — context for why Section 8
// leaves convergence open.
func WelfareTrace(g *core.Game, start *graph.Digraph, opts Options) ([]int64, Result, error) {
	if err := g.CheckRealization(start); err != nil {
		return nil, Result{}, err
	}
	if opts.Responder == nil {
		return nil, Result{}, fmt.Errorf("dynamics: Options.Responder is required")
	}
	if opts.Scheduler == nil {
		opts.Scheduler = RoundRobin{}
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 200
	}
	d := start.Clone()
	n := g.N()
	order := make([]int, n)
	pool, ownedPool := opts.newPool(g)
	if ownedPool {
		defer pool.Close()
	} else {
		// An external pool may have been repaired toward some other
		// graph since its last use here; force the first acquisition of
		// every entry to re-diff against this run's start (a no-op diff
		// or stamp skip when nothing actually changed), and drop the
		// response memo, which a different responder may have recorded.
		pool.Invalidate()
		pool.ResetResponseMemo()
	}
	startJournal(d, pool)
	respond := respondWith(g, pool, opts)
	welfare := func() int64 {
		var total int64
		for _, c := range g.AllCosts(d) {
			total += c
		}
		return total
	}
	trace := []int64{welfare()}
	res := Result{}
	for round := 1; round <= opts.MaxRounds; round++ {
		opts.Scheduler.Order(order, round)
		changed := false
		for _, u := range order {
			if g.Budgets[u] == 0 {
				continue
			}
			br := respond(d, u, -1)
			if br.Improves() {
				d.SetOut(u, br.Strategy)
				pool.Invalidate()
				res.Moves++
				changed = true
			}
		}
		res.Rounds = round
		trace = append(trace, welfare())
		if !changed {
			res.Converged = true
			break
		}
	}
	res.Final = d
	return trace, res, nil
}
