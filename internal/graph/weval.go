package graph

import "math"

// Per-candidate weighted deviation evaluation — the reference fallback
// the engine uses when no weighted cache fits (FitsWeightedCache failed
// or the budget refused the matrix). One binary-heap Dijkstra from the
// source over the fixed adjacency plus virtual strategy arcs, mirroring
// Scratch.DeviationBFS. Distances are carried in int64 because this
// path serves exactly the instances whose weighted distances may not
// fit the int32 cache encoding.

// WAggregates are the weighted analogue of BFSResult: eccentricity,
// distance sum and reach of one weighted SSSP.
type WAggregates struct {
	Ecc     int64
	Sum     int64
	Reached int
}

// wItem is one heap entry of the int64-distance Dijkstra.
type wItem struct {
	d int64
	v int32
}

// WEvalScratch holds the reusable buffers of weighted per-candidate
// evaluation. Not safe for concurrent use; the zero value is ready.
type WEvalScratch struct {
	dist []int64
	heap []wItem
}

// DeviationDijkstra runs one weighted SSSP from u over the adjacency a
// augmented with virtual arcs u->v at weight wts.Of(u, v) for each
// strategy target (strategy may be nil: plain SSSP over a, which is how
// realized-graph weighted costs are computed). For deviation evaluation
// a must be the fixed part of the deviated graph — UnderlyingWithout(u),
// which keeps the arcs into u — so the traversal covers in(u) edges at
// their pair weights and never depends on u's dropped strategy.
func (ws *WEvalScratch) DeviationDijkstra(a Und, wts *Weights, u int, strategy []int) WAggregates {
	n := len(a)
	if cap(ws.dist) < n {
		ws.dist = make([]int64, n)
	}
	dist := ws.dist[:n]
	for i := range dist {
		dist[i] = math.MaxInt64
	}
	h := ws.heap[:0]
	dist[u] = 0
	h = whPush(h, wItem{d: 0, v: int32(u)})
	for _, v := range strategy {
		if v == u {
			continue
		}
		if w := int64(wts.Of(u, v)); w < dist[v] {
			dist[v] = w
			h = whPush(h, wItem{d: w, v: int32(v)})
		}
	}
	for len(h) > 0 {
		var it wItem
		it, h = whPop(h)
		if dist[it.v] != it.d {
			continue // stale entry
		}
		for _, nb := range a[it.v] {
			nd := it.d + int64(wts.Of(int(it.v), nb))
			if nd < dist[nb] {
				dist[nb] = nd
				h = whPush(h, wItem{d: nd, v: int32(nb)})
			}
		}
	}
	ws.heap = h[:0]
	var agg WAggregates
	for _, d := range dist {
		if d == math.MaxInt64 {
			continue
		}
		agg.Reached++
		agg.Sum += d
		if d > agg.Ecc {
			agg.Ecc = d
		}
	}
	return agg
}

// whPush inserts it into the binary min-heap h (ordered by distance)
// and returns the heap.
func whPush(h []wItem, it wItem) []wItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].d <= h[i].d {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

// whPop removes and returns the minimum of the binary min-heap h.
func whPop(h []wItem) (wItem, []wItem) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && h[l].d < h[s].d {
			s = l
		}
		if r < len(h) && h[r].d < h[s].d {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return top, h
}
