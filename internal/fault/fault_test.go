package fault

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

var (
	testSiteA     = Register("test.site.a", "fault package test site")
	testSiteWrite = Register("test.site.write", "fault package write test site")
)

func arm(t *testing.T, s *Set) {
	t.Helper()
	Install(s)
	t.Cleanup(Disarm)
}

func TestDisarmedIsFree(t *testing.T) {
	Disarm()
	if Enabled() {
		t.Fatal("Enabled with nothing installed")
	}
	if err := Hit(testSiteA); err != nil {
		t.Fatalf("disarmed Hit = %v", err)
	}
	var buf bytes.Buffer
	n, err := WriteThrough(testSiteWrite, &buf, []byte("hello"))
	if n != 5 || err != nil || buf.String() != "hello" {
		t.Fatalf("disarmed WriteThrough = %d, %v, %q", n, err, buf.String())
	}
}

func TestErrorAtScheduledHit(t *testing.T) {
	arm(t, NewSet(Rule{Site: testSiteA, Mode: ModeError, Sched: At(2, 4)}))
	for hit := 1; hit <= 5; hit++ {
		err := Hit(testSiteA)
		want := hit == 2 || hit == 4
		if (err != nil) != want {
			t.Fatalf("hit %d: err = %v, want firing %v", hit, err, want)
		}
		if err != nil && !Injected(err) {
			t.Fatalf("hit %d: error %v is not classified Injected", hit, err)
		}
	}
}

func TestFromAndAlwaysSchedules(t *testing.T) {
	arm(t, NewSet(Rule{Site: testSiteA, Mode: ModeError, Sched: From(3)}))
	fired := 0
	for hit := 1; hit <= 5; hit++ {
		if Hit(testSiteA) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("From(3) fired %d of 5 hits, want 3", fired)
	}
	arm(t, NewSet(Rule{Site: testSiteA, Mode: ModeError, Sched: Always()}))
	if Hit(testSiteA) == nil {
		t.Fatal("Always schedule did not fire")
	}
}

func TestProbScheduleDeterministic(t *testing.T) {
	sc := Prob(0.5, 42)
	var first []bool
	for hit := uint64(1); hit <= 64; hit++ {
		first = append(first, sc.fires("x", hit))
	}
	fired := 0
	for hit := uint64(1); hit <= 64; hit++ {
		if sc.fires("x", hit) != first[hit-1] {
			t.Fatalf("prob schedule not deterministic at hit %d", hit)
		}
		if first[hit-1] {
			fired++
		}
	}
	if fired == 0 || fired == 64 {
		t.Fatalf("p=0.5 fired %d of 64 hits", fired)
	}
	// A different seed must give a different firing set.
	other := Prob(0.5, 43)
	same := true
	for hit := uint64(1); hit <= 64; hit++ {
		if other.fires("x", hit) != first[hit-1] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 share a firing set")
	}
}

func TestPanicMode(t *testing.T) {
	arm(t, NewSet(Rule{Site: testSiteA, Mode: ModePanic, Sched: At(1)}))
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic mode did not panic")
		}
		if !strings.Contains(v.(string), testSiteA) {
			t.Fatalf("panic value %q does not name the site", v)
		}
	}()
	Hit(testSiteA)
}

func TestDelayMode(t *testing.T) {
	arm(t, NewSet(Rule{Site: testSiteA, Mode: ModeDelay, Delay: 20 * time.Millisecond, Sched: At(1)}))
	start := time.Now()
	if err := Hit(testSiteA); err != nil {
		t.Fatalf("delay returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay slept only %v", d)
	}
}

func TestPartialWrite(t *testing.T) {
	arm(t, NewSet(Rule{Site: testSiteWrite, Mode: ModePartial, Bytes: 3, Sched: At(2)}))
	var buf bytes.Buffer
	if _, err := WriteThrough(testSiteWrite, &buf, []byte("first\n")); err != nil {
		t.Fatalf("hit 1: %v", err)
	}
	n, err := WriteThrough(testSiteWrite, &buf, []byte("second\n"))
	if err == nil || !Injected(err) {
		t.Fatalf("hit 2: err = %v, want injected", err)
	}
	if n != 3 || buf.String() != "first\nsec" {
		t.Fatalf("hit 2 wrote %d bytes, buffer %q", n, buf.String())
	}
	// Error mode writes nothing at all.
	arm(t, NewSet(Rule{Site: testSiteWrite, Mode: ModeError, Sched: Always()}))
	buf.Reset()
	if n, err := WriteThrough(testSiteWrite, &buf, []byte("x")); err == nil || n != 0 || buf.Len() != 0 {
		t.Fatalf("error mode wrote %d bytes, err %v", n, err)
	}
}

func TestParseGrammar(t *testing.T) {
	set, err := Parse("test.site.a=error@3; test.site.write=torn:12@2,5", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.rules[testSiteA]) != 1 || len(set.rules[testSiteWrite]) != 1 {
		t.Fatalf("rules = %v", set.rules)
	}
	w := set.rules[testSiteWrite][0]
	if w.Mode != ModeTorn || w.Bytes != 12 {
		t.Fatalf("torn rule = %+v", w.Rule)
	}
	for _, good := range []string{
		"test.site.a=panic@*",
		"test.site.a=delay:50ms@1+",
		"test.site.a=error@p0.25",
		"test.site.a=crash@7",
		"test.site.a=partial:0@1",
	} {
		if _, err := Parse(good, 1); err != nil {
			t.Errorf("Parse(%q) = %v", good, err)
		}
	}
	for _, bad := range []string{
		"",
		"nosuch.site=error@1",
		"test.site.a=explode@1",
		"test.site.a=error",
		"test.site.a=error@0",
		"test.site.a=error@p1.5",
		"test.site.a=delay@1",
		"test.site.a=torn:x@1",
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParsedErrorSchedule(t *testing.T) {
	set, err := Parse("test.site.a=error@2", 0)
	if err != nil {
		t.Fatal(err)
	}
	arm(t, set)
	if err := Hit(testSiteA); err != nil {
		t.Fatalf("hit 1 fired: %v", err)
	}
	if err := Hit(testSiteA); err == nil {
		t.Fatal("hit 2 did not fire")
	}
	if err := Hit(testSiteA); err != nil {
		t.Fatalf("hit 3 fired: %v", err)
	}
}

func TestInjectedClassification(t *testing.T) {
	if !Injected(injectedErr("x")) {
		t.Fatal("injectedErr not classified")
	}
	if Injected(errors.New("plain")) {
		t.Fatal("plain error classified injected")
	}
}
