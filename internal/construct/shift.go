package construct

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Shift graph of Lemma 5.2 / Theorem 5.3: vertices are the strings
// {1,...,t}^k, and (x_1,...,x_k) ~ (y_1,...,y_k) are adjacent when
// x_i = y_{i+1} for all 1 <= i <= k-1 (y is x shifted right with a fresh
// leading symbol) or symmetrically y_i = x_{i+1}. Under the hypothesis
// (2t)^k - 1 < t^k (2t - 1), *every* orientation of this graph with all
// outdegrees positive is a Nash equilibrium of the MAX version with
// local diameter k at every vertex; at t = 2^k this yields equilibria
// with diameter sqrt(log n) despite every player having positive budget —
// the paper's Braess-flavoured lower bound.

// ShiftGraph holds the undirected shift graph together with an
// orientation giving every vertex outdegree at least 1.
type ShiftGraph struct {
	T, K int
	D    *graph.Digraph
}

// NewShiftGraph constructs the shift graph for alphabet size t and word
// length k. It refuses parameter choices whose vertex count t^k exceeds
// maxVertices (guarding accidental t=2^k blowups; pass 0 for a default
// of 1<<20).
func NewShiftGraph(t, k, maxVertices int) (*ShiftGraph, error) {
	if t < 2 || k < 1 {
		return nil, fmt.Errorf("construct: shift graph needs t >= 2, k >= 1 (got t=%d k=%d)", t, k)
	}
	if maxVertices <= 0 {
		maxVertices = 1 << 20
	}
	n := 1
	for i := 0; i < k; i++ {
		if n > maxVertices/t {
			return nil, fmt.Errorf("construct: t^k = %d^%d exceeds %d vertices", t, k, maxVertices)
		}
		n *= t
	}
	// Vertex id <-> word: id = sum x_i * t^(k-i) with symbols 0..t-1
	// (the paper's 1..t shifted down). Left-shift neighbour of x with new
	// trailing symbol c: (x_2,...,x_k,c) = (id mod t^(k-1)) * t + c.
	pow := n / t // t^(k-1)
	adj := make(graph.Und, n)
	for id := 0; id < n; id++ {
		base := (id % pow) * t
		for c := 0; c < t; c++ {
			v := base + c
			if v != id {
				adj[id] = append(adj[id], v)
				adj[v] = append(adj[v], id)
			}
		}
	}
	for v := range adj {
		adj[v] = dedupSorted(adj[v])
	}
	d, err := orientWithPositiveOutdegrees(adj)
	if err != nil {
		return nil, err
	}
	return &ShiftGraph{T: t, K: k, D: d}, nil
}

// orientWithPositiveOutdegrees orients a connected undirected graph that
// contains a cycle so that every vertex has outdegree >= 1 and no edge is
// doubled into a brace (the orientation realises U(G) = U exactly, as
// Lemma 5.2 requires): a cycle is oriented cyclically, every other vertex
// points along its BFS path toward the cycle, and the remaining edges go
// from their smaller endpoint.
func orientWithPositiveOutdegrees(adj graph.Und) (*graph.Digraph, error) {
	n := len(adj)
	d := graph.NewDigraph(n)
	cycle := findCycleDFS(adj)
	if cycle == nil {
		return nil, fmt.Errorf("construct: orientation requires a graph containing a cycle")
	}
	for i, u := range cycle {
		d.AddArc(u, cycle[(i+1)%len(cycle)])
	}
	onCycle := make([]bool, n)
	for _, u := range cycle {
		onCycle[u] = true
	}
	// Multi-source BFS from the cycle; every off-cycle vertex points to
	// its BFS parent (one step closer to the cycle).
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if onCycle[v] {
			parent[v] = v
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range adj[u] {
			if parent[w] < 0 {
				parent[w] = u
				d.AddArc(w, u)
				queue = append(queue, w)
			}
		}
	}
	if len(queue) != n {
		return nil, fmt.Errorf("construct: orientation requires a connected graph (reached %d of %d)", len(queue), n)
	}
	// Remaining edges: orient from the smaller endpoint.
	for u := 0; u < n; u++ {
		for _, v := range adj[u] {
			if v > u && !d.HasArc(u, v) && !d.HasArc(v, u) {
				d.AddArc(u, v)
			}
		}
	}
	return d, nil
}

// findCycleDFS returns the vertex sequence of some simple cycle of length
// >= 3 in the undirected graph, or nil if the graph is a forest. In an
// undirected DFS every non-tree edge is a back edge, so the first edge to
// a visited non-parent vertex closes a cycle through the parent chain.
func findCycleDFS(adj graph.Und) []int {
	n := len(adj)
	parent := make([]int, n)
	state := make([]int8, n) // 0 unvisited, 1 visited
	for i := range parent {
		parent[i] = -1
	}
	for root := 0; root < n; root++ {
		if state[root] != 0 {
			continue
		}
		stack := []int{root}
		state[root] = 1
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[u] {
				if w == parent[u] {
					continue
				}
				if state[w] == 0 {
					state[w] = 1
					parent[w] = u
					stack = append(stack, w)
					continue
				}
				// Back edge u-w: climb from u until w. Because this is a
				// stack-based DFS the visited vertex w may not be an
				// ancestor of u; climb both endpoints to their lowest
				// common ancestor instead, which always yields a cycle.
				return cycleThroughLCA(parent, u, w)
			}
		}
	}
	return nil
}

// cycleThroughLCA builds the cycle formed by the tree paths u->lca and
// w->lca plus the edge {u,w}.
func cycleThroughLCA(parent []int, u, w int) []int {
	depth := func(v int) int {
		d := 0
		for parent[v] >= 0 {
			v = parent[v]
			d++
		}
		return d
	}
	du, dw := depth(u), depth(w)
	var upU, upW []int
	for du > dw {
		upU = append(upU, u)
		u = parent[u]
		du--
	}
	for dw > du {
		upW = append(upW, w)
		w = parent[w]
		dw--
	}
	for u != w {
		upU = append(upU, u)
		upW = append(upW, w)
		u = parent[u]
		w = parent[w]
	}
	cycle := append(upU, u) // u == w == lca
	for i := len(upW) - 1; i >= 0; i-- {
		cycle = append(cycle, upW[i])
	}
	return cycle
}

// dedupSorted sorts and deduplicates s in place.
func dedupSorted(s []int) []int {
	sort.Ints(s)
	w := 0
	for i, v := range s {
		if i > 0 && s[i-1] == v {
			continue
		}
		s[w] = v
		w++
	}
	return s[:w]
}

// Budgets returns the budget vector realized by the orientation
// (the outdegrees); all entries are positive by construction.
func (sg *ShiftGraph) Budgets() []int {
	budgets := make([]int, sg.D.N())
	for v := range budgets {
		budgets[v] = sg.D.OutDegree(v)
	}
	return budgets
}

// HypothesisHolds reports whether (2t)^k - 1 < t^k (2t - 1), the counting
// hypothesis of Lemma 5.2 (equivalently 2^k < 2t - 1). When it holds,
// every orientation with positive outdegrees is a MAX Nash equilibrium.
func (sg *ShiftGraph) HypothesisHolds() bool {
	// (2t)^k - 1 < t^k (2t-1)  <=>  2^k * t^k <= t^k (2t-1)  over the
	// integers <=> 2^k <= 2t - 2, i.e. 2^k < 2t - 1 for integer t.
	return pow64(2, sg.K) < 2*int64(sg.T)-1
}

// Certificate is the outcome of CertifyEquilibrium: the computationally
// checked premises from which Lemma 5.2 concludes that the orientation is
// a MAX Nash equilibrium.
type Certificate struct {
	N            int   // t^k vertices
	EccMin       int32 // smallest local diameter; must equal K
	EccMax       int32 // largest local diameter (= diameter); must equal K
	MinDegree    int   // must be >= 2
	MaxDegree    int   // must be <= 2t
	MinOutdegree int   // must be >= 1 (all budgets positive)
	Hypothesis   bool  // (2t)^k - 1 < t^k (2t-1)
	OK           bool
}

// CertifyEquilibrium verifies the structural premises of Lemma 5.2 on the
// built graph: local diameter exactly k at every vertex, minimum degree
// >= 2, maximum degree <= 2t, positive outdegrees, and the counting
// hypothesis. By the lemma's argument these imply the orientation is a
// Nash equilibrium of the MAX version; tests cross-check against exact
// verification on small instances.
func (sg *ShiftGraph) CertifyEquilibrium() Certificate {
	a := sg.D.Underlying()
	cert := Certificate{
		N:          sg.D.N(),
		MinDegree:  a.MinDegree(),
		MaxDegree:  a.MaxDegree(),
		Hypothesis: sg.HypothesisHolds(),
	}
	eccs, connected := graph.Eccentricities(a)
	if connected && len(eccs) > 0 {
		cert.EccMin, cert.EccMax = eccs[0], eccs[0]
		for _, e := range eccs {
			if e < cert.EccMin {
				cert.EccMin = e
			}
			if e > cert.EccMax {
				cert.EccMax = e
			}
		}
	}
	cert.MinOutdegree = sg.D.N()
	for v := 0; v < sg.D.N(); v++ {
		if od := sg.D.OutDegree(v); od < cert.MinOutdegree {
			cert.MinOutdegree = od
		}
	}
	cert.OK = connected &&
		cert.EccMin == int32(sg.K) &&
		cert.EccMax == int32(sg.K) &&
		cert.MinDegree >= 2 &&
		cert.MaxDegree <= 2*sg.T &&
		cert.MinOutdegree >= 1 &&
		cert.Hypothesis
	return cert
}

func pow64(b, e int) int64 {
	r := int64(1)
	for i := 0; i < e; i++ {
		r *= int64(b)
	}
	return r
}
