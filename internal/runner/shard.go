package runner

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Shard is a deterministic i-of-k partition of a job's point list, the
// unit of scale-out across machines: every worker runs the same command
// with a distinct shard into its own store directory, and the shards are
// fetched into one directory and merged afterwards.
//
// Partitioning contract: point p belongs to shard i of k iff
// FNV-1a64(p.ID()) mod k == i. Because the ID is a pure function of
// (experiment, key, seed), the partition depends only on the point list
// — never on evaluation order, worker count, or which machine runs it —
// and for any k the shards are pairwise disjoint and jointly complete by
// construction.
type Shard struct {
	// Index is the zero-based shard number, Count the total number of
	// shards. The zero value (Count 0) and 1-sharding select every point.
	Index, Count int
}

// ParseShard parses the CLI form "i/k" (e.g. "0/3"). An empty string is
// the no-sharding zero value. A misparsed shard would silently evaluate
// the wrong partition, so anything but exactly two integers is an error.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	i, k, ok := strings.Cut(s, "/")
	var sh Shard
	var err error
	if sh.Index, err = strconv.Atoi(i); !ok || err != nil {
		return Shard{}, fmt.Errorf("runner: shard %q is not of the form i/k", s)
	}
	if sh.Count, err = strconv.Atoi(k); err != nil {
		return Shard{}, fmt.Errorf("runner: shard %q is not of the form i/k", s)
	}
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return Shard{}, fmt.Errorf("runner: shard %d/%d out of range (need 0 <= i < k)", sh.Index, sh.Count)
	}
	return sh, nil
}

// Active reports whether the shard actually filters anything (k > 1).
func (sh Shard) Active() bool { return sh.Count > 1 }

// Contains reports whether the point with the given ID belongs to this
// shard. An inactive shard contains every point.
func (sh Shard) Contains(id string) bool {
	return !sh.Active() || sh.IndexOf(id) == sh.Index
}

// IndexOf returns the partition number the point with the given ID
// falls into under this shard's k-way split (always 0 when inactive).
// It is what Report.ShardCounts tallies: the per-shard point counts an
// operator uses to check a planned k-way run is balanced.
func (sh Shard) IndexOf(id string) int {
	if !sh.Active() {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() % uint64(sh.Count))
}

// String renders the CLI form.
func (sh Shard) String() string {
	if !sh.Active() {
		return "0/1"
	}
	return fmt.Sprintf("%d/%d", sh.Index, sh.Count)
}
