package graph

// Incremental repair of cached distance matrices. A dynamics round
// changes one player's out-arcs at a time, so the underlying graph seen
// by every cached dist matrix differs from the cached state by a handful
// of edges around the mover. Refilling the whole n×n matrix for that is
// the dominant cost of cached dynamics; this file repairs it instead.
//
// The repair is row-by-row. For a BFS row d(s, ·) and an edge delta
// (removed set R, added set A, both absent/present in the *new* graph):
//
//   - Removals can only matter to a vertex that lost a *parent*: a
//     removed edge {a,b} with d(s,b) = d(s,a)+1 deprives b of parent a
//     (edges with |d(s,a)-d(s,b)| != 1 lie on no shortest path from s).
//     If every such orphaned endpoint still has, in the new graph, some
//     neighbour w with d(s,w) one level up, every old distance is
//     preserved: by induction on levels, each vertex at level k that
//     lost a parent reaches s through its surviving level-(k-1)
//     neighbour, and no other vertex lost any incident edge (all
//     changed edges join the endpoints of R). If some orphan has no
//     surviving parent, distances may have increased and the row is
//     recomputed ("damaged").
//   - With R harmless, an added edge can only *decrease* distances, and
//     only if some {a,b} in A has min(d(s,a), d(s,b)) finite and
//     |d(s,a) - d(s,b)| >= 2 (take the improved vertex with the smallest
//     new distance: its last edge must be an added one whose endpoints'
//     old distances differ by >= 2). Such rows are patched in place by a
//     monotone improvement-only BFS seeded from the added edges.
//   - Rows matching neither test are exactly valid as they stand — the
//     common case when a move is far from the row's source, and, in the
//     low-diameter graphs the game produces, usually even when it is
//     near (alternative parents abound).
//
// When the damaged fraction exceeds RepairRefillFraction the per-row
// plan is abandoned and the whole matrix is refilled by the batched
// word-parallel filler, which is faster per row than scalar BFS; repair
// therefore never costs much more than the refill it replaces.

// RepairRefillFraction is the damaged-row fraction beyond which
// RepairRows falls back to a full DistanceRowsInto refill.
var RepairRefillFraction = 0.25

// RepairStats reports what one RepairRows call did.
type RepairStats struct {
	RowsPatched  int  // rows improved in place (additions only)
	RowsRefilled int  // damaged rows recomputed by fresh scalar BFS
	FullRefill   bool // damage exceeded the threshold; matrix refilled
	// Changed lists the sources whose rows changed (damaged then
	// patched), or nil after a FullRefill (every row may have changed).
	// The slice aliases the scratch and is valid until the next call.
	Changed []int32
}

// DeltaScratch holds the reusable buffers of RepairRows. Not safe for
// concurrent use.
type DeltaScratch struct {
	queue   []int32
	damaged []int32
	patched []int32
	changed []int32
	buckets [][]int32 // improvement BFS bucket queue, indexed by distance
}

// NewDeltaScratch returns repair scratch for n-vertex matrices.
func NewDeltaScratch(n int) *DeltaScratch {
	return &DeltaScratch{
		queue:   make([]int32, 0, n),
		buckets: make([][]int32, n+1),
	}
}

// RepairRows updates rows (the flat n×n distance matrix of the graph
// *before* the edge delta) to the distances over c (the graph *after*
// it). removed and added list the undirected edges deleted from and
// inserted into the graph, as endpoint pairs; they must be disjoint and
// consistent with c. Self-classification makes the cost proportional to
// the damage: untouched rows cost one scan over the delta, patched rows
// one improvement BFS, damaged rows one fresh BFS — with a full batched
// refill past RepairRefillFraction.
func (c *CSR) RepairRows(rows []int32, removed, added [][2]int32, ds *DeltaScratch) RepairStats {
	n := c.N()
	st := RepairStats{}
	if n == 0 || len(removed)+len(added) == 0 {
		return st
	}
	// Classification costs O(n · |delta|): against a delta this large it
	// cannot beat the batched refill it is trying to avoid, and most rows
	// would classify as damaged anyway.
	if len(removed)+len(added) > n/8+1 {
		c.DistanceRowsInto(rows)
		st.FullRefill = true
		return st
	}
	ds.damaged = ds.damaged[:0]
	ds.patched = ds.patched[:0]
	for s := 0; s < n; s++ {
		row := rows[s*n : (s+1)*n]
		damaged := false
		for _, e := range removed {
			da, db := row[e[0]], row[e[1]]
			if da >= InfDist {
				continue // both endpoints unreachable from s
			}
			var child int32
			switch {
			case db == da+1:
				child = e[1]
			case da == db+1:
				child = e[0]
			default:
				continue // not on any shortest path from s
			}
			// child lost parent; is another old-level parent still there?
			alive := false
			up := row[child] - 1
			for _, w := range c.Nbrs[c.Indptr[child]:c.Indptr[child+1]] {
				if row[w] == up {
					alive = true
					break
				}
			}
			if !alive {
				damaged = true
				break
			}
		}
		if damaged {
			ds.damaged = append(ds.damaged, int32(s))
			continue
		}
		for _, e := range added {
			da, db := row[e[0]], row[e[1]]
			if da > db {
				da, db = db, da
			}
			if da < InfDist && db-da >= 2 {
				ds.patched = append(ds.patched, int32(s))
				break
			}
		}
	}
	if float64(len(ds.damaged)) > RepairRefillFraction*float64(n) {
		c.DistanceRowsInto(rows)
		st.FullRefill = true
		return st
	}
	if len(ds.damaged) > 0 {
		// Word-parallel subset refill: 64 damaged rows per BFS pass,
		// batches distributed over the worker pool.
		batches := (len(ds.damaged) + 63) / 64
		parallelRange(batches, 2,
			func() *maskScratch { return newMaskScratch(n) },
			func(ms *maskScratch, b int) {
				lo := b * 64
				hi := lo + 64
				if hi > len(ds.damaged) {
					hi = len(ds.damaged)
				}
				c.fillRowsSubset(ds.damaged[lo:hi], rows, ms)
			})
	}
	ds.changed = append(ds.changed[:0], ds.damaged...)
	for _, s := range ds.patched {
		if c.patchRow(rows[int(s)*n:(int(s)+1)*n], added, ds) {
			ds.changed = append(ds.changed, s)
			st.RowsPatched++
		}
	}
	st.RowsRefilled = len(ds.damaged)
	st.Changed = ds.changed
	return st
}

// patchRow applies the improvement-only repair to one row: distances can
// only have decreased, every decrease routes through an added edge, and
// processing tentative improvements in increasing distance order (a
// bucket queue; all arc weights are 1) settles each vertex at its exact
// new distance. It reports whether any cell actually changed, so
// shadow structures (the level cache) are only rebuilt for rows that
// moved.
func (c *CSR) patchRow(row []int32, added [][2]int32, ds *DeltaScratch) bool {
	changed := false
	maxd := int32(0)
	push := func(v, d int32) {
		changed = true
		row[v] = d
		ds.buckets[d] = append(ds.buckets[d], v)
		if d > maxd {
			maxd = d
		}
	}
	for _, e := range added {
		a, b := e[0], e[1]
		// A finite distance is < InfDist, so d+1 <= InfDist never beats
		// an unreachable InfDist entry spuriously.
		if row[a]+1 < row[b] {
			push(b, row[a]+1)
		} else if row[b]+1 < row[a] {
			push(a, row[b]+1)
		}
	}
	for d := int32(0); d <= maxd; d++ {
		bucket := ds.buckets[d]
		for i := 0; i < len(bucket); i++ {
			v := bucket[i]
			if row[v] != d {
				continue // superseded by a smaller tentative distance
			}
			dn := d + 1
			for _, w := range c.Nbrs[c.Indptr[v]:c.Indptr[v+1]] {
				if dn < row[w] {
					push(w, dn)
				}
			}
			bucket = ds.buckets[d] // pushes at d+1 only; reload for safety
		}
		ds.buckets[d] = bucket[:0]
	}
	return changed
}

// DiffUnd compares two undirected adjacency views of the same vertex set
// and returns the edges present only in old (removed) and only in new
// (added), each reported once with both endpoints, excluding any edge
// incident to skip (pass a negative skip to keep every edge). Both views
// must have sorted neighbour lists, which every Und built by this
// package has.
func DiffUnd(oldA, newA Und, skip int) (removed, added [][2]int32) {
	for v := range oldA {
		if v == skip {
			continue
		}
		ov, nv := oldA[v], newA[v]
		i, j := 0, 0
		for i < len(ov) || j < len(nv) {
			switch {
			case j >= len(nv) || (i < len(ov) && ov[i] < nv[j]):
				if w := ov[i]; w > v && w != skip {
					removed = append(removed, [2]int32{int32(v), int32(w)})
				}
				i++
			case i >= len(ov) || nv[j] < ov[i]:
				if w := nv[j]; w > v && w != skip {
					added = append(added, [2]int32{int32(v), int32(w)})
				}
				j++
			default:
				i++
				j++
			}
		}
	}
	return removed, added
}
