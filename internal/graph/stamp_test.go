package graph

import (
	"math/rand"
	"testing"
)

func TestStampMutatorsBumpAndTouch(t *testing.T) {
	g := NewDigraph(5)
	if g.Gen() != 0 {
		t.Fatalf("fresh graph gen = %d, want 0", g.Gen())
	}
	if !g.AddArc(0, 1) || g.Gen() != 1 {
		t.Fatalf("AddArc should bump gen to 1, got %d", g.Gen())
	}
	if g.NodeGen(0) != 1 || g.NodeGen(1) != 1 || g.NodeGen(2) != 0 {
		t.Fatalf("AddArc touched wrong nodes: %d %d %d", g.NodeGen(0), g.NodeGen(1), g.NodeGen(2))
	}
	if g.AddArc(0, 1) {
		t.Fatal("duplicate AddArc reported true")
	}
	if g.Gen() != 1 {
		t.Fatalf("duplicate AddArc bumped gen to %d", g.Gen())
	}
	if g.RemoveArc(2, 3) {
		t.Fatal("absent RemoveArc reported true")
	}
	if g.Gen() != 1 {
		t.Fatalf("absent RemoveArc bumped gen to %d", g.Gen())
	}
	if !g.RemoveArc(0, 1) || g.Gen() != 2 {
		t.Fatalf("RemoveArc should bump gen to 2, got %d", g.Gen())
	}
	if !g.TouchedSince(1, 1) || g.TouchedSince(1, 2) {
		t.Fatal("TouchedSince wrong after RemoveArc")
	}
}

func TestStampSetOutNoopDoesNotBump(t *testing.T) {
	g := NewDigraph(4)
	g.SetOut(0, []int{2, 1})
	gen := g.Gen()
	if gen != 1 {
		t.Fatalf("SetOut gen = %d, want 1", gen)
	}
	g.SetOut(0, []int{1, 2, 2, 1}) // same set after sort+dedup
	if g.Gen() != gen {
		t.Fatalf("no-op SetOut bumped gen to %d", g.Gen())
	}
	g.SetOut(0, []int{1, 3})
	if g.Gen() != gen+1 {
		t.Fatalf("real SetOut gen = %d, want %d", g.Gen(), gen+1)
	}
	// Touched: owner 0, dropped target 2, added target 3; 1 unchanged.
	if g.NodeGen(0) != 2 || g.NodeGen(2) != 2 || g.NodeGen(3) != 2 {
		t.Fatal("SetOut did not touch changed endpoints")
	}
	if g.NodeGen(1) != 1 {
		t.Fatalf("SetOut touched unchanged target 1: gen %d", g.NodeGen(1))
	}
}

func TestStampAnchorCloneAndDivergence(t *testing.T) {
	g := NewDigraph(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	c := g.Clone()
	gs, gg := g.Anchor()
	cs, cg := c.Anchor()
	if gs != cs || gg != cg {
		t.Fatal("clone anchor differs from source")
	}
	d := c.Clone() // clone of a clone still matches
	ds, dg := d.Anchor()
	if ds != gs || dg != gg {
		t.Fatal("second-level clone anchor differs")
	}
	c.AddArc(2, 3)
	cs2, cg2 := c.Anchor()
	if cs2 == gs && cg2 == gg {
		t.Fatal("mutated clone kept the old anchor")
	}
	// The untouched copies still agree with each other.
	ds, dg = d.Anchor()
	gs2, gg2 := g.Anchor()
	if ds != gs2 || dg != gg2 {
		t.Fatal("untouched copies lost anchor agreement")
	}
	// Independent mutations of two clones must not collide.
	e := g.Clone()
	e.AddArc(3, 0)
	es, eg := e.Anchor()
	if es == cs2 && eg == cg2 {
		t.Fatal("independent clone mutations produced equal anchors")
	}
}

// TestStampDeltaSinceMatchesDiffUnd drives random mutation streams and
// checks that the journal's net delta for every (checkpoint, player)
// pair equals a ground-truth DiffUnd of snapshots, and that inTouched
// never under-reports an in(u) change by another player.
func TestStampDeltaSinceMatchesDiffUnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(8)
		g := NewDigraph(n)
		for i := 0; i < n; i++ {
			g.AddArc(i, (i+1)%n)
		}
		g.StartJournal(0)
		type snap struct {
			gen  int64
			base []Und // base[u] = UnderlyingWithout(u)
			in   [][]int
		}
		take := func() snap {
			s := snap{gen: g.Gen(), base: make([]Und, n), in: make([][]int, n)}
			for u := 0; u < n; u++ {
				s.base[u] = g.UnderlyingWithout(u)
				s.in[u] = g.In(u)
			}
			return s
		}
		snaps := []snap{take()}
		for step := 0; step < 30; step++ {
			u := rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				v := rng.Intn(n)
				if v != u {
					g.AddArc(u, v)
				}
			case 1:
				v := rng.Intn(n)
				if v != u {
					g.RemoveArc(u, v)
				}
			case 2:
				var s []int
				for v := 0; v < n; v++ {
					if v != u && rng.Intn(n) < 2 {
						s = append(s, v)
					}
				}
				g.SetOut(u, s)
			case 3:
				g.SetOut(u, g.Out(u)) // no-op rewire
			}
			if rng.Intn(3) == 0 {
				snaps = append(snaps, take())
			}
		}
		cur := take()
		for _, old := range snaps {
			for u := 0; u < n; u++ {
				removed, added, inTouched, ok := g.DeltaSince(old.gen, u)
				if !ok {
					t.Fatalf("trial %d: unbounded journal reported !ok", trial)
				}
				wantRem, wantAdd := DiffUnd(old.base[u], cur.base[u], u)
				if !edgesEqual(removed, wantRem) || !edgesEqual(added, wantAdd) {
					t.Fatalf("trial %d u=%d since=%d: delta mismatch\n got -%v +%v\nwant -%v +%v",
						trial, u, old.gen, removed, added, wantRem, wantAdd)
				}
				inChanged := !intsEqual(old.in[u], cur.in[u])
				if inChanged && !inTouched {
					t.Fatalf("trial %d u=%d: in(u) changed but inTouched=false", trial, u)
				}
			}
		}
	}
}

func TestStampJournalOverflow(t *testing.T) {
	g := NewDigraph(6)
	g.StartJournal(4)
	start := g.Gen()
	for i := 0; i < 10; i++ {
		u := i % 5
		if !g.AddArc(u, u+1) {
			g.RemoveArc(u, u+1)
		}
	}
	if _, _, _, ok := g.DeltaSince(start, 0); ok {
		t.Fatal("overflowed journal still claimed coverage of the start")
	}
	recent := g.Gen()
	g.AddArc(0, 5)
	if _, _, _, ok := g.DeltaSince(recent, 1); !ok {
		t.Fatal("journal lost coverage of the most recent generation")
	}
	// Clones carry stamps but never the journal.
	c := g.Clone()
	if _, _, _, ok := c.DeltaSince(c.Gen()-1, 0); ok {
		t.Fatal("clone inherited the journal")
	}
	if _, _, _, ok := c.DeltaSince(c.Gen(), 0); !ok {
		t.Fatal("same-generation query should be ok even without a journal")
	}
}

func edgesEqual(a, b [][2]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
