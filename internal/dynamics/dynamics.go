// Package dynamics runs (best-)response dynamics for bounded budget
// network creation games: starting from a profile, players revise their
// strategies one at a time until a fixed point (a Nash equilibrium when
// the responder is exact), a detected cycle of profiles, or a round
// budget is exhausted. Section 8 of the paper leaves convergence of these
// dynamics open — Laoutaris et al. exhibited loops in the directed
// variant — so the engine detects loops exactly via profile hashing with
// full-profile confirmation, and the harness reports convergence
// statistics as an empirical answer.
package dynamics

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// Scheduler yields the order in which players move in one round.
type Scheduler interface {
	// Order fills dst with a permutation of 0..n-1 for the given round.
	Order(dst []int, round int)
	Name() string
}

// RoundRobin moves players in index order every round.
type RoundRobin struct{}

// Order fills dst with the identity permutation.
func (RoundRobin) Order(dst []int, round int) {
	for i := range dst {
		dst[i] = i
	}
}

// Name identifies the scheduler in reports.
func (RoundRobin) Name() string { return "round-robin" }

// RandomOrder shuffles the player order independently each round.
type RandomOrder struct{ Rng *rand.Rand }

// Order fills dst with a fresh random permutation.
func (s RandomOrder) Order(dst []int, round int) {
	for i := range dst {
		dst[i] = i
	}
	s.Rng.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}

// Name identifies the scheduler in reports.
func (s RandomOrder) Name() string { return "random-order" }

// Options configure a dynamics run.
type Options struct {
	Responder core.Responder // required
	Scheduler Scheduler      // defaults to RoundRobin
	MaxRounds int            // defaults to 1000
	// RecordTrajectory stores the social cost (diameter) after every
	// round in Result.Trajectory.
	RecordTrajectory bool
	// DetectLoops tracks visited profiles and stops when one repeats.
	// Hash hits are confirmed against the stored profile, so a reported
	// loop is exact, never a collision artefact.
	DetectLoops bool
}

// Result summarises a dynamics run.
type Result struct {
	Converged  bool // a full round passed with no strategy change
	Loop       bool // an earlier profile recurred (only if DetectLoops)
	LoopLength int  // rounds between the repeats, when Loop
	Rounds     int  // full rounds executed
	Moves      int  // strategy changes applied
	Final      *graph.Digraph
	Trajectory []int64 // social cost after each round (if recorded)
}

// Run executes response dynamics for game g from the initial realization
// start (which is not modified). If the responder is exact, a converged
// final graph is a Nash equilibrium of g.
func Run(g *core.Game, start *graph.Digraph, opts Options) (Result, error) {
	if err := g.CheckRealization(start); err != nil {
		return Result{}, err
	}
	if opts.Responder == nil {
		return Result{}, fmt.Errorf("dynamics: Options.Responder is required")
	}
	if opts.Scheduler == nil {
		opts.Scheduler = RoundRobin{}
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 1000
	}
	d := start.Clone()
	n := g.N()
	order := make([]int, n)
	res := Result{}
	var seen map[uint64][]seenProfile
	if opts.DetectLoops {
		seen = make(map[uint64][]seenProfile)
		recordProfile(seen, core.ProfileOf(d), 0)
	}
	for round := 1; round <= opts.MaxRounds; round++ {
		opts.Scheduler.Order(order, round)
		changed := false
		for _, u := range order {
			if g.Budgets[u] == 0 {
				continue
			}
			br := opts.Responder(g, d, u)
			if br.Improves() {
				d.SetOut(u, br.Strategy)
				res.Moves++
				changed = true
			}
		}
		res.Rounds = round
		if opts.RecordTrajectory {
			res.Trajectory = append(res.Trajectory, g.SocialCost(d))
		}
		if !changed {
			res.Converged = true
			break
		}
		if opts.DetectLoops {
			p := core.ProfileOf(d)
			if prev, ok := lookupProfile(seen, p); ok {
				res.Loop = true
				res.LoopLength = round - prev
				break
			}
			recordProfile(seen, p, round)
		}
	}
	res.Final = d
	return res, nil
}

type seenProfile struct {
	p     core.Profile
	round int
}

func recordProfile(seen map[uint64][]seenProfile, p core.Profile, round int) {
	h := p.Hash()
	seen[h] = append(seen[h], seenProfile{p: p, round: round})
}

func lookupProfile(seen map[uint64][]seenProfile, p core.Profile) (round int, ok bool) {
	for _, sp := range seen[p.Hash()] {
		if sp.p.Equal(p) {
			return sp.round, true
		}
	}
	return 0, false
}

// RandomProfile realizes a uniformly random valid profile of g.
func RandomProfile(g *core.Game, rng *rand.Rand) *graph.Digraph {
	return graph.RandomOutDigraph(g.Budgets, rng)
}

// RunFromRandom is a convenience wrapper: random initial profile, then Run.
func RunFromRandom(g *core.Game, rng *rand.Rand, opts Options) (Result, error) {
	return Run(g, RandomProfile(g, rng), opts)
}
