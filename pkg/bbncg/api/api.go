// Package api is the versioned wire surface of the bbncg session
// service: every request and response body `bbncg serve` speaks, as
// typed Go structs, in one place. The server (internal/serve), the
// typed client (pkg/bbncg/client), the demo client and the loadgen
// harness all marshal these exact types, so there is no duplicated or
// drifting wire shape anywhere in the tree.
//
// The API is versioned by URL prefix: every session route lives under
// /v1 and every response carries the `Bbncg-Api-Version: v1` header.
// Requests under an unknown /v{n} prefix are answered with the uniform
// error envelope and code "unsupported_version" — clients negotiate by
// path, not by sniffing response shapes.
//
// Errors are uniform. Every non-2xx response body is an ErrorEnvelope:
//
//	{"error": {"code": "bad_request", "message": "..."}}
//
// so clients parse failures the same way on every route, including 404s
// from unmatched paths and 405s from wrong methods.
package api

import (
	"fmt"
	"time"

	"repro/pkg/bbncg"
)

// Version is the current (and only) wire API version; the URL prefix is
// "/" + Version.
const Version = "v1"

// VersionHeader names the response header carrying the API version on
// every response, health and error paths included.
const VersionHeader = "Bbncg-Api-Version"

// Machine-readable error codes carried in the Error envelope. Clients
// branch on Code; Message is for humans.
const (
	CodeBadRequest         = "bad_request"          // malformed body, query or wire value (400)
	CodeNotFound           = "not_found"            // no such session or route (404)
	CodeMethodNotAllowed   = "method_not_allowed"   // route exists, method does not (405)
	CodeGone               = "gone"                 // session deleted or server shut down (410)
	CodeRateLimited        = "rate_limited"         // per-client token quota exhausted (429)
	CodeConcurrencyLimited = "concurrency_limited"  // per-client in-flight cap reached (429)
	CodeUnsupportedVersion = "unsupported_version"  // unknown /v{n} prefix (404)
	CodeInternal           = "internal"             // server-side failure (500)
)

// Error is the typed wire error: a stable machine-readable code plus a
// human-readable message. It implements error, so the typed client
// returns it directly; Status and RetryAfter are client-side decoration
// (the HTTP status and Retry-After header of the response that carried
// it) and never marshalled.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`

	Status     int           `json:"-"`
	RetryAfter time.Duration `json:"-"`
}

func (e *Error) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("bbncg api: %s (%s, http %d)", e.Message, e.Code, e.Status)
	}
	return fmt.Sprintf("bbncg api: %s (%s)", e.Message, e.Code)
}

// ErrorEnvelope is the body of every non-2xx response:
// {"error": {code, message}}.
type ErrorEnvelope struct {
	Err Error `json:"error"`
}

// CreateRequest is the wire form of session creation
// (POST /v1/sessions).
type CreateRequest struct {
	// ID names the session ([a-z0-9-], <= 40 chars); empty draws a
	// random one.
	ID string `json:"id,omitempty"`
	// Version is "SUM" (default) or "MAX".
	Version string `json:"version,omitempty"`
	// Budgets is the explicit budget vector; when omitted it is derived
	// from the initial profile's out-degrees.
	Budgets []int `json:"budgets,omitempty"`
	// Exactly one of Graph (generator spec) or Arcs (explicit arc
	// list, with N) supplies the initial profile.
	Graph *bbncg.GeneratorSpec `json:"graph,omitempty"`
	N     int                  `json:"n,omitempty"`
	Arcs  [][2]int             `json:"arcs,omitempty"`
	// Responder is the session's default responder: greedy (default),
	// swap or exact.
	Responder string `json:"responder,omitempty"`
	// Weights makes the session arc-weighted: queries answer weighted
	// costs on the weighted cache tier, and rewires may carry a weight.
	Weights *bbncg.WeightsSpec `json:"weights,omitempty"`
}

// SessionInfo is the wire form of session metadata
// (GET /v1/sessions/{id}, and the 201 body of create).
type SessionInfo struct {
	ID        string               `json:"id"`
	N         int                  `json:"n"`
	Version   string               `json:"version"`
	Budgets   []int                `json:"budgets"`
	Responder string               `json:"responder"`
	Graph     *bbncg.GeneratorSpec `json:"graph,omitempty"`
	Weights   *bbncg.WeightsSpec   `json:"weights,omitempty"`
	Seq       int64                `json:"seq"`
	Moves     int64                `json:"moves"`
	Replayed  bool                 `json:"replayed,omitempty"`
	Arcs      [][2]int             `json:"arcs,omitempty"`
}

// RewireRequest is the wire form of one explicit strategy change
// (POST /v1/sessions/{id}/rewire). In an arc-weighted session,
// Weight > 0 sets every new arc's weight (a rewire to the current
// strategy is then a pure reweighting).
type RewireRequest struct {
	Player   int   `json:"player"`
	Strategy []int `json:"strategy"`
	Weight   int32 `json:"weight,omitempty"`
}

// RewireResult reports whether the profile's topology actually changed.
type RewireResult struct {
	Changed bool `json:"changed"`
}

// DeleteResult acknowledges a session tombstone.
type DeleteResult struct {
	Deleted string `json:"deleted"`
}

// BestResponseResult is the wire form of a best-response query
// (GET /v1/sessions/{id}/bestresponse).
type BestResponseResult struct {
	Player    int    `json:"player"`
	Responder string `json:"responder"`
	Improves  bool   `json:"improves"`
	Strategy  []int  `json:"strategy"`
	Cost      int64  `json:"cost"`
	Current   int64  `json:"current"`
	Explored  int64  `json:"explored"`
	// Memo reports that the whole scan was skipped by the round memo
	// (the answer is the recorded one, still exact for this anchor).
	Memo bool `json:"memo,omitempty"`
}

// EquilibriumResult is the wire form of an equilibrium-status query
// (GET /v1/sessions/{id}/equilibrium).
type EquilibriumResult struct {
	Responder string `json:"responder"`
	Stable    bool   `json:"stable"`
	// Checked counts the players scanned (budget-0 players are stable
	// by definition and skipped).
	Checked int `json:"checked"`
	// Witness is the first improving deviation found, when not stable.
	Witness *BestResponseResult `json:"witness,omitempty"`
}

// WelfareResult is the wire form of a welfare query
// (GET /v1/sessions/{id}/welfare): the social cost plus each player's
// cost, weighted when the session is.
type WelfareResult struct {
	Social int64   `json:"social"`
	Costs  []int64 `json:"costs"`
}

// DynamicsRequest is the wire form of a served dynamics run
// (POST /v1/sessions/{id}/dynamics). Rounds bounds the run (<= 0 runs
// one round). From only applies to streamed runs (?stream=1): when
// > 0, the server first re-emits every recorded round trace entry with
// Round >= From — the reconnect/resume half of the streaming contract —
// before running new rounds. A `Last-Event-ID` request header (the
// standard SSE reconnect carrier) overrides From with id+1.
type DynamicsRequest struct {
	Rounds int `json:"rounds"`
	From   int `json:"from,omitempty"`
}

// RoundTrace is one round of a dynamics run: the session-global round
// number, the moves accepted in that round, and the social cost after
// it. Streamed dynamics emit one `round` SSE event per entry; the
// non-streamed response carries the same entries in
// DynamicsResult.Trace, byte-identically.
type RoundTrace struct {
	Round   int   `json:"round"`
	Moves   int   `json:"moves"`
	Welfare int64 `json:"welfare"`
}

// DynamicsResult summarises a served dynamics run. Trace holds the
// per-round welfare trace of this run's rounds (absent in the terminal
// `done` event of a streamed run, whose trace was already emitted
// round by round).
type DynamicsResult struct {
	Rounds    int          `json:"rounds"`
	Moves     int          `json:"moves"`
	Converged bool         `json:"converged"`
	Trace     []RoundTrace `json:"trace,omitempty"`
}

// SSE event names of a streamed dynamics run. Each `round` event
// carries a RoundTrace with its `id:` set to the round number (so
// Last-Event-ID reconnects resume exactly); the terminal event is
// either `done` (DynamicsResult) or `error` (Error). Comment lines
// (": hb") are heartbeats and carry no data.
const (
	StreamEventRound = "round"
	StreamEventDone  = "done"
	StreamEventError = "error"
)

// Batch op kinds accepted by POST /v1/batch.
const (
	OpCreate       = "create"
	OpInfo         = "info"
	OpRewire       = "rewire"
	OpBestResponse = "bestresponse"
	OpEquilibrium  = "equilibrium"
	OpWelfare      = "welfare"
	OpDynamics     = "dynamics"
)

// BatchOp is one operation of a batch request. Session names the target
// session for every op, including create (it becomes the new id when
// Create.ID is empty); ops naming the same session execute in request
// order, ops on distinct sessions run concurrently on the worker pool.
// Exactly the parameter field matching Op is consulted.
type BatchOp struct {
	Session string `json:"session,omitempty"`
	Op      string `json:"op"`

	Create   *CreateRequest   `json:"create,omitempty"`
	Rewire   *RewireRequest   `json:"rewire,omitempty"`
	Dynamics *DynamicsRequest `json:"dynamics,omitempty"`
	// Player, Responder and ExactCap parameterise bestresponse and
	// equilibrium ops, mirroring the query parameters of the unbatched
	// routes.
	Player    int    `json:"player,omitempty"`
	Responder string `json:"responder,omitempty"`
	ExactCap  int64  `json:"exactCap,omitempty"`
}

// BatchRequest executes Ops in one request: one scheduler pass
// amortises HTTP round-trips and pool acquisition across sessions.
type BatchRequest struct {
	Ops []BatchOp `json:"ops"`
}

// BatchItem is the outcome of one batch op, aligned by index with the
// request. Exactly one of the result fields (or Error) is set — the
// same wire shapes as the unbatched routes, so batch-vs-sequential
// results are byte-identical. A failing op sets Error and never aborts
// its siblings.
type BatchItem struct {
	Session string `json:"session,omitempty"`
	Op      string `json:"op"`

	Error        *Error              `json:"error,omitempty"`
	Info         *SessionInfo        `json:"info,omitempty"`
	Rewire       *RewireResult       `json:"rewire,omitempty"`
	BestResponse *BestResponseResult `json:"bestResponse,omitempty"`
	Equilibrium  *EquilibriumResult  `json:"equilibrium,omitempty"`
	Welfare      *WelfareResult      `json:"welfare,omitempty"`
	Dynamics     *DynamicsResult     `json:"dynamics,omitempty"`
}

// BatchResult is the response of POST /v1/batch.
type BatchResult struct {
	Results []BatchItem `json:"results"`
}

// SessionStats is the wire form of one session's pool counters inside
// /statsz.
type SessionStats struct {
	ID        string          `json:"id"`
	N         int             `json:"n"`
	Seq       int64           `json:"seq"`
	Moves     int64           `json:"moves"`
	Evictions int64           `json:"evictions"`
	PoolBytes int64           `json:"poolBytes"`
	Pool      bbncg.PoolStats `json:"pool"`
}

// StatsSnapshot is the body of GET /statsz: every session's counters
// plus the server-level gauges the loadgen gates assert on.
type StatsSnapshot struct {
	Sessions []SessionStats `json:"sessions"`
	// InFlight counts /v1 requests currently being handled — it must
	// return to zero when clients disconnect (the stream-cancellation
	// leak check).
	InFlight int64 `json:"inFlight"`
	// Throttled counts requests rejected 429 by the quota middleware.
	Throttled int64 `json:"throttled"`
	// Draining mirrors /readyz.
	Draining bool `json:"draining"`
}

// Health is the body of GET /healthz: liveness plus build identity.
type Health struct {
	Status   string `json:"status"`
	Version  string `json:"version"`
	API      string `json:"api"`
	Sessions int    `json:"sessions"`
}

// Ready is the body of GET /readyz. Unlike /healthz (liveness: the
// process is up) it reports readiness to take NEW traffic: during a
// graceful drain the process is still alive and finishing in-flight
// requests, but /readyz answers 503 with Status "draining" so load
// balancers rotate it out before the listener closes.
type Ready struct {
	Ready  bool   `json:"ready"`
	Status string `json:"status"` // "ok" or "draining"
}

// VersionInfo is the body of GET /v1: explicit version negotiation.
type VersionInfo struct {
	API      string   `json:"api"`
	Versions []string `json:"versions"`
}
