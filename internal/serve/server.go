package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/version"
	"repro/pkg/bbncg/api"
)

// Config tunes the HTTP face of a Manager; the zero value serves
// unthrottled with default cadences.
type Config struct {
	// Quota enforces per-client token rates and in-flight caps on the
	// /v1 routes (health and stats endpoints are exempt); the zero
	// value disables both.
	Quota QuotaConfig
	// HeartbeatEvery is the SSE heartbeat cadence of streamed dynamics
	// (comment lines keeping proxies and clients convinced the
	// connection is alive between slow rounds). <= 0 means 10s.
	HeartbeatEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 10 * time.Second
	}
	return c
}

// Server is the HTTP face of a Manager. The wire contract — every
// request and response type, the error envelope, the version header —
// is pkg/bbncg/api; see docs/SERVE.md for the route reference.
//
//	GET    /v1                              version negotiation
//	POST   /v1/sessions                     create (api.CreateRequest)
//	GET    /v1/sessions                     list session stats
//	GET    /v1/sessions/{id}?arcs=1         session info (+profile)
//	DELETE /v1/sessions/{id}                tombstone and close
//	POST   /v1/sessions/{id}/rewire         api.RewireRequest
//	GET    /v1/sessions/{id}/bestresponse   ?player=&responder=&exactCap=
//	GET    /v1/sessions/{id}/equilibrium    ?responder=&exactCap=
//	GET    /v1/sessions/{id}/welfare
//	POST   /v1/sessions/{id}/dynamics       api.DynamicsRequest (?stream=1 → SSE)
//	POST   /v1/batch                        api.BatchRequest
//	GET    /healthz                         liveness + build identity
//	GET    /readyz                          readiness (503 while draining)
//	GET    /statsz                          api.StatsSnapshot
//
// Every mutation is durable before the response is written. Every
// error, 404s and 405s included, is the api.ErrorEnvelope.
type Server struct {
	m   *Manager
	cfg Config
	mux *http.ServeMux
	q   *quota

	// inflight gauges /v1 requests currently being handled; throttled
	// counts quota rejections. Both surface in /statsz — the loadgen
	// gates and the stream-cancellation leak test assert on them.
	inflight  atomic.Int64
	throttled atomic.Int64
	draining  atomic.Bool
}

// NewServer wires the routes over m.
func NewServer(m *Manager, cfg Config) *Server {
	s := &Server{m: m, cfg: cfg.withDefaults(), mux: http.NewServeMux()}
	s.q = newQuota(s.cfg.Quota)
	s.mux.HandleFunc("GET /v1", s.handleVersion)
	s.mux.HandleFunc("GET /v1/{$}", s.handleVersion)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/rewire", s.handleRewire)
	s.mux.HandleFunc("GET /v1/sessions/{id}/bestresponse", s.handleBestResponse)
	s.mux.HandleFunc("GET /v1/sessions/{id}/equilibrium", s.handleEquilibrium)
	s.mux.HandleFunc("GET /v1/sessions/{id}/welfare", s.handleWelfare)
	s.mux.HandleFunc("POST /v1/sessions/{id}/dynamics", s.handleDynamics)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

// ServeHTTP is the middleware spine: version header on everything,
// envelope-shaped 404/405 for unmatched requests, then quota admission
// and the in-flight gauge around the /v1 routes (health and stats stay
// exempt so monitoring never competes with traffic for quota).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(api.VersionHeader, api.Version)
	// mux.Handler only matches — path values are bound during
	// mux.ServeHTTP — so dispatch goes through the mux itself.
	h, pattern := s.mux.Handler(r)
	if pattern == "" {
		s.handleUnmatched(w, r, h)
		return
	}
	if !strings.Contains(pattern, "/v1") {
		s.mux.ServeHTTP(w, r)
		return
	}
	release, retryAfter, code := s.q.admit(clientKey(r))
	if code != "" {
		s.throttled.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((retryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, code,
			fmt.Errorf("serve: client over %s; retry after %s", code, retryAfter))
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		release()
	}()
	s.mux.ServeHTTP(w, r)
}

// clientKey identifies the quota principal: the X-Api-Key header when
// present, otherwise the remote host.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-Api-Key"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// statusRecorder captures the status and headers the mux's built-in
// 404/405 handlers would have written, so the envelope keeps their
// semantics (405 + Allow) without their text/plain bodies.
type statusRecorder struct {
	h    http.Header
	code int
}

func (r *statusRecorder) Header() http.Header       { return r.h }
func (r *statusRecorder) Write(p []byte) (int, error) { return len(p), nil }
func (r *statusRecorder) WriteHeader(code int)      { r.code = code }

// handleUnmatched answers requests no route claimed with the uniform
// envelope: unknown /v{n} prefixes get code unsupported_version (the
// negotiation half of the versioned API), wrong methods keep their 405
// and Allow header, everything else is a plain not_found.
func (s *Server) handleUnmatched(w http.ResponseWriter, r *http.Request, h http.Handler) {
	rec := &statusRecorder{h: make(http.Header), code: http.StatusOK}
	h.ServeHTTP(rec, r)
	code, status := api.CodeNotFound, rec.code
	if status == http.StatusOK || status == 0 {
		status = http.StatusNotFound
	}
	err := fmt.Errorf("serve: no route %s %s", r.Method, r.URL.Path)
	switch {
	case status == http.StatusMethodNotAllowed:
		code = api.CodeMethodNotAllowed
		if allow := rec.h.Get("Allow"); allow != "" {
			w.Header().Set("Allow", allow)
		}
		err = fmt.Errorf("serve: method %s not allowed on %s", r.Method, r.URL.Path)
	case versionPrefix(r.URL.Path) != "" && versionPrefix(r.URL.Path) != api.Version:
		code = api.CodeUnsupportedVersion
		err = fmt.Errorf("serve: unsupported API version %q (supported: %s)", versionPrefix(r.URL.Path), api.Version)
	}
	writeError(w, status, code, err)
}

// versionPrefix extracts a leading /v{n} path segment ("" when absent).
func versionPrefix(path string) string {
	seg, _, _ := strings.Cut(strings.TrimPrefix(path, "/"), "/")
	if len(seg) >= 2 && seg[0] == 'v' {
		if _, err := strconv.Atoi(seg[1:]); err == nil {
			return seg
		}
	}
	return ""
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

// writeError writes the uniform envelope.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, api.ErrorEnvelope{Err: api.Error{Code: code, Message: err.Error()}})
}

// errToAPI classifies a session/manager error onto (status, code):
// closed sessions are gone, everything else a session rejects is a bad
// request.
func errToAPI(err error) (int, string) {
	if errors.Is(err, ErrSessionClosed) {
		return http.StatusGone, api.CodeGone
	}
	return http.StatusBadRequest, api.CodeBadRequest
}

// writeErr maps a session error to its envelope.
func writeErr(w http.ResponseWriter, err error) {
	status, code := errToAPI(err)
	writeError(w, status, code, err)
}

// session resolves {id}, answering 404 itself when absent.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("serve: no session %q", id))
		return nil, false
	}
	return sess, true
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decoding request body: %w", err)
	}
	return nil
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.VersionInfo{API: api.Version, Versions: []string{api.Version}})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req api.CreateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	sess, err := s.m.Create(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	info, err := sess.Info(false)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.List())
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	info, err := sess.Info(r.URL.Query().Get("arcs") == "1")
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Delete(id); err != nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, api.DeleteResult{Deleted: id})
}

func (s *Server) handleRewire(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req api.RewireRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	changed, err := sess.Rewire(req.Player, req.Strategy, req.Weight)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.m.Rebalance(sess.ID())
	writeJSON(w, http.StatusOK, api.RewireResult{Changed: changed})
}

// queryInt64 parses an optional numeric query parameter.
func queryInt64(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: query %s=%q: want an integer", name, raw)
	}
	return v, nil
}

func (s *Server) handleBestResponse(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	player, err := queryInt64(r, "player")
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	if r.URL.Query().Get("player") == "" {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("serve: query player is required"))
		return
	}
	exactCap, err := queryInt64(r, "exactCap")
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	ans, err := sess.BestResponse(int(player), r.URL.Query().Get("responder"), exactCap)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.m.Rebalance(sess.ID())
	writeJSON(w, http.StatusOK, ans)
}

func (s *Server) handleEquilibrium(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	exactCap, err := queryInt64(r, "exactCap")
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	ans, err := sess.Equilibrium(r.URL.Query().Get("responder"), exactCap)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.m.Rebalance(sess.ID())
	writeJSON(w, http.StatusOK, ans)
}

func (s *Server) handleWelfare(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	wf, err := sess.Welfare()
	if err != nil {
		writeErr(w, err)
		return
	}
	s.m.Rebalance(sess.ID())
	writeJSON(w, http.StatusOK, wf)
}

func (s *Server) handleDynamics(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req api.DynamicsRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	if r.URL.Query().Get("stream") == "1" {
		s.streamDynamics(w, r, sess, req)
		return
	}
	if req.From != 0 {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Errorf("serve: from applies to streamed dynamics (?stream=1) only"))
		return
	}
	rep, err := sess.Step(req.Rounds)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.m.Rebalance(sess.ID())
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.Health{
		Status:   "ok",
		Version:  version.String(),
		API:      api.Version,
		Sessions: s.m.Len(),
	})
}

// handleReadyz is the load-balancer half of graceful drain: distinct
// from /healthz (the process is alive either way), it flips to 503
// "draining" the moment shutdown begins, so rotation happens before
// connections start dying.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.Ready{Ready: false, Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, api.Ready{Ready: true, Status: "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.StatsSnapshot{
		Sessions:  s.m.List(),
		InFlight:  s.inflight.Load(),
		Throttled: s.throttled.Load(),
		Draining:  s.draining.Load(),
	})
}

// SetDraining flips the /readyz readiness answer; Run calls it when the
// drain begins.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// InFlight reports the live /v1 request gauge (test hook).
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Run serves on addr until ctx is cancelled, then drains: /readyz
// flips to 503 draining, in-flight requests finish (bounded by the
// grace period), the listener closes, and the manager flushes the
// store manifest. ready, when non-nil, receives the bound address once
// listening (for :0 callers).
func Run(ctx context.Context, addr string, m *Manager, cfg Config, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	sv := NewServer(m, cfg)
	hs := &http.Server{Handler: sv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		m.Close()
		return err
	case <-ctx.Done():
	}
	sv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		hs.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	return m.Close()
}
