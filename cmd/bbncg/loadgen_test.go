package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadgenSmoke is the acceptance gate behind `bbncg loadgen -check`:
// a fixed-seed mixed workload over 8 concurrent sessions against a real
// serve subprocess must finish with zero failed requests, zero resyncs
// or delta-repairs on settled sessions, and a streamed twin trace that
// is byte-identical to the plain response.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke")
	}
	dir := t.TempDir()
	p := startServe(t, dir)

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	cmd := exec.Command(exe, "loadgen",
		"-addr", strings.TrimPrefix(p.base, "http://"),
		"-sessions", "8", "-n", "12", "-ops", "30", "-seed", "7",
		"-check", "-json", jsonPath)
	cmd.Env = append(os.Environ(), "BBNCG_REEXEC=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("loadgen -check failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "all gates passed") {
		t.Fatalf("missing gate confirmation:\n%s", out)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report: %v\n%s", err, raw)
	}
	if rep.Sessions != 8 || rep.Seed != 7 {
		t.Fatalf("report params: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d failed requests", rep.Failed)
	}
	if rep.Hammer.Resyncs != 0 || rep.Hammer.DeltaRepairs != 0 {
		t.Fatalf("settled sessions left the warm path: %+v", rep.Hammer)
	}
	if rep.Hammer.MemoHits == 0 {
		t.Fatal("hammer phase never hit the round memo")
	}
	if rep.StreamByteIdentical == nil || !*rep.StreamByteIdentical {
		t.Fatalf("stream byte-identity: %+v", rep.StreamByteIdentical)
	}
	if rep.Requests == 0 || rep.OpsPerSec <= 0 {
		t.Fatalf("throughput: %+v", rep)
	}
	// The histogram partitions every sample.
	var histTotal int
	for _, b := range rep.Histogram {
		histTotal += b.Count
	}
	if histTotal != rep.Requests {
		t.Fatalf("histogram holds %d samples, report counts %d", histTotal, rep.Requests)
	}
	// Every class the mix can emit should have shown up with 8x30 ops.
	for _, class := range []string{lcCreate, lcBestResponse, lcWelfare, lcEquilibrium, lcDynamics, lcStream, lcBatch} {
		if rep.Classes[class].Count == 0 {
			t.Fatalf("class %s never ran: %+v", class, rep.Classes)
		}
	}

	// The loadgen cleans up after itself: no sessions left behind.
	status, body := p.api(t, "GET", "/v1/sessions", nil)
	if status != 200 || strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("sessions left behind: %d %s", status, body)
	}
}
