package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func benchInstance(n, b int) (*Game, *graph.Digraph) {
	g := UniformGame(n, b, SUM)
	d := graph.RandomOutDigraph(g.Budgets, rand.New(rand.NewSource(1)))
	return g, d
}

func BenchmarkDeviatorEval(b *testing.B) {
	g, d := benchInstance(256, 2)
	dv := NewDeviator(g, d, 0)
	s := []int{17, 91}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dv.Eval(s)
	}
}

// --- Distance-cache before/after series (ISSUE 1) ---------------------
//
// Each pair benchmarks the same operation over the BFS fallback ("BFS")
// and the distance-cache engine ("Cached") across the sweep sizes the
// perf trajectory tracks. withCacheBudget (distcache_test.go) pins
// DefaultCacheBudget for one sub-benchmark; benchmarks run sequentially,
// so mutating the package knob is safe.

var cacheBenchSizes = []int{32, 128, 512}

func BenchmarkDeviatorEvalSweep(b *testing.B) {
	for _, n := range cacheBenchSizes {
		g, d := benchInstance(n, 2)
		s := []int{n / 8, n / 2}
		b.Run(fmt.Sprintf("BFS/n=%d", n), func(b *testing.B) {
			dv := NewDeviator(g, d, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dv.Eval(s)
			}
		})
		b.Run(fmt.Sprintf("Cached/n=%d", n), func(b *testing.B) {
			dv := NewDeviator(g, d, 0)
			dv.EnsureCache(1 << 40)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dv.Eval(s)
			}
		})
	}
}

func BenchmarkGreedyBestResponseSweep(b *testing.B) {
	for _, n := range append(cacheBenchSizes, 256) {
		g, d := benchInstance(n, 3)
		b.Run(fmt.Sprintf("BFS/n=%d", n), func(b *testing.B) {
			withCacheBudget(0, func() {
				for i := 0; i < b.N; i++ {
					g.GreedyBestResponse(d, i%n)
				}
			})
		})
		b.Run(fmt.Sprintf("Cached/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.GreedyBestResponse(d, i%n)
			}
		})
	}
}

func BenchmarkBestSwapSweep(b *testing.B) {
	for _, n := range cacheBenchSizes {
		g, d := benchInstance(n, 3)
		b.Run(fmt.Sprintf("BFS/n=%d", n), func(b *testing.B) {
			withCacheBudget(0, func() {
				for i := 0; i < b.N; i++ {
					g.BestSwap(d, i%n)
				}
			})
		})
		b.Run(fmt.Sprintf("Cached/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.BestSwap(d, i%n)
			}
		})
	}
}

// BenchmarkExactBestResponseSweep uses budget 2 so the space C(n-1, 2)
// stays enumerable at n = 512 (130816 candidates): "Seq" forces the
// single-threaded enumeration, "Par" the sharded worker pool.
func BenchmarkExactBestResponseSweep(b *testing.B) {
	for _, n := range cacheBenchSizes {
		g, d := benchInstance(n, 2)
		b.Run(fmt.Sprintf("BFSSeq/n=%d", n), func(b *testing.B) {
			withCacheBudget(0, func() {
				old := exactParallelMinSpace
				exactParallelMinSpace = math.MaxInt64
				defer func() { exactParallelMinSpace = old }()
				for i := 0; i < b.N; i++ {
					if _, err := g.ExactBestResponse(d, i%n, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		b.Run(fmt.Sprintf("CachedPar/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.ExactBestResponse(d, i%n, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNewDeviator(b *testing.B) {
	g, d := benchInstance(256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewDeviator(g, d, i%g.N())
	}
}

func BenchmarkExactBestResponseB2(b *testing.B) {
	g, d := benchInstance(64, 2) // C(63,2) = 1953 candidates
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ExactBestResponse(d, i%g.N(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyBestResponse(b *testing.B) {
	g, d := benchInstance(128, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.GreedyBestResponse(d, i%g.N())
	}
}

func BenchmarkBestSwap(b *testing.B) {
	g, d := benchInstance(128, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BestSwap(d, i%g.N())
	}
}

func BenchmarkVerifyNashUnit(b *testing.B) {
	// Verify a star-with-satellites equilibrium at n=48, budgets 1.
	g, d := benchInstance(48, 1)
	// Drive to equilibrium first so verification does full work.
	for pass := 0; pass < 100; pass++ {
		improved := false
		for u := 0; u < g.N(); u++ {
			br, err := g.ExactBestResponse(d, u, 0)
			if err != nil {
				b.Fatal(err)
			}
			if br.Improves() {
				d.SetOut(u, br.Strategy)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.VerifyNash(d, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllCosts(b *testing.B) {
	g, d := benchInstance(256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllCosts(d)
	}
}

func BenchmarkProfileHash(b *testing.B) {
	_, d := benchInstance(256, 2)
	p := ProfileOf(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Hash()
	}
}
