package core

import (
	"hash/fnv"

	"repro/internal/graph"
)

// Profile is a strategy profile (S_1,...,S_n); entry i is the sorted
// strategy set of player i. Profiles are the unit the dynamics engine
// hashes to detect best-response cycles (Laoutaris et al. showed
// non-convergence is possible in the directed variant; Section 8 of the
// paper leaves convergence open for this one).
type Profile [][]int

// ProfileOf extracts the profile realized by d.
func ProfileOf(d *graph.Digraph) Profile {
	p := make(Profile, d.N())
	for u := 0; u < d.N(); u++ {
		p[u] = append([]int(nil), d.Out(u)...)
	}
	return p
}

// Realize builds the realization digraph of the profile.
func (p Profile) Realize() *graph.Digraph {
	d := graph.NewDigraph(len(p))
	for u, s := range p {
		d.SetOut(u, s)
	}
	return d
}

// Clone deep-copies the profile.
func (p Profile) Clone() Profile {
	c := make(Profile, len(p))
	for i, s := range p {
		c[i] = append([]int(nil), s...)
	}
	return c
}

// Equal reports componentwise equality (strategies are kept sorted).
func (p Profile) Equal(q Profile) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if len(p[i]) != len(q[i]) {
			return false
		}
		for j := range p[i] {
			if p[i][j] != q[i][j] {
				return false
			}
		}
	}
	return true
}

// Hash returns a 64-bit FNV-1a hash of the canonical encoding of the
// profile, used for O(1) loop detection in dynamics. Strategies are
// already canonical (sorted); vertices are separated by sentinels so
// ({1},{2}) and ({1,2},{}) hash differently.
func (p Profile) Hash() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	put := func(x uint32) {
		buf[0] = byte(x)
		buf[1] = byte(x >> 8)
		buf[2] = byte(x >> 16)
		buf[3] = byte(x >> 24)
		h.Write(buf[:])
	}
	for _, s := range p {
		for _, v := range s {
			put(uint32(v))
		}
		put(^uint32(0)) // sentinel between players
	}
	return h.Sum64()
}

// Valid reports whether the profile fits the game's budgets.
func (p Profile) Valid(g *Game) bool {
	if len(p) != g.N() {
		return false
	}
	for i, s := range p {
		if len(s) != g.Budgets[i] {
			return false
		}
		for j, v := range s {
			if v == i || v < 0 || v >= g.N() {
				return false
			}
			if j > 0 && s[j-1] >= v {
				return false // not sorted/deduped: not canonical
			}
		}
	}
	return true
}
