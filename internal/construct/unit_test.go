package construct

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func unitVerify(t *testing.T, d *graph.Digraph, budgets []int, ver core.Version) *core.Deviation {
	t.Helper()
	g := core.MustGame(budgets, ver)
	dev, err := g.VerifyNash(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestUnitCycleSUMEquilibriumThreshold(t *testing.T) {
	// Theorem 4.1: SUM equilibria of (1,...,1)-BG have cycle length <= 5.
	// The pure cycle C_n is an equilibrium exactly up to n = 5.
	for n := 2; n <= 5; n++ {
		d, budgets, err := UnitCycle(n)
		if err != nil {
			t.Fatal(err)
		}
		if dev := unitVerify(t, d, budgets, core.SUM); dev != nil {
			t.Fatalf("C_%d should be a SUM equilibrium: %v", n, dev)
		}
	}
	for n := 6; n <= 8; n++ {
		d, budgets, err := UnitCycle(n)
		if err != nil {
			t.Fatal(err)
		}
		if dev := unitVerify(t, d, budgets, core.SUM); dev == nil {
			t.Fatalf("C_%d should NOT be a SUM equilibrium (Theorem 4.1)", n)
		}
	}
}

func TestUnitCycleMAXEquilibriumThreshold(t *testing.T) {
	// Theorem 4.2: MAX equilibria of (1,...,1)-BG have cycle length <= 7.
	// Not every shorter cycle is an equilibrium, though: C_6 admits an
	// improving deviation (an even cycle's endpoint rewires to distance 2
	// from everything), while C_7's degree bound pins every deviation at
	// eccentricity 3. The equilibrium cycles are exactly {2,3,4,5,7}.
	for _, n := range []int{2, 3, 4, 5, 7} {
		d, budgets, err := UnitCycle(n)
		if err != nil {
			t.Fatal(err)
		}
		if dev := unitVerify(t, d, budgets, core.MAX); dev != nil {
			t.Fatalf("C_%d should be a MAX equilibrium: %v", n, dev)
		}
	}
	if d, budgets, err := UnitCycle(6); err != nil {
		t.Fatal(err)
	} else if dev := unitVerify(t, d, budgets, core.MAX); dev == nil {
		t.Fatal("C_6 should NOT be a MAX equilibrium (antipodal rewiring)")
	}
	for n := 8; n <= 10; n++ {
		d, budgets, err := UnitCycle(n)
		if err != nil {
			t.Fatal(err)
		}
		if dev := unitVerify(t, d, budgets, core.MAX); dev == nil {
			t.Fatalf("C_%d should NOT be a MAX equilibrium (Theorem 4.2)", n)
		}
	}
}

func TestUnitSatelliteStructure(t *testing.T) {
	d, budgets, err := UnitSatellite(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range budgets {
		if b != 1 {
			t.Fatal("unit budgets expected")
		}
	}
	a := d.Underlying()
	if !graph.IsConnected(a) {
		t.Fatal("satellite graph disconnected")
	}
	cyc := graph.CycleInUnicyclic(a, d.Braces())
	if len(cyc) != 4 {
		t.Fatalf("cycle length = %d, want 4", len(cyc))
	}
	dists := graph.DistancesToSet(a, cyc)
	for v, dist := range dists {
		if dist > 1 {
			t.Fatalf("vertex %d at distance %d from cycle, want <= 1", v, dist)
		}
	}
}

func TestUnitSatelliteDegenerate(t *testing.T) {
	if _, _, err := UnitSatellite(5, 1); err == nil {
		t.Fatal("cycle length 1 accepted")
	}
	if _, _, err := UnitSatellite(5, 6); err == nil {
		t.Fatal("cycle longer than n accepted")
	}
	d, _, err := UnitSatellite(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.ArcCount() != 4 {
		t.Fatal("pure cycle case broken")
	}
}

func TestUnitBrace(t *testing.T) {
	d, budgets := UnitBrace()
	if len(d.Braces()) != 1 {
		t.Fatal("brace missing")
	}
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		if dev := unitVerify(t, d, budgets, ver); dev != nil {
			t.Fatalf("%v: the 2-player brace must be an equilibrium: %v", ver, dev)
		}
	}
}

func TestUnitCycleRejectsTiny(t *testing.T) {
	if _, _, err := UnitCycle(1); err == nil {
		t.Fatal("UnitCycle(1) accepted")
	}
}
