package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzShardLoad throws arbitrary bytes at the shard loader: Open must
// never fail on shard content (only on I/O), and its repair must be
// idempotent — a second Open of the repaired directory sees a clean
// shard with the same records.
func FuzzShardLoad(f *testing.F) {
	good := rec("s1", "exp", "k=1", 41)
	good.Sum = good.checksum()
	line := func(r Record) []byte {
		raw, err := json.Marshal(r)
		if err != nil {
			f.Fatal(err)
		}
		return append(raw, '\n')
	}
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add(line(good))
	f.Add(append(line(good), []byte(`{"id":"s2","exp":"exp"`)...))                       // crash tail
	f.Add(append([]byte("{garbage}\n"), line(good)...))                                  // corrupt prefix
	f.Add(append(line(good), []byte("\x00\xff\xfe binary junk\n")...))                   // corrupt suffix
	f.Add([]byte(`{"id":"s3","exp":"exp","key":"k","value":1,"crc":"00000000"}` + "\n")) // bad CRC

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "exp.jsonl"), data, 0o666); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("Open on arbitrary shard bytes: %v", err)
		}
		n := s.Len()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		defer s2.Close()
		if s2.Len() != n {
			t.Fatalf("repair changed record count: %d then %d", n, s2.Len())
		}
		if s2.Recovered() != 0 || s2.Quarantined() != 0 {
			t.Fatalf("repair not idempotent: Recovered=%d Quarantined=%d",
				s2.Recovered(), s2.Quarantined())
		}
	})
}
