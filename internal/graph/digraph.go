// Package graph provides the directed-multigraph substrate used by the
// bounded budget network creation game: arc ownership, the undirected
// underlying view, BFS-based distance machinery, parallel all-pairs
// shortest paths, connectivity and cycle-structure utilities, and
// deterministic generators. For bulk distance work the flat CSR view
// (csr.go) replaces pointer-chasing adjacency lists with two int32
// arrays and fills whole distance matrices by word-parallel batched BFS
// — 64 sources per pass — on the shared worker pool.
//
// Vertices are integers 0..n-1. An arc u->v is "owned" by its tail u
// (player u paid for it). Distances in the game are always measured in
// the undirected underlying graph U(G); a pair of opposite arcs u->v and
// v->u is a "brace" and counts as a 2-cycle in U(G), though it does not
// change any distance.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed graph on a fixed vertex set {0,...,n-1}.
// Out-neighbour lists are kept sorted and duplicate-free: player i may own
// at most one arc to any given vertex, matching the strategy sets S_i of
// the game (S_i is a set, not a multiset).
type Digraph struct {
	n   int
	out [][]int

	// Generation stamps (stamp.go): gen counts mutations, nodeGen[v] is
	// the generation that last touched v, (src, srcGen) is the content
	// anchor, id the process-unique instance identity, j the optional
	// mutation journal.
	gen     int64
	nodeGen []int64
	id      uint64
	src     uint64
	srcGen  int64
	j       *journal
}

// NewDigraph returns an empty digraph on n vertices.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	id := digraphID.Add(1)
	return &Digraph{n: n, out: make([][]int, n), nodeGen: make([]int64, n), id: id, src: id}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// Out returns the sorted out-neighbour list of u. The returned slice is
// owned by the graph and must not be modified.
func (g *Digraph) Out(u int) []int { return g.out[u] }

// OutDegree returns the number of arcs owned by u.
func (g *Digraph) OutDegree(u int) int { return len(g.out[u]) }

// ArcCount returns the total number of arcs.
func (g *Digraph) ArcCount() int {
	m := 0
	for _, os := range g.out {
		m += len(os)
	}
	return m
}

// HasArc reports whether the arc u->v is present.
func (g *Digraph) HasArc(u, v int) bool {
	os := g.out[u]
	i := sort.SearchInts(os, v)
	return i < len(os) && os[i] == v
}

// AddArc inserts the arc u->v. It panics on self-loops and out-of-range
// vertices, and is a no-op if the arc already exists (strategy sets are
// sets). It reports whether the arc was newly added.
func (g *Digraph) AddArc(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop %d->%d", u, v))
	}
	os := g.out[u]
	i := sort.SearchInts(os, v)
	if i < len(os) && os[i] == v {
		return false
	}
	os = append(os, 0)
	copy(os[i+1:], os[i:])
	os[i] = v
	g.out[u] = os
	g.bump()
	g.touch(u)
	g.touch(v)
	if g.j != nil {
		e := arcDelta{owner: int32(u), tgtAdd: []int32{int32(v)}}
		if g.undToggle(u, v) {
			e.undAdd = [][2]int32{normEdge(u, v)}
		}
		g.record(e)
	}
	return true
}

// RemoveArc deletes the arc u->v, reporting whether it was present.
func (g *Digraph) RemoveArc(u, v int) bool {
	g.check(u)
	g.check(v)
	os := g.out[u]
	i := sort.SearchInts(os, v)
	if i >= len(os) || os[i] != v {
		return false
	}
	g.out[u] = append(os[:i], os[i+1:]...)
	g.bump()
	g.touch(u)
	g.touch(v)
	if g.j != nil {
		e := arcDelta{owner: int32(u), tgtRem: []int32{int32(v)}}
		if g.undToggle(u, v) {
			e.undRem = [][2]int32{normEdge(u, v)}
		}
		g.record(e)
	}
	return true
}

// SetOut replaces u's entire out-neighbour set with a sorted, deduplicated
// copy of s. It panics if s contains u or an out-of-range vertex. A
// rewrite that leaves the set unchanged is a no-op and does not advance
// the graph generation.
func (g *Digraph) SetOut(u int, s []int) {
	g.check(u)
	ns := make([]int, len(s))
	copy(ns, s)
	sort.Ints(ns)
	w := 0
	for i, v := range ns {
		g.check(v)
		if v == u {
			panic(fmt.Sprintf("graph: self-loop in strategy of %d", u))
		}
		if i > 0 && ns[i-1] == v {
			continue
		}
		ns[w] = v
		w++
	}
	ns = ns[:w]
	old := g.out[u]
	if intsEqual(old, ns) {
		return
	}
	g.out[u] = ns
	g.bump()
	g.touch(u)
	var e arcDelta
	e.owner = int32(u)
	// Symmetric difference of two sorted lists: stamp every changed
	// target and journal both arc targets and net undirected toggles.
	i, j := 0, 0
	for i < len(old) || j < len(ns) {
		switch {
		case j >= len(ns) || (i < len(old) && old[i] < ns[j]):
			v := old[i]
			g.touch(v)
			if g.j != nil {
				e.tgtRem = append(e.tgtRem, int32(v))
				if g.undToggle(u, v) {
					e.undRem = append(e.undRem, normEdge(u, v))
				}
			}
			i++
		case i >= len(old) || ns[j] < old[i]:
			v := ns[j]
			g.touch(v)
			if g.j != nil {
				e.tgtAdd = append(e.tgtAdd, int32(v))
				if g.undToggle(u, v) {
					e.undAdd = append(e.undAdd, normEdge(u, v))
				}
			}
			j++
		default:
			i++
			j++
		}
	}
	if g.j != nil {
		g.record(e)
	}
}

// intsEqual reports whether two sorted int slices are identical.
func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// In returns the sorted list of vertices owning an arc into u.
// This is an O(n+m) scan; callers needing all in-lists should use InLists.
func (g *Digraph) In(u int) []int {
	var in []int
	for v := range g.out {
		if v != u && g.HasArc(v, u) {
			in = append(in, v)
		}
	}
	return in
}

// InLists returns, for every vertex, the sorted list of owners of arcs
// into it, computed in one pass.
func (g *Digraph) InLists() [][]int {
	in := make([][]int, g.n)
	for u, os := range g.out {
		for _, v := range os {
			in[v] = append(in[v], u)
		}
	}
	return in // already sorted: u increases in outer loop
}

// IsBrace reports whether {u,v} is a brace, i.e. both u->v and v->u exist.
func (g *Digraph) IsBrace(u, v int) bool {
	return g.HasArc(u, v) && g.HasArc(v, u)
}

// Braces returns all braces as ordered pairs (u,v) with u < v.
func (g *Digraph) Braces() [][2]int {
	var bs [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			if v > u && g.HasArc(v, u) {
				bs = append(bs, [2]int{u, v})
			}
		}
	}
	return bs
}

// Clone returns a deep copy of the graph. The clone keeps the source's
// generation stamps and content anchor (so caches keyed on the anchor
// still match until either copy mutates) but gets a fresh instance
// identity and no journal.
func (g *Digraph) Clone() *Digraph {
	c := NewDigraph(g.n)
	for u, os := range g.out {
		c.out[u] = append([]int(nil), os...)
	}
	c.gen = g.gen
	copy(c.nodeGen, g.nodeGen)
	c.src = g.src
	c.srcGen = g.srcGen
	return c
}

// Equal reports whether g and h have identical vertex counts and arc sets.
func (g *Digraph) Equal(h *Digraph) bool {
	if g.n != h.n {
		return false
	}
	for u := range g.out {
		if len(g.out[u]) != len(h.out[u]) {
			return false
		}
		for i, v := range g.out[u] {
			if h.out[u][i] != v {
				return false
			}
		}
	}
	return true
}

// String renders the arc lists, one vertex per line, for debugging.
func (g *Digraph) String() string {
	s := fmt.Sprintf("Digraph(n=%d, m=%d)", g.n, g.ArcCount())
	for u, os := range g.out {
		if len(os) > 0 {
			s += fmt.Sprintf("\n  %d -> %v", u, os)
		}
	}
	return s
}

func (g *Digraph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}
