package graph

import (
	"math/rand"
	"testing"
)

// wRows fills a fresh offset-adjusted weighted distance matrix over c.
func wRows(c *WCSR, off []int32) []int32 {
	n := c.N()
	rows := make([]int32, n*n)
	c.DistanceRowsInto(rows, off)
	return rows
}

func TestWeightsDeterminismAndSet(t *testing.T) {
	w := NewWeights(16, 7, 9)
	for u := 0; u < 16; u++ {
		for v := 0; v < 16; v++ {
			got := w.Of(u, v)
			if u == v {
				if got != 0 {
					t.Fatalf("Of(%d,%d) = %d, want 0", u, v, got)
				}
				continue
			}
			if got < 1 || got > 9 {
				t.Fatalf("Of(%d,%d) = %d out of [1,9]", u, v, got)
			}
			if sym := w.Of(v, u); sym != got {
				t.Fatalf("asymmetric: Of(%d,%d)=%d, Of(%d,%d)=%d", u, v, got, v, u, sym)
			}
		}
	}
	w2 := NewWeights(16, 7, 9)
	if w2.Of(3, 11) != w.Of(3, 11) {
		t.Fatal("same seed, different base weight")
	}
	if err := w.Set(2, 2, 1); err == nil {
		t.Fatal("Set on a self-pair succeeded")
	}
	if err := w.Set(0, 1, 0); err == nil {
		t.Fatal("Set below 1 succeeded")
	}
	if err := w.Set(0, 1, 10); err == nil {
		t.Fatal("Set above MaxW succeeded")
	}
	g0 := w.Gen()
	if err := w.Set(0, 1, w.Of(0, 1)); err != nil || w.Gen() != g0 {
		t.Fatalf("no-op Set: err=%v gen %d -> %d", err, g0, w.Gen())
	}
	if err := w.Set(1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if w.Of(0, 1) != 5 || w.Of(1, 0) != 5 {
		t.Fatalf("override not symmetric: %d / %d", w.Of(0, 1), w.Of(1, 0))
	}
	if w.Gen() != g0+1 {
		t.Fatalf("gen = %d, want %d", w.Gen(), g0+1)
	}
}

func TestWeightsChangesSince(t *testing.T) {
	w := NewWeights(8, 1, 100)
	base01 := w.Of(0, 1)
	g0 := w.Gen()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.Set(0, 1, 40))
	must(w.Set(0, 1, 60)) // nets to base01 -> 60
	must(w.Set(2, 3, 10))
	must(w.Set(2, 3, w.baseOf(2, 3))) // cancels if base was not 10
	ch, ok := w.ChangesSince(g0)
	if !ok {
		t.Fatal("log should cover the gap")
	}
	found01 := false
	for _, c := range ch {
		if c.U == 0 && c.V == 1 {
			found01 = true
			if c.Old != base01 || c.New != 60 {
				t.Fatalf("netted {0,1} = %+v, want old %d new 60", c, base01)
			}
		}
		if c.U == 2 && c.V == 3 && c.Old == c.New {
			t.Fatalf("cancelled pair survived: %+v", c)
		}
	}
	if !found01 {
		t.Fatalf("missing {0,1} in %+v", ch)
	}
	if ch2, ok := w.ChangesSince(w.Gen()); !ok || len(ch2) != 0 {
		t.Fatalf("ChangesSince(now) = %v, %v", ch2, ok)
	}
	// Overflow the bounded log: a generation before the retained window
	// must report ok=false.
	small := NewWeights(2, 0, 1000)
	start := small.Gen()
	val := int32(1)
	for i := 0; i < small.logCap+small.logCap/2+4; i++ {
		val++
		must(small.Set(0, 1, val))
	}
	if _, ok := small.ChangesSince(start); ok {
		t.Fatal("overflowed log still claimed coverage")
	}
	if _, ok := small.ChangesSince(small.Gen() - 1); !ok {
		t.Fatal("recent generation not covered after overflow")
	}
}

// The Δ-stepping fill, the scalar Dijkstra reference, and (at unit
// weights) the unweighted BFS must agree cell for cell, with and
// without an excluded vertex and across weight ranges.
func TestSteppingMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(32)
		d := randomDigraphFor(n, 3, rng)
		a := d.Underlying()
		maxW := []int32{1, 2, 7, 100}[rng.Intn(4)]
		wts := NewWeights(n, rng.Int63(), maxW)
		u := rng.Intn(n)
		c := NewWCSRExcluding(a, wts, u)
		got := wRows(c, nil)
		want := make([]int32, n*n)
		ws := newWScratch(c.MaxW)
		for s := 0; s < n; s++ {
			c.dijkstraRow(int32(s), want[s*n:(s+1)*n], 0, ws)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d maxW=%d u=%d cell (%d,%d): stepping %d, dijkstra %d",
					n, maxW, u, i/n, i%n, got[i], want[i])
			}
		}
		if maxW == 1 {
			bfs := NewCSRExcluding(a, u).DistanceRows()
			for i := range bfs {
				if got[i] != bfs[i] {
					t.Fatalf("unit weights diverge from BFS at cell (%d,%d): %d vs %d",
						i/n, i%n, got[i], bfs[i])
				}
			}
		}
	}
}

// BBNCG_WSTEP=0 must route fills through the reference path with
// bit-identical output.
func TestWStepKnob(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	d := randomDigraphFor(24, 3, rng)
	wts := NewWeights(24, 9, 13)
	c := NewWCSRExcluding(d.Underlying(), wts, 5)
	on := wRows(c, nil)
	t.Setenv("BBNCG_WSTEP", "0")
	if WStepEnabled() {
		t.Fatal("WStepEnabled with BBNCG_WSTEP=0")
	}
	off := wRows(c, nil)
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("knob changed cell %d: %d vs %d", i, on[i], off[i])
		}
	}
}

// Offset-adjusted fills must equal the zero-offset fill shifted row by
// row — the encoding the deviation cache relies on.
func TestWeightedOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := 20
	d := randomDigraphFor(n, 3, rng)
	wts := NewWeights(n, 3, 9)
	c := NewWCSRExcluding(d.Underlying(), wts, 0)
	off := make([]int32, n)
	for v := range off {
		off[v] = int32(rng.Intn(9))
	}
	plain := wRows(c, nil)
	adj := wRows(c, off)
	for v := 0; v < n; v++ {
		row := append([]int32(nil), plain[v*n:(v+1)*n]...)
		ShiftRow(row, off[v])
		for w := 0; w < n; w++ {
			if adj[v*n+w] != row[w] {
				t.Fatalf("row %d cell %d: adjusted %d, shifted %d", v, w, adj[v*n+w], row[w])
			}
		}
	}
}

// weightSnapshot materialises every pair weight so a mutation stream's
// removed edges can be labelled with the weights the rows were built on.
func weightSnapshot(wts *Weights) map[[2]int32]int32 {
	snap := make(map[[2]int32]int32)
	n := wts.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			snap[[2]int32{int32(u), int32(v)}] = wts.Of(u, v)
		}
	}
	return snap
}

// weightedDelta builds the removed/added WEdge lists of a combined
// topology + weight mutation: removed edges carry their old weight,
// added edges the new one, and surviving edges whose weight moved are
// expressed as removed(old) + added(new).
func weightedDelta(old, cur Und, skip int, snap map[[2]int32]int32, wts *Weights) (removed, added []WEdge) {
	rp, ap := DiffUnd(old, cur, skip)
	for _, e := range rp {
		removed = append(removed, WEdge{A: e[0], B: e[1], W: snap[e]})
	}
	for _, e := range ap {
		added = append(added, WEdge{A: e[0], B: e[1], W: wts.Of(int(e[0]), int(e[1]))})
	}
	for v := 0; v < len(old); v++ {
		for _, w := range old[v] {
			if w <= v || v == skip || w == skip || !cur.HasEdge(v, w) {
				continue
			}
			key := [2]int32{int32(v), int32(w)}
			if nw := wts.Of(v, w); nw != snap[key] {
				removed = append(removed, WEdge{A: key[0], B: key[1], W: snap[key]})
				added = append(added, WEdge{A: key[0], B: key[1], W: nw})
			}
		}
	}
	return removed, added
}

func checkWeightedRepair(t *testing.T, old, cur Und, skip int, snap map[[2]int32]int32, wts *Weights) {
	t.Helper()
	n := len(old)
	oldCSR := &WCSR{MaxW: wts.MaxW()}
	// Build the old WCSR against the snapshot weights by hand.
	{
		indptr := make([]int32, n+1)
		var nbrs, ws []int32
		for v, nb := range old {
			if v != skip {
				for _, w := range nb {
					if w != skip {
						nbrs = append(nbrs, int32(w))
						lo, hi := int32(v), int32(w)
						if lo > hi {
							lo, hi = hi, lo
						}
						ws = append(ws, snap[[2]int32{lo, hi}])
					}
				}
			}
			indptr[v+1] = int32(len(nbrs))
		}
		oldCSR.Indptr, oldCSR.Nbrs, oldCSR.W = indptr, nbrs, ws
	}
	rows := wRows(oldCSR, nil)
	newCSR := NewWCSRExcluding(cur, wts, skip)
	removed, added := weightedDelta(old, cur, skip, snap, wts)
	st := newCSR.RepairRowsWeighted(rows, nil, removed, added, NewWDeltaScratch(n))
	want := make([]int32, n*n)
	ws := newWScratch(newCSR.MaxW)
	for s := 0; s < n; s++ {
		newCSR.dijkstraRow(int32(s), want[s*n:(s+1)*n], 0, ws)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("skip=%d cell (%d,%d): repaired %d, refilled %d (removed=%v added=%v stats=%+v)",
				skip, i/n, i%n, rows[i], want[i], removed, added, st)
		}
	}
}

// Weighted repair after mixed topology moves and weight changes must be
// bit-identical to a fresh Dijkstra refill, at every damage level.
func TestRepairRowsWeightedMatchesRefill(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(28)
		d := randomDigraphFor(n, 3, rng)
		maxW := []int32{1, 3, 9, 50}[rng.Intn(4)]
		wts := NewWeights(n, rng.Int63(), maxW)
		old := d.Underlying().Clone()
		snap := weightSnapshot(wts)
		if rng.Intn(2) == 0 {
			mutateOneOwner(d, rng)
		}
		for k := rng.Intn(3); k > 0; k-- {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = wts.Set(u, v, 1+int32(rng.Intn(int(maxW))))
			}
		}
		cur := d.Underlying()
		checkWeightedRepair(t, old, cur, -1, snap, wts) // no exclusion
		checkWeightedRepair(t, old, cur, rng.Intn(n), snap, wts)
	}
}

// The refill-fraction fallback and the never-refill path must agree.
func TestRepairRowsWeightedThresholdPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	defer func(f float64) { RepairRefillFraction = f }(RepairRefillFraction)
	for _, frac := range []float64{0, 1} {
		RepairRefillFraction = frac
		for trial := 0; trial < 50; trial++ {
			n := 2 + rng.Intn(20)
			d := randomDigraphFor(n, 2, rng)
			wts := NewWeights(n, rng.Int63(), 7)
			old := d.Underlying().Clone()
			snap := weightSnapshot(wts)
			mutateOneOwner(d, rng)
			checkWeightedRepair(t, old, d.Underlying(), -1, snap, wts)
		}
	}
}

// FuzzWeightedRepair drives the weighted incremental-repair path with
// fuzz-chosen graphs, weights and mutation streams: the repaired matrix
// must equal a scalar Dijkstra refill bit for bit — the weighted
// analogue of FuzzDeltaBFS.
func FuzzWeightedRepair(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, d := decodeGraph(data)
		if d == nil {
			return
		}
		n := d.N()
		maxW := int32(1)
		seed := int64(0)
		if len(data) > 1 {
			maxW = int32(data[1])%100 + 1
			seed = int64(data[1])
		}
		wts := NewWeights(n, seed, maxW)
		old := d.Underlying().Clone()
		snap := weightSnapshot(wts)
		// Consume the tail alternately as weight sets and one topology
		// move, mirroring the serve/dynamics mutation mix.
		m := 0
		var out []int
		if len(data) > 2 {
			m = int(data[2]) % n
			have := make([]bool, n)
			for i, b := range data[3:] {
				v := int(b) % n
				if i%3 == 2 {
					// Weight mutation on a fuzz-chosen pair.
					u2 := int(b) % n
					v2 := (int(b) / 7) % n
					if u2 != v2 {
						_ = wts.Set(u2, v2, int32(b)%maxW+1)
					}
					continue
				}
				if v != m && !have[v] {
					have[v] = true
					out = append(out, v)
				}
			}
			d.SetOut(m, out)
		}
		cur := d.Underlying()
		for _, skip := range []int{-1, m % n} {
			checkWeightedRepair(t, old, cur, skip, snap, wts)
		}
	})
}
