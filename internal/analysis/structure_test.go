package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
)

func TestAuditUnitBudgetCycle(t *testing.T) {
	d, _, err := construct.UnitCycle(5)
	if err != nil {
		t.Fatal(err)
	}
	audit := AuditUnitBudget(d)
	if !audit.Connected || !audit.UniqueOutOnes {
		t.Fatalf("audit = %+v", audit)
	}
	if audit.CycleLen != 5 || audit.MaxDistToCyc != 0 {
		t.Fatalf("cycle audit wrong: %+v", audit)
	}
	if !audit.SatisfiesSUM || !audit.SatisfiesMAX {
		t.Fatalf("C_5 satisfies both structures: %+v", audit)
	}
}

func TestAuditUnitBudgetSatellite(t *testing.T) {
	d, _, err := construct.UnitSatellite(12, 6)
	if err != nil {
		t.Fatal(err)
	}
	audit := AuditUnitBudget(d)
	if audit.CycleLen != 6 || audit.MaxDistToCyc != 1 {
		t.Fatalf("satellite audit wrong: %+v", audit)
	}
	if audit.SatisfiesSUM {
		t.Fatal("cycle length 6 must fail the SUM structure")
	}
	if !audit.SatisfiesMAX {
		t.Fatal("cycle length 6, distance 1 satisfies the MAX structure")
	}
}

func TestAuditUnitBudgetRejectsNonUnit(t *testing.T) {
	d := graph.StarGraph(4)
	audit := AuditUnitBudget(d)
	if audit.UniqueOutOnes {
		t.Fatal("star centre owns 3 arcs; not a unit profile")
	}
}

// The paper's Theorem 4.1/4.2 applied to dynamics: every exact-responder
// equilibrium of (1,...,1)-BG must pass the audit for its version.
func TestUnitEquilibriaFromDynamicsSatisfyStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		for _, n := range []int{5, 8, 12} {
			g := core.UniformGame(n, 1, ver)
			for trial := 0; trial < 5; trial++ {
				res, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
					Responder:   core.ExactResponder(0),
					DetectLoops: true,
					MaxRounds:   500,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					continue
				}
				audit := AuditUnitBudget(res.Final)
				if ver == core.SUM && !audit.SatisfiesSUM {
					t.Fatalf("SUM n=%d trial %d: equilibrium violates Theorem 4.1: %+v\n%v",
						n, trial, audit, res.Final)
				}
				if ver == core.MAX && !audit.SatisfiesMAX {
					t.Fatalf("MAX n=%d trial %d: equilibrium violates Theorem 4.2: %+v\n%v",
						n, trial, audit, res.Final)
				}
			}
		}
	}
}

func TestAuditTreeSumPathBinaryTree(t *testing.T) {
	d, _, err := construct.PerfectBinaryTree(4)
	if err != nil {
		t.Fatal(err)
	}
	audit, err := AuditTreeSumPath(d)
	if err != nil {
		t.Fatal(err)
	}
	if audit.Diameter != 8 {
		t.Fatalf("diameter = %d, want 8", audit.Diameter)
	}
	if !audit.InequalityOK {
		t.Fatalf("binary tree (a SUM equilibrium) violates inequality (1): %+v", audit)
	}
}

func TestAuditTreeSumPathSpiderFails(t *testing.T) {
	// The large spider is NOT a SUM equilibrium; the necessary inequality
	// must fail along its longest path.
	d, _, err := construct.Spider(8)
	if err != nil {
		t.Fatal(err)
	}
	audit, err := AuditTreeSumPath(d)
	if err != nil {
		t.Fatal(err)
	}
	if audit.InequalityOK {
		t.Fatalf("spider passes inequality (1) despite non-equilibrium: %+v", audit)
	}
}

func TestAuditTreeSumPathSubtreeSizesSum(t *testing.T) {
	d, _, err := construct.PerfectBinaryTree(3)
	if err != nil {
		t.Fatal(err)
	}
	audit, err := AuditTreeSumPath(d)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range audit.SubtreeSizes {
		total += s
	}
	if total != d.N() {
		t.Fatalf("subtree sizes sum to %d, want n = %d", total, d.N())
	}
}

func TestAuditTreeSumPathRejectsNonTree(t *testing.T) {
	if _, err := AuditTreeSumPath(graph.CycleGraph(5)); err == nil {
		t.Fatal("cycle accepted as tree")
	}
	d := graph.NewDigraph(4)
	d.AddArc(0, 1)
	if _, err := AuditTreeSumPath(d); err == nil {
		t.Fatal("disconnected graph accepted as tree")
	}
}

func TestAuditConnectivity(t *testing.T) {
	// K5 with budget 2: 4-connected, diameter 1 -> satisfied twice over.
	d := graph.CompleteDigraph(5)
	audit := AuditConnectivity(d, 2)
	if !audit.Satisfied || !audit.KConn || audit.Diameter != 1 {
		t.Fatalf("K5 audit = %+v", audit)
	}
	// Long path with budget 1: diameter >= 4 and only 1-connected, so the
	// dichotomy for k=2 must fail (the path is not a SUM equilibrium with
	// budgets >= 2 anyway; the audit just measures).
	p := graph.PathGraph(8)
	audit = AuditConnectivity(p, 2)
	if audit.Satisfied {
		t.Fatalf("path audit should fail for k=2: %+v", audit)
	}
	if !AuditConnectivity(p, 1).Satisfied {
		t.Fatal("path is 1-connected; k=1 dichotomy holds")
	}
}
