// Package basic implements the baseline the paper compares against:
// the *basic network creation games* of Alon, Demaine, Hajiaghayi and
// Leighton (SPAA 2010). The graph is undirected with no link ownership;
// any vertex may swap any single edge incident to it (replace {u,v} by
// {u,w}); a graph is a swap equilibrium if no vertex benefits from any
// such swap.
//
// The paper's headline contrast (Section 1.1): in the basic MAX version
// every tree swap equilibrium has diameter at most 3, whereas the
// bounded-budget MAX game has tree equilibria of diameter Theta(n) (the
// spider). This package reproduces the baseline side of that contrast.
package basic

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// Game selects the cost version for the basic (ownerless) game.
type Game struct {
	Version core.Version
}

// Cost of vertex u in the undirected graph a: eccentricity (MAX) or
// total distance (SUM), with unreachable vertices charged n^2 each, in
// the spirit of the bounded-budget game's C_inf (Alon et al. only treat
// connected graphs; swaps in this package never disconnect thanks to the
// penalty dominating every finite improvement).
func (g Game) Cost(a graph.Und, u int) int64 {
	n := len(a)
	s := graph.NewScratch(n)
	r := s.BFS(a, u)
	pen := int64(n) * int64(n)
	switch g.Version {
	case core.SUM:
		return r.Sum + int64(n-r.Reached)*pen
	case core.MAX:
		if r.Reached != n {
			return pen
		}
		return int64(r.Ecc)
	default:
		panic("basic: unknown version")
	}
}

// Swap is a single-edge move by a vertex: drop {U, Drop}, add {U, Add}.
type Swap struct {
	U, Drop, Add     int
	OldCost, NewCost int64
}

func (s Swap) String() string {
	return fmt.Sprintf("vertex %d swaps edge to %d for edge to %d: cost %d -> %d",
		s.U, s.Drop, s.Add, s.OldCost, s.NewCost)
}

// BestSwap returns the best improving single-edge swap available to u,
// or nil if none improves. The adjacency is not modified.
func (g Game) BestSwap(a graph.Und, u int) *Swap {
	n := len(a)
	cur := g.Cost(a, u)
	var best *Swap
	work := a.Clone()
	for _, v := range a[u] {
		removeEdge(work, u, v)
		for w := 0; w < n; w++ {
			if w == u || w == v || a.HasEdge(u, w) {
				continue
			}
			addEdge(work, u, w)
			c := g.Cost(work, u)
			removeEdge(work, u, w)
			if c < cur && (best == nil || c < best.NewCost) {
				best = &Swap{U: u, Drop: v, Add: w, OldCost: cur, NewCost: c}
			}
		}
		addEdge(work, u, v)
	}
	return best
}

// IsSwapEquilibrium reports whether no vertex has an improving swap,
// returning a witness otherwise.
func (g Game) IsSwapEquilibrium(a graph.Und) *Swap {
	for u := range a {
		if sw := g.BestSwap(a, u); sw != nil {
			return sw
		}
	}
	return nil
}

// Result summarises a run of basic swap dynamics.
type Result struct {
	Converged bool
	Rounds    int
	Moves     int
	Final     graph.Und
}

// SwapDynamics runs rounds of best-swap moves in random vertex order
// until no vertex can improve or maxRounds elapses. Alon et al. note
// these dynamics need not terminate in general; in practice (and in all
// experiments here) they do, and the cost penalty keeps the graph
// connected once connected.
func (g Game) SwapDynamics(a graph.Und, rng *rand.Rand, maxRounds int) Result {
	work := a.Clone()
	n := len(work)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if maxRounds <= 0 {
		maxRounds = 500
	}
	res := Result{}
	for round := 1; round <= maxRounds; round++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		changed := false
		for _, u := range order {
			if sw := g.BestSwap(work, u); sw != nil {
				removeEdge(work, sw.U, sw.Drop)
				addEdge(work, sw.U, sw.Add)
				res.Moves++
				changed = true
			}
		}
		res.Rounds = round
		if !changed {
			res.Converged = true
			break
		}
	}
	res.Final = work
	return res
}

// removeEdge / addEdge keep neighbour lists sorted.
func removeEdge(a graph.Und, u, v int) {
	a[u] = removeSorted(a[u], v)
	a[v] = removeSorted(a[v], u)
}

func addEdge(a graph.Und, u, v int) {
	a[u] = insertSorted(a[u], v)
	a[v] = insertSorted(a[v], u)
}

func removeSorted(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func insertSorted(s []int, v int) []int {
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
