// Command bbncg regenerates every table and figure of "On a Bounded
// Budget Network Creation Game" (SPAA 2011) from the library's exact
// simulators. Each subcommand corresponds to one evaluation artifact;
// `bbncg all` reproduces everything.
//
// Usage:
//
//	bbncg [-full] [-csv] [-seed N] <command>
//
// Commands:
//
//	table1   all four rows of Table 1 (both MAX and SUM columns)
//	fig1     the Figure 1 existence construction (n=22)
//	fig2     the Figure 2 spider (MAX tree equilibrium, diameter Theta(n))
//	fig3     the Figure 3 subtree-weight audit (SUM trees, Theta(log n))
//	unit     the all-unit-budgets dynamics sweep (Theorems 4.1/4.2)
//	shift    the shift-graph lower bound (Lemma 5.2 / Theorem 5.3)
//	sumupper the SUM upper-bound sweep (Theorem 6.9)
//	exist    Theorem 2.3 existence + price-of-stability sweep
//	nphard   Theorem 2.1 best-response <-> k-center/k-median cross-check
//	conn     Theorem 7.2 connectivity dichotomy sweep
//	dyn      Section 8 convergence statistics
//	all      everything above in paper order
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	full := flag.Bool("full", false, "run the full sweep ranges from EXPERIMENTS.md (slower)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := flag.Int64("seed", 1, "seed for randomized sweeps")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	effort := experiments.Quick
	if *full {
		effort = experiments.Full
	}
	app := &app{out: os.Stdout, effort: effort, csv: *csv, seed: *seed}
	if err := app.run(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "bbncg: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: bbncg [-full] [-csv] [-seed N] <command>

commands:
  table1    reproduce Table 1 (all rows, both versions)
  fig1      Figure 1: Theorem 2.3 case-2 equilibrium (n=22)
  fig2      Figure 2: spider MAX tree equilibrium
  fig3      Figure 3: subtree weights along a longest path
  unit      all-unit-budget dynamics (Theorems 4.1/4.2)
  shift     shift-graph lower bound (Lemma 5.2/Theorem 5.3)
  sumupper  SUM diameter upper-bound sweep (Theorem 6.9)
  exist     existence & price of stability (Theorem 2.3)
  nphard    NP-hardness reduction cross-check (Theorem 2.1)
  conn      connectivity dichotomy (Theorem 7.2)
  dyn       convergence statistics (Section 8)
  poa       exact PoA/PoS by exhaustive profile enumeration (small n)
  uniform   the Section 8 uniform-budget (B > 1) open problem
  baseline  contrast with basic network creation games (Alon et al.)
  weak      Section 6 machinery audits (tree balls, rich leaves, folding)
  simul     sequential vs simultaneous dynamics (Section 8)
  fip       exact finite-improvement-property analysis (Section 8)
  directed  contrast with the directed BBC game (Laoutaris et al.)
  robust    dynamics robustness across initial overlay families
  treedyn   dynamics on random Tree-BG instances (Section 3 empirics)
  all       everything, in paper order
`)
}

type app struct {
	out    io.Writer
	effort experiments.Effort
	csv    bool
	seed   int64
}

func (a *app) emit(t *sweep.Table) error {
	var err error
	if a.csv {
		err = t.CSV(a.out)
	} else {
		err = t.Render(a.out)
	}
	if err == nil {
		_, err = fmt.Fprintln(a.out)
	}
	return err
}

func (a *app) run(cmd string) error {
	switch cmd {
	case "table1":
		return a.table1()
	case "fig1":
		t, err := experiments.Figure1()
		if err != nil {
			return err
		}
		return a.emit(t)
	case "fig2":
		k := 5
		if a.effort == experiments.Full {
			k = 16
		}
		t, err := experiments.Figure2(k)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "fig3":
		k := 4
		if a.effort == experiments.Full {
			k = 7
		}
		t, err := experiments.Figure3(k)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "unit":
		return a.unit()
	case "shift":
		t, err := experiments.Table1PositiveMAX(a.effort)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "sumupper":
		return a.sumUpper()
	case "exist":
		t, err := experiments.Existence(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "nphard":
		t, err := experiments.Reduction(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "conn":
		t, err := experiments.Connectivity(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "dyn":
		t, err := experiments.DynamicsStats(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "poa":
		t, err := experiments.ExactPoA(a.effort)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "uniform":
		t, err := experiments.UniformBudget(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "baseline":
		t, err := experiments.BaselineContrast(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "weak":
		t, err := experiments.WeakMachinery(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "simul":
		t, err := experiments.SimultaneousContrast(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "fip":
		t, err := experiments.FIP(a.effort)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "directed":
		t, err := experiments.DirectedContrast(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "robust":
		t, err := experiments.Robustness(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "treedyn":
		t, err := experiments.TreeDynamics(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "all":
		return a.all()
	default:
		return fmt.Errorf("unknown command %q (run with no arguments for usage)", cmd)
	}
}

func (a *app) table1() error {
	t, err := experiments.Table1TreesMAX(a.effort)
	if err != nil {
		return err
	}
	if err := a.emit(t); err != nil {
		return err
	}
	t, err = experiments.Table1TreesSUM(a.effort)
	if err != nil {
		return err
	}
	if err := a.emit(t); err != nil {
		return err
	}
	if err := a.unit(); err != nil {
		return err
	}
	t, err = experiments.Table1PositiveMAX(a.effort)
	if err != nil {
		return err
	}
	if err := a.emit(t); err != nil {
		return err
	}
	return a.sumUpper()
}

func (a *app) unit() error {
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		t, _, err := experiments.Table1Unit(ver, a.effort, a.seed)
		if err != nil {
			return err
		}
		if err := a.emit(t); err != nil {
			return err
		}
	}
	return nil
}

func (a *app) sumUpper() error {
	t, ns, diams, err := experiments.Table1GeneralSUM(a.effort, a.seed)
	if err != nil {
		return err
	}
	if err := a.emit(t); err != nil {
		return err
	}
	if len(ns) >= 2 {
		fits, err := analysis.FitGrowth(ns, diams)
		if err != nil {
			return err
		}
		ft := sweep.NewTable("growth-law fit of SUM equilibrium diameters", "model", "coefficient", "rel-RMSE")
		for _, f := range fits {
			ft.Addf(f.Model, f.Coefficient, f.RelRMSE)
		}
		return a.emit(ft)
	}
	return nil
}

func (a *app) all() error {
	steps := []string{"fig1", "fig2", "fig3", "table1", "exist", "nphard",
		"conn", "dyn", "poa", "uniform", "baseline", "weak", "simul", "fip", "directed", "robust", "treedyn"}
	for _, s := range steps {
		if err := a.run(s); err != nil {
			return fmt.Errorf("%s: %w", s, err)
		}
	}
	return nil
}
