package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// Integration: every subcommand must run at Quick effort, produce output
// containing its headline, and return no error. This exercises the full
// CLI glue (experiment -> table -> renderer) end to end.
func TestAllSubcommandsQuick(t *testing.T) {
	cases := []struct {
		cmd    string
		needle string
	}{
		{"fig1", "Figure 1"},
		{"fig2", "Figure 2"},
		{"fig3", "Figure 3"},
		{"unit", "All-Unit"},
		{"shift", "All-Positive"},
		{"sumupper", "General, SUM"},
		{"exist", "Theorem 2.3"},
		{"nphard", "Theorem 2.1"},
		{"conn", "Theorem 7.2"},
		{"dyn", "Section 8"},
		{"poa", "Exact equilibrium landscape"},
		{"uniform", "uniform budgets"},
		{"baseline", "basic (swap)"},
		{"weak", "Section 6"},
		{"simul", "simultaneous"},
		{"fip", "finite improvement"},
		{"directed", "Directed"},
		{"robust", "Robustness"},
	}
	for _, c := range cases {
		var sb strings.Builder
		a := &app{out: &sb, effort: experiments.Quick, seed: 1}
		if err := a.run(c.cmd); err != nil {
			t.Fatalf("%s: %v", c.cmd, err)
		}
		if !strings.Contains(sb.String(), c.needle) {
			t.Fatalf("%s: output missing %q:\n%s", c.cmd, c.needle, sb.String())
		}
	}
}

func TestTable1Subcommand(t *testing.T) {
	var sb strings.Builder
	a := &app{out: &sb, effort: experiments.Quick, seed: 1}
	if err := a.run("table1"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, needle := range []string{"Trees, MAX", "Trees, SUM", "All-Unit, SUM",
		"All-Unit, MAX", "All-Positive, MAX", "General, SUM", "growth-law"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("table1 output missing %q", needle)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var sb strings.Builder
	a := &app{out: &sb, effort: experiments.Quick, csv: true, seed: 1}
	if err := a.run("fig2"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "quantity,value") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Fatal("CSV output contains table decoration")
	}
}

func TestUnknownCommand(t *testing.T) {
	a := &app{out: &strings.Builder{}, effort: experiments.Quick, seed: 1}
	if err := a.run("bogus"); err == nil {
		t.Fatal("unknown command accepted")
	}
}
