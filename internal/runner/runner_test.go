package runner

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/store"
)

type val struct {
	K int `json:"k"`
	S int `json:"s"`
}

// testJob squares each point's k; evals counts actual evaluations so
// resume tests can assert that stored points are never recomputed.
func testJob(n int, evals *int64) Job {
	points := make([]Point, n)
	for i := range points {
		points[i] = Point{Exp: "square", Key: fmt.Sprintf("k=%d", i), Seed: 1, Data: i}
	}
	return Job{
		Exp:    "square",
		Points: points,
		Eval: func(p Point) (any, error) {
			atomic.AddInt64(evals, 1)
			k := p.Data.(int)
			return val{K: k, S: k * k}, nil
		},
	}
}

func TestPointIDDeterministic(t *testing.T) {
	a := Point{Exp: "e", Key: "k=1", Seed: 7}
	b := Point{Exp: "e", Key: "k=1", Seed: 7}
	if a.ID() != b.ID() {
		t.Fatal("same point, different IDs")
	}
	for _, other := range []Point{
		{Exp: "e2", Key: "k=1", Seed: 7},
		{Exp: "e", Key: "k=2", Seed: 7},
		{Exp: "e", Key: "k=1", Seed: 8},
	} {
		if a.ID() == other.ID() {
			t.Fatalf("distinct point %+v collides with %+v", other, a)
		}
	}
	if len(a.ID()) != 32 {
		t.Fatalf("ID length = %d", len(a.ID()))
	}
}

func TestRunInMemory(t *testing.T) {
	var evals int64
	rep, err := Run(testJob(10, &evals), nil, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated != 10 || rep.Skipped != 0 {
		t.Fatalf("report = %+v", rep)
	}
	rows, err := DecodeAll[val](rep.Values)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.K != i || r.S != i*i {
			t.Fatalf("row %d = %+v", i, r)
		}
	}
}

func TestRunStoresAndResumes(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var evals int64
	rep1, err := Run(testJob(8, &evals), st, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Evaluated != 8 || evals != 8 {
		t.Fatalf("first run: %+v evals=%d", rep1, evals)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume over a reopened store: nothing may be re-evaluated.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rep2, err := Run(testJob(8, &evals), st2, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Evaluated != 0 || rep2.Skipped != 8 || evals != 8 {
		t.Fatalf("resumed run: %+v evals=%d", rep2, evals)
	}
	for i := range rep1.Values {
		if string(rep1.Values[i]) != string(rep2.Values[i]) {
			t.Fatalf("value %d differs across resume:\n%s\n%s", i, rep1.Values[i], rep2.Values[i])
		}
	}

	// A grown point list evaluates exactly the new points.
	rep3, err := Run(testJob(12, &evals), st2, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Evaluated != 4 || rep3.Skipped != 8 || evals != 12 {
		t.Fatalf("grown run: %+v evals=%d", rep3, evals)
	}
}

func TestMerge(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var evals int64
	job := testJob(5, &evals)
	if _, err := Merge(job, st); err == nil {
		t.Fatal("merge of an empty store succeeded")
	}
	if _, err := Run(job, st, Options{}); err != nil {
		t.Fatal(err)
	}
	rep, err := Merge(job, st)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 5 || rep.Evaluated != 0 || evals != 5 {
		t.Fatalf("merge report = %+v evals=%d", rep, evals)
	}
}

// TestCrashMidSweepThenResume kills a run logically (one point errors,
// aborting the sweep after others already streamed to the store) and
// resumes: the store keeps every completed point, and the resumed run
// evaluates exactly the remainder.
func TestCrashMidSweepThenResume(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var evals int64
	job := testJob(6, &evals)
	goodEval := job.Eval
	job.Eval = func(p Point) (any, error) {
		if p.Data.(int) == 4 {
			return nil, fmt.Errorf("simulated crash")
		}
		return goodEval(p)
	}
	if _, err := Run(job, st, Options{Workers: 1}); err == nil {
		t.Fatal("crashing run succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	survived := st2.Len()
	if survived == 0 || survived >= 6 {
		t.Fatalf("store kept %d records after crash", survived)
	}
	evals = 0
	rep, err := Run(testJob(6, &evals), st2, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != survived || rep.Evaluated != 6-survived || evals != int64(6-survived) {
		t.Fatalf("resume after crash: %+v evals=%d survived=%d", rep, evals, survived)
	}
	rows, err := DecodeAll[val](rep.Values)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.K != i || r.S != i*i {
			t.Fatalf("row %d = %+v", i, r)
		}
	}
}

func TestRunEvalError(t *testing.T) {
	job := Job{
		Exp:    "bad",
		Points: []Point{{Exp: "bad", Key: "k=0", Seed: 1}},
		Eval:   func(Point) (any, error) { return nil, fmt.Errorf("boom") },
	}
	if _, err := Run(job, nil, Options{Workers: 1}); err == nil {
		t.Fatal("eval error swallowed")
	}
}
