// Package bbc implements the *directed* bounded budget connection game
// of Laoutaris, Poplawski, Rajaraman, Sundaram and Teng (PODC 2008), the
// model this paper's game descends from (Section 1.1). The difference is
// link semantics: in BBC a bought arc u->v carries traffic only from u
// toward v (distances are directed), while in the paper's game links are
// usable by both endpoints. Laoutaris et al. proved that best-response
// dynamics in the directed game can cycle; the bidirectional game's
// dynamics converged in every experiment of this repo (and provably so
// at small n, see internal/enumerate's FIP analysis). This package exists
// to reproduce that contrast.
package bbc

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Game is an n-player directed bounded budget connection game with
// uniform or per-player budgets. Player cost is the sum of *directed*
// distances to every other player, with unreachable players charged
// n^2 each (the same C_inf convention as the undirected game, replacing
// the original paper's infinite penalty to keep costs comparable).
type Game struct {
	Budgets []int
}

// NewGame validates budgets (0 <= b_i < n).
func NewGame(budgets []int) (*Game, error) {
	n := len(budgets)
	for i, b := range budgets {
		if b < 0 || b >= n {
			return nil, fmt.Errorf("bbc: budget b[%d]=%d out of range [0,%d)", i, b, n)
		}
	}
	return &Game{Budgets: append([]int(nil), budgets...)}, nil
}

// UniformGame gives every player budget b.
func UniformGame(n, b int) *Game {
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = b
	}
	g, err := NewGame(budgets)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the player count.
func (g *Game) N() int { return len(g.Budgets) }

// Cost returns player u's sum of directed distances in realization d.
func (g *Game) Cost(d *graph.Digraph, u int) int64 {
	n := d.N()
	dist := directedBFS(d, u)
	pen := int64(n) * int64(n)
	var c int64
	for v := 0; v < n; v++ {
		if v == u {
			continue
		}
		if dist[v] < 0 {
			c += pen
		} else {
			c += int64(dist[v])
		}
	}
	return c
}

// directedBFS computes directed distances from src along arcs.
func directedBFS(d *graph.Digraph, src int) []int32 {
	n := d.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range d.Out(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BestResponse enumerates u's strategies exactly and returns a cost
// minimiser with ties broken toward the current strategy.
func (g *Game) BestResponse(d *graph.Digraph, u int) (strategy []int, cost, current int64) {
	n := g.N()
	b := g.Budgets[u]
	current = g.Cost(d, u)
	bestCost := current
	best := append([]int(nil), d.Out(u)...)
	work := d.Clone()
	targets := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != u {
			targets = append(targets, v)
		}
	}
	comb := make([]int, b)
	trial := make([]int, b)
	var rec func(start, at int)
	rec = func(start, at int) {
		if at == b {
			for i, idx := range comb {
				trial[i] = targets[idx]
			}
			work.SetOut(u, trial)
			if c := g.Cost(work, u); c < bestCost {
				bestCost = c
				best = append(best[:0:0], trial...)
			}
			return
		}
		for i := start; i <= len(targets)-(b-at); i++ {
			comb[at] = i
			rec(i+1, at+1)
		}
	}
	rec(0, 0)
	return best, bestCost, current
}

// VerifyNash returns a deviating player and its improving strategy, or
// (-1, nil) if d is a Nash equilibrium of the directed game.
func (g *Game) VerifyNash(d *graph.Digraph) (int, []int) {
	for u := 0; u < g.N(); u++ {
		if g.Budgets[u] == 0 {
			continue
		}
		s, c, cur := g.BestResponse(d, u)
		if c < cur {
			return u, s
		}
	}
	return -1, nil
}

// Result summarises a directed dynamics run.
type Result struct {
	Converged  bool
	Loop       bool
	LoopLength int
	Rounds     int
	Moves      int
	Final      *graph.Digraph
}

// Run executes round-robin best-response dynamics with exact loop
// detection (hash plus full-profile confirmation, as in the undirected
// engine).
func (g *Game) Run(start *graph.Digraph, maxRounds int) (Result, error) {
	n := g.N()
	if start.N() != n {
		return Result{}, fmt.Errorf("bbc: graph has %d vertices, game has %d", start.N(), n)
	}
	for u := 0; u < n; u++ {
		if start.OutDegree(u) != g.Budgets[u] {
			return Result{}, fmt.Errorf("bbc: vertex %d outdegree %d, budget %d", u, start.OutDegree(u), g.Budgets[u])
		}
	}
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	d := start.Clone()
	seen := map[uint64][]snapshot{}
	record(seen, d, 0)
	res := Result{}
	for round := 1; round <= maxRounds; round++ {
		changed := false
		for u := 0; u < n; u++ {
			if g.Budgets[u] == 0 {
				continue
			}
			s, c, cur := g.BestResponse(d, u)
			if c < cur {
				d.SetOut(u, s)
				res.Moves++
				changed = true
			}
		}
		res.Rounds = round
		if !changed {
			res.Converged = true
			break
		}
		if prev, ok := lookup(seen, d); ok {
			res.Loop = true
			res.LoopLength = round - prev
			break
		}
		record(seen, d, round)
	}
	res.Final = d
	return res, nil
}

type snapshot struct {
	d     *graph.Digraph
	round int
}

func hashGraph(d *graph.Digraph) uint64 {
	var h uint64 = 1469598103934665603
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	for u := 0; u < d.N(); u++ {
		for _, v := range d.Out(u) {
			mix(uint64(u)<<32 | uint64(v))
		}
		mix(math.MaxUint64)
	}
	return h
}

func record(seen map[uint64][]snapshot, d *graph.Digraph, round int) {
	h := hashGraph(d)
	seen[h] = append(seen[h], snapshot{d: d.Clone(), round: round})
}

func lookup(seen map[uint64][]snapshot, d *graph.Digraph) (int, bool) {
	for _, s := range seen[hashGraph(d)] {
		if s.d.Equal(d) {
			return s.round, true
		}
	}
	return 0, false
}

// RandomRealization draws a uniformly random valid start.
func (g *Game) RandomRealization(rng *rand.Rand) *graph.Digraph {
	return graph.RandomOutDigraph(g.Budgets, rng)
}
