package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// InfDiameter is returned by Diameter for disconnected or empty graphs.
const InfDiameter int32 = -1

// AllPairs computes all-pairs shortest path distances over the undirected
// adjacency a by running one BFS per source on a worker pool sized by
// GOMAXPROCS. Entry [u][v] is Unreached (-1) if v is not reachable from u.
// The result uses n^2 int32 cells; callers sweeping large n should prefer
// Diameter or per-source BFS.
func AllPairs(a Und) [][]int32 {
	n := len(a)
	dist := make([][]int32, n)
	parallelSources(n, func(s *Scratch, src int) {
		s.BFS(a, src)
		row := make([]int32, n)
		for v := 0; v < n; v++ {
			row[v] = s.Dist(v)
		}
		dist[src] = row
	})
	return dist
}

// Diameter returns the largest finite pairwise distance in a, or
// InfDiameter if the graph is disconnected or empty. It runs parallel
// BFS without materialising the distance matrix.
func Diameter(a Und) int32 {
	n := len(a)
	if n == 0 {
		return InfDiameter
	}
	eccs, connected := Eccentricities(a)
	if !connected {
		return InfDiameter
	}
	d := int32(0)
	for _, e := range eccs {
		if e > d {
			d = e
		}
	}
	return d
}

// Eccentricities returns every vertex's eccentricity (max distance within
// its reached set) and whether the whole graph is connected. It runs on
// the batched eccentricity-only kernel (ecc.go): word-parallel BFS with
// no distance matrix.
func Eccentricities(a Und) (eccs []int32, connected bool) {
	eccs, _, reached := AggregateBFS(a)
	return eccs, allReach(reached, len(a))
}

// TotalDistances returns for every source the sum of distances to all
// reachable vertices, plus a connectivity flag. This is the SUM-version
// cost without the disconnection penalty.
func TotalDistances(a Und) (sums []int64, connected bool) {
	_, sums, reached := AggregateBFS(a)
	return sums, allReach(reached, len(a))
}

// allReach reports whether every source reached all n vertices (false
// for the empty graph, matching the historical connectivity convention).
func allReach(reached []int32, n int) bool {
	if n == 0 {
		return false
	}
	for _, r := range reached {
		if int(r) != n {
			return false
		}
	}
	return true
}

// parallelSources invokes fn once per source vertex on a pool of workers,
// each with a private Scratch. For tiny graphs it runs sequentially to
// avoid goroutine overhead.
func parallelSources(n int, fn func(s *Scratch, src int)) {
	parallelRange(n, 64, func() *Scratch { return NewScratch(n) }, fn)
}

// parallelRange invokes fn once per index in [0, n) on a pool of
// GOMAXPROCS workers, each owning private state built by newState (BFS
// scratch, frontier buffers, ...). Indices are handed out dynamically so
// uneven per-index cost balances across workers. Below minParallel
// indices it runs sequentially; callers pick the cutoff to match the
// per-index work (one BFS per index wants ~64, a whole 64-source batch
// per index is worth fanning out from 2).
func parallelRange[S any](n, minParallel int, newState func() S, fn func(state S, i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if n < minParallel || workers <= 1 {
		state := newState()
		for i := 0; i < n; i++ {
			fn(state, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			state := newState()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(state, i)
			}
		}()
	}
	wg.Wait()
}
