package graph

// Structural decompositions used by the equilibrium analyses: bridges
// and articulation points (every edge of a tree equilibrium is a bridge;
// Theorem 7.2's k-connected equilibria have neither), and degree
// histograms for the sweep reports.

// Bridges returns the bridge edges of the undirected graph as (u,v)
// pairs with u < v, via Tarjan's low-link on an iterative DFS.
func Bridges(a Und) [][2]int {
	n := len(a)
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	var bridges [][2]int
	timer := 0
	type frame struct {
		v, idx int
	}
	for root := 0; root < n; root++ {
		if disc[root] >= 0 {
			continue
		}
		stack := []frame{{v: root}}
		disc[root] = timer
		low[root] = timer
		timer++
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			v := top.v
			if top.idx < len(a[v]) {
				w := a[v][top.idx]
				top.idx++
				if w == parent[v] {
					continue
				}
				if disc[w] >= 0 {
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
					continue
				}
				parent[w] = v
				disc[w] = timer
				low[w] = timer
				timer++
				stack = append(stack, frame{v: w})
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[v]; p >= 0 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] > disc[p] {
					u, w := p, v
					if u > w {
						u, w = w, u
					}
					bridges = append(bridges, [2]int{u, w})
				}
			}
		}
	}
	return bridges
}

// ArticulationPoints returns the cut vertices of the undirected graph.
func ArticulationPoints(a Und) []int {
	n := len(a)
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	childCount := make([]int, n)
	isCut := make([]bool, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := 0
	type frame struct {
		v, idx int
	}
	for root := 0; root < n; root++ {
		if disc[root] >= 0 {
			continue
		}
		stack := []frame{{v: root}}
		disc[root] = timer
		low[root] = timer
		timer++
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			v := top.v
			if top.idx < len(a[v]) {
				w := a[v][top.idx]
				top.idx++
				if w == parent[v] {
					continue
				}
				if disc[w] >= 0 {
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
					continue
				}
				parent[w] = v
				childCount[v]++
				disc[w] = timer
				low[w] = timer
				timer++
				stack = append(stack, frame{v: w})
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[v]; p >= 0 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if parent[p] >= 0 && low[v] >= disc[p] {
					isCut[p] = true
				}
			}
		}
		if childCount[root] >= 2 {
			isCut[root] = true
		}
	}
	var cuts []int
	for v, c := range isCut {
		if c {
			cuts = append(cuts, v)
		}
	}
	return cuts
}

// DegreeHistogram returns counts[d] = number of vertices with degree d.
func DegreeHistogram(a Und) []int {
	counts := make([]int, a.MaxDegree()+1)
	for _, nb := range a {
		counts[len(nb)]++
	}
	return counts
}
