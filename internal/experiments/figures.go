package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sweep"
)

// Figure1 reproduces the printed Figure 1 instance of Theorem 2.3 case 2
// (n=22, z=16, t=19): it rebuilds the construction, lists the arcs by
// construction phase, and verifies the result is a Nash equilibrium of
// both versions with diameter <= 4.
func Figure1() (*sweep.Table, error) {
	budgets := make([]int, 22)
	budgets[16] = 2
	for i := 17; i < 22; i++ {
		budgets[i] = 5
	}
	d, err := construct.Existence(budgets)
	if err != nil {
		return nil, err
	}
	t := sweep.NewTable("Figure 1: Theorem 2.3 case 2 equilibrium (n=22, z=16, t=19)",
		"owner(v_i)", "arcs-to", "budget")
	for u := 0; u < d.N(); u++ {
		if d.OutDegree(u) == 0 {
			continue
		}
		targets := ""
		for i, v := range d.Out(u) {
			if i > 0 {
				targets += " "
			}
			targets += fmt.Sprintf("v%d", v+1)
		}
		t.Addf(fmt.Sprintf("v%d", u+1), targets, budgets[u])
	}
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		g := core.MustGame(budgets, ver)
		dev, err := g.VerifyNash(d, 0)
		if err != nil {
			return nil, err
		}
		if dev != nil {
			return nil, fmt.Errorf("figure 1 graph is not a %v equilibrium: %v", ver, dev)
		}
	}
	diam := graph.Diameter(d.Underlying())
	t.Addf("diameter", fmt.Sprintf("%d (paper: <= 4)", diam), "")
	return t, nil
}

// Figure2 reproduces Figure 2 (the Theorem 3.2 spider) for one k,
// reporting leg structure and the exact-verified equilibrium diameter.
func Figure2(k int) (*sweep.Table, error) {
	d, budgets, err := construct.Spider(k)
	if err != nil {
		return nil, err
	}
	g := core.MustGame(budgets, core.MAX)
	dev, err := g.VerifyNash(d, 0)
	if err != nil {
		return nil, err
	}
	t := sweep.NewTable(fmt.Sprintf("Figure 2: spider tree, k=%d (n=%d)", k, d.N()),
		"quantity", "value")
	t.Addf("legs", 3)
	t.Addf("leg length", k)
	t.Addf("diameter", graph.Diameter(d.Underlying()))
	t.Addf("paper diameter", construct.SpiderDiameter(k))
	t.Addf("MAX Nash verified", yesNo(dev == nil))
	costs := g.AllCosts(d)
	t.Addf("centre local diameter", costs[0])
	t.Addf("leg-end local diameter", costs[k])
	return t, nil
}

// Figure3 reproduces the Figure 3 structure on the Theorem 3.4 binary
// tree: subtree sizes a(i) along the longest path and the inequality (1)
// audit, whose geometric growth is what caps SUM tree equilibria at
// O(log n) diameter.
func Figure3(k int) (*sweep.Table, error) {
	d, _, err := construct.PerfectBinaryTree(k)
	if err != nil {
		return nil, err
	}
	audit, err := analysis.AuditTreeSumPath(d)
	if err != nil {
		return nil, err
	}
	t := sweep.NewTable(fmt.Sprintf("Figure 3: subtree weights along a longest path (binary tree k=%d, n=%d)", k, d.N()),
		"i", "a(i)", "sum a(k), k>i")
	suffix := 0
	suffixes := make([]int, len(audit.SubtreeSizes)+1)
	for i := len(audit.SubtreeSizes) - 1; i >= 0; i-- {
		suffix += audit.SubtreeSizes[i]
		suffixes[i] = suffix
	}
	for i, a := range audit.SubtreeSizes {
		t.Addf(i, a, suffixes[i]-a)
	}
	t.Addf("ineq(1)", yesNo(audit.InequalityOK), "")
	t.Addf("diameter", audit.Diameter, fmt.Sprintf("<= 2t = %d", audit.ImpliedBound))
	return t, nil
}
