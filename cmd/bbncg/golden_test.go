package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// goldenCommands is every subcommand with a stable, deterministic
// Quick-effort output at seed 1. The files under testdata/ were
// captured from the pre-runner monolithic CLI, so these tests prove the
// runner refactor preserves CLI output byte for byte.
var goldenCommands = []string{
	"table1", "fig1", "fig2", "fig3", "unit", "shift", "sumupper",
	"exist", "nphard", "conn", "dyn", "poa", "uniform", "baseline",
	"weak", "simul", "fip", "directed", "robust", "treedyn",
}

func runCLI(t *testing.T, a *app, cmd string) string {
	t.Helper()
	var sb strings.Builder
	a.out = &sb
	if err := a.run(cmd); err != nil {
		t.Fatalf("%s: %v", cmd, err)
	}
	return sb.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("%s: output differs from %s (run with -update after intentional changes)\n--- got ---\n%s\n--- want ---\n%s",
			name, path, got, want)
	}
}

func TestGoldenOutputs(t *testing.T) {
	for _, cmd := range goldenCommands {
		t.Run(cmd, func(t *testing.T) {
			got := runCLI(t, &app{effort: experiments.Quick, seed: 1}, cmd)
			checkGolden(t, cmd, got)
		})
	}
	t.Run("table1.csv", func(t *testing.T) {
		got := runCLI(t, &app{effort: experiments.Quick, seed: 1, csv: true}, "table1")
		checkGolden(t, "table1.csv", got)
	})
}

// The golden files themselves must be deterministic: two fresh runs of
// the same command agree byte for byte (guards against accidental
// nondeterminism creeping into the parallel sweeps).
func TestGoldenDeterminism(t *testing.T) {
	for _, cmd := range []string{"table1", "dyn"} {
		a := runCLI(t, &app{effort: experiments.Quick, seed: 1}, cmd)
		b := runCLI(t, &app{effort: experiments.Quick, seed: 1}, cmd)
		if a != b {
			t.Fatalf("%s: two runs disagree", cmd)
		}
	}
}

// Different seeds must actually change the seeded sweeps (so the golden
// test is not vacuously passing on seed-independent output).
func TestSeedSensitivity(t *testing.T) {
	a := runCLI(t, &app{effort: experiments.Quick, seed: 1}, "exist")
	b := runCLI(t, &app{effort: experiments.Quick, seed: 2}, "exist")
	if a == b {
		t.Fatal("exist output is identical across seeds")
	}
}
