package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Failure injection: take graphs that are known equilibria, corrupt one
// player's strategy into a strictly worse position, and confirm the
// verifier pinpoints that player. This guards the verification pipeline
// itself — a verifier that silently accepts corrupted equilibria would
// invalidate every experiment in the repo.

// starPlus is a star with one extra budget-1 satellite pointing at a
// leaf, an equilibrium in neither corruption below.
func buildStarEquilibrium() (*Game, *graph.Digraph) {
	d := graph.StarGraph(6)
	return GameOf(d, SUM), d
}

func TestCorruptionDetectedSUM(t *testing.T) {
	g, d := buildStarEquilibrium()
	if dev, err := g.VerifyNash(d, 0); err != nil || dev != nil {
		t.Fatalf("precondition: star must verify (dev=%v err=%v)", dev, err)
	}
	// Corrupt: centre drops one leaf and doubles an arc... SetOut dedups,
	// so instead reroute the centre's arc from leaf 5 to... the centre
	// owns all arcs; rerouting within {1..5} keeps the same set. Corrupt
	// a different instance: path-ified star.
	d2 := graph.NewDigraph(6)
	d2.SetOut(0, []int{1, 2, 3, 4})
	d2.AddArc(5, 4) // satellite 5 hangs off leaf 4: worse than joining 0
	g2 := GameOf(d2, SUM)
	dev, err := g2.VerifyNash(d2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil {
		t.Fatal("corrupted profile accepted as equilibrium")
	}
	if dev.Vertex != 5 {
		t.Fatalf("witness fingered vertex %d, want 5", dev.Vertex)
	}
}

func TestCorruptionDetectedOnSpiderLikeTree(t *testing.T) {
	// A 3-leg spider (built inline) is a MAX equilibrium; rerouting one
	// interior arc to create an imbalanced tree must be detected.
	k := 4
	n := 3*k + 1
	d := graph.NewDigraph(n)
	for leg := 0; leg < 3; leg++ {
		first := leg*k + 1
		d.AddArc(first, 0)
		for i := 0; i+1 < k; i++ {
			d.AddArc(first+i, first+i+1)
		}
	}
	g := GameOf(d, MAX)
	if dev, err := g.VerifyNash(d, 0); err != nil || dev != nil {
		t.Fatalf("precondition: spider must verify (dev=%v err=%v)", dev, err)
	}
	// Corrupt: x1 (vertex 1) reroutes its centre arc to the end of the
	// y-leg, stretching its own eccentricity.
	c := d.Clone()
	c.RemoveArc(1, 0)
	c.AddArc(1, 2*k) // y-leg end
	gc := GameOf(c, MAX)
	dev, err := gc.VerifyNash(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil {
		t.Fatal("corrupted spider accepted as equilibrium")
	}
}

func TestRandomCorruptionsAlwaysDetected(t *testing.T) {
	// Generic failure injection: start from a verified dynamics
	// equilibrium, apply a random strategy replacement that strictly
	// increases that player's cost, and require detection.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(4)
		g := UniformGame(n, 1, SUM)
		// Build an equilibrium by sequential improvement.
		d := graph.RandomOutDigraph(g.Budgets, rng)
		for pass := 0; pass < 200; pass++ {
			improved := false
			for u := 0; u < n; u++ {
				br, err := g.ExactBestResponse(d, u, 0)
				if err != nil {
					t.Fatal(err)
				}
				if br.Improves() {
					d.SetOut(u, br.Strategy)
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		if dev, err := g.VerifyNash(d, 0); err != nil || dev != nil {
			continue // dynamics may not have converged; skip trial
		}
		// Corrupt player u with a strictly worse strategy, if one exists.
		u := rng.Intn(n)
		dv := NewDeviator(g, d, u)
		curCost := dv.Eval(d.Out(u))
		var worse []int
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			if c := dv.Eval([]int{v}); c > curCost {
				worse = []int{v}
				break
			}
		}
		if worse == nil {
			continue // all strategies tie: nothing to inject
		}
		c := d.Clone()
		c.SetOut(u, worse)
		dev, err := g.VerifyNash(c, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dev == nil {
			t.Fatalf("trial %d: strictly-worse strategy for %d not detected\n%v", trial, u, c)
		}
	}
}

func TestSwapStableVerifierCatchesSwapCorruption(t *testing.T) {
	// Swap-stability verification must catch a corruption reachable by a
	// single swap: a satellite attached to a star leaf improves by
	// swapping its arc to the centre.
	d2 := graph.NewDigraph(7)
	d2.SetOut(0, []int{1, 2, 3, 4, 5})
	d2.AddArc(6, 5)
	g := GameOf(d2, SUM)
	dev, err := g.VerifySwapStable(d2)
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil || dev.Vertex != 6 {
		t.Fatalf("swap corruption not caught: %v", dev)
	}
}
