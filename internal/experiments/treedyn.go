package experiments

import (
	"math"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// TreeDynamics probes the Trees row of Table 1 beyond the two canonical
// constructions: random Tree-BG budget vectors (total exactly n-1) are
// driven to equilibrium by exact best-response dynamics. Every converged
// SUM profile must be a tree (Lemma 3.1 + edge count), satisfy Theorem
// 3.3's inequality (1) along its longest path, and have diameter within
// the O(log n) regime; MAX equilibria are reported for contrast (they
// may legally be much deeper — the spider shows Theta(n) is possible).
func TreeDynamics(effort Effort, seed int64) (*sweep.Table, error) {
	ns := []int{8, 12}
	trials := 5
	if effort == Full {
		ns = []int{8, 12, 16, 24, 32}
		trials = 12
	}
	type cell struct {
		ver core.Version
		n   int
	}
	var points []cell
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		for _, n := range ns {
			points = append(points, cell{ver: ver, n: n})
		}
	}
	type row struct {
		ver        core.Version
		n          int
		converged  int
		trees      int
		ineqOK     int
		diams      []int64
		logBound   float64
		worstRatio float64
		err        error
	}
	rows := sweep.Parallel(points, func(c cell) row {
		rng := rand.New(rand.NewSource(seed + int64(c.n)*17 + int64(c.ver)))
		r := row{ver: c.ver, n: c.n, logBound: 2*math.Log2(float64(c.n)) + 2}
		for trial := 0; trial < trials; trial++ {
			budgets := randomTreeBudgets(c.n, rng)
			g := core.MustGame(budgets, c.ver)
			out, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
				Responder:   core.ExactResponder(0),
				DetectLoops: true,
				MaxRounds:   1500,
			})
			if err != nil {
				return row{err: err}
			}
			if !out.Converged {
				continue
			}
			r.converged++
			a := out.Final.Underlying()
			diam := graph.Diameter(a)
			r.diams = append(r.diams, int64(diam))
			isTree := graph.IsConnected(a) && a.EdgeCount() == c.n-1 && len(out.Final.Braces()) == 0
			if isTree {
				r.trees++
				audit, err := analysis.AuditTreeSumPath(out.Final)
				if err == nil && audit.InequalityOK {
					r.ineqOK++
				}
			}
			if ratio := float64(diam) / r.logBound; ratio > r.worstRatio {
				r.worstRatio = ratio
			}
		}
		return r
	})
	t := sweep.NewTable("Tree-BG dynamics: random budget vectors with total n-1",
		"version", "n", "converged", "trees", "ineq(1)-holds", "diameter", "2log2(n)+2", "worst/bound")
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		t.Addf(r.ver.String(), r.n, r.converged, r.trees, r.ineqOK,
			stats.Summarize(r.diams).MeanStd(), r.logBound, r.worstRatio)
	}
	return t, nil
}

// randomTreeBudgets splits n-1 budget units over n players uniformly at
// random (each unit assigned to a random player, capped at n-1).
func randomTreeBudgets(n int, rng *rand.Rand) []int {
	budgets := make([]int, n)
	for i := 0; i < n-1; i++ {
		for {
			v := rng.Intn(n)
			if budgets[v] < n-1 {
				budgets[v]++
				break
			}
		}
	}
	return budgets
}
