package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/store"
	"repro/pkg/bbncg"
	"repro/pkg/bbncg/api"
)

// ErrSessionClosed is returned by every operation on a session that has
// been deleted or whose manager has shut down: post-close access is
// defined behaviour, not a race.
var ErrSessionClosed = errors.New("serve: session is closed")

// maxTrace bounds the in-memory round-trace window a session keeps for
// streamed-dynamics resume. Overflow drops the oldest half; a resume
// request predating the window is refused with a descriptive error.
const maxTrace = 1 << 16

// Session is one persistent game: a game instance, its live profile,
// and a warm cache pool that makes repeated queries cheap. All
// operations serialise on the session mutex; distinct sessions are
// fully concurrent. Every mutation is appended to the session's event
// log before it is applied, so the session replays byte-identically
// after a crash.
type Session struct {
	id string

	mu   sync.Mutex
	game *bbncg.Game
	d    *bbncg.Digraph
	// pool is swapped only under mu (eviction replaces it with a cold
	// one), but read lock-free by Stats — hence the atomic pointer.
	pool atomic.Pointer[bbncg.CachePool]
	resp bbncg.ResponderChoice
	// lastBR completes the pool's round memo for query serving: the
	// memo proves "u's last scan against this exact anchor found no
	// improving move", and lastBR holds that full answer (the memo bit
	// alone cannot reproduce the cost fields).
	lastBR map[int]api.BestResponseResult

	st          *store.Store
	anchorEvery int
	sinceAnchor int
	poolBudget  int64
	spec        *bbncg.GeneratorSpec // create-event provenance, if any
	// wts makes the session arc-weighted: queries answer weighted costs
	// on the weighted cache tier, and rewires may carry a weight. wspec
	// is the create-event recipe (Info provenance and replay source).
	wts   *bbncg.Weights
	wspec *bbncg.WeightsSpec

	// rounds is the session-global dynamics round counter; trace holds
	// the per-round welfare trace of the last maxTrace rounds, starting
	// at global round traceBase. Both are in-memory only (a restarted
	// server starts a fresh trace at round 1) and serve the streamed
	// resume-from-round path.
	rounds    int
	trace     []api.RoundTrace
	traceBase int

	// seq (next event sequence number), moves and evictions are written
	// under mu but read lock-free by Stats, so /statsz never blocks
	// behind a long-running query on the session lock.
	seq       atomic.Int64
	moves     atomic.Int64
	evictions atomic.Int64
	replayed  bool
	closed    bool

	// lastUsed is the manager's LRU clock tick of the most recent
	// operation; atomic so the eviction scan can read it lock-free.
	lastUsed atomic.Int64
}

// newSession wires a live session around an already-validated game and
// profile. The caller has logged (or replayed) the corresponding
// events.
func newSession(id string, g *bbncg.Game, d *bbncg.Digraph, rc bbncg.ResponderChoice,
	st *store.Store, seq int64, anchorEvery int, poolBudget int64, wts *bbncg.Weights) *Session {
	// The journal window covers a healthy number of rewires between two
	// queries of the same player; overflow just falls back to the
	// diff-resync path.
	d.StartJournal(8*d.N() + 256)
	s := &Session{
		id:          id,
		game:        g,
		d:           d,
		resp:        rc,
		lastBR:      make(map[int]api.BestResponseResult),
		st:          st,
		anchorEvery: anchorEvery,
		poolBudget:  poolBudget,
		wts:         wts,
		traceBase:   1,
	}
	s.pool.Store(s.newPool())
	s.seq.Store(seq)
	return s
}

// newPool returns a cold pool matching the session's weighting.
func (s *Session) newPool() *bbncg.CachePool {
	if s.wts != nil {
		return bbncg.NewWeightedCachePool(s.game, s.poolBudget, s.wts)
	}
	return bbncg.NewCachePool(s.game, s.poolBudget)
}

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// guard locks the session and fails closed sessions.
func (s *Session) guard() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	return nil
}

// logMutation appends a rewire event and, at the anchor cadence, a full
// profile snapshot. It is called with the mutation NOT yet applied:
// log-then-apply means a crash between the two replays the mutation.
func (s *Session) logMutation(player int, strategy []int, weight int32) error {
	ev := event{Seq: s.seq.Load(), Kind: evRewire, Player: player, Strategy: append([]int{}, strategy...), Weight: weight}
	if err := appendEvent(s.st, s.id, ev); err != nil {
		return err
	}
	s.seq.Add(1)
	s.sinceAnchor++
	return nil
}

// maybeAnchor appends a snapshot of the CURRENT profile once enough
// mutations have accumulated. Anchors are advisory — a failed anchor
// write leaves the log replayable from the previous one — so the error
// is surfaced but the session stays consistent, and the cadence counter
// is not reset so the next mutation retries.
func (s *Session) maybeAnchor() error {
	if s.anchorEvery <= 0 || s.sinceAnchor < s.anchorEvery {
		return nil
	}
	if err := fault.Hit(siteSnapshotWrite); err != nil {
		return fmt.Errorf("serve: anchor snapshot: %w", err)
	}
	if err := appendEvent(s.st, s.id, anchorEvent(s.seq.Load(), s.d)); err != nil {
		return err
	}
	s.seq.Add(1)
	s.sinceAnchor = 0
	return nil
}

// applyMove mutates the profile and invalidates the query caches.
func (s *Session) applyMove(player int, strategy []int) {
	s.d.SetOut(player, strategy)
	s.pool.Load().Invalidate()
	s.moves.Add(1)
	clear(s.lastBR)
}

// Rewire validates and applies one explicit strategy change, returning
// whether the profile actually changed (rewiring to the current
// strategy is a logged no-op: it still appends an event, so intent
// survives a crash, but SetOut detects the identical set and no cache
// is invalidated). In a weighted session, weight > 0 sets the weight of
// every new arc (player, target) before the rewire applies — a rewire
// to the current strategy with a weight is a pure reweighting, served
// by the pool's weight-generation repair path without any topology
// invalidation. The changed return reports topology changes only.
func (s *Session) Rewire(player int, strategy []int, weight int32) (changed bool, err error) {
	if err := s.guard(); err != nil {
		return false, err
	}
	defer s.mu.Unlock()
	if player < 0 || player >= s.game.N() {
		return false, fmt.Errorf("serve: player %d out of range [0,%d)", player, s.game.N())
	}
	if err := bbncg.ValidateStrategy(s.game.N(), player, s.game.Budgets[player], strategy); err != nil {
		return false, err
	}
	if weight != 0 {
		if s.wts == nil {
			return false, fmt.Errorf("serve: session %s is unweighted; rewire cannot carry a weight", s.id)
		}
		if weight < 1 || weight > s.wspec.Max {
			return false, fmt.Errorf("serve: weight %d out of range [1,%d]", weight, s.wspec.Max)
		}
	}
	if err := s.logMutation(player, strategy, weight); err != nil {
		return false, err
	}
	if weight > 0 {
		for _, v := range strategy {
			if err := s.wts.Set(player, v, weight); err != nil {
				return false, err
			}
		}
	}
	gen := s.d.Gen()
	s.applyMove(player, strategy)
	if err := s.maybeAnchor(); err != nil {
		return s.d.Gen() != gen, err
	}
	return s.d.Gen() != gen, nil
}

// BestResponse computes player u's best response without mutating the
// session. responder may be "" for the session default; only default-
// responder answers feed the memo (a different responder's answer must
// not satisfy, or poison, the default's skip path).
func (s *Session) BestResponse(u int, responder string, exactCap int64) (api.BestResponseResult, error) {
	rc := s.resp
	if responder != "" && responder != s.resp.Name {
		var err error
		rc, err = bbncg.ResponderByName(responder, exactCap)
		if err != nil {
			return api.BestResponseResult{}, err
		}
	}
	if err := s.guard(); err != nil {
		return api.BestResponseResult{}, err
	}
	defer s.mu.Unlock()
	if u < 0 || u >= s.game.N() {
		return api.BestResponseResult{}, fmt.Errorf("serve: player %d out of range [0,%d)", u, s.game.N())
	}
	if rc.Exact {
		if err := bbncg.CheckExactSpace(s.game, u, rc.Cap); err != nil {
			return api.BestResponseResult{}, err
		}
	}
	br, memo := s.bestResponseLocked(u, rc)
	br.Memo = memo
	return br, nil
}

// bestResponseLocked runs one pooled scan, riding the memo when the
// requested responder is the session default. The returned result has
// Memo unset; the caller decides whether to surface the second return.
func (s *Session) bestResponseLocked(u int, rc bbncg.ResponderChoice) (api.BestResponseResult, bool) {
	pool := s.pool.Load()
	def := rc.Name == s.resp.Name
	if def && pool.SkipResponse(s.d, u) {
		if br, ok := s.lastBR[u]; ok {
			return br, true
		}
	}
	br := bbncg.PooledResponse(s.game, s.d, pool, u, rc.Cached, def)
	ans := api.BestResponseResult{
		Player:    u,
		Responder: rc.Name,
		Improves:  br.Improves(),
		Strategy:  append([]int{}, br.Strategy...),
		Cost:      br.Cost,
		Current:   br.Current,
		Explored:  br.Explored,
	}
	if def {
		if ans.Improves {
			delete(s.lastBR, u)
		} else {
			s.lastBR[u] = ans
		}
	}
	return ans, false
}

// Equilibrium scans every player for an improving move with the
// session responder (an exact responder certifies Nash; greedy/swap
// certify stability against that heuristic). The scan feeds the round
// memo, so repeating it against an unchanged session is O(players)
// memo hits with zero cache work.
func (s *Session) Equilibrium(responder string, exactCap int64) (api.EquilibriumResult, error) {
	rc := s.resp
	if responder != "" && responder != s.resp.Name {
		var err error
		rc, err = bbncg.ResponderByName(responder, exactCap)
		if err != nil {
			return api.EquilibriumResult{}, err
		}
	}
	if err := s.guard(); err != nil {
		return api.EquilibriumResult{}, err
	}
	defer s.mu.Unlock()
	ans := api.EquilibriumResult{Responder: rc.Name, Stable: true}
	for u := 0; u < s.game.N(); u++ {
		if s.game.Budgets[u] == 0 {
			continue
		}
		if rc.Exact {
			if err := bbncg.CheckExactSpace(s.game, u, rc.Cap); err != nil {
				return api.EquilibriumResult{}, err
			}
		}
		br, _ := s.bestResponseLocked(u, rc)
		ans.Checked++
		if br.Improves {
			ans.Stable = false
			ans.Witness = &br
			break
		}
	}
	return ans, nil
}

// Welfare evaluates the current profile's social cost and per-player
// costs, matrix-free.
func (s *Session) Welfare() (api.WelfareResult, error) {
	if err := s.guard(); err != nil {
		return api.WelfareResult{}, err
	}
	defer s.mu.Unlock()
	return s.welfareLocked(), nil
}

func (s *Session) welfareLocked() api.WelfareResult {
	var wf bbncg.Welfare
	if s.wts != nil {
		wf = bbncg.WeightedWelfareOf(s.game, s.d, s.wts)
	} else {
		wf = bbncg.WelfareOf(s.game, s.d)
	}
	return api.WelfareResult{Social: wf.Social, Costs: wf.Costs}
}

// socialLocked is the social cost alone (the per-round trace value),
// weighted when the session is.
func (s *Session) socialLocked() int64 {
	if s.wts != nil {
		return s.game.WeightedSocialCost(s.d, s.wts)
	}
	return s.game.SocialCost(s.d)
}

// Step runs up to rounds of sequential best-response dynamics with the
// session responder, mutating the session. Each accepted move is
// logged before it is applied — per-move crash safety — and rides the
// warm pool exactly like dynamics.Run: settled rounds cost a memo hit
// per player. Every executed round appends one RoundTrace (round
// number, moves, social cost) to the result AND to the session's
// in-memory trace window, which streamed reconnects replay from.
func (s *Session) Step(rounds int) (api.DynamicsResult, error) {
	return s.step(rounds, 0, nil)
}

// StreamStep is Step for a streamed run: when from > 0 it first
// re-emits every recorded trace entry with Round >= from (the
// resume-from-round contract), then runs up to rounds new rounds,
// calling emit as each completes. An emit error — the client
// disconnected or the write failed — stops the run promptly at the
// next round boundary; the moves already logged stay applied and
// durable. The whole call holds the session lock, so replay and live
// rounds are one atomic sequence with no interleaved mutations.
func (s *Session) StreamStep(rounds, from int, emit func(api.RoundTrace) error) (api.DynamicsResult, error) {
	return s.step(rounds, from, emit)
}

// TraceWindow reports the recorded trace bounds: the global round
// number of the oldest recorded entry and of the next round to run.
func (s *Session) TraceWindow() (base, next int, err error) {
	if err := s.guard(); err != nil {
		return 0, 0, err
	}
	defer s.mu.Unlock()
	return s.traceBase, s.rounds + 1, nil
}

func (s *Session) step(rounds, from int, emit func(api.RoundTrace) error) (api.DynamicsResult, error) {
	if err := s.guard(); err != nil {
		return api.DynamicsResult{}, err
	}
	defer s.mu.Unlock()
	var rep api.DynamicsResult
	if from > 0 {
		if from < s.traceBase {
			return rep, fmt.Errorf("serve: resume round %d predates the recorded trace (window starts at round %d)", from, s.traceBase)
		}
		for i := from - s.traceBase; i < len(s.trace); i++ {
			if err := emit(s.trace[i]); err != nil {
				return rep, err
			}
		}
	}
	if rounds <= 0 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		if err := fault.Hit(siteDynamicsRound); err != nil {
			return rep, err
		}
		changed := false
		movesThisRound := 0
		for u := 0; u < s.game.N(); u++ {
			if s.game.Budgets[u] == 0 {
				continue
			}
			if s.resp.Exact {
				if err := bbncg.CheckExactSpace(s.game, u, s.resp.Cap); err != nil {
					return rep, err
				}
			}
			br, _ := s.bestResponseLocked(u, s.resp)
			if !br.Improves {
				continue
			}
			if err := s.logMutation(u, br.Strategy, 0); err != nil {
				return rep, err
			}
			s.applyMove(u, br.Strategy)
			movesThisRound++
			changed = true
			if err := s.maybeAnchor(); err != nil {
				return rep, err
			}
		}
		s.rounds++
		rt := api.RoundTrace{Round: s.rounds, Moves: movesThisRound, Welfare: s.socialLocked()}
		s.pushTraceLocked(rt)
		rep.Rounds++
		rep.Moves += movesThisRound
		rep.Trace = append(rep.Trace, rt)
		if emit != nil {
			if err := emit(rt); err != nil {
				return rep, err
			}
		}
		if !changed {
			rep.Converged = true
			break
		}
	}
	return rep, nil
}

// pushTraceLocked appends one round to the bounded trace window.
func (s *Session) pushTraceLocked(rt api.RoundTrace) {
	if len(s.trace) >= maxTrace {
		drop := len(s.trace) / 2
		s.traceBase += drop
		s.trace = append(s.trace[:0], s.trace[drop:]...)
	}
	s.trace = append(s.trace, rt)
}

// Info reports the session's metadata; withArcs includes the full
// profile (the canonical comparison handle for replay tests).
func (s *Session) Info(withArcs bool) (api.SessionInfo, error) {
	if err := s.guard(); err != nil {
		return api.SessionInfo{}, err
	}
	defer s.mu.Unlock()
	info := api.SessionInfo{
		ID:        s.id,
		N:         s.game.N(),
		Version:   s.game.Version.String(),
		Budgets:   append([]int{}, s.game.Budgets...),
		Responder: s.resp.Name,
		Graph:     s.spec,
		Weights:   s.wspec,
		Seq:       s.seq.Load(),
		Moves:     s.moves.Load(),
		Replayed:  s.replayed,
	}
	if withArcs {
		info.Arcs = bbncg.Arcs(s.d)
	}
	return info, nil
}

// Stats snapshots the session's counters. Unlike the other accessors
// it does not take the session lock — PoolStats and BytesUsed are
// atomics — so /statsz never blocks behind a long-running query.
func (s *Session) Stats() api.SessionStats {
	return api.SessionStats{
		ID:        s.id,
		N:         s.game.N(),
		Seq:       s.seq.Load(),
		Moves:     s.moves.Load(),
		Evictions: s.evictions.Load(),
		PoolBytes: s.pool.Load().BytesUsed(),
		Pool:      s.pool.Load().Stats(),
	}
}

// close marks the session closed; the pool's matrices return to the
// global allocator. Caller holds no session lock.
func (s *Session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.pool.Load().Close()
	clear(s.lastBR)
}

// evict drops the session's warm cache (pool closed and replaced by a
// cold one) without touching the game, profile or log: the memory
// governor's unit of reclamation. Returns the bytes reclaimed. A busy
// session (lock held by a request) is skipped — freed 0 — rather than
// waited on: evicting it would cost the request its warm cache anyway.
func (s *Session) evict() int64 {
	if !s.mu.TryLock() {
		return 0
	}
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	freed := s.pool.Load().BytesUsed()
	s.pool.Load().Close()
	s.pool.Store(s.newPool())
	clear(s.lastBR)
	s.evictions.Add(1)
	return freed
}
