package main

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// The crash-injection suite runs the real bbncg binary — this test
// binary re-executing its own main() — under randomized failpoint
// schedules that SIGKILL it mid-sweep, then asserts the recovery
// contract: resumed + merged output is byte-identical to a run that
// was never interrupted, and `doctor` signs the store off.

// TestMain lets the test binary impersonate bbncg: with BBNCG_REEXEC=1
// it runs main() instead of the test suite, so the crash tests need no
// separately built binary (and the injected faults run under -race
// whenever the tests do).
func TestMain(m *testing.M) {
	if os.Getenv("BBNCG_REEXEC") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// bbncgResult is one subprocess invocation's outcome.
type bbncgResult struct {
	stdout, stderr string
	code           int
	killed         bool // died on SIGKILL (an injected crash)
}

// runBBNCG executes bbncg with the given args, arming BBNCG_FAULTS
// with the given spec (empty = disarmed).
func runBBNCG(t *testing.T, faults string, args ...string) bbncgResult {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "BBNCG_REEXEC=1", "BBNCG_FAULTS="+faults)
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	res := bbncgResult{stdout: out.String(), stderr: errb.String()}
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("bbncg %v: %v", args, err)
		}
		res.code = ee.ExitCode()
		// A signal death reports -1; the non-unix die() path exits 137.
		res.killed = res.code == -1 || res.code == 137
	}
	return res
}

// directOutput renders a command in-process, the uninterrupted
// reference that every crashed-and-recovered run must reproduce.
func directOutput(t *testing.T, cmd string) string {
	t.Helper()
	return runCLI(t, &app{effort: experiments.Quick, seed: 1}, cmd)
}

// saveArtifact copies a store directory plus the got/want pair to
// CRASHME_ARTIFACT_DIR (set by CI) so a recovery mismatch is
// debuggable without reproducing the randomized schedule.
func saveArtifact(t *testing.T, dir, got, want string) {
	t.Helper()
	root := os.Getenv("CRASHME_ARTIFACT_DIR")
	if root == "" {
		return
	}
	dst := filepath.Join(root, t.Name())
	if err := os.MkdirAll(dst, 0o777); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	if err := os.CopyFS(filepath.Join(dst, "store"), os.DirFS(dir)); err != nil {
		t.Logf("artifact copy: %v", err)
	}
	_ = os.WriteFile(filepath.Join(dst, "got.txt"), []byte(got), 0o666)
	_ = os.WriteFile(filepath.Join(dst, "want.txt"), []byte(want), 0o666)
	t.Logf("crash artifact saved to %s", dst)
}

// envInt reads an integer knob from the environment (CI overrides).
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
	}
	return def
}

// crashSchedule draws one randomized kill schedule. The sites span the
// whole write path: dying inside an evaluation, inside the record
// append (clean and torn), around both halves of the atomic manifest
// update, between points (the progress meter), and while a resume is
// reloading shards.
func crashSchedule(rng *rand.Rand) string {
	switch rng.Intn(7) {
	case 0:
		return fmt.Sprintf("runner.eval=crash@%d", 1+rng.Intn(5))
	case 1:
		return fmt.Sprintf("store.append.write=crash@%d", 1+rng.Intn(4))
	case 2:
		return fmt.Sprintf("store.append.write=torn:%d@%d", rng.Intn(40), 1+rng.Intn(4))
	case 3:
		return "store.manifest.write=crash@1"
	case 4:
		return "store.manifest.rename=crash@1"
	case 5:
		return fmt.Sprintf("runner.progress=crash@%d", 1+rng.Intn(6))
	default:
		return fmt.Sprintf("store.shard.open=crash@%d", 1+rng.Intn(20))
	}
}

// TestCrashInjectionResumeExact is the tentpole integration test: kill
// `bbncg all` at randomized injection points at least BBNCG_CRASHME_KILLS
// times (default 25), resuming after every death, and require the
// eventually-completed run — plus a merge of the battered store — to be
// byte-identical to an uninterrupted run of all 22 specs.
func TestCrashInjectionResumeExact(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash loop")
	}
	want := directOutput(t, "all")
	seed := int64(envInt("BBNCG_CRASHME_SEED", 1))
	minKills := envInt("BBNCG_CRASHME_KILLS", 25)
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()

	kills, completions := 0, 0
	maxRounds := 40 * minKills // a non-firing schedule completes a round; keep a hard stop
	for round := 1; kills < minKills; round++ {
		if round > maxRounds {
			t.Fatalf("only %d kills in %d rounds (schedules not firing?)", kills, round-1)
		}
		res := runBBNCG(t, crashSchedule(rng), "-out", dir, "-resume", "all")
		switch {
		case res.killed:
			kills++
		case res.code == 0:
			// The schedule never fired (e.g. a deep shard.open hit on a
			// store with few shards): the run completed and must already
			// be byte-exact.
			completions++
			if res.stdout != want {
				saveArtifact(t, dir, res.stdout, want)
				t.Fatalf("round %d completed with wrong output (%d bytes, want %d)",
					round, len(res.stdout), len(want))
			}
		default:
			t.Fatalf("round %d: unexpected exit %d\nstderr:\n%s", round, res.code, res.stderr)
		}
	}
	t.Logf("%d kills, %d incidental completions", kills, completions)

	// Final clean resume: no faults armed, must complete byte-exact.
	res := runBBNCG(t, "", "-out", dir, "-resume", "all")
	if res.code != 0 {
		t.Fatalf("clean resume exited %d\nstderr:\n%s", res.code, res.stderr)
	}
	if res.stdout != want {
		saveArtifact(t, dir, res.stdout, want)
		t.Fatalf("clean resume output differs (%d bytes, want %d)", len(res.stdout), len(want))
	}

	// The store alone must also reproduce everything: merge evaluates
	// nothing and renders only stored values.
	res = runBBNCG(t, "", "-out", dir, "merge", "all")
	if res.code != 0 || res.stdout != want {
		saveArtifact(t, dir, res.stdout, want)
		t.Fatalf("merge after crashes: exit %d, output %d bytes (want %d)\nstderr:\n%s",
			res.code, len(res.stdout), len(want), res.stderr)
	}

	// And the doctor signs it off: the battered store has notes at most
	// (quarantined torn prefixes), no problems.
	res = runBBNCG(t, "", "doctor", dir)
	if res.code != 0 {
		saveArtifact(t, dir, res.stdout, want)
		t.Fatalf("doctor exited %d after recovery\n%s\n%s", res.code, res.stdout, res.stderr)
	}
}

// A corrupted mid-shard record must degrade to a quarantined, reported,
// retryable failure: doctor flags it, resume re-evaluates exactly that
// point, and the final output is byte-identical.
func TestCorruptRecordQuarantinedAndResumed(t *testing.T) {
	want := directOutput(t, "conn")
	dir := t.TempDir()
	res := runBBNCG(t, "", "-out", dir, "conn")
	if res.code != 0 || res.stdout != want {
		t.Fatalf("seed run: exit %d\nstderr:\n%s", res.code, res.stderr)
	}

	// Flip one byte in the middle record of the shard.
	shards, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil || len(shards) != 1 {
		t.Fatalf("shards = %v, %v", shards, err)
	}
	data, err := os.ReadFile(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("conn shard has %d lines, need >= 3 records to corrupt the middle", len(lines))
	}
	mid := lines[1]
	flipped := []byte(mid)
	flipped[len(flipped)/2] ^= 0x01
	lines[1] = string(flipped)
	if err := os.WriteFile(shards[0], []byte(strings.Join(lines, "")), 0o666); err != nil {
		t.Fatal(err)
	}

	// Doctor must flag the corruption (exit 4) without repairing it.
	res = runBBNCG(t, "", "doctor", dir)
	if res.code != 4 {
		t.Fatalf("doctor on corrupt store exited %d\n%s", res.code, res.stdout)
	}

	// Resume quarantines the bad record and re-evaluates exactly it.
	res = runBBNCG(t, "", "-out", dir, "-resume", "conn")
	if res.code != 0 {
		t.Fatalf("resume over corruption exited %d\nstderr:\n%s", res.code, res.stderr)
	}
	if res.stdout != want {
		saveArtifact(t, dir, res.stdout, want)
		t.Fatal("resume over corruption is not byte-identical")
	}
	if !strings.Contains(res.stderr, "runner: 1 point(s) evaluated") {
		t.Fatalf("resume did not re-evaluate exactly the corrupt point:\n%s", res.stderr)
	}
	if _, err := os.Stat(strings.TrimSuffix(shards[0], ".jsonl") + ".bad.jsonl"); err != nil {
		t.Fatalf("no quarantine file: %v", err)
	}

	// Healed: doctor signs off (the quarantine file is just a note).
	res = runBBNCG(t, "", "doctor", dir)
	if res.code != 0 {
		t.Fatalf("doctor after heal exited %d\n%s", res.code, res.stdout)
	}
}

// An injected panic inside an evaluator must not kill the run under a
// failure budget: the point is quarantined with its stack, the run
// exits 3, doctor reports the outstanding failure, and a clean resume
// heals everything byte-exactly.
func TestPanicQuarantineExitCodes(t *testing.T) {
	want := directOutput(t, "conn")
	dir := t.TempDir()
	res := runBBNCG(t, "runner.eval=panic@2", "-out", dir, "-max-failures", "-1", "conn")
	if res.code != 3 {
		t.Fatalf("run with quarantined panic exited %d, want 3\nstderr:\n%s", res.code, res.stderr)
	}
	if !strings.Contains(res.stderr, "FAILED (quarantined)") {
		t.Fatalf("stderr does not report the quarantine:\n%s", res.stderr)
	}
	failed, err := os.ReadFile(filepath.Join(dir, "failed.jsonl"))
	if err != nil {
		t.Fatalf("no failed.jsonl: %v", err)
	}
	if !strings.Contains(string(failed), "injected panic") || !strings.Contains(string(failed), "goroutine") {
		t.Fatalf("failed.jsonl lacks the panic and its stack:\n%s", failed)
	}

	// The outstanding failure is a doctor problem until it is healed.
	res = runBBNCG(t, "", "doctor", dir)
	if res.code != 4 || !strings.Contains(res.stdout, "never re-evaluated") {
		t.Fatalf("doctor on quarantined store: exit %d\n%s", res.code, res.stdout)
	}

	res = runBBNCG(t, "", "-out", dir, "-resume", "conn")
	if res.code != 0 || res.stdout != want {
		saveArtifact(t, dir, res.stdout, want)
		t.Fatalf("healing resume: exit %d, byte-identical=%v\nstderr:\n%s",
			res.code, res.stdout == want, res.stderr)
	}
	res = runBBNCG(t, "", "doctor", dir)
	if res.code != 0 {
		t.Fatalf("doctor after heal exited %d\n%s", res.code, res.stdout)
	}
}

// -retry absorbs transient failures without losing the run or the
// byte-exact output, and the summary reports the extra attempts.
func TestRetryHealsTransientFaults(t *testing.T) {
	want := directOutput(t, "conn")
	dir := t.TempDir()
	res := runBBNCG(t, "runner.eval=error@2", "-out", dir, "-retry", "2", "conn")
	if res.code != 0 {
		t.Fatalf("retried run exited %d\nstderr:\n%s", res.code, res.stderr)
	}
	if res.stdout != want {
		t.Fatal("retried run is not byte-identical")
	}
	if !strings.Contains(res.stderr, "1 retried") {
		t.Fatalf("summary does not count the retry:\n%s", res.stderr)
	}
}
