package runner

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
)

type val struct {
	K int `json:"k"`
	S int `json:"s"`
}

// testJob squares each point's k; evals counts actual evaluations so
// resume tests can assert that stored points are never recomputed.
func testJob(n int, evals *int64) Job {
	points := make([]Point, n)
	for i := range points {
		points[i] = Point{Exp: "square", Key: fmt.Sprintf("k=%d", i), Seed: 1, Data: i}
	}
	return Job{
		Exp:    "square",
		Points: points,
		Eval: func(p Point) (any, error) {
			atomic.AddInt64(evals, 1)
			k := p.Data.(int)
			return val{K: k, S: k * k}, nil
		},
	}
}

func TestPointIDDeterministic(t *testing.T) {
	a := Point{Exp: "e", Key: "k=1", Seed: 7}
	b := Point{Exp: "e", Key: "k=1", Seed: 7}
	if a.ID() != b.ID() {
		t.Fatal("same point, different IDs")
	}
	for _, other := range []Point{
		{Exp: "e2", Key: "k=1", Seed: 7},
		{Exp: "e", Key: "k=2", Seed: 7},
		{Exp: "e", Key: "k=1", Seed: 8},
	} {
		if a.ID() == other.ID() {
			t.Fatalf("distinct point %+v collides with %+v", other, a)
		}
	}
	if len(a.ID()) != 32 {
		t.Fatalf("ID length = %d", len(a.ID()))
	}
}

func TestRunInMemory(t *testing.T) {
	var evals int64
	rep, err := Run(testJob(10, &evals), nil, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated != 10 || rep.Skipped != 0 {
		t.Fatalf("report = %+v", rep)
	}
	rows, err := DecodeAll[val](rep.Values)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.K != i || r.S != i*i {
			t.Fatalf("row %d = %+v", i, r)
		}
	}
}

func TestRunStoresAndResumes(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var evals int64
	rep1, err := Run(testJob(8, &evals), st, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Evaluated != 8 || evals != 8 {
		t.Fatalf("first run: %+v evals=%d", rep1, evals)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume over a reopened store: nothing may be re-evaluated.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rep2, err := Run(testJob(8, &evals), st2, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Evaluated != 0 || rep2.Skipped != 8 || evals != 8 {
		t.Fatalf("resumed run: %+v evals=%d", rep2, evals)
	}
	for i := range rep1.Values {
		if string(rep1.Values[i]) != string(rep2.Values[i]) {
			t.Fatalf("value %d differs across resume:\n%s\n%s", i, rep1.Values[i], rep2.Values[i])
		}
	}

	// A grown point list evaluates exactly the new points.
	rep3, err := Run(testJob(12, &evals), st2, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Evaluated != 4 || rep3.Skipped != 8 || evals != 12 {
		t.Fatalf("grown run: %+v evals=%d", rep3, evals)
	}
}

func TestMerge(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var evals int64
	job := testJob(5, &evals)
	if _, err := Merge(job, st); err == nil {
		t.Fatal("merge of an empty store succeeded")
	}
	if _, err := Run(job, st, Options{}); err != nil {
		t.Fatal(err)
	}
	rep, err := Merge(job, st)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 5 || rep.Evaluated != 0 || evals != 5 {
		t.Fatalf("merge report = %+v evals=%d", rep, evals)
	}
}

// TestCrashMidSweepThenResume kills a run logically (one point errors,
// aborting the sweep after others already streamed to the store) and
// resumes: the store keeps every completed point, and the resumed run
// evaluates exactly the remainder.
func TestCrashMidSweepThenResume(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var evals int64
	job := testJob(6, &evals)
	goodEval := job.Eval
	job.Eval = func(p Point) (any, error) {
		if p.Data.(int) == 4 {
			return nil, fmt.Errorf("simulated crash")
		}
		return goodEval(p)
	}
	if _, err := Run(job, st, Options{Workers: 1}); err == nil {
		t.Fatal("crashing run succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	survived := st2.Len()
	if survived == 0 || survived >= 6 {
		t.Fatalf("store kept %d records after crash", survived)
	}
	evals = 0
	rep, err := Run(testJob(6, &evals), st2, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != survived || rep.Evaluated != 6-survived || evals != int64(6-survived) {
		t.Fatalf("resume after crash: %+v evals=%d survived=%d", rep, evals, survived)
	}
	rows, err := DecodeAll[val](rep.Values)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.K != i || r.S != i*i {
			t.Fatalf("row %d = %+v", i, r)
		}
	}
}

func TestRunEvalError(t *testing.T) {
	job := Job{
		Exp:    "bad",
		Points: []Point{{Exp: "bad", Key: "k=0", Seed: 1}},
		Eval:   func(Point) (any, error) { return nil, fmt.Errorf("boom") },
	}
	if _, err := Run(job, nil, Options{Workers: 1}); err == nil {
		t.Fatal("eval error swallowed")
	}
}

// A panicking evaluator must degrade to a per-point failure — with the
// panic stack preserved — not kill the sweep process.
func TestPanicIsolatedAndQuarantined(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var evals int64
	job := testJob(5, &evals)
	goodEval := job.Eval
	job.Eval = func(p Point) (any, error) {
		if p.Data.(int) == 2 {
			panic("evaluator exploded")
		}
		return goodEval(p)
	}
	rep, err := Run(job, st, Options{Workers: 2, MaxFailures: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated != 4 || rep.Failed != 1 || len(rep.Failures) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	f := rep.Failures[0]
	if f.Key != "k=2" || !strings.Contains(f.Err, "evaluator exploded") {
		t.Fatalf("failure = %+v", f)
	}
	if !strings.Contains(f.Stack, "goroutine") {
		t.Fatalf("failure lacks a panic stack: %q", f.Stack)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The failure is on disk, and a clean resume retries exactly it.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	fails, err := st2.Failures()
	if err != nil || len(fails) != 1 || fails[0].Key != "k=2" {
		t.Fatalf("stored failures = %+v, %v", fails, err)
	}
	evals = 0
	rep2, err := Run(testJob(5, &evals), st2, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Evaluated != 1 || rep2.Skipped != 4 || evals != 1 {
		t.Fatalf("resume = %+v evals=%d", rep2, evals)
	}
}

// Transient errors are retried up to Options.Retry times; deterministic
// errors are not retried at all.
func TestRetryTransient(t *testing.T) {
	var sleeps []time.Duration
	retrySleep = func(d time.Duration) { sleeps = append(sleeps, d) }
	defer func() { retrySleep = time.Sleep }()

	var tries int64
	job := Job{
		Exp:    "flaky",
		Points: []Point{{Exp: "flaky", Key: "k=0", Seed: 1}},
		Eval: func(Point) (any, error) {
			if atomic.AddInt64(&tries, 1) < 3 {
				return nil, Transient(fmt.Errorf("blip %d", tries))
			}
			return val{K: 0, S: 0}, nil
		},
	}
	rep, err := Run(job, nil, Options{Workers: 1, Retry: 3, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated != 1 || rep.Retried != 2 || tries != 3 {
		t.Fatalf("report = %+v tries=%d", rep, tries)
	}
	if len(sleeps) != 2 || sleeps[0] != time.Millisecond || sleeps[1] != 2*time.Millisecond {
		t.Fatalf("backoff sleeps = %v", sleeps)
	}

	// Budget exhausted: the point fails with its attempt count.
	tries = 0
	always := Job{
		Exp:    "flaky",
		Points: []Point{{Exp: "flaky", Key: "k=0", Seed: 1}},
		Eval: func(Point) (any, error) {
			atomic.AddInt64(&tries, 1)
			return nil, Transient(fmt.Errorf("still down"))
		},
	}
	if _, err := Run(always, nil, Options{Workers: 1, Retry: 2}); err == nil {
		t.Fatal("exhausted retries succeeded")
	}
	if tries != 3 {
		t.Fatalf("retry budget 2 made %d attempts, want 3", tries)
	}

	// Deterministic errors burn no retries.
	tries = 0
	det := Job{
		Exp:    "det",
		Points: []Point{{Exp: "det", Key: "k=0", Seed: 1}},
		Eval: func(Point) (any, error) {
			atomic.AddInt64(&tries, 1)
			return nil, fmt.Errorf("wrong code")
		},
	}
	if _, err := Run(det, nil, Options{Workers: 1, Retry: 5}); err == nil {
		t.Fatal("deterministic error succeeded")
	}
	if tries != 1 {
		t.Fatalf("deterministic error evaluated %d times, want 1", tries)
	}
}

// Every failing point must be reported, not just the first.
func TestAllFailuresReported(t *testing.T) {
	var evals int64
	job := testJob(6, &evals)
	goodEval := job.Eval
	job.Eval = func(p Point) (any, error) {
		if k := p.Data.(int); k == 1 || k == 3 || k == 5 {
			return nil, fmt.Errorf("bad point %d", k)
		}
		return goodEval(p)
	}
	_, err := Run(job, nil, Options{Workers: 1})
	if err == nil {
		t.Fatal("failing run succeeded")
	}
	for _, want := range []string{"bad point 1", "bad point 3", "bad point 5"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error misses %q: %v", want, err)
		}
	}
}

// MaxFailures is a budget: within it the run completes and reports the
// failures; beyond it the run aborts.
func TestMaxFailuresBudget(t *testing.T) {
	mkJob := func(evals *int64) Job {
		job := testJob(6, evals)
		goodEval := job.Eval
		job.Eval = func(p Point) (any, error) {
			if k := p.Data.(int); k == 1 || k == 3 {
				return nil, fmt.Errorf("bad point %d", k)
			}
			return goodEval(p)
		}
		return job
	}
	var evals int64
	rep, err := Run(mkJob(&evals), nil, Options{Workers: 1, MaxFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 2 || rep.Evaluated != 4 {
		t.Fatalf("within budget: %+v", rep)
	}
	if _, err := Run(mkJob(&evals), nil, Options{Workers: 1, MaxFailures: 1}); err == nil {
		t.Fatal("budget exceeded but run succeeded")
	}
}

// An injected eval fault is transient: with retries armed the run heals
// itself and the report records the extra attempt.
func TestInjectedFaultRetried(t *testing.T) {
	set, err := fault.Parse("runner.eval=error@2", 0)
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(set)
	t.Cleanup(fault.Disarm)
	var evals int64
	rep, err := Run(testJob(3, &evals), nil, Options{Workers: 1, Retry: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated != 3 || rep.Retried != 1 {
		t.Fatalf("report = %+v", rep)
	}
}
