package core

import (
	"os"

	"repro/internal/graph"
)

// SUM-side evaluation kernel: the candidate-pruning layer over the
// blocked min-merge kernels of internal/graph (summerge.go).
//
// A SUM candidate scan evaluates every vertex v by one fused min+sum
// pass over the running-min vector and v's cached distance row — O(n)
// per candidate, O(n²) per greedy round, the dominant cost of SUM
// dynamics once PR 4 removed the matrix refills. The pruning layer
// spends O(n) per round to make most of those passes partial:
//
//   - colMin[w] is an entrywise lower bound of every cached row at
//     column w (the best any candidate anchor could do for vertex w).
//     It is exact after a fill; Repair keeps it sound incrementally by
//     folding repaired rows back in — row improvements are captured by
//     the fold, and rows whose entries grew merely leave the bound
//     slack, never invalid. A full-matrix refill rebuilds it exactly.
//
//   - Before a scan, tiered suffix bounds are taken over the running
//     min-vector vec. The triangle inequality in G-u gives every
//     candidate v at distance t = vec[v] from the current anchor set a
//     per-entry floor: some anchor a has d(a,v) = t, and
//     vec[w] <= d(a,w) <= t + d(v,w) for every w, so
//     row_v[w] >= vec[w] - t — a candidate close to the anchors cannot
//     improve any entry by more than t (and when vec[w] is infinite,
//     row_v[w] is too, since a reaches v). Tier t's suffix array sums
//     contrib(min(vec[w], max(colMin[w], vec[w]-t))) over w >= p: a
//     lower bound on the cost contribution of vertices p..n-1 under
//     any candidate at distance t, with tiers above sumTierCap falling
//     back to the colMin-only floor. The bounds are recomputed from
//     the current vec each round — monotone under candidate extension,
//     since vec only decreases entrywise as anchors are chosen.
//
//   - Each candidate then runs graph.SumMergeBounded with its tier's
//     suffix against the incumbent best: hopeless candidates abort on
//     the tier's total alone, the rest typically a small prefix in,
//     once the partial cost plus the suffix bound exceeds the budget.
//     A pruned candidate is certified strictly worse than the
//     incumbent, so minimisation with ties broken toward lower vertex
//     ids is bit-identical to the unpruned scan: candidates achieving
//     the true minimum are never pruned (their bound never exceeds a
//     budget that is itself >= the minimum), and Explored counts are
//     unchanged because pruned candidates still count as explored.
//
// The layer is gated by BBNCG_SUMKERNEL (default on) mirroring
// BBNCG_INCREMENTAL, and only engages for SUM Deviators with an active
// distance cache; MAX evaluation keeps the PR 4 bitset kernel.

// On top of the floor bounds sits the exact per-candidate memo: a
// pooled Deviator remembers each greedy round's candidate costs and the
// round's winner. A candidate's round-r cost is a pure function of
// inMin, the rounds-r prefix of winners and the candidate's own row, so
// the memo stays exact across movers and rounds for every candidate
// whose inputs the delta-BFS repair did not touch: Repair drops the
// whole memo when in(u), an in-anchor row, a winner row or the whole
// matrix changed, and marks just the candidates whose own rows were
// repaired otherwise. A settled dynamics round then costs O(n) memo
// reads per player instead of O(n²) merges — with the floor bounds
// aborting the (few) stale candidates' rescans early — which is where
// the headline SUM round speedup comes from.

// SumKernelEnabled reports whether the blocked SUM evaluation kernel and
// its candidate-pruning bounds are on (the default). Setting
// BBNCG_SUMKERNEL=0 restores the scalar min-merge paths for A/B
// benchmarking; results are identical either way. The flag is read once
// per Deviator, at construction.
func SumKernelEnabled() bool { return os.Getenv("BBNCG_SUMKERNEL") != "0" }

// sumPrune reports whether SUM evaluation on this Deviator may use the
// bounded kernel: SUM version, active distance cache, kernel enabled at
// construction.
func (dv *Deviator) sumPrune() bool {
	return dv.sumOn && dv.game.Version == SUM && dv.rows != nil
}

// sumPruneScan reports whether a greedy/swap candidate scan should run
// the full pruning machinery (tier bounds + memo): only for pool-owned
// Deviators that survived a couple of acquisitions, mirroring the
// useLevels hysteresis. One-shot responders would pay the bound
// building without a later scan to amortise it, and heavy-move phases
// (full refills zero the streak) invalidate the memo faster than it
// pays; both stay on the plain blocked kernel.
func (dv *Deviator) sumPruneScan() bool {
	return dv.sumPrune() && dv.pool != nil && dv.stable >= 2
}

// ensureColMin builds the column-min bound: colMin[w] = min over all
// sources v of dist_{G-u}(v, w). Row u is excluded — u is never a
// candidate anchor, and its one finite entry (the zero self-distance)
// would poison column u, whose true bound for every real candidate is
// InfDist (no G-u row reaches u).
func (dv *Deviator) ensureColMin() {
	if dv.colMin != nil {
		return
	}
	n := dv.game.N()
	cm := getInt32(n)
	for i := range cm {
		cm[i] = graph.InfDist
	}
	for v := 0; v < n; v++ {
		if v != dv.u {
			graph.MinInto(cm, dv.rows[v*n:(v+1)*n])
		}
	}
	cm[dv.u] = graph.InfDist
	dv.colMin = cm
}

// repairColMin keeps colMin sound after RepairRows changed a subset of
// rows: folding the repaired rows back in captures every improvement;
// entries that grew only leave the bound slack (still a valid lower
// bound, pruning just bites less) until the next full refill rebuilds
// it exactly.
func (dv *Deviator) repairColMin(st graph.RepairStats) {
	if dv.colMin == nil {
		return
	}
	if st.FullRefill {
		putInt32(dv.colMin)
		dv.colMin = nil // rebuilt lazily, exactly, on next use
		return
	}
	n := dv.game.N()
	for _, s := range st.Changed {
		if int(s) != dv.u {
			graph.MinInto(dv.colMin, dv.rows[int(s)*n:(int(s)+1)*n])
		}
	}
	dv.colMin[dv.u] = graph.InfDist
}

// sumTierCap bounds the number of distance tiers with their own suffix
// array; candidates further than sumTierCap-1 from the anchor set fall
// back to the colMin-only tier. Settled instances have small diameters,
// so almost every candidate lands in a real tier.
const sumTierCap = 8

// fillSumBounds prepares the tiered pruning bounds for one candidate
// scan against the running-min vector vec: dv.sumSufT[t][p] becomes the
// total cost contribution of vertices p..n-1 if every one of them were
// served at tier t's floor (see the package comment), and
// dv.sumSufT[sumTierCap] the colMin-only fallback. One O(tiers·n) pass,
// amortised over the O(n) candidates of the scan.
func (dv *Deviator) fillSumBounds(vec []int32) {
	n := dv.game.N()
	dv.ensureColMin()
	if dv.sumSufT == nil {
		dv.sumSufT = make([][]int64, sumTierCap+1)
		for t := range dv.sumSufT {
			dv.sumSufT[t] = make([]int64, n+1)
		}
	}
	cm := dv.colMin
	cinf := dv.cinf
	for t := 0; t <= sumTierCap; t++ {
		dv.sumSufT[t][n] = 0
	}
	for w := n - 1; w >= 0; w-- {
		m := vec[w]
		// colMin tier: floor min(vec[w], colMin[w]), the universal bound.
		base := m
		if cm[w] < base {
			base = cm[w]
		}
		c := cinf
		if base < graph.InfDist {
			c = int64(base) + 1
		}
		suf := dv.sumSufT[sumTierCap]
		suf[w] = suf[w+1] + c
		for t := 0; t < sumTierCap; t++ {
			c := cinf
			if m < graph.InfDist {
				// max(colMin[w], vec[w]-t), never above vec[w] since
				// colMin <= vec entrywise (vec is a min over cached rows).
				f := m - int32(t)
				if f < cm[w] {
					f = cm[w]
				}
				c = int64(f) + 1
			}
			suf := dv.sumSufT[t]
			suf[w] = suf[w+1] + c
		}
	}
}

// sufFor picks the tightest sound suffix bound for candidate v in a
// scan whose bounds were filled from vec: the tier of v's distance to
// the current anchor set, or the colMin fallback beyond the cap.
func (dv *Deviator) sufFor(vec []int32, v int) []int64 {
	if t := vec[v]; t >= 0 && t < sumTierCap {
		return dv.sumSufT[t]
	}
	return dv.sumSufT[sumTierCap]
}

// memoStale marks a candidate cost as unknown in the greedy memo.
const memoStale = int64(-1)

// memoBound encodes a prune certificate "cost strictly exceeds b" as a
// negative memo entry (distinct from memoStale); memoBoundOf decodes it.
// A candidate pruned against budget b re-prunes in O(1) on every later
// scan whose budget is at most b — the common case near convergence,
// where the incumbent cost is stable — instead of redoing the partial
// merge that pruned it.
func memoBound(b int64) int64   { return -b - 2 }
func memoBoundOf(c int64) int64 { return -c - 2 }

// sumMemo is the per-candidate memo of a pooled SUM Deviator's greedy
// scans: one entry per greedy round holding that round's winner and
// every candidate's exact cost (or prune certificate; memoStale where
// unknown — never evaluated or invalidated by a row repair). Validity
// is maintained by Repair (see memoRepair); within one scan the chosen
// prefix is additionally matched round by round, so a changed winner
// invalidates exactly the rounds it influences.
type sumMemo struct {
	rounds []sumMemoRound
}

type sumMemoRound struct {
	chosen int // winner picked after this round's scan; -1 = not run
	costs  []int64
}

// newSumMemo allocates a memo for b greedy rounds over n candidates.
func newSumMemo(b, n int) *sumMemo {
	m := &sumMemo{rounds: make([]sumMemoRound, b)}
	for r := range m.rounds {
		m.rounds[r].chosen = -1
		m.rounds[r].costs = make([]int64, n)
		for v := range m.rounds[r].costs {
			m.rounds[r].costs[v] = memoStale
		}
	}
	return m
}

// clearFrom stales every round >= r (a winner changed, so later rounds'
// running-min vectors no longer match what their costs were built on).
func (m *sumMemo) clearFrom(r int) {
	for ; r < len(m.rounds); r++ {
		if m.rounds[r].chosen < 0 && !anyKnown(m.rounds[r].costs) {
			return // already clear from here on
		}
		m.rounds[r].chosen = -1
		for v := range m.rounds[r].costs {
			m.rounds[r].costs[v] = memoStale
		}
	}
}

func anyKnown(costs []int64) bool {
	for _, c := range costs {
		if c != memoStale {
			return true
		}
	}
	return false
}

// memoRepair updates the memo after RepairRows: the memo survives a
// repair exactly when in(u) and every row feeding the running-min
// vectors (the in-anchors and the memoised winners) are untouched; then
// only the candidates whose own rows changed go stale. inSame reports
// whether the in(u) anchor list is unchanged.
func (dv *Deviator) memoRepair(st graph.RepairStats, inSame bool) {
	m := dv.memo
	if m == nil {
		return
	}
	if st.FullRefill || !inSame {
		dv.memo = nil
		return
	}
	if len(st.Changed) == 0 {
		return
	}
	anchor := make(map[int32]bool, len(dv.in)+len(m.rounds))
	for _, v := range dv.in {
		anchor[int32(v)] = true
	}
	for _, r := range m.rounds {
		if r.chosen >= 0 {
			anchor[int32(r.chosen)] = true
		}
	}
	for _, s := range st.Changed {
		if anchor[s] {
			dv.memo = nil // a vector-feeding row moved: all costs suspect
			return
		}
	}
	for _, s := range st.Changed {
		for r := range m.rounds {
			m.rounds[r].costs[s] = memoStale
		}
	}
}

// inMinSuffix returns the memoised suffix bound against inMin alone —
// the bound EvalBounded amortises over the many single-candidate calls
// of the enumerate scans. rebuildInMin (any fill or repair) invalidates
// it.
func (dv *Deviator) inMinSuffix() []int64 {
	n := dv.game.N()
	if dv.sumSufIn == nil {
		dv.sumSufIn = make([]int64, n+1)
	}
	if !dv.sumSufInOK {
		dv.ensureColMin()
		cm := dv.colMin
		cinf := dv.cinf
		suf := dv.sumSufIn
		suf[n] = 0
		for w := n - 1; w >= 0; w-- {
			m := dv.inMin[w]
			if cm[w] < m {
				m = cm[w]
			}
			c := cinf
			if m < graph.InfDist {
				c = int64(m) + 1
			}
			suf[w] = suf[w+1] + c
		}
		dv.sumSufInOK = true
	}
	return dv.sumSufIn
}

// sumEvalBounded evaluates candidate anchor extra against the running
// min-vector vec under a pruning budget (extra < 0 evaluates vec
// alone). It returns the exact SUM cost, or pruned=true certifying the
// cost strictly exceeds budget. suf must be a sound suffix bound for
// vec (fillSumSuffix of vec, or of any entrywise-greater vector).
//
// The kernel works in total-contribution space, where the source's own
// entry (vec[u] = InfDist, unreachable by construction) contributes one
// cinf that the SUM cost excludes — hence the cinf offset on both the
// budget and the result.
func (dv *Deviator) sumEvalBounded(vec []int32, extra int, suf []int64, budget int64) (int64, bool) {
	n := len(vec)
	var row []int32
	if extra >= 0 {
		row = dv.rows[extra*n : (extra+1)*n]
	}
	if budget > 1<<62 {
		// An unbounded scan (budget seeded at MaxInt64): clamp so the
		// cinf offset cannot overflow — no real total reaches 2^62.
		budget = 1 << 62
	}
	cinf := dv.cinf
	if suf[0] > budget+cinf {
		// The tier's total already exceeds the budget: the candidate is
		// hopeless without reading a single row entry.
		return 0, true
	}
	sum, reached, pruned := graph.SumMergeBounded(vec, row, suf, cinf, budget+cinf)
	if pruned {
		return 0, true
	}
	return sum + int64(n-reached-1)*cinf, false
}

// EvalBounded is Eval under a pruning budget: it returns Eval(strategy),
// or pruned=true certifying that Eval(strategy) strictly exceeds bound.
// Callers scanning for improvements below a known cost (the equilibrium
// and improvement-graph scans in internal/enumerate) pass that cost as
// the bound so losing candidates abort a prefix in. On non-SUM games,
// without a cache, or with the kernel disabled it falls back to a full
// Eval.
func (dv *Deviator) EvalBounded(strategy []int, bound int64) (cost int64, pruned bool) {
	if !dv.sumPrune() {
		return dv.Eval(strategy), false
	}
	for _, v := range strategy {
		if v == dv.u {
			// Self-anchors need Eval's filtering (rare, tolerated there).
			return dv.Eval(strategy), false
		}
	}
	n := dv.game.N()
	suf := dv.inMinSuffix()
	switch len(strategy) {
	case 0:
		return dv.sumEvalBounded(dv.inMin, -1, suf, bound)
	case 1:
		return dv.sumEvalBounded(dv.inMin, strategy[0], suf, bound)
	}
	vec := getInt32(n)
	defer putInt32(vec)
	copy(vec, dv.inMin)
	for _, v := range strategy[:len(strategy)-1] {
		graph.MinInto(vec, dv.rows[v*n:(v+1)*n])
	}
	// The suffix bound against inMin stays valid: vec only decreased.
	return dv.sumEvalBounded(vec, strategy[len(strategy)-1], suf, bound)
}
