package dynamics

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
)

// Incremental (pooled, repair-per-move) dynamics must reproduce the
// refill-per-mover path exactly: same moves, same rounds, same final
// profile, for both engines, both versions, and every built-in
// responder pair.
func TestIncrementalDynamicsMatchesRefill(t *testing.T) {
	pairs := []struct {
		name   string
		plain  core.Responder
		cached core.DeviatorResponder
	}{
		{"exact", core.ExactResponder(0), core.ExactDeviatorResponder(0)},
		{"greedy", core.GreedyResponder, core.GreedyDeviatorResponder},
		{"swap", core.SwapResponder, core.SwapDeviatorResponder},
	}
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		for _, p := range pairs {
			for seed := int64(0); seed < 3; seed++ {
				t.Run(fmt.Sprintf("%v/%s/seed=%d", ver, p.name, seed), func(t *testing.T) {
					g := core.UniformGame(10, 1, ver)
					start := RandomProfile(g, rand.New(rand.NewSource(seed)))
					base := Options{Responder: p.plain, DetectLoops: true, MaxRounds: 200}
					inc := base
					inc.Cached = p.cached
					want, err := Run(g, start, base)
					if err != nil {
						t.Fatal(err)
					}
					got, err := Run(g, start, inc)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, "Run", got, want)

					wantSim, err := RunSimultaneous(g, start, base)
					if err != nil {
						t.Fatal(err)
					}
					gotSim, err := RunSimultaneous(g, start, inc)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, "RunSimultaneous", gotSim, wantSim)
				})
			}
		}
	}
}

// BBNCG_INCREMENTAL=0 must force the refill path even when a Cached
// responder is wired, and still produce identical results.
func TestIncrementalEnvDisable(t *testing.T) {
	t.Setenv("BBNCG_INCREMENTAL", "0")
	g := core.UniformGame(8, 1, core.SUM)
	start := RandomProfile(g, rand.New(rand.NewSource(4)))
	opts := Options{Responder: core.GreedyResponder, Cached: core.GreedyDeviatorResponder, MaxRounds: 100}
	if pool, _ := opts.newPool(g); pool != nil {
		t.Fatal("pool built despite BBNCG_INCREMENTAL=0")
	}
	got, err := Run(g, start, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, start, Options{Responder: core.GreedyResponder, MaxRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "Run", got, want)
}

// The race test of the pooled speculative path: many parallel rounds
// over a pool too small to hold every player, so acquisitions, repairs,
// pins and evictions interleave with concurrent responder execution.
// Under -race this proves round-scoped matrices are never recycled while
// a worker still reads them (the Deviator.Release-into-pool fix); the
// result must also match the sequential refill path exactly.
func TestIncrementalParallelRace(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
		runtime.GOMAXPROCS(4)
	}
	n := 16
	g := core.UniformGame(n, 2, core.MAX)
	start := RandomProfile(g, rand.New(rand.NewSource(11)))
	// Room for only 5 of 16 matrices: constant eviction pressure.
	budget := 5 * 4 * int64(n) * int64(n+1)
	inc := Options{
		Responder: core.GreedyResponder, Cached: core.GreedyDeviatorResponder,
		Parallel: true, PoolBudget: budget, MaxRounds: 60, DetectLoops: true,
	}
	got, err := Run(g, start, inc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, start, Options{Responder: core.GreedyResponder, MaxRounds: 60, DetectLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "Run(parallel,pooled)", got, want)

	gotSim, err := RunSimultaneous(g, start, inc)
	if err != nil {
		t.Fatal(err)
	}
	wantSim, err := RunSimultaneous(g, start, Options{Responder: core.GreedyResponder, MaxRounds: 60})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "RunSimultaneous(parallel,pooled)", gotSim, wantSim)
}
