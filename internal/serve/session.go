package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/store"
	"repro/pkg/bbncg"
)

// ErrSessionClosed is returned by every operation on a session that has
// been deleted or whose manager has shut down: post-close access is
// defined behaviour, not a race.
var ErrSessionClosed = errors.New("serve: session is closed")

// Session is one persistent game: a game instance, its live profile,
// and a warm cache pool that makes repeated queries cheap. All
// operations serialise on the session mutex; distinct sessions are
// fully concurrent. Every mutation is appended to the session's event
// log before it is applied, so the session replays byte-identically
// after a crash.
type Session struct {
	id string

	mu   sync.Mutex
	game *bbncg.Game
	d    *bbncg.Digraph
	// pool is swapped only under mu (eviction replaces it with a cold
	// one), but read lock-free by Stats — hence the atomic pointer.
	pool atomic.Pointer[bbncg.CachePool]
	resp bbncg.ResponderChoice
	// lastBR completes the pool's round memo for query serving: the
	// memo proves "u's last scan against this exact anchor found no
	// improving move", and lastBR holds that full answer (the memo bit
	// alone cannot reproduce the cost fields).
	lastBR map[int]bbncg.BestResponse

	st          *store.Store
	anchorEvery int
	sinceAnchor int
	poolBudget  int64
	spec        *bbncg.GeneratorSpec // create-event provenance, if any
	// wts makes the session arc-weighted: queries answer weighted costs
	// on the weighted cache tier, and rewires may carry a weight. wspec
	// is the create-event recipe (Info provenance and replay source).
	wts   *bbncg.Weights
	wspec *bbncg.WeightsSpec

	// seq (next event sequence number), moves and evictions are written
	// under mu but read lock-free by Stats, so /statsz never blocks
	// behind a long-running query on the session lock.
	seq       atomic.Int64
	moves     atomic.Int64
	evictions atomic.Int64
	replayed  bool
	closed    bool

	// lastUsed is the manager's LRU clock tick of the most recent
	// operation; atomic so the eviction scan can read it lock-free.
	lastUsed atomic.Int64
}

// newSession wires a live session around an already-validated game and
// profile. The caller has logged (or replayed) the corresponding
// events.
func newSession(id string, g *bbncg.Game, d *bbncg.Digraph, rc bbncg.ResponderChoice,
	st *store.Store, seq int64, anchorEvery int, poolBudget int64, wts *bbncg.Weights) *Session {
	// The journal window covers a healthy number of rewires between two
	// queries of the same player; overflow just falls back to the
	// diff-resync path.
	d.StartJournal(8*d.N() + 256)
	s := &Session{
		id:          id,
		game:        g,
		d:           d,
		resp:        rc,
		lastBR:      make(map[int]bbncg.BestResponse),
		st:          st,
		anchorEvery: anchorEvery,
		poolBudget:  poolBudget,
		wts:         wts,
	}
	s.pool.Store(s.newPool())
	s.seq.Store(seq)
	return s
}

// newPool returns a cold pool matching the session's weighting.
func (s *Session) newPool() *bbncg.CachePool {
	if s.wts != nil {
		return bbncg.NewWeightedCachePool(s.game, s.poolBudget, s.wts)
	}
	return bbncg.NewCachePool(s.game, s.poolBudget)
}

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// guard locks the session and fails closed sessions.
func (s *Session) guard() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	return nil
}

// logMutation appends a rewire event and, at the anchor cadence, a full
// profile snapshot. It is called with the mutation NOT yet applied:
// log-then-apply means a crash between the two replays the mutation.
func (s *Session) logMutation(player int, strategy []int, weight int32) error {
	ev := event{Seq: s.seq.Load(), Kind: evRewire, Player: player, Strategy: append([]int{}, strategy...), Weight: weight}
	if err := appendEvent(s.st, s.id, ev); err != nil {
		return err
	}
	s.seq.Add(1)
	s.sinceAnchor++
	return nil
}

// maybeAnchor appends a snapshot of the CURRENT profile once enough
// mutations have accumulated. Anchors are advisory — a failed anchor
// write leaves the log replayable from the previous one — so the error
// is surfaced but the session stays consistent, and the cadence counter
// is not reset so the next mutation retries.
func (s *Session) maybeAnchor() error {
	if s.anchorEvery <= 0 || s.sinceAnchor < s.anchorEvery {
		return nil
	}
	if err := fault.Hit(siteSnapshotWrite); err != nil {
		return fmt.Errorf("serve: anchor snapshot: %w", err)
	}
	if err := appendEvent(s.st, s.id, anchorEvent(s.seq.Load(), s.d)); err != nil {
		return err
	}
	s.seq.Add(1)
	s.sinceAnchor = 0
	return nil
}

// applyMove mutates the profile and invalidates the query caches.
func (s *Session) applyMove(player int, strategy []int) {
	s.d.SetOut(player, strategy)
	s.pool.Load().Invalidate()
	s.moves.Add(1)
	clear(s.lastBR)
}

// Rewire validates and applies one explicit strategy change, returning
// whether the profile actually changed (rewiring to the current
// strategy is a logged no-op: it still appends an event, so intent
// survives a crash, but SetOut detects the identical set and no cache
// is invalidated). In a weighted session, weight > 0 sets the weight of
// every new arc (player, target) before the rewire applies — a rewire
// to the current strategy with a weight is a pure reweighting, served
// by the pool's weight-generation repair path without any topology
// invalidation. The changed return reports topology changes only.
func (s *Session) Rewire(player int, strategy []int, weight int32) (changed bool, err error) {
	if err := s.guard(); err != nil {
		return false, err
	}
	defer s.mu.Unlock()
	if player < 0 || player >= s.game.N() {
		return false, fmt.Errorf("serve: player %d out of range [0,%d)", player, s.game.N())
	}
	if err := bbncg.ValidateStrategy(s.game.N(), player, s.game.Budgets[player], strategy); err != nil {
		return false, err
	}
	if weight != 0 {
		if s.wts == nil {
			return false, fmt.Errorf("serve: session %s is unweighted; rewire cannot carry a weight", s.id)
		}
		if weight < 1 || weight > s.wspec.Max {
			return false, fmt.Errorf("serve: weight %d out of range [1,%d]", weight, s.wspec.Max)
		}
	}
	if err := s.logMutation(player, strategy, weight); err != nil {
		return false, err
	}
	if weight > 0 {
		for _, v := range strategy {
			if err := s.wts.Set(player, v, weight); err != nil {
				return false, err
			}
		}
	}
	gen := s.d.Gen()
	s.applyMove(player, strategy)
	if err := s.maybeAnchor(); err != nil {
		return s.d.Gen() != gen, err
	}
	return s.d.Gen() != gen, nil
}

// BestResponseAnswer is the wire form of a best-response query.
type BestResponseAnswer struct {
	Player    int    `json:"player"`
	Responder string `json:"responder"`
	Improves  bool   `json:"improves"`
	Strategy  []int  `json:"strategy"`
	Cost      int64  `json:"cost"`
	Current   int64  `json:"current"`
	Explored  int64  `json:"explored"`
	// Memo reports that the whole scan was skipped by the round memo
	// (the answer is the recorded one, still exact for this anchor).
	Memo bool `json:"memo,omitempty"`
}

// BestResponse computes player u's best response without mutating the
// session. responder may be "" for the session default; only default-
// responder answers feed the memo (a different responder's answer must
// not satisfy, or poison, the default's skip path).
func (s *Session) BestResponse(u int, responder string, exactCap int64) (BestResponseAnswer, error) {
	rc := s.resp
	if responder != "" && responder != s.resp.Name {
		var err error
		rc, err = bbncg.ResponderByName(responder, exactCap)
		if err != nil {
			return BestResponseAnswer{}, err
		}
	}
	if err := s.guard(); err != nil {
		return BestResponseAnswer{}, err
	}
	defer s.mu.Unlock()
	if u < 0 || u >= s.game.N() {
		return BestResponseAnswer{}, fmt.Errorf("serve: player %d out of range [0,%d)", u, s.game.N())
	}
	if rc.Exact {
		if err := bbncg.CheckExactSpace(s.game, u, rc.Cap); err != nil {
			return BestResponseAnswer{}, err
		}
	}
	br, memo := s.bestResponseLocked(u, rc)
	return BestResponseAnswer{
		Player:    u,
		Responder: rc.Name,
		Improves:  br.Improves(),
		Strategy:  append([]int{}, br.Strategy...),
		Cost:      br.Cost,
		Current:   br.Current,
		Explored:  br.Explored,
		Memo:      memo,
	}, nil
}

// bestResponseLocked runs one pooled scan, riding the memo when the
// requested responder is the session default.
func (s *Session) bestResponseLocked(u int, rc bbncg.ResponderChoice) (bbncg.BestResponse, bool) {
	pool := s.pool.Load()
	def := rc.Name == s.resp.Name
	if def && pool.SkipResponse(s.d, u) {
		if br, ok := s.lastBR[u]; ok {
			return br, true
		}
	}
	br := bbncg.PooledResponse(s.game, s.d, pool, u, rc.Cached, def)
	if def {
		if br.Improves() {
			delete(s.lastBR, u)
		} else {
			s.lastBR[u] = br
		}
	}
	return br, false
}

// EquilibriumAnswer is the wire form of an equilibrium-status query.
type EquilibriumAnswer struct {
	Responder string `json:"responder"`
	Stable    bool   `json:"stable"`
	// Checked counts the players scanned (budget-0 players are stable
	// by definition and skipped).
	Checked int `json:"checked"`
	// Witness is the first improving deviation found, when not stable.
	Witness *BestResponseAnswer `json:"witness,omitempty"`
}

// Equilibrium scans every player for an improving move with the
// session responder (an exact responder certifies Nash; greedy/swap
// certify stability against that heuristic). The scan feeds the round
// memo, so repeating it against an unchanged session is O(players)
// memo hits with zero cache work.
func (s *Session) Equilibrium(responder string, exactCap int64) (EquilibriumAnswer, error) {
	rc := s.resp
	if responder != "" && responder != s.resp.Name {
		var err error
		rc, err = bbncg.ResponderByName(responder, exactCap)
		if err != nil {
			return EquilibriumAnswer{}, err
		}
	}
	if err := s.guard(); err != nil {
		return EquilibriumAnswer{}, err
	}
	defer s.mu.Unlock()
	ans := EquilibriumAnswer{Responder: rc.Name, Stable: true}
	for u := 0; u < s.game.N(); u++ {
		if s.game.Budgets[u] == 0 {
			continue
		}
		if rc.Exact {
			if err := bbncg.CheckExactSpace(s.game, u, rc.Cap); err != nil {
				return EquilibriumAnswer{}, err
			}
		}
		br, _ := s.bestResponseLocked(u, rc)
		ans.Checked++
		if br.Improves() {
			ans.Stable = false
			ans.Witness = &BestResponseAnswer{
				Player: u, Responder: rc.Name, Improves: true,
				Strategy: append([]int{}, br.Strategy...),
				Cost:     br.Cost, Current: br.Current, Explored: br.Explored,
			}
			break
		}
	}
	return ans, nil
}

// Welfare evaluates the current profile's social cost and per-player
// costs, matrix-free.
func (s *Session) Welfare() (bbncg.Welfare, error) {
	if err := s.guard(); err != nil {
		return bbncg.Welfare{}, err
	}
	defer s.mu.Unlock()
	if s.wts != nil {
		return bbncg.WeightedWelfareOf(s.game, s.d, s.wts), nil
	}
	return bbncg.WelfareOf(s.game, s.d), nil
}

// DynamicsReport summarises served dynamics rounds.
type DynamicsReport struct {
	Rounds    int  `json:"rounds"`
	Moves     int  `json:"moves"`
	Converged bool `json:"converged"`
}

// Step runs up to rounds of sequential best-response dynamics with the
// session responder, mutating the session. Each accepted move is
// logged before it is applied — per-move crash safety — and rides the
// warm pool exactly like dynamics.Run: settled rounds cost a memo hit
// per player.
func (s *Session) Step(rounds int) (DynamicsReport, error) {
	if err := s.guard(); err != nil {
		return DynamicsReport{}, err
	}
	defer s.mu.Unlock()
	if rounds <= 0 {
		rounds = 1
	}
	var rep DynamicsReport
	for r := 0; r < rounds; r++ {
		changed := false
		for u := 0; u < s.game.N(); u++ {
			if s.game.Budgets[u] == 0 {
				continue
			}
			if s.resp.Exact {
				if err := bbncg.CheckExactSpace(s.game, u, s.resp.Cap); err != nil {
					return rep, err
				}
			}
			br, _ := s.bestResponseLocked(u, s.resp)
			if !br.Improves() {
				continue
			}
			if err := s.logMutation(u, br.Strategy, 0); err != nil {
				return rep, err
			}
			s.applyMove(u, br.Strategy)
			rep.Moves++
			changed = true
			if err := s.maybeAnchor(); err != nil {
				return rep, err
			}
		}
		rep.Rounds = r + 1
		if !changed {
			rep.Converged = true
			break
		}
	}
	return rep, nil
}

// Info is the wire form of session metadata.
type Info struct {
	ID        string               `json:"id"`
	N         int                  `json:"n"`
	Version   string               `json:"version"`
	Budgets   []int                `json:"budgets"`
	Responder string               `json:"responder"`
	Graph     *bbncg.GeneratorSpec `json:"graph,omitempty"`
	Weights   *bbncg.WeightsSpec   `json:"weights,omitempty"`
	Seq       int64                `json:"seq"`
	Moves     int64                `json:"moves"`
	Replayed  bool                 `json:"replayed,omitempty"`
	Arcs      [][2]int             `json:"arcs,omitempty"`
}

// Info reports the session's metadata; withArcs includes the full
// profile (the canonical comparison handle for replay tests).
func (s *Session) Info(withArcs bool) (Info, error) {
	if err := s.guard(); err != nil {
		return Info{}, err
	}
	defer s.mu.Unlock()
	info := Info{
		ID:        s.id,
		N:         s.game.N(),
		Version:   s.game.Version.String(),
		Budgets:   append([]int{}, s.game.Budgets...),
		Responder: s.resp.Name,
		Graph:     s.spec,
		Weights:   s.wspec,
		Seq:       s.seq.Load(),
		Moves:     s.moves.Load(),
		Replayed:  s.replayed,
	}
	if withArcs {
		info.Arcs = bbncg.Arcs(s.d)
	}
	return info, nil
}

// SessionStats is the wire form of one session's pool counters.
type SessionStats struct {
	ID        string          `json:"id"`
	N         int             `json:"n"`
	Seq       int64           `json:"seq"`
	Moves     int64           `json:"moves"`
	Evictions int64           `json:"evictions"`
	PoolBytes int64           `json:"poolBytes"`
	Pool      bbncg.PoolStats `json:"pool"`
}

// Stats snapshots the session's counters. Unlike the other accessors
// it does not take the session lock — PoolStats and BytesUsed are
// atomics — so /statsz never blocks behind a long-running query.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		ID:        s.id,
		N:         s.game.N(),
		Seq:       s.seq.Load(),
		Moves:     s.moves.Load(),
		Evictions: s.evictions.Load(),
		PoolBytes: s.pool.Load().BytesUsed(),
		Pool:      s.pool.Load().Stats(),
	}
}

// close marks the session closed; the pool's matrices return to the
// global allocator. Caller holds no session lock.
func (s *Session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.pool.Load().Close()
	clear(s.lastBR)
}

// evict drops the session's warm cache (pool closed and replaced by a
// cold one) without touching the game, profile or log: the memory
// governor's unit of reclamation. Returns the bytes reclaimed. A busy
// session (lock held by a request) is skipped — freed 0 — rather than
// waited on: evicting it would cost the request its warm cache anyway.
func (s *Session) evict() int64 {
	if !s.mu.TryLock() {
		return 0
	}
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	freed := s.pool.Load().BytesUsed()
	s.pool.Load().Close()
	s.pool.Store(s.newPool())
	clear(s.lastBR)
	s.evictions.Add(1)
	return freed
}
