package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/pkg/bbncg"
	"repro/pkg/bbncg/api"
)

// sseEvent is one parsed server-sent event (or heartbeat comment).
type sseEvent struct {
	id      string
	name    string
	data    string
	comment bool
}

// readSSE parses events off r until the stream ends or limit events
// (comments excluded) have arrived; limit <= 0 reads to EOF.
func readSSE(r *bufio.Reader, limit int) ([]sseEvent, error) {
	var evs []sseEvent
	cur := sseEvent{}
	rounds := 0
	flush := func() {
		if cur.name != "" || cur.data != "" || cur.comment {
			evs = append(evs, cur)
			if !cur.comment {
				rounds++
			}
		}
		cur = sseEvent{}
	}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			flush()
			return evs, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			flush()
			if limit > 0 && rounds >= limit {
				return evs, nil
			}
		case strings.HasPrefix(line, ": "):
			cur.comment = true
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// streamDyn drives one streamed dynamics request and returns the raw
// parsed events. lastEventID, when non-empty, is sent as the SSE
// reconnect header.
func streamDyn(t *testing.T, ctx context.Context, ts *httptest.Server, id string, req api.DynamicsRequest, lastEventID string, limit int) ([]sseEvent, *http.Response) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sessions/"+id+"/dynamics?stream=1", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		hr.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type %q", ct)
	}
	evs, _ := readSSE(bufio.NewReader(resp.Body), limit)
	return evs, resp
}

func dynSession(t *testing.T, m *Manager, id string, seed int64) *Session {
	t.Helper()
	s, err := m.Create(api.CreateRequest{ID: id, Graph: &bbncg.GeneratorSpec{Kind: "random", N: 14, B: 2, Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStreamMatchesPlain is the byte-identity acceptance gate: twin
// sessions from one seed, one run streamed and one plain, and the
// concatenated round-event payloads must equal the plain response's
// trace entries byte for byte.
func TestStreamMatchesPlain(t *testing.T) {
	ts, m := newTestServer(t, Options{})
	plain := dynSession(t, m, "plain", 42)
	dynSession(t, m, "stream", 42)

	rep, err := plain.Step(200)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("plain run did not converge")
	}

	evs, resp := streamDyn(t, context.Background(), ts, "stream", api.DynamicsRequest{Rounds: 200}, "", 0)
	resp.Body.Close()
	var rounds []sseEvent
	var done *sseEvent
	for i, ev := range evs {
		switch {
		case ev.comment:
		case ev.name == api.StreamEventRound:
			rounds = append(rounds, ev)
		case ev.name == api.StreamEventDone:
			done = &evs[i]
		default:
			t.Fatalf("unexpected event %q: %s", ev.name, ev.data)
		}
	}
	if done == nil {
		t.Fatal("stream ended without a done event")
	}
	if len(rounds) != len(rep.Trace) {
		t.Fatalf("streamed %d rounds, plain ran %d", len(rounds), len(rep.Trace))
	}
	for i, ev := range rounds {
		want, err := json.Marshal(rep.Trace[i])
		if err != nil {
			t.Fatal(err)
		}
		if ev.data != string(want) {
			t.Fatalf("round %d differs:\n stream %s\n plain  %s", i, ev.data, want)
		}
		if ev.id != fmt.Sprintf("%d", rep.Trace[i].Round) {
			t.Fatalf("round %d carries id %q, want %d", i, ev.id, rep.Trace[i].Round)
		}
	}
	var sum api.DynamicsResult
	if err := json.Unmarshal([]byte(done.data), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Converged || sum.Rounds != rep.Rounds || sum.Moves != rep.Moves || sum.Trace != nil {
		t.Fatalf("done summary %+v, plain %+v", sum, rep)
	}
}

// TestStreamResume reconnects mid-run with Last-Event-ID: the union of
// the two client views must equal an uninterrupted twin's full trace.
func TestStreamResume(t *testing.T) {
	ts, m := newTestServer(t, Options{})
	twin := dynSession(t, m, "twin", 30)
	dynSession(t, m, "res", 30)

	rep, err := twin.Step(200)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || len(rep.Trace) < 4 {
		t.Fatalf("seed 30 settles in %d rounds; test wants >= 4", len(rep.Trace))
	}

	// First connection: read 2 rounds, then drop the client.
	ctx, cancel := context.WithCancel(context.Background())
	evs, resp := streamDyn(t, ctx, ts, "res", api.DynamicsRequest{Rounds: 200}, "", 2)
	cancel()
	resp.Body.Close()
	seen := make(map[int]string)
	lastID := ""
	for _, ev := range evs {
		if ev.name != api.StreamEventRound {
			continue
		}
		var rt api.RoundTrace
		if err := json.Unmarshal([]byte(ev.data), &rt); err != nil {
			t.Fatal(err)
		}
		seen[rt.Round] = ev.data
		lastID = ev.id
	}
	if lastID == "" {
		t.Fatal("first connection saw no rounds")
	}

	// Give the server a moment to notice the cancel and release the
	// session (cancellation lands at the next round boundary).
	waitInFlightZero(t, ts)

	// Reconnect where SSE clients do: Last-Event-ID = last seen id.
	// Recorded rounds replay, then the run continues to convergence.
	evs2, resp2 := streamDyn(t, context.Background(), ts, "res", api.DynamicsRequest{Rounds: 200}, lastID, 0)
	resp2.Body.Close()
	gotDone := false
	for _, ev := range evs2 {
		switch ev.name {
		case api.StreamEventRound:
			var rt api.RoundTrace
			if err := json.Unmarshal([]byte(ev.data), &rt); err != nil {
				t.Fatal(err)
			}
			if prev, dup := seen[rt.Round]; dup && prev != ev.data {
				t.Fatalf("round %d replayed differently: %s vs %s", rt.Round, prev, ev.data)
			}
			seen[rt.Round] = ev.data
		case api.StreamEventDone:
			gotDone = true
		case api.StreamEventError:
			t.Fatalf("resume errored: %s", ev.data)
		}
	}
	if !gotDone {
		t.Fatal("resumed stream ended without done")
	}
	// The union must cover the twin's whole trace byte-for-byte. The
	// resumed request may run extra rounds past convergence (a resume
	// with rounds=200 runs new rounds like any Step on a settled
	// session); those must be zero-move rounds at the final welfare.
	if len(seen) < len(rep.Trace) {
		t.Fatalf("union covers %d rounds, twin ran %d", len(seen), len(rep.Trace))
	}
	for _, rt := range rep.Trace {
		want, err := json.Marshal(rt)
		if err != nil {
			t.Fatal(err)
		}
		if seen[rt.Round] != string(want) {
			t.Fatalf("round %d: union %s, twin %s", rt.Round, seen[rt.Round], want)
		}
	}
	final := rep.Trace[len(rep.Trace)-1]
	for round, data := range seen {
		if round <= final.Round {
			continue
		}
		var rt api.RoundTrace
		if err := json.Unmarshal([]byte(data), &rt); err != nil {
			t.Fatal(err)
		}
		if rt.Moves != 0 || rt.Welfare != final.Welfare {
			t.Fatalf("post-convergence round %d moved: %s", round, data)
		}
	}

	// A resume point older than the trace window is a plain 400.
	hr, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/res/dynamics?stream=1", strings.NewReader(`{"rounds":1,"from":-3}`))
	badResp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer badResp.Body.Close()
	if badResp.StatusCode != 400 {
		t.Fatalf("negative from: %d", badResp.StatusCode)
	}
}

// waitInFlightZero polls /statsz until the in-flight gauge drains —
// the no-leak assertion behind disconnect cancellation.
func waitInFlightZero(t *testing.T, ts *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st api.StatsSnapshot
		if code := call(t, ts, "GET", "/statsz", nil, &st); code != 200 {
			t.Fatalf("statsz: %d", code)
		}
		if st.InFlight == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight gauge stuck at %d after disconnect", st.InFlight)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamDisconnectCancels drops the client mid-run while a delay
// failpoint keeps rounds slow: the run must stop at the next round
// boundary (gauge drains, session lock frees) instead of finishing the
// requested 10k rounds.
func TestStreamDisconnectCancels(t *testing.T) {
	ts, m := newTestServer(t, Options{})
	dynSession(t, m, "drop", 44)
	fault.Install(fault.NewSet(fault.Rule{
		Site: "serve.dynamics.round", Mode: fault.ModeDelay,
		Delay: 20 * time.Millisecond, Sched: fault.Always(),
	}))
	defer fault.Disarm()

	ctx, cancel := context.WithCancel(context.Background())
	_, resp := streamDyn(t, ctx, ts, "drop", api.DynamicsRequest{Rounds: 10000}, "", 1)
	cancel()
	resp.Body.Close()
	waitInFlightZero(t, ts)
	fault.Disarm()

	// The session must be immediately usable — the abandoned run is not
	// holding the lock or still burning rounds.
	s, _ := m.Get("drop")
	done := make(chan error, 1)
	go func() {
		_, err := s.Welfare()
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session lock still held after client disconnect")
	}
}

// TestStreamHeartbeat paces rounds with the delay failpoint and a
// near-zero heartbeat cadence: comment lines must appear between
// round events.
func TestStreamHeartbeat(t *testing.T) {
	m := openManager(t, t.TempDir(), Options{})
	ts := httptest.NewServer(NewServer(m, Config{HeartbeatEvery: time.Millisecond}))
	t.Cleanup(ts.Close)
	dynSession(t, m, "hb", 45)
	fault.Install(fault.NewSet(fault.Rule{
		Site: "serve.dynamics.round", Mode: fault.ModeDelay,
		Delay: 30 * time.Millisecond, Sched: fault.Always(),
	}))
	defer fault.Disarm()

	evs, resp := streamDyn(t, context.Background(), ts, "hb", api.DynamicsRequest{Rounds: 3}, "", 0)
	resp.Body.Close()
	beats := 0
	for _, ev := range evs {
		if ev.comment {
			beats++
		}
	}
	if beats == 0 {
		t.Fatal("no heartbeats on a slow stream")
	}
}
