package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/pkg/bbncg/api"
)

// sseWriter serialises Server-Sent Events onto one response. The mutex
// exists because the heartbeat ticker writes concurrently with the
// round emitter; everything else is single-writer.
type sseWriter struct {
	mu sync.Mutex
	w  http.ResponseWriter
	fl http.Flusher
}

func newSSEWriter(w http.ResponseWriter) (*sseWriter, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	return &sseWriter{w: w, fl: fl}, true
}

// event writes one SSE event. id < 0 omits the id field.
func (s *sseWriter) event(name string, id int, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id >= 0 {
		if _, err := fmt.Fprintf(s.w, "id: %d\n", id); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		return err
	}
	s.fl.Flush()
	return nil
}

// comment writes an SSE comment line — the heartbeat.
func (s *sseWriter) comment(text string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := fmt.Fprintf(s.w, ": %s\n\n", text); err != nil {
		return err
	}
	s.fl.Flush()
	return nil
}

// streamDynamics runs dynamics emitting each round as an SSE event:
//
//	id: <round>
//	event: round
//	data: api.RoundTrace
//
// followed by a terminal `done` event carrying the api.DynamicsResult
// summary (Trace omitted — the rounds already streamed), or an `error`
// event carrying the api.Error. Heartbeat comment lines are emitted
// every Config.HeartbeatEvery while rounds are slow.
//
// Resume: a reconnecting client sends the standard Last-Event-ID
// header (or DynamicsRequest.From); recorded rounds >= from replay
// from the session's in-memory trace window before new rounds run.
// Cancellation (client disconnect) stops the run at the next round
// boundary; applied moves are already durable, so the resumed run
// continues exactly where the trace ends.
func (s *Server) streamDynamics(w http.ResponseWriter, r *http.Request, sess *Session, req api.DynamicsRequest) {
	from := req.From
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		id, err := strconv.Atoi(lei)
		if err != nil {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Errorf("serve: Last-Event-ID %q: want a round number", lei))
			return
		}
		from = id + 1
	}
	if from < 0 {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Errorf("serve: from must be >= 0, got %d", from))
		return
	}
	// Pre-validate the resume point before committing to SSE headers,
	// so a stale cursor gets a plain 400 envelope. The window can
	// still slide before the run takes the session lock; that rare
	// race surfaces as an SSE error event instead.
	if from > 0 {
		base, _, err := sess.TraceWindow()
		if err != nil {
			writeErr(w, err)
			return
		}
		if from < base {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Errorf("serve: resume round %d predates the recorded trace (window starts at round %d)", from, base))
			return
		}
	}
	sw, ok := newSSEWriter(w)
	if !ok {
		writeError(w, http.StatusInternalServerError, api.CodeInternal,
			fmt.Errorf("serve: response writer does not support streaming"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	sw.fl.Flush()

	// The ResponseWriter dies with the handler, so the return path must
	// wait the heartbeat goroutine out, not just signal it.
	hbDone := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(s.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-t.C:
				sw.comment("hb") //nolint:errcheck // a dead conn cancels via ctx
			}
		}
	}()
	defer func() {
		close(hbDone)
		hbWG.Wait()
	}()

	ctx := r.Context()
	rep, err := sess.StreamStep(req.Rounds, from, func(rt api.RoundTrace) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return sw.event(api.StreamEventRound, rt.Round, rt)
	})
	s.m.Rebalance(sess.ID())
	if err != nil {
		if errors.Is(err, context.Canceled) || ctx.Err() != nil {
			return // client gone; nothing to tell it
		}
		status, code := errToAPI(err)
		_ = status // SSE is committed to 200; the code travels in the event
		sw.event(api.StreamEventError, -1, api.ErrorEnvelope{Err: api.Error{Code: code, Message: err.Error()}}) //nolint:errcheck
		return
	}
	rep.Trace = nil // rounds already streamed; done carries the summary only
	sw.event(api.StreamEventDone, -1, rep) //nolint:errcheck
}
