package dynamics

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func exactOpts() Options {
	return Options{Responder: core.ExactResponder(0), DetectLoops: true}
}

func TestRunConvergesOnStar(t *testing.T) {
	// A star is already an equilibrium: one quiet round, zero moves.
	d := graph.StarGraph(5)
	g := core.GameOf(d, core.SUM)
	res, err := Run(g, d, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Moves != 0 || res.Rounds != 1 {
		t.Fatalf("star run = %+v, want immediate convergence", res)
	}
	if !res.Final.Equal(d) {
		t.Fatal("final graph should equal the start")
	}
}

func TestRunDoesNotMutateStart(t *testing.T) {
	d := graph.PathGraph(6)
	snapshot := d.Clone()
	g := core.GameOf(d, core.SUM)
	if _, err := Run(g, d, exactOpts()); err != nil {
		t.Fatal(err)
	}
	if !d.Equal(snapshot) {
		t.Fatal("Run mutated the start graph")
	}
}

func TestRunReachesNashFromPath(t *testing.T) {
	d := graph.PathGraph(7)
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		g := core.GameOf(d, ver)
		res, err := Run(g, d, exactOpts())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%v: dynamics did not converge: %+v", ver, res)
		}
		dev, err := g.VerifyNash(res.Final, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dev != nil {
			t.Fatalf("%v: converged profile is not Nash: %v", ver, dev)
		}
	}
}

func TestRunFromRandomUnitBudgets(t *testing.T) {
	// Unit-budget games: dynamics should reach equilibria whose diameter
	// is O(1) (Section 4). Verify Nash for every converged run.
	rng := rand.New(rand.NewSource(5))
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		g := core.UniformGame(8, 1, ver)
		for trial := 0; trial < 10; trial++ {
			res, err := RunFromRandom(g, rng, exactOpts())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				continue // loops are legitimate outcomes; statistics in analysis
			}
			dev, err := g.VerifyNash(res.Final, 0)
			if err != nil {
				t.Fatal(err)
			}
			if dev != nil {
				t.Fatalf("%v trial %d: non-Nash fixed point: %v", ver, trial, dev)
			}
		}
	}
}

func TestSchedulers(t *testing.T) {
	var rr RoundRobin
	dst := make([]int, 5)
	rr.Order(dst, 3)
	for i, v := range dst {
		if v != i {
			t.Fatalf("round robin order = %v", dst)
		}
	}
	if rr.Name() == "" {
		t.Fatal("empty scheduler name")
	}
	ro := RandomOrder{Rng: rand.New(rand.NewSource(1))}
	ro.Order(dst, 1)
	seen := make(map[int]bool)
	for _, v := range dst {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("random order not a permutation: %v", dst)
	}
	if ro.Name() == "" {
		t.Fatal("empty scheduler name")
	}
}

func TestRandomOrderDynamicsStillReachNash(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := core.UniformGame(7, 1, core.SUM)
	opts := Options{
		Responder:   core.ExactResponder(0),
		Scheduler:   RandomOrder{Rng: rng},
		DetectLoops: true,
		MaxRounds:   200,
	}
	res, err := RunFromRandom(g, rng, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		dev, err := g.VerifyNash(res.Final, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dev != nil {
			t.Fatalf("converged but not Nash: %v", dev)
		}
	}
}

func TestTrajectoryRecording(t *testing.T) {
	d := graph.PathGraph(8)
	g := core.GameOf(d, core.SUM)
	opts := exactOpts()
	opts.RecordTrajectory = true
	res, err := Run(g, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != res.Rounds {
		t.Fatalf("trajectory has %d entries for %d rounds", len(res.Trajectory), res.Rounds)
	}
	final := g.SocialCost(res.Final)
	if res.Trajectory[len(res.Trajectory)-1] != final {
		t.Fatal("last trajectory entry disagrees with final social cost")
	}
}

func TestMaxRoundsStopsRun(t *testing.T) {
	d := graph.PathGraph(10)
	g := core.GameOf(d, core.SUM)
	opts := Options{Responder: core.ExactResponder(0), MaxRounds: 1}
	res, err := Run(g, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

func TestRunValidation(t *testing.T) {
	d := graph.PathGraph(4)
	g := core.GameOf(d, core.SUM)
	if _, err := Run(g, d, Options{}); err == nil {
		t.Fatal("missing responder accepted")
	}
	wrong := core.MustGame([]int{2, 1, 1, 0}, core.SUM)
	if _, err := Run(wrong, d, exactOpts()); err == nil {
		t.Fatal("realization mismatch accepted")
	}
}

func TestSwapResponderDynamics(t *testing.T) {
	// Swap dynamics converge to swap-stable profiles (weak equilibria).
	d := graph.PathGraph(9)
	g := core.GameOf(d, core.SUM)
	opts := Options{Responder: core.SwapResponder, DetectLoops: true}
	res, err := Run(g, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("swap dynamics did not converge: %+v", res)
	}
	dev, err := g.VerifySwapStable(res.Final)
	if err != nil {
		t.Fatal(err)
	}
	if dev != nil {
		t.Fatalf("fixed point not swap-stable: %v", dev)
	}
}

func TestGreedyResponderDynamics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := core.UniformGame(10, 2, core.SUM)
	opts := Options{Responder: core.GreedyResponder, DetectLoops: true, MaxRounds: 300}
	res, err := RunFromRandom(g, rng, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged && !res.Loop && res.Rounds < 300 {
		t.Fatalf("greedy dynamics stopped without verdict: %+v", res)
	}
}

func TestLoopDetectionOnForcedCycle(t *testing.T) {
	// A responder that deterministically alternates vertex 0's strategy
	// between {1} and {2} forces a 2-cycle of profiles; the engine must
	// detect it exactly.
	d := graph.NewDigraph(3)
	d.AddArc(0, 1)
	g := core.MustGame([]int{1, 0, 0}, core.SUM)
	flip := func(_ *core.Game, cur *graph.Digraph, u int) core.BestResponse {
		if u != 0 {
			return core.BestResponse{Strategy: cur.Out(u), Cost: 0, Current: 0}
		}
		next := []int{1}
		if cur.HasArc(0, 1) {
			next = []int{2}
		}
		// Claim an improvement so the move is always applied.
		return core.BestResponse{Strategy: next, Cost: 0, Current: 1}
	}
	res, err := Run(g, d, Options{Responder: flip, DetectLoops: true, MaxRounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Loop {
		t.Fatalf("loop not detected: %+v", res)
	}
	if res.LoopLength != 2 {
		t.Fatalf("loop length = %d, want 2", res.LoopLength)
	}
}
