package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Randomized equivalence suite for the distance-cache deviation engine:
// every fast path must agree exactly with the BFS-based reference on
// random digraphs, across SUM and MAX, connected and disconnected
// realizations, and the over-budget fallback.

// randomInstance returns a random game and realization. Budgets include 0
// so disconnected realizations occur regularly.
func randomInstance(n int, v Version, rng *rand.Rand) (*Game, *graph.Digraph) {
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = rng.Intn(3)
		if budgets[i] > n-1 {
			budgets[i] = n - 1
		}
	}
	g := MustGame(budgets, v)
	return g, graph.RandomOutDigraph(budgets, rng)
}

// randomStrategy returns k distinct targets != u.
func randomStrategy(n, u, k int, rng *rand.Rand) []int {
	perm := rng.Perm(n)
	s := make([]int, 0, k)
	for _, v := range perm {
		if v != u {
			s = append(s, v)
			if len(s) == k {
				break
			}
		}
	}
	return s
}

func TestCachedEvalMatchesBFSEval(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, version := range []Version{SUM, MAX} {
		for trial := 0; trial < 60; trial++ {
			n := 2 + rng.Intn(28)
			g, d := randomInstance(n, version, rng)
			u := rng.Intn(n)
			plain := NewDeviator(g, d, u)
			cached := NewDeviator(g, d, u)
			if !cached.EnsureCache(1 << 40) {
				t.Fatalf("n=%d: cache refused an effectively unlimited budget", n)
			}
			for k := 0; k <= 3 && k <= n-1; k++ {
				s := randomStrategy(n, u, k, rng)
				want := plain.Eval(s)
				got := cached.Eval(s)
				if got != want {
					t.Fatalf("%v n=%d u=%d s=%v: cached %d, BFS %d", version, n, u, s, got, want)
				}
			}
			// The current strategy in particular.
			cur := d.Out(u)
			if got, want := cached.Eval(cur), plain.Eval(cur); got != want {
				t.Fatalf("%v n=%d u=%d cur=%v: cached %d, BFS %d", version, n, u, cur, got, want)
			}
		}
	}
}

func TestEnsureCacheRespectsBudget(t *testing.T) {
	g, d := randomInstance(16, SUM, rand.New(rand.NewSource(5)))
	dv := NewDeviator(g, d, 0)
	// 16 vertices need 4*16*17 = 1088 bytes; one below must refuse.
	if dv.EnsureCache(1087) {
		t.Fatal("cache built over budget")
	}
	if dv.HasCache() {
		t.Fatal("HasCache true after refusal")
	}
	if !dv.EnsureCache(1088) {
		t.Fatal("cache refused within budget")
	}
	if !dv.HasCache() {
		t.Fatal("HasCache false after build")
	}
	if dv.EnsureCache(0) != true {
		t.Fatal("EnsureCache not idempotent once built")
	}
}

// withCacheBudget runs fn under a temporary DefaultCacheBudget.
func withCacheBudget(budget int64, fn func()) {
	old := DefaultCacheBudget
	DefaultCacheBudget = budget
	defer func() { DefaultCacheBudget = old }()
	fn()
}

func TestGreedyCachedMatchesFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for _, version := range []Version{SUM, MAX} {
		for trial := 0; trial < 40; trial++ {
			n := 2 + rng.Intn(24)
			g, d := randomInstance(n, version, rng)
			u := rng.Intn(n)
			var fast, slow BestResponse
			fast = g.GreedyBestResponse(d, u)
			withCacheBudget(0, func() { slow = g.GreedyBestResponse(d, u) })
			if fast.Cost != slow.Cost || fast.Current != slow.Current || fast.Explored != slow.Explored {
				t.Fatalf("%v n=%d u=%d: cached %+v, fallback %+v", version, n, u, fast, slow)
			}
			if !equalInts(fast.Strategy, slow.Strategy) {
				t.Fatalf("%v n=%d u=%d: cached strategy %v, fallback %v", version, n, u, fast.Strategy, slow.Strategy)
			}
		}
	}
}

func TestBestSwapCachedMatchesFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for _, version := range []Version{SUM, MAX} {
		for trial := 0; trial < 40; trial++ {
			n := 2 + rng.Intn(24)
			g, d := randomInstance(n, version, rng)
			u := rng.Intn(n)
			var fast, slow BestResponse
			fast = g.BestSwap(d, u)
			withCacheBudget(0, func() { slow = g.BestSwap(d, u) })
			if fast.Cost != slow.Cost || fast.Current != slow.Current || fast.Explored != slow.Explored {
				t.Fatalf("%v n=%d u=%d: cached %+v, fallback %+v", version, n, u, fast, slow)
			}
			if !equalInts(fast.Strategy, slow.Strategy) {
				t.Fatalf("%v n=%d u=%d: cached strategy %v, fallback %v", version, n, u, fast.Strategy, slow.Strategy)
			}
		}
	}
}

// exactReference is a direct transcription of the pre-cache enumeration
// loop: recursive combinations, one BFS Eval per candidate, strict
// improvement only.
func exactReference(g *Game, d *graph.Digraph, u int) BestResponse {
	n := g.N()
	b := g.Budgets[u]
	dv := NewDeviator(g, d, u)
	cur := append([]int(nil), d.Out(u)...)
	best := BestResponse{Strategy: cur, Current: dv.Eval(cur)}
	best.Cost = best.Current
	targets := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != u {
			targets = append(targets, v)
		}
	}
	comb := make([]int, b)
	strategy := make([]int, b)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == b {
			for i, idx := range comb {
				strategy[i] = targets[idx]
			}
			best.Explored++
			if c := dv.Eval(strategy); c < best.Cost {
				best.Cost = c
				best.Strategy = append([]int(nil), strategy...)
			}
			return
		}
		for i := start; i <= len(targets)-(b-k); i++ {
			comb[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

func TestExactMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	check := func(label string) {
		for _, version := range []Version{SUM, MAX} {
			for trial := 0; trial < 25; trial++ {
				n := 2 + rng.Intn(14)
				g, d := randomInstance(n, version, rng)
				u := rng.Intn(n)
				want := exactReference(g, d, u)
				got, err := g.ExactBestResponse(d, u, 0)
				if err != nil {
					t.Fatal(err)
				}
				if got.Cost != want.Cost || got.Current != want.Current || got.Explored != want.Explored {
					t.Fatalf("%s %v n=%d u=%d: got %+v, want %+v", label, version, n, u, got, want)
				}
				if !equalInts(got.Strategy, want.Strategy) {
					t.Fatalf("%s %v n=%d u=%d: got strategy %v, want %v", label, version, n, u, got.Strategy, want.Strategy)
				}
			}
		}
	}
	check("auto")
	// Force the parallel sharded path even on tiny spaces.
	oldMin := exactParallelMinSpace
	exactParallelMinSpace = 1
	defer func() { exactParallelMinSpace = oldMin }()
	check("parallel")
	// Force the BFS fallback under the parallel path too.
	withCacheBudget(0, func() { check("parallel-nocache") })
}

func TestGreedyDegenerateBudget(t *testing.T) {
	// A budget >= n-1 must not panic and must return the full target set.
	// Budgets beyond NewGame's validation range exercise the guard
	// directly (the all-targets-chosen rounds).
	for _, b := range []int{2, 3} { // n-1 and n with n=3
		g := &Game{Budgets: []int{b, 0, 0}, Version: SUM}
		d := graph.NewDigraph(3)
		for v := 1; v < 3 && v <= b; v++ {
			d.AddArc(0, v)
		}
		br := g.GreedyBestResponse(d, 0)
		if !equalInts(br.Strategy, []int{1, 2}) {
			t.Fatalf("b=%d: strategy %v, want full target set [1 2]", b, br.Strategy)
		}
		var brSlow BestResponse
		withCacheBudget(0, func() { brSlow = g.GreedyBestResponse(d, 0) })
		if !equalInts(brSlow.Strategy, []int{1, 2}) || brSlow.Cost != br.Cost {
			t.Fatalf("b=%d fallback: %+v vs cached %+v", b, brSlow, br)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
