package core

import (
	"fmt"

	"repro/internal/graph"
)

// Weighted weak-equilibrium machinery from Section 6. The proof of the
// 2^O(sqrt(log n)) SUM upper bound folds "poor leaves" (degree-1 vertices
// owning no arc) into their neighbours, transferring weight; the folded
// graph remains a weak equilibrium (no improving single-arc swap) and the
// operation shrinks trees by O(log w) height (Lemma 6.2). This package
// implements the weighted cost, the fold, and the weak-equilibrium check
// so the analysis package can audit the proof's invariants empirically.

// WeightedGraph couples a realization with positive integer vertex
// weights. Weight 0 marks folded-away vertices (they are excluded from all
// cost sums and act as if deleted).
type WeightedGraph struct {
	D *graph.Digraph
	W []int64
}

// NewWeighted wraps d with unit weights.
func NewWeighted(d *graph.Digraph) *WeightedGraph {
	w := make([]int64, d.N())
	for i := range w {
		w[i] = 1
	}
	return &WeightedGraph{D: d, W: w}
}

// TotalWeight returns w(G), the sum of all vertex weights.
func (wg *WeightedGraph) TotalWeight() int64 {
	var t int64
	for _, w := range wg.W {
		t += w
	}
	return t
}

// Alive reports whether v has not been folded away.
func (wg *WeightedGraph) Alive(v int) bool { return wg.W[v] > 0 }

// AliveCount returns the number of unfolded vertices.
func (wg *WeightedGraph) AliveCount() int {
	c := 0
	for _, w := range wg.W {
		if w > 0 {
			c++
		}
	}
	return c
}

// Cost returns the weighted SUM cost of u: sum over alive v of
// w(v)*dist(u,v), treating unreachable alive vertices as distance n^2.
func (wg *WeightedGraph) Cost(u int) int64 {
	n := wg.D.N()
	a := wg.D.Underlying()
	s := graph.NewScratch(n)
	s.BFS(a, u)
	cinf := int64(n) * int64(n)
	var c int64
	for v := 0; v < n; v++ {
		if v == u || wg.W[v] == 0 {
			continue
		}
		if d := s.Dist(v); d >= 0 {
			c += wg.W[v] * int64(d)
		} else {
			c += wg.W[v] * cinf
		}
	}
	return c
}

// Leaf classification per Section 6: a leaf is a degree-1 alive vertex; a
// poor leaf owns no arc (outdegree 0), a rich leaf owns exactly one.

// PoorLeaves returns all alive degree-1 vertices with outdegree 0.
func (wg *WeightedGraph) PoorLeaves() []int {
	return wg.leaves(true)
}

// RichLeaves returns all alive degree-1 vertices with outdegree 1.
func (wg *WeightedGraph) RichLeaves() []int {
	return wg.leaves(false)
}

func (wg *WeightedGraph) leaves(poor bool) []int {
	a := wg.D.Underlying()
	var ls []int
	for v := 0; v < wg.D.N(); v++ {
		if !wg.Alive(v) || len(a[v]) != 1 {
			continue
		}
		if (wg.D.OutDegree(v) == 0) == poor {
			ls = append(ls, v)
		}
	}
	return ls
}

// FoldPoorLeaf removes poor leaf l (owned by some arc u->l) and adds its
// weight to u, per the G_0 construction before Lemma 6.2. It errors if l
// is not a poor leaf.
func (wg *WeightedGraph) FoldPoorLeaf(l int) error {
	if !wg.Alive(l) {
		return fmt.Errorf("core: vertex %d already folded", l)
	}
	if wg.D.OutDegree(l) != 0 {
		return fmt.Errorf("core: vertex %d owns arcs; not a poor leaf", l)
	}
	in := wg.D.In(l)
	if len(in) != 1 {
		return fmt.Errorf("core: vertex %d has %d incoming arcs; not a leaf", l, len(in))
	}
	u := in[0]
	wg.D.RemoveArc(u, l)
	wg.W[u] += wg.W[l]
	wg.W[l] = 0
	return nil
}

// FoldAllPoorLeaves repeatedly folds poor leaves until none remain,
// returning the number of folds. Folding can expose new poor leaves
// (a path of non-owners collapses inward), so the loop iterates to a
// fixed point — this is the "sequence of subtree folds" of Corollary 6.3.
func (wg *WeightedGraph) FoldAllPoorLeaves() int {
	folds := 0
	for {
		ls := wg.PoorLeaves()
		if len(ls) == 0 {
			return folds
		}
		for _, l := range ls {
			// A vertex listed as poor may have gained degree... it
			// cannot: folding only removes edges. It may however have
			// been folded already if listed twice (impossible: one list
			// entry per vertex). Fold unconditionally.
			if err := wg.FoldPoorLeaf(l); err == nil {
				folds++
			}
		}
	}
}

// WeakDeviation searches for an improving single-arc swap by any alive
// vertex in the weighted graph (the weak-equilibrium condition of Section
// 6). It returns nil if the graph is a weighted weak equilibrium.
func (wg *WeightedGraph) WeakDeviation() *Deviation {
	n := wg.D.N()
	for u := 0; u < n; u++ {
		if !wg.Alive(u) || wg.D.OutDegree(u) == 0 {
			continue
		}
		cur := wg.Cost(u)
		out := append([]int(nil), wg.D.Out(u)...)
		for _, v := range out {
			for x := 0; x < n; x++ {
				if x == u || x == v || !wg.Alive(x) || wg.D.HasArc(u, x) {
					continue
				}
				wg.D.RemoveArc(u, v)
				wg.D.AddArc(u, x)
				c := wg.Cost(u)
				wg.D.RemoveArc(u, x)
				wg.D.AddArc(u, v)
				if c < cur {
					ns := append([]int(nil), wg.D.Out(u)...)
					for i := range ns {
						if ns[i] == v {
							ns[i] = x
						}
					}
					return &Deviation{Vertex: u, NewStrategy: ns, OldCost: cur, NewCost: c}
				}
			}
		}
	}
	return nil
}
