package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

func rec(id, exp, key string, v any) Record {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return Record{ID: id, Exp: exp, Key: key, Value: raw}
}

func TestAppendReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("a1", "alpha", "k=1", 11)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("a2", "alpha", "k=2", 22)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("b1", "beta", "n=8", "hello")); err != nil {
		t.Fatal(err)
	}
	if !s.Has("a1") || s.Has("zzz") {
		t.Fatal("Has is wrong before reopen")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", s2.Len())
	}
	r, ok := s2.Get("a2")
	if !ok || r.Exp != "alpha" || r.Key != "k=2" || string(r.Value) != "22" {
		t.Fatalf("Get(a2) = %+v, %v", r, ok)
	}
	if got := s2.Experiments(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Experiments = %v", got)
	}
	if s2.Recovered() != 0 {
		t.Fatalf("clean store reported %d recovered shards", s2.Recovered())
	}
}

func TestDuplicateAppendRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(rec("x", "e", "k", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("x", "e", "k", 2)); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

// TestTruncatedTailRecovery is the crash signature: a killed process
// leaves a partial final line; Open must drop it, repair the file, and
// allow appends to continue cleanly.
func TestTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"p1", "p2", "p3"} {
		if err := s.Append(rec(id, "exp", "key-"+id, id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the kill: chop the shard mid-way through the last record.
	shard := filepath.Join(dir, "exp.jsonl")
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shard, data[:len(data)-7], 0o666); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("after truncation Len = %d, want 2", s2.Len())
	}
	if s2.Has("p3") {
		t.Fatal("truncated record p3 still indexed")
	}
	if s2.Recovered() != 1 {
		t.Fatalf("Recovered = %d, want 1", s2.Recovered())
	}
	// The file itself must have been repaired so the next append starts
	// on a fresh line.
	if err := s2.Append(rec("p3", "exp", "key-p3", "p3-again")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 3 || !s3.Has("p3") {
		t.Fatalf("after repair+append Len = %d, Has(p3) = %v", s3.Len(), s3.Has("p3"))
	}
	r, _ := s3.Get("p3")
	if string(r.Value) != `"p3-again"` {
		t.Fatalf("repaired append value = %s", r.Value)
	}
}

// A garbage line mid-file is corruption, not a crash signature: only
// the bad line is quarantined; every valid record after it survives.
func TestCorruptMidFileQuarantinesKeepsSuffix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("g1", "exp", "k1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Join(dir, "exp.jsonl")
	f, err := os.OpenFile(shard, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{not json}\n"); err != nil {
		t.Fatal(err)
	}
	good := rec("g2", "exp", "k2", 2)
	good.Sum = good.checksum()
	line, _ := json.Marshal(good)
	if _, err := f.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 || !s2.Has("g1") || !s2.Has("g2") {
		t.Fatalf("suffix not preserved: Len=%d Has(g1)=%v Has(g2)=%v",
			s2.Len(), s2.Has("g1"), s2.Has("g2"))
	}
	if s2.Quarantined() != 1 || s2.Recovered() != 0 {
		t.Fatalf("Quarantined=%d Recovered=%d, want 1, 0", s2.Quarantined(), s2.Recovered())
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	badData, err := os.ReadFile(filepath.Join(dir, "exp.bad.jsonl"))
	if err != nil || string(badData) != "{not json}\n" {
		t.Fatalf("quarantine file = %q, %v", badData, err)
	}
	// The repair is idempotent: a third open sees a clean shard.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 2 || s3.Quarantined() != 0 || s3.Recovered() != 0 {
		t.Fatalf("repair not idempotent: Len=%d Quarantined=%d Recovered=%d",
			s3.Len(), s3.Quarantined(), s3.Recovered())
	}
}

// A bit flipped inside an otherwise well-formed record must fail its
// CRC and be quarantined, leaving its neighbours intact.
func TestChecksumCatchesBitRot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"c1", "c2", "c3"} {
		if err := s.Append(rec(id, "exp", "key-"+id, id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Join(dir, "exp.jsonl")
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the middle record's payload (the quoted value
	// "c2"), keeping the line valid JSON so only the CRC can catch it.
	i := bytes.Index(data, []byte(`"value":"c2"`))
	if i < 0 {
		t.Fatal("test assumption broken: middle record value not found")
	}
	data[i+len(`"value":"`)] ^= 0x01
	if err := os.WriteFile(shard, data, 0o666); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", s2.Quarantined())
	}
	if s2.Len() != 2 || !s2.Has("c1") || s2.Has("c2") || !s2.Has("c3") {
		t.Fatalf("bit-rot recovery wrong: Len=%d", s2.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "exp.bad.jsonl")); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
}

// Recovered must count every repaired shard, not just the first.
func TestMultiShardRecovered(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, exp := range []string{"ea", "eb", "ec"} {
		for _, n := range []string{"1", "2"} {
			if err := s.Append(rec(exp+n, exp, "k="+n, n)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, exp := range []string{"ea", "eb", "ec"} {
		shard := filepath.Join(dir, exp+".jsonl")
		data, err := os.ReadFile(shard)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(shard, data[:len(data)-3], 0o666); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Recovered() != 3 {
		t.Fatalf("Recovered = %d, want 3", s2.Recovered())
	}
	if s2.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (one record lost per shard)", s2.Len())
	}
}

func TestManifestWrittenAndVersionChecked(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("m1", "exp", "k", 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Format != FormatVersion || len(m.Shards) != 1 || m.Shards[0].Records != 1 {
		t.Fatalf("manifest = %+v", m)
	}

	// A future-format manifest must refuse to open.
	bad := strings.Replace(string(data), `"format": 1`, `"format": 999`, 1)
	if bad == string(data) {
		t.Fatal("test assumption broken: format field not found")
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(bad), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("future-format manifest accepted")
	}
}

// A pure read session (the merge path) must work on a directory the
// process cannot write: no manifest rewrite on Close.
func TestReadOnlyDirectory(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("r1", "exp", "k", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	manifest := filepath.Join(dir, "manifest.json")
	before, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	beforeInfo, err := os.Stat(manifest)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has("r1") {
		t.Fatal("read-only open lost records")
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("read-only Close: %v", err)
	}
	// chmod does not stop root, so assert behaviourally too: a session
	// that appended nothing must not have rewritten the manifest.
	after, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	afterInfo, err := os.Stat(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) || !beforeInfo.ModTime().Equal(afterInfo.ModTime()) {
		t.Fatal("read-only session rewrote the manifest")
	}
}

func TestShardFileEscaping(t *testing.T) {
	if got := shardFile("table1-trees-max"); got != "table1-trees-max.jsonl" {
		t.Fatalf("shardFile = %q", got)
	}
	if got := shardFile("../evil"); strings.Contains(got, "/") || strings.Contains(got, "..") {
		t.Fatalf("shardFile did not neutralise traversal: %q", got)
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 50 && err == nil; i++ {
				err = s.Append(rec(
					string(rune('a'+w))+"-"+string(rune('0'+i/10))+string(rune('0'+i%10)),
					"conc", "k", i))
			}
			done <- err
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 400 {
		t.Fatalf("concurrent append lost records: Len = %d, want 400", s2.Len())
	}
}

func TestRecordsDeterministicOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Append out of order; Records must come back sorted by (exp, key, id).
	for _, r := range []Record{
		rec("id3", "beta", "k=2", 3),
		rec("id1", "alpha", "k=9", 1),
		rec("id2", "beta", "k=1", 2),
	} {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Records()
	want := []string{"id1", "id2", "id3"}
	if len(got) != len(want) {
		t.Fatalf("Records returned %d records, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("Records[%d].ID = %s, want %s", i, got[i].ID, id)
		}
	}
}

func TestConcatDisjointAndOverlapping(t *testing.T) {
	srcA, srcB := t.TempDir(), t.TempDir()
	a, err := Open(srcA)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Record{rec("a1", "e", "k=1", 1), rec("a2", "e", "k=2", 2)} {
		if err := a.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := Open(srcB)
	if err != nil {
		t.Fatal(err)
	}
	// b overlaps a on a2 and adds b1 in another experiment.
	for _, r := range []Record{rec("a2", "e", "k=2", 2), rec("b1", "f", "k=1", 9)} {
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	dst := t.TempDir()
	added, err := Concat(dst, srcA, srcB)
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 {
		t.Fatalf("Concat added %d, want 3 (overlap deduplicated)", added)
	}
	// Concatenating again adds nothing.
	added, err = Concat(dst, srcA, srcB)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("second Concat added %d, want 0", added)
	}
	d, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Len() != 3 {
		t.Fatalf("dst has %d records, want 3", d.Len())
	}
	for _, id := range []string{"a1", "a2", "b1"} {
		if !d.Has(id) {
			t.Fatalf("dst missing record %s", id)
		}
	}
}

// A failed append must be retryable: the injected partial write leaves
// a torn prefix, the retry leads with a newline so the prefix becomes
// its own line, and the next open quarantines it without losing either
// neighbour.
func TestAppendRetryAfterPartialWrite(t *testing.T) {
	set, err := fault.Parse("store.append.write=partial:5@2", 0)
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(set)
	t.Cleanup(fault.Disarm)

	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("t1", "exp", "k1", 1)); err != nil {
		t.Fatal(err)
	}
	r2 := rec("t2", "exp", "k2", 2)
	if err := s.Append(r2); err == nil || !fault.Injected(err) {
		t.Fatalf("partial-write append err = %v, want injected", err)
	}
	if err := s.Append(r2); err != nil {
		t.Fatalf("retry after partial write: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fault.Disarm()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 || !s2.Has("t1") || !s2.Has("t2") {
		t.Fatalf("after torn retry Len=%d Has(t1)=%v Has(t2)=%v",
			s2.Len(), s2.Has("t1"), s2.Has("t2"))
	}
	if s2.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1 (the torn prefix)", s2.Quarantined())
	}
}

// Concat that dies mid-copy must be resumable: re-running it picks up
// exactly the records that were not yet copied.
func TestConcatResumesAfterMidCopyFailure(t *testing.T) {
	src := t.TempDir()
	s, err := Open(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"q1", "q2", "q3", "q4", "q5"} {
		if err := s.Append(rec(id, "exp", "k="+id, id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	set, err := fault.Parse("store.concat.append=error@3", 0)
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(set)
	t.Cleanup(fault.Disarm)

	dst := t.TempDir()
	added, err := Concat(dst, src)
	if err == nil || !fault.Injected(err) {
		t.Fatalf("Concat err = %v, want injected", err)
	}
	if added != 2 {
		t.Fatalf("failed Concat added %d, want 2 before the fault", added)
	}
	fault.Disarm()
	added, err = Concat(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 {
		t.Fatalf("resumed Concat added %d, want the remaining 3", added)
	}
	d, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Len() != 5 {
		t.Fatalf("dst Len = %d, want 5", d.Len())
	}
}

// A crash between the manifest temp-write and the rename must not
// leave the manifest stale forever: the next open detects the count
// mismatch and its Close refreshes the manifest even without appends.
func TestStaleManifestRefreshedOnReopen(t *testing.T) {
	set, err := fault.Parse("store.manifest.rename=error@1", 0)
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(set)
	t.Cleanup(fault.Disarm)

	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("m1", "exp", "k", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil || !fault.Injected(err) {
		t.Fatalf("Close err = %v, want injected rename failure", err)
	}
	fault.Disarm()
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); !os.IsNotExist(err) {
		t.Fatalf("manifest unexpectedly present: %v", err)
	}

	// A read-only session must still refresh the stale manifest.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("manifest not refreshed: %v", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 1 || m.Shards[0].Records != 1 {
		t.Fatalf("refreshed manifest = %+v", m)
	}
}

// Fsync mode is a smoke test: same observable behaviour, slower path.
func TestFsyncOption(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("f1", "exp", "k", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenWith(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 || !s2.Has("f1") {
		t.Fatalf("fsync store Len = %d", s2.Len())
	}
}

// Failures quarantined via AppendFailure round-trip through
// failed.jsonl and never pollute the record index.
func TestFailureQuarantineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFailure(Failure{
		ID: "p-bad", Exp: "exp", Key: "k=3", Err: "panic: boom",
		Stack: "goroutine 1 [running]:", Attempts: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFailure(Failure{ID: "p-bad2", Exp: "exp", Key: "k=4", Err: "transient", Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 0 {
		t.Fatalf("failures leaked into record index: Len = %d", s2.Len())
	}
	fails, err := s2.Failures()
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 2 || fails[0].ID != "p-bad" || fails[0].Attempts != 2 || fails[1].Err != "transient" {
		t.Fatalf("Failures = %+v", fails)
	}
}
