// Tree-BG: the threshold instances where budgets sum to exactly n-1
// (Section 3). The same budget total supports wildly different equilibria
// depending on the cost version: the MAX game stabilises the spider at
// diameter Theta(n), while SUM tree equilibria are pinned at Theta(log n)
// — this example builds both extremes, verifies them, and audits the
// Theorem 3.3 mechanism that separates the two.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sweep"
)

func main() {
	table := sweep.NewTable("Tree-BG equilibria: MAX spiders vs SUM binary trees",
		"instance", "n", "diameter", "version", "nash")

	// The MAX side: spiders (Figure 2). Diameter 2k grows linearly in n.
	for _, k := range []int{3, 5, 8} {
		d, budgets, err := construct.Spider(k)
		if err != nil {
			log.Fatal(err)
		}
		g := core.MustGame(budgets, core.MAX)
		dev, err := g.VerifyNash(d, 0)
		if err != nil {
			log.Fatal(err)
		}
		table.Addf(fmt.Sprintf("spider k=%d", k), d.N(),
			graph.Diameter(d.Underlying()), "MAX", ok(dev == nil))
	}

	// The SUM side: perfect binary trees (Theorem 3.4). Diameter 2k is
	// logarithmic in n = 2^(k+1)-1.
	for _, k := range []int{2, 3, 4} {
		d, budgets, err := construct.PerfectBinaryTree(k)
		if err != nil {
			log.Fatal(err)
		}
		g := core.MustGame(budgets, core.SUM)
		dev, err := g.VerifyNash(d, 0)
		if err != nil {
			log.Fatal(err)
		}
		table.Addf(fmt.Sprintf("binary tree k=%d", k), d.N(),
			graph.Diameter(d.Underlying()), "SUM", ok(dev == nil))
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Why can't the spider survive in the SUM version? Theorem 3.3's
	// inequality (1): along a longest path, each owned forward arc must
	// see geometrically growing subtree weights. The binary tree obeys
	// it; the spider flagrantly violates it.
	fmt.Println("\nTheorem 3.3 subtree-weight audit (the Theta(log n) mechanism):")
	for _, build := range []struct {
		name string
		make func() (*graph.Digraph, []int, error)
	}{
		{"binary tree k=4", func() (*graph.Digraph, []int, error) { return construct.PerfectBinaryTree(4) }},
		{"spider k=8", func() (*graph.Digraph, []int, error) { return construct.Spider(8) }},
	} {
		d, _, err := build.make()
		if err != nil {
			log.Fatal(err)
		}
		audit, err := analysis.AuditTreeSumPath(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s diameter %2d, inequality (1) holds: %-5v (violations: %d)\n",
			build.name, audit.Diameter, audit.InequalityOK, len(audit.Violations))
	}
	fmt.Println("\nThe spider is a MAX equilibrium but fails the SUM inequality —")
	fmt.Println("exactly the asymmetry behind Table 1's Theta(n) vs Theta(log n) row.")
}

func ok(b bool) string {
	if b {
		return "verified"
	}
	return "REFUTED"
}
