package graph

import (
	"fmt"
	"math/rand"
)

// Richer workload generators: realistic initial overlays for dynamics
// robustness experiments. All are deterministic given the *rand.Rand.

// PreferentialAttachment grows a digraph in which each arriving vertex
// owns m arcs to earlier vertices chosen proportionally to current
// degree plus one (Barabási–Albert flavoured). Vertices 0..m-1 form a
// seed path. Budgets are m for arriving vertices (and < m for the seed).
func PreferentialAttachment(n, m int, rng *rand.Rand) (*Digraph, error) {
	if m < 1 || m >= n {
		return nil, fmt.Errorf("graph: preferential attachment needs 1 <= m < n, got m=%d n=%d", m, n)
	}
	d := NewDigraph(n)
	deg := make([]int, n)
	// Seed: path on the first m+1 vertices.
	for i := 0; i < m; i++ {
		d.AddArc(i, i+1)
		deg[i]++
		deg[i+1]++
	}
	totalDeg := 2 * m
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			// Degree-proportional pick with +1 smoothing.
			r := rng.Intn(totalDeg + v)
			target := -1
			acc := 0
			for u := 0; u < v; u++ {
				acc += deg[u] + 1
				if r < acc {
					target = u
					break
				}
			}
			if target < 0 || chosen[target] {
				continue
			}
			chosen[target] = true
		}
		for u := range chosen {
			d.AddArc(v, u)
			deg[v]++
			deg[u]++
			totalDeg += 2
		}
	}
	return d, nil
}

// SmallWorld builds a Watts–Strogatz flavoured digraph: a ring lattice
// where every vertex owns arcs to its k/2 clockwise neighbours, each arc
// rewired to a uniform random non-neighbour with probability p.
// k must be even, 2 <= k < n.
func SmallWorld(n, k int, p float64, rng *rand.Rand) (*Digraph, error) {
	if k%2 != 0 || k < 2 || k >= n {
		return nil, fmt.Errorf("graph: small world needs even 2 <= k < n, got k=%d n=%d", k, n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: rewire probability %f out of [0,1]", p)
	}
	d := NewDigraph(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			target := (v + j) % n
			if rng.Float64() < p {
				// Rewire to a random vertex, avoiding self-loops and
				// duplicates (falling back to the lattice target if the
				// vertex is saturated).
				for attempts := 0; attempts < 4*n; attempts++ {
					w := rng.Intn(n)
					if w != v && !d.HasArc(v, w) {
						target = w
						break
					}
				}
			}
			if target != v && !d.HasArc(v, target) {
				d.AddArc(v, target)
			}
		}
	}
	return d, nil
}

// BudgetsOf extracts the outdegree vector of a digraph, the budget
// vector of the game it realizes.
func BudgetsOf(d *Digraph) []int {
	budgets := make([]int, d.N())
	for v := range budgets {
		budgets[v] = d.OutDegree(v)
	}
	return budgets
}
