// Package sweep is the parallel experiment harness: it fans parameter
// points out to a worker pool, collects results in input order, and
// renders aligned text tables (the repro's stand-in for the paper's
// Table 1 and figure series) plus CSV for downstream plotting.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
)

// Parallel maps fn over points on min(GOMAXPROCS, len(points)) workers
// and returns results in input order. fn must be safe for concurrent
// invocation on distinct points.
func Parallel[T, R any](points []T, fn func(T) R) []R {
	return ParallelN(points, runtime.GOMAXPROCS(0), fn)
}

// ParallelN is Parallel with an explicit worker bound. Outer harnesses
// whose points spin up inner parallelism (cache-filling responders,
// parallel exact verification) use it to keep the total goroutine fan-out
// near GOMAXPROCS instead of compounding pool sizes.
func ParallelN[T, R any](points []T, workers int, fn func(T) R) []R {
	n := len(points)
	results := make([]R, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, p := range points {
			results[i] = fn(p)
		}
		return results
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				results[i] = fn(points[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// PanicError is a panic converted into an error by Recover: the
// recovered value plus the goroutine stack at the panic site. Harness
// layers report it as a point failure with full context instead of
// letting one bad evaluation kill a whole sweep.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Recover invokes fn, converting a panic into a *PanicError. It is the
// per-point isolation wrapper: a panicking evaluator on a pool worker
// becomes an ordinary error result rather than a process crash.
func Recover[R any](fn func() (R, error)) (res R, err error) {
	defer func() {
		if v := recover(); v != nil {
			var zero R
			res, err = zero, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Table is an ordered set of rows under named columns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends one row; the cell count must match the column count.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("sweep: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted values (each value rendered with %v).
func (t *Table) Addf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.3f", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Add(cells...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (no quoting: cells in
// this repo never contain commas).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
