package graph

// Unicyclic-structure utilities. Equilibria of (1,...,1)-BG are connected
// graphs with n arcs whose underlying graph contains exactly one cycle
// (Theorems 4.1 and 4.2); a brace counts as a cycle of length 2. These
// helpers locate that cycle and measure how far every vertex sits from it.

// UniqueDirectedCycle finds the unique directed cycle of a digraph in
// which every vertex has outdegree exactly 1 (a functional graph with one
// connected underlying component has exactly one directed cycle per
// component; callers pass connected graphs). It returns the cycle as a
// vertex sequence v_0 -> v_1 -> ... -> v_{k-1} -> v_0, or nil if some
// vertex has outdegree != 1. A brace yields a 2-cycle.
func UniqueDirectedCycle(g *Digraph) []int {
	n := g.N()
	for u := 0; u < n; u++ {
		if g.OutDegree(u) != 1 {
			return nil
		}
	}
	if n == 0 {
		return nil
	}
	// Walk from vertex 0 until a repeat; the tail of the walk from the
	// first repeated vertex is the cycle of 0's component. For connected
	// underlying graphs this is the unique cycle.
	state := make([]int8, n) // 0 unseen, 1 on walk, 2 done
	u := 0
	var walk []int
	for state[u] == 0 {
		state[u] = 1
		walk = append(walk, u)
		u = g.Out(u)[0]
	}
	if state[u] != 1 {
		return nil // re-entered a finished region: impossible from a cold start
	}
	for i, w := range walk {
		if w == u {
			return append([]int(nil), walk[i:]...)
		}
	}
	return nil
}

// CycleInUnicyclic finds the unique cycle of a connected undirected graph
// with exactly n edges (counting a brace as 2 parallel edges, i.e. the
// caller certifies the graph is unicyclic). braces lists vertex pairs that
// form 2-cycles; if any brace exists, that brace is the unique cycle. For
// simple unicyclic graphs the cycle is found by iteratively peeling
// degree-1 vertices. Returns nil if no cycle remains after peeling (a
// tree was passed).
func CycleInUnicyclic(a Und, braces [][2]int) []int {
	if len(braces) > 0 {
		return []int{braces[0][0], braces[0][1]}
	}
	n := len(a)
	deg := make([]int, n)
	removed := make([]bool, n)
	queue := make([]int, 0, n)
	for v := range a {
		deg[v] = len(a[v])
		if deg[v] == 1 {
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		removed[v] = true
		for _, w := range a[v] {
			if removed[w] {
				continue
			}
			deg[w]--
			if deg[w] == 1 {
				queue = append(queue, w)
			}
		}
	}
	// Remaining vertices form the cycle; order them by walking.
	start := -1
	for v := range a {
		if !removed[v] && len(a[v]) > 0 {
			start = v
			break
		}
	}
	if start < 0 {
		return nil
	}
	cycle := []int{start}
	prev, cur := -1, start
	for {
		next := -1
		for _, w := range a[cur] {
			if !removed[w] && w != prev {
				next = w
				break
			}
		}
		if next == -1 || next == start {
			break
		}
		cycle = append(cycle, next)
		prev, cur = cur, next
	}
	return cycle
}

// DistancesToSet returns, for every vertex, its distance to the nearest
// vertex of set (multi-source BFS); Unreached for vertices in other
// components.
func DistancesToSet(a Und, set []int) []int32 {
	s := NewScratch(len(a))
	s.reset()
	for _, v := range set {
		if !s.visited(v) {
			s.visit(v, 0)
		}
	}
	s.run(a)
	d := make([]int32, len(a))
	for v := range d {
		d[v] = s.Dist(v)
	}
	return d
}
