package graph

import (
	"math/rand"
	"testing"
)

// randomUnd returns the underlying view of a random out-digraph with
// per-vertex budgets in [0, maxB], which covers connected and
// disconnected realizations.
func randomUnd(n, maxB int, rng *rand.Rand) Und {
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = rng.Intn(maxB + 1)
		if budgets[i] > n-1 {
			budgets[i] = n - 1
		}
	}
	return RandomOutDigraph(budgets, rng).Underlying()
}

func TestCSRBFSRowMatchesBFSDist(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		a := randomUnd(n, 2, rng)
		c := NewCSR(a)
		row := make([]int32, n)
		queue := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			c.BFSRow(int32(src), row, queue)
			want := BFSDist(a, src)
			for v := 0; v < n; v++ {
				got := row[v]
				if want[v] == Unreached {
					if got != InfDist {
						t.Fatalf("n=%d src=%d v=%d: got %d, want InfDist", n, src, v, got)
					}
				} else if got != want[v] {
					t.Fatalf("n=%d src=%d v=%d: got %d, want %d", n, src, v, got, want[v])
				}
			}
		}
	}
}

func TestCSRDistanceRowsMatchesAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 7, 33, 64, 65, 80, 129, 300} {
		a := randomUnd(n, 2, rng)
		rows := NewCSR(a).DistanceRows()
		want := AllPairs(a)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				got := rows[u*n+v]
				if want[u][v] == Unreached {
					if got != InfDist {
						t.Fatalf("n=%d u=%d v=%d: got %d, want InfDist", n, u, v, got)
					}
				} else if got != want[u][v] {
					t.Fatalf("n=%d u=%d v=%d: got %d, want %d", n, u, v, got, want[u][v])
				}
			}
		}
	}
}

func TestCSRExcludingMatchesDeletedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(20)
		d := RandomOutDigraph(randomBudgets(n, rng), rng)
		u := rng.Intn(n)
		base := d.UnderlyingWithout(u)
		c := NewCSRExcluding(base, u)

		// Deleted-graph reference: drop every edge incident to u.
		del := make(Und, n)
		for v, nb := range base {
			if v == u {
				continue
			}
			for _, w := range nb {
				if w != u {
					del[v] = append(del[v], w)
				}
			}
		}
		row := make([]int32, n)
		queue := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			if src == u {
				continue
			}
			c.BFSRow(int32(src), row, queue)
			want := BFSDist(del, src)
			for v := 0; v < n; v++ {
				got := row[v]
				if want[v] == Unreached {
					if got != InfDist {
						t.Fatalf("n=%d u=%d src=%d v=%d: got %d, want InfDist", n, u, src, v, got)
					}
				} else if got != want[v] {
					t.Fatalf("n=%d u=%d src=%d v=%d: got %d, want %d", n, u, src, v, got, want[v])
				}
			}
		}
	}
}

func randomBudgets(n int, rng *rand.Rand) []int {
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = rng.Intn(3)
		if budgets[i] > n-1 {
			budgets[i] = n - 1
		}
	}
	return budgets
}
