package construct

import (
	"fmt"

	"repro/internal/graph"
)

// Spider builds the Theorem 3.2 / Figure 2 tree: three directed paths
// X = x_1...x_k, Y = y_1...y_k, Z = z_1...z_k whose first vertices each
// also own an arc to a shared centre w. It is a Tree-BG realization
// (budgets sum to n-1 = 3k) and a Nash equilibrium in the MAX version
// with diameter 2k = Theta(n), witnessing the Theta(n) price of anarchy
// for tree instances of the MAX game.
//
// Vertex numbering: w = 0; x_i = i, y_i = k+i, z_i = 2k+i (1 <= i <= k).
// Budgets: x_1, y_1, z_1 have budget 2; interior path vertices budget 1;
// the three path ends and w have budget 0.
func Spider(k int) (*graph.Digraph, []int, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("construct: spider needs k >= 1, got %d", k)
	}
	n := 3*k + 1
	d := graph.NewDigraph(n)
	for leg := 0; leg < 3; leg++ {
		first := leg*k + 1
		d.AddArc(first, 0) // x_1 -> w
		for i := 0; i+1 < k; i++ {
			d.AddArc(first+i, first+i+1)
		}
	}
	budgets := make([]int, n)
	for v := 0; v < n; v++ {
		budgets[v] = d.OutDegree(v)
	}
	return d, budgets, nil
}

// SpiderDiameter returns the diameter the paper derives for Spider(k):
// 2k, the distance between two path ends through the centre.
func SpiderDiameter(k int) int { return 2 * k }
