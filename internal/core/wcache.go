package core

import "repro/internal/graph"

// Weighted cache mode of the deviation engine. A Deviator built by
// NewWeightedDeviator evaluates arc-weighted (graph.Weights) deviation
// costs; EnsureCache then fills the rows with offset-adjusted weighted
// distances (graph/weighted.go) so every unweighted kernel — the fused
// min-merge evaluation, the greedy/swap/exact scans, colMin and the
// suffix bounds — runs on them unchanged. This file holds the pieces
// the unweighted engine has no counterpart for: the weights-generation
// resync (weight mutations are a second mutation stream beside the edge
// journal), the edge-delta weight lookup, and the Dijkstra fallback for
// instances whose weighted distances don't fit the int32 cache.

// syncWeights brings the cached rows from the weights generation they
// were filled at to the live one, before any edge delta is applied (the
// weighted row repair reads weights at current values, so weight deltas
// must land first, against the topology the rows still describe).
// Per netted weight change:
//
//   - a u-incident pair {u,x} only moves row x's offset: every finite
//     entry shifts by the weight delta (ShiftRow) and woff[x] follows.
//   - a pair that is an edge of G-u reweights an arc: expressed as
//     removed(old weight) + added(new weight) through the weighted row
//     repair, exactly like a topology change.
//   - any other pair is latent — no cached distance depends on it.
//
// A generation gap beyond the weights change log forces a full weighted
// refill. Either way the result is bit-identical to refilling at the
// live generation, which the property suite pins.
func (dv *Deviator) syncWeights() {
	if dv.wts == nil || dv.rows == nil || dv.wgen == dv.wts.Gen() {
		return
	}
	changes, ok := dv.wts.ChangesSince(dv.wgen)
	dv.wgen = dv.wts.Gen()
	if !ok {
		dv.refillWeighted()
		return
	}
	if len(changes) == 0 {
		return
	}
	n := dv.game.N()
	var st graph.RepairStats
	var removed, added []graph.WEdge
	for _, ch := range changes {
		a, b := int(ch.U), int(ch.V)
		if a == dv.u || b == dv.u {
			// Offset-only change: anchors never route through u, so row x's
			// underlying G-u distances are untouched and the whole row moves
			// by the constant offset delta.
			x := a + b - dv.u
			graph.ShiftRow(dv.rows[x*n:(x+1)*n], ch.New-ch.Old)
			dv.woff[x] = ch.New - 1
			st.Changed = append(st.Changed, int32(x))
			continue
		}
		if dv.base.HasEdge(a, b) {
			removed = append(removed, graph.WEdge{A: ch.U, B: ch.V, W: ch.Old})
			added = append(added, graph.WEdge{A: ch.U, B: ch.V, W: ch.New})
		}
	}
	if len(removed) > 0 {
		wcsr := graph.NewWCSRExcluding(dv.base, dv.wts, dv.u)
		if dv.wds == nil {
			dv.wds = graph.NewWDeltaScratch(n)
		}
		rst := wcsr.RepairRowsWeighted(dv.rows, dv.woff, removed, added, dv.wds)
		if rst.FullRefill {
			st = rst
		} else {
			st.Changed = append(st.Changed, rst.Changed...)
			st.RowsPatched += rst.RowsPatched
			st.RowsRefilled += rst.RowsRefilled
		}
	}
	if len(st.Changed) == 0 && !st.FullRefill {
		return // only latent pairs moved: no cached value depends on them
	}
	// Shifted rows count as changed for the dependent structures: colMin
	// refolds them (a positive shift only leaves it slack, still a sound
	// lower bound) and the memo drops any scan their costs fed.
	dv.repairColMin(st)
	dv.memoRepair(st, true)
	if st.FullRefill {
		dv.stable = 0
	}
	dv.rebuildInMin()
}

// refillWeighted rebuilds offsets and rows outright at the live weights
// generation — the resync of last resort when the change log no longer
// covers the gap.
func (dv *Deviator) refillWeighted() {
	dv.rebuildWoff()
	wcsr := graph.NewWCSRExcluding(dv.base, dv.wts, dv.u)
	wcsr.DistanceRowsInto(dv.rows, dv.woff)
	st := graph.RepairStats{FullRefill: true}
	dv.repairColMin(st)
	dv.memoRepair(st, true)
	dv.stable = 0
	dv.rebuildInMin()
}

// toWEdges attaches current weights to an undirected edge delta — the
// bridge from the topology journal's [2]int32 pairs to the weighted
// repair's WEdge. Callers must have run syncWeights first so removed
// edges carry the weights the rows were last synced to.
func (dv *Deviator) toWEdges(pairs [][2]int32) []graph.WEdge {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]graph.WEdge, len(pairs))
	for i, e := range pairs {
		out[i] = graph.WEdge{A: e[0], B: e[1], W: dv.wts.Of(int(e[0]), int(e[1]))}
	}
	return out
}

// evalWeightedDijkstra is the weighted Eval fallback: one Dijkstra over
// the fixed adjacency plus virtual strategy arcs, used when no weighted
// cache is active. Bit-identical to the cached evaluation wherever both
// are defined (the cache refuses only instances it cannot encode).
func (dv *Deviator) evalWeightedDijkstra(strategy []int) int64 {
	n := dv.game.N()
	if dv.wes == nil {
		dv.wes = &graph.WEvalScratch{}
	}
	agg := dv.wes.DeviationDijkstra(dv.base, dv.wts, dv.u, strategy)
	kappa := 1
	if agg.Reached != n {
		touched := graph.CountComponentsTouched(dv.label, dv.seen, dv.u, strategy, dv.in)
		kappa = dv.comps - touched + 1
	}
	return costFromAgg(n, dv.cinf, dv.game.Version, agg.Ecc, agg.Sum, agg.Reached, kappa)
}

// WeightedGreedyResponder is GreedyResponder under arc weights wts: the
// marginal-cost greedy evaluated on weighted shortest-path distances.
// (Distinct from the Section-6 WeightedGraph machinery, which weights
// vertices, not arcs.)
func WeightedGreedyResponder(wts *graph.Weights) Responder {
	return func(g *Game, d *graph.Digraph, u int) BestResponse {
		dv := NewWeightedDeviator(g, d, u, wts)
		defer dv.release()
		dv.EnsureCache(DefaultCacheBudget)
		return g.greedyOn(dv, d)
	}
}

// WeightedSwapResponder is SwapResponder under arc weights wts.
func WeightedSwapResponder(wts *graph.Weights) Responder {
	return func(g *Game, d *graph.Digraph, u int) BestResponse {
		dv := NewWeightedDeviator(g, d, u, wts)
		defer dv.release()
		dv.EnsureCache(DefaultCacheBudget)
		return g.swapOn(dv, d)
	}
}

// WeightedExactResponder is ExactResponder under arc weights wts
// (panics past maxCandidates, like its unweighted counterpart).
func WeightedExactResponder(wts *graph.Weights, maxCandidates int64) Responder {
	return func(g *Game, d *graph.Digraph, u int) BestResponse {
		n, b := g.N(), g.Budgets[u]
		space := StrategySpaceSize(n, b)
		if maxCandidates > 0 && space > maxCandidates {
			panic("core: weighted exact strategy space exceeds candidate budget")
		}
		dv := NewWeightedDeviator(g, d, u, wts)
		defer dv.release()
		if space >= int64(n) {
			dv.EnsureCache(DefaultCacheBudget)
		}
		return g.exactOn(dv, d)
	}
}

// WeightedAllCosts returns every player's cost in realization d under
// arc weights wts: one weighted SSSP per source over the underlying
// graph, with the disconnection penalty scaled to n²·MaxW. At unit
// weights it equals AllCosts.
func (g *Game) WeightedAllCosts(d *graph.Digraph, wts *graph.Weights) []int64 {
	n := d.N()
	a := d.Underlying()
	_, kappa := graph.Components(a)
	cinf := int64(n) * int64(n) * int64(wts.MaxW())
	costs := make([]int64, n)
	var ws graph.WEvalScratch
	for u := 0; u < n; u++ {
		agg := ws.DeviationDijkstra(a, wts, u, nil)
		costs[u] = costFromAgg(n, cinf, g.Version, agg.Ecc, agg.Sum, agg.Reached, kappa)
	}
	return costs
}

// WeightedSocialCost returns the weighted diameter of the realization,
// or the n²·MaxW disconnection penalty when it is not connected — the
// arc-weighted analogue of SocialCost.
func (g *Game) WeightedSocialCost(d *graph.Digraph, wts *graph.Weights) int64 {
	n := d.N()
	a := d.Underlying()
	var ws graph.WEvalScratch
	var diam int64
	for u := 0; u < n; u++ {
		agg := ws.DeviationDijkstra(a, wts, u, nil)
		if agg.Reached != n {
			return int64(n) * int64(n) * int64(wts.MaxW())
		}
		if agg.Ecc > diam {
			diam = agg.Ecc
		}
	}
	return diam
}
