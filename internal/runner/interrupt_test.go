package runner

import (
	"sync/atomic"
	"testing"

	"repro/internal/store"
)

// A Done channel closed before the run starts stops every missing
// point: nothing evaluates, everything counts as interrupted, and the
// store stays consistent for a later resume.
func TestInterruptBeforeStart(t *testing.T) {
	done := make(chan struct{})
	close(done)
	var evals int64
	rep, err := Run(testJob(10, &evals), nil, Options{Workers: 4, Done: done})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interrupted != 10 || rep.Evaluated != 0 || evals != 0 {
		t.Fatalf("interrupted=%d evaluated=%d evals=%d, want 10/0/0", rep.Interrupted, rep.Evaluated, evals)
	}
}

// Closing Done mid-run stops dispatching new points; already-finished
// points are in the store, and a resume without Done completes exactly
// the remainder.
func TestInterruptMidRunThenResume(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	done := make(chan struct{})
	var evals atomic.Int64
	job := testJob(n, new(int64))
	inner := job.Eval
	job.Eval = func(p Point) (any, error) {
		// The third evaluation pulls the plug; in-flight points finish.
		if evals.Add(1) == 3 {
			close(done)
		}
		return inner(p)
	}
	rep, err := Run(job, st, Options{Workers: 2, Done: done})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interrupted == 0 || rep.Evaluated == 0 {
		t.Fatalf("mid-run interrupt: %+v", rep)
	}
	if rep.Evaluated+rep.Interrupted != n {
		t.Fatalf("evaluated %d + interrupted %d != %d", rep.Evaluated, rep.Interrupted, n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var resumeEvals int64
	rep2, err := Run(testJob(n, &resumeEvals), st2, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Interrupted != 0 {
		t.Fatalf("clean resume reported interruptions: %+v", rep2)
	}
	if rep2.Skipped != rep.Evaluated || rep2.Evaluated != rep.Interrupted {
		t.Fatalf("resume did not complete exactly the remainder: first %+v, resume %+v", rep, rep2)
	}
	if int(resumeEvals) != rep.Interrupted {
		t.Fatalf("resume re-evaluated stored points: %d evals for %d missing", resumeEvals, rep.Interrupted)
	}
	for i, v := range rep2.Values {
		if v == nil {
			t.Fatalf("value %d still nil after resume", i)
		}
	}
}
