package enumerate

import (
	"testing"

	"repro/internal/core"
)

func TestOrdinalPotentialExistsForSmallGames(t *testing.T) {
	for _, c := range []struct {
		budgets []int
		version core.Version
	}{
		{[]int{1, 1, 1}, core.SUM},
		{[]int{1, 1, 1, 1}, core.SUM},
		{[]int{1, 1, 1, 1}, core.MAX},
		{[]int{2, 1, 1, 0}, core.MAX},
	} {
		g := core.MustGame(c.budgets, c.version)
		pt, err := OrdinalPotential(g, 0)
		if err != nil {
			t.Fatalf("%v %v: %v", c.budgets, c.version, err)
		}
		if pt.MaxRank < 1 {
			t.Fatalf("%v %v: degenerate potential (max rank %d)", c.budgets, c.version, pt.MaxRank)
		}
	}
}

func TestPotentialStrictlyDecreasesAlongBestResponses(t *testing.T) {
	// The defining property, checked move-by-move: from any non-Nash
	// profile, applying a best response strictly decreases the rank.
	g := core.UniformGame(4, 1, core.SUM)
	pt, err := OrdinalPotential(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	profiles, _, err := allProfiles(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, p := range profiles {
		d := p.Realize()
		rp, err := pt.Rank(p)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			br, err := g.ExactBestResponse(d, u, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !br.Improves() {
				continue
			}
			q := p.Clone()
			q[u] = br.Strategy
			// Canonicalise (BestResponse strategies are sorted already).
			rq, err := pt.Rank(q)
			if err != nil {
				t.Fatal(err)
			}
			if rq >= rp {
				t.Fatalf("potential not decreasing: %d -> %d", rp, rq)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no improving moves checked")
	}
}

func TestPotentialEquilibriaHaveRankZero(t *testing.T) {
	g := core.UniformGame(4, 1, core.MAX)
	pt, err := OrdinalPotential(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := All(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pt.Rank(core.ProfileOf(res.BestEquilibrium))
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("equilibrium rank = %d, want 0", r)
	}
}

func TestPotentialUnknownProfile(t *testing.T) {
	g := core.UniformGame(3, 1, core.SUM)
	pt, err := OrdinalPotential(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A profile from a different game (wrong budgets).
	if _, err := pt.Rank(core.Profile{{1, 2}, {0}, {0}}); err == nil {
		t.Fatal("foreign profile accepted")
	}
}
