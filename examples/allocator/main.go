// Budget allocation design: a network operator has a fixed total budget
// of links to hand out (sigma = 2n here) and must decide *how to
// distribute* it among selfish players. The bounded budget game predicts
// what network each allocation stabilises into. This example compares
// three allocation policies under best-response dynamics and reports the
// equilibrium diameter, welfare and robustness (vertex connectivity) of
// each — the repo's machinery used as a design tool rather than a
// theorem checker.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/sweep"
)

const n = 24

func main() {
	sigma := 2 * n
	policies := []struct {
		name    string
		budgets []int
	}{
		{"uniform (2 each)", uniform(sigma)},
		{"hub-heavy (4 hubs)", hubHeavy(sigma)},
		{"pyramid", pyramid(sigma)},
	}

	table := sweep.NewTable(
		fmt.Sprintf("allocating %d links among %d selfish players (SUM version)", sigma, n),
		"policy", "eq-diameter", "total-welfare", "worst-player", "connectivity", "rounds")
	rng := rand.New(rand.NewSource(99))
	for _, p := range policies {
		game, err := core.NewGame(p.budgets, core.SUM)
		if err != nil {
			log.Fatal(err)
		}
		if game.TotalBudget() != sigma {
			log.Fatalf("%s: allocated %d, want %d", p.name, game.TotalBudget(), sigma)
		}
		res, err := dynamics.RunFromRandom(game, rng, dynamics.Options{
			Responder:   core.GreedyResponder,
			Scheduler:   dynamics.RandomOrder{Rng: rng},
			DetectLoops: true,
			MaxRounds:   300,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Converged {
			table.Addf(p.name, "no-convergence", "-", "-", "-", res.Rounds)
			continue
		}
		costs := game.AllCosts(res.Final)
		var total, worst int64
		for _, c := range costs {
			total += c
			if c > worst {
				worst = c
			}
		}
		kappa := graph.VertexConnectivity(res.Final.Underlying())
		table.Addf(p.name, game.SocialCost(res.Final), total, worst, kappa, res.Rounds)
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading the table:")
	fmt.Println(" - uniform budgets win on every axis here: selfish players with")
	fmt.Println("   equal budgets stabilise a short, 2-connected overlay, matching")
	fmt.Println("   Theorem 7.2's min-budget/connectivity link;")
	fmt.Println(" - concentrated allocations (hubs, pyramid) leave the low-budget")
	fmt.Println("   tail far from the action: worse worst-player cost and only")
	fmt.Println("   1-connected equilibria despite the same spend;")
	fmt.Println(" - the operator's lever is the *distribution*, not the total:")
	fmt.Println("   all three rows spend exactly the same number of links.")
}

// uniform gives everyone sigma/n links.
func uniform(sigma int) []int {
	b := make([]int, n)
	for i := range b {
		b[i] = sigma / n
	}
	return b
}

// hubHeavy concentrates the budget in 4 hubs (capped at n-1 each) and
// gives the leftovers one link each, zero-padding the rest.
func hubHeavy(sigma int) []int {
	b := make([]int, n)
	hubs := 4
	per := sigma / hubs
	if per > n-1 {
		per = n - 1
	}
	spent := 0
	for i := 0; i < hubs; i++ {
		b[i] = per
		spent += per
	}
	for i := hubs; i < n && spent < sigma; i++ {
		b[i] = 1
		spent++
	}
	// Any remainder tops up hubs below the cap.
	for i := 0; spent < sigma; i = (i + 1) % hubs {
		if b[i] < n-1 {
			b[i]++
			spent++
		}
	}
	return b
}

// pyramid allocates budgets proportional to rank: a few big builders,
// a middle class, and a long tail with single links.
func pyramid(sigma int) []int {
	b := make([]int, n)
	weights := make([]int, n)
	totalW := 0
	for i := range weights {
		weights[i] = n - i // rank weight
		totalW += weights[i]
	}
	spent := 0
	for i := range b {
		b[i] = sigma * weights[i] / totalW
		if b[i] >= n {
			b[i] = n - 1
		}
		spent += b[i]
	}
	for i := 0; spent < sigma; i = (i + 1) % n {
		if b[i] < n-1 {
			b[i]++
			spent++
		}
	}
	for i := 0; spent > sigma; i = (i + 1) % n {
		if b[i] > 0 {
			b[i]--
			spent--
		}
	}
	return b
}
