package graph

import (
	"math/rand"
	"testing"
)

// randomDigraphFor returns a random out-digraph on n vertices with the
// given budget ceiling, for repair tests.
func randomDigraphFor(n, maxB int, rng *rand.Rand) *Digraph {
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = rng.Intn(maxB + 1)
		if budgets[i] > n-1 {
			budgets[i] = n - 1
		}
	}
	return RandomOutDigraph(budgets, rng)
}

// mutateOneOwner rewires one random vertex's entire out-set.
func mutateOneOwner(d *Digraph, rng *rand.Rand) int {
	n := d.N()
	m := rng.Intn(n)
	b := d.OutDegree(m)
	if b == 0 {
		b = rng.Intn(2) // removing nothing, adding up to one arc
	}
	seen := map[int]bool{}
	var out []int
	for len(out) < b {
		v := rng.Intn(n)
		if v != m && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	d.SetOut(m, out)
	return m
}

func checkRepairAgainstRefill(t *testing.T, old, cur Und, skip int) {
	t.Helper()
	n := len(old)
	var oldCSR, newCSR *CSR
	if skip >= 0 {
		oldCSR, newCSR = NewCSRExcluding(old, skip), NewCSRExcluding(cur, skip)
	} else {
		oldCSR, newCSR = NewCSR(old), NewCSR(cur)
	}
	rows := oldCSR.DistanceRows()
	removed, added := DiffUnd(old, cur, skip)
	st := newCSR.RepairRows(rows, removed, added, NewDeltaScratch(n))
	want := newCSR.DistanceRows()
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("repair mismatch at cell (%d,%d): got %d want %d (removed=%v added=%v stats=%+v)",
				i/n, i%n, rows[i], want[i], removed, added, st)
		}
	}
}

// Repairing a cached matrix after a single-owner rewiring must agree
// exactly with a fresh refill, with and without an excluded vertex, at
// every damage level (the refill-fraction fallback included).
func TestRepairRowsMatchesRefill(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(40)
		d := randomDigraphFor(n, 3, rng)
		old := d.Underlying()
		mutateOneOwner(d, rng)
		cur := d.Underlying()
		checkRepairAgainstRefill(t, old, cur, -1)
		checkRepairAgainstRefill(t, old, cur, rng.Intn(n))
	}
}

// Several accumulated moves form one composite delta — the lazy-repair
// shape the dynamics cache pool produces.
func TestRepairRowsCompositeDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(32)
		d := randomDigraphFor(n, 2, rng)
		old := d.Underlying()
		for moves := 1 + rng.Intn(4); moves > 0; moves-- {
			mutateOneOwner(d, rng)
		}
		cur := d.Underlying()
		checkRepairAgainstRefill(t, old, cur, -1)
		checkRepairAgainstRefill(t, old, cur, rng.Intn(n))
	}
}

// Forcing the refill threshold to zero exercises the full-refill path on
// every damaged repair; forcing it to 1 forbids it. Both must agree.
func TestRepairRowsThresholdPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	defer func(f float64) { RepairRefillFraction = f }(RepairRefillFraction)
	for _, frac := range []float64{0, 1} {
		RepairRefillFraction = frac
		for trial := 0; trial < 60; trial++ {
			n := 2 + rng.Intn(24)
			d := randomDigraphFor(n, 2, rng)
			old := d.Underlying()
			mutateOneOwner(d, rng)
			checkRepairAgainstRefill(t, old, d.Underlying(), -1)
		}
	}
}

func TestDiffUnd(t *testing.T) {
	d := NewDigraph(5)
	d.AddArc(0, 1)
	d.AddArc(1, 2)
	d.AddArc(3, 4)
	old := d.Underlying()
	d.RemoveArc(1, 2)
	d.AddArc(1, 3)
	d.AddArc(2, 1) // re-adds edge {1,2} from the other side: no net change
	cur := d.Underlying()
	removed, added := DiffUnd(old, cur, -1)
	if len(removed) != 0 {
		t.Fatalf("removed = %v, want none (edge {1,2} is re-owned, not removed)", removed)
	}
	if len(added) != 1 || added[0] != [2]int32{1, 3} {
		t.Fatalf("added = %v, want [{1 3}]", added)
	}
	removed, added = DiffUnd(old, cur, 3)
	if len(removed) != 0 || len(added) != 0 {
		t.Fatalf("with skip=3: removed=%v added=%v, want none", removed, added)
	}
}

// The no-op delta must not touch the matrix.
func TestRepairRowsNoDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	d := randomDigraphFor(12, 2, rng)
	c := NewCSR(d.Underlying())
	rows := c.DistanceRows()
	before := append([]int32(nil), rows...)
	st := c.RepairRows(rows, nil, nil, NewDeltaScratch(12))
	if st.RowsPatched+st.RowsRefilled != 0 || st.FullRefill {
		t.Fatalf("empty delta did work: %+v", st)
	}
	for i := range rows {
		if rows[i] != before[i] {
			t.Fatalf("empty delta changed cell %d", i)
		}
	}
}
