package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// FuzzSumPrune is the native fuzz target of the SUM pruning layer: on
// arbitrary byte-decoded realizations it checks that the bounded kernel
// never rejects the true best candidate — the greedy, swap and exact
// responders with pruning on must match the scalar paths exactly — and
// that EvalBounded's prune certificate (cost strictly above the bound)
// holds for arbitrary strategies and budgets. CI runs it as a smoke on
// top of the seeded corpus; the corpus seeds mirror the 8 generator
// families of the property suite in byte-encoded form.

// decodeRealization turns fuzz bytes into a small digraph: byte 0 picks
// n in [2, 20], the rest are consumed pairwise as arcs u->v (mod n,
// self-loops skipped), capping out-degrees at 3 to keep the exact
// enumeration small.
func decodeRealization(data []byte) *graph.Digraph {
	if len(data) == 0 {
		return nil
	}
	n := int(data[0])%19 + 2
	d := graph.NewDigraph(n)
	rest := data[1:]
	for i := 0; i+1 < len(rest); i += 2 {
		u := int(rest[i]) % n
		v := int(rest[i+1]) % n
		if u != v && d.OutDegree(u) < 3 {
			d.AddArc(u, v)
		}
	}
	return d
}

// familySeeds encodes one instance per generator family (path, cycle,
// star, tree, grid, random-out, preferential attachment, small world)
// as fuzz corpus bytes, so the fuzzer starts from the same structural
// shapes the property suite sweeps.
func familySeeds(f *testing.F) {
	rng := rand.New(rand.NewSource(7201))
	budgets := make([]int, 8)
	for i := range budgets {
		budgets[i] = rng.Intn(3)
	}
	pa, err := graph.PreferentialAttachment(9, 2, rng)
	if err != nil {
		panic(err)
	}
	sw, err := graph.SmallWorld(10, 2, 0.3, rng)
	if err != nil {
		panic(err)
	}
	for _, d := range []*graph.Digraph{
		graph.PathGraph(7),
		graph.CycleGraph(8),
		graph.StarGraph(8),
		graph.RandomTree(9, rng),
		graph.GridGraph(3, 3),
		graph.RandomOutDigraph(budgets, rng),
		pa,
		sw,
	} {
		enc := []byte{byte(d.N() - 2)}
		for u := 0; u < d.N(); u++ {
			for _, v := range d.Out(u) {
				enc = append(enc, byte(u), byte(v))
			}
		}
		f.Add(enc, byte(0), byte(0))
	}
}

func FuzzSumPrune(f *testing.F) {
	familySeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, uPick, budgetPick byte) {
		d := decodeRealization(data)
		if d == nil {
			return
		}
		g := GameOf(d, SUM)
		n := g.N()
		u := int(uPick) % n

		// Responder equivalence: pruning on (a pool-owned Deviator past
		// the stability hysteresis, so the tier bounds and memo engage)
		// vs the scalar path. Each responder runs twice on the pooled
		// side — the second scan is served from the memo and must agree
		// too.
		pool := NewCachePool(g, 0)
		defer pool.Close()
		on := pool.Acquire(d, u)
		on.sumOn = true
		on.stable = 4
		off := NewDeviator(g, d, u)
		off.sumOn = false
		if !on.HasCache() || !off.EnsureCache(1<<40) {
			t.Fatal("cache refused")
		}
		defer off.Release()

		gOff := g.greedyOn(off, d)
		for pass := 0; pass < 2; pass++ {
			gOn := g.greedyOn(on, d)
			if gOn.Cost != gOff.Cost || gOn.Explored != gOff.Explored || !equalInts(gOn.Strategy, gOff.Strategy) {
				t.Fatalf("greedy pass %d diverges: kernel %+v scalar %+v", pass, gOn, gOff)
			}
		}
		sOn, sOff := g.swapOn(on, d), g.swapOn(off, d)
		if sOn.Cost != sOff.Cost || sOn.Explored != sOff.Explored || !equalInts(sOn.Strategy, sOff.Strategy) {
			t.Fatalf("swap diverges: kernel %+v scalar %+v", sOn, sOff)
		}
		if StrategySpaceSize(n, g.Budgets[u]) <= 4096 {
			eOn, eOff := g.exactOn(on, d), g.exactOn(off, d)
			if eOn.Cost != eOff.Cost || eOn.Explored != eOff.Explored || !equalInts(eOn.Strategy, eOff.Strategy) {
				t.Fatalf("exact diverges: kernel %+v scalar %+v", eOn, eOff)
			}
		}

		// Prune-certificate soundness on a strategy derived from the
		// fuzz input, across budgets bracketing the true cost.
		rng := rand.New(rand.NewSource(int64(len(data))*31 + int64(uPick)))
		k := int(budgetPick) % 4
		if k > n-1 {
			k = n - 1
		}
		s := randomStrategy(n, u, k, rng)
		want := off.Eval(s)
		for _, bound := range []int64{0, want - 1, want, want + 1, int64(budgetPick) * 7, 1 << 40} {
			c, pruned := on.EvalBounded(s, bound)
			if pruned {
				if want <= bound {
					t.Fatalf("pruned although cost %d <= bound %d (s=%v)", want, bound, s)
				}
			} else if c != want {
				t.Fatalf("bounded cost %d != Eval %d (s=%v)", c, want, s)
			}
		}
	})
}
