// Package experiments implements the paper's evaluation artifacts as
// reusable functions: every cell of Table 1, Figures 1-3, and the
// auxiliary theorem checks (existence/PoS, the Theorem 2.1 reduction,
// the Theorem 7.2 connectivity dichotomy, and Section 8's convergence
// question). The CLI (cmd/bbncg) and the benchmark harness
// (bench_test.go) both call into this package, so the printed tables and
// the benchmarked work are the same code.
//
// The sweep experiments are factored into runner form — a deterministic
// point list, a pure per-point evaluator, and a renderer from stored
// values to tables (see spec.go) — so the CLI can checkpoint them into
// a results store and resume interrupted runs. The exported Table1*
// functions are thin wrappers that run their spec in memory.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/sweep"
)

// Effort scales experiment sizes: quick configurations for tests and
// benchmarks, full configurations for the CLI reproduction run.
type Effort int

const (
	// Quick keeps every instance small enough for exhaustive
	// verification in well under a second.
	Quick Effort = iota
	// Full runs the sweep ranges reported in EXPERIMENTS.md.
	Full
)

// name tags point keys whose evaluation depends on the effort level
// (trial counts, generation ranges), so Quick and Full results never
// alias in a store.
func (e Effort) name() string {
	if e == Full {
		return "full"
	}
	return "quick"
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// ---------------------------------------------------------------------
// Table 1 [Trees, MAX]

type treesMAXRow struct {
	K        int     `json:"k"`
	N        int     `json:"n"`
	Diam     int64   `json:"diam"`
	PoA      float64 `json:"poa"`
	Verified bool    `json:"verified"`
}

func treesMAXJob(effort Effort) runner.Job {
	ks := []int{2, 3, 4, 6, 8}
	if effort == Full {
		ks = []int{2, 3, 4, 6, 8, 12, 16, 24, 32, 40}
	}
	points := make([]runner.Point, len(ks))
	for i, k := range ks {
		points[i] = runner.Point{Exp: "table1-trees-max", Key: fmt.Sprintf("k=%d", k), Data: k}
	}
	return runner.Job{Exp: "table1-trees-max", Points: points, Eval: evalTreesMAX}
}

// evalTreesMAX verifies one spider (Theorem 3.2 / Figure 2) as a MAX
// equilibrium and measures its PoA ratio.
func evalTreesMAX(p runner.Point) (any, error) {
	k := p.Data.(int)
	d, budgets, err := construct.Spider(k)
	if err != nil {
		return nil, err
	}
	g := core.MustGame(budgets, core.MAX)
	dev, err := g.VerifyNash(d, 0)
	if err != nil {
		return nil, err
	}
	poa, err := analysis.PriceOfAnarchy(g, d)
	if err != nil {
		return nil, err
	}
	return treesMAXRow{K: k, N: d.N(), Diam: poa.EquilibriumDiameter, PoA: poa.Ratio, Verified: dev == nil}, nil
}

func treesMAXTable(rows []treesMAXRow) *sweep.Table {
	t := sweep.NewTable("Table 1 [Trees, MAX]: spider equilibria, PoA = Theta(n)",
		"k", "n", "eq-diameter", "2k(paper)", "PoA>=", "nash-verified")
	for _, r := range rows {
		t.Addf(r.K, r.N, r.Diam, construct.SpiderDiameter(r.K), r.PoA, yesNo(r.Verified))
	}
	return t
}

// Table1TreesMAX reproduces the Trees/MAX cell of Table 1: the spider of
// Theorem 3.2 (Figure 2) is a MAX equilibrium with diameter 2k = Theta(n)
// while the optimum stays O(1), so PoA = Theta(n). Equilibria are
// verified exactly (parallel enumeration) for every point.
func Table1TreesMAX(effort Effort) (*sweep.Table, error) {
	rows, err := runRows[treesMAXRow](treesMAXJob(effort))
	if err != nil {
		return nil, err
	}
	return treesMAXTable(rows), nil
}

// ---------------------------------------------------------------------
// Table 1 [Trees, SUM]

type treesSUMRow struct {
	K        int    `json:"k"`
	N        int    `json:"n"`
	Diam     int32  `json:"diam"`
	Mode     string `json:"mode"`
	Verified bool   `json:"verified"`
	IneqOK   bool   `json:"ineqOK"`
}

func treesSUMJob(effort Effort) runner.Job {
	ks := []int{1, 2, 3, 4}
	if effort == Full {
		ks = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	points := make([]runner.Point, len(ks))
	for i, k := range ks {
		points[i] = runner.Point{Exp: "table1-trees-sum", Key: fmt.Sprintf("k=%d", k), Data: k}
	}
	return runner.Job{Exp: "table1-trees-sum", Points: points, Eval: evalTreesSUM}
}

// evalTreesSUM verifies one perfect binary tree (Theorem 3.4) as a SUM
// equilibrium — exactly up to depth 5, swap-stability beyond — and runs
// the Theorem 3.3 subtree-weight audit.
func evalTreesSUM(p runner.Point) (any, error) {
	const exactLimit = 5
	k := p.Data.(int)
	d, budgets, err := construct.PerfectBinaryTree(k)
	if err != nil {
		return nil, err
	}
	g := core.MustGame(budgets, core.SUM)
	r := treesSUMRow{K: k, N: d.N(), Diam: graph.Diameter(d.Underlying())}
	var dev *core.Deviation
	if k <= exactLimit {
		r.Mode = "exact"
		dev, err = g.VerifyNash(d, 0)
	} else {
		r.Mode = "swap"
		dev, err = g.VerifySwapStable(d)
	}
	if err != nil {
		return nil, err
	}
	r.Verified = dev == nil
	audit, err := analysis.AuditTreeSumPath(d)
	if err != nil {
		return nil, err
	}
	r.IneqOK = audit.InequalityOK
	return r, nil
}

func treesSUMTable(rows []treesSUMRow) *sweep.Table {
	t := sweep.NewTable("Table 1 [Trees, SUM]: binary-tree equilibria, PoA = Theta(log n)",
		"k", "n", "eq-diameter", "2*log2(n+1)-2", "verified", "mode", "thm3.3-ineq")
	for _, r := range rows {
		bound := 2*int(math.Log2(float64(r.N+1))) - 2
		t.Addf(r.K, r.N, r.Diam, bound, yesNo(r.Verified), r.Mode, yesNo(r.IneqOK))
	}
	return t
}

// Table1TreesSUM reproduces the Trees/SUM cell: the perfect binary tree
// of Theorem 3.4 is a SUM equilibrium with diameter 2k = Theta(log n);
// Theorem 3.3 proves no tree equilibrium does asymptotically worse.
// Verification is exact up to n = 63 and swap-stability beyond.
func Table1TreesSUM(effort Effort) (*sweep.Table, error) {
	rows, err := runRows[treesSUMRow](treesSUMJob(effort))
	if err != nil {
		return nil, err
	}
	return treesSUMTable(rows), nil
}

// ---------------------------------------------------------------------
// Table 1 [All-Unit]

// UnitResult aggregates a unit-budget dynamics sweep cell.
type UnitResult struct {
	N          int
	Trials     int
	Converged  int
	Loops      int
	MaxDiam    int64
	MaxCycle   int
	AuditFails int
}

func unitJob(version core.Version, effort Effort, seed int64) runner.Job {
	ns := []int{5, 8, 12}
	trials := 6
	if effort == Full {
		ns = []int{5, 8, 12, 16, 24, 32, 48, 64}
		trials = 20
	}
	exp := "table1-unit-sum"
	if version == core.MAX {
		exp = "table1-unit-max"
	}
	points := make([]runner.Point, len(ns))
	for i, n := range ns {
		points[i] = runner.Point{Exp: exp, Key: fmt.Sprintf("n=%d,trials=%d", n, trials), Seed: seed, Data: n}
	}
	return runner.Job{Exp: exp, Points: points, Eval: func(p runner.Point) (any, error) {
		return evalUnit(version, trials, p)
	}}
}

// cellPool builds the distance-cache pool shared by every trial of one
// sweep cell. The trials of a cell run the same game back to back on a
// single goroutine, so the warm per-player matrices survive across them
// — each run invalidates the pool on entry and resyncs entries against
// its own start profile — instead of being refilled from scratch per
// trial. Returns nil (letting the engine skip pooling entirely) when
// the incremental path is disabled. Callers own the pool and must
// Close it when the cell is done.
func cellPool(g *core.Game) *core.CachePool {
	if !core.IncrementalEnabled() {
		return nil
	}
	return core.NewCachePool(g, 0)
}

// evalUnit runs the unit-budget dynamics trials for one n and audits
// every reached equilibrium against Theorems 4.1/4.2.
func evalUnit(version core.Version, trials int, p runner.Point) (any, error) {
	n := p.Data.(int)
	rng := rand.New(rand.NewSource(p.Seed + int64(n)))
	g := core.UniformGame(n, 1, version)
	res := UnitResult{N: n, Trials: trials}
	pool := cellPool(g)
	defer pool.Close()
	for trial := 0; trial < trials; trial++ {
		out, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
			Responder:   core.ExactResponder(0),
			Cached:      core.ExactDeviatorResponder(0),
			DetectLoops: true,
			MaxRounds:   2000,
			Pool:        pool,
		})
		if err != nil {
			res.AuditFails++
			continue
		}
		if out.Loop {
			res.Loops++
			continue
		}
		if !out.Converged {
			continue
		}
		res.Converged++
		audit := analysis.AuditUnitBudget(out.Final)
		ok := audit.SatisfiesSUM
		if version == core.MAX {
			ok = audit.SatisfiesMAX
		}
		if !ok {
			res.AuditFails++
		}
		if audit.SocialCost > res.MaxDiam {
			res.MaxDiam = audit.SocialCost
		}
		if audit.CycleLen > res.MaxCycle {
			res.MaxCycle = audit.CycleLen
		}
	}
	return res, nil
}

func unitTable(version core.Version, rows []UnitResult) *sweep.Table {
	t := sweep.NewTable(
		fmt.Sprintf("Table 1 [All-Unit, %v]: dynamics equilibria have O(1) diameter", version),
		"n", "trials", "converged", "loops", "max-eq-diam", "max-cycle", "audit-fails")
	for _, r := range rows {
		t.Addf(r.N, r.Trials, r.Converged, r.Loops, r.MaxDiam, r.MaxCycle, r.AuditFails)
	}
	return t
}

// Table1Unit reproduces the All-Unit-Budgets row: best-response dynamics
// on (1,...,1)-BG reach equilibria whose diameter is O(1); every reached
// equilibrium is audited against the structure of Theorems 4.1/4.2.
func Table1Unit(version core.Version, effort Effort, seed int64) (*sweep.Table, []UnitResult, error) {
	rows, err := runRows[UnitResult](unitJob(version, effort, seed))
	if err != nil {
		return nil, nil, err
	}
	return unitTable(version, rows), rows, nil
}

// ---------------------------------------------------------------------
// Table 1 [All-Positive, MAX]

type positiveMAXRow struct {
	T        int     `json:"t"`
	K        int     `json:"k"`
	N        int     `json:"n"`
	Diam     int32   `json:"diam"`
	SqrtLogN float64 `json:"sqrtLogN"`
	Mode     string  `json:"mode"`
	Verified bool    `json:"verified"`
}

func positiveMAXJob(effort Effort) runner.Job {
	type point struct{ t, k int }
	points := []point{{3, 2}, {4, 2}}
	if effort == Full {
		points = []point{{3, 2}, {4, 2}, {5, 2}, {8, 2}, {5, 3}, {6, 3}, {8, 3}, {9, 4}}
	}
	rp := make([]runner.Point, len(points))
	for i, p := range points {
		rp[i] = runner.Point{Exp: "table1-positive-max", Key: fmt.Sprintf("t=%d,k=%d", p.t, p.k), Data: [2]int{p.t, p.k}}
	}
	return runner.Job{Exp: "table1-positive-max", Points: rp, Eval: evalPositiveMAX}
}

// evalPositiveMAX certifies one shift graph (Lemma 5.2) as an
// all-positive MAX equilibrium, exactly below 20 vertices and by the
// lemma's certificate beyond.
func evalPositiveMAX(p runner.Point) (any, error) {
	const exactVertexLimit = 20
	tk := p.Data.([2]int)
	sg, err := construct.NewShiftGraph(tk[0], tk[1], 0)
	if err != nil {
		return nil, err
	}
	cert := sg.CertifyEquilibrium()
	r := positiveMAXRow{T: tk[0], K: tk[1], N: cert.N, Diam: cert.EccMax,
		SqrtLogN: math.Sqrt(math.Log2(float64(cert.N)))}
	if cert.N <= exactVertexLimit {
		r.Mode = "exact"
		g := core.MustGame(sg.Budgets(), core.MAX)
		dev, err := g.VerifyNash(sg.D, 0)
		if err != nil {
			return nil, err
		}
		r.Verified = dev == nil && cert.OK
	} else {
		r.Mode = "certificate"
		r.Verified = cert.OK
	}
	return r, nil
}

func positiveMAXTable(rows []positiveMAXRow) *sweep.Table {
	t := sweep.NewTable("Table 1 [All-Positive, MAX]: shift-graph equilibria, diameter = sqrt(log n)",
		"t", "k", "n", "eq-diameter", "sqrt(log2 n)", "verified", "mode")
	for _, r := range rows {
		t.Addf(r.T, r.K, r.N, r.Diam, r.SqrtLogN, yesNo(r.Verified), r.Mode)
	}
	return t
}

// Table1PositiveMAX reproduces the All-Positive/MAX cell: shift graphs
// (Lemma 5.2) with all-positive budgets whose equilibrium diameter is
// k = sqrt(log n). Small instances are verified exactly; larger ones get
// the Lemma 5.2 certificate (plus swap-stability at Full effort).
func Table1PositiveMAX(effort Effort) (*sweep.Table, error) {
	rows, err := runRows[positiveMAXRow](positiveMAXJob(effort))
	if err != nil {
		return nil, err
	}
	return positiveMAXTable(rows), nil
}

// ---------------------------------------------------------------------
// Table 1 [General, SUM]

type generalSUMRow struct {
	N         int     `json:"n"`
	Trials    int     `json:"trials"`
	Converged int     `json:"converged"`
	MaxDiam   int64   `json:"maxDiam"`
	Bound     float64 `json:"bound"`
}

func generalSUMJob(effort Effort, seed int64) runner.Job {
	ns := []int{8, 12, 16}
	trials := 4
	if effort == Full {
		ns = []int{8, 12, 16, 24, 32, 48, 64, 96}
		trials = 10
	}
	points := make([]runner.Point, len(ns))
	for i, n := range ns {
		points[i] = runner.Point{Exp: "table1-general-sum", Key: fmt.Sprintf("n=%d,trials=%d", n, trials), Seed: seed, Data: n}
	}
	return runner.Job{Exp: "table1-general-sum", Points: points, Eval: func(p runner.Point) (any, error) {
		return evalGeneralSUM(trials, p)
	}}
}

// evalGeneralSUM drives best-response dynamics over random budget
// vectors at one n and records the worst equilibrium diameter against
// the Theorem 6.9 bound.
func evalGeneralSUM(trials int, p runner.Point) (any, error) {
	n := p.Data.(int)
	rng := rand.New(rand.NewSource(p.Seed + int64(7*n)))
	r := generalSUMRow{N: n, Trials: trials, Bound: math.Exp2(math.Sqrt(math.Log2(float64(n))))}
	for trial := 0; trial < trials; trial++ {
		budgets := randomConnectedBudgets(n, rng)
		g := core.MustGame(budgets, core.SUM)
		responder := core.Responder(core.GreedyResponder)
		cached := core.DeviatorResponder(core.GreedyDeviatorResponder)
		if n <= 12 {
			responder = core.ExactResponder(0)
			cached = core.ExactDeviatorResponder(0)
		}
		out, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
			Responder:   responder,
			Cached:      cached,
			DetectLoops: true,
			MaxRounds:   400,
		})
		if err != nil || !out.Converged {
			continue
		}
		r.Converged++
		if sc := g.SocialCost(out.Final); sc > r.MaxDiam {
			r.MaxDiam = sc
		}
	}
	return r, nil
}

// generalSUMTable renders the sweep table alone.
func generalSUMTable(rows []generalSUMRow) *sweep.Table {
	t := sweep.NewTable("Table 1 [General, SUM]: dynamics equilibria vs the 2^O(sqrt(log n)) bound",
		"n", "trials", "converged", "max-eq-diam", "2^sqrt(log2 n)")
	for _, r := range rows {
		t.Addf(r.N, r.Trials, r.Converged, r.MaxDiam, r.Bound)
	}
	return t
}

// generalSUMTables renders the sweep table plus — when at least two
// points converged — the growth-law fit of the equilibrium diameters
// (the CLI's sumupper output).
func generalSUMTables(rows []generalSUMRow) ([]*sweep.Table, error) {
	ns, diams := generalSUMSeries(rows)
	tables := []*sweep.Table{generalSUMTable(rows)}
	if len(ns) >= 2 {
		fits, err := analysis.FitGrowth(ns, diams)
		if err != nil {
			return nil, err
		}
		ft := sweep.NewTable("growth-law fit of SUM equilibrium diameters", "model", "coefficient", "rel-RMSE")
		for _, f := range fits {
			ft.Addf(f.Model, f.Coefficient, f.RelRMSE)
		}
		tables = append(tables, ft)
	}
	return tables, nil
}

// generalSUMSeries extracts the (n, diameter) series of converged points.
func generalSUMSeries(rows []generalSUMRow) (ns, diams []float64) {
	for _, r := range rows {
		if r.Converged > 0 {
			ns = append(ns, float64(r.N))
			diams = append(diams, float64(r.MaxDiam))
		}
	}
	return ns, diams
}

// Table1GeneralSUM reproduces the General/SUM cell: best-response
// dynamics over random budget vectors reach SUM equilibria; their
// diameters stay far below the 2^O(sqrt(log n)) bound of Theorem 6.9 (and
// empirically track O(log n), consistent with the paper's conjecture that
// the strange bound is not tight).
func Table1GeneralSUM(effort Effort, seed int64) (*sweep.Table, []float64, []float64, error) {
	rows, err := runRows[generalSUMRow](generalSUMJob(effort, seed))
	if err != nil {
		return nil, nil, nil, err
	}
	ns, diams := generalSUMSeries(rows)
	return generalSUMTable(rows), ns, diams, nil
}

// randomConnectedBudgets draws a positive-total budget vector with
// sum >= n-1 (so equilibria are connected, Lemma 3.1): a random spanning
// allocation plus random extras, each budget < n.
func randomConnectedBudgets(n int, rng *rand.Rand) []int {
	budgets := make([]int, n)
	// Give out n-1 units round-robin from a random start, then sprinkle.
	start := rng.Intn(n)
	for i := 0; i < n-1; i++ {
		budgets[(start+i)%n]++
	}
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		v := rng.Intn(n)
		if budgets[v] < n-1 {
			budgets[v]++
		}
	}
	return budgets
}
