package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// weightedFamilies returns one instance of each generator family, the
// coverage matrix of the weighted kernel-vs-reference suite.
func weightedFamilies(rng *rand.Rand) map[string]*graph.Digraph {
	pa, err := graph.PreferentialAttachment(14, 2, rng)
	if err != nil {
		panic(err)
	}
	sw, err := graph.SmallWorld(14, 2, 0.3, rng)
	if err != nil {
		panic(err)
	}
	budgets := make([]int, 13)
	for i := range budgets {
		budgets[i] = rng.Intn(3)
	}
	return map[string]*graph.Digraph{
		"path":   graph.PathGraph(12),
		"cycle":  graph.CycleGraph(12),
		"star":   graph.StarGraph(12),
		"tree":   graph.RandomTree(13, rng),
		"grid":   graph.GridGraph(3, 4),
		"random": graph.RandomOutDigraph(budgets, rng),
		"pa":     pa,
		"sw":     sw,
	}
}

// randStrategy returns b distinct targets != u.
func randStrategy(n, u, b int, rng *rand.Rand) []int {
	have := make(map[int]bool)
	var s []int
	for len(s) < b {
		v := rng.Intn(n)
		if v != u && !have[v] {
			have[v] = true
			s = append(s, v)
		}
	}
	return s
}

// The weighted cached evaluation (offset-adjusted rows + the unchanged
// min-merge kernels) must agree with the per-candidate Dijkstra
// fallback on every family, weight range and cost version — and with
// the unweighted engine at unit weights.
func TestWeightedEvalCachedVsDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for name, d := range weightedFamilies(rng) {
		for _, version := range []Version{SUM, MAX} {
			for _, maxW := range []int32{1, 5, 40} {
				g := GameOf(d, version)
				n := g.N()
				wts := graph.NewWeights(n, rng.Int63(), maxW)
				for trial := 0; trial < 6; trial++ {
					u := rng.Intn(n)
					s := randStrategy(n, u, rng.Intn(3), rng)

					cached := NewWeightedDeviator(g, d, u, wts)
					if !cached.EnsureWeightedCache(DefaultCacheBudget) {
						t.Fatalf("%s/%v: weighted cache refused", name, version)
					}
					fallback := NewWeightedDeviator(g, d, u, wts)
					got, want := cached.Eval(s), fallback.Eval(s)
					if got != want {
						t.Fatalf("%s/%v maxW=%d u=%d s=%v: cached %d, dijkstra %d",
							name, version, maxW, u, s, got, want)
					}
					if maxW == 1 {
						plain := NewDeviator(g, d, u)
						plain.EnsureCache(DefaultCacheBudget)
						if pc := plain.Eval(s); pc != got {
							t.Fatalf("%s/%v u=%d s=%v: unit-weighted %d, unweighted %d",
								name, version, u, s, got, pc)
						}
						plain.release()
					}
					cached.release()
					fallback.release()
				}
			}
		}
	}
}

// Unit weights must reproduce the unweighted cost surface exactly:
// per-player costs and the social cost.
func TestWeightedUnitBridge(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for name, d := range weightedFamilies(rng) {
		for _, version := range []Version{SUM, MAX} {
			g := GameOf(d, version)
			wts := graph.NewWeights(g.N(), 1, 1)
			w, p := g.WeightedAllCosts(d, wts), g.AllCosts(d)
			for u := range w {
				if w[u] != p[u] {
					t.Fatalf("%s/%v: WeightedAllCosts[%d] = %d, AllCosts = %d", name, version, u, w[u], p[u])
				}
			}
			if ws, ps := g.WeightedSocialCost(d, wts), g.SocialCost(d); ws != ps {
				t.Fatalf("%s/%v: weighted social cost %d, plain %d", name, version, ws, ps)
			}
		}
	}
}

// The weighted responders must return identical responses across the
// whole knob matrix (BBNCG_WSTEP × BBNCG_SUMKERNEL): the knobs select
// implementations, never results.
func TestWeightedResponderKnobMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	families := weightedFamilies(rng)
	type cfg struct{ wstep, kernel string }
	cfgs := []cfg{{"1", "1"}, {"0", "1"}, {"1", "0"}, {"0", "0"}}
	for name, d := range families {
		for _, version := range []Version{SUM, MAX} {
			g := GameOf(d, version)
			wts := graph.NewWeights(g.N(), 17, 9)
			u := rng.Intn(g.N())
			var ref BestResponse
			for i, c := range cfgs {
				t.Setenv("BBNCG_WSTEP", c.wstep)
				t.Setenv("BBNCG_SUMKERNEL", c.kernel)
				br := WeightedGreedyResponder(wts)(g, d, u)
				sw := WeightedSwapResponder(wts)(g, d, u)
				if i == 0 {
					ref = br
					continue
				}
				if br.Cost != ref.Cost || br.Current != ref.Current || fmt.Sprint(br.Strategy) != fmt.Sprint(ref.Strategy) {
					t.Fatalf("%s/%v u=%d cfg=%+v: greedy %+v, reference %+v", name, version, u, c, br, ref)
				}
				if sw.Cost > sw.Current {
					t.Fatalf("%s/%v u=%d cfg=%+v: swap worsened: %+v", name, version, u, c, sw)
				}
			}
		}
	}
}

// weightedStream runs a mixed mutation stream (rewires + weight sets)
// against a weighted pool, comparing every pooled greedy response with
// a fresh-fill weighted responder — the end-to-end pin of syncWeights,
// the weighted repair and the pool ladder.
func weightedStream(t *testing.T, version Version) {
	t.Helper()
	rng := rand.New(rand.NewSource(64))
	n := 16
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = 1 + rng.Intn(2)
	}
	d := graph.RandomOutDigraph(budgets, rng)
	g := GameOf(d, version)
	wts := graph.NewWeights(n, 5, 11)
	pool := NewWeightedCachePool(g, 0, wts)
	defer pool.Close()
	d.StartJournal(4*n + 64)
	plain := WeightedGreedyResponder(wts)
	for round := 0; round < 12; round++ {
		// Mutate: one rewire and/or a couple of weight changes.
		if rng.Intn(3) > 0 {
			m := rng.Intn(n)
			d.SetOut(m, randStrategy(n, m, g.Budgets[m], rng))
			pool.Invalidate()
		}
		for k := rng.Intn(3); k > 0; k-- {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				if err := wts.Set(u, v, 1+int32(rng.Intn(11))); err != nil {
					t.Fatal(err)
				}
			}
		}
		for u := 0; u < n; u++ {
			dv := pool.Acquire(d, u)
			got := GreedyDeviatorResponder(g, d, dv)
			dv.Release()
			want := plain(g, d, u)
			if got.Cost != want.Cost || got.Current != want.Current {
				t.Fatalf("round %d u=%d: pooled %+v, fresh %+v (stats %+v)", round, u, got, want, pool.Stats())
			}
		}
	}
	if st := pool.Stats(); st.Fills != int64(n) {
		t.Fatalf("pool refilled instead of repairing: %+v", st)
	}
}

func TestWeightedPoolRepairVsRefillSUM(t *testing.T) { weightedStream(t, SUM) }
func TestWeightedPoolRepairVsRefillMAX(t *testing.T) { weightedStream(t, MAX) }

// The same stream with stamps and the stepping kernel disabled must
// still agree (the BBNCG_STAMPS leg of the knob matrix).
func TestWeightedPoolKnobsOff(t *testing.T) {
	t.Setenv("BBNCG_STAMPS", "0")
	t.Setenv("BBNCG_WSTEP", "0")
	weightedStream(t, SUM)
}

// Settled weighted rounds must be free: untouched graph and weights
// cost a generation comparison per player — no repairs, no resyncs.
func TestWeightedPoolSettledZeroResync(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	d := graph.RandomOutDigraph([]int{1, 2, 1, 2, 1, 2, 1, 2}, rng)
	g := GameOf(d, SUM)
	wts := graph.NewWeights(g.N(), 2, 7)
	pool := NewWeightedCachePool(g, 0, wts)
	defer pool.Close()
	for u := 0; u < g.N(); u++ {
		pool.Acquire(d, u).Release()
	}
	before := pool.Stats()
	for wave := 0; wave < 3; wave++ {
		for u := 0; u < g.N(); u++ {
			pool.Acquire(d, u).Release()
		}
	}
	after := pool.Stats()
	if after.Repairs != before.Repairs || after.Resyncs != before.Resyncs || after.Fills != before.Fills {
		t.Fatalf("settled waves did work: before %+v, after %+v", before, after)
	}
}

// Weight-only mutations must resync through the change log without an
// Invalidate call and stay bit-identical to a fresh fill.
func TestWeightedPoolWeightOnlySync(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	d := graph.RandomOutDigraph([]int{2, 1, 2, 1, 2, 1, 2, 1, 2, 1}, rng)
	g := GameOf(d, SUM)
	n := g.N()
	wts := graph.NewWeights(n, 3, 9)
	pool := NewWeightedCachePool(g, 0, wts)
	defer pool.Close()
	plain := WeightedGreedyResponder(wts)
	for u := 0; u < n; u++ {
		pool.Acquire(d, u).Release()
	}
	for round := 0; round < 8; round++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if err := wts.Set(u, v, 1+int32(rng.Intn(9))); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < n; p++ {
			dv := pool.Acquire(d, p)
			got := GreedyDeviatorResponder(g, d, dv)
			dv.Release()
			if want := plain(g, d, p); got.Cost != want.Cost {
				t.Fatalf("round %d player %d: pooled %d, fresh %d", round, p, got.Cost, want.Cost)
			}
		}
	}
	if st := pool.Stats(); st.Fills != int64(n) || st.Resyncs != 0 {
		t.Fatalf("weight-only stream hit the topology ladder: %+v", st)
	}
}

// A weight-only mutation moves no graph anchor, so the round memo must
// key on the weights generation too: a stale "no improving move" answer
// may become improving when an edge gets cheaper.
func TestWeightedPoolMemoInvalidatedByWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	d := graph.RandomOutDigraph([]int{1, 1, 2, 1, 1, 2}, rng)
	g := GameOf(d, SUM)
	wts := graph.NewWeights(g.N(), 8, 6)
	pool := NewWeightedCachePool(g, 0, wts)
	defer pool.Close()
	d.StartJournal(256)
	// Settle the graph so some player certifiably has no improving move
	// and the memo engages for real.
	for moved, rounds := true, 0; moved && rounds < 50; rounds++ {
		moved = false
		for u := 0; u < g.N(); u++ {
			dv := pool.Acquire(d, u)
			br := GreedyDeviatorResponder(g, d, dv)
			dv.Release()
			if br.Improves() {
				d.SetOut(u, br.Strategy)
				pool.Invalidate()
				moved = true
			}
		}
	}
	u := 0
	dv := pool.Acquire(d, u)
	br := GreedyDeviatorResponder(g, d, dv)
	dv.Release()
	if br.Improves() {
		t.Fatal("dynamics did not settle")
	}
	pool.NoteResponse(d, u, false)
	if !pool.SkipResponse(d, u) {
		t.Fatal("memo did not engage on the unchanged graph")
	}
	if err := wts.Set(1, 2, 6); err != nil {
		t.Fatal(err)
	}
	if pool.SkipResponse(d, u) {
		t.Fatal("memo survived a weight mutation")
	}
}

// The cache must refuse instances whose adjusted distances cannot be
// encoded, leaving the Dijkstra fallback in charge.
func TestWeightedCacheRefusesOverflow(t *testing.T) {
	d := graph.PathGraph(8)
	g := GameOf(d, SUM)
	wts := graph.NewWeights(8, 1, 1<<29)
	dv := NewWeightedDeviator(g, d, 1, wts)
	defer dv.release()
	if dv.EnsureWeightedCache(DefaultCacheBudget) {
		t.Fatal("cache accepted an un-encodable weight range")
	}
	if c := dv.Eval([]int{0}); c <= 0 {
		t.Fatalf("fallback Eval = %d", c)
	}
}

// Satellite: WeightedBestResponsePooled must reuse the warm pool —
// exactly one fill per player across repeated calls — and agree with
// the throwaway-Deviator path, folds included (the Section-6 zero-
// weight vertices contribute nothing on either path).
func TestWeightedBestResponsePooled(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	d := graph.RandomOutDigraph([]int{1, 2, 1, 1, 2, 1, 1, 2, 1, 1}, rng)
	wg := NewWeighted(d)
	wg.W[3] = 0 // folded away
	wg.W[7] = 4 // weight transferred by a fold
	pool := NewCachePool(GameOf(d, SUM), 0)
	defer pool.Close()
	for pass := 0; pass < 3; pass++ {
		for u := 0; u < d.N(); u++ {
			if !wg.Alive(u) {
				continue
			}
			got, err := wg.WeightedBestResponsePooled(u, 0, pool)
			if err != nil {
				t.Fatal(err)
			}
			want, err := wg.WeightedBestResponse(u, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != want.Cost || got.Current != want.Current {
				t.Fatalf("pass %d u=%d: pooled %+v, plain %+v", pass, u, got, want)
			}
		}
	}
	if st := pool.Stats(); st.Fills != int64(d.N()-1) {
		t.Fatalf("expected one fill per alive player, got %+v", st)
	}
	dev, err := wg.WeightedNashDeviationPooled(0, pool)
	if err != nil {
		t.Fatal(err)
	}
	devPlain, err := wg.WeightedNashDeviation(0)
	if err != nil {
		t.Fatal(err)
	}
	if (dev == nil) != (devPlain == nil) {
		t.Fatalf("pooled deviation %+v, plain %+v", dev, devPlain)
	}
}
