package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// Robustness runs best-response dynamics from structurally diverse
// initial overlays — uniform random, preferential attachment (hub-heavy,
// the shape real P2P bootstrap tends toward), small-world lattices and
// long paths — and reports equilibrium quality per start family. The
// game's predictions (convergence; small equilibrium diameters) should
// not depend on where the dynamics start; this sweep is the evidence.
func Robustness(effort Effort, seed int64) (*sweep.Table, error) {
	n := 20
	trials := 4
	if effort == Full {
		n = 32
		trials = 10
	}
	type family struct {
		name string
		make func(rng *rand.Rand) (*graph.Digraph, error)
	}
	families := []family{
		{"random", func(rng *rand.Rand) (*graph.Digraph, error) {
			budgets := make([]int, n)
			for i := range budgets {
				budgets[i] = 2
			}
			return graph.RandomOutDigraph(budgets, rng), nil
		}},
		{"pref-attach", func(rng *rand.Rand) (*graph.Digraph, error) {
			return graph.PreferentialAttachment(n, 2, rng)
		}},
		{"small-world", func(rng *rand.Rand) (*graph.Digraph, error) {
			return graph.SmallWorld(n, 4, 0.2, rng)
		}},
		{"lattice", func(rng *rand.Rand) (*graph.Digraph, error) {
			return graph.SmallWorld(n, 4, 0, rng)
		}},
	}
	type row struct {
		name      string
		converged int
		diams     []int64
		rounds    []int64
		err       error
	}
	rows := sweep.Parallel(families, func(f family) row {
		rng := rand.New(rand.NewSource(seed + int64(len(f.name))))
		r := row{name: f.name}
		for trial := 0; trial < trials; trial++ {
			start, err := f.make(rng)
			if err != nil {
				return row{err: err}
			}
			g := core.MustGame(graph.BudgetsOf(start), core.SUM)
			out, err := dynamics.Run(g, start, dynamics.Options{
				Responder:   core.GreedyResponder,
				DetectLoops: true,
				MaxRounds:   300,
			})
			if err != nil {
				return row{err: err}
			}
			if !out.Converged {
				continue
			}
			r.converged++
			r.diams = append(r.diams, g.SocialCost(out.Final))
			r.rounds = append(r.rounds, int64(out.Rounds))
		}
		return r
	})
	t := sweep.NewTable(
		fmt.Sprintf("Robustness: greedy dynamics from diverse initial overlays (n=%d, SUM)", n),
		"start-family", "trials", "converged", "eq-diameter", "rounds")
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		t.Addf(r.name, trials, r.converged,
			stats.Summarize(r.diams).MeanStd(), stats.Summarize(r.rounds).MeanStd())
	}
	return t, nil
}
