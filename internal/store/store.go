// Package store is a durable, sharded results store for experiment
// sweeps: one append-only JSONL shard per experiment plus a manifest,
// designed so a sweep killed mid-run loses at most the record being
// written. It is the persistence layer under internal/runner.
//
// Layout of a store directory:
//
//	manifest.json        format version, shard list, record counts
//	<experiment>.jsonl   one JSON record per line, append-only
//
// Appends are single write(2) calls on O_APPEND descriptors, so
// concurrent appenders never interleave bytes and a crash can only
// truncate the final line. Open detects such a truncated tail (a last
// line that is not a complete JSON record) and cuts the shard back to
// its last good record before any new append, which is what makes
// resuming after a kill safe. The manifest is rewritten atomically
// (temp file + rename) on Sync/Close; Open treats the shards, not the
// manifest, as the source of truth, so a crash between an append and a
// manifest write loses nothing.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FormatVersion guards against reading stores written by an
// incompatible future layout.
const FormatVersion = 1

// maxRecordBytes bounds one JSONL record: Append refuses anything
// larger, and loadShard buffers this much per line, so every record
// the store accepts is guaranteed readable on reopen.
const maxRecordBytes = 64 << 20

// Record is one stored experiment result.
type Record struct {
	// ID is the deterministic point identity (see runner.Point.ID);
	// the store treats it as an opaque unique key.
	ID string `json:"id"`
	// Exp names the experiment; it selects the shard file.
	Exp string `json:"exp"`
	// Key is the human-readable point key within the experiment.
	Key string `json:"key"`
	// Value is the experiment-defined result payload.
	Value json.RawMessage `json:"value"`
}

// Manifest is the metadata file of a store directory.
type Manifest struct {
	Format int             `json:"format"`
	Shards []ShardManifest `json:"shards"`
}

// ShardManifest describes one shard file.
type ShardManifest struct {
	Exp     string `json:"exp"`
	File    string `json:"file"`
	Records int    `json:"records"`
}

// Store is an open store directory. All methods are safe for
// concurrent use.
type Store struct {
	dir string

	mu     sync.Mutex
	index  map[string]Record   // id -> record
	counts map[string]int      // experiment -> record count
	files  map[string]*os.File // experiment -> open shard (O_APPEND)
	// dirty is set by Append; Close only rewrites the manifest when it
	// is, so read-only sessions (merge) work on read-only directories.
	dirty bool
	// recovered counts records dropped from truncated shard tails at
	// Open time (diagnostics for crash-recovery tests and logs).
	recovered int
}

// Open opens (creating if necessary) the store directory, loads every
// shard into the in-memory index, and repairs truncated shard tails.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:    dir,
		index:  make(map[string]Record),
		counts: make(map[string]int),
		files:  make(map[string]*os.File),
	}
	if err := s.checkManifest(); err != nil {
		return nil, err
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := s.loadShard(name); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// checkManifest validates the format version when a manifest exists.
// Shard contents, not the manifest, are the source of truth.
func (s *Store) checkManifest() error {
	data, err := os.ReadFile(filepath.Join(s.dir, "manifest.json"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("store: corrupt manifest: %w", err)
	}
	if m.Format != FormatVersion {
		return fmt.Errorf("store: manifest format %d, this build reads %d", m.Format, FormatVersion)
	}
	return nil
}

// loadShard reads one shard file into the index, truncating the file
// back to the last complete record if the tail is partial (the crash
// signature of a killed appender).
func (s *Store) loadShard(name string) error {
	data, err := os.ReadFile(name)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	good := 0 // byte offset after the last complete, parseable record
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, maxRecordBytes)
	for sc.Scan() {
		line := sc.Bytes()
		end := good + len(line) + 1 // +1 for the newline
		if end > len(data) {
			// Last line had no trailing newline: an interrupted write.
			break
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" {
			// A malformed line mid-file means anything after it is
			// suspect; keep only the prefix.
			break
		}
		s.remember(rec)
		good = end
	}
	if err := sc.Err(); err != nil {
		// A scanner failure (e.g. a line beyond the buffer limit) is not
		// the crash-tail signature; truncating here would delete valid
		// records, so refuse to open instead.
		return fmt.Errorf("store: reading shard %s: %w", name, err)
	}
	if good < len(data) {
		s.recovered++
		if err := os.Truncate(name, int64(good)); err != nil {
			return fmt.Errorf("store: repairing truncated shard %s: %w", name, err)
		}
	}
	return nil
}

// remember indexes one record, last write wins for duplicate IDs.
func (s *Store) remember(rec Record) {
	if _, dup := s.index[rec.ID]; !dup {
		s.counts[rec.Exp]++
	}
	s.index[rec.ID] = rec
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of distinct records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Recovered reports how many shards had a truncated tail repaired at
// Open time.
func (s *Store) Recovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Has reports whether a record with the given ID is stored.
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[id]
	return ok
}

// Get returns the stored record with the given ID.
func (s *Store) Get(id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.index[id]
	return rec, ok
}

// Records returns every stored record in deterministic order
// (experiment, then key, then ID) — the iteration side of Concat and of
// external tooling that post-processes a store.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]Record, 0, len(s.index))
	for _, rec := range s.index {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Exp != recs[j].Exp {
			return recs[i].Exp < recs[j].Exp
		}
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return recs[i].ID < recs[j].ID
	})
	return recs
}

// Concat appends every record of the source store directories into dst
// (created if missing), skipping records dst already holds — the fetch
// step of a sharded run: each machine's -shard i/k store directory is
// copied somewhere local and concatenated into one store, which Merge
// then renders. Records already present in dst (same ID) are skipped,
// so concatenating overlapping or repeated sources is safe. It returns
// the number of records added.
func Concat(dst string, srcs ...string) (int, error) {
	d, err := Open(dst)
	if err != nil {
		return 0, err
	}
	added := 0
	for _, src := range srcs {
		s, err := Open(src)
		if err != nil {
			d.Close()
			return added, err
		}
		for _, rec := range s.Records() {
			if d.Has(rec.ID) {
				continue
			}
			if err := d.Append(rec); err != nil {
				s.Close()
				d.Close()
				return added, err
			}
			added++
		}
		if err := s.Close(); err != nil {
			d.Close()
			return added, err
		}
	}
	return added, d.Close()
}

// Experiments lists the experiments with at least one record, sorted.
func (s *Store) Experiments() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	exps := make([]string, 0, len(s.counts))
	for e := range s.counts {
		exps = append(exps, e)
	}
	sort.Strings(exps)
	return exps
}

// shardFile returns the shard filename of an experiment. Experiment
// names are lowercase [a-z0-9-] by convention; anything else is
// escaped defensively so names can never traverse directories.
func shardFile(exp string) string {
	var b strings.Builder
	for _, r := range exp {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			fmt.Fprintf(&b, "%%%04x", r)
		}
	}
	return b.String() + ".jsonl"
}

// Append durably adds one record: a single O_APPEND write of the
// record's JSON line. Duplicate IDs are rejected (a resume must skip,
// not rewrite).
func (s *Store) Append(rec Record) error {
	if rec.ID == "" || rec.Exp == "" {
		return fmt.Errorf("store: record needs id and exp")
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(line) >= maxRecordBytes {
		// Open's shard reader buffers maxRecordBytes per line; a larger
		// record would be written fine but unreadable afterwards.
		return fmt.Errorf("store: record %s is %d bytes, limit %d", rec.ID, len(line), maxRecordBytes)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.index[rec.ID]; dup {
		return fmt.Errorf("store: duplicate record %s", rec.ID)
	}
	f := s.files[rec.Exp]
	if f == nil {
		f, err = os.OpenFile(filepath.Join(s.dir, shardFile(rec.Exp)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.files[rec.Exp] = f
	}
	if _, err := f.Write(line); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	s.remember(rec)
	s.dirty = true
	return nil
}

// Sync rewrites the manifest atomically from the in-memory counts.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

func (s *Store) writeManifestLocked() error {
	m := Manifest{Format: FormatVersion}
	exps := make([]string, 0, len(s.counts))
	for e := range s.counts {
		exps = append(exps, e)
	}
	sort.Strings(exps)
	for _, e := range exps {
		m.Shards = append(m.Shards, ShardManifest{Exp: e, File: shardFile(e), Records: s.counts[e]})
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(s.dir, ".manifest.tmp")
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "manifest.json")); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close syncs the manifest (only if records were appended this
// session, so a pure read works on a read-only directory) and closes
// every shard descriptor. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.dirty {
		err = s.writeManifestLocked()
		s.dirty = false
	}
	for _, f := range s.files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	s.files = nil
	return err
}
