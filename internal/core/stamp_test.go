package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// Closed pools must be inert: Invalidate/Acquire/Stats after Close, and
// a second Close, are defined no-ops that never touch the recycled
// matrices (Acquire degrades to plain Deviators).
func TestPoolLifecycleAfterClose(t *testing.T) {
	g := UniformGame(10, 1, SUM)
	rng := rand.New(rand.NewSource(9001))
	d := graph.RandomOutDigraph(g.Budgets, rng)
	pool := NewCachePool(g, 0)
	a := pool.Acquire(d, 0)
	a.Release()
	pool.NoteResponse(d, 0, false)
	if !pool.SkipResponse(d, 0) {
		t.Fatal("memo miss before close")
	}
	pool.Close()
	if a.HasCache() {
		t.Fatal("Close did not recycle the pooled matrix")
	}
	pool.Close() // double Close: no-op, must not double-recycle
	pool.Invalidate()
	b := pool.Acquire(d, 0)
	if b == a {
		t.Fatal("Acquire after Close resurrected a recycled entry")
	}
	if b.HasCache() {
		t.Fatal("Acquire after Close pooled a matrix")
	}
	plain := NewDeviator(g, d, 0)
	s := randomStrategy(10, 0, 1, rng)
	if b.Eval(s) != plain.Eval(s) {
		t.Fatal("post-Close Deviator evaluates wrong")
	}
	b.Release()
	if pool.SkipResponse(d, 0) {
		t.Fatal("response memo survived Close")
	}
	pool.NoteResponse(d, 0, false) // must not re-grow state on a closed pool
	if pool.SkipResponse(d, 0) {
		t.Fatal("NoteResponse after Close recorded a memo")
	}
	if w := pool.Prefetch(d, 0); w != nil {
		t.Fatal("Prefetch after Close returned a handle")
	}
	st := pool.Stats()
	if st.Acquires != 2 || st.Fills != 1 || st.Unpooled != 1 {
		t.Fatalf("stats after close = %+v, want 2 acquires, 1 fill, 1 unpooled", st)
	}
	// Nil pool: every method is a no-op.
	var nilPool *CachePool
	nilPool.Invalidate()
	nilPool.Close()
	nilPool.ResetResponseMemo()
	if nilPool.SkipResponse(d, 0) || nilPool.Prefetch(d, 0) != nil {
		t.Fatal("nil pool not inert")
	}
	_ = nilPool.Stats()
}

// Stamp-skip and forced-diff acquisition must produce bit-identical
// Deviator state — distance rows, inMin fold, colMin floor, SUM memo,
// stability streak — and identical best responses, across all 8
// generator families under random rewire / no-op / over-invalidation
// interleavings.
func TestPropertyStampSkipMatchesForcedDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(9002))
	for _, inst := range generatorCorpus(rng) {
		for _, version := range []Version{SUM, MAX} {
			g := GameOf(inst.d, version)
			n := g.N()
			d := inst.d.Clone()
			d.StartJournal(0) // unbounded: every delta is journal-covered
			t.Setenv("BBNCG_STAMPS", "0")
			diffPool := NewCachePool(g, 0)
			t.Setenv("BBNCG_STAMPS", "1")
			stampPool := NewCachePool(g, 0)
			for step := 0; step < 10; step++ {
				switch rng.Intn(4) {
				case 0: // settled round: nothing moves
				case 1: // no-op rewire: SetOut to the identical set
					u := rng.Intn(n)
					d.SetOut(u, d.Out(u))
				default:
					for i := 0; i <= rng.Intn(2); i++ {
						mutateRandomPlayer(g, d, rng)
					}
				}
				// Over-invalidation: both pools go stale even on no-op steps.
				stampPool.Invalidate()
				diffPool.Invalidate()
				for k := 0; k < 3; k++ {
					u := rng.Intn(n)
					ds := stampPool.Acquire(d, u)
					dd := diffPool.Acquire(d, u)
					var brS, brD BestResponse
					if g.Budgets[u] > 0 {
						brS = GreedyDeviatorResponder(g, d, ds)
						brD = GreedyDeviatorResponder(g, d, dd)
					}
					ds.Release()
					dd.Release()
					if brS.Cost != brD.Cost || brS.Current != brD.Current ||
						brS.Explored != brD.Explored || !equalInts(brS.Strategy, brD.Strategy) {
						t.Fatalf("%s %v u=%d step=%d: stamped %+v, diffed %+v",
							inst.name, version, u, step, brS, brD)
					}
					if !reflect.DeepEqual(ds.rows, dd.rows) {
						t.Fatalf("%s %v u=%d step=%d: rows diverged", inst.name, version, u, step)
					}
					if !reflect.DeepEqual(ds.inMin, dd.inMin) {
						t.Fatalf("%s %v u=%d step=%d: inMin diverged", inst.name, version, u, step)
					}
					if !reflect.DeepEqual(ds.colMin, dd.colMin) {
						t.Fatalf("%s %v u=%d step=%d: colMin diverged", inst.name, version, u, step)
					}
					if !reflect.DeepEqual(ds.memo, dd.memo) {
						t.Fatalf("%s %v u=%d step=%d: SUM memo diverged", inst.name, version, u, step)
					}
					if ds.stable != dd.stable || ds.sumSufInOK != dd.sumSufInOK {
						t.Fatalf("%s %v u=%d step=%d: stability state diverged (stable %d/%d, sufInOK %v/%v)",
							inst.name, version, u, step, ds.stable, dd.stable, ds.sumSufInOK, dd.sumSufInOK)
					}
					if rem, add := graph.DiffUnd(ds.base, dd.base, -1); len(rem)+len(add) != 0 {
						t.Fatalf("%s %v u=%d step=%d: base adjacency diverged (-%v +%v)",
							inst.name, version, u, step, rem, add)
					}
				}
			}
			// The stamped pool must actually have exercised the fast paths.
			st := stampPool.Stats()
			if st.StampSkips == 0 {
				t.Fatalf("%s %v: stamped pool never stamp-skipped (stats %+v)", inst.name, version, st)
			}
			if dst := diffPool.Stats(); dst.StampSkips != 0 || dst.DeltaRepairs != 0 {
				t.Fatalf("%s %v: forced-diff pool used stamps (stats %+v)", inst.name, version, dst)
			}
			stampPool.Close()
			diffPool.Close()
		}
	}
}
