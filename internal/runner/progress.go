package runner

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/fault"
)

// Progress reporting for long sweeps: the evaluation fan-out counts
// completed points and, throttled to progressInterval, writes one line
// with the completion fraction and an ETA extrapolated linearly from
// the elapsed wall time. Indirections over the clock and interval keep
// the output deterministic under test.

var (
	timeNow          = time.Now
	progressInterval = time.Second
)

// progressMeter is the shared completion counter of one Run. Totals
// cover the whole in-shard point list, so a resumed run reports "18/20
// (90%)" rather than the fraction of the remainder; the ETA is
// extrapolated from this run's evaluation rate only (points served
// from the store cost nothing and must not deflate it). A nil writer
// yields a no-op meter so the hot path stays branch-cheap.
type progressMeter struct {
	w     io.Writer
	exp   string
	base  int // points already in the store at run start
	total int // base + points this run must evaluate

	mu    sync.Mutex
	done  int // points evaluated by this run
	start time.Time
	last  time.Time
}

func newProgressMeter(w io.Writer, exp string, stored, missing int) *progressMeter {
	if w == nil || missing == 0 {
		return nil
	}
	now := timeNow()
	return &progressMeter{w: w, exp: exp, base: stored, total: stored + missing, start: now, last: now}
}

// step records one completed point, emitting a progress line when the
// throttle allows it (and always on the final point).
func (m *progressMeter) step() {
	if m == nil {
		return
	}
	// Progress is advisory, so an injected error is ignored; the site's
	// crash mode still kills here, which lets the crash suite die in the
	// window between a point's append and the next evaluation.
	_ = fault.Hit(siteProgress)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done++
	at := m.base + m.done
	now := timeNow()
	if at < m.total && now.Sub(m.last) < progressInterval {
		return
	}
	m.last = now
	eta := now.Sub(m.start) / time.Duration(m.done) * time.Duration(m.total-at)
	fmt.Fprintf(m.w, "runner: %s %d/%d point(s) (%d%%), eta %s\n",
		m.exp, at, m.total, 100*at/m.total, eta.Round(time.Second))
}
