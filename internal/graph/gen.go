package graph

import (
	"fmt"
	"math/rand"
)

// Deterministic generators for workloads. Every random generator takes an
// explicit *rand.Rand so experiments are reproducible from a seed.

// PathGraph returns the directed path 0 -> 1 -> ... -> n-1 (each vertex i
// owns the arc to i+1).
func PathGraph(n int) *Digraph {
	g := NewDigraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddArc(i, i+1)
	}
	return g
}

// CycleGraph returns the directed cycle 0 -> 1 -> ... -> n-1 -> 0.
// n must be at least 2 (a 2-cycle is a brace).
func CycleGraph(n int) *Digraph {
	if n < 2 {
		panic("graph: cycle needs >= 2 vertices")
	}
	g := NewDigraph(n)
	for i := 0; i < n; i++ {
		g.AddArc(i, (i+1)%n)
	}
	return g
}

// StarGraph returns the star in which the centre (vertex 0) owns arcs to
// every other vertex.
func StarGraph(n int) *Digraph {
	g := NewDigraph(n)
	for i := 1; i < n; i++ {
		g.AddArc(0, i)
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n vertices via a
// random Prüfer-like attachment: vertex i (i >= 1) owns an arc to a
// uniformly random earlier vertex. This yields a random recursive tree,
// which is sufficient workload diversity for dynamics starting points.
func RandomTree(n int, rng *rand.Rand) *Digraph {
	g := NewDigraph(n)
	for i := 1; i < n; i++ {
		g.AddArc(i, rng.Intn(i))
	}
	return g
}

// RandomOutDigraph returns a digraph in which vertex i owns arcs to
// budgets[i] distinct targets chosen uniformly without replacement.
// budgets[i] must be < n.
func RandomOutDigraph(budgets []int, rng *rand.Rand) *Digraph {
	n := len(budgets)
	g := NewDigraph(n)
	perm := make([]int, 0, n-1)
	for u, b := range budgets {
		if b >= n {
			panic(fmt.Sprintf("graph: budget %d of vertex %d exceeds n-1=%d", b, u, n-1))
		}
		perm = perm[:0]
		for v := 0; v < n; v++ {
			if v != u {
				perm = append(perm, v)
			}
		}
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		g.SetOut(u, perm[:b])
	}
	return g
}

// GridGraph returns the rows x cols grid; each vertex owns arcs to its
// right and down neighbours. Useful as a non-equilibrium baseline whose
// diameter is rows+cols-2.
func GridGraph(rows, cols int) *Digraph {
	g := NewDigraph(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddArc(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddArc(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// CompleteDigraph returns the digraph where every vertex owns arcs to all
// higher-numbered vertices (underlying graph K_n without braces).
func CompleteDigraph(n int) *Digraph {
	g := NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddArc(u, v)
		}
	}
	return g
}

// FromUndirected orients an undirected edge list into a Digraph, assigning
// each edge {u,v} to be owned by min(u,v). Edges must not repeat.
func FromUndirected(n int, edges [][2]int) *Digraph {
	g := NewDigraph(n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		g.AddArc(u, v)
	}
	return g
}
