package graph

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestBridgesOnTree(t *testing.T) {
	// Every edge of a tree is a bridge.
	d := RandomTree(10, rand.New(rand.NewSource(2)))
	a := d.Underlying()
	bridges := Bridges(a)
	if len(bridges) != a.EdgeCount() {
		t.Fatalf("tree has %d bridges, want %d", len(bridges), a.EdgeCount())
	}
}

func TestBridgesOnCycle(t *testing.T) {
	if got := Bridges(CycleGraph(6).Underlying()); len(got) != 0 {
		t.Fatalf("cycle has %d bridges, want 0", len(got))
	}
}

func TestBridgesLollipop(t *testing.T) {
	// Triangle 0-1-2 plus path 2-3-4: bridges are {2,3} and {3,4}.
	d := FromUndirected(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}})
	bridges := Bridges(d.Underlying())
	sort.Slice(bridges, func(i, j int) bool { return bridges[i][0] < bridges[j][0] })
	if len(bridges) != 2 || bridges[0] != [2]int{2, 3} || bridges[1] != [2]int{3, 4} {
		t.Fatalf("bridges = %v", bridges)
	}
}

func TestArticulationPoints(t *testing.T) {
	// Same lollipop: cut vertices 2 and 3.
	d := FromUndirected(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}})
	cuts := ArticulationPoints(d.Underlying())
	if len(cuts) != 2 || cuts[0] != 2 || cuts[1] != 3 {
		t.Fatalf("articulation points = %v, want [2 3]", cuts)
	}
	if got := ArticulationPoints(CycleGraph(5).Underlying()); len(got) != 0 {
		t.Fatalf("cycle has cut vertices %v", got)
	}
	if got := ArticulationPoints(StarGraph(5).Underlying()); len(got) != 1 || got[0] != 0 {
		t.Fatalf("star cut vertices = %v, want [0]", got)
	}
}

// Property: v is an articulation point iff deleting it increases the
// component count; {u,v} is a bridge iff deleting the edge does.
func TestStructureAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		d := RandomTree(n, rng)
		for e := 0; e < rng.Intn(4); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !d.Underlying().HasEdge(u, v) {
				d.AddArc(u, v)
			}
		}
		a := d.Underlying()
		_, base := Components(a)

		cutSet := map[int]bool{}
		for _, v := range ArticulationPoints(a) {
			cutSet[v] = true
		}
		for v := 0; v < n; v++ {
			_, after := ComponentsExcluding(a, v)
			// Deleting v removes it; compare against base adjusted for
			// isolated-vertex bookkeeping: v was in one component, so
			// the remainder splits iff after > base - (1 if v was
			// isolated... v isolated means degree 0).
			want := after > base-boolToInt(a.Degree(v) == 0)
			if a.Degree(v) == 0 {
				want = false
			}
			if cutSet[v] != want {
				return false
			}
		}
		bridgeSet := map[[2]int]bool{}
		for _, e := range Bridges(a) {
			bridgeSet[e] = true
		}
		for u := 0; u < n; u++ {
			for _, v := range a[u] {
				if v < u {
					continue
				}
				// Remove edge {u,v} and recount.
				b := a.Clone()
				b[u] = removeVal(b[u], v)
				b[v] = removeVal(b[v], u)
				_, after := Components(b)
				if bridgeSet[[2]int{u, v}] != (after > base) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func removeVal(s []int, v int) []int {
	out := s[:0:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram(StarGraph(5).Underlying())
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestWriteDOT(t *testing.T) {
	d := NewDigraph(3)
	d.AddArc(0, 1)
	d.AddArc(1, 0)
	d.AddArc(1, 2)
	var sb strings.Builder
	if err := d.WriteDOT(&sb, DOTOptions{Name: "demo", Highlight: []int{2}}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "digraph demo {") {
		t.Fatal("missing header")
	}
	if !strings.Contains(out, "dir=both") {
		t.Fatal("brace not rendered double-headed")
	}
	if strings.Count(out, "->") != 2 { // brace renders once + 1 plain arc
		t.Fatalf("unexpected edge lines:\n%s", out)
	}
	if !strings.Contains(out, "fillcolor=lightblue") {
		t.Fatal("highlight missing")
	}
}

func TestWriteDOTLabels(t *testing.T) {
	d := PathGraph(2)
	var sb strings.Builder
	if err := d.WriteDOT(&sb, DOTOptions{Labels: []string{"alpha", "beta"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"alpha"`) || !strings.Contains(sb.String(), `"beta"`) {
		t.Fatalf("labels missing:\n%s", sb.String())
	}
}
