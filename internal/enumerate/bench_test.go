package enumerate

import (
	"testing"

	"repro/internal/core"
)

func BenchmarkAllUnit4(b *testing.B) {
	g := core.UniformGame(4, 1, core.SUM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := All(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllUnit5(b *testing.B) {
	g := core.UniformGame(5, 1, core.MAX)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := All(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImprovementGraphUnit4(b *testing.B) {
	g := core.UniformGame(4, 1, core.SUM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BestResponseImprovementGraph(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImprovementGraphUnit5(b *testing.B) {
	g := core.UniformGame(5, 1, core.SUM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BestResponseImprovementGraph(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}
