package core

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/graph"
)

// Best-response computation. Theorem 2.1 proves finding a best response is
// NP-hard in both versions (reductions from k-center and k-median), so the
// exact solver enumerates all C(n-1, b) strategies — exponential in the
// budget — while greedy and single-swap responders provide the polynomial
// heuristics used to drive large dynamics runs. All three responders run
// on the distance-cache deviation engine (distcache.go) when it fits
// DefaultCacheBudget, and fall back to per-candidate BFS otherwise; both
// paths produce identical results.

// BestResponse is the outcome of a best-response computation.
type BestResponse struct {
	Strategy []int // a cost-minimising strategy (sorted)
	Cost     int64 // its cost
	Current  int64 // cost of the strategy currently played in the graph
	Explored int64 // number of candidate strategies evaluated
}

// Improves reports whether the found strategy strictly beats the current one.
func (br BestResponse) Improves() bool { return br.Cost < br.Current }

// StrategySpaceSize returns C(n-1, b), the number of strategies of a
// player with budget b in an n-player game, saturating at math.MaxInt64.
func StrategySpaceSize(n, b int) int64 {
	if b < 0 || b > n-1 {
		return 0
	}
	if b > (n-1)/2 {
		b = n - 1 - b
	}
	res := uint64(1)
	for i := 1; i <= b; i++ {
		// res * (n-1-b+i) / i is exactly C(n-1-b+i, i) at every step, so
		// the division is always integral; the product is carried in 128
		// bits because it can transiently exceed 64 bits even when the
		// final coefficient fits.
		f := uint64(n - 1 - b + i)
		hi, lo := bits.Mul64(res, f)
		if hi >= uint64(i) {
			return math.MaxInt64 // quotient would not fit in 64 bits
		}
		q, _ := bits.Div64(hi, lo, uint64(i))
		if q > math.MaxInt64 {
			return math.MaxInt64
		}
		res = q
	}
	return int64(res)
}

// GreedyBestResponse builds a strategy for u by b rounds of marginal-cost
// minimisation: each round adds the target whose addition yields the
// lowest cost given the targets chosen so far. This is the classic greedy
// for the k-median/k-center flavoured subproblem; it is not optimal
// (Theorem 2.1 forbids that in polynomial time unless P=NP) but is a
// strong responder for dynamics at scale. Ties break toward lower vertex
// ids for determinism.
//
// With the distance cache the greedy is incremental: a running min-vector
// over the chosen anchors makes each candidate's marginal cost one fused
// O(n) min+sum pass, so a full greedy run costs the parallel cache fill
// plus O(n·b·n) merges instead of O(n·b) BFS traversals.
func (g *Game) GreedyBestResponse(d *graph.Digraph, u int) BestResponse {
	dv := NewDeviator(g, d, u)
	defer dv.release()
	dv.EnsureCache(DefaultCacheBudget)
	return g.greedyOn(dv, d)
}

// greedyOn runs the greedy rounds on a prepared Deviator (cached or
// not; possibly pooled). All paths produce identical responses.
func (g *Game) greedyOn(dv *Deviator, d *graph.Digraph) BestResponse {
	u := dv.u
	cur := append([]int(nil), d.Out(u)...)
	res := BestResponse{Current: dv.Eval(cur)}

	b := g.Budgets[u]
	var chosen []int
	switch {
	case dv.useLevels():
		chosen = greedyLevels(dv, b, &res)
	case dv.HasCache():
		chosen = greedyCached(dv, b, cur, &res)
	default:
		chosen = greedyBFS(dv, b, &res)
	}
	res.Strategy = chosen
	res.Cost = dv.Eval(chosen)
	if res.Cost >= res.Current {
		// Greedy found nothing better; keep the current strategy so that
		// greedy dynamics are monotone and terminate at greedy-stable
		// profiles.
		res.Strategy = cur
		res.Cost = res.Current
	}
	return res
}

// eccResult converts a level-union covering radius and covered count
// into the BFS aggregates the MAX cost consumes, mirroring maxKernel:
// anchor distances are one hop from the source, and an anchorless
// source is isolated (eccentricity 0, itself reached).
func eccResult(k int32, covered int) graph.BFSResult {
	r := graph.BFSResult{Ecc: k + 1, Reached: covered + 1}
	if covered == 0 {
		r.Ecc = 0
	}
	return r
}

// greedyLevels is the MAX-version greedy on the bitset eccentricity
// kernel: the running state is the level-set union of the chosen
// anchors, and each candidate costs O(log(diam) · n/64) words instead
// of an n-entry row scan.
func greedyLevels(dv *Deviator, b int, res *BestResponse) []int {
	dv.ensureLevels()
	n := dv.game.N()
	lu := graph.NewLevelUnion(n)
	lu.CopyFrom(dv.inLv)
	reach := dv.newTouched()
	chosen := make([]int, 0, b)
	inChosen := make([]bool, n)
	for round := 0; round < b; round++ {
		bestV, bestC := -1, int64(math.MaxInt64)
		for v := 0; v < n; v++ {
			if v == dv.u || inChosen[v] {
				continue
			}
			res.Explored++
			k, cov := lu.AggregateWith(dv.lc, v)
			if c := dv.costOf(eccResult(k, cov), reach.with(v)); c < bestC {
				bestC = c
				bestV = v
			}
		}
		if bestV < 0 {
			// Degenerate budget (b >= n-1): every target is already
			// chosen, so the full target set is the strategy.
			break
		}
		chosen = append(chosen, bestV)
		inChosen[bestV] = true
		reach.mark(bestV)
		lu.Merge(dv.lc, bestV)
	}
	return chosen
}

// greedyCached runs the marginal-cost rounds on the distance cache,
// keeping the running min-vector of the chosen anchor set. cur (the
// currently played targets) seeds the SUM pruning budget.
func greedyCached(dv *Deviator, b int, cur []int, res *BestResponse) []int {
	n := dv.game.N()
	vec := getInt32(n)
	defer putInt32(vec)
	copy(vec, dv.inMin)
	reach := dv.newTouched()
	chosen := make([]int, 0, b)
	inChosen := make([]bool, n)
	prune := dv.sumPruneScan()
	var memo *sumMemo
	if prune {
		// Pool-owned Deviators persist across movers and rounds, so their
		// candidate costs are worth remembering: Repair keeps the memo
		// exact (see sumkernel.go), and a settled scan is then mostly
		// memo reads.
		if dv.memo == nil || len(dv.memo.rounds) != b {
			dv.memo = newSumMemo(b, n)
		}
		memo = dv.memo
	}
	for round := 0; round < b; round++ {
		bestV, bestC := -1, int64(math.MaxInt64)
		if prune {
			// SUM pruning round: memoised candidates cost one read; the
			// rest run the bounded kernel against the running incumbent.
			// The budget is seeded with the currently played targets —
			// near convergence they are (close to) optimal, so even the
			// first candidates scan against a tight bound. Pruned
			// candidates are certified strictly worse than an evaluated
			// one, so the winner and the lowest-id tie break are identical
			// to the unpruned scan, and Explored still counts them.
			var mr *sumMemoRound
			if memo != nil {
				mr = &memo.rounds[round]
			}
			filled := false
			eval := func(v int, budget int64) (int64, bool) {
				if mr != nil {
					switch c := mr.costs[v]; {
					case c >= 0:
						return c, false
					case c != memoStale && memoBoundOf(c) >= budget:
						// Certified cost > stored bound >= budget: re-prune
						// without touching the row.
						return 0, true
					}
				}
				if !filled {
					dv.fillSumBounds(vec)
					filled = true
				}
				c, p := dv.sumEvalBounded(vec, v, dv.sufFor(vec, v), budget)
				if mr != nil {
					if p {
						mr.costs[v] = memoBound(budget)
					} else {
						mr.costs[v] = c
					}
				}
				return c, p
			}
			budget := int64(math.MaxInt64)
			for _, v := range cur {
				if v == dv.u || v < 0 || v >= n || inChosen[v] {
					continue
				}
				if c, p := eval(v, budget); !p && c < budget {
					budget = c
				}
			}
			for v := 0; v < n; v++ {
				if v == dv.u || inChosen[v] {
					continue
				}
				res.Explored++
				c, p := eval(v, budget)
				if p {
					continue
				}
				if c < bestC {
					bestC = c
					bestV = v
				}
				if c < budget {
					budget = c
				}
			}
			if mr != nil && mr.chosen != bestV {
				// A different winner invalidates every later round's
				// running-min vector.
				memo.clearFrom(round + 1)
				mr.chosen = bestV
			}
		} else {
			for v := 0; v < n; v++ {
				if v == dv.u || inChosen[v] {
					continue
				}
				res.Explored++
				if c := dv.costOf(dv.aggregate(vec, v), reach.with(v)); c < bestC {
					bestC = c
					bestV = v
				}
			}
		}
		if bestV < 0 {
			// Degenerate budget (b >= n-1): every target is already
			// chosen, so the full target set is the strategy.
			break
		}
		chosen = append(chosen, bestV)
		inChosen[bestV] = true
		reach.mark(bestV)
		dv.mergeRow(vec, bestV)
	}
	return chosen
}

// greedyBFS is the cache-less fallback: one BFS per candidate.
func greedyBFS(dv *Deviator, b int, res *BestResponse) []int {
	n := dv.game.N()
	chosen := make([]int, 0, b)
	inChosen := make([]bool, n)
	for round := 0; round < b; round++ {
		bestV, bestC := -1, int64(math.MaxInt64)
		for v := 0; v < n; v++ {
			if v == dv.u || inChosen[v] {
				continue
			}
			res.Explored++
			if c := dv.Eval(append(chosen, v)); c < bestC {
				bestC = c
				bestV = v
			}
		}
		if bestV < 0 {
			// Degenerate budget (b >= n-1): every target is already
			// chosen, so the full target set is the strategy.
			break
		}
		chosen = append(chosen, bestV)
		inChosen[bestV] = true
	}
	return chosen
}

// BestSwap finds the best single-arc swap for u: replace one owned arc
// u->v with u->w (w neither u nor an existing target). This mirrors the
// "swap equilibrium" relaxation of Alon et al. adopted in Section 6's weak
// equilibria, and is the cheapest responder for dynamics. Returns the
// strategy after the best improving swap; if no swap improves, Strategy is
// the current one.
//
// With the distance cache each arc slot builds a leave-one-out min-vector
// once, after which every replacement target costs one O(n) pass.
func (g *Game) BestSwap(d *graph.Digraph, u int) BestResponse {
	dv := NewDeviator(g, d, u)
	defer dv.release()
	dv.EnsureCache(DefaultCacheBudget)
	return g.swapOn(dv, d)
}

// swapOn runs the swap scan on a prepared Deviator (cached or not;
// possibly pooled). All paths produce identical responses.
func (g *Game) swapOn(dv *Deviator, d *graph.Digraph) BestResponse {
	n := g.N()
	u := dv.u
	cur := append([]int(nil), d.Out(u)...)
	res := BestResponse{Strategy: cur, Current: dv.Eval(cur)}
	res.Cost = res.Current

	have := make([]bool, n)
	for _, v := range cur {
		have[v] = true
	}
	trial := make([]int, len(cur))
	if dv.useLevels() {
		// Bitset eccentricity kernel: each arc slot builds a leave-one-out
		// level union once, then every replacement target is one
		// O(log(diam) · n/64) probe.
		dv.ensureLevels()
		lu := graph.NewLevelUnion(n)
		reach := dv.newTouched()
		for i := range cur {
			copy(trial, cur)
			lu.CopyFrom(dv.inLv)
			if i > 0 {
				reach.reset()
			}
			for j, v := range cur {
				if j != i {
					lu.Merge(dv.lc, v)
					reach.mark(v)
				}
			}
			for w := 0; w < n; w++ {
				if w == u || have[w] {
					continue
				}
				trial[i] = w
				res.Explored++
				k, cov := lu.AggregateWith(dv.lc, w)
				if c := dv.costOf(eccResult(k, cov), reach.with(w)); c < res.Cost {
					res.Cost = c
					res.Strategy = append([]int(nil), trial...)
				}
			}
		}
		return res
	}
	if dv.sumPruneScan() {
		// SUM pruning scan: the leave-one-out min-vector of each arc slot
		// gets its own suffix bound, and every replacement target runs the
		// bounded kernel against the incumbent best (already tight from
		// the start: res.Cost is the currently played cost). SUM ignores
		// the component count, so no touched tracker is needed.
		vec := getInt32(n)
		defer putInt32(vec)
		for i := range cur {
			copy(trial, cur)
			copy(vec, dv.inMin)
			for j, v := range cur {
				if j != i {
					dv.mergeRow(vec, v)
				}
			}
			dv.fillSumBounds(vec)
			for w := 0; w < n; w++ {
				if w == u || have[w] {
					continue
				}
				trial[i] = w
				res.Explored++
				c, pruned := dv.sumEvalBounded(vec, w, dv.sufFor(vec, w), res.Cost)
				if pruned {
					continue
				}
				if c < res.Cost {
					res.Cost = c
					res.Strategy = append([]int(nil), trial...)
				}
			}
		}
		return res
	}
	if dv.HasCache() {
		vec := getInt32(n)
		defer putInt32(vec)
		reach := dv.newTouched()
		for i := range cur {
			copy(trial, cur)
			// Leave-one-out anchors: in(u) and every kept arc.
			copy(vec, dv.inMin)
			if i > 0 {
				reach.reset()
			}
			for j, v := range cur {
				if j != i {
					dv.mergeRow(vec, v)
					reach.mark(v)
				}
			}
			for w := 0; w < n; w++ {
				if w == u || have[w] {
					continue
				}
				trial[i] = w
				res.Explored++
				if c := dv.costOf(dv.aggregate(vec, w), reach.with(w)); c < res.Cost {
					res.Cost = c
					res.Strategy = append([]int(nil), trial...)
				}
			}
		}
		return res
	}
	for i := range cur {
		copy(trial, cur)
		for w := 0; w < n; w++ {
			if w == u || have[w] {
				continue
			}
			trial[i] = w
			res.Explored++
			if c := dv.Eval(trial); c < res.Cost {
				res.Cost = c
				res.Strategy = append([]int(nil), trial...)
			}
		}
	}
	return res
}

// Responder computes a (possibly heuristic) response for a player; the
// dynamics engine is parameterised over this type. The built-in responders
// are safe for concurrent invocation on distinct players against a fixed
// graph, which is what dynamics.Options.Parallel relies on.
type Responder func(g *Game, d *graph.Digraph, u int) BestResponse

// DeviatorResponder is the pooled form of a Responder: it evaluates on a
// Deviator prepared by the caller — in the dynamics engines, a
// CachePool-owned Deviator whose distance cache survives (repaired, not
// refilled) across movers and rounds. A DeviatorResponder must compute
// exactly the response its plain counterpart computes; every built-in
// pair here does, which the equivalence suites pin.
type DeviatorResponder func(g *Game, d *graph.Digraph, dv *Deviator) BestResponse

// ExactResponder enumerates the full strategy space (panics if it exceeds
// maxCandidates; use in controlled sweeps only).
func ExactResponder(maxCandidates int64) Responder {
	return func(g *Game, d *graph.Digraph, u int) BestResponse {
		br, err := g.ExactBestResponse(d, u, maxCandidates)
		if err != nil {
			panic(err)
		}
		return br
	}
}

// GreedyResponder is the marginal-cost greedy heuristic.
func GreedyResponder(g *Game, d *graph.Digraph, u int) BestResponse {
	return g.GreedyBestResponse(d, u)
}

// SwapResponder performs the best single-arc swap.
func SwapResponder(g *Game, d *graph.Digraph, u int) BestResponse {
	return g.BestSwap(d, u)
}

// ExactDeviatorResponder is the pooled counterpart of ExactResponder.
func ExactDeviatorResponder(maxCandidates int64) DeviatorResponder {
	return func(g *Game, d *graph.Digraph, dv *Deviator) BestResponse {
		n, b := g.N(), g.Budgets[dv.u]
		space := StrategySpaceSize(n, b)
		if maxCandidates > 0 && space > maxCandidates {
			panic(fmt.Errorf("core: strategy space C(%d,%d) = %d exceeds budget %d candidates",
				n-1, b, space, maxCandidates))
		}
		if !dv.HasCache() && space >= int64(n) {
			dv.EnsureCache(DefaultCacheBudget)
		}
		return g.exactOn(dv, d)
	}
}

// GreedyDeviatorResponder is the pooled counterpart of GreedyResponder.
func GreedyDeviatorResponder(g *Game, d *graph.Digraph, dv *Deviator) BestResponse {
	if !dv.HasCache() {
		dv.EnsureCache(DefaultCacheBudget)
	}
	return g.greedyOn(dv, d)
}

// SwapDeviatorResponder is the pooled counterpart of SwapResponder.
func SwapDeviatorResponder(g *Game, d *graph.Digraph, dv *Deviator) BestResponse {
	if !dv.HasCache() {
		dv.EnsureCache(DefaultCacheBudget)
	}
	return g.swapOn(dv, d)
}
