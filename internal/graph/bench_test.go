package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n int) *Digraph {
	rng := rand.New(rand.NewSource(1))
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = 2
	}
	return RandomOutDigraph(budgets, rng)
}

func BenchmarkBFS(b *testing.B) {
	a := benchGraph(1024).Underlying()
	s := NewScratch(len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BFS(a, i%len(a))
	}
}

func BenchmarkDeviationBFS(b *testing.B) {
	g := benchGraph(1024)
	base := g.UnderlyingWithout(0)
	in := g.In(0)
	s := NewScratch(g.N())
	strategy := []int{100, 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.DeviationBFS(base, 0, strategy, in)
	}
}

func BenchmarkUnderlying(b *testing.B) {
	g := benchGraph(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Underlying()
	}
}

func BenchmarkDiameter(b *testing.B) {
	a := benchGraph(512).Underlying()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Diameter(a)
	}
}

func BenchmarkAllPairs(b *testing.B) {
	a := benchGraph(256).Underlying()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllPairs(a)
	}
}

func BenchmarkComponents(b *testing.B) {
	a := benchGraph(1024).Underlying()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Components(a)
	}
}

func BenchmarkVertexConnectivity(b *testing.B) {
	// 3-cube-of-cliques style: cycle with chords, n=64.
	d := CycleGraph(64)
	for v := 0; v < 64; v += 4 {
		d.AddArc(v, (v+32)%64)
	}
	a := d.Underlying()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VertexConnectivity(a)
	}
}

func BenchmarkBridges(b *testing.B) {
	a := benchGraph(1024).Underlying()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bridges(a)
	}
}
