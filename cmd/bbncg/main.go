// Command bbncg regenerates every table and figure of "On a Bounded
// Budget Network Creation Game" (SPAA 2011) from the library's exact
// simulators. Each subcommand corresponds to one evaluation artifact;
// `bbncg all` reproduces everything.
//
// Usage:
//
//	bbncg [-full] [-csv] [-seed N] [-out DIR [-resume]] <command>
//	bbncg -out DIR merge <command>
//
// Commands:
//
//	table1   all four rows of Table 1 (both MAX and SUM columns)
//	fig1     the Figure 1 existence construction (n=22)
//	fig2     the Figure 2 spider (MAX tree equilibrium, diameter Theta(n))
//	fig3     the Figure 3 subtree-weight audit (SUM trees, Theta(log n))
//	unit     the all-unit-budgets dynamics sweep (Theorems 4.1/4.2)
//	shift    the shift-graph lower bound (Lemma 5.2 / Theorem 5.3)
//	sumupper the SUM upper-bound sweep (Theorem 6.9)
//	exist    Theorem 2.3 existence + price-of-stability sweep
//	nphard   Theorem 2.1 best-response <-> k-center/k-median cross-check
//	conn     Theorem 7.2 connectivity dichotomy sweep
//	dyn      Section 8 convergence statistics
//	all      everything above in paper order
//
// With -out DIR, sweep results stream point-by-point into a durable
// store (one JSONL shard per experiment, see internal/store); a run
// killed mid-sweep is resumed with -resume, which re-evaluates only the
// missing points and renders output byte-identical to an uninterrupted
// run. `merge` renders a command's tables purely from a store, without
// evaluating anything — the read side of sweeps sharded across
// machines. See docs/RUNNER.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/store"
	"repro/internal/sweep"
)

func main() {
	full := flag.Bool("full", false, "run the full sweep ranges from EXPERIMENTS.md (slower)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := flag.Int64("seed", 1, "seed for randomized sweeps")
	out := flag.String("out", "", "stream sweep results into a checkpoint store at this directory")
	resume := flag.Bool("resume", false, "continue an existing store: skip already-evaluated points")
	flag.Usage = usage
	flag.Parse()
	effort := experiments.Quick
	if *full {
		effort = experiments.Full
	}
	app := &app{out: os.Stdout, effort: effort, csv: *csv, seed: *seed}

	cmd := flag.Arg(0)
	want := 1
	if cmd == "merge" {
		app.merge = true
		cmd = flag.Arg(1)
		want = 2
	}
	if flag.NArg() != want || cmd == "" {
		usage()
		os.Exit(2)
	}
	if app.merge && *out == "" {
		fatal(fmt.Errorf("merge needs -out DIR to read from"))
	}
	if *resume && *out == "" {
		fatal(fmt.Errorf("-resume needs -out DIR (there is no default store)"))
	}
	// -out only means something for commands with sweep specs behind
	// them; accepting it on fig1 etc. would apply the fresh-store guard
	// and print a summary for a store the command never touches.
	_, storeBacked := specCommands[cmd]
	storeBacked = storeBacked || cmd == "all"
	if *out != "" && !storeBacked {
		fatal(fmt.Errorf("command %q is not store-backed; -out supports: table1 unit shift sumupper exist nphard conn dyn all", cmd))
	}
	if *out != "" {
		st, err := store.Open(*out)
		if err != nil {
			fatal(err)
		}
		if !app.merge && !*resume && st.Len() > 0 {
			st.Close()
			fatal(fmt.Errorf("store %s already holds %d result(s); pass -resume to continue it", *out, st.Len()))
		}
		app.st = st
	}
	err := app.run(cmd)
	if app.st != nil {
		if cerr := app.st.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			fmt.Fprintf(os.Stderr, "runner: %d point(s) evaluated, %d served from %s\n",
				app.evaluated, app.skipped, *out)
		}
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bbncg: %v\n", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: bbncg [-full] [-csv] [-seed N] [-out DIR [-resume]] <command>
       bbncg -out DIR merge <command>

commands:
  table1    reproduce Table 1 (all rows, both versions)
  fig1      Figure 1: Theorem 2.3 case-2 equilibrium (n=22)
  fig2      Figure 2: spider MAX tree equilibrium
  fig3      Figure 3: subtree weights along a longest path
  unit      all-unit-budget dynamics (Theorems 4.1/4.2)
  shift     shift-graph lower bound (Lemma 5.2/Theorem 5.3)
  sumupper  SUM diameter upper-bound sweep (Theorem 6.9)
  exist     existence & price of stability (Theorem 2.3)
  nphard    NP-hardness reduction cross-check (Theorem 2.1)
  conn      connectivity dichotomy (Theorem 7.2)
  dyn       convergence statistics (Section 8)
  poa       exact PoA/PoS by exhaustive profile enumeration (small n)
  uniform   the Section 8 uniform-budget (B > 1) open problem
  baseline  contrast with basic network creation games (Alon et al.)
  weak      Section 6 machinery audits (tree balls, rich leaves, folding)
  simul     sequential vs simultaneous dynamics (Section 8)
  fip       exact finite-improvement-property analysis (Section 8)
  directed  contrast with the directed BBC game (Laoutaris et al.)
  robust    dynamics robustness across initial overlay families
  treedyn   dynamics on random Tree-BG instances (Section 3 empirics)
  merge     render a sweep command's tables from an existing -out store
  all       everything, in paper order

-out DIR checkpoints sweep results per point; -resume continues an
interrupted -out run, evaluating only the missing points. See
docs/RUNNER.md.
`)
}

type app struct {
	out    io.Writer
	effort experiments.Effort
	csv    bool
	seed   int64

	// Checkpointing state (nil/false without -out).
	st    *store.Store
	merge bool
	// Resume accounting, reported on stderr and asserted by tests.
	evaluated int
	skipped   int
}

// specCommands maps store-backed subcommands to the experiment specs
// they emit, in output order.
var specCommands = map[string][]string{
	"table1": {"table1-trees-max", "table1-trees-sum", "table1-unit-sum",
		"table1-unit-max", "table1-positive-max", "table1-general-sum"},
	"unit":     {"table1-unit-sum", "table1-unit-max"},
	"shift":    {"table1-positive-max"},
	"sumupper": {"table1-general-sum"},
	"exist":    {"existence"},
	"nphard":   {"reduction"},
	"conn":     {"connectivity"},
	"dyn":      {"dynamics-stats"},
}

func (a *app) emit(t *sweep.Table) error {
	var err error
	if a.csv {
		err = t.CSV(a.out)
	} else {
		err = t.Render(a.out)
	}
	if err == nil {
		_, err = fmt.Fprintln(a.out)
	}
	return err
}

// runSpecs runs (or, under merge, re-renders) the named experiment
// specs against the app's store, emitting every table.
func (a *app) runSpecs(names ...string) error {
	for _, name := range names {
		spec, ok := experiments.SpecByName(name)
		if !ok {
			return fmt.Errorf("no spec %q registered", name)
		}
		job := spec.Job(a.effort, a.seed)
		var rep *runner.Report
		var err error
		if a.merge {
			rep, err = runner.Merge(job, a.st)
		} else {
			rep, err = runner.Run(job, a.st, 0)
		}
		if err != nil {
			return err
		}
		a.evaluated += rep.Evaluated
		a.skipped += rep.Skipped
		tables, err := spec.Render(rep.Values)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := a.emit(t); err != nil {
				return err
			}
		}
	}
	return nil
}

func (a *app) run(cmd string) error {
	if names, ok := specCommands[cmd]; ok {
		return a.runSpecs(names...)
	}
	if a.merge {
		return fmt.Errorf("command %q is not store-backed; merge supports: table1 unit shift sumupper exist nphard conn dyn", cmd)
	}
	switch cmd {
	case "fig1":
		t, err := experiments.Figure1()
		if err != nil {
			return err
		}
		return a.emit(t)
	case "fig2":
		k := 5
		if a.effort == experiments.Full {
			k = 16
		}
		t, err := experiments.Figure2(k)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "fig3":
		k := 4
		if a.effort == experiments.Full {
			k = 7
		}
		t, err := experiments.Figure3(k)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "poa":
		t, err := experiments.ExactPoA(a.effort)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "uniform":
		t, err := experiments.UniformBudget(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "baseline":
		t, err := experiments.BaselineContrast(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "weak":
		t, err := experiments.WeakMachinery(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "simul":
		t, err := experiments.SimultaneousContrast(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "fip":
		t, err := experiments.FIP(a.effort)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "directed":
		t, err := experiments.DirectedContrast(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "robust":
		t, err := experiments.Robustness(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "treedyn":
		t, err := experiments.TreeDynamics(a.effort, a.seed)
		if err != nil {
			return err
		}
		return a.emit(t)
	case "all":
		return a.all()
	default:
		return fmt.Errorf("unknown command %q (run with no arguments for usage)", cmd)
	}
}

func (a *app) all() error {
	steps := []string{"fig1", "fig2", "fig3", "table1", "exist", "nphard",
		"conn", "dyn", "poa", "uniform", "baseline", "weak", "simul", "fip", "directed", "robust", "treedyn"}
	for _, s := range steps {
		if err := a.run(s); err != nil {
			return fmt.Errorf("%s: %w", s, err)
		}
	}
	return nil
}
