package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/center"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/sweep"
)

// ---------------------------------------------------------------------
// Theorem 2.3 existence sweep

type existenceRow struct {
	Budgets  []int `json:"budgets"`
	Sigma    int   `json:"sigma"`
	Diam     int64 `json:"diam"`
	SumOK    bool  `json:"sumOK"`
	MaxOK    bool  `json:"maxOK"`
	ConnCase bool  `json:"connCase"`
}

// existenceJob pre-draws every trial's budget vector from the seed (the
// generation stream is part of the point identity: evaluation itself
// consumes no randomness).
func existenceJob(effort Effort, seed int64) runner.Job {
	trials := 10
	maxN := 8
	if effort == Full {
		trials = 40
		maxN = 12
	}
	rng := rand.New(rand.NewSource(seed))
	points := make([]runner.Point, trials)
	for i := 0; i < trials; i++ {
		n := 3 + rng.Intn(maxN-2)
		budgets := make([]int, n)
		for j := range budgets {
			budgets[j] = rng.Intn(4)
			if budgets[j] >= n {
				budgets[j] = n - 1
			}
		}
		points[i] = runner.Point{Exp: "existence",
			Key:  fmt.Sprintf("effort=%s,trial=%d", effort.name(), i),
			Seed: seed, Data: budgets}
	}
	return runner.Job{Exp: "existence", Points: points, Eval: evalExistence}
}

// evalExistence builds the Theorem 2.3 construction for one budget
// vector and verifies it as a Nash equilibrium of both versions.
func evalExistence(p runner.Point) (any, error) {
	budgets := p.Data.([]int)
	d, err := construct.Existence(budgets)
	if err != nil {
		return nil, err
	}
	r := existenceRow{Budgets: budgets}
	for _, b := range budgets {
		r.Sigma += b
	}
	r.ConnCase = r.Sigma >= len(budgets)-1
	gSum := core.MustGame(budgets, core.SUM)
	gMax := core.MustGame(budgets, core.MAX)
	devS, err := gSum.VerifyNash(d, 0)
	if err != nil {
		return nil, err
	}
	devM, err := gMax.VerifyNash(d, 0)
	if err != nil {
		return nil, err
	}
	r.SumOK = devS == nil
	r.MaxOK = devM == nil
	r.Diam = gSum.SocialCost(d)
	return r, nil
}

func existenceTable(rows []existenceRow) *sweep.Table {
	t := sweep.NewTable("Theorem 2.3: constructed equilibria for random budget vectors (PoS = O(1))",
		"budgets", "sigma", "diameter", "SUM-nash", "MAX-nash")
	for _, r := range rows {
		diam := fmt.Sprintf("%d", r.Diam)
		if !r.ConnCase {
			diam = "n^2 (disconnected)"
		}
		t.Addf(fmt.Sprintf("%v", r.Budgets), r.Sigma, diam, yesNo(r.SumOK), yesNo(r.MaxOK))
	}
	return t
}

// Existence sweeps Theorem 2.3 over random budget vectors: the
// construction must always verify as a Nash equilibrium of both versions,
// with diameter <= 4 whenever the total budget reaches n-1 (the price of
// stability evidence).
func Existence(effort Effort, seed int64) (*sweep.Table, error) {
	rows, err := runRows[existenceRow](existenceJob(effort, seed))
	if err != nil {
		return nil, err
	}
	return existenceTable(rows), nil
}

// ---------------------------------------------------------------------
// Theorem 2.1 reduction cross-check

type reductionRow struct {
	N       int   `json:"n"`
	K       int   `json:"k"`
	KCenter int64 `json:"kcenter"`
	ViaBRC  int64 `json:"viaBRC"`
	KMedian int64 `json:"kmedian"`
	ViaBRM  int64 `json:"viaBRM"`
	Match   bool  `json:"match"`
}

// reductionInstance is the pre-generated input of one reduction trial.
type reductionInstance struct {
	h *graph.Digraph
	k int
}

// reductionJob pre-draws every trial's host graph and k; the generation
// replays the historical stream exactly (graph first, then extra arcs,
// then k) so stored results stay valid across code motion.
func reductionJob(effort Effort, seed int64) runner.Job {
	trials := 8
	maxN := 8
	if effort == Full {
		trials = 25
		maxN = 11
	}
	rng := rand.New(rand.NewSource(seed))
	points := make([]runner.Point, trials)
	for i := 0; i < trials; i++ {
		n := 4 + rng.Intn(maxN-3)
		h := graph.RandomTree(n, rng)
		for e := 0; e < rng.Intn(3); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !h.Underlying().HasEdge(u, v) {
				h.AddArc(u, v)
			}
		}
		k := 1 + rng.Intn(3)
		if k > n {
			k = n
		}
		points[i] = runner.Point{Exp: "reduction",
			Key:  fmt.Sprintf("effort=%s,trial=%d", effort.name(), i),
			Seed: seed, Data: reductionInstance{h: h, k: k}}
	}
	return runner.Job{Exp: "reduction", Points: points, Eval: evalReduction}
}

// evalReduction checks Theorem 2.1 on one instance: the exact k-center /
// k-median optima must equal the fresh player's best-response values.
func evalReduction(p runner.Point) (any, error) {
	inst := p.Data.(reductionInstance)
	h, k := inst.h, inst.k
	n := h.N()
	dc, err := center.KCenterExact(h.Underlying(), k)
	if err != nil {
		return nil, err
	}
	gc, err := center.KCenterViaBestResponse(h, k, 0)
	if err != nil {
		return nil, err
	}
	dm, err := center.KMedianExact(h.Underlying(), k)
	if err != nil {
		return nil, err
	}
	gm, err := center.KMedianViaBestResponse(h, k, 0)
	if err != nil {
		return nil, err
	}
	return reductionRow{N: n, K: k,
		KCenter: dc.Value, ViaBRC: gc.Value,
		KMedian: dm.Value, ViaBRM: gm.Value,
		Match: dc.Value == gc.Value && dm.Value == gm.Value}, nil
}

func reductionTable(rows []reductionRow) (*sweep.Table, error) {
	t := sweep.NewTable("Theorem 2.1: best response == k-center (MAX) / k-median (SUM)",
		"n", "k", "kcenter", "via-BR", "kmedian", "via-BR", "match")
	for _, r := range rows {
		t.Addf(r.N, r.K, r.KCenter, r.ViaBRC, r.KMedian, r.ViaBRM, yesNo(r.Match))
		if !r.Match {
			return t, fmt.Errorf("reduction mismatch at n=%d k=%d", r.N, r.K)
		}
	}
	return t, nil
}

// Reduction cross-checks Theorem 2.1: optimal k-center / k-median values
// computed directly must equal the fresh player's best-response cost
// (shifted by the reduction's offset) on random connected graphs.
func Reduction(effort Effort, seed int64) (*sweep.Table, error) {
	rows, err := runRows[reductionRow](reductionJob(effort, seed))
	if err != nil {
		return nil, err
	}
	return reductionTable(rows)
}

// ---------------------------------------------------------------------
// Theorem 7.2 connectivity dichotomy

type connectivityRow struct {
	N         int `json:"n"`
	K         int `json:"k"`
	Converged int `json:"converged"`
	Satisfied int `json:"satisfied"`
	KConn     int `json:"kconn"`
	SmallDiam int `json:"smallDiam"`
}

func connectivityJob(effort Effort, seed int64) runner.Job {
	type point struct{ n, k int }
	points := []point{{6, 2}, {8, 2}, {8, 3}}
	if effort == Full {
		points = []point{{6, 2}, {8, 2}, {10, 2}, {8, 3}, {10, 3}, {12, 3}, {12, 4}}
	}
	rp := make([]runner.Point, len(points))
	for i, p := range points {
		rp[i] = runner.Point{Exp: "connectivity", Key: fmt.Sprintf("n=%d,k=%d", p.n, p.k),
			Seed: seed, Data: [2]int{p.n, p.k}}
	}
	return runner.Job{Exp: "connectivity", Points: rp, Eval: evalConnectivity}
}

// evalConnectivity runs the dynamics trials of one (n, k) cell and
// audits each reached equilibrium against the Theorem 7.2 dichotomy.
func evalConnectivity(p runner.Point) (any, error) {
	const trials = 4
	nk := p.Data.([2]int)
	n, k := nk[0], nk[1]
	rng := rand.New(rand.NewSource(p.Seed + int64(n*31+k)))
	g := core.UniformGame(n, k, core.SUM)
	r := connectivityRow{N: n, K: k}
	pool := cellPool(g)
	defer pool.Close()
	for trial := 0; trial < trials; trial++ {
		responder := core.Responder(core.GreedyResponder)
		cached := core.DeviatorResponder(core.GreedyDeviatorResponder)
		if core.StrategySpaceSize(n, k) <= 3000 {
			responder = core.ExactResponder(0)
			cached = core.ExactDeviatorResponder(0)
		}
		out, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
			Responder:   responder,
			Cached:      cached,
			DetectLoops: true,
			MaxRounds:   300,
			Pool:        pool,
		})
		if err != nil {
			return nil, err
		}
		if !out.Converged {
			continue
		}
		// The dichotomy is a theorem about exact equilibria; for
		// greedy fixed points it is measured, not asserted.
		r.Converged++
		audit := analysis.AuditConnectivity(out.Final, k)
		if audit.Satisfied {
			r.Satisfied++
		}
		if audit.KConn {
			r.KConn++
		}
		if audit.Diameter >= 0 && audit.Diameter < 4 {
			r.SmallDiam++
		}
	}
	return r, nil
}

func connectivityTable(rows []connectivityRow) *sweep.Table {
	t := sweep.NewTable("Theorem 7.2: SUM equilibria with budgets >= k are k-connected or have diameter < 4",
		"n", "k", "converged", "dichotomy-holds", "k-connected", "diam<4")
	for _, r := range rows {
		t.Addf(r.N, r.K, r.Converged, r.Satisfied, r.KConn, r.SmallDiam)
	}
	return t
}

// Connectivity checks the Theorem 7.2 dichotomy on SUM equilibria reached
// by dynamics in uniform-budget games: diameter < 4 or k-connected.
func Connectivity(effort Effort, seed int64) (*sweep.Table, error) {
	rows, err := runRows[connectivityRow](connectivityJob(effort, seed))
	if err != nil {
		return nil, err
	}
	return connectivityTable(rows), nil
}

// ---------------------------------------------------------------------
// Section 8 convergence statistics

type dynStatsRow struct {
	Version     string `json:"version"`
	Scheduler   string `json:"scheduler"`
	N           int    `json:"n"`
	Trials      int    `json:"trials"`
	Converged   int    `json:"converged"`
	Loops       int    `json:"loops"`
	Timeouts    int    `json:"timeouts"`
	TotalRounds int    `json:"totalRounds"`
}

type dynStatsCell struct {
	ver   core.Version
	sched string
	n     int
}

func dynamicsStatsJob(effort Effort, seed int64) runner.Job {
	ns := []int{6, 8}
	trials := 10
	if effort == Full {
		ns = []int{6, 8, 10, 12, 16}
		trials = 30
	}
	var points []runner.Point
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		for _, schedName := range []string{"round-robin", "random-order"} {
			for _, n := range ns {
				points = append(points, runner.Point{Exp: "dynamics-stats",
					Key:  fmt.Sprintf("ver=%v,sched=%s,n=%d,trials=%d", ver, schedName, n, trials),
					Seed: seed, Data: dynStatsCell{ver: ver, sched: schedName, n: n}})
			}
		}
	}
	return runner.Job{Exp: "dynamics-stats", Points: points, Eval: func(p runner.Point) (any, error) {
		return evalDynamicsStats(trials, p)
	}}
}

// evalDynamicsStats measures convergence/loop/timeout rates of one
// (version, scheduler, n) cell.
func evalDynamicsStats(trials int, p runner.Point) (any, error) {
	cell := p.Data.(dynStatsCell)
	rng := rand.New(rand.NewSource(p.Seed + int64(cell.n)))
	g := core.UniformGame(cell.n, 1, cell.ver)
	r := dynStatsRow{Version: cell.ver.String(), Scheduler: cell.sched, N: cell.n, Trials: trials}
	pool := cellPool(g)
	defer pool.Close()
	for trial := 0; trial < trials; trial++ {
		var sched dynamics.Scheduler = dynamics.RoundRobin{}
		if cell.sched == "random-order" {
			sched = dynamics.RandomOrder{Rng: rng}
		}
		out, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
			Responder:   core.ExactResponder(0),
			Cached:      core.ExactDeviatorResponder(0),
			Scheduler:   sched,
			DetectLoops: true,
			MaxRounds:   1500,
			Pool:        pool,
		})
		if err != nil {
			return nil, err
		}
		r.TotalRounds += out.Rounds
		switch {
		case out.Converged:
			r.Converged++
		case out.Loop:
			r.Loops++
		default:
			r.Timeouts++
		}
	}
	return r, nil
}

func dynamicsStatsTable(rows []dynStatsRow) *sweep.Table {
	t := sweep.NewTable("Section 8: does best-response dynamics converge? (empirical)",
		"version", "scheduler", "n", "trials", "converged", "loops", "timeouts", "avg-rounds")
	for _, r := range rows {
		t.Addf(r.Version, r.Scheduler, r.N, r.Trials, r.Converged, r.Loops, r.Timeouts,
			float64(r.TotalRounds)/float64(r.Trials))
	}
	return t
}

// DynamicsStats addresses the Section 8 open question empirically:
// convergence/loop rates of best-response dynamics across versions and
// schedulers.
func DynamicsStats(effort Effort, seed int64) (*sweep.Table, error) {
	rows, err := runRows[dynStatsRow](dynamicsStatsJob(effort, seed))
	if err != nil {
		return nil, err
	}
	return dynamicsStatsTable(rows), nil
}
