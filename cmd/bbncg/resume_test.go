package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/store"
)

// table1QuickPoints is the total point count of the table1 command at
// Quick effort: trees-max 5, trees-sum 4, unit-sum 3, unit-max 3,
// positive-max 2, general-sum 3.
const table1QuickPoints = 20

// TestResumeAfterCrashByteIdentical is the acceptance scenario: a
// store-backed table1 run is killed mid-sweep (simulated by chopping a
// shard mid-record, the exact on-disk signature of SIGKILL during an
// append), then re-run with resume. The resumed run must evaluate only
// the missing points and produce output byte-identical to an
// uninterrupted run.
func TestResumeAfterCrashByteIdentical(t *testing.T) {
	direct := runCLI(t, &app{effort: experiments.Quick, seed: 1}, "table1")

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	full := &app{effort: experiments.Quick, seed: 1, st: st}
	stored := runCLI(t, full, "table1")
	if stored != direct {
		t.Fatal("store-backed run differs from direct run")
	}
	if full.evaluated != table1QuickPoints || full.skipped != 0 {
		t.Fatalf("fresh run evaluated=%d skipped=%d", full.evaluated, full.skipped)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The "kill": cut one shard mid-way through its second record,
	// leaving one whole record, and delete another shard outright.
	shard := filepath.Join(dir, "table1-unit-sum.jsonl")
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	firstLine := 0
	for i, b := range data {
		if b == '\n' {
			firstLine = i + 1
			break
		}
	}
	if err := os.WriteFile(shard, data[:firstLine+10], 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "table1-general-sum.jsonl")); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Recovered() != 1 {
		t.Fatalf("Recovered = %d, want 1", st2.Recovered())
	}
	kept := st2.Len()
	missing := table1QuickPoints - kept
	// unit-sum lost 2 of 3 records, general-sum all 3.
	if missing != 5 {
		t.Fatalf("crash simulation left %d missing points, want 5", missing)
	}
	resumed := &app{effort: experiments.Quick, seed: 1, st: st2}
	out := runCLI(t, resumed, "table1")
	if out != direct {
		t.Fatal("resumed run output differs from uninterrupted run")
	}
	if resumed.evaluated != missing || resumed.skipped != kept {
		t.Fatalf("resumed run evaluated=%d skipped=%d, want %d/%d",
			resumed.evaluated, resumed.skipped, missing, kept)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// merge renders the now-complete store without evaluating anything.
	st3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	merged := &app{effort: experiments.Quick, seed: 1, st: st3, merge: true}
	if got := runCLI(t, merged, "table1"); got != direct {
		t.Fatal("merged output differs from direct run")
	}
	if merged.evaluated != 0 || merged.skipped != table1QuickPoints {
		t.Fatalf("merge evaluated=%d skipped=%d", merged.evaluated, merged.skipped)
	}
}

// A merge against an incomplete store must fail loudly, not render a
// partial table.
func TestMergeIncompleteStoreFails(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a := &app{effort: experiments.Quick, seed: 1, st: st}
	runCLI(t, a, "shift") // fills only table1-positive-max
	m := &app{effort: experiments.Quick, seed: 1, st: st, merge: true}
	m.out = os.Stderr
	if err := m.run("table1"); err == nil {
		t.Fatal("merge of an incomplete store succeeded")
	}
	// The figures are store-backed specs too now; merging one the store
	// has never evaluated must fail the same way.
	if err := m.run("fig1"); err == nil {
		t.Fatal("merge of a figure absent from the store succeeded")
	}
}

// The figure commands run through the registry like every sweep: they
// checkpoint into a store and merge back byte-identically.
func TestFiguresStoreBacked(t *testing.T) {
	for _, cmd := range []string{"fig1", "fig2", "fig3"} {
		direct := runCLI(t, &app{effort: experiments.Quick, seed: 1}, cmd)
		dir := t.TempDir()
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		a := &app{effort: experiments.Quick, seed: 1, st: st}
		if got := runCLI(t, a, cmd); got != direct {
			t.Fatalf("%s: store-backed run differs from direct run", cmd)
		}
		if a.evaluated != 1 || a.skipped != 0 {
			t.Fatalf("%s: evaluated=%d skipped=%d", cmd, a.evaluated, a.skipped)
		}
		m := &app{effort: experiments.Quick, seed: 1, st: st, merge: true}
		if got := runCLI(t, m, cmd); got != direct {
			t.Fatalf("%s: merged output differs from direct run", cmd)
		}
		if m.evaluated != 0 || m.skipped != 1 {
			t.Fatalf("%s: merge evaluated=%d skipped=%d", cmd, m.evaluated, m.skipped)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// The acceptance scenario for the registry redesign: `all` is one
// resumable invocation. A second -resume run over the same store
// evaluates nothing, and a merge renders everything from the store,
// both byte-identical to the direct run.
func TestAllFullyResumable(t *testing.T) {
	direct := runCLI(t, &app{effort: experiments.Quick, seed: 1}, "all")

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := &app{effort: experiments.Quick, seed: 1, st: st}
	if got := runCLI(t, first, "all"); got != direct {
		t.Fatal("store-backed all differs from direct all")
	}
	if first.skipped != 0 || first.evaluated == 0 {
		t.Fatalf("fresh all: evaluated=%d skipped=%d", first.evaluated, first.skipped)
	}
	total := first.evaluated

	resumed := &app{effort: experiments.Quick, seed: 1, st: st}
	if got := runCLI(t, resumed, "all"); got != direct {
		t.Fatal("resumed all differs from direct all")
	}
	if resumed.evaluated != 0 || resumed.skipped != total {
		t.Fatalf("resumed all: evaluated=%d skipped=%d, want 0/%d",
			resumed.evaluated, resumed.skipped, total)
	}

	merged := &app{effort: experiments.Quick, seed: 1, st: st, merge: true}
	if got := runCLI(t, merged, "all"); got != direct {
		t.Fatal("merged all differs from direct all")
	}
	if merged.evaluated != 0 || merged.skipped != total {
		t.Fatalf("merged all: evaluated=%d skipped=%d", merged.evaluated, merged.skipped)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// Changing the seed changes point identities, so a store never serves
// results across seeds.
func TestStoreKeyedBySeed(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a1 := &app{effort: experiments.Quick, seed: 1, st: st}
	runCLI(t, a1, "conn")
	a2 := &app{effort: experiments.Quick, seed: 2, st: st}
	runCLI(t, a2, "conn")
	if a2.skipped != 0 || a2.evaluated == 0 {
		t.Fatalf("seed-2 run reused seed-1 results: evaluated=%d skipped=%d", a2.evaluated, a2.skipped)
	}
}
