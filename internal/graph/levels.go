package graph

import "math/bits"

// Bitset level sets: the eccentricity-only representation of BFS
// distances. For a source v, ball k is the bitset of vertices within
// distance k of v; the cumulative balls B_v[0] ⊆ B_v[1] ⊆ ... saturate
// at v's eccentricity. The MAX-objective deviation kernel only ever asks
// "what is the largest min-distance from an anchor set to any reachable
// vertex" — which is the smallest k at which the union of the anchors'
// balls covers the union of their saturated balls — so it can run
// entirely on these bitsets: evaluating one candidate anchor touches
// O(log(diam) · n/64) words instead of scanning an n-entry int32 row,
// roughly a 32× cut in memory traffic on low-diameter graphs.

// LevelCache stores cumulative reachability balls for every source of a
// distance matrix. Rows are set from int32 distance rows (InfDist =
// unreachable), so the cache is exactly as fresh as the matrix it
// shadows; after an incremental repair only the changed rows need
// re-setting. Safe for concurrent readers once built.
type LevelCache struct {
	n     int
	words int
	depth []int32    // per source: its eccentricity within its component
	rows  [][]uint64 // per source: (depth+1)×words cumulative balls
}

// NewLevelCache returns an empty cache for n-vertex graphs; every source
// must be SetRow before it is queried.
func NewLevelCache(n int) *LevelCache {
	return &LevelCache{
		n:     n,
		words: (n + 63) / 64,
		depth: make([]int32, n),
		rows:  make([][]uint64, n),
	}
}

// Words returns the per-level bitset width in 64-bit words.
func (lc *LevelCache) Words() int { return lc.words }

// SetRow (re)builds source src's level sets from its distance row
// (length n, InfDist marking unreachable vertices).
func (lc *LevelCache) SetRow(src int, row []int32) {
	depth := int32(0)
	for _, d := range row {
		if d < InfDist && d > depth {
			depth = d
		}
	}
	need := (int(depth) + 1) * lc.words
	buf := lc.rows[src]
	if cap(buf) < need {
		buf = make([]uint64, need)
	} else {
		buf = buf[:need]
		for i := range buf {
			buf[i] = 0
		}
	}
	for v, d := range row {
		if d < InfDist {
			buf[int(d)*lc.words+v>>6] |= 1 << (uint(v) & 63)
		}
	}
	for k := 1; k <= int(depth); k++ {
		prev := buf[(k-1)*lc.words : k*lc.words]
		cur := buf[k*lc.words : (k+1)*lc.words]
		for j, p := range prev {
			cur[j] |= p
		}
	}
	lc.rows[src] = buf
	lc.depth[src] = depth
}

// ball returns source src's cumulative ball at radius k (saturating at
// the source's depth).
func (lc *LevelCache) ball(src int, k int32) []uint64 {
	if d := lc.depth[src]; k > d {
		k = d
	}
	return lc.rows[src][int(k)*lc.words : (int(k)+1)*lc.words]
}

// LevelUnion accumulates the union of level caches of a growing anchor
// set — the incremental state of the MAX-objective responders, playing
// the role the running min-vector plays for SUM. The depth is kept
// trimmed to the smallest k whose ball equals the saturated reach set,
// so the union's eccentricity is simply its depth.
type LevelUnion struct {
	words  int
	depth  int32
	levels []uint64 // (depth+1)×words cumulative balls
	count  int      // population of the saturated ball
}

// NewLevelUnion returns the empty union for n-vertex graphs.
func NewLevelUnion(n int) *LevelUnion {
	words := (n + 63) / 64
	return &LevelUnion{words: words, levels: make([]uint64, words)}
}

// CopyFrom makes lu an independent copy of o.
func (lu *LevelUnion) CopyFrom(o *LevelUnion) {
	lu.words = o.words
	lu.depth = o.depth
	lu.count = o.count
	lu.levels = append(lu.levels[:0], o.levels...)
}

// sat returns the saturated (deepest) ball of the union.
func (lu *LevelUnion) sat() []uint64 {
	return lu.levels[int(lu.depth)*lu.words : (int(lu.depth)+1)*lu.words]
}

// Merge folds source src of lc into the union.
func (lu *LevelUnion) Merge(lc *LevelCache, src int) {
	nd := lu.depth
	if sd := lc.depth[src]; sd > nd {
		nd = sd
	}
	// Extend with copies of the current saturated ball up to the new depth.
	for k := lu.depth + 1; k <= nd; k++ {
		lu.levels = append(lu.levels, lu.sat()...)
	}
	lu.depth = nd
	for k := int32(0); k <= nd; k++ {
		b := lc.ball(src, k)
		dst := lu.levels[int(k)*lu.words : (int(k)+1)*lu.words]
		for j, w := range b {
			dst[j] |= w
		}
	}
	// Trim: drop top levels equal to the one below, so depth is again the
	// smallest covering radius.
	for lu.depth > 0 {
		top := lu.sat()
		below := lu.levels[(int(lu.depth)-1)*lu.words : int(lu.depth)*lu.words]
		equal := true
		for j := range top {
			if top[j] != below[j] {
				equal = false
				break
			}
		}
		if !equal {
			break
		}
		lu.depth--
		lu.levels = lu.levels[:(int(lu.depth)+1)*lu.words]
	}
	lu.count = 0
	for _, w := range lu.sat() {
		lu.count += bits.OnesCount64(w)
	}
}

// Aggregate returns the union's covering radius (its eccentricity: the
// largest min-distance from the anchor set to any covered vertex) and
// the number of covered vertices.
func (lu *LevelUnion) Aggregate() (ecc int32, covered int) {
	return lu.depth, lu.count
}

// AggregateWith returns Aggregate as it would be after merging source
// src, without mutating the union. The covering radius is found by
// binary search over k (coverage at radius k is monotone), so one
// candidate evaluation costs O(log(diam)) ball comparisons.
func (lu *LevelUnion) AggregateWith(lc *LevelCache, src int) (ecc int32, covered int) {
	w := lu.words
	usat := lu.sat()
	bsat := lc.ball(src, lc.depth[src])
	for j := 0; j < w; j++ {
		covered += bits.OnesCount64(usat[j] | bsat[j])
	}
	if covered == 0 {
		return 0, 0
	}
	lo, hi := int32(0), lu.depth
	if sd := lc.depth[src]; sd > hi {
		hi = sd
	}
	for lo < hi {
		mid := (lo + hi) / 2
		uk := lu.levels[int(min(mid, lu.depth))*w:]
		bk := lc.ball(src, mid)
		covers := true
		for j := 0; j < w; j++ {
			if uk[j]|bk[j] != usat[j]|bsat[j] {
				covers = false
				break
			}
		}
		if covers {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, covered
}
