package core

import (
	"slices"
	"sync"

	"repro/internal/graph"
)

// Distance-cache deviation engine.
//
// Evaluating a candidate strategy S of player u needs the distances from u
// in the deviated graph. A shortest path from u never revisits u, so with
// D(v, w) = dist_{G-u}(v, w) — distances with u deleted, which do not
// depend on S — every deviated distance is a min-merge over cached rows:
//
//	dist(u, w) = 1 + min over v in S ∪ in(u) of D(v, w).
//
// EnsureCache materialises D as a flat n×n int32 matrix, filled by
// parallel BFS over a CSR copy of G-u (one row per potential anchor), and
// folds the fixed in(u) anchors into a single inMin row. Each Eval then
// costs one fused O(|S|·n) min+sum pass instead of an O(n+m) BFS, and the
// responders in bestresponse.go get incremental forms whose marginal
// evaluations are a single O(n) pass.
//
// Memory model: the cache needs 4·n·(n+1) bytes. EnsureCache refuses
// budgets that the matrix would exceed and leaves the Deviator on the
// exact BFS fallback path, so sweeps over large n keep working; matrices
// are recycled through a sync.Pool to keep dynamics rounds allocation-flat.
//
// Concurrency contract: a Deviator is single-goroutine; clone() hands a
// worker its own scratch state while sharing the immutable rows/inMin
// matrices, which is how the parallel exact responder shards enumeration.

// DefaultCacheBudget caps the distance-cache size (in bytes) built by the
// best-response heuristics: 256 MiB, i.e. the full matrix up to n ≈ 8192.
// Set it lower (or to 0, disabling caching) to bound memory on sweeps that
// run many responders concurrently.
var DefaultCacheBudget int64 = 256 << 20

// int32Pool recycles distance matrices (and the smaller min-vectors)
// across Deviator lifetimes; see release().
var int32Pool sync.Pool

func getInt32(size int) []int32 {
	if v := int32Pool.Get(); v != nil {
		if s := v.([]int32); cap(s) >= size {
			return s[:size]
		}
	}
	return make([]int32, size)
}

func putInt32(s []int32) {
	if cap(s) > 0 {
		int32Pool.Put(s[:0])
	}
}

// EnsureCache builds the distance cache if 4·n·(n+1) bytes fit within
// budgetBytes, reporting whether the cache is active afterwards. It is
// idempotent and not safe for concurrent use. Without the cache every
// Eval falls back to a per-candidate BFS (bit-identical costs, just
// slower).
func (dv *Deviator) EnsureCache(budgetBytes int64) bool {
	if dv.rows != nil {
		return true
	}
	n := dv.game.N()
	if need := 4 * int64(n) * int64(n+1); budgetBytes <= 0 || need > budgetBytes {
		return false
	}
	if dv.wts != nil {
		if !graph.FitsWeightedCache(n, dv.wts.MaxW()) {
			return false // offsets would alias InfDist: stay on Dijkstra fallback
		}
		dv.rows = getInt32(n * n)
		dv.woff = getInt32(n)
		dv.rebuildWoff()
		dv.wgen = dv.wts.Gen()
		wcsr := graph.NewWCSRExcluding(dv.base, dv.wts, dv.u)
		wcsr.DistanceRowsInto(dv.rows, dv.woff)
		dv.inMin = getInt32(n)
		dv.rebuildInMin()
		return true
	}
	csr := graph.NewCSRExcluding(dv.base, dv.u)
	rows := getInt32(n * n)
	csr.DistanceRowsInto(rows)
	dv.rows = rows
	dv.inMin = getInt32(n)
	dv.rebuildInMin()
	return true
}

// EnsureWeightedCache is EnsureCache for Deviators built by
// NewWeightedDeviator; it panics when the Deviator carries no weights
// (callers wanting the weighted cache mode must construct one).
func (dv *Deviator) EnsureWeightedCache(budgetBytes int64) bool {
	if dv.wts == nil {
		panic("core: EnsureWeightedCache on an unweighted Deviator")
	}
	return dv.EnsureCache(budgetBytes)
}

// rebuildWoff recomputes the per-anchor row offsets w(u,v) - 1. Row u
// gets offset 0: it is never an anchor, and zero keeps its self-entry
// identical to the unweighted cache's.
func (dv *Deviator) rebuildWoff() {
	for v := range dv.woff {
		if v == dv.u {
			dv.woff[v] = 0
			continue
		}
		dv.woff[v] = dv.wts.Of(dv.u, v) - 1
	}
}

// rebuildInMin recomputes the folded in(u) anchor row from the cached
// matrix (after a fill, or after Repair changed rows or in(u)). Any
// such change also stales the memoised inMin pruning bound.
func (dv *Deviator) rebuildInMin() {
	n := dv.game.N()
	inMin := dv.inMin
	for i := range inMin {
		inMin[i] = graph.InfDist
	}
	for _, v := range dv.in {
		row := dv.rows[v*n : (v+1)*n]
		for w, r := range row {
			if r < inMin[w] {
				inMin[w] = r
			}
		}
	}
	dv.sumSufInOK = false
}

// Repair brings the Deviator in sync with d after the underlying graph
// changed (any number of players rewired their arcs since the Deviator
// was built or last repaired). The fixed adjacency, in(u) anchors and
// G-u component structure are rebuilt outright — they are O(n+m) — while
// the expensive distance matrix is repaired in place by the delta-BFS
// layer (graph.RepairRows) over the diff of the old and new adjacency:
// rows untouched by the changed edges are kept as they are, rows that
// can only have improved are patched by an improvement-only BFS, and
// only genuinely damaged rows are recomputed (with a batched full refill
// past the damage threshold). The repaired state is bit-identical to a
// freshly built cache; dynamics pins this with repair-vs-refill tests.
func (dv *Deviator) Repair(d *graph.Digraph) graph.RepairStats {
	newBase := d.UnderlyingWithout(dv.u)
	newIn := d.In(dv.u)
	inSame := slices.Equal(dv.in, newIn)
	var st graph.RepairStats
	dv.syncWeights() // before the edge delta: repairs read current weights
	if dv.rows != nil {
		removed, added := graph.DiffUnd(dv.base, newBase, dv.u)
		if len(removed)+len(added) == 0 {
			// Nothing in G-u moved: the matrix, colMin floor, SUM memo,
			// level sets and component structure are all exact as they
			// stand — the strongest stability evidence (over-invalidation
			// lands here). Return without staling any of them, so a
			// zero-diff repair and a stamped skip agree bit-for-bit.
			dv.noteStable()
			if inSame {
				return st
			}
			// Only the in(u) anchor set moved under intact rows (the diff
			// skips u-incident edges, so newBase can still differ there):
			// adopt the rebuilt adjacency, refold inMin and drop the
			// structures derived from it. Rows, colMin, levels and the
			// component structure (which excludes u) stay exact.
			dv.base = newBase
			dv.in = newIn
			dv.memo = nil
			dv.inLv = nil
			dv.rebuildInMin()
			return st
		}
		dv.applyRowDelta(newBase, removed, added, inSame, &st)
	}
	dv.base = newBase
	dv.in = newIn
	dv.label, dv.comps = graph.ComponentsExcluding(newBase, dv.u)
	dv.seen = make([]bool, dv.comps+1)
	dv.inLv = nil // in(u) may have changed; rebuilt lazily
	if dv.rows != nil {
		dv.rebuildInMin()
	}
	return st
}

// applyRowDelta runs the delta-BFS row repair plus the dependent colMin,
// memo and level-cache maintenance for a non-empty edge delta against
// newBase. Shared by Repair (diff-computed delta) and RepairDelta
// (journal-supplied delta) so both paths stay bit-identical.
func (dv *Deviator) applyRowDelta(newBase graph.Und, removed, added [][2]int32, inSame bool, st *graph.RepairStats) {
	n := dv.game.N()
	if dv.wts != nil {
		// Weighted tier: the same plan over the weighted repair layer.
		// Edge weights are read at current values — syncWeights already
		// brought the rows up to the live weights generation.
		wcsr := graph.NewWCSRExcluding(newBase, dv.wts, dv.u)
		if dv.wds == nil {
			dv.wds = graph.NewWDeltaScratch(n)
		}
		*st = wcsr.RepairRowsWeighted(dv.rows, dv.woff, dv.toWEdges(removed), dv.toWEdges(added), dv.wds)
		dv.repairColMin(*st)
		dv.memoRepair(*st, inSame)
		if st.FullRefill {
			dv.stable = 0
		} else {
			dv.noteStable()
		}
		return
	}
	csr := graph.NewCSRExcluding(newBase, dv.u)
	if dv.ds == nil {
		dv.ds = graph.NewDeltaScratch(n)
	}
	*st = csr.RepairRows(dv.rows, removed, added, dv.ds)
	dv.repairColMin(*st)
	dv.memoRepair(*st, inSame)
	if st.FullRefill {
		// The whole matrix moved: re-levelling it would cost more
		// than the bitset kernel saves this round. Drop the level
		// cache and reset the stability streak; the MAX responders
		// run the row kernel until the rows settle again.
		dv.lc = nil
		dv.stable = 0
	} else {
		dv.noteStable()
		if dv.lc != nil {
			for _, s := range st.Changed {
				dv.lc.SetRow(int(s), dv.rows[int(s)*n:(int(s)+1)*n])
			}
		}
	}
}

// RepairDelta brings the Deviator in sync after an exact undirected-edge
// delta supplied by the graph's mutation journal (stamped pools). The
// delta must exclude edges incident to u and reflect an unchanged in(u)
// anchor set — the pool only takes this path when the journal certifies
// both — so the fixed adjacency is patched in place and the anchor fold
// rebuilt without the O(n+m) UnderlyingWithout + DiffUnd resync that
// Repair pays. The resulting state is bit-identical to Repair against
// the same target graph.
func (dv *Deviator) RepairDelta(removed, added [][2]int32) graph.RepairStats {
	var st graph.RepairStats
	dv.syncWeights() // before the edge delta: repairs read current weights
	if len(removed)+len(added) == 0 {
		dv.noteStable()
		return st
	}
	for _, e := range removed {
		dv.base.RemoveEdge(int(e[0]), int(e[1]))
	}
	for _, e := range added {
		dv.base.AddEdge(int(e[0]), int(e[1]))
	}
	if dv.rows != nil {
		dv.applyRowDelta(dv.base, removed, added, true, &st)
	}
	dv.label, dv.comps = graph.ComponentsExcluding(dv.base, dv.u)
	dv.seen = make([]bool, dv.comps+1)
	dv.inLv = nil
	if dv.rows != nil {
		dv.rebuildInMin()
	}
	return st
}

// noteStable records one acquisition that kept the rows intact (or
// cheaply repaired); the streak saturates low so one full refill always
// re-triggers the row-kernel phase.
func (dv *Deviator) noteStable() {
	if dv.stable < 4 {
		dv.stable++
	}
}

// useLevels reports whether the MAX responders should evaluate on the
// bitset eccentricity kernel: only for pool-owned Deviators whose rows
// have stayed stable for a couple of acquisitions (or once the cache
// exists already), because building the level sets costs about as much
// as one full greedy scan saves — it pays off precisely when it
// survives across movers and rounds and is patched, not rebuilt, after
// each move. Heavy-move phases (full refills on every repair) stay on
// the row kernel.
func (dv *Deviator) useLevels() bool {
	if dv.game.Version != MAX || dv.rows == nil || dv.wts != nil {
		// Weighted distances exceed the n levels the bitset cache holds;
		// weighted MAX stays on the row kernel.
		return false
	}
	return dv.lc != nil || (dv.pool != nil && dv.stable >= 2)
}

// ensureLevels builds the bitset level cache of the distance matrix and
// the in(u) level union — the state of the MAX eccentricity kernel. It
// is lazy: one-shot SUM responders never pay for it, and pooled MAX
// Deviators build it once and keep it patched across repairs.
func (dv *Deviator) ensureLevels() {
	n := dv.game.N()
	if dv.lc == nil {
		lc := graph.NewLevelCache(n)
		for s := 0; s < n; s++ {
			lc.SetRow(s, dv.rows[s*n:(s+1)*n])
		}
		dv.lc = lc
	}
	if dv.inLv == nil {
		lu := graph.NewLevelUnion(n)
		for _, v := range dv.in {
			lu.Merge(dv.lc, v)
		}
		dv.inLv = lu
	}
}

// HasCache reports whether the distance cache is active.
func (dv *Deviator) HasCache() bool { return dv.rows != nil }

// Release hands the cache back to its owner. For a plain Deviator that
// recycles the matrices into the global pool and drops back to BFS
// evaluation (still bit-identical). For a Deviator owned by a CachePool
// it is a no-op: the matrices stay alive in the pool — and must,
// because the pool will repair and reuse them for later rounds, and
// recycling them into the global sync.Pool mid-round would hand the
// backing array to a concurrent responder (only CachePool.Close
// recycles pool-owned matrices).
func (dv *Deviator) Release() { dv.release() }

// release returns the cache matrices to the pool. Callers that own the
// Deviator (the responders) release on exit; any clones sharing the
// matrices must be done first.
func (dv *Deviator) release() {
	if dv.pool != nil {
		return // pool-owned: recycled only by CachePool.Close
	}
	if dv.rows != nil {
		putInt32(dv.rows)
		dv.rows = nil
	}
	if dv.inMin != nil {
		putInt32(dv.inMin)
		dv.inMin = nil
	}
	if dv.colMin != nil {
		putInt32(dv.colMin)
		dv.colMin = nil
	}
	if dv.woff != nil {
		putInt32(dv.woff)
		dv.woff = nil
	}
	dv.sumSufT, dv.sumSufIn, dv.sumSufInOK = nil, nil, false
	dv.memo = nil
	dv.lc, dv.inLv = nil, nil
}

// releaseOwned force-recycles the matrices regardless of pool
// membership; only the pool itself calls it, on eviction and Close.
func (dv *Deviator) releaseOwned() {
	dv.pool = nil
	dv.release()
}

// clone returns a Deviator with private mutable scratch state sharing the
// immutable base graph, component labels and distance cache, for use by
// one worker goroutine of the parallel exact responder.
func (dv *Deviator) clone() *Deviator {
	return &Deviator{
		game:   dv.game,
		u:      dv.u,
		base:   dv.base,
		in:     dv.in,
		label:  dv.label,
		comps:  dv.comps,
		seen:   make([]bool, dv.comps+1),
		s:      graph.NewScratch(dv.game.N()),
		rows:   dv.rows,
		inMin:  dv.inMin,
		sumOn:  dv.sumOn,
		colMin: dv.colMin, // immutable while clones are live; suffix scratch stays private
		wts:    dv.wts,
		woff:   dv.woff,
		wgen:   dv.wgen,
		cinf:   dv.cinf,
	}
}

// aggregate computes the BFS-equivalent aggregates of the deviation whose
// anchor min-vector is vec, min-merged on the fly with the cached row of
// anchor extra (extra < 0 evaluates vec alone). vec[w] must hold min over
// anchors of D(anchor, w); the source u contributes reached=1 and distance
// 0, and vec[u] is always InfDist because no G-u row reaches u.
//
// The pass is specialised per cost version — SUM never reads the
// eccentricity and MAX never reads the distance sum, so each kernel
// carries only the accumulator its costFromBFS consumes.
func (dv *Deviator) aggregate(vec []int32, extra int) graph.BFSResult {
	var row []int32
	if extra >= 0 {
		row = dv.rows[extra*len(vec) : (extra+1)*len(vec)]
	}
	switch dv.game.Version {
	case SUM:
		// The plain scan stays on the scalar pass: it compiles to a
		// branchless ~2-cycle/entry loop that the strip-structured kernel
		// cannot beat (measured in BENCH_3.json's methodology); the
		// blocked kernel earns its keep only where the pruning bound
		// checks need its strip structure (sumEvalBounded).
		return sumKernel(vec, row)
	case MAX:
		return maxKernel(vec, row)
	default:
		panic("core: unknown version")
	}
}

// sumKernel is the fused min+sum pass of the SUM cost: distance sum and
// reached count of min(vec, row) (row may be nil).
func sumKernel(vec, row []int32) graph.BFSResult {
	var sum int64
	reached := 1
	if row != nil {
		for w, m := range vec {
			if r := row[w]; r < m {
				m = r
			}
			if m < graph.InfDist {
				sum += int64(m) + 1
				reached++
			}
		}
	} else {
		for _, m := range vec {
			if m < graph.InfDist {
				sum += int64(m) + 1
				reached++
			}
		}
	}
	return graph.BFSResult{Sum: sum, Reached: reached}
}

// maxKernel is the fused min+max pass of the MAX cost: eccentricity and
// reached count of min(vec, row) (row may be nil).
func maxKernel(vec, row []int32) graph.BFSResult {
	var ecc int32
	reached := 1
	if row != nil {
		for w, m := range vec {
			if r := row[w]; r < m {
				m = r
			}
			if m < graph.InfDist {
				if m > ecc {
					ecc = m
				}
				reached++
			}
		}
	} else {
		for _, m := range vec {
			if m < graph.InfDist {
				if m > ecc {
					ecc = m
				}
				reached++
			}
		}
	}
	ecc++ // distances are m+1; reached > 1 guarantees a positive ecc
	if reached == 1 {
		ecc = 0 // isolated source: eccentricity 0 within the reached set
	}
	return graph.BFSResult{Ecc: ecc, Reached: reached}
}

// mergeRow folds anchor v's cached distance row into the running
// min-vector vec (the incremental step of the greedy responder).
func (dv *Deviator) mergeRow(vec []int32, v int) {
	row := dv.rows[v*len(vec) : (v+1)*len(vec)]
	for w, r := range row {
		if r < vec[w] {
			vec[w] = r
		}
	}
}

// touched tracks which G-u components the growing anchor set reaches —
// the incremental form of CountComponentsTouched that the cached
// responders share. The count must stay bit-identical to what Eval
// computes for the same anchors, since it feeds the kappa rule.
type touched struct {
	dv    *Deviator
	seen  []bool
	count int
}

// newTouched returns a tracker seeded with the fixed in(u) anchors.
func (dv *Deviator) newTouched() *touched {
	t := &touched{dv: dv, seen: make([]bool, dv.comps+1)}
	t.reset()
	return t
}

// reset re-seeds the tracker with in(u) only.
func (t *touched) reset() {
	for i := range t.seen {
		t.seen[i] = false
	}
	t.count = 0
	for _, v := range t.dv.in {
		t.mark(v)
	}
}

// mark records anchor v's component, returning its label if newly touched
// and -1 otherwise (the return value feeds unmark for backtracking).
func (t *touched) mark(v int) int {
	if l := t.dv.label[v]; l >= 0 && !t.seen[l] {
		t.seen[l] = true
		t.count++
		return l
	}
	return -1
}

// unmark undoes a mark that returned label l; a -1 is a no-op.
func (t *touched) unmark(l int) {
	if l >= 0 {
		t.seen[l] = false
		t.count--
	}
}

// with returns the touched count if anchor v were added.
func (t *touched) with(v int) int {
	if l := t.dv.label[v]; l >= 0 && !t.seen[l] {
		return t.count + 1
	}
	return t.count
}

// costOf converts BFS aggregates plus the number of G-u components touched
// by the anchor set into the player cost, mirroring Eval's kappa rule.
func (dv *Deviator) costOf(r graph.BFSResult, touched int) int64 {
	kappa := 1
	if r.Reached != dv.game.N() {
		kappa = dv.comps - touched + 1
	}
	return costFrom(dv.game.N(), dv.cinf, dv.game.Version, r, kappa)
}

// evalCached is Eval over the distance cache: one fused min+aggregate pass
// over inMin and the strategy's rows.
func (dv *Deviator) evalCached(strategy []int) int64 {
	n := dv.game.N()
	for _, v := range strategy {
		if v == dv.u {
			// Tolerated like the BFS path tolerates it: u is the source,
			// not an anchor. Filter into a scratch copy (rare).
			filtered := make([]int, 0, len(strategy))
			for _, w := range strategy {
				if w != dv.u {
					filtered = append(filtered, w)
				}
			}
			strategy = filtered
			break
		}
	}
	if dv.sumOn && dv.game.Version == SUM {
		// SUM never reads the eccentricity or the component count, so the
		// whole evaluation is one (or, past two anchors, a merged) blocked
		// kernel pass instead of the per-vertex strategy loop below.
		var s int64
		var reached int
		switch len(strategy) {
		case 0:
			s, reached = graph.SumMerge(dv.inMin, nil)
		case 1:
			s, reached = graph.SumMerge(dv.inMin, dv.rows[strategy[0]*n:(strategy[0]+1)*n])
		default:
			vec := getInt32(n)
			copy(vec, dv.inMin)
			for _, v := range strategy[:len(strategy)-1] {
				graph.MinInto(vec, dv.rows[v*n:(v+1)*n])
			}
			last := strategy[len(strategy)-1]
			s, reached = graph.SumMerge(vec, dv.rows[last*n:(last+1)*n])
			putInt32(vec)
		}
		return costFrom(n, dv.cinf, SUM, graph.BFSResult{Sum: s, Reached: reached + 1}, 1)
	}
	var sum int64
	var ecc int32
	reached := 1
	rows, inMin := dv.rows, dv.inMin
	for w := 0; w < n; w++ {
		m := inMin[w]
		for _, v := range strategy {
			if r := rows[v*n+w]; r < m {
				m = r
			}
		}
		if m >= graph.InfDist {
			continue
		}
		d := m + 1
		sum += int64(d)
		if d > ecc {
			ecc = d
		}
		reached++
	}
	res := graph.BFSResult{Ecc: ecc, Sum: sum, Reached: reached}
	kappa := 1
	if res.Reached != dv.game.N() {
		touched := graph.CountComponentsTouched(dv.label, dv.seen, dv.u, strategy, dv.in)
		kappa = dv.comps - touched + 1
	}
	return costFrom(dv.game.N(), dv.cinf, dv.game.Version, res, kappa)
}
