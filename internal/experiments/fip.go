package experiments

import (
	"repro/internal/core"
	"repro/internal/enumerate"
	"repro/internal/sweep"
)

// FIP runs the exact finite-improvement-property analysis (Section 8):
// for each small game the entire best-response improvement graph is
// built; an acyclic graph certifies convergence of best-response
// dynamics under *every* scheduler, and a cycle is a replayable
// counterexample. Cycle witnesses are re-verified step by step before
// being reported.
func FIP(effort Effort) (*sweep.Table, error) {
	type inst struct {
		budgets []int
		version core.Version
	}
	insts := []inst{
		{[]int{1, 1, 1}, core.SUM},
		{[]int{1, 1, 1}, core.MAX},
		{[]int{1, 1, 1, 1}, core.SUM},
		{[]int{1, 1, 1, 1}, core.MAX},
	}
	if effort == Full {
		insts = append(insts,
			inst{[]int{2, 1, 0, 0}, core.SUM},
			inst{[]int{2, 1, 0, 0}, core.MAX},
			inst{[]int{2, 1, 1, 0}, core.SUM},
			inst{[]int{2, 1, 1, 0}, core.MAX},
			inst{[]int{1, 1, 1, 1, 1}, core.SUM},
			inst{[]int{1, 1, 1, 1, 1}, core.MAX},
			inst{[]int{2, 2, 1, 1}, core.SUM},
			inst{[]int{2, 2, 1, 1}, core.MAX},
		)
	}
	type row struct {
		in  inst
		fip enumerate.FIPResult
		err error
	}
	rows := sweep.Parallel(insts, func(in inst) row {
		g := core.MustGame(in.budgets, in.version)
		fip, err := enumerate.BestResponseImprovementGraph(g, 50_000_000)
		if err == nil && !fip.HasFIP {
			err = enumerate.VerifyCycleWitness(g, fip.CycleWitness)
		}
		return row{in: in, fip: fip, err: err}
	})
	t := sweep.NewTable("Section 8 (exact): finite improvement property of best-response dynamics",
		"budgets", "version", "profiles", "moves", "equilibria", "FIP", "longest-path/cycle-len")
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		tail := r.fip.LongestPath
		if !r.fip.HasFIP {
			tail = len(r.fip.CycleWitness)
		}
		t.Addf(intsString(r.in.budgets), r.in.version.String(), r.fip.Profiles,
			r.fip.Moves, r.fip.Equilibria, yesNo(r.fip.HasFIP), tail)
	}
	return t, nil
}

func intsString(s []int) string {
	out := "("
	for i, v := range s {
		if i > 0 {
			out += ","
		}
		out += string(rune('0' + v))
	}
	return out + ")"
}
