package dynamics

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
)

// Options.Parallel must be a pure performance knob: every observable of a
// run — final graph, rounds, moves, convergence/loop flags, trajectory —
// must match the sequential engine exactly.

// forceWorkers raises GOMAXPROCS so the speculative and pooled paths are
// exercised (and race-checked) even on single-vCPU CI runners, where the
// engine would otherwise skip speculation.
func forceWorkers(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func TestRunParallelMatchesSequential(t *testing.T) {
	forceWorkers(t)
	for _, version := range []core.Version{core.SUM, core.MAX} {
		for _, responder := range []struct {
			name string
			r    core.Responder
		}{{"greedy", core.GreedyResponder}, {"swap", core.SwapResponder}} {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 10; trial++ {
				n := 4 + rng.Intn(16)
				budgets := make([]int, n)
				for i := range budgets {
					budgets[i] = rng.Intn(3)
				}
				g := core.MustGame(budgets, version)
				start := RandomProfile(g, rng)
				base := Options{Responder: responder.r, MaxRounds: 30, DetectLoops: true, RecordTrajectory: true}
				seq, err := Run(g, start, base)
				if err != nil {
					t.Fatal(err)
				}
				par := base
				par.Parallel = true
				got, err := Run(g, start, par)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, responder.name, seq, got)
			}
		}
	}
}

func TestRunSimultaneousParallelMatchesSequential(t *testing.T) {
	forceWorkers(t)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(12)
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = rng.Intn(2)
		}
		g := core.MustGame(budgets, core.SUM)
		start := RandomProfile(g, rng)
		base := Options{Responder: core.GreedyResponder, MaxRounds: 30, RecordTrajectory: true}
		seq, err := RunSimultaneous(g, start, base)
		if err != nil {
			t.Fatal(err)
		}
		par := base
		par.Parallel = true
		got, err := RunSimultaneous(g, start, par)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "simultaneous", seq, got)
	}
}

func assertSameResult(t *testing.T, label string, seq, par Result) {
	t.Helper()
	if seq.Converged != par.Converged || seq.Loop != par.Loop || seq.LoopLength != par.LoopLength ||
		seq.Rounds != par.Rounds || seq.Moves != par.Moves {
		t.Fatalf("%s: sequential %+v, parallel %+v", label, seq, par)
	}
	if !seq.Final.Equal(par.Final) {
		t.Fatalf("%s: final graphs differ:\n%v\n%v", label, seq.Final, par.Final)
	}
	if len(seq.Trajectory) != len(par.Trajectory) {
		t.Fatalf("%s: trajectory lengths differ: %d vs %d", label, len(seq.Trajectory), len(par.Trajectory))
	}
	for i := range seq.Trajectory {
		if seq.Trajectory[i] != par.Trajectory[i] {
			t.Fatalf("%s: trajectory[%d] = %d vs %d", label, i, seq.Trajectory[i], par.Trajectory[i])
		}
	}
}
