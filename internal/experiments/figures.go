package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/sweep"
)

// The figure commands are single-point jobs: each point evaluates one
// deterministic construction and stores the rows the printed figure is
// rendered from, so `bbncg -out DIR all` checkpoints (and resumes past)
// the figures exactly like the sweeps.

// ---------------------------------------------------------------------
// Figure 1

type fig1Row struct {
	Budgets []int   `json:"budgets"`
	Arcs    [][]int `json:"arcs"`
	Diam    int32   `json:"diam"`
}

func figure1Job(Effort, int64) runner.Job {
	points := []runner.Point{{Exp: "fig1", Key: "n=22,z=16,t=19"}}
	return runner.Job{Exp: "fig1", Points: points, Eval: evalFigure1}
}

// evalFigure1 rebuilds the printed Figure 1 instance of Theorem 2.3
// case 2 (n=22, z=16, t=19) and verifies it as a Nash equilibrium of
// both versions before emitting its arc list.
func evalFigure1(runner.Point) (any, error) {
	budgets := make([]int, 22)
	budgets[16] = 2
	for i := 17; i < 22; i++ {
		budgets[i] = 5
	}
	d, err := construct.Existence(budgets)
	if err != nil {
		return nil, err
	}
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		g := core.MustGame(budgets, ver)
		dev, err := g.VerifyNash(d, 0)
		if err != nil {
			return nil, err
		}
		if dev != nil {
			return nil, fmt.Errorf("figure 1 graph is not a %v equilibrium: %v", ver, dev)
		}
	}
	arcs := make([][]int, d.N())
	for u := 0; u < d.N(); u++ {
		arcs[u] = append([]int{}, d.Out(u)...)
	}
	return fig1Row{Budgets: budgets, Arcs: arcs, Diam: graph.Diameter(d.Underlying())}, nil
}

func figure1Table(rows []fig1Row) *sweep.Table {
	t := sweep.NewTable("Figure 1: Theorem 2.3 case 2 equilibrium (n=22, z=16, t=19)",
		"owner(v_i)", "arcs-to", "budget")
	for _, r := range rows {
		for u, out := range r.Arcs {
			if len(out) == 0 {
				continue
			}
			targets := ""
			for i, v := range out {
				if i > 0 {
					targets += " "
				}
				targets += fmt.Sprintf("v%d", v+1)
			}
			t.Addf(fmt.Sprintf("v%d", u+1), targets, r.Budgets[u])
		}
		t.Addf("diameter", fmt.Sprintf("%d (paper: <= 4)", r.Diam), "")
	}
	return t
}

// Figure1 reproduces the printed Figure 1 instance of Theorem 2.3 case 2
// (n=22, z=16, t=19): it rebuilds the construction, lists the arcs by
// construction phase, and verifies the result is a Nash equilibrium of
// both versions with diameter <= 4.
func Figure1() (*sweep.Table, error) {
	rows, err := runRows[fig1Row](figure1Job(Quick, 0))
	if err != nil {
		return nil, err
	}
	return figure1Table(rows), nil
}

// ---------------------------------------------------------------------
// Figure 2

type fig2Row struct {
	K          int   `json:"k"`
	N          int   `json:"n"`
	Diam       int32 `json:"diam"`
	Verified   bool  `json:"verified"`
	CentreCost int64 `json:"centreCost"`
	LegEndCost int64 `json:"legEndCost"`
}

func figure2Job(k int) runner.Job {
	points := []runner.Point{{Exp: "fig2", Key: fmt.Sprintf("k=%d", k), Data: k}}
	return runner.Job{Exp: "fig2", Points: points, Eval: evalFigure2}
}

// evalFigure2 builds the Theorem 3.2 spider for one k and verifies it
// exactly as a MAX equilibrium.
func evalFigure2(p runner.Point) (any, error) {
	k := p.Data.(int)
	d, budgets, err := construct.Spider(k)
	if err != nil {
		return nil, err
	}
	g := core.MustGame(budgets, core.MAX)
	dev, err := g.VerifyNash(d, 0)
	if err != nil {
		return nil, err
	}
	costs := g.AllCosts(d)
	return fig2Row{K: k, N: d.N(), Diam: graph.Diameter(d.Underlying()),
		Verified: dev == nil, CentreCost: costs[0], LegEndCost: costs[k]}, nil
}

func figure2Table(rows []fig2Row) *sweep.Table {
	r := rows[0]
	t := sweep.NewTable(fmt.Sprintf("Figure 2: spider tree, k=%d (n=%d)", r.K, r.N),
		"quantity", "value")
	t.Addf("legs", 3)
	t.Addf("leg length", r.K)
	t.Addf("diameter", r.Diam)
	t.Addf("paper diameter", construct.SpiderDiameter(r.K))
	t.Addf("MAX Nash verified", yesNo(r.Verified))
	t.Addf("centre local diameter", r.CentreCost)
	t.Addf("leg-end local diameter", r.LegEndCost)
	return t
}

// Figure2 reproduces Figure 2 (the Theorem 3.2 spider) for one k,
// reporting leg structure and the exact-verified equilibrium diameter.
func Figure2(k int) (*sweep.Table, error) {
	rows, err := runRows[fig2Row](figure2Job(k))
	if err != nil {
		return nil, err
	}
	return figure2Table(rows), nil
}

// ---------------------------------------------------------------------
// Figure 3

type fig3Row struct {
	K            int   `json:"k"`
	N            int   `json:"n"`
	SubtreeSizes []int `json:"subtreeSizes"`
	IneqOK       bool  `json:"ineqOK"`
	Diameter     int   `json:"diameter"`
	ImpliedBound int   `json:"impliedBound"`
}

func figure3Job(k int) runner.Job {
	points := []runner.Point{{Exp: "fig3", Key: fmt.Sprintf("k=%d", k), Data: k}}
	return runner.Job{Exp: "fig3", Points: points, Eval: evalFigure3}
}

// evalFigure3 audits the Theorem 3.4 binary tree's subtree weights
// along a longest path (inequality (1)).
func evalFigure3(p runner.Point) (any, error) {
	k := p.Data.(int)
	d, _, err := construct.PerfectBinaryTree(k)
	if err != nil {
		return nil, err
	}
	audit, err := analysis.AuditTreeSumPath(d)
	if err != nil {
		return nil, err
	}
	return fig3Row{K: k, N: d.N(), SubtreeSizes: audit.SubtreeSizes,
		IneqOK: audit.InequalityOK, Diameter: audit.Diameter,
		ImpliedBound: audit.ImpliedBound}, nil
}

func figure3Table(rows []fig3Row) *sweep.Table {
	r := rows[0]
	t := sweep.NewTable(fmt.Sprintf("Figure 3: subtree weights along a longest path (binary tree k=%d, n=%d)", r.K, r.N),
		"i", "a(i)", "sum a(k), k>i")
	suffix := 0
	suffixes := make([]int, len(r.SubtreeSizes)+1)
	for i := len(r.SubtreeSizes) - 1; i >= 0; i-- {
		suffix += r.SubtreeSizes[i]
		suffixes[i] = suffix
	}
	for i, a := range r.SubtreeSizes {
		t.Addf(i, a, suffixes[i]-a)
	}
	t.Addf("ineq(1)", yesNo(r.IneqOK), "")
	t.Addf("diameter", r.Diameter, fmt.Sprintf("<= 2t = %d", r.ImpliedBound))
	return t
}

// Figure3 reproduces the Figure 3 structure on the Theorem 3.4 binary
// tree: subtree sizes a(i) along the longest path and the inequality (1)
// audit, whose geometric growth is what caps SUM tree equilibria at
// O(log n) diameter.
func Figure3(k int) (*sweep.Table, error) {
	rows, err := runRows[fig3Row](figure3Job(k))
	if err != nil {
		return nil, err
	}
	return figure3Table(rows), nil
}
