package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestParallelOrderPreserved(t *testing.T) {
	points := make([]int, 500)
	for i := range points {
		points[i] = i
	}
	results := Parallel(points, func(x int) int { return x * x })
	for i, r := range results {
		if r != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, r, i*i)
		}
	}
}

func TestParallelEachPointOnce(t *testing.T) {
	var calls int64
	points := make([]int, 300)
	Parallel(points, func(int) int {
		atomic.AddInt64(&calls, 1)
		return 0
	})
	if calls != 300 {
		t.Fatalf("fn called %d times, want 300", calls)
	}
}

func TestParallelEmptyAndSingle(t *testing.T) {
	if got := Parallel(nil, func(int) int { return 1 }); len(got) != 0 {
		t.Fatal("empty input should give empty output")
	}
	got := Parallel([]int{7}, func(x int) int { return x + 1 })
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("single point result = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "n", "diameter")
	tb.Add("16", "4")
	tb.Add("1024", "10")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "diameter") || !strings.Contains(out, "1024") {
		t.Fatalf("cells missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableAddfFormatsFloats(t *testing.T) {
	tb := NewTable("", "x", "ratio")
	tb.Addf(3, 1.23456)
	if tb.Rows[0][1] != "1.235" {
		t.Fatalf("float cell = %q, want 1.235", tb.Rows[0][1])
	}
	if tb.Rows[0][0] != "3" {
		t.Fatalf("int cell = %q", tb.Rows[0][0])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Add("1", "2")
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestTableMismatchedRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row accepted")
		}
	}()
	NewTable("t", "a", "b").Add("only-one")
}

func TestRecoverPassesThrough(t *testing.T) {
	v, err := Recover(func() (int, error) { return 7, nil })
	if v != 7 || err != nil {
		t.Fatalf("Recover = %d, %v", v, err)
	}
	wantErr := fmt.Errorf("plain failure")
	_, err = Recover(func() (int, error) { return 0, wantErr })
	if err != wantErr {
		t.Fatalf("Recover error = %v, want pass-through", err)
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	v, err := Recover(func() (int, error) {
		panic("kaboom")
	})
	if v != 0 {
		t.Fatalf("panicked Recover returned %d, want zero value", v)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Recover error = %T %v, want *PanicError", err, err)
	}
	if pe.Value != "kaboom" || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("PanicError = %v", pe)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatal("PanicError carries no stack")
	}
}
