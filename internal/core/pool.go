package core

import (
	"os"
	"sync/atomic"

	"repro/internal/graph"
)

// Round-level distance-cache reuse. The PR 1 engine refills dist_{G-u}
// from scratch for every best-response call, so a dynamics round at n
// players pays n full matrix fills even when nothing moved. A CachePool
// keeps one cached Deviator per player alive across movers and rounds
// and lazily repairs it (Deviator.Repair: delta BFS over the edges that
// actually changed) when the graph has moved on since the entry was last
// used. Converged and converging rounds — the bulk of any dynamics run —
// then cost zero fills: each acquisition is a version check plus, at
// most, a repair proportional to the damage of the accepted moves.
//
// Generation stamps push that one level further. Every entry remembers
// the graph generation and content anchor it was last synced to
// (graph/stamp.go); a stale acquisition first consults the stamps — an
// unchanged generation or matching anchor proves the entry is exact and
// skips even the O(n+m) UnderlyingWithout rebuild + DiffUnd, and the
// mutation journal hands Repair the exact edge delta when only a few
// movers touched the graph. A settled round is then O(movers), not
// O(players): untouched players cost a stamp comparison each. Setting
// BBNCG_STAMPS=0 restores the diff-always resync path (results are
// identical either way).
//
// Admission is static: players are pooled first-come within the byte
// budget, and everyone else gets a plain per-call Deviator. Dynamics
// visit players cyclically, for which any evict-on-admission policy
// (LRU included) degenerates to zero hits plus churn; a static resident
// set keeps budget/per players at full repair speed and leaves the rest
// exactly as fast as the refill baseline.
//
// Concurrency contract: all pool methods are single-goroutine (the
// dynamics engine's main loop), except that one Prefetch resync may run
// concurrently with the current responder — the caller must wait on the
// returned handle before its next pool call or graph mutation. Acquired
// Deviators may be handed to concurrent workers — each is used by
// exactly one goroutine — and the pool never touches an entry's matrices
// between Acquire waves (only Close recycles them), so a worker can
// never observe its matrix being repaired or recycled mid-response.
// Stats counters are atomics, so Stats is safe to read at any time.

// DefaultPoolBudget caps the total bytes of distance matrices a
// CachePool keeps alive: 1 GiB, i.e. every player of an n ≈ 500 game or
// the first ~budget/(4n²) players beyond that. The bbncg -poolmb flag
// overrides it. The budget charges the matrices (rows + inMin) only;
// stable MAX entries additionally hold bitset level sets — about
// (diam+1)/32 of the matrix bytes on top — so operators sizing the
// budget to a machine should leave that headroom.
var DefaultPoolBudget int64 = 1 << 30

// IncrementalEnabled reports whether the incremental cache-reuse path
// is on (the default). Setting BBNCG_INCREMENTAL=0 disables it — the
// engines fall back to refill-per-mover — for A/B benchmarking; results
// are identical either way.
func IncrementalEnabled() bool { return os.Getenv("BBNCG_INCREMENTAL") != "0" }

// StampsEnabled reports whether generation-stamped cache resync is on
// (the default). Setting BBNCG_STAMPS=0 restores the diff-always
// acquisition path — every stale entry pays the UnderlyingWithout
// rebuild + DiffUnd — for A/B benchmarking; results are identical
// either way. Pools snapshot the knob at construction.
func StampsEnabled() bool { return os.Getenv("BBNCG_STAMPS") != "0" }

// PoolStats counts what a CachePool did over its lifetime.
type PoolStats struct {
	Acquires int64 // total Acquire calls
	Hits     int64 // acquisitions served from a live entry
	Fills    int64 // entries built by a full matrix fill
	Repairs  int64 // acquisitions that ran a repair (delta or resync)
	Unpooled int64 // acquisitions served by a plain Deviator (over budget or closed)

	RowsPatched  int64 // matrix rows repaired by improvement-only BFS
	RowsRefilled int64 // matrix rows recomputed by fresh BFS
	FullRefills  int64 // repairs that fell back to a whole-matrix refill

	StampSkips   int64 // stale acquisitions settled by stamps alone (no rebuild, no diff)
	DeltaRepairs int64 // repairs fed the exact journal delta (no rebuild, no diff)
	Resyncs      int64 // repairs that fell back to UnderlyingWithout + DiffUnd
	MemoHits     int64 // best-response scans skipped by the round-level memo
	Prefetches   int64 // speculative next-mover resyncs completed
}

// poolCounters is the atomic mirror of PoolStats (satellite of the
// speculative-parallel path: the prefetch goroutine and any concurrent
// Stats reader must not race the main loop's increments).
type poolCounters struct {
	acquires, hits, fills, repairs, unpooled atomic.Int64
	rowsPatched, rowsRefilled, fullRefills   atomic.Int64
	stampSkips, deltaRepairs, resyncs        atomic.Int64
	memoHits, prefetches                     atomic.Int64
}

// CachePool keeps per-player cached Deviators alive across the rounds of
// a dynamics run (or any other sequence of locally-mutated graphs).
type CachePool struct {
	game   *Game
	budget int64
	per    int64 // bytes per cached player: 4·n·(n+1)
	// used is atomic only so external monitors (bbncg serve's memory
	// governor) can read it without the single-goroutine pool lock; all
	// writers are the pool's owning goroutine.
	used    atomic.Int64
	version int64 // bumped by Invalidate
	entries map[int]*poolEntry
	resp    []respEntry // round-level best-response memo, indexed by player
	stamps  bool        // StampsEnabled() snapshot at construction
	closed  bool
	ctr     poolCounters

	// wts makes this a weighted pool (NewWeightedCachePool): entries are
	// weighted Deviators whose rows hold offset-adjusted weighted
	// distances. Weight mutations are a second staleness stream beside
	// the pool version — entries remember the weights generation they
	// were synced to (Deviator.wgen), so weight-only changes need no
	// Invalidate call and settled rounds still cost one comparison per
	// untouched player.
	wts *graph.Weights
}

type poolEntry struct {
	dv      *Deviator
	version int64

	// Stamp state: the graph instance and generation the entry was last
	// synced against, plus its content anchor (matches any clone of the
	// same arc set).
	graph *graph.Digraph
	gen   int64
	aid   uint64
	agen  int64
}

// respEntry memoises "player u had no improving move against the graph
// whose anchor was (aid, agen)". Any mutation moves the anchor, so a
// match proves G−u, in(u) and out(u) are all unchanged since that
// answer — the scan would reproduce it verbatim. Weighted pools record
// the weights generation too: weight-only mutations move no graph
// anchor but do move costs.
type respEntry struct {
	ok   bool
	aid  uint64
	agen int64
	wgen int64
}

// NewCachePool returns a pool for g bounded by budgetBytes (<= 0 means
// DefaultPoolBudget).
func NewCachePool(g *Game, budgetBytes int64) *CachePool {
	if budgetBytes <= 0 {
		budgetBytes = DefaultPoolBudget
	}
	n := int64(g.N())
	return &CachePool{
		game:    g,
		budget:  budgetBytes,
		per:     4 * n * (n + 1),
		entries: make(map[int]*poolEntry),
		stamps:  StampsEnabled(),
	}
}

// NewWeightedCachePool returns a pool whose entries evaluate under arc
// weights wts (nil wts degrades to NewCachePool). Weighted entries
// additionally hold the n-entry offset vector, charged to the budget.
func NewWeightedCachePool(g *Game, budgetBytes int64, wts *graph.Weights) *CachePool {
	p := NewCachePool(g, budgetBytes)
	if wts != nil {
		p.wts = wts
		n := int64(g.N())
		p.per = 4 * n * (n + 2)
	}
	return p
}

// Invalidate marks the graph as changed — an accepted move, or a whole
// graph swap in the profile-enumeration harnesses: every pooled entry
// is stale and will be resynced on its next acquisition. Staleness is
// pool-wide, not per-mover; with stamps on the resync is a generation
// comparison for untouched players, and without them an O(n+m) diff, so
// over-invalidation stays cheap either way. Nil-safe and a no-op after
// Close so disabled-pool call sites stay branchless.
func (p *CachePool) Invalidate() {
	if p != nil && !p.closed {
		p.version++
	}
}

// record stamps e as synced to d's current state.
func (p *CachePool) record(e *poolEntry, d *graph.Digraph) {
	e.graph = d
	e.gen = d.Gen()
	e.aid, e.agen = d.Anchor()
}

// Acquire returns a Deviator for player u evaluating against d, synced
// to d's current state: a pooled entry is repaired in place if stale, a
// new entry is built if the budget still has room, and a plain uncached
// Deviator is returned otherwise (always after Close). The caller must
// Release the Deviator when done with it and must not use it across the
// pool's next Acquire wave for the same player.
func (p *CachePool) Acquire(d *graph.Digraph, u int) *Deviator {
	p.ctr.acquires.Add(1)
	if p.closed {
		p.ctr.unpooled.Add(1)
		return NewWeightedDeviator(p.game, d, u, p.wts)
	}
	if e, ok := p.entries[u]; ok {
		if e.version != p.version {
			p.resync(e, d)
			e.version = p.version
		} else if p.wts != nil && e.dv.wgen != p.wts.Gen() {
			// Graph untouched but weights moved on: sync the rows from the
			// weights change log. Counted as a repair, never a resync — the
			// topology ladder is not involved.
			e.dv.syncWeights()
			p.ctr.repairs.Add(1)
		} else {
			e.dv.noteStable() // untouched graph: strongest stability signal
		}
		p.ctr.hits.Add(1)
		return e.dv
	}
	dv := NewWeightedDeviator(p.game, d, u, p.wts)
	if p.used.Load()+p.per > p.budget || !dv.EnsureCache(p.per) {
		p.ctr.unpooled.Add(1)
		return dv // over budget: behaves like a plain Deviator
	}
	dv.pool = p
	p.used.Add(p.per)
	e := &poolEntry{dv: dv, version: p.version}
	p.record(e, d)
	p.entries[u] = e
	p.ctr.fills.Add(1)
	return dv
}

// resync brings a stale entry in step with d, cheapest proof first:
// stamp skip (same instance and generation, or matching content anchor
// across clones) → journal delta repair → full rebuild + diff.
func (p *CachePool) resync(e *poolEntry, d *graph.Digraph) {
	if p.wts != nil && e.dv.wgen != p.wts.Gen() {
		// Weight deltas land first, against the topology the rows still
		// describe (Repair/RepairDelta would do the same internally; doing
		// it here keeps the stamp-skip exits exact too).
		e.dv.syncWeights()
		p.ctr.repairs.Add(1)
	}
	if p.stamps && e.graph != nil {
		if e.graph == d {
			if e.gen == d.Gen() {
				e.dv.noteStable()
				p.ctr.stampSkips.Add(1)
				return
			}
			removed, added, inTouched, ok := d.DeltaSince(e.gen, e.dv.u)
			if ok && !inTouched {
				if len(removed)+len(added) == 0 {
					e.dv.noteStable()
					p.ctr.stampSkips.Add(1)
				} else {
					st := e.dv.RepairDelta(removed, added)
					p.ctr.deltaRepairs.Add(1)
					p.ctr.repairs.Add(1)
					p.noteRepair(st)
				}
				p.record(e, d)
				return
			}
		} else if aid, agen := d.Anchor(); aid == e.aid && agen == e.agen {
			// A different instance (a fresh clone) with the same content
			// anchor: identical arc set, nothing to do.
			e.dv.noteStable()
			p.ctr.stampSkips.Add(1)
			p.record(e, d)
			return
		}
	}
	st := e.dv.Repair(d)
	p.ctr.resyncs.Add(1)
	p.ctr.repairs.Add(1)
	p.noteRepair(st)
	p.record(e, d)
}

func (p *CachePool) noteRepair(st graph.RepairStats) {
	p.ctr.rowsPatched.Add(int64(st.RowsPatched))
	p.ctr.rowsRefilled.Add(int64(st.RowsRefilled))
	if st.FullRefill {
		p.ctr.fullRefills.Add(1)
	}
}

// SkipResponse reports whether player u's whole best-response scan can
// be skipped: the round-level memo proves the graph is anchored exactly
// where it was when u last answered "no improving move", so the scan
// would return the same answer. The caller must treat a true return as
// a non-improving BestResponse (the zero value).
func (p *CachePool) SkipResponse(d *graph.Digraph, u int) bool {
	if p == nil || p.closed || !p.stamps || p.resp == nil {
		return false
	}
	r := p.resp[u]
	if !r.ok {
		return false
	}
	if p.wts != nil && r.wgen != p.wts.Gen() {
		return false
	}
	if aid, agen := d.Anchor(); aid == r.aid && agen == r.agen {
		p.ctr.memoHits.Add(1)
		return true
	}
	return false
}

// NoteResponse records the outcome of player u's best-response scan
// against d (before any accepted move is applied): a non-improving
// answer is memoised under the graph's current anchor, an improving one
// clears the memo (u is about to rewire).
func (p *CachePool) NoteResponse(d *graph.Digraph, u int, improved bool) {
	if p == nil || p.closed || !p.stamps {
		return
	}
	if p.resp == nil {
		p.resp = make([]respEntry, p.game.N())
	}
	if improved {
		p.resp[u] = respEntry{}
		return
	}
	aid, agen := d.Anchor()
	e := respEntry{ok: true, aid: aid, agen: agen}
	if p.wts != nil {
		e.wgen = p.wts.Gen()
	}
	p.resp[u] = e
}

// ResetResponseMemo clears the round-level best-response memo. Engines
// call it when adopting an external pool: the memo may have been
// recorded by a different responder, whose "no improving move" answers
// do not transfer. Nil-safe, no-op after Close.
func (p *CachePool) ResetResponseMemo() {
	if p != nil && !p.closed {
		p.resp = nil
	}
}

// Prefetch starts a speculative resync of player u's pooled entry
// against d on a fresh goroutine, so the predicted next mover's repair
// overlaps the current responder's scan. It returns a wait handle the
// caller MUST invoke before its next pool call, Release of u's
// Deviator, or any mutation of d — or nil when there is nothing to
// prefetch (no pooled entry, entry already current, pool closed, or
// stamps off).
func (p *CachePool) Prefetch(d *graph.Digraph, u int) func() {
	if p == nil || p.closed || !p.stamps {
		return nil
	}
	e, ok := p.entries[u]
	if !ok || e.version == p.version {
		return nil
	}
	version := p.version
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.resync(e, d)
		e.version = version
		p.ctr.prefetches.Add(1)
	}()
	return func() { <-done }
}

// Close recycles every pooled matrix into the global allocator and
// marks the pool closed: further Invalidate/Acquire/Stats calls and a
// second Close are defined no-ops that never touch the recycled
// matrices (Acquire degrades to handing out plain Deviators). Nil-safe.
func (p *CachePool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	for u, e := range p.entries {
		e.dv.releaseOwned()
		delete(p.entries, u)
	}
	p.used.Store(0)
	p.resp = nil
}

// BytesUsed returns the bytes of distance matrices currently held by
// pooled entries. Like Stats it is safe to read at any time from any
// goroutine — the serve memory governor polls it across sessions while
// their pools are in use. Nil-safe.
func (p *CachePool) BytesUsed() int64 {
	if p == nil {
		return 0
	}
	return p.used.Load()
}

// BytesBudget returns the pool's byte budget (fixed at construction).
// Nil-safe.
func (p *CachePool) BytesBudget() int64 {
	if p == nil {
		return 0
	}
	return p.budget
}

// Stats returns the pool's lifetime counters. Safe to call at any time,
// including after Close and concurrently with a running Prefetch.
func (p *CachePool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{
		Acquires:     p.ctr.acquires.Load(),
		Hits:         p.ctr.hits.Load(),
		Fills:        p.ctr.fills.Load(),
		Repairs:      p.ctr.repairs.Load(),
		Unpooled:     p.ctr.unpooled.Load(),
		RowsPatched:  p.ctr.rowsPatched.Load(),
		RowsRefilled: p.ctr.rowsRefilled.Load(),
		FullRefills:  p.ctr.fullRefills.Load(),
		StampSkips:   p.ctr.stampSkips.Load(),
		DeltaRepairs: p.ctr.deltaRepairs.Load(),
		Resyncs:      p.ctr.resyncs.Load(),
		MemoHits:     p.ctr.memoHits.Load(),
		Prefetches:   p.ctr.prefetches.Load(),
	}
}
