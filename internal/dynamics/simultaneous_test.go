package dynamics

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestSimultaneousConvergesOnEquilibrium(t *testing.T) {
	d := graph.StarGraph(5)
	g := core.GameOf(d, core.SUM)
	res, err := RunSimultaneous(g, d, Options{Responder: core.ExactResponder(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Moves != 0 {
		t.Fatalf("star simultaneous run = %+v", res)
	}
}

func TestSimultaneousTerminatesWithVerdict(t *testing.T) {
	// From random starts, simultaneous dynamics must either converge or
	// report an exact loop within the round budget on these tiny games.
	rng := rand.New(rand.NewSource(8))
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		g := core.UniformGame(6, 1, ver)
		verdicts := 0
		for trial := 0; trial < 10; trial++ {
			res, err := RunSimultaneous(g, RandomProfile(g, rng), Options{
				Responder: core.ExactResponder(0),
				MaxRounds: 400,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Converged || res.Loop {
				verdicts++
			}
			if res.Converged {
				dev, err := g.VerifyNash(res.Final, 0)
				if err != nil {
					t.Fatal(err)
				}
				if dev != nil {
					t.Fatalf("%v: simultaneous fixed point not Nash: %v", ver, dev)
				}
			}
		}
		if verdicts == 0 {
			t.Fatalf("%v: no verdict in any trial", ver)
		}
	}
}

func TestSimultaneousValidation(t *testing.T) {
	d := graph.PathGraph(4)
	g := core.GameOf(d, core.SUM)
	if _, err := RunSimultaneous(g, d, Options{}); err == nil {
		t.Fatal("missing responder accepted")
	}
	wrong := core.MustGame([]int{2, 1, 1, 0}, core.SUM)
	if _, err := RunSimultaneous(wrong, d, Options{Responder: core.ExactResponder(0)}); err == nil {
		t.Fatal("realization mismatch accepted")
	}
}

func TestSimultaneousCanLoop(t *testing.T) {
	// Forced oscillation: both players of a 3-vertex game flip between
	// two strategies in lockstep; the loop detector must fire.
	d := graph.NewDigraph(3)
	d.AddArc(0, 1)
	d.AddArc(1, 0)
	g := core.MustGame([]int{1, 1, 0}, core.SUM)
	flip := func(_ *core.Game, cur *graph.Digraph, u int) core.BestResponse {
		if u == 2 {
			return core.BestResponse{Strategy: nil, Cost: 0, Current: 0}
		}
		other := 1 - u
		next := []int{other}
		if cur.HasArc(u, other) {
			next = []int{2}
		}
		return core.BestResponse{Strategy: next, Cost: 0, Current: 1}
	}
	res, err := RunSimultaneous(g, d, Options{Responder: flip, MaxRounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Loop || res.LoopLength != 2 {
		t.Fatalf("expected 2-loop, got %+v", res)
	}
}

func TestWelfareTrace(t *testing.T) {
	d := graph.PathGraph(7)
	g := core.GameOf(d, core.SUM)
	trace, res, err := WelfareTrace(g, d, Options{Responder: core.ExactResponder(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("welfare trace run did not converge: %+v", res)
	}
	if len(trace) != res.Rounds+1 {
		t.Fatalf("trace length %d for %d rounds", len(trace), res.Rounds)
	}
	// Selfish improvement from a path should also improve total welfare
	// here (not guaranteed in general, asserted only for this instance).
	if trace[len(trace)-1] >= trace[0] {
		t.Fatalf("welfare did not improve: %v", trace)
	}
}

func TestWelfareTraceValidation(t *testing.T) {
	d := graph.PathGraph(4)
	g := core.GameOf(d, core.SUM)
	if _, _, err := WelfareTrace(g, d, Options{}); err == nil {
		t.Fatal("missing responder accepted")
	}
}
