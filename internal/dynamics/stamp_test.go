package dynamics

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// Stamped dynamics (generation-stamped pool resync, journal delta
// repair, round memo, prefetch) must reproduce the diff-always path
// exactly: same moves, same rounds, same final profile, across engines,
// versions, responder pairs, and the parallel speculative path.
func TestStampedDynamicsMatchesDiffAlways(t *testing.T) {
	pairs := []struct {
		name   string
		plain  core.Responder
		cached core.DeviatorResponder
	}{
		{"exact", core.ExactResponder(0), core.ExactDeviatorResponder(0)},
		{"greedy", core.GreedyResponder, core.GreedyDeviatorResponder},
		{"swap", core.SwapResponder, core.SwapDeviatorResponder},
	}
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		for _, p := range pairs {
			for _, parallel := range []bool{false, true} {
				for seed := int64(0); seed < 2; seed++ {
					name := fmt.Sprintf("%v/%s/par=%v/seed=%d", ver, p.name, parallel, seed)
					t.Run(name, func(t *testing.T) {
						if parallel {
							forceWorkers(t)
						}
						g := core.UniformGame(10, 1, ver)
						start := RandomProfile(g, rand.New(rand.NewSource(seed)))
						opts := Options{
							Responder: p.plain, Cached: p.cached,
							DetectLoops: true, MaxRounds: 200, Parallel: parallel,
						}
						t.Setenv("BBNCG_STAMPS", "1")
						stamped, err := Run(g, start, opts)
						if err != nil {
							t.Fatal(err)
						}
						stampedSim, err := RunSimultaneous(g, start, opts)
						if err != nil {
							t.Fatal(err)
						}
						t.Setenv("BBNCG_STAMPS", "0")
						diffed, err := Run(g, start, opts)
						if err != nil {
							t.Fatal(err)
						}
						diffedSim, err := RunSimultaneous(g, start, opts)
						if err != nil {
							t.Fatal(err)
						}
						assertSameResult(t, "Run", stamped, diffed)
						assertSameResult(t, "RunSimultaneous", stampedSim, diffedSim)
					})
				}
			}
		}
	}
}

// The O(movers) invariant: once a run has converged, re-running it over
// a warm external pool must touch no player's matrix at all — zero
// resyncs, zero delta repairs, only stamp skips and memo hits.
func TestSettledRoundZeroResyncs(t *testing.T) {
	g := core.UniformGame(24, 1, core.SUM)
	start := RandomProfile(g, rand.New(rand.NewSource(5)))
	pool := core.NewCachePool(g, 0)
	defer pool.Close()
	opts := Options{
		Responder: core.GreedyResponder, Cached: core.GreedyDeviatorResponder,
		MaxRounds: 400, Pool: pool,
	}
	pre, err := Run(g, start, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Converged {
		t.Fatal("run did not converge")
	}
	settled := pre.Final
	warm, err := Run(g, settled, opts) // warm-up: entries resync to the settled clone lineage
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged || warm.Moves != 0 {
		t.Fatalf("settled profile moved: %+v", warm)
	}
	before := pool.Stats()
	res, err := Run(g, settled, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Moves != 0 {
		t.Fatalf("settled profile moved: %+v", res)
	}
	after := pool.Stats()
	if d := after.Resyncs - before.Resyncs; d != 0 {
		t.Fatalf("settled round ran %d resyncs, want 0 (stats %+v)", d, after)
	}
	if d := after.DeltaRepairs - before.DeltaRepairs; d != 0 {
		t.Fatalf("settled round ran %d delta repairs, want 0", d)
	}
	if after.StampSkips+after.MemoHits <= before.StampSkips+before.MemoHits {
		t.Fatalf("settled round exercised no stamp fast path (stats %+v)", after)
	}
}

// The -race test of Options.Parallel + Options.Cached together
// (atomic-stats satellite): speculative waves, prefetch goroutines and
// concurrent Stats reads all interleave over one external pool shared
// by consecutive runs, with a budget too small to pool every player.
// Results must still match the plain sequential path exactly.
func TestStampedParallelCachedRace(t *testing.T) {
	forceWorkers(t)
	n := 16
	g := core.UniformGame(n, 2, core.MAX)
	// Room for only 5 of 16 matrices: pooled and unpooled players mix.
	pool := core.NewCachePool(g, 5*4*int64(n)*int64(n+1))
	defer pool.Close()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 3; trial++ {
		start := RandomProfile(g, rng)
		inc := Options{
			Responder: core.GreedyResponder, Cached: core.GreedyDeviatorResponder,
			Parallel: true, Pool: pool, MaxRounds: 60, DetectLoops: true,
		}
		done := make(chan struct{})
		go func() { // concurrent Stats reader: legal at any time
			defer close(done)
			for i := 0; i < 100; i++ {
				_ = pool.Stats()
			}
		}()
		got, err := Run(g, start, inc)
		<-done
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(g, start, Options{Responder: core.GreedyResponder, MaxRounds: 60, DetectLoops: true})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, fmt.Sprintf("trial %d", trial), got, want)
	}
	if st := pool.Stats(); st.Acquires == 0 || st.Hits == 0 {
		t.Fatalf("pool unused: %+v", pool.Stats())
	}
}
