package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveArc(t *testing.T) {
	g := NewDigraph(4)
	if !g.AddArc(0, 1) {
		t.Fatal("AddArc(0,1) should report new")
	}
	if g.AddArc(0, 1) {
		t.Fatal("duplicate AddArc should report false")
	}
	if !g.HasArc(0, 1) || g.HasArc(1, 0) {
		t.Fatal("arc direction mishandled")
	}
	if g.ArcCount() != 1 {
		t.Fatalf("ArcCount = %d, want 1", g.ArcCount())
	}
	if !g.RemoveArc(0, 1) {
		t.Fatal("RemoveArc should report true")
	}
	if g.RemoveArc(0, 1) {
		t.Fatal("second RemoveArc should report false")
	}
	if g.ArcCount() != 0 {
		t.Fatalf("ArcCount = %d after removal, want 0", g.ArcCount())
	}
}

func TestOutListsSorted(t *testing.T) {
	g := NewDigraph(6)
	for _, v := range []int{5, 2, 4, 1, 3} {
		g.AddArc(0, v)
	}
	out := g.Out(0)
	for i := 1; i < len(out); i++ {
		if out[i-1] >= out[i] {
			t.Fatalf("out list not strictly sorted: %v", out)
		}
	}
}

func TestSetOutDedup(t *testing.T) {
	g := NewDigraph(5)
	g.SetOut(2, []int{4, 1, 4, 3, 1})
	want := []int{1, 3, 4}
	got := g.Out(2)
	if len(got) != len(want) {
		t.Fatalf("SetOut kept duplicates: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SetOut = %v, want %v", got, want)
		}
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddArc(1,1) should panic")
		}
	}()
	NewDigraph(3).AddArc(1, 1)
}

func TestSetOutSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetOut with self-loop should panic")
		}
	}()
	NewDigraph(3).SetOut(1, []int{0, 1})
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddArc out of range should panic")
		}
	}()
	NewDigraph(3).AddArc(0, 3)
}

func TestInAndInLists(t *testing.T) {
	g := NewDigraph(5)
	g.AddArc(1, 0)
	g.AddArc(3, 0)
	g.AddArc(2, 4)
	in0 := g.In(0)
	if len(in0) != 2 || in0[0] != 1 || in0[1] != 3 {
		t.Fatalf("In(0) = %v, want [1 3]", in0)
	}
	lists := g.InLists()
	if len(lists[0]) != 2 || len(lists[4]) != 1 || lists[4][0] != 2 {
		t.Fatalf("InLists wrong: %v", lists)
	}
	if lists[1] != nil || lists[2] != nil || lists[3] != nil {
		t.Fatalf("InLists nonempty where it should be empty: %v", lists)
	}
}

func TestBraces(t *testing.T) {
	g := NewDigraph(4)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	g.AddArc(2, 3)
	if !g.IsBrace(0, 1) || !g.IsBrace(1, 0) {
		t.Fatal("brace {0,1} not detected")
	}
	if g.IsBrace(2, 3) {
		t.Fatal("single arc misreported as brace")
	}
	bs := g.Braces()
	if len(bs) != 1 || bs[0] != [2]int{0, 1} {
		t.Fatalf("Braces = %v, want [[0 1]]", bs)
	}
}

func TestCloneEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomOutDigraph([]int{2, 1, 3, 0, 2}, rng)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.AddArc(3, 0)
	if g.Equal(c) {
		t.Fatal("mutating clone affected equality check")
	}
	if g.HasArc(3, 0) {
		t.Fatal("mutating clone mutated original")
	}
}

func TestEqualDifferentN(t *testing.T) {
	if NewDigraph(3).Equal(NewDigraph(4)) {
		t.Fatal("graphs of different order compare equal")
	}
}

func TestStringSmoke(t *testing.T) {
	g := NewDigraph(3)
	g.AddArc(0, 2)
	if s := g.String(); s == "" {
		t.Fatal("String() empty")
	}
}

// Property: for random graphs, u appears in InLists()[v] iff HasArc(u,v).
func TestInListsMatchesHasArc(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = rng.Intn(n)
		}
		g := RandomOutDigraph(budgets, rng)
		in := g.InLists()
		present := make(map[[2]int]bool)
		for v, owners := range in {
			for _, u := range owners {
				present[[2]int{u, v}] = true
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				if g.HasArc(u, v) != present[[2]int{u, v}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
