package core

import (
	"os"

	"repro/internal/graph"
)

// Round-level distance-cache reuse. The PR 1 engine refills dist_{G-u}
// from scratch for every best-response call, so a dynamics round at n
// players pays n full matrix fills even when nothing moved. A CachePool
// keeps one cached Deviator per player alive across movers and rounds
// and lazily repairs it (Deviator.Repair: delta BFS over the edges that
// actually changed) when the graph has moved on since the entry was last
// used. Converged and converging rounds — the bulk of any dynamics run —
// then cost zero fills: each acquisition is a version check plus, at
// most, a repair proportional to the damage of the accepted moves.
//
// Admission is static: players are pooled first-come within the byte
// budget, and everyone else gets a plain per-call Deviator. Dynamics
// visit players cyclically, for which any evict-on-admission policy
// (LRU included) degenerates to zero hits plus churn; a static resident
// set keeps budget/per players at full repair speed and leaves the rest
// exactly as fast as the refill baseline.
//
// Concurrency contract: all pool methods are single-goroutine (the
// dynamics engine's main loop). Acquired Deviators may be handed to
// concurrent workers — each is used by exactly one goroutine — and the
// pool never touches an entry's matrices between Acquire waves (only
// Close recycles them), so a worker can never observe its matrix being
// repaired or recycled mid-response.

// DefaultPoolBudget caps the total bytes of distance matrices a
// CachePool keeps alive: 1 GiB, i.e. every player of an n ≈ 500 game or
// the first ~budget/(4n²) players beyond that. The bbncg -poolmb flag
// overrides it. The budget charges the matrices (rows + inMin) only;
// stable MAX entries additionally hold bitset level sets — about
// (diam+1)/32 of the matrix bytes on top — so operators sizing the
// budget to a machine should leave that headroom.
var DefaultPoolBudget int64 = 1 << 30

// IncrementalEnabled reports whether the incremental cache-reuse path
// is on (the default). Setting BBNCG_INCREMENTAL=0 disables it — the
// engines fall back to refill-per-mover — for A/B benchmarking; results
// are identical either way.
func IncrementalEnabled() bool { return os.Getenv("BBNCG_INCREMENTAL") != "0" }

// PoolStats counts what a CachePool did over its lifetime.
type PoolStats struct {
	Acquires int64 // total Acquire calls
	Hits     int64 // acquisitions served from a live entry
	Fills    int64 // entries built by a full matrix fill
	Repairs  int64 // acquisitions that ran a Repair
	Unpooled int64 // acquisitions served by a plain Deviator (over budget)

	RowsPatched  int64 // matrix rows repaired by improvement-only BFS
	RowsRefilled int64 // matrix rows recomputed by fresh BFS
	FullRefills  int64 // repairs that fell back to a whole-matrix refill
}

// CachePool keeps per-player cached Deviators alive across the rounds of
// a dynamics run (or any other sequence of locally-mutated graphs).
type CachePool struct {
	game    *Game
	budget  int64
	per     int64 // bytes per cached player: 4·n·(n+1)
	used    int64
	version int64 // bumped by Invalidate
	entries map[int]*poolEntry
	stats   PoolStats
}

type poolEntry struct {
	dv      *Deviator
	version int64
}

// NewCachePool returns a pool for g bounded by budgetBytes (<= 0 means
// DefaultPoolBudget).
func NewCachePool(g *Game, budgetBytes int64) *CachePool {
	if budgetBytes <= 0 {
		budgetBytes = DefaultPoolBudget
	}
	n := int64(g.N())
	return &CachePool{
		game:    g,
		budget:  budgetBytes,
		per:     4 * n * (n + 1),
		entries: make(map[int]*poolEntry),
	}
}

// Invalidate marks the graph as changed — an accepted move, or a whole
// graph swap in the profile-enumeration harnesses: every pooled entry
// is stale and will be repaired on its next acquisition. Staleness is
// pool-wide, not per-mover (repairs diff the actual adjacency, so
// over-invalidation costs only an O(n+m) diff). Nil-safe so
// disabled-pool call sites stay branchless.
func (p *CachePool) Invalidate() {
	if p != nil {
		p.version++
	}
}

// Acquire returns a Deviator for player u evaluating against d, synced
// to d's current state: a pooled entry is repaired in place if stale, a
// new entry is built if the budget still has room, and a plain uncached
// Deviator is returned otherwise. The caller must Release the Deviator
// when done with it and must not use it across the pool's next Acquire
// wave for the same player.
func (p *CachePool) Acquire(d *graph.Digraph, u int) *Deviator {
	p.stats.Acquires++
	if e, ok := p.entries[u]; ok {
		if e.version != p.version {
			st := e.dv.Repair(d)
			e.version = p.version
			p.stats.Repairs++
			p.stats.RowsPatched += int64(st.RowsPatched)
			p.stats.RowsRefilled += int64(st.RowsRefilled)
			if st.FullRefill {
				p.stats.FullRefills++
			}
		} else {
			e.dv.noteStable() // untouched graph: strongest stability signal
		}
		p.stats.Hits++
		return e.dv
	}
	dv := NewDeviator(p.game, d, u)
	if p.used+p.per > p.budget || !dv.EnsureCache(p.per) {
		p.stats.Unpooled++
		return dv // over budget: behaves like a plain Deviator
	}
	dv.pool = p
	p.used += p.per
	p.entries[u] = &poolEntry{dv: dv, version: p.version}
	p.stats.Fills++
	return dv
}

// Close recycles every pooled matrix into the global allocator. Nil-safe.
func (p *CachePool) Close() {
	if p == nil {
		return
	}
	for u, e := range p.entries {
		e.dv.releaseOwned()
		delete(p.entries, u)
	}
	p.used = 0
}

// Stats returns the pool's lifetime counters.
func (p *CachePool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return p.stats
}
