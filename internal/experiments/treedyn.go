package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/sweep"
)

type treedynCell struct {
	ver    core.Version
	n      int
	trials int
}

type treedynRow struct {
	Version    string  `json:"version"`
	N          int     `json:"n"`
	Converged  int     `json:"converged"`
	Trees      int     `json:"trees"`
	IneqOK     int     `json:"ineqOK"`
	Diams      []int64 `json:"diams"`
	WorstRatio float64 `json:"worstRatio"`
}

func treeDynamicsJob(effort Effort, seed int64) runner.Job {
	ns := []int{8, 12}
	trials := 5
	if effort == Full {
		ns = []int{8, 12, 16, 24, 32}
		trials = 12
	}
	var points []runner.Point
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		for _, n := range ns {
			points = append(points, runner.Point{Exp: "treedyn",
				Key:  fmt.Sprintf("ver=%v,n=%d,trials=%d", ver, n, trials),
				Seed: seed, Data: treedynCell{ver: ver, n: n, trials: trials}})
		}
	}
	return runner.Job{Exp: "treedyn", Points: points, Eval: evalTreeDynamics}
}

// evalTreeDynamics drives random Tree-BG instances of one (version, n)
// cell to equilibrium and audits every converged profile.
func evalTreeDynamics(p runner.Point) (any, error) {
	c := p.Data.(treedynCell)
	rng := rand.New(rand.NewSource(p.Seed + int64(c.n)*17 + int64(c.ver)))
	logBound := 2*math.Log2(float64(c.n)) + 2
	r := treedynRow{Version: c.ver.String(), N: c.n}
	for trial := 0; trial < c.trials; trial++ {
		budgets := randomTreeBudgets(c.n, rng)
		g := core.MustGame(budgets, c.ver)
		out, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
			Responder:   core.ExactResponder(0),
			Cached:      core.ExactDeviatorResponder(0),
			DetectLoops: true,
			MaxRounds:   1500,
		})
		if err != nil {
			return nil, err
		}
		if !out.Converged {
			continue
		}
		r.Converged++
		a := out.Final.Underlying()
		diam := graph.Diameter(a)
		r.Diams = append(r.Diams, int64(diam))
		isTree := graph.IsConnected(a) && a.EdgeCount() == c.n-1 && len(out.Final.Braces()) == 0
		if isTree {
			r.Trees++
			audit, err := analysis.AuditTreeSumPath(out.Final)
			if err == nil && audit.InequalityOK {
				r.IneqOK++
			}
		}
		if ratio := float64(diam) / logBound; ratio > r.WorstRatio {
			r.WorstRatio = ratio
		}
	}
	return r, nil
}

func treeDynamicsTable(rows []treedynRow) *sweep.Table {
	t := sweep.NewTable("Tree-BG dynamics: random budget vectors with total n-1",
		"version", "n", "converged", "trees", "ineq(1)-holds", "diameter", "2log2(n)+2", "worst/bound")
	for _, r := range rows {
		t.Addf(r.Version, r.N, r.Converged, r.Trees, r.IneqOK,
			stats.Summarize(r.Diams).MeanStd(), 2*math.Log2(float64(r.N))+2, r.WorstRatio)
	}
	return t
}

// TreeDynamics probes the Trees row of Table 1 beyond the two canonical
// constructions: random Tree-BG budget vectors (total exactly n-1) are
// driven to equilibrium by exact best-response dynamics. Every converged
// SUM profile must be a tree (Lemma 3.1 + edge count), satisfy Theorem
// 3.3's inequality (1) along its longest path, and have diameter within
// the O(log n) regime; MAX equilibria are reported for contrast (they
// may legally be much deeper — the spider shows Theta(n) is possible).
func TreeDynamics(effort Effort, seed int64) (*sweep.Table, error) {
	rows, err := runRows[treedynRow](treeDynamicsJob(effort, seed))
	if err != nil {
		return nil, err
	}
	return treeDynamicsTable(rows), nil
}

// randomTreeBudgets splits n-1 budget units over n players uniformly at
// random (each unit assigned to a random player, capped at n-1).
func randomTreeBudgets(n int, rng *rand.Rand) []int {
	budgets := make([]int, n)
	for i := 0; i < n-1; i++ {
		for {
			v := rng.Intn(n)
			if budgets[v] < n-1 {
				budgets[v]++
				break
			}
		}
	}
	return budgets
}
