package graph

import (
	"sort"
	"sync/atomic"
)

// Generation stamps. Every mutation of a Digraph's arc set bumps a
// monotone graph generation and stamps the touched vertices with it, so
// cache layers can answer "has anything incident to u changed since I
// last looked?" in O(1) instead of rebuilding and diffing adjacency.
//
// Two stamped views are content-equal when their anchors coincide: an
// anchor is the identity of the graph that performed the most recent
// mutation plus that graph's generation at the time. Clones inherit the
// anchor, so a settled profile cloned many times (one clone per Run)
// still matches the anchor a pool recorded from an earlier clone — the
// anchor only moves when some instance actually mutates, at which point
// it re-roots to that instance. Anchor equality therefore soundly
// proves identical arc sets without hashing.
//
// An optional mutation journal records per-generation arc deltas so a
// cache that is a few generations behind can be repaired from the exact
// edge toggles instead of a full adjacency diff. The journal is opt-in
// (StartJournal) and never copied by Clone.

// digraphID hands out process-unique instance identities for anchors.
var digraphID atomic.Uint64

// arcDelta is one journal entry: the arc-set change of a single
// mutation, from the point of view of both the directed graph (targets,
// for in(u) tracking) and the undirected underlying view (edge toggles,
// normalized a<b; a toggle is recorded only when the mutation actually
// changed U(G), i.e. no brace partner kept the edge alive).
type arcDelta struct {
	gen    int64
	owner  int32
	tgtAdd []int32
	tgtRem []int32
	undAdd [][2]int32
	undRem [][2]int32
}

// journal is a bounded log of arcDeltas covering generations
// (base, latest]. When it overflows cap, the oldest half is dropped and
// base advances; DeltaSince calls reaching past base report !ok.
type journal struct {
	base    int64
	cap     int
	entries []arcDelta
}

func (j *journal) add(e arcDelta) {
	if j.cap > 0 && len(j.entries) >= j.cap {
		half := len(j.entries) / 2
		j.base = j.entries[half-1].gen
		j.entries = append(j.entries[:0], j.entries[half:]...)
	}
	j.entries = append(j.entries, e)
}

// bump advances the graph generation and re-roots the anchor at this
// instance. Called exactly once per successful mutation.
func (g *Digraph) bump() {
	if g.nodeGen == nil {
		return
	}
	g.gen++
	g.src = g.id
	g.srcGen = g.gen
}

// touch stamps v as last modified at the current generation.
func (g *Digraph) touch(v int) {
	if g.nodeGen != nil {
		g.nodeGen[v] = g.gen
	}
}

// Gen returns the graph generation: the number of mutations applied to
// this instance's lineage since construction.
func (g *Digraph) Gen() int64 { return g.gen }

// NodeGen returns the generation at which v was last touched by a
// mutation (as endpoint of an added/removed arc).
func (g *Digraph) NodeGen(v int) int64 {
	if g.nodeGen == nil {
		return 0
	}
	return g.nodeGen[v]
}

// TouchedSince reports whether any mutation since generation gen
// involved v as an endpoint.
func (g *Digraph) TouchedSince(v int, gen int64) bool {
	return g.NodeGen(v) > gen
}

// Anchor returns the content anchor (source instance id, source
// generation). Equal anchors imply identical arc sets; the converse
// does not hold (independent builds of the same graph have different
// anchors), so anchor equality is a sound but incomplete fast path.
func (g *Digraph) Anchor() (uint64, int64) { return g.src, g.srcGen }

// StartJournal attaches a bounded mutation journal recording arc deltas
// from the current generation on. capEntries bounds the number of
// retained mutations (≤ 0 means unbounded). Any previous journal is
// replaced. Clones never inherit the journal.
func (g *Digraph) StartJournal(capEntries int) {
	g.j = &journal{base: g.gen, cap: capEntries}
}

// record appends a journal entry for the mutation that just bumped the
// generation.
func (g *Digraph) record(e arcDelta) {
	if g.j == nil {
		return
	}
	e.gen = g.gen
	g.j.add(e)
}

// undToggle reports whether changing the arc owner->v changes the
// undirected edge {owner,v}: it does unless the brace partner v->owner
// keeps the edge alive. Mutations only ever alter out[owner], so the
// reverse arc can be checked before or after the mutation.
func (g *Digraph) undToggle(owner, v int) bool {
	return !g.HasArc(v, owner)
}

func normEdge(a, b int) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{int32(a), int32(b)}
}

// DeltaSince reports the net undirected-edge delta of this graph
// relative to its state at generation since, excluding edges incident
// to u and mutations performed by u itself (both irrelevant to u's
// deviation cache, which excludes u's owned arcs and vertex u).
// inTouched reports whether any non-u mutation added or removed an arc
// targeting u (i.e. in(u) may have changed). ok is false when the
// journal does not cover (since, Gen()] — the caller must fall back to
// a full diff. removed and added are sorted lexicographically and
// consistent with the current graph (multi-generation toggles cancel).
func (g *Digraph) DeltaSince(since int64, u int) (removed, added [][2]int32, inTouched, ok bool) {
	if since == g.gen {
		return nil, nil, false, true
	}
	if g.j == nil || since < g.j.base || since > g.gen {
		return nil, nil, false, false
	}
	uTouchable := g.nodeGen == nil || g.nodeGen[u] > since
	net := make(map[[2]int32]int8)
	for i := range g.j.entries {
		e := &g.j.entries[i]
		if e.gen <= since {
			continue
		}
		if int(e.owner) == u {
			continue
		}
		if uTouchable && !inTouched {
			for _, t := range e.tgtAdd {
				if int(t) == u {
					inTouched = true
					break
				}
			}
			if !inTouched {
				for _, t := range e.tgtRem {
					if int(t) == u {
						inTouched = true
						break
					}
				}
			}
		}
		for _, ed := range e.undAdd {
			if int(ed[0]) == u || int(ed[1]) == u {
				continue
			}
			net[ed]++
		}
		for _, ed := range e.undRem {
			if int(ed[0]) == u || int(ed[1]) == u {
				continue
			}
			net[ed]--
		}
	}
	for ed, c := range net {
		switch {
		case c > 0:
			added = append(added, ed)
		case c < 0:
			removed = append(removed, ed)
		}
	}
	sortEdges(removed)
	sortEdges(added)
	return removed, added, inTouched, true
}

func sortEdges(es [][2]int32) {
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
}
