package construct_test

import (
	"fmt"

	"repro/internal/construct"
	"repro/internal/graph"
)

// The Theorem 3.2 spider: a MAX-version tree equilibrium whose diameter
// grows linearly in n.
func ExampleSpider() {
	d, budgets, _ := construct.Spider(3)
	sum := 0
	for _, b := range budgets {
		sum += b
	}
	fmt.Println(d.N(), graph.Diameter(d.Underlying()), sum)
	// Output: 10 6 9
}

// The Theorem 2.3 existence construction: an equilibrium for any budget
// vector, with O(1) diameter once budgets reach n-1.
func ExampleExistence() {
	d, _ := construct.Existence([]int{0, 0, 1, 2, 3})
	fmt.Println(graph.Diameter(d.Underlying()) <= 4)
	// Output: true
}

// The Lemma 5.2 shift graph at the Theorem 5.3 parameters t = 2^k:
// every vertex's local diameter is exactly k = sqrt(log2 n).
func ExampleNewShiftGraph() {
	sg, _ := construct.NewShiftGraph(4, 2, 0)
	cert := sg.CertifyEquilibrium()
	fmt.Println(cert.N, cert.EccMax, cert.OK)
	// Output: 16 2 true
}
