package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// The weighted-dyn sweep layers seeded arc weights over the robustness
// overlay families and drives greedy best-response dynamics on the
// weighted SUM game — the latency-weighted-overlay scenario the ROADMAP
// calls for, running end to end on the weighted cache tier (Δ-stepping
// fill, incremental weighted repair, stamps). maxW=1 is the unit-weight
// bridge: its rows must coincide with what the unweighted engine would
// report, which the property suites pin at every layer below.

type weightedDynCell struct {
	family    string
	maxW      int32
	n, trials int
}

type weightedDynRow struct {
	Family    string  `json:"family"`
	MaxW      int32   `json:"maxW"`
	N         int     `json:"n"`
	Trials    int     `json:"trials"`
	Converged int     `json:"converged"`
	WDiams    []int64 `json:"wdiams"`
	Rounds    []int64 `json:"rounds"`
}

// weightedDynMaxWs are the weight ranges swept per family: unit (the
// unweighted bridge), narrow and wide.
var weightedDynMaxWs = []int32{1, 4, 16}

func weightedDynJob(effort Effort, seed int64) runner.Job {
	n := 14
	trials := 3
	if effort == Full {
		n = 24
		trials = 8
	}
	var points []runner.Point
	for _, f := range robustFamilies {
		for _, maxW := range weightedDynMaxWs {
			points = append(points, runner.Point{Exp: "weighted-dyn",
				Key:  fmt.Sprintf("family=%s,maxW=%d,n=%d,trials=%d", f, maxW, n, trials),
				Seed: seed, Data: weightedDynCell{family: f, maxW: maxW, n: n, trials: trials}})
		}
	}
	return runner.Job{Exp: "weighted-dyn", Points: points, Eval: evalWeightedDyn}
}

// evalWeightedDyn drives weighted greedy dynamics from one (family,
// maxW) cell's random overlays and collects weighted equilibrium
// quality samples.
func evalWeightedDyn(p runner.Point) (any, error) {
	c := p.Data.(weightedDynCell)
	rng := rand.New(rand.NewSource(p.Seed + int64(len(c.family)) + int64(c.maxW)<<8))
	r := weightedDynRow{Family: c.family, MaxW: c.maxW, N: c.n, Trials: c.trials}
	for trial := 0; trial < c.trials; trial++ {
		start, err := makeOverlay(c.family, c.n, rng)
		if err != nil {
			return nil, err
		}
		g := core.MustGame(graph.BudgetsOf(start), core.SUM)
		wts := graph.NewWeights(c.n, rng.Int63(), c.maxW)
		out, err := dynamics.Run(g, start, dynamics.Options{
			Responder:   core.WeightedGreedyResponder(wts),
			Cached:      core.GreedyDeviatorResponder,
			Weights:     wts,
			DetectLoops: true,
			MaxRounds:   300,
		})
		if err != nil {
			return nil, err
		}
		if !out.Converged {
			continue
		}
		r.Converged++
		r.WDiams = append(r.WDiams, g.WeightedSocialCost(out.Final, wts))
		r.Rounds = append(r.Rounds, int64(out.Rounds))
	}
	return r, nil
}

func weightedDynTable(rows []weightedDynRow) *sweep.Table {
	n := 0
	if len(rows) > 0 {
		n = rows[0].N
	}
	t := sweep.NewTable(
		fmt.Sprintf("Weighted dynamics: greedy responses on arc-weighted overlays (n=%d, SUM)", n),
		"start-family", "maxW", "trials", "converged", "weighted-diameter", "rounds")
	for _, r := range rows {
		t.Addf(r.Family, r.MaxW, r.Trials, r.Converged,
			stats.Summarize(r.WDiams).MeanStd(), stats.Summarize(r.Rounds).MeanStd())
	}
	return t
}

// WeightedDynamics sweeps weighted greedy dynamics across overlay
// families and weight ranges.
func WeightedDynamics(effort Effort, seed int64) (*sweep.Table, error) {
	rows, err := runRows[weightedDynRow](weightedDynJob(effort, seed))
	if err != nil {
		return nil, err
	}
	return weightedDynTable(rows), nil
}
