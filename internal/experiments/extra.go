package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/center"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/sweep"
)

// Existence sweeps Theorem 2.3 over random budget vectors: the
// construction must always verify as a Nash equilibrium of both versions,
// with diameter <= 4 whenever the total budget reaches n-1 (the price of
// stability evidence).
func Existence(effort Effort, seed int64) (*sweep.Table, error) {
	trials := 10
	maxN := 8
	if effort == Full {
		trials = 40
		maxN = 12
	}
	rng := rand.New(rand.NewSource(seed))
	type point struct {
		budgets []int
	}
	var points []point
	for i := 0; i < trials; i++ {
		n := 3 + rng.Intn(maxN-2)
		budgets := make([]int, n)
		for j := range budgets {
			budgets[j] = rng.Intn(4)
			if budgets[j] >= n {
				budgets[j] = n - 1
			}
		}
		points = append(points, point{budgets})
	}
	type row struct {
		budgets  []int
		sigma    int
		diam     int64
		sumOK    bool
		maxOK    bool
		connCase bool
		err      error
	}
	rows := sweep.Parallel(points, func(p point) row {
		d, err := construct.Existence(p.budgets)
		if err != nil {
			return row{err: err}
		}
		r := row{budgets: p.budgets}
		for _, b := range p.budgets {
			r.sigma += b
		}
		r.connCase = r.sigma >= len(p.budgets)-1
		gSum := core.MustGame(p.budgets, core.SUM)
		gMax := core.MustGame(p.budgets, core.MAX)
		devS, err := gSum.VerifyNash(d, 0)
		if err != nil {
			return row{err: err}
		}
		devM, err := gMax.VerifyNash(d, 0)
		if err != nil {
			return row{err: err}
		}
		r.sumOK = devS == nil
		r.maxOK = devM == nil
		r.diam = gSum.SocialCost(d)
		return r
	})
	t := sweep.NewTable("Theorem 2.3: constructed equilibria for random budget vectors (PoS = O(1))",
		"budgets", "sigma", "diameter", "SUM-nash", "MAX-nash")
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		diam := fmt.Sprintf("%d", r.diam)
		if !r.connCase {
			diam = "n^2 (disconnected)"
		}
		t.Addf(fmt.Sprintf("%v", r.budgets), r.sigma, diam, yesNo(r.sumOK), yesNo(r.maxOK))
	}
	return t, nil
}

// Reduction cross-checks Theorem 2.1: optimal k-center / k-median values
// computed directly must equal the fresh player's best-response cost
// (shifted by the reduction's offset) on random connected graphs.
func Reduction(effort Effort, seed int64) (*sweep.Table, error) {
	trials := 8
	maxN := 8
	if effort == Full {
		trials = 25
		maxN = 11
	}
	rng := rand.New(rand.NewSource(seed))
	t := sweep.NewTable("Theorem 2.1: best response == k-center (MAX) / k-median (SUM)",
		"n", "k", "kcenter", "via-BR", "kmedian", "via-BR", "match")
	for i := 0; i < trials; i++ {
		n := 4 + rng.Intn(maxN-3)
		h := graph.RandomTree(n, rng)
		for e := 0; e < rng.Intn(3); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !h.Underlying().HasEdge(u, v) {
				h.AddArc(u, v)
			}
		}
		k := 1 + rng.Intn(3)
		if k > n {
			k = n
		}
		dc, err := center.KCenterExact(h.Underlying(), k)
		if err != nil {
			return nil, err
		}
		gc, err := center.KCenterViaBestResponse(h, k, 0)
		if err != nil {
			return nil, err
		}
		dm, err := center.KMedianExact(h.Underlying(), k)
		if err != nil {
			return nil, err
		}
		gm, err := center.KMedianViaBestResponse(h, k, 0)
		if err != nil {
			return nil, err
		}
		match := dc.Value == gc.Value && dm.Value == gm.Value
		t.Addf(n, k, dc.Value, gc.Value, dm.Value, gm.Value, yesNo(match))
		if !match {
			return t, fmt.Errorf("reduction mismatch at n=%d k=%d", n, k)
		}
	}
	return t, nil
}

// Connectivity checks the Theorem 7.2 dichotomy on SUM equilibria reached
// by dynamics in uniform-budget games: diameter < 4 or k-connected.
func Connectivity(effort Effort, seed int64) (*sweep.Table, error) {
	type point struct{ n, k int }
	points := []point{{6, 2}, {8, 2}, {8, 3}}
	if effort == Full {
		points = []point{{6, 2}, {8, 2}, {10, 2}, {8, 3}, {10, 3}, {12, 3}, {12, 4}}
	}
	trials := 4
	type row struct {
		n, k      int
		converged int
		satisfied int
		kconn     int
		smallDiam int
		err       error
	}
	rows := sweep.Parallel(points, func(p point) row {
		rng := rand.New(rand.NewSource(seed + int64(p.n*31+p.k)))
		g := core.UniformGame(p.n, p.k, core.SUM)
		r := row{n: p.n, k: p.k}
		for trial := 0; trial < trials; trial++ {
			responder := core.Responder(core.GreedyResponder)
			if core.StrategySpaceSize(p.n, p.k) <= 3000 {
				responder = core.ExactResponder(0)
			}
			out, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
				Responder:   responder,
				DetectLoops: true,
				MaxRounds:   300,
			})
			if err != nil {
				return row{err: err}
			}
			if !out.Converged {
				continue
			}
			// The dichotomy is a theorem about exact equilibria; for
			// greedy fixed points it is measured, not asserted.
			r.converged++
			audit := analysis.AuditConnectivity(out.Final, p.k)
			if audit.Satisfied {
				r.satisfied++
			}
			if audit.KConn {
				r.kconn++
			}
			if audit.Diameter >= 0 && audit.Diameter < 4 {
				r.smallDiam++
			}
		}
		return r
	})
	t := sweep.NewTable("Theorem 7.2: SUM equilibria with budgets >= k are k-connected or have diameter < 4",
		"n", "k", "converged", "dichotomy-holds", "k-connected", "diam<4")
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		t.Addf(r.n, r.k, r.converged, r.satisfied, r.kconn, r.smallDiam)
	}
	return t, nil
}

// DynamicsStats addresses the Section 8 open question empirically:
// convergence/loop rates of best-response dynamics across versions and
// schedulers.
func DynamicsStats(effort Effort, seed int64) (*sweep.Table, error) {
	ns := []int{6, 8}
	trials := 10
	if effort == Full {
		ns = []int{6, 8, 10, 12, 16}
		trials = 30
	}
	t := sweep.NewTable("Section 8: does best-response dynamics converge? (empirical)",
		"version", "scheduler", "n", "trials", "converged", "loops", "timeouts", "avg-rounds")
	for _, ver := range []core.Version{core.SUM, core.MAX} {
		for _, schedName := range []string{"round-robin", "random-order"} {
			for _, n := range ns {
				rng := rand.New(rand.NewSource(seed + int64(n)))
				g := core.UniformGame(n, 1, ver)
				var converged, loops, timeouts, totalRounds int
				for trial := 0; trial < trials; trial++ {
					var sched dynamics.Scheduler = dynamics.RoundRobin{}
					if schedName == "random-order" {
						sched = dynamics.RandomOrder{Rng: rng}
					}
					out, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
						Responder:   core.ExactResponder(0),
						Scheduler:   sched,
						DetectLoops: true,
						MaxRounds:   1500,
					})
					if err != nil {
						return nil, err
					}
					totalRounds += out.Rounds
					switch {
					case out.Converged:
						converged++
					case out.Loop:
						loops++
					default:
						timeouts++
					}
				}
				t.Addf(ver.String(), schedName, n, trials, converged, loops, timeouts,
					float64(totalRounds)/float64(trials))
			}
		}
	}
	return t, nil
}
