// P2P overlay formation: the scenario that motivates bounded budget
// network creation games (Laoutaris et al., and Section 1 of this paper).
//
// Peers in an overlay can each maintain a limited number of connections
// (their budget); they selfishly rewire to minimise latency to the rest
// of the swarm. This example simulates a swarm with heterogeneous
// budgets — a few well-provisioned "supernodes" and many constrained
// leaf peers — runs selfish rewiring to equilibrium, and reports how the
// overlay's diameter and the peers' stretch evolve.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/sweep"
)

func main() {
	const (
		supernodes = 4
		leafPeers  = 28
		superBud   = 6 // connections a supernode maintains
		leafBud    = 1 // connections a leaf peer maintains
	)
	n := supernodes + leafPeers
	budgets := make([]int, n)
	for i := 0; i < supernodes; i++ {
		budgets[i] = superBud
	}
	for i := supernodes; i < n; i++ {
		budgets[i] = leafBud
	}
	game := core.MustGame(budgets, core.SUM)
	rng := rand.New(rand.NewSource(2026))

	// Bootstrap: every peer connects to random peers (the classic
	// "random peer sampling" join protocol).
	start := dynamics.RandomProfile(game, rng)
	fmt.Printf("swarm: %d supernodes (budget %d) + %d leaves (budget %d)\n\n",
		supernodes, superBud, leafPeers, leafBud)

	table := sweep.NewTable("overlay quality under selfish rewiring",
		"stage", "diameter", "avg-latency", "max-latency")
	report := func(stage string, d *graph.Digraph) {
		a := d.Underlying()
		sums, connected := graph.TotalDistances(a)
		eccs, _ := graph.Eccentricities(a)
		if !connected {
			table.Addf(stage, "disconnected", "-", "-")
			return
		}
		var total int64
		var worst int32
		for i := range sums {
			total += sums[i]
			if eccs[i] > worst {
				worst = eccs[i]
			}
		}
		avg := float64(total) / float64(n*(n-1))
		table.Addf(stage, graph.Diameter(a), avg, worst)
	}
	report("random bootstrap", start)

	// Selfish rewiring: peers improve one at a time. Leaves use exact
	// best response (their strategy space is tiny); supernodes use the
	// greedy heuristic, as a real implementation would.
	responder := func(g *core.Game, d *graph.Digraph, u int) core.BestResponse {
		if g.Budgets[u] <= 2 {
			br, err := g.ExactBestResponse(d, u, 0)
			if err != nil {
				log.Fatal(err)
			}
			return br
		}
		return g.GreedyBestResponse(d, u)
	}
	res, err := dynamics.Run(game, start, dynamics.Options{
		Responder:        responder,
		Scheduler:        dynamics.RandomOrder{Rng: rng},
		DetectLoops:      true,
		MaxRounds:        200,
		RecordTrajectory: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("after selfish rewiring", res.Final)
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrewiring: %d rounds, %d moves, converged=%v\n",
		res.Rounds, res.Moves, res.Converged)
	fmt.Print("diameter trajectory per round: ")
	for _, sc := range res.Trajectory {
		fmt.Printf("%d ", sc)
	}
	fmt.Println()

	// How fair is the equilibrium? Compare supernode and leaf costs.
	costs := game.AllCosts(res.Final)
	var superSum, leafSum int64
	for i, c := range costs {
		if i < supernodes {
			superSum += c
		} else {
			leafSum += c
		}
	}
	fmt.Printf("avg supernode cost: %.1f   avg leaf cost: %.1f\n",
		float64(superSum)/supernodes, float64(leafSum)/leafPeers)
	fmt.Println("(leaves pay more total latency: budget buys centrality)")
}
