package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"repro/internal/store"
	"repro/pkg/bbncg"
	"repro/pkg/bbncg/api"
)

// Options configure a Manager.
type Options struct {
	// SessionPoolBudget caps each session's warm-cache pool in bytes
	// (<= 0: core.DefaultPoolBudget, clamped to GlobalPoolBudget).
	SessionPoolBudget int64
	// GlobalPoolBudget caps the sum of warm-cache bytes across all
	// sessions; exceeding it evicts least-recently-used sessions' pools
	// (cold caches, not lost sessions). <= 0 means unlimited.
	GlobalPoolBudget int64
	// AnchorEvery appends a full-profile snapshot to a session's event
	// log every this many mutations, bounding replay length (<= 0:
	// default 64; anchors also heal logs whose interior records were
	// quarantined by the store).
	AnchorEvery int
	// MaxSessionN bounds the player count of a created session (<= 0:
	// default 4096) — a wire-input guard, since a session's distance
	// caches are O(n²).
	MaxSessionN int
	// Fsync extends the event log's durability from process death to
	// machine death (see store.Options.Fsync).
	Fsync bool
}

func (o Options) withDefaults() Options {
	if o.AnchorEvery <= 0 {
		o.AnchorEvery = 64
	}
	if o.MaxSessionN <= 0 {
		o.MaxSessionN = 4096
	}
	if o.GlobalPoolBudget > 0 && (o.SessionPoolBudget <= 0 || o.SessionPoolBudget > o.GlobalPoolBudget) {
		o.SessionPoolBudget = o.GlobalPoolBudget
	}
	return o
}

// Manager owns the session registry and the durable event-log store,
// replays persisted sessions on open, and runs the LRU pool-memory
// governor. Methods are safe for concurrent use.
type Manager struct {
	opt Options
	st  *store.Store

	mu       sync.Mutex
	sessions map[string]*Session
	// deadSeq remembers the next event seq of tombstoned session ids so
	// a re-created id keeps appending unique store record ids.
	deadSeq map[string]int64
	clock   int64 // LRU ticks, handed out under mu
	closed  bool
}

// Open opens (or initialises) the session store at dir and replays
// every persisted session into a live registry with cold caches.
func Open(dir string, opt Options) (*Manager, error) {
	opt = opt.withDefaults()
	st, err := store.OpenWith(dir, store.Options{Fsync: opt.Fsync})
	if err != nil {
		return nil, err
	}
	m := &Manager{
		opt:      opt,
		st:       st,
		sessions: make(map[string]*Session),
		deadSeq:  make(map[string]int64),
	}
	states, err := replaySessions(st)
	if err != nil {
		st.Close()
		return nil, err
	}
	for _, rs := range states {
		if rs.dead {
			m.deadSeq[rs.id] = rs.nextSeq
			continue
		}
		s, err := m.sessionFromReplay(rs)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("serve: session %s: %w", rs.id, err)
		}
		m.sessions[rs.id] = s
	}
	return m, nil
}

// sessionFromReplay validates a replayed state back into a live session.
func (m *Manager) sessionFromReplay(rs *replayState) (*Session, error) {
	v, err := bbncg.ParseVersion(rs.create.Version)
	if err != nil {
		return nil, err
	}
	g, err := bbncg.NewGame(rs.create.Budgets, v)
	if err != nil {
		return nil, err
	}
	if err := g.CheckRealization(rs.d); err != nil {
		return nil, fmt.Errorf("replayed profile does not realize the game: %w", err)
	}
	rc, err := bbncg.ResponderByName(rs.create.Responder, 0)
	if err != nil {
		return nil, err
	}
	s := newSession(rs.id, g, rs.d, rc, m.st, rs.nextSeq, m.opt.AnchorEvery, m.opt.SessionPoolBudget, rs.wts)
	s.spec = rs.create.Graph
	s.wspec = rs.create.Weights
	s.moves.Store(rs.moves)
	s.replayed = true
	return s, nil
}

// Create validates the request, durably logs the create event (with the
// materialised profile, so replay never re-runs a generator), and
// registers the live session.
func (m *Manager) Create(req api.CreateRequest) (*Session, error) {
	id := req.ID
	if id == "" {
		id = randomSessionID()
	}
	if err := ValidSessionID(id); err != nil {
		return nil, err
	}
	v, err := bbncg.ParseVersion(req.Version)
	if err != nil {
		return nil, err
	}
	rc, err := bbncg.ResponderByName(req.Responder, 0)
	if err != nil {
		return nil, err
	}
	var d *bbncg.Digraph
	switch {
	case req.Graph != nil && req.Arcs != nil:
		return nil, fmt.Errorf("serve: create: give graph or arcs, not both")
	case req.Graph != nil:
		d, err = req.Graph.Build()
	case req.Arcs != nil || req.N > 0:
		d, err = bbncg.FromArcs(req.N, req.Arcs)
	default:
		return nil, fmt.Errorf("serve: create: an initial profile is required (graph spec, or n and arcs)")
	}
	if err != nil {
		return nil, err
	}
	budgets := req.Budgets
	if budgets == nil {
		budgets = bbncg.BudgetsOf(d)
	}
	g, err := bbncg.NewGame(budgets, v)
	if err != nil {
		return nil, err
	}
	if err := g.CheckRealization(d); err != nil {
		return nil, err
	}
	if g.N() > m.opt.MaxSessionN {
		return nil, fmt.Errorf("serve: create: n=%d exceeds the server's session cap %d", g.N(), m.opt.MaxSessionN)
	}
	var wts *bbncg.Weights
	if req.Weights != nil {
		if wts, err = req.Weights.Build(g.N()); err != nil {
			return nil, err
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrSessionClosed
	}
	if _, ok := m.sessions[id]; ok {
		return nil, fmt.Errorf("serve: session %q already exists", id)
	}
	seq := m.deadSeq[id] // 0 for fresh ids; continues after a delete
	ev := event{
		Seq:       seq,
		Kind:      evCreate,
		Version:   v.String(),
		Budgets:   budgets,
		Arcs:      bbncg.Arcs(d),
		Graph:     req.Graph,
		Responder: rc.Name,
		Weights:   req.Weights,
	}
	if err := appendEvent(m.st, id, ev); err != nil {
		return nil, err
	}
	s := newSession(id, g, d, rc, m.st, seq+1, m.opt.AnchorEvery, m.opt.SessionPoolBudget, wts)
	s.spec = req.Graph
	s.wspec = req.Weights
	m.sessions[id] = s
	delete(m.deadSeq, id)
	s.lastUsed.Store(m.tickLocked())
	return s, nil
}

// Get returns the live session, bumping its LRU recency.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if ok {
		s.lastUsed.Store(m.tickLocked())
	}
	return s, ok
}

// Delete tombstones the session in the log and closes it. The id can
// be re-created later (its event seq continues).
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("serve: no session %q", id)
	}
	seq := s.seq.Load()
	if err := appendEvent(m.st, id, event{Seq: seq, Kind: evDelete}); err != nil {
		m.mu.Unlock()
		return err
	}
	delete(m.sessions, id)
	m.deadSeq[id] = seq + 1
	m.mu.Unlock()
	s.close()
	return nil
}

// List snapshots the registry's session stats, sorted by id.
func (m *Manager) List() []api.SessionStats {
	m.mu.Lock()
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		ss = append(ss, s)
	}
	m.mu.Unlock()
	out := make([]api.SessionStats, len(ss))
	for i, s := range ss {
		out[i] = s.Stats()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// tickLocked advances the LRU clock.
func (m *Manager) tickLocked() int64 {
	m.clock++
	return m.clock
}

// Rebalance enforces the global pool-memory cap: while the warm-cache
// bytes across sessions exceed it, the least-recently-used idle
// session's pool is evicted (closed and replaced cold). The session
// named active — the one that just grew — is only evicted last, when
// it alone exceeds the cap. Busy sessions (lock held) are skipped this
// round rather than waited on. Returns the number of evictions.
func (m *Manager) Rebalance(active string) int {
	if m.opt.GlobalPoolBudget <= 0 {
		return 0
	}
	m.mu.Lock()
	type cand struct {
		s    *Session
		tick int64
	}
	var total int64
	cands := make([]cand, 0, len(m.sessions))
	for _, s := range m.sessions {
		total += s.pool.Load().BytesUsed()
		cands = append(cands, cand{s, s.lastUsed.Load()})
	}
	m.mu.Unlock()
	if total <= m.opt.GlobalPoolBudget {
		return 0
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].tick < cands[j].tick })
	evicted := 0
	for pass := 0; pass < 2 && total > m.opt.GlobalPoolBudget; pass++ {
		for _, c := range cands {
			if total <= m.opt.GlobalPoolBudget {
				break
			}
			// First pass spares the active session; if everyone else's
			// caches were not enough, the second pass takes it too.
			if pass == 0 && c.s.id == active {
				continue
			}
			if freed := c.s.evict(); freed > 0 {
				total -= freed
				evicted++
			}
		}
	}
	return evicted
}

// Sync flushes the store manifest (crash-tail safety does not depend
// on it; it keeps `bbncg doctor` quiet between closes).
func (m *Manager) Sync() error { return m.st.Sync() }

// Dir returns the store directory.
func (m *Manager) Dir() string { return m.st.Dir() }

// Close closes every session (their operations return ErrSessionClosed
// from now on) and then the store, flushing its manifest.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		ss = append(ss, s)
	}
	m.sessions = make(map[string]*Session)
	m.mu.Unlock()
	for _, s := range ss {
		s.close()
	}
	return m.st.Close()
}

// randomSessionID draws a fresh id; collisions are caught by Create's
// exists check.
func randomSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failing is not a recoverable condition
	}
	return "s-" + hex.EncodeToString(b[:])
}
