package dynamics_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
)

// Best-response dynamics from a bad start reach a verified equilibrium.
func ExampleRun() {
	start := graph.PathGraph(6)
	g := core.GameOf(start, core.SUM)
	res, _ := dynamics.Run(g, start, dynamics.Options{
		Responder:   core.ExactResponder(0),
		DetectLoops: true,
	})
	dev, _ := g.VerifyNash(res.Final, 0)
	fmt.Println(res.Converged, dev == nil, g.SocialCost(start), "->", g.SocialCost(res.Final))
	// Output: true true 5 -> 3
}
