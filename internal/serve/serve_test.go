package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/pkg/bbncg"
	"repro/pkg/bbncg/api"
)

// openManager opens a manager over dir with test-friendly defaults and
// registers its close.
func openManager(t *testing.T, dir string, opt Options) *Manager {
	t.Helper()
	m, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// cycleRequest is a 6-cycle with explicit arcs: every player has budget
// 1, so greedy best responses always exist and rewiring is easy to
// exercise.
func cycleRequest(id string) api.CreateRequest {
	arcs := make([][2]int, 6)
	for u := 0; u < 6; u++ {
		arcs[u] = [2]int{u, (u + 1) % 6}
	}
	return api.CreateRequest{ID: id, N: 6, Arcs: arcs}
}

// answers collects every player's best response plus the welfare — the
// comparison handle the replay tests diff across restarts.
func answers(t *testing.T, s *Session) ([]api.BestResponseResult, api.WelfareResult) {
	t.Helper()
	info, err := s.Info(false)
	if err != nil {
		t.Fatal(err)
	}
	brs := make([]api.BestResponseResult, info.N)
	for u := 0; u < info.N; u++ {
		br, err := s.BestResponse(u, "", 0)
		if err != nil {
			t.Fatal(err)
		}
		br.Memo = false // memo-vs-computed is not part of the answer
		brs[u] = br
	}
	wf, err := s.Welfare()
	if err != nil {
		t.Fatal(err)
	}
	return brs, wf
}

func TestSessionCreateRewireQuery(t *testing.T) {
	m := openManager(t, t.TempDir(), Options{})
	s, err := m.Create(cycleRequest("cyc"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(cycleRequest("cyc")); err == nil {
		t.Fatal("duplicate id accepted")
	}

	// A cycle is not stable under greedy: somebody improves.
	eq, err := s.Equilibrium("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq.Stable || eq.Witness == nil {
		t.Fatalf("6-cycle reported stable: %+v", eq)
	}

	// Apply the witness; the move must improve the mover's cost.
	changed, err := s.Rewire(eq.Witness.Player, eq.Witness.Strategy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("improving rewire reported unchanged")
	}
	wf, err := s.Welfare()
	if err != nil {
		t.Fatal(err)
	}
	if wf.Costs[eq.Witness.Player] != eq.Witness.Cost {
		t.Fatalf("witness cost %d, post-move cost %d", eq.Witness.Cost, wf.Costs[eq.Witness.Player])
	}

	// Rewiring to the current strategy is a logged no-op.
	info, err := s.Info(true)
	if err != nil {
		t.Fatal(err)
	}
	cur := append([]int{}, info.Arcs[0][1])
	if info.Arcs[0][0] != 0 {
		t.Fatalf("arcs not canonical: %v", info.Arcs)
	}
	changed, err = s.Rewire(0, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("identical rewire reported a change")
	}

	// Validation rejects malformed strategies and players.
	if _, err := s.Rewire(0, []int{0}, 0); err == nil {
		t.Fatal("self-loop strategy accepted")
	}
	if _, err := s.Rewire(99, []int{1}, 0); err == nil {
		t.Fatal("out-of-range player accepted")
	}
	if _, err := s.Rewire(0, []int{1, 2}, 0); err == nil {
		t.Fatal("over-budget strategy accepted")
	}
	if _, err := s.BestResponse(0, "nope", 0); err == nil {
		t.Fatal("unknown responder accepted")
	}
}

func TestDynamicsConvergeAndMemo(t *testing.T) {
	m := openManager(t, t.TempDir(), Options{})
	s, err := m.Create(api.CreateRequest{ID: "dyn", Graph: &bbncg.GeneratorSpec{Kind: "random", N: 10, B: 2, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Step(200)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("greedy dynamics did not settle in %d rounds (%d moves)", rep.Rounds, rep.Moves)
	}
	// Settled: the next equilibrium scan must be stable, and repeating
	// it must ride the round memo with zero resyncs.
	eq, err := s.Equilibrium("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Stable {
		t.Fatal("post-convergence scan found an improving move")
	}
	before := s.Stats().Pool
	for i := 0; i < 3; i++ {
		if eq, err = s.Equilibrium("", 0); err != nil || !eq.Stable {
			t.Fatalf("repeat scan %d: stable=%v err=%v", i, eq.Stable, err)
		}
	}
	after := s.Stats().Pool
	if after.Resyncs != before.Resyncs {
		t.Fatalf("repeated scans on an unchanged session resynced: %d -> %d", before.Resyncs, after.Resyncs)
	}
	if after.MemoHits <= before.MemoHits {
		t.Fatalf("repeated scans did not ride the memo: %d -> %d", before.MemoHits, after.MemoHits)
	}
	// A memoised single-player query returns the full recorded answer.
	br, err := s.BestResponse(0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	br2, err := s.BestResponse(0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !br2.Memo {
		t.Fatal("second identical query did not memo")
	}
	br2.Memo = false
	br.Memo = false
	if !reflect.DeepEqual(br, br2) {
		t.Fatalf("memo answer drifted: %+v vs %+v", br, br2)
	}
}

func TestReplayByteIdentical(t *testing.T) {
	dir := t.TempDir()
	// AnchorEvery 3 forces anchors mid-history so replay exercises the
	// anchor-then-rewires path, not just create-then-rewires.
	m := openManager(t, dir, Options{AnchorEvery: 3})
	s, err := m.Create(cycleRequest("rep"))
	if err != nil {
		t.Fatal(err)
	}
	// Drive a handful of improving moves through the journal.
	for i := 0; i < 8; i++ {
		eq, err := s.Equilibrium("", 0)
		if err != nil {
			t.Fatal(err)
		}
		if eq.Stable {
			break
		}
		if _, err := s.Rewire(eq.Witness.Player, eq.Witness.Strategy, 0); err != nil {
			t.Fatal(err)
		}
	}
	wantInfo, err := s.Info(true)
	if err != nil {
		t.Fatal(err)
	}
	wantBR, wantWF := answers(t, s)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := openManager(t, dir, Options{AnchorEvery: 3})
	s2, ok := m2.Get("rep")
	if !ok {
		t.Fatal("session not replayed")
	}
	gotInfo, err := s2.Info(true)
	if err != nil {
		t.Fatal(err)
	}
	if !gotInfo.Replayed {
		t.Fatal("replayed session not marked replayed")
	}
	if !reflect.DeepEqual(wantInfo.Arcs, gotInfo.Arcs) {
		t.Fatalf("replayed profile differs:\n want %v\n got  %v", wantInfo.Arcs, gotInfo.Arcs)
	}
	if gotInfo.Seq != wantInfo.Seq || gotInfo.Moves != wantInfo.Moves {
		t.Fatalf("replayed counters differ: seq %d/%d moves %d/%d",
			gotInfo.Seq, wantInfo.Seq, gotInfo.Moves, wantInfo.Moves)
	}
	gotBR, gotWF := answers(t, s2)
	if !reflect.DeepEqual(wantBR, gotBR) {
		t.Fatalf("replayed best responses differ:\n want %+v\n got  %+v", wantBR, gotBR)
	}
	if !reflect.DeepEqual(wantWF, gotWF) {
		t.Fatalf("replayed welfare differs: %+v vs %+v", wantWF, gotWF)
	}
}

func TestReplayAbandonedStore(t *testing.T) {
	// Abandon the manager without Close — the crash shape — and reopen:
	// O_APPEND records carry the whole truth, the manifest is advisory.
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Create(cycleRequest("aband"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rewire(0, []int{3}, 0); err != nil {
		t.Fatal(err)
	}
	wantInfo, err := s.Info(true)
	if err != nil {
		t.Fatal(err)
	}
	wantBR, wantWF := answers(t, s)
	// No m.Close(): the store object is simply dropped.

	m2 := openManager(t, dir, Options{})
	s2, ok := m2.Get("aband")
	if !ok {
		t.Fatal("session not replayed from abandoned store")
	}
	gotInfo, err := s2.Info(true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantInfo.Arcs, gotInfo.Arcs) {
		t.Fatalf("profile differs after abandoned restart:\n want %v\n got  %v", wantInfo.Arcs, gotInfo.Arcs)
	}
	gotBR, gotWF := answers(t, s2)
	if !reflect.DeepEqual(wantBR, gotBR) || !reflect.DeepEqual(wantWF, gotWF) {
		t.Fatal("answers differ after abandoned restart")
	}
}

func TestDeleteTombstoneAndRecreate(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{})
	s, err := m.Create(cycleRequest("phoenix"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("phoenix"); err != nil {
		t.Fatal(err)
	}
	// Post-close access is defined behaviour.
	if _, err := s.Rewire(0, []int{2}, 0); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("rewire on deleted session: %v", err)
	}
	if _, err := s.BestResponse(0, "", 0); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("query on deleted session: %v", err)
	}
	if _, ok := m.Get("phoenix"); ok {
		t.Fatal("deleted session still listed")
	}
	if err := m.Delete("phoenix"); err == nil {
		t.Fatal("double delete accepted")
	}

	// Re-creating the id continues the event seq, so the store's unique
	// record ids never collide — across a restart too.
	s2, err := m.Create(api.CreateRequest{ID: "phoenix", Graph: &bbncg.GeneratorSpec{Kind: "star", N: 4}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s2.Info(false)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 4 {
		t.Fatalf("recreated session n=%d, want 4", info.N)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2 := openManager(t, dir, Options{})
	s3, ok := m2.Get("phoenix")
	if !ok {
		t.Fatal("recreated session not replayed")
	}
	info3, err := s3.Info(false)
	if err != nil {
		t.Fatal(err)
	}
	if info3.N != 4 || info3.Version != info.Version {
		t.Fatalf("replay picked the wrong create: %+v", info3)
	}

	// A deleted-and-never-recreated id replays as a tombstone only.
	if err := m2.Delete("phoenix"); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3 := openManager(t, dir, Options{})
	if _, ok := m3.Get("phoenix"); ok {
		t.Fatal("tombstoned session came back")
	}
}

func TestReplayFaultSurfaces(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{})
	if _, err := m.Create(cycleRequest("faulty")); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	fault.Install(fault.NewSet(fault.Rule{Site: "serve.session.replay", Mode: fault.ModeError, Sched: fault.Always()}))
	defer fault.Disarm()
	if _, err := Open(dir, Options{}); err == nil || !fault.Injected(err) {
		t.Fatalf("replay fault did not surface: %v", err)
	}
	fault.Disarm()
	openManager(t, dir, Options{}) // clean reopen works
}

func TestAnchorFaultIsAdvisory(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{AnchorEvery: 1})
	s, err := m.Create(cycleRequest("anchf"))
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(fault.NewSet(fault.Rule{Site: "serve.snapshot.write", Mode: fault.ModeError, Sched: fault.Always()}))
	_, err = s.Rewire(0, []int{3}, 0)
	fault.Disarm()
	if err == nil || !fault.Injected(err) {
		t.Fatalf("anchor fault not surfaced: %v", err)
	}
	// The mutation itself landed (log-then-apply precedes the anchor):
	// the session stays consistent and replays the move.
	wantInfo, err := s.Info(true)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2 := openManager(t, dir, Options{AnchorEvery: 1})
	s2, _ := m2.Get("anchf")
	gotInfo, err := s2.Info(true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantInfo.Arcs, gotInfo.Arcs) {
		t.Fatalf("mutation lost behind failed anchor:\n want %v\n got  %v", wantInfo.Arcs, gotInfo.Arcs)
	}
	// With the fault gone the next mutation anchors again.
	if _, err := s2.Rewire(1, []int{4}, 0); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSessionsNoCrossTalk is the concurrency contract: N
// goroutines on disjoint sessions, interleaving rewires, queries and
// stats reads under -race, with zero resyncs anywhere — sessions never
// interfere with each other's warm caches.
func TestConcurrentSessionsNoCrossTalk(t *testing.T) {
	m := openManager(t, t.TempDir(), Options{})
	const nSessions = 8
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("conc-%d", i)
		if _, err := m.Create(api.CreateRequest{
			ID:    ids[i],
			Graph: &bbncg.GeneratorSpec{Kind: "random", N: 12, B: 2, Seed: int64(i + 1)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, nSessions+1)
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			s, ok := m.Get(id)
			if !ok {
				errc <- fmt.Errorf("%s: missing", id)
				return
			}
			for iter := 0; iter < 30; iter++ {
				for u := 0; u < 12; u++ {
					br, err := s.BestResponse(u, "", 0)
					if err != nil {
						errc <- fmt.Errorf("%s: %w", id, err)
						return
					}
					if br.Improves && iter%3 == 0 {
						if _, err := s.Rewire(u, br.Strategy, 0); err != nil {
							errc <- fmt.Errorf("%s: %w", id, err)
							return
						}
					}
				}
				if _, err := s.Welfare(); err != nil {
					errc <- fmt.Errorf("%s: %w", id, err)
					return
				}
			}
		}(id)
	}
	// A stats scraper races the workers on the lock-free read path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			for _, st := range m.List() {
				if st.N != 12 {
					errc <- fmt.Errorf("stats cross-talk: %+v", st)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Settle every session (one full pass syncs each entry to the final
	// profile), then hammer repeated queries: an unchanged session must
	// serve them with zero further resyncs — the cross-session isolation
	// contract, since any foreign interference would show up as repairs.
	settle := func() {
		for _, id := range ids {
			s, _ := m.Get(id)
			for u := 0; u < 12; u++ {
				if _, err := s.BestResponse(u, "", 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	settle()
	before := make(map[string]bbncg.PoolStats, nSessions)
	for _, st := range m.List() {
		if st.Pool.Fills == 0 {
			t.Fatalf("session %s never filled a cache (test exercised nothing)", st.ID)
		}
		before[st.ID] = st.Pool
	}
	for i := 0; i < 3; i++ {
		settle()
	}
	for _, st := range m.List() {
		b := before[st.ID]
		if st.Pool.Resyncs != b.Resyncs {
			t.Fatalf("session %s resynced on an unchanged profile: %d -> %d", st.ID, b.Resyncs, st.Pool.Resyncs)
		}
		if st.Pool.Repairs != b.Repairs {
			t.Fatalf("session %s repaired on an unchanged profile: %d -> %d", st.ID, b.Repairs, st.Pool.Repairs)
		}
		if st.Pool.MemoHits <= b.MemoHits {
			t.Fatalf("session %s repeated queries missed the memo: %d -> %d", st.ID, b.MemoHits, st.Pool.MemoHits)
		}
	}
}

func TestGlobalBudgetEvictsLRU(t *testing.T) {
	// A global cap below two warm footprints: warming the second session
	// must evict the first (the LRU), and the evicted session must still
	// answer identically from a cold refill.
	m := openManager(t, t.TempDir(), Options{GlobalPoolBudget: 1 << 14})
	var ss [2]*Session
	for i := range ss {
		s, err := m.Create(api.CreateRequest{
			ID:    fmt.Sprintf("ev-%d", i),
			Graph: &bbncg.GeneratorSpec{Kind: "random", N: 24, B: 2, Seed: int64(i + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		ss[i] = s
	}
	warm := func(s *Session) {
		t.Helper()
		for u := 0; u < 24; u++ {
			if _, err := s.BestResponse(u, "", 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm(ss[0])
	want, _ := answers(t, ss[0])
	m.Get("ev-1") // make ev-1 most recent, ev-0 the LRU
	warm(ss[1])
	if n := m.Rebalance("ev-1"); n == 0 {
		t.Fatalf("rebalance evicted nothing over a %d-byte cap", int64(1<<14))
	}
	st0, st1 := ss[0].Stats(), ss[1].Stats()
	if st0.Evictions == 0 {
		t.Fatalf("LRU session not evicted (ev-0 %d evictions, ev-1 %d)", st0.Evictions, st1.Evictions)
	}
	got, _ := answers(t, ss[0])
	if !reflect.DeepEqual(want, got) {
		t.Fatal("evicted session answers differ after cold refill")
	}
}

func TestValidSessionID(t *testing.T) {
	for _, id := range []string{"a", "a-b-3", "s-0123456789abcdef"} {
		if err := ValidSessionID(id); err != nil {
			t.Errorf("ValidSessionID(%q) = %v", id, err)
		}
	}
	for _, id := range []string{"", "-lead", "UPPER", "has space", "dot.dot", strings.Repeat("a", 41)} {
		if err := ValidSessionID(id); err == nil {
			t.Errorf("ValidSessionID(%q) accepted", id)
		}
	}
}

// --- HTTP layer ---

func newTestServer(t *testing.T, opt Options) (*httptest.Server, *Manager) {
	t.Helper()
	m := openManager(t, t.TempDir(), opt)
	ts := httptest.NewServer(NewServer(m, Config{}))
	t.Cleanup(ts.Close)
	return ts, m
}

// call drives one JSON request and decodes the response into out.
func call(t *testing.T, ts *httptest.Server, method, path string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, Options{})

	var health api.Health
	if code := call(t, ts, "GET", "/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if health.Status != "ok" || !strings.Contains(health.Version, "bbncg") || health.Sessions != 0 {
		t.Fatalf("healthz: %+v", health)
	}
	if health.API != api.Version {
		t.Fatalf("healthz api version %q, want %q", health.API, api.Version)
	}

	var info api.SessionInfo
	if code := call(t, ts, "POST", "/v1/sessions", cycleRequest("web"), &info); code != 201 {
		t.Fatalf("create: %d", code)
	}
	if info.ID != "web" || info.N != 6 || info.Version != "SUM" || info.Responder != "greedy" {
		t.Fatalf("create info: %+v", info)
	}

	var eq api.EquilibriumResult
	if code := call(t, ts, "GET", "/v1/sessions/web/equilibrium", nil, &eq); code != 200 {
		t.Fatalf("equilibrium: %d", code)
	}
	if eq.Stable || eq.Witness == nil {
		t.Fatalf("cycle stable over HTTP: %+v", eq)
	}

	var rew api.RewireResult
	body := api.RewireRequest{Player: eq.Witness.Player, Strategy: eq.Witness.Strategy}
	if code := call(t, ts, "POST", "/v1/sessions/web/rewire", body, &rew); code != 200 || !rew.Changed {
		t.Fatalf("rewire: %d %+v", code, rew)
	}

	var br api.BestResponseResult
	path := fmt.Sprintf("/v1/sessions/web/bestresponse?player=%d", eq.Witness.Player)
	if code := call(t, ts, "GET", path, nil, &br); code != 200 {
		t.Fatalf("bestresponse: %d", code)
	}
	if br.Improves {
		t.Fatalf("player still improves after taking the witness: %+v", br)
	}
	if code := call(t, ts, "GET", "/v1/sessions/web/bestresponse", nil, nil); code != 400 {
		t.Fatalf("bestresponse without player: %d", code)
	}
	if code := call(t, ts, "GET", "/v1/sessions/web/bestresponse?player=banana", nil, nil); code != 400 {
		t.Fatalf("bestresponse with bad player: %d", code)
	}

	var wf api.WelfareResult
	if code := call(t, ts, "GET", "/v1/sessions/web/welfare", nil, &wf); code != 200 || wf.Social <= 0 {
		t.Fatalf("welfare: %d %+v", code, wf)
	}

	var dyn api.DynamicsResult
	if code := call(t, ts, "POST", "/v1/sessions/web/dynamics", api.DynamicsRequest{Rounds: 100}, &dyn); code != 200 {
		t.Fatalf("dynamics: %d", code)
	}
	if !dyn.Converged {
		t.Fatalf("dynamics did not converge: %+v", dyn)
	}
	if len(dyn.Trace) != dyn.Rounds {
		t.Fatalf("dynamics trace has %d rounds, report says %d", len(dyn.Trace), dyn.Rounds)
	}

	var withArcs api.SessionInfo
	if code := call(t, ts, "GET", "/v1/sessions/web?arcs=1", nil, &withArcs); code != 200 || len(withArcs.Arcs) != 6 {
		t.Fatalf("info with arcs: %d %+v", code, withArcs)
	}

	var stats api.StatsSnapshot
	if code := call(t, ts, "GET", "/statsz", nil, &stats); code != 200 || len(stats.Sessions) != 1 {
		t.Fatalf("statsz: %d %+v", code, stats)
	}
	if stats.Sessions[0].N != 6 || stats.Sessions[0].Pool.Acquires == 0 {
		t.Fatalf("statsz counters empty: %+v", stats.Sessions[0])
	}
	if stats.Draining {
		t.Fatalf("statsz reports draining on a live server")
	}

	if code := call(t, ts, "DELETE", "/v1/sessions/web", nil, nil); code != 200 {
		t.Fatalf("delete: %d", code)
	}
	if code := call(t, ts, "GET", "/v1/sessions/web", nil, nil); code != 404 {
		t.Fatalf("get after delete: %d", code)
	}
	if code := call(t, ts, "DELETE", "/v1/sessions/web", nil, nil); code != 404 {
		t.Fatalf("double delete: %d", code)
	}
	if code := call(t, ts, "POST", "/v1/sessions", map[string]any{"bogus": 1}, nil); code != 400 {
		t.Fatalf("unknown create field: %d", code)
	}
}
