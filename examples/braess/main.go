// Braess-style budget paradox (Section 5): giving every player a positive
// budget can make equilibria WORSE than the all-unit-budget game.
//
// With all budgets exactly 1, every equilibrium has diameter O(1)
// (Theorems 4.1/4.2). Yet the shift graphs of Lemma 5.2 are MAX
// equilibria with all-positive budgets and diameter sqrt(log n): more
// budget, worse network. This example builds both sides at comparable
// sizes and prints the comparison.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/dynamics"
)

func main() {
	fmt.Println("The bounded-budget Braess paradox (Section 5)")
	fmt.Println()

	// Side 1: all-unit budgets, n = 512. Best-response dynamics reach an
	// equilibrium whose diameter the theory pins at O(1). (We use n = 64
	// with the exact responder to keep this example instant.)
	rng := rand.New(rand.NewSource(7))
	g := core.UniformGame(64, 1, core.MAX)
	res, err := dynamics.RunFromRandom(g, rng, dynamics.Options{
		Responder:   core.ExactResponder(0),
		DetectLoops: true,
		MaxRounds:   2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatalf("unit-budget dynamics did not converge: %+v", res)
	}
	audit := analysis.AuditUnitBudget(res.Final)
	fmt.Printf("all budgets = 1, n = %d:\n", g.N())
	fmt.Printf("  equilibrium diameter   = %d   (theory: O(1), cycle <= 7)\n", audit.SocialCost)
	fmt.Printf("  unique cycle length    = %d\n", audit.CycleLen)
	fmt.Printf("  max distance to cycle  = %d\n", audit.MaxDistToCyc)
	fmt.Println()

	// Side 2: all budgets >= 1, via the Lemma 5.2 shift graph with
	// t = 2^k, k = 3: n = 512 and the equilibrium diameter is
	// k = sqrt(log2 n) = 3 — and it grows without bound as k does,
	// while the unit-budget diameter stays constant.
	sg, err := construct.NewShiftGraph(8, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	cert := sg.CertifyEquilibrium()
	if !cert.OK {
		log.Fatalf("shift graph certificate failed: %+v", cert)
	}
	minB, maxB := sg.D.N(), 0
	for _, b := range sg.Budgets() {
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	fmt.Printf("all budgets >= 1 (shift graph t=8, k=3), n = %d:\n", cert.N)
	fmt.Printf("  budgets range          = [%d, %d]  (everyone can build)\n", minB, maxB)
	fmt.Printf("  equilibrium diameter   = %d   (= sqrt(log2 %d) = %.0f)\n",
		cert.EccMax, cert.N, math.Sqrt(math.Log2(float64(cert.N))))
	fmt.Printf("  Lemma 5.2 certificate  = OK (every positive-outdegree orientation is a MAX equilibrium)\n")
	fmt.Println()

	fmt.Println("Conclusion: increasing everyone's budget from 'exactly 1' to")
	fmt.Println("'at least 1' admits equilibria whose diameter grows like")
	fmt.Println("sqrt(log n) — extra capacity degrades the stable network,")
	fmt.Println("the game-theoretic analogue of Braess's paradox.")
}
