package graph

// Unreached marks vertices not reached by a BFS.
const Unreached int32 = -1

// Scratch holds reusable BFS buffers so that the inner loops of cost
// evaluation and all-pairs computation allocate nothing. A Scratch is not
// safe for concurrent use; parallel workers each own one.
type Scratch struct {
	dist  []int32
	queue []int
	stamp []int64 // generation marks, avoids O(n) clearing per BFS
	gen   int64
}

// NewScratch returns scratch buffers for graphs with n vertices.
func NewScratch(n int) *Scratch {
	return &Scratch{
		dist:  make([]int32, n),
		queue: make([]int, 0, n),
		stamp: make([]int64, n),
	}
}

func (s *Scratch) reset() {
	s.gen++
	s.queue = s.queue[:0]
}

// seen reports whether v was visited in the current BFS and marks it.
func (s *Scratch) visit(v int, d int32) {
	s.stamp[v] = s.gen
	s.dist[v] = d
	s.queue = append(s.queue, v)
}

func (s *Scratch) visited(v int) bool { return s.stamp[v] == s.gen }

// Dist returns the distance to v from the source of the most recent BFS,
// or Unreached if v was not reached.
func (s *Scratch) Dist(v int) int32 {
	if !s.visited(v) {
		return Unreached
	}
	return s.dist[v]
}

// BFSResult aggregates the quantities the game needs from one BFS.
type BFSResult struct {
	Ecc     int32 // eccentricity within the reached set (0 for isolated src)
	Sum     int64 // sum of distances to reached vertices (src contributes 0)
	Reached int   // number of reached vertices, including the source
}

// BFS runs a breadth-first search over adjacency a from src using scratch
// s, leaving per-vertex distances readable via s.Dist.
func (s *Scratch) BFS(a Und, src int) BFSResult {
	s.reset()
	s.visit(src, 0)
	return s.run(a)
}

// run drains the queue; s.queue must already contain the frontier seeds.
func (s *Scratch) run(a Und) BFSResult {
	res := BFSResult{}
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		du := s.dist[u]
		if du > res.Ecc {
			res.Ecc = du
		}
		res.Sum += int64(du)
		for _, v := range a[u] {
			if !s.visited(v) {
				s.visit(v, du+1)
			}
		}
	}
	res.Reached = len(s.queue)
	return res
}

// DeviationBFS runs a BFS from vertex u in the graph obtained from base
// (the adjacency with all of u's owned arcs removed, see
// Digraph.UnderlyingWithout) by giving u the neighbourhood nbrs. nbrs must
// be the union of u's chosen strategy S and the owners of arcs into u;
// duplicates are tolerated. Distances to all other vertices are exactly
// those in the deviated graph because a shortest path from u never needs
// to revisit u.
func (s *Scratch) DeviationBFS(base Und, u int, nbrs ...[]int) BFSResult {
	s.reset()
	s.visit(u, 0)
	for _, group := range nbrs {
		for _, v := range group {
			if v != u && !s.visited(v) {
				s.visit(v, 1)
			}
		}
	}
	return s.run(base)
}

// DistancesToSetScratch runs a multi-source BFS from set using scratch s;
// per-vertex distances are then readable via s.Dist (Unreached for other
// components). The scratch is returned for call chaining in hot loops.
func DistancesToSetScratch(a Und, s *Scratch, set []int) *Scratch {
	s.reset()
	for _, v := range set {
		if !s.visited(v) {
			s.visit(v, 0)
		}
	}
	s.run(a)
	return s
}

// BFSDist returns a freshly allocated distance vector from src
// (Unreached = -1 for unreachable vertices). Convenience wrapper for
// callers outside hot loops.
func BFSDist(a Und, src int) []int32 {
	s := NewScratch(len(a))
	s.BFS(a, src)
	d := make([]int32, len(a))
	for v := range d {
		d[v] = s.Dist(v)
	}
	return d
}

// Eccentricity returns the maximum finite distance from src, and whether
// src reaches every vertex.
func Eccentricity(a Und, src int) (ecc int32, connected bool) {
	s := NewScratch(len(a))
	r := s.BFS(a, src)
	return r.Ecc, r.Reached == len(a)
}
