// Servedemo drives a running `bbncg serve` through one session
// lifecycle and prints the canonical answers — the client half of the
// restart-replay demo: run it with -setup against a fresh server,
// kill and restart the server on the same store directory, run it
// again without -setup, and diff the two outputs (they must be
// byte-identical; the CI smoke job does exactly this).
//
//	bbncg serve -addr :8080 -out /tmp/sessions &
//	servedemo -addr localhost:8080 -setup   > before.json
//	kill -9 %1; bbncg serve -addr :8080 -out /tmp/sessions &
//	servedemo -addr localhost:8080          > after.json
//	diff before.json after.json
//
// It speaks the v1 wire API exclusively through the typed client
// (repro/pkg/bbncg/client) and the shared api structs — no ad-hoc
// JSON shapes on either side of the wire.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/pkg/bbncg"
	"repro/pkg/bbncg/api"
	"repro/pkg/bbncg/client"
)

var (
	addr    = flag.String("addr", "localhost:8080", "bbncg serve address (host:port)")
	session = flag.String("session", "demo", "session id to create and query")
	setup   = flag.Bool("setup", false, "create the session and mutate it (first run); without it, only query")
	players = flag.Int("n", 8, "player count of the demo session (setup only)")
)

func main() {
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("servedemo: ")
	ctx := context.Background()
	c := client.New(*addr)

	if *setup {
		// Create a seeded random session — the arc list is materialised
		// server-side, so replay never re-runs the generator.
		_, err := c.CreateSession(ctx, api.CreateRequest{
			ID:    *session,
			Graph: &bbncg.GeneratorSpec{Kind: "random", N: *players, B: 2, Seed: 7},
		})
		if err != nil {
			log.Fatal(err)
		}
		// Mutate: a few dynamics rounds, then one explicit rewire taken
		// from the equilibrium witness (if any player still improves).
		if _, err := c.Dynamics(ctx, *session, 2); err != nil {
			log.Fatal(err)
		}
		eq, err := c.Equilibrium(ctx, *session, "", 0)
		if err != nil {
			log.Fatal(err)
		}
		if !eq.Stable && eq.Witness != nil {
			_, err := c.Rewire(ctx, *session, api.RewireRequest{
				Player:   eq.Witness.Player,
				Strategy: eq.Witness.Strategy,
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	}

	// Query: profile, per-player best responses, welfare — printed as
	// canonical JSON lines so two runs diff cleanly. The replayed flag
	// and memo bit legitimately differ across a restart and are zeroed.
	info, err := c.Session(ctx, *session, true)
	if err != nil {
		log.Fatal(err)
	}
	info.Replayed = false
	emit(info)

	for u := 0; u < info.N; u++ {
		br, err := c.BestResponse(ctx, *session, u, "", 0)
		if err != nil {
			log.Fatal(fmt.Errorf("bestresponse player %d: %w", u, err))
		}
		br.Memo = false
		emit(br)
	}
	wf, err := c.Welfare(ctx, *session)
	if err != nil {
		log.Fatal(err)
	}
	emit(wf)
}

// emit prints one canonical JSON line (stable field order, no HTML
// escaping — both runs marshal the same typed structs, so the diff is
// byte-exact).
func emit(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}
