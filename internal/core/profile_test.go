package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestProfileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	budgets := []int{2, 0, 1, 3, 1}
	d := graph.RandomOutDigraph(budgets, rng)
	p := ProfileOf(d)
	if !p.Realize().Equal(d) {
		t.Fatal("ProfileOf/Realize round trip failed")
	}
}

func TestProfileCloneIndependent(t *testing.T) {
	p := Profile{{1, 2}, {0}, {}}
	c := p.Clone()
	c[0][0] = 9
	if p[0][0] == 9 {
		t.Fatal("clone shares backing arrays")
	}
	if !p.Equal(p.Clone()) {
		t.Fatal("clone not equal")
	}
}

func TestProfileEqual(t *testing.T) {
	p := Profile{{1}, {0}}
	if p.Equal(Profile{{1}}) {
		t.Fatal("length mismatch compares equal")
	}
	if p.Equal(Profile{{1, 2}, {0}}) {
		t.Fatal("strategy length mismatch compares equal")
	}
	if p.Equal(Profile{{2}, {0}}) {
		t.Fatal("different strategies compare equal")
	}
	if !p.Equal(Profile{{1}, {0}}) {
		t.Fatal("equal profiles compare unequal")
	}
}

func TestProfileHashSentinels(t *testing.T) {
	// ({1},{2},{}) vs ({1,2},{},{}) must hash differently.
	p := Profile{{1}, {2}, {}}
	q := Profile{{1, 2}, {}, {}}
	if p.Hash() == q.Hash() {
		t.Fatal("sentinel-distinguished profiles collide")
	}
}

func TestProfileHashEqualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = rng.Intn(n)
		}
		d := graph.RandomOutDigraph(budgets, rng)
		p := ProfileOf(d)
		q := p.Clone()
		if p.Hash() != q.Hash() {
			return false // equal profiles must collide
		}
		// A mutated profile should (overwhelmingly) hash differently.
		for u := 0; u < n; u++ {
			if len(q[u]) > 0 {
				old := q[u][0]
				for v := 0; v < n; v++ {
					if v != u && v != old && !contains(q[u], v) {
						q[u][0] = v
						break
					}
				}
				if q[u][0] != old {
					break
				}
			}
		}
		return p.Equal(q) || p.Hash() != q.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestProfileValid(t *testing.T) {
	g := MustGame([]int{1, 0}, SUM)
	if !(Profile{{1}, {}}).Valid(g) {
		t.Fatal("valid profile rejected")
	}
	if (Profile{{1}}).Valid(g) {
		t.Fatal("short profile accepted")
	}
	if (Profile{{0}, {}}).Valid(g) {
		t.Fatal("self-loop accepted")
	}
	if (Profile{{}, {}}).Valid(g) {
		t.Fatal("budget mismatch accepted")
	}
	g3 := MustGame([]int{2, 0, 0}, SUM)
	if (Profile{{2, 1}, {}, {}}).Valid(g3) {
		t.Fatal("unsorted strategy accepted")
	}
	if !(Profile{{1, 2}, {}, {}}).Valid(g3) {
		t.Fatal("sorted strategy rejected")
	}
}
