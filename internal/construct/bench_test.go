package construct

import (
	"testing"
)

func BenchmarkExistenceCase1(b *testing.B) {
	budgets := []int{0, 0, 0, 2, 2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Existence(budgets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExistenceCase2Figure1(b *testing.B) {
	budgets := make([]int, 22)
	budgets[16] = 2
	for i := 17; i < 22; i++ {
		budgets[i] = 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Existence(budgets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpiderBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := Spider(20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerfectBinaryTreeBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := PerfectBinaryTree(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShiftGraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewShiftGraph(8, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShiftGraphCertify(b *testing.B) {
	sg, err := NewShiftGraph(8, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cert := sg.CertifyEquilibrium(); !cert.OK {
			b.Fatal("certificate failed")
		}
	}
}
