package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Exact best response: full C(n-1, b) strategy enumeration. Large spaces
// are sharded across a worker pool by first combination element, each
// worker owning private scratch (per the Scratch concurrency contract)
// and a stack of partial min-vectors over the shared distance cache, so a
// leaf evaluation costs one O(n) pass instead of a BFS. Results are
// deterministic and identical to sequential enumeration: the minimiser
// with ties broken toward the currently played strategy, then toward the
// lexicographically smallest strategy (= enumeration order).

// exactParallelMinSpace is the strategy-space size beyond which
// ExactBestResponse shards enumeration across workers; below it the
// goroutine fan-out costs more than it saves. Variable so tests can force
// the parallel path on small instances.
var exactParallelMinSpace int64 = 2048

// ExactBestResponse enumerates every strategy of player u in realization d
// and returns a minimiser. maxCandidates bounds the enumeration (0 means
// no bound); if the strategy space exceeds it an error is returned, since
// a truncated enumeration would not be a best response.
//
// Ties are broken in favour of the currently played strategy (so a vertex
// already playing optimally reports its own strategy), then
// lexicographically by the enumeration order.
func (g *Game) ExactBestResponse(d *graph.Digraph, u int, maxCandidates int64) (BestResponse, error) {
	n := g.N()
	b := g.Budgets[u]
	space := StrategySpaceSize(n, b)
	if maxCandidates > 0 && space > maxCandidates {
		return BestResponse{}, fmt.Errorf("core: strategy space C(%d,%d) = %d exceeds budget %d candidates",
			n-1, b, space, maxCandidates)
	}
	dv := NewDeviator(g, d, u)
	defer dv.release()
	if space >= int64(n) {
		// The cache fill costs n BFS; below n evaluations it cannot pay
		// for itself.
		dv.EnsureCache(DefaultCacheBudget)
	}
	return g.exactOn(dv, d), nil
}

// exactOn enumerates on a prepared Deviator (cached or not; possibly
// pooled). Results — minimiser, tie-breaking, explored count — are
// identical on every path.
func (g *Game) exactOn(dv *Deviator, d *graph.Digraph) BestResponse {
	n := g.N()
	u := dv.u
	b := g.Budgets[u]
	space := StrategySpaceSize(n, b)
	cur := append([]int(nil), d.Out(u)...)
	best := BestResponse{Strategy: cur, Current: dv.Eval(cur)}
	best.Cost = best.Current

	targets := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != u {
			targets = append(targets, v)
		}
	}
	if b == 0 {
		best.Explored = 1 // the single empty strategy, already played
		return best
	}
	if b > len(targets) {
		return best // degenerate budget: no strategy of size b exists
	}
	if dv.sumPrune() {
		// Build the shared column-min bound once, before any clone: the
		// workers' pruning suffixes all derive from it.
		dv.ensureColMin()
	}
	firsts := len(targets) - b + 1
	workers := runtime.GOMAXPROCS(0)
	if workers > firsts {
		workers = firsts
	}
	if space < exactParallelMinSpace || workers <= 1 {
		e := newExactLocal(dv, targets, b, best.Current)
		for i0 := 0; i0 < firsts; i0++ {
			e.run(i0)
		}
		mergeExact(&best, e)
		return best
	}
	locals := make([]*exactLocal, workers)
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			e := newExactLocal(dv.clone(), targets, b, best.Current)
			locals[w] = e
			for {
				i0 := int(atomic.AddInt64(&next, 1)) - 1
				if i0 >= firsts {
					return
				}
				e.run(i0)
			}
		}(w)
	}
	wg.Wait()
	mergeExact(&best, locals...)
	return best
}

// exactLocal is one enumeration worker: a combination walker with a stack
// of partial min-vectors (cached path) or a strategy buffer fed to BFS
// evaluation (fallback path), plus the worker-local minimum.
type exactLocal struct {
	dv       *Deviator
	targets  []int
	b        int
	cached   bool
	prune    bool      // SUM bounded-kernel leaves (see sumkernel.go)
	suf      []int64   // leaf pruning bound: suffix sums against inMin
	strategy []int     // combination prefix as vertex ids
	vecs     [][]int32 // vecs[k]: min-vector of in(u) + first k chosen anchors; vecs[0] aliases inMin
	reach    *touched  // component labels touched by in(u) + prefix
	marks    []int     // label newly marked at depth k, or -1
	explored int64
	bestCost int64
	bestStr  []int // nil while nothing beats the current strategy
}

func newExactLocal(dv *Deviator, targets []int, b int, current int64) *exactLocal {
	e := &exactLocal{
		dv:       dv,
		targets:  targets,
		b:        b,
		cached:   dv.HasCache(),
		strategy: make([]int, b),
		marks:    make([]int, b),
		bestCost: current,
	}
	if e.cached {
		n := dv.game.N()
		e.vecs = make([][]int32, b)
		e.vecs[0] = dv.inMin
		for k := 1; k < b; k++ {
			e.vecs[k] = getInt32(n)
		}
		e.reach = dv.newTouched()
		if dv.sumPrune() {
			// The inMin suffix bound is valid for every leaf: each
			// partial min-vector only shrinks entries below inMin, never
			// below min(inMin, colMin). It is worker-local scratch
			// (clones share colMin but fill their own suffix).
			e.prune = true
			e.suf = dv.inMinSuffix()
		}
	}
	return e
}

// run enumerates every combination whose first element is targets[i0].
func (e *exactLocal) run(i0 int) {
	if e.b == 1 {
		e.leaf(e.targets[i0])
		return
	}
	e.push(0, e.targets[i0])
	e.rec(i0+1, 1)
	e.pop(0)
}

func (e *exactLocal) rec(start, k int) {
	if k == e.b-1 {
		for i := start; i < len(e.targets); i++ {
			e.leaf(e.targets[i])
		}
		return
	}
	for i := start; i <= len(e.targets)-(e.b-k); i++ {
		e.push(k, e.targets[i])
		e.rec(i+1, k+1)
		e.pop(k)
	}
}

func (e *exactLocal) push(k, t int) {
	e.strategy[k] = t
	if !e.cached {
		return
	}
	copy(e.vecs[k+1], e.vecs[k])
	e.dv.mergeRow(e.vecs[k+1], t)
	e.marks[k] = e.reach.mark(t)
}

func (e *exactLocal) pop(k int) {
	if e.cached {
		e.reach.unmark(e.marks[k])
	}
}

func (e *exactLocal) leaf(t int) {
	e.explored++
	e.strategy[e.b-1] = t
	var c int64
	switch {
	case e.prune:
		// The worker-local incumbent is the pruning budget: a pruned leaf
		// is certified strictly worse, so the kept minimiser (and the
		// lexicographic tie-breaking, which only ever compares strict
		// improvements) is identical to the full enumeration.
		var pruned bool
		c, pruned = e.dv.sumEvalBounded(e.vecs[e.b-1], t, e.suf, e.bestCost)
		if pruned {
			return
		}
	case e.cached:
		r := e.dv.aggregate(e.vecs[e.b-1], t)
		c = e.dv.costOf(r, e.reach.with(t))
	default:
		c = e.dv.Eval(e.strategy)
	}
	// Strict improvement only: within a worker enumeration is
	// lexicographically increasing, so the kept strategy is the
	// lexicographically first among the worker's minimisers.
	if c < e.bestCost {
		e.bestCost = c
		e.bestStr = append(e.bestStr[:0], e.strategy...)
	}
}

func (e *exactLocal) release() {
	for k := 1; k < len(e.vecs); k++ {
		putInt32(e.vecs[k])
	}
	e.vecs = nil
}

// mergeExact folds worker-local minima into best, preserving the
// sequential tie-breaking: the current strategy wins cost ties (a worker
// only reports strict improvements), and among equal-cost improvements
// the lexicographically smallest strategy wins.
func mergeExact(best *BestResponse, locals ...*exactLocal) {
	for _, e := range locals {
		if e == nil {
			continue
		}
		best.Explored += e.explored
		if e.bestStr != nil &&
			(e.bestCost < best.Cost ||
				(e.bestCost == best.Cost && best.Cost < best.Current && lexLess(e.bestStr, best.Strategy))) {
			best.Cost = e.bestCost
			best.Strategy = append([]int(nil), e.bestStr...)
		}
		e.release()
	}
}

// lexLess compares equal-length strategies lexicographically.
func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
