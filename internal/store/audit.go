package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// AuditShard is the doctor's view of one shard file.
type AuditShard struct {
	Exp      string `json:"exp"`
	File     string `json:"file"`
	Records  int    `json:"records"`
	Manifest int    `json:"manifest"` // record count the manifest claims, -1 if unlisted
	// Problems local to this shard, already merged into the report's
	// Problems list: checksum failures, duplicate IDs, a truncated tail.
	BadRecords int  `json:"bad_records"`
	Truncated  bool `json:"truncated"`
}

// AuditReport is the machine-readable result of Audit — what
// `bbncg doctor` prints as JSON. Problems are conditions a user should
// act on (rerun with -resume, restore from a replica); Notes are
// historical facts (a quarantine file from an already-repaired
// corruption) that need no action.
type AuditReport struct {
	Dir         string       `json:"dir"`
	Format      int          `json:"format"`
	Shards      []AuditShard `json:"shards"`
	Failures    int          `json:"failures"`              // entries in failed.jsonl
	Outstanding []Failure    `json:"outstanding,omitempty"` // failures whose point is still absent
	Problems    []string     `json:"problems"`
	Notes       []string     `json:"notes"`
}

// OK reports whether the audit found nothing needing action.
func (r *AuditReport) OK() bool { return len(r.Problems) == 0 }

// Audit inspects a store directory without modifying it — unlike Open
// it repairs nothing, so it can diagnose a directory exactly as a
// crash or bit-rot left it. knownExps, when given, lets it flag shards
// of experiments this build does not know (a typo'd or foreign store);
// an entry ending in `*` matches any experiment with that prefix (how
// the doctor admits `session-<id>` serve shards without enumerating
// session ids). It returns an error only when the directory itself is
// unreadable;
// every finding inside it is a Problem or Note in the report.
func Audit(dir string, knownExps ...string) (*AuditReport, error) {
	rep := &AuditReport{Dir: dir, Problems: []string{}, Notes: []string{}}
	problemf := func(format string, args ...any) {
		rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
	}
	notef := func(format string, args ...any) {
		rep.Notes = append(rep.Notes, fmt.Sprintf(format, args...))
	}
	known := make(map[string]bool, len(knownExps))
	var knownPrefixes []string
	for _, e := range knownExps {
		if p, ok := strings.CutSuffix(e, "*"); ok {
			knownPrefixes = append(knownPrefixes, p)
		} else {
			known[e] = true
		}
	}
	isKnown := func(exp string) bool {
		if known[exp] {
			return true
		}
		for _, p := range knownPrefixes {
			if strings.HasPrefix(exp, p) {
				return true
			}
		}
		return false
	}

	manifest := map[string]int{} // file -> claimed records
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	switch {
	case os.IsNotExist(err):
		notef("no manifest.json (never synced, or crashed before first sync)")
		manifest = nil
	case err != nil:
		return nil, fmt.Errorf("store: audit: %w", err)
	default:
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			problemf("manifest.json is corrupt: %v", err)
			manifest = nil
		} else {
			rep.Format = m.Format
			if m.Format != FormatVersion {
				problemf("manifest format %d, this build reads %d", m.Format, FormatVersion)
			}
			for _, sh := range m.Shards {
				manifest[sh.File] = sh.Records
			}
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: audit: %w", err)
	}
	shardRecords := make(map[string]bool) // IDs seen across all shards
	seenFiles := make(map[string]bool)
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case ent.IsDir() || !strings.HasSuffix(name, ".jsonl"):
			continue
		case name == failuresFile:
			continue
		case strings.HasSuffix(name, badSuffix):
			notef("quarantine file %s holds previously corrupt records", name)
			continue
		}
		seenFiles[name] = true
		sh := auditShard(dir, name, shardRecords, problemf)
		if manifest == nil {
			sh.Manifest = -1
		} else if claimed, listed := manifest[name]; listed {
			sh.Manifest = claimed
			if claimed != sh.Records {
				problemf("shard %s holds %d records, manifest claims %d (stale manifest; reopen refreshes it)",
					name, sh.Records, claimed)
			}
		} else {
			sh.Manifest = -1
			problemf("shard %s is not listed in the manifest", name)
		}
		if len(knownExps) > 0 && !isKnown(sh.Exp) {
			problemf("shard %s belongs to experiment %q, unknown to this build", name, sh.Exp)
		}
		rep.Shards = append(rep.Shards, sh)
	}
	sort.Slice(rep.Shards, func(i, j int) bool { return rep.Shards[i].File < rep.Shards[j].File })
	for file := range manifest {
		if !seenFiles[file] {
			problemf("manifest lists shard %s but the file is missing", file)
		}
	}

	fails, err := readFailures(dir)
	if err != nil {
		return nil, err
	}
	rep.Failures = len(fails)
	outstanding := make(map[string]Failure)
	for _, f := range fails {
		if shardRecords[f.ID] {
			delete(outstanding, f.ID) // resolved by a later successful run
		} else {
			outstanding[f.ID] = f
		}
	}
	if len(fails) > 0 && len(outstanding) == 0 {
		notef("%d quarantined failures in %s, all since resolved", len(fails), failuresFile)
	}
	ids := make([]string, 0, len(outstanding))
	for id := range outstanding {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		f := outstanding[id]
		rep.Outstanding = append(rep.Outstanding, f)
		problemf("point %s (%s %s) failed and was never re-evaluated: %s (rerun with -resume)",
			f.ID, f.Exp, f.Key, f.Err)
	}
	return rep, nil
}

// auditShard scans one shard file read-only, recording its record
// count and reporting per-record problems.
func auditShard(dir, name string, seen map[string]bool, problemf func(string, ...any)) AuditShard {
	sh := AuditShard{File: name}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		problemf("shard %s is unreadable: %v", name, err)
		return sh
	}
	lineNo := 0
	for pos := 0; pos < len(data); {
		nl := bytes.IndexByte(data[pos:], '\n')
		if nl < 0 {
			sh.Truncated = true
			problemf("shard %s has an unterminated final line (crash tail; reopen repairs it)", name)
			break
		}
		lineNo++
		line := data[pos : pos+nl]
		pos += nl + 1
		if len(line) == 0 {
			continue
		}
		var rec Record
		switch {
		case json.Unmarshal(line, &rec) != nil || rec.ID == "":
			sh.BadRecords++
			problemf("shard %s line %d is not a valid record (reopen quarantines it)", name, lineNo)
			continue
		case rec.Sum != "" && rec.Sum != rec.checksum():
			sh.BadRecords++
			problemf("shard %s line %d (%s) fails its checksum (reopen quarantines it)", name, lineNo, rec.ID)
			continue
		case seen[rec.ID]:
			// Count distinct IDs, matching the manifest's convention, so
			// a duplicate is one problem, not a knock-on count mismatch.
			problemf("shard %s line %d duplicates record ID %s", name, lineNo, rec.ID)
			continue
		}
		if sh.Exp == "" {
			sh.Exp = rec.Exp
		}
		seen[rec.ID] = true
		sh.Records++
	}
	return sh
}
