// Package construct builds the explicit graphs the paper's proofs use:
// the Theorem 2.3 equilibria that establish existence of Nash equilibria
// for every budget vector (Figure 1 is its Case 2 at n=22), the Theorem
// 3.2 spider with diameter Theta(n) in the MAX version (Figure 2), the
// Theorem 3.4 perfect binary tree with diameter Theta(log n) in the SUM
// version, the Lemma 5.2 shift graph whose MAX equilibria have diameter
// sqrt(log n) (Theorem 5.3), and canonical unit-budget instances for
// Section 4.
package construct

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Existence builds a Nash equilibrium realization of the budget vector,
// valid in both the MAX and SUM versions, following the three-case
// construction in the proof of Theorem 2.3. The returned graph has
// diameter at most 4 whenever the budgets sum to at least n-1, which is
// what makes the price of stability O(1).
func Existence(budgets []int) (*graph.Digraph, error) {
	n := len(budgets)
	for i, b := range budgets {
		if b < 0 || b >= n {
			return nil, fmt.Errorf("construct: budget b[%d]=%d out of range [0,%d)", i, b, n)
		}
	}
	d := graph.NewDigraph(n)
	if n <= 1 {
		return d, nil
	}
	// Work on slots 1..n with nondecreasing budgets; slot j holds the
	// original vertex perm[j-1]. The construction is written against the
	// paper's sorted indexing and mapped back through perm.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return budgets[perm[a]] < budgets[perm[b]] })
	bs := make([]int, n+1) // 1-based sorted budgets
	for j := 1; j <= n; j++ {
		bs[j] = budgets[perm[j-1]]
	}
	sigma := 0
	z := 0
	for j := 1; j <= n; j++ {
		sigma += bs[j]
		if bs[j] == 0 {
			z++
		}
	}
	add := func(u, v int) { d.AddArc(perm[u-1], perm[v-1]) }
	outdeg := func(u int) int { return d.OutDegree(perm[u-1]) }
	hasArc := func(u, v int) bool { return d.HasArc(perm[u-1], perm[v-1]) }

	switch {
	case sigma >= n-1 && bs[n] >= z:
		existenceCase1(d, perm, bs, add, outdeg)
	case sigma >= n-1:
		if err := existenceCase2(n, z, bs, add, outdeg, hasArc); err != nil {
			return nil, err
		}
	default:
		if err := existenceCase3(n, budgets, perm, bs, d); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// existenceCase1 handles sigma >= n-1 and b_n >= z: one high-budget hub
// vn covers all zero-budget vertices; everyone else attaches to vn; spare
// budget is spent on non-adjacent vertices and braces are swapped away.
func existenceCase1(d *graph.Digraph, perm []int, bs []int,
	add func(u, v int), outdeg func(u int) int) {
	n := len(perm)
	bn := bs[n]
	for j := 1; j <= bn; j++ {
		add(n, j)
	}
	for i := bn + 1; i <= n-1; i++ {
		add(i, n)
	}
	// Spend remaining budgets, preferring targets not yet adjacent so the
	// graph stays (mostly) brace-free.
	a := d.Underlying()
	for slot := 1; slot <= n; slot++ {
		u := perm[slot-1]
		for d.OutDegree(u) < bs[slot] {
			target := -1
			for w := 0; w < n; w++ {
				if w != u && !a.HasEdge(u, w) {
					target = w
					break
				}
			}
			if target < 0 {
				// Adjacent to everyone: a brace is unavoidable but
				// harmless (local diameter 1 satisfies Lemma 2.2).
				for w := 0; w < n; w++ {
					if w != u && !d.HasArc(u, w) {
						target = w
						break
					}
				}
			}
			d.AddArc(u, target)
			a = d.Underlying()
		}
	}
	// Brace elimination: replace u->v in a brace with an arc to a
	// non-adjacent vertex while u has local diameter 2; each replacement
	// removes one brace and creates none, so the loop terminates.
	for {
		swapped := false
		a = d.Underlying()
		for _, br := range d.Braces() {
			for _, u := range []int{br[0], br[1]} {
				v := br[0] + br[1] - u
				ecc, conn := graph.Eccentricity(a, u)
				if !conn || ecc < 2 {
					continue
				}
				target := -1
				for w := 0; w < d.N(); w++ {
					if w != u && !a.HasEdge(u, w) {
						target = w
						break
					}
				}
				if target < 0 {
					continue
				}
				d.RemoveArc(u, v)
				d.AddArc(u, target)
				swapped = true
				break
			}
			if swapped {
				break
			}
		}
		if !swapped {
			return
		}
	}
}

// existenceCase2 handles sigma >= n-1 and b_n < z: no single vertex can
// cover all zero-budget players, so the top budgets share set A between
// them, exactly as in Figure 1. Slots follow the paper's 1-based
// indexing: A = 1..z, B = z+1..t, C = t+1..n-1, hub = n.
func existenceCase2(n, z int, bs []int,
	add func(u, v int), outdeg func(u int) int, hasArc func(u, v int) bool) error {
	suffix := make([]int, n+2) // suffix[i] = bs[i] + ... + bs[n]
	for i := n; i >= 1; i-- {
		suffix[i] = suffix[i+1] + bs[i]
	}
	t := -1
	for cand := n - 1; cand >= z+1; cand-- {
		if suffix[cand] >= z+n-cand {
			t = cand
			break
		}
	}
	if t < 0 {
		return fmt.Errorf("construct: case 2 found no valid t (n=%d z=%d)", n, z)
	}
	// Phase 1: B ∪ C -> vn.
	for i := z + 1; i <= n-1; i++ {
		add(i, n)
	}
	// Phase 2: {vn} ∪ C ∪ {vt} -> A, consuming A left to right.
	pos := 1
	for j := 0; j < bs[n]; j++ {
		add(n, pos)
		pos++
	}
	for i := n - 1; i >= t+1; i-- {
		for j := 0; j < bs[i]-1; j++ {
			add(i, pos)
			pos++
		}
	}
	s := z + n - (t + 1) - (suffix[t+1])
	if s <= 0 {
		return fmt.Errorf("construct: case 2 slack s=%d must be positive", s)
	}
	for j := 0; j < s; j++ {
		add(t, pos)
		pos++
	}
	if pos != z+1 {
		return fmt.Errorf("construct: case 2 consumed %d of %d zero-budget slots", pos-1, z)
	}
	// Phase 3: B -> C ∪ {vt}, targets in reverse order v_{n-1},...,v_t.
	for u := z + 1; u <= t; u++ {
		for target := n - 1; target >= t && outdeg(u) < bs[u]; target-- {
			if target == u || hasArc(u, target) {
				continue
			}
			add(u, target)
		}
	}
	// Phase 4: B -> A, targets in order v_1, v_2, ...
	for u := z + 1; u <= t; u++ {
		for target := 1; target <= z && outdeg(u) < bs[u]; target++ {
			if hasArc(u, target) {
				continue
			}
			add(u, target)
		}
		if outdeg(u) != bs[u] {
			return fmt.Errorf("construct: case 2 vertex slot %d ended with outdegree %d, budget %d",
				u, outdeg(u), bs[u])
		}
	}
	return nil
}

// existenceCase3 handles sigma < n-1: every realization is disconnected.
// The suffix of players from the smallest m with b_m+...+b_n >= n-m forms
// a connected equilibrium among themselves (built recursively; the
// sub-instance lands in case 1 or 2), and everyone before m is an
// isolated zero-budget vertex.
func existenceCase3(n int, budgets, perm []int, bs []int, d *graph.Digraph) error {
	suffix := 0
	m := -1
	for i := n; i >= 1; i-- {
		suffix += bs[i]
		if suffix >= n-i {
			m = i
		}
	}
	// m always exists: i = n gives suffix >= 0 = n-n.
	sub := make([]int, 0, n-m+1)
	for j := m; j <= n; j++ {
		sub = append(sub, bs[j])
	}
	subGraph, err := Existence(sub)
	if err != nil {
		return err
	}
	for su := 0; su < subGraph.N(); su++ {
		for _, sv := range subGraph.Out(su) {
			d.AddArc(perm[m-1+su], perm[m-1+sv])
		}
	}
	return nil
}
