// Package dynamics runs (best-)response dynamics for bounded budget
// network creation games: starting from a profile, players revise their
// strategies one at a time until a fixed point (a Nash equilibrium when
// the responder is exact), a detected cycle of profiles, or a round
// budget is exhausted. Section 8 of the paper leaves convergence of these
// dynamics open — Laoutaris et al. exhibited loops in the directed
// variant — so the engine detects loops exactly via profile hashing with
// full-profile confirmation, and the harness reports convergence
// statistics as an empirical answer.
package dynamics

import (
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sweep"
)

// Scheduler yields the order in which players move in one round.
type Scheduler interface {
	// Order fills dst with a permutation of 0..n-1 for the given round.
	Order(dst []int, round int)
	Name() string
}

// RoundRobin moves players in index order every round.
type RoundRobin struct{}

// Order fills dst with the identity permutation.
func (RoundRobin) Order(dst []int, round int) {
	for i := range dst {
		dst[i] = i
	}
}

// Name identifies the scheduler in reports.
func (RoundRobin) Name() string { return "round-robin" }

// RandomOrder shuffles the player order independently each round.
type RandomOrder struct{ Rng *rand.Rand }

// Order fills dst with a fresh random permutation.
func (s RandomOrder) Order(dst []int, round int) {
	for i := range dst {
		dst[i] = i
	}
	s.Rng.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}

// Name identifies the scheduler in reports.
func (s RandomOrder) Name() string { return "random-order" }

// Options configure a dynamics run.
type Options struct {
	Responder core.Responder // required
	Scheduler Scheduler      // defaults to RoundRobin
	MaxRounds int            // defaults to 1000
	// RecordTrajectory stores the social cost (diameter) after every
	// round in Result.Trajectory.
	RecordTrajectory bool
	// DetectLoops tracks visited profiles and stops when one repeats.
	// Hash hits are confirmed against the stored profile, so a reported
	// loop is exact, never a collision artefact.
	DetectLoops bool
	// Parallel evaluates responders on a worker pool. Results are
	// identical to the sequential engine: sequential rounds precompute
	// every player's response against the round-start profile in
	// parallel and revalidate sequentially once a move lands
	// (speculation pays off because converging runs spend most rounds
	// with few or no moves); simultaneous rounds are embarrassingly
	// parallel by definition. Requires the Responder to be safe for
	// concurrent invocation against a fixed graph — all responders in
	// package core are.
	Parallel bool
	// Cached is the pooled (Deviator) form of Responder. When set — and
	// the incremental path is enabled (core.IncrementalEnabled; disable
	// with BBNCG_INCREMENTAL=0 for A/B benching) — the engine keeps one
	// cached Deviator per player in a core.CachePool for the whole run:
	// after each accepted move the pool is invalidated and each player's
	// dist_{G-u} matrix is lazily *repaired* (delta BFS over the edges
	// the movers actually changed) on its next use instead of refilled
	// from scratch, which removes the dominant O(n²)-fill-per-mover cost
	// of cached dynamics. Cached must compute exactly the same response
	// as Responder; the built-in core pairs do, pinned by equivalence
	// tests. Results are identical with and without it.
	Cached core.DeviatorResponder
	// PoolBudget caps the cache pool size in bytes; 0 means
	// core.DefaultPoolBudget.
	PoolBudget int64
	// Pool supplies an external cache pool that survives across engine
	// calls (it is not Closed by the run); the caller owns its lifetime
	// and must have built it for the same game. When nil — the normal
	// case — the engine creates a pool per run. Useful to amortise
	// warm caches over many short runs of the same instance.
	Pool *core.CachePool
	// Weights runs the dynamics under arc weights (graph.Weights): the
	// run-owned pool becomes a weighted pool whose entries evaluate
	// weighted shortest-path costs, and the recorded trajectory is the
	// weighted social cost. The caller must supply matching weighted
	// responders (core.WeightedGreedyResponder(Weights), ...) as
	// Responder; Cached needs no weighted variant, since the pool hands
	// it weighted Deviators. An external Pool must have been built by
	// core.NewWeightedCachePool over the same weights.
	Weights *graph.Weights
}

// newPool resolves the run's cache pool: nil when the incremental path
// is off (no Cached responder, or disabled by environment), the
// caller's external pool when supplied, else a fresh run-owned pool.
// owned reports whether the run must Close it.
func (opts Options) newPool(g *core.Game) (pool *core.CachePool, owned bool) {
	if opts.Cached == nil || !core.IncrementalEnabled() {
		return nil, false
	}
	if opts.Pool != nil {
		return opts.Pool, false
	}
	return core.NewWeightedCachePool(g, opts.PoolBudget, opts.Weights), true
}

// socialCost is the trajectory metric of a run: weighted diameter when
// the run carries arc weights, plain diameter otherwise.
func (opts Options) socialCost(g *core.Game, d *graph.Digraph) int64 {
	if opts.Weights != nil {
		return g.WeightedSocialCost(d, opts.Weights)
	}
	return g.SocialCost(d)
}

// respondWith returns the per-player response function of a run: the
// pooled path (acquire → evaluate on the repaired cache → unpin) when
// pool is live, the plain Responder otherwise. next names the predicted
// next mover (-1 for none): while u's scan runs, the pool speculatively
// resyncs next's entry on a spare core. On the pooled path the
// round-level memo short-circuits the whole scan when the graph is
// anchored exactly where it was the last time u answered "no improving
// move" (the skip returns the zero BestResponse, which does not
// improve — the answer the scan would reproduce).
func respondWith(g *core.Game, pool *core.CachePool, opts Options) func(d *graph.Digraph, u, next int) core.BestResponse {
	if pool == nil {
		return func(d *graph.Digraph, u, _ int) core.BestResponse {
			return opts.Responder(g, d, u)
		}
	}
	return func(d *graph.Digraph, u, next int) core.BestResponse {
		if pool.SkipResponse(d, u) {
			return core.BestResponse{}
		}
		dv := pool.Acquire(d, u)
		var wait func()
		if next >= 0 {
			wait = pool.Prefetch(d, next)
		}
		br := opts.Cached(g, d, dv)
		dv.Release()
		if wait != nil {
			wait()
		}
		pool.NoteResponse(d, u, br.Improves())
		return br
	}
}

// Result summarises a dynamics run.
type Result struct {
	Converged  bool // a full round passed with no strategy change
	Loop       bool // an earlier profile recurred (only if DetectLoops)
	LoopLength int  // rounds between the repeats, when Loop
	Rounds     int  // full rounds executed
	Moves      int  // strategy changes applied
	Final      *graph.Digraph
	Trajectory []int64 // social cost after each round (if recorded)
}

// Run executes response dynamics for game g from the initial realization
// start (which is not modified). If the responder is exact, a converged
// final graph is a Nash equilibrium of g.
func Run(g *core.Game, start *graph.Digraph, opts Options) (Result, error) {
	if err := g.CheckRealization(start); err != nil {
		return Result{}, err
	}
	if opts.Responder == nil {
		return Result{}, fmt.Errorf("dynamics: Options.Responder is required")
	}
	if opts.Scheduler == nil {
		opts.Scheduler = RoundRobin{}
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 1000
	}
	d := start.Clone()
	n := g.N()
	order := make([]int, n)
	res := Result{}
	pool, ownedPool := opts.newPool(g)
	if ownedPool {
		defer pool.Close()
	} else {
		// An external pool may have been repaired toward some other
		// graph since its last use here; force the first acquisition of
		// every entry to re-diff against this run's start (a no-op diff
		// or stamp skip when nothing actually changed), and drop the
		// response memo, which a different responder may have recorded.
		pool.Invalidate()
		pool.ResetResponseMemo()
	}
	startJournal(d, pool)
	respond := respondWith(g, pool, opts)
	par := opts.Parallel && runtime.GOMAXPROCS(0) > 1
	var seen map[uint64][]seenProfile
	if opts.DetectLoops {
		seen = make(map[uint64][]seenProfile)
		recordProfile(seen, core.ProfileOf(d), 0)
	}
	for round := 1; round <= opts.MaxRounds; round++ {
		opts.Scheduler.Order(order, round)
		changed := false
		var speculative []core.BestResponse
		if par {
			// Speculation only pays when the precompute actually runs on
			// spare cores; on one core it would double the work of every
			// round that contains a move.
			if pool != nil {
				speculative = pooledResponsesAgainst(g, d, order, pool, opts.Cached)
			} else {
				speculative = responsesAgainst(g, d, order, opts.Responder)
			}
		}
		for idx, u := range order {
			if g.Budgets[u] == 0 {
				continue
			}
			var br core.BestResponse
			if speculative != nil && !changed {
				// No move has landed this round, so the response
				// precomputed against the round-start profile is exact.
				br = speculative[idx]
			} else {
				// Either no speculation ran or a move landed: the pooled
				// path re-acquires the player's cache, repairing it
				// against the winners' deltas — and, on the parallel
				// path, overlaps the predicted next mover's resync with
				// this player's scan.
				next := -1
				if par && pool != nil {
					next = nextEligible(g, order, idx+1)
				}
				br = respond(d, u, next)
			}
			if br.Improves() {
				d.SetOut(u, br.Strategy)
				pool.Invalidate()
				res.Moves++
				changed = true
			}
		}
		res.Rounds = round
		if opts.RecordTrajectory {
			res.Trajectory = append(res.Trajectory, opts.socialCost(g, d))
		}
		if !changed {
			res.Converged = true
			break
		}
		if opts.DetectLoops {
			p := core.ProfileOf(d)
			if prev, ok := lookupProfile(seen, p); ok {
				res.Loop = true
				res.LoopLength = round - prev
				break
			}
			recordProfile(seen, p, round)
		}
	}
	res.Final = d
	return res, nil
}

// startJournal attaches a bounded mutation journal to the run graph so
// a live stamped pool can repair stale entries from the exact edge
// deltas of the accepted moves instead of a full adjacency diff. The
// bound covers several rounds of typical move churn; overflow just
// falls back to the diff path.
func startJournal(d *graph.Digraph, pool *core.CachePool) {
	if pool != nil && core.StampsEnabled() {
		d.StartJournal(4*d.N() + 64)
	}
}

// nextEligible returns the first player at or after index i in order
// with a positive budget, or -1.
func nextEligible(g *core.Game, order []int, i int) int {
	for ; i < len(order); i++ {
		if g.Budgets[order[i]] != 0 {
			return order[i]
		}
	}
	return -1
}

// responsesAgainst computes every listed player's response against the
// current (fixed) profile on a worker pool; entries for budget-0 players
// are zero values. The graph is only read during the map, so the
// concurrent invocations satisfy the Responder contract.
//
// The pool is bounded so that the distance caches of concurrently running
// responders stay within core.DefaultCacheBudget in aggregate — each
// cached responder holds a 4·n·(n+1)-byte matrix, so an unbounded
// GOMAXPROCS fan-out would multiply the budget by the worker count.
func responsesAgainst(g *core.Game, d *graph.Digraph, players []int, respond core.Responder) []core.BestResponse {
	return sweep.ParallelN(players, responseWorkers(g), func(u int) core.BestResponse {
		if g.Budgets[u] == 0 {
			return core.BestResponse{}
		}
		return respond(g, d, u)
	})
}

// pooledResponsesAgainst is the speculative map over a live cache pool:
// every player's entry is acquired (and repaired) serially — the pool is
// single-goroutine — then the responders run on the worker pool, each on
// its own pinned Deviator, and the entries are unpinned afterwards.
func pooledResponsesAgainst(g *core.Game, d *graph.Digraph, players []int, pool *core.CachePool, respond core.DeviatorResponder) []core.BestResponse {
	dvs := make([]*core.Deviator, len(players))
	for i, u := range players {
		if g.Budgets[u] == 0 {
			continue
		}
		if pool.SkipResponse(d, u) {
			// Round memo: u's previous "no improving move" answer is
			// still exact; the zero response below reproduces it without
			// acquiring (or repairing) u's entry at all.
			continue
		}
		dvs[i] = pool.Acquire(d, u)
	}
	idx := make([]int, len(players))
	for i := range idx {
		idx[i] = i
	}
	brs := sweep.ParallelN(idx, responseWorkers(g), func(i int) core.BestResponse {
		if dvs[i] == nil {
			return core.BestResponse{}
		}
		br := respond(g, d, dvs[i])
		// Release inside the worker: a no-op for pool-owned entries, and
		// for over-budget players it recycles the matrix their responder
		// filled as soon as they finish, keeping the wave's live matrices
		// bounded by the worker count (the invariant responseWorkers is
		// sized around) instead of by the player count.
		dvs[i].Release()
		return br
	})
	for i, u := range players {
		if dvs[i] != nil && !brs[i].Improves() {
			pool.NoteResponse(d, u, false)
		}
	}
	return brs
}

// responseWorkers bounds the speculative fan-out so that the distance
// caches of concurrently running responders stay within
// core.DefaultCacheBudget in aggregate (pool-owned matrices are
// preallocated, but unpooled players still fill their own).
func responseWorkers(g *core.Game) int {
	workers := runtime.GOMAXPROCS(0)
	if budget := core.DefaultCacheBudget; budget > 0 {
		n := int64(g.N())
		if perCache := 4 * n * (n + 1); perCache > 0 {
			if byMem := int(budget / perCache); byMem < workers {
				workers = byMem
			}
		}
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

type seenProfile struct {
	p     core.Profile
	round int
}

func recordProfile(seen map[uint64][]seenProfile, p core.Profile, round int) {
	h := p.Hash()
	seen[h] = append(seen[h], seenProfile{p: p, round: round})
}

func lookupProfile(seen map[uint64][]seenProfile, p core.Profile) (round int, ok bool) {
	for _, sp := range seen[p.Hash()] {
		if sp.p.Equal(p) {
			return sp.round, true
		}
	}
	return 0, false
}

// RandomProfile realizes a uniformly random valid profile of g.
func RandomProfile(g *core.Game, rng *rand.Rand) *graph.Digraph {
	return graph.RandomOutDigraph(g.Budgets, rng)
}

// RunFromRandom is a convenience wrapper: random initial profile, then Run.
func RunFromRandom(g *core.Game, rng *rand.Rand, opts Options) (Result, error) {
	return Run(g, RandomProfile(g, rng), opts)
}
