package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/version"
)

// Server is the HTTP face of a Manager. The API is JSON over the
// routes below; every mutation is durable before the response is
// written.
//
//	POST   /v1/sessions                     create (CreateRequest body)
//	GET    /v1/sessions                     list session stats
//	GET    /v1/sessions/{id}?arcs=1         session info (+profile)
//	DELETE /v1/sessions/{id}                tombstone and close
//	POST   /v1/sessions/{id}/rewire         {player, strategy, weight?}
//	GET    /v1/sessions/{id}/bestresponse   ?player=&responder=&exactCap=
//	GET    /v1/sessions/{id}/equilibrium    ?responder=&exactCap=
//	GET    /v1/sessions/{id}/welfare
//	POST   /v1/sessions/{id}/dynamics       {rounds}
//	GET    /healthz                         liveness + build identity
//	GET    /statsz                          per-session pool counters
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// NewServer wires the routes over m.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/rewire", s.handleRewire)
	s.mux.HandleFunc("GET /v1/sessions/{id}/bestresponse", s.handleBestResponse)
	s.mux.HandleFunc("GET /v1/sessions/{id}/equilibrium", s.handleEquilibrium)
	s.mux.HandleFunc("GET /v1/sessions/{id}/welfare", s.handleWelfare)
	s.mux.HandleFunc("POST /v1/sessions/{id}/dynamics", s.handleDynamics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorBody is the uniform error shape: {"error": "..."}.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// errCode maps session errors onto HTTP statuses: closed sessions are
// gone, everything else a session rejects is a bad request.
func errCode(err error) int {
	if errors.Is(err, ErrSessionClosed) {
		return http.StatusGone
	}
	return http.StatusBadRequest
}

// session resolves {id}, answering 404 itself when absent.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.m.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: no session %q", id))
		return nil, false
	}
	return sess, true
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decoding request body: %w", err)
	}
	return nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess, err := s.m.Create(req)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	info, err := sess.Info(false)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.List())
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	info, err := sess.Info(r.URL.Query().Get("arcs") == "1")
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Delete(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// rewireRequest is the wire form of one explicit strategy change. In an
// arc-weighted session, weight > 0 sets every new arc's weight (a
// rewire to the current strategy is then a pure reweighting).
type rewireRequest struct {
	Player   int   `json:"player"`
	Strategy []int `json:"strategy"`
	Weight   int32 `json:"weight,omitempty"`
}

func (s *Server) handleRewire(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req rewireRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	changed, err := sess.Rewire(req.Player, req.Strategy, req.Weight)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	s.m.Rebalance(sess.ID())
	writeJSON(w, http.StatusOK, map[string]bool{"changed": changed})
}

// queryInt64 parses an optional numeric query parameter.
func queryInt64(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: query %s=%q: want an integer", name, raw)
	}
	return v, nil
}

func (s *Server) handleBestResponse(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	player, err := queryInt64(r, "player")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("player") == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: query player is required"))
		return
	}
	exactCap, err := queryInt64(r, "exactCap")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ans, err := sess.BestResponse(int(player), r.URL.Query().Get("responder"), exactCap)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	s.m.Rebalance(sess.ID())
	writeJSON(w, http.StatusOK, ans)
}

func (s *Server) handleEquilibrium(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	exactCap, err := queryInt64(r, "exactCap")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ans, err := sess.Equilibrium(r.URL.Query().Get("responder"), exactCap)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	s.m.Rebalance(sess.ID())
	writeJSON(w, http.StatusOK, ans)
}

func (s *Server) handleWelfare(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	wf, err := sess.Welfare()
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	s.m.Rebalance(sess.ID())
	writeJSON(w, http.StatusOK, wf)
}

// dynamicsRequest is the wire form of a served dynamics run.
type dynamicsRequest struct {
	Rounds int `json:"rounds"`
}

func (s *Server) handleDynamics(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req dynamicsRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, err := sess.Step(req.Rounds)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	s.m.Rebalance(sess.ID())
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"version":  version.String(),
		"sessions": s.m.Len(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.List())
}

// Run serves on addr until ctx is cancelled, then drains: in-flight
// requests finish (bounded by the grace period), the listener closes,
// and the manager flushes the store manifest. ready, when non-nil,
// receives the bound address once listening (for :0 callers).
func Run(ctx context.Context, addr string, m *Manager, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	hs := &http.Server{Handler: NewServer(m)}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		m.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		hs.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	return m.Close()
}
