package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllPairsPath(t *testing.T) {
	g := PathGraph(6)
	d := AllPairs(g.Underlying())
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			want := u - v
			if want < 0 {
				want = -want
			}
			if d[u][v] != int32(want) {
				t.Fatalf("d[%d][%d] = %d, want %d", u, v, d[u][v], want)
			}
		}
	}
}

func TestAllPairsSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = rng.Intn(3)
			if budgets[i] >= n {
				budgets[i] = n - 1
			}
		}
		g := RandomOutDigraph(budgets, rng)
		d := AllPairs(g.Underlying())
		for u := 0; u < n; u++ {
			if d[u][u] != 0 {
				return false
			}
			for v := 0; v < n; v++ {
				if d[u][v] != d[v][u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAllPairsTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	budgets := make([]int, 20)
	for i := range budgets {
		budgets[i] = 1 + rng.Intn(2)
	}
	g := RandomOutDigraph(budgets, rng)
	d := AllPairs(g.Underlying())
	n := g.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			for w := 0; w < n; w++ {
				if d[u][v] < 0 || d[v][w] < 0 || d[u][w] < 0 {
					continue
				}
				if d[u][w] > d[u][v]+d[v][w] {
					t.Fatalf("triangle inequality violated at %d,%d,%d", u, v, w)
				}
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *Digraph
		want int32
	}{
		{PathGraph(10), 9},
		{CycleGraph(8), 4},
		{CycleGraph(9), 4},
		{StarGraph(7), 2},
		{GridGraph(3, 4), 5},
		{CompleteDigraph(5), 1},
	}
	for i, c := range cases {
		if got := Diameter(c.g.Underlying()); got != c.want {
			t.Errorf("case %d: Diameter = %d, want %d", i, got, c.want)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := NewDigraph(4)
	g.AddArc(0, 1)
	if Diameter(g.Underlying()) != InfDiameter {
		t.Fatal("disconnected graph should have InfDiameter")
	}
	if Diameter(Und{}) != InfDiameter {
		t.Fatal("empty graph should have InfDiameter")
	}
	if Diameter(NewDigraph(1).Underlying()) != 0 {
		t.Fatal("single vertex should have diameter 0")
	}
}

func TestEccentricitiesAgreeWithAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	budgets := make([]int, 30)
	for i := range budgets {
		budgets[i] = 1
	}
	g := RandomOutDigraph(budgets, rng)
	a := g.Underlying()
	eccs, _ := Eccentricities(a)
	d := AllPairs(a)
	for u := range eccs {
		var m int32
		for v := range d[u] {
			if d[u][v] > m {
				m = d[u][v]
			}
		}
		if eccs[u] != m {
			t.Fatalf("ecc[%d] = %d, APSP max %d", u, eccs[u], m)
		}
	}
}

func TestTotalDistances(t *testing.T) {
	g := StarGraph(5)
	sums, conn := TotalDistances(g.Underlying())
	if !conn {
		t.Fatal("star should be connected")
	}
	if sums[0] != 4 {
		t.Fatalf("centre sum = %d, want 4", sums[0])
	}
	for v := 1; v < 5; v++ {
		if sums[v] != 1+2*3 {
			t.Fatalf("leaf %d sum = %d, want 7", v, sums[v])
		}
	}
}

// Exercise the parallel path (n >= 64).
func TestParallelAPSPLargePath(t *testing.T) {
	n := 200
	g := PathGraph(n)
	a := g.Underlying()
	if got := Diameter(a); got != int32(n-1) {
		t.Fatalf("Diameter = %d, want %d", got, n-1)
	}
	sums, conn := TotalDistances(a)
	if !conn {
		t.Fatal("path should be connected")
	}
	// Endpoint sum = 0+1+...+(n-1).
	want := int64(n*(n-1)) / 2
	if sums[0] != want {
		t.Fatalf("endpoint total distance = %d, want %d", sums[0], want)
	}
}
