// Package core implements the bounded budget network creation game
// (b1,...,bn)-BG of Ehsani et al. (SPAA 2011): n players, player i owning
// exactly b_i arcs to other players, distances measured in the undirected
// underlying graph, and per-player cost equal to either the local diameter
// (MAX version) or the total distance to all other players (SUM version),
// with a C_inf = n^2 penalty steering players toward connecting the graph.
//
// The package provides cost evaluation, exact and heuristic best-response
// computation, and parallel Nash / swap-equilibrium verification. It is
// the paper's primary contribution; the graph substrate lives in
// internal/graph.
//
// Best-response evaluation runs on the distance-cache deviation engine
// (distcache.go): a Deviator for player u can materialise the full
// dist_{G-u} matrix (flat n×n int32, filled by word-parallel batched BFS
// on a worker pool), after which every candidate strategy is an O(n)
// min-merge over cached rows instead of a BFS, and the greedy, swap and
// exact responders get incremental forms. The cache respects
// DefaultCacheBudget (4·n·(n+1) bytes needed) and falls back to exact
// BFS evaluation beyond it, so memory stays bounded on large sweeps.
// Deviators are single-goroutine; parallel responders clone them per
// worker around the shared immutable cache.
package core

import (
	"fmt"

	"repro/internal/graph"
)

// Version selects the cost function of the game.
type Version int

const (
	// SUM: cost of u is the sum of distances from u to every other
	// vertex, disconnected pairs counting C_inf = n^2 each.
	SUM Version = iota
	// MAX: cost of u is its local diameter plus (kappa-1)*n^2 where
	// kappa is the number of connected components; the local diameter
	// itself is n^2 whenever the graph is disconnected.
	MAX
)

func (v Version) String() string {
	switch v {
	case SUM:
		return "SUM"
	case MAX:
		return "MAX"
	default:
		return fmt.Sprintf("Version(%d)", int(v))
	}
}

// Game is an instance (b1,...,bn)-BG: a budget vector and a cost version.
// Budgets are nonnegative and strictly less than n.
type Game struct {
	Budgets []int
	Version Version
}

// NewGame validates the budget vector and returns the game instance.
func NewGame(budgets []int, v Version) (*Game, error) {
	n := len(budgets)
	for i, b := range budgets {
		if b < 0 || b >= n {
			return nil, fmt.Errorf("core: budget b[%d]=%d out of range [0,%d)", i, b, n)
		}
	}
	return &Game{Budgets: append([]int(nil), budgets...), Version: v}, nil
}

// MustGame is NewGame that panics on invalid input; for tests and
// constructions with static budgets.
func MustGame(budgets []int, v Version) *Game {
	g, err := NewGame(budgets, v)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of players.
func (g *Game) N() int { return len(g.Budgets) }

// TotalBudget returns b1+...+bn. Instances with total budget >= n-1 admit
// connected realizations (Lemma 3.1: all their equilibria are connected).
func (g *Game) TotalBudget() int {
	s := 0
	for _, b := range g.Budgets {
		s += b
	}
	return s
}

// UniformGame returns the game with all budgets equal to b.
func UniformGame(n, b int, v Version) *Game {
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = b
	}
	return MustGame(budgets, v)
}

// Cinf returns the disconnection distance constant n^2 (as int64; costs
// are accumulated in int64 to keep n * n^2 exact for the instance sizes
// this repo sweeps).
func (g *Game) Cinf() int64 {
	n := int64(g.N())
	return n * n
}

// CheckRealization verifies that d realizes the game: |out(i)| = b_i for
// every player.
func (g *Game) CheckRealization(d *graph.Digraph) error {
	if d.N() != g.N() {
		return fmt.Errorf("core: graph has %d vertices, game has %d players", d.N(), g.N())
	}
	for i, b := range g.Budgets {
		if d.OutDegree(i) != b {
			return fmt.Errorf("core: vertex %d owns %d arcs, budget is %d", i, d.OutDegree(i), b)
		}
	}
	return nil
}

// GameOf derives the budget vector implied by a realization (outdegrees).
func GameOf(d *graph.Digraph, v Version) *Game {
	budgets := make([]int, d.N())
	for i := range budgets {
		budgets[i] = d.OutDegree(i)
	}
	return MustGame(budgets, v)
}
