package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComponentsBasic(t *testing.T) {
	g := NewDigraph(6)
	g.AddArc(0, 1)
	g.AddArc(2, 3)
	g.AddArc(3, 4)
	label, count := Components(g.Underlying())
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if label[0] != label[1] || label[2] != label[3] || label[3] != label[4] {
		t.Fatalf("labels wrong: %v", label)
	}
	if label[0] == label[2] || label[5] == label[0] || label[5] == label[2] {
		t.Fatalf("distinct components share labels: %v", label)
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(PathGraph(5).Underlying()) {
		t.Fatal("path should be connected")
	}
	if !IsConnected(NewDigraph(1).Underlying()) {
		t.Fatal("single vertex is connected")
	}
	if !IsConnected(NewDigraph(0).Underlying()) {
		t.Fatal("empty graph is connected by convention")
	}
	g := NewDigraph(3)
	g.AddArc(0, 1)
	if IsConnected(g.Underlying()) {
		t.Fatal("graph with isolated vertex reported connected")
	}
}

func TestComponentsExcluding(t *testing.T) {
	// Path 0-1-2-3-4; removing 2 yields components {0,1} and {3,4}.
	g := PathGraph(5)
	label, count := ComponentsExcluding(g.Underlying(), 2)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if label[2] != -1 {
		t.Fatalf("excluded vertex labelled %d", label[2])
	}
	if label[0] != label[1] || label[3] != label[4] || label[0] == label[3] {
		t.Fatalf("labels wrong: %v", label)
	}
}

// Property: the deviation component formula count - touched + 1 agrees
// with recomputing components on the rewired graph.
func TestDeviationComponentFormula(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = rng.Intn(2)
		}
		g := RandomOutDigraph(budgets, rng)
		u := rng.Intn(n)
		b := rng.Intn(n - 1)
		cand := make([]int, 0, n-1)
		for v := 0; v < n; v++ {
			if v != u {
				cand = append(cand, v)
			}
		}
		rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		newS := cand[:b]

		label, count := ComponentsExcluding(g.UnderlyingWithout(u), u)
		seen := make([]bool, count+1)
		touched := CountComponentsTouched(label, seen, u, newS, g.In(u))
		predicted := count - touched + 1

		h := g.Clone()
		h.SetOut(u, newS)
		_, actual := Components(h.Underlying())
		return predicted == actual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCountComponentsTouchedCleansBuffer(t *testing.T) {
	g := PathGraph(5)
	label, count := ComponentsExcluding(g.Underlying(), 2)
	seen := make([]bool, count)
	_ = CountComponentsTouched(label, seen, 2, []int{0, 4})
	for i, s := range seen {
		if s {
			t.Fatalf("seen[%d] left dirty", i)
		}
	}
	// Repeats and the skip vertex are ignored.
	d := CountComponentsTouched(label, seen, 2, []int{0, 1, 0}, []int{2})
	if d != 1 {
		t.Fatalf("touched = %d, want 1", d)
	}
}
