// bbncg loadgen drives a mixed create/rewire/bestresponse/dynamics
// workload at a running `bbncg serve` instance through the typed
// client (pkg/bbncg/client) and reports throughput, per-class latency
// quantiles and a latency histogram against the pool's warm-cache
// counters (StampSkips / DeltaRepairs / Resyncs / MemoHits).
//
// The run is three phases over -sessions concurrent sessions:
//
//  1. traffic — each session's worker plays a seeded op mix
//     (bestresponse, improving rewires, welfare, equilibrium, plain
//     and streamed dynamics, cross-session read batches);
//  2. settle — dynamics to convergence plus a full best-response
//     sweep per session, leaving every session's round memo warm;
//  3. hammer — repeated queries against the settled sessions, with
//     pool counters snapshotted around them.
//
// -check turns the report into a gate: zero failed requests, zero
// additional resyncs AND delta-repairs on settled sessions (the warm
// path must serve the hammer phase entirely from stamps and memos),
// a streamed-vs-plain twin run with byte-identical traces, and an
// optional -p99ms ceiling. Gate failures exit 1.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/pkg/bbncg"
	"repro/pkg/bbncg/api"
	"repro/pkg/bbncg/client"
)

// latency classes reported per op kind.
const (
	lcCreate       = "create"
	lcRewire       = "rewire"
	lcBestResponse = "bestresponse"
	lcEquilibrium  = "equilibrium"
	lcWelfare      = "welfare"
	lcDynamics     = "dynamics"
	lcStream       = "stream"
	lcBatch        = "batch"
)

// histEdges are the histogram bucket upper bounds in milliseconds; the
// last bucket is unbounded.
var histEdges = []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}

// recorder accumulates latency samples and failures across workers.
type recorder struct {
	mu      sync.Mutex
	samples map[string][]float64 // class -> latencies in ms
	failed  []string             // failure descriptions (gate + report)
}

func newRecorder() *recorder {
	return &recorder{samples: make(map[string][]float64)}
}

// observe times one op and records its outcome.
func (r *recorder) observe(class string, fn func() error) error {
	start := time.Now()
	err := fn()
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples[class] = append(r.samples[class], ms)
	if err != nil {
		r.failed = append(r.failed, fmt.Sprintf("%s: %v", class, err))
	}
	return err
}

// classStats is one op class's latency summary.
type classStats struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50ms"`
	P90   float64 `json:"p90ms"`
	P99   float64 `json:"p99ms"`
	Max   float64 `json:"maxMs"`
}

// histBucket is one cumulative histogram bucket (Prometheus-style le).
type histBucket struct {
	LE    float64 `json:"leMs"` // 0 marks the +Inf bucket
	Count int     `json:"count"`
}

// poolCounters are the warm-cache ladder counters summed over sessions.
type poolCounters struct {
	StampSkips   int64 `json:"stampSkips"`
	DeltaRepairs int64 `json:"deltaRepairs"`
	Resyncs      int64 `json:"resyncs"`
	MemoHits     int64 `json:"memoHits"`
}

func sumPool(ss []api.SessionStats, ids map[string]bool) poolCounters {
	var pc poolCounters
	for _, st := range ss {
		if !ids[st.ID] {
			continue
		}
		pc.StampSkips += st.Pool.StampSkips
		pc.DeltaRepairs += st.Pool.DeltaRepairs
		pc.Resyncs += st.Pool.Resyncs
		pc.MemoHits += st.Pool.MemoHits
	}
	return pc
}

func (a poolCounters) sub(b poolCounters) poolCounters {
	return poolCounters{
		StampSkips:   a.StampSkips - b.StampSkips,
		DeltaRepairs: a.DeltaRepairs - b.DeltaRepairs,
		Resyncs:      a.Resyncs - b.Resyncs,
		MemoHits:     a.MemoHits - b.MemoHits,
	}
}

// report is the loadgen output (-json emits it verbatim).
type report struct {
	Sessions    int     `json:"sessions"`
	OpsPerSess  int     `json:"opsPerSession"`
	Seed        int64   `json:"seed"`
	DurationSec float64 `json:"durationSec"`
	Requests    int     `json:"requests"`
	OpsPerSec   float64 `json:"opsPerSec"`
	Failed      int     `json:"failed"`

	Classes   map[string]classStats `json:"classes"`
	Histogram []histBucket          `json:"histogramMs"`

	// Traffic counts the whole run's counter movement; Hammer is the
	// settled-phase delta the zero-resync gate asserts on.
	Traffic poolCounters `json:"traffic"`
	Hammer  poolCounters `json:"hammer"`

	StreamByteIdentical *bool   `json:"streamByteIdentical,omitempty"`
	WorstP99            float64 `json:"worstP99ms"`
}

func loadgenMain(args []string) {
	fs := flag.NewFlagSet("bbncg loadgen", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "serve instance to drive (host:port or URL)")
	sessions := fs.Int("sessions", 8, "concurrent sessions to create and drive")
	n := fs.Int("n", 24, "players per session")
	b := fs.Int("b", 2, "budget per player (random graph generator)")
	seed := fs.Int64("seed", 1, "workload seed (graphs and op mixes are deterministic in it)")
	ops := fs.Int("ops", 120, "traffic ops per session before the settle phase")
	p99ms := fs.Float64("p99ms", 0, "with -check: fail if any op class's p99 exceeds this many ms (0 = no ceiling)")
	check := fs.Bool("check", false, "assert the gates: zero failed requests, zero settled resyncs/repairs, stream-vs-plain byte identity")
	jsonOut := fs.String("json", "", "write the JSON report to this path (\"-\" = stdout)")
	keep := fs.Bool("keep", false, "leave the loadgen sessions on the server (default deletes them)")
	key := fs.String("key", "loadgen", "X-Api-Key identifying this client to the server's quota")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bbncg loadgen -addr HOST:PORT [-sessions N] [-n N] [-b N] [-seed N] [-ops N] [-check [-p99ms MS]] [-json PATH] [-keep]")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 0 || *sessions < 1 {
		fs.Usage()
		os.Exit(2)
	}
	c := client.New(*addr, client.WithAPIKey(*key))
	ctx := context.Background()
	if _, err := c.Health(ctx); err != nil {
		fatal(fmt.Errorf("loadgen: no serve instance at %s: %w", *addr, err))
	}
	if vi, err := c.Versions(ctx); err != nil || vi.API != api.Version {
		fatal(fmt.Errorf("loadgen: server speaks %q, client %q (%v)", vi.API, api.Version, err))
	}

	rec := newRecorder()
	ids := make([]string, *sessions)
	idSet := make(map[string]bool, *sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("loadgen-%d-%d", *seed, i)
		idSet[ids[i]] = true
	}
	specOf := func(i int) *bbncg.GeneratorSpec {
		return &bbncg.GeneratorSpec{Kind: "random", N: *n, B: *b, Seed: *seed*1000 + int64(i)}
	}
	cleanup := func(all []string) {
		for _, id := range all {
			c.DeleteSession(ctx, id) //nolint:errcheck // absent ids are fine
		}
	}
	cleanup(ids) // a previous run may have left them behind (-keep)

	start := time.Now()
	baseline, err := c.Stats(ctx)
	if err != nil {
		fatal(fmt.Errorf("loadgen: statsz: %w", err))
	}
	before := sumPool(baseline.Sessions, idSet)

	// Phase 1 — create, then seeded mixed traffic, one worker per
	// session. Batches are read-only across sessions, so workers stay
	// independent while the batch path still crosses them.
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(i)*7919))
			err := rec.observe(lcCreate, func() error {
				_, err := c.CreateSession(ctx, api.CreateRequest{ID: id, Graph: specOf(i)})
				return err
			})
			if err != nil {
				return
			}
			for op := 0; op < *ops; op++ {
				player := rng.Intn(*n)
				switch rng.Intn(10) {
				case 0, 1, 2: // query a best response
					rec.observe(lcBestResponse, func() error { //nolint:errcheck
						_, err := c.BestResponse(ctx, id, player, "", 0)
						return err
					})
				case 3, 4: // apply an improving move when one exists
					br, err := c.BestResponse(ctx, id, player, "", 0)
					if err != nil || !br.Improves {
						continue
					}
					rec.observe(lcRewire, func() error { //nolint:errcheck
						_, err := c.Rewire(ctx, id, api.RewireRequest{Player: player, Strategy: br.Strategy})
						return err
					})
				case 5:
					rec.observe(lcWelfare, func() error { //nolint:errcheck
						_, err := c.Welfare(ctx, id)
						return err
					})
				case 6:
					rec.observe(lcEquilibrium, func() error { //nolint:errcheck
						_, err := c.Equilibrium(ctx, id, "", 0)
						return err
					})
				case 7:
					rec.observe(lcDynamics, func() error { //nolint:errcheck
						_, err := c.Dynamics(ctx, id, 1+rng.Intn(3))
						return err
					})
				case 8:
					rec.observe(lcStream, func() error { //nolint:errcheck
						_, err := c.StreamDynamics(ctx, id, 1+rng.Intn(3), 0, nil)
						return err
					})
				case 9: // cross-session read batch
					other := ids[rng.Intn(len(ids))]
					rec.observe(lcBatch, func() error { //nolint:errcheck
						res, err := c.Batch(ctx, []api.BatchOp{
							{Session: id, Op: api.OpWelfare},
							{Session: other, Op: api.OpBestResponse, Player: player},
							{Session: other, Op: api.OpInfo},
						})
						if err != nil {
							return err
						}
						for _, item := range res.Results {
							// The batched session may not exist yet while
							// workers are still creating; that is the one
							// tolerated per-op error.
							if item.Error != nil && item.Error.Code != api.CodeNotFound {
								return fmt.Errorf("batch op %s on %s: %s", item.Op, item.Session, item.Error.Message)
							}
						}
						return nil
					})
				}
			}
		}(i, id)
	}
	wg.Wait()

	// Phase 2 — settle: dynamics to convergence plus a full
	// best-response sweep per session warms every memo.
	for _, id := range ids {
		rep, err := c.Dynamics(ctx, id, 10_000)
		if err != nil {
			fatal(fmt.Errorf("loadgen: settling %s: %w", id, err))
		}
		if !rep.Converged {
			fatal(fmt.Errorf("loadgen: %s did not converge in 10k rounds", id))
		}
		for u := 0; u < *n; u++ {
			if _, err := c.BestResponse(ctx, id, u, "", 0); err != nil {
				fatal(fmt.Errorf("loadgen: settling %s: %w", id, err))
			}
		}
	}

	// Phase 3 — hammer the settled sessions with the counters bracketed:
	// every query must ride stamps and memos, never the resync ladder.
	preHammer, err := c.Stats(ctx)
	if err != nil {
		fatal(fmt.Errorf("loadgen: statsz: %w", err))
	}
	for round := 0; round < 3; round++ {
		for _, id := range ids {
			rec.observe(lcEquilibrium, func() error { //nolint:errcheck
				_, err := c.Equilibrium(ctx, id, "", 0)
				return err
			})
			for u := 0; u < *n; u++ {
				rec.observe(lcBestResponse, func() error { //nolint:errcheck
					_, err := c.BestResponse(ctx, id, u, "", 0)
					return err
				})
			}
		}
	}
	postHammer, err := c.Stats(ctx)
	if err != nil {
		fatal(fmt.Errorf("loadgen: statsz: %w", err))
	}

	rep := rec.buildReport(time.Since(start))
	rep.Sessions = *sessions
	rep.OpsPerSess = *ops
	rep.Seed = *seed
	rep.Traffic = sumPool(postHammer.Sessions, idSet).sub(before)
	rep.Hammer = sumPool(postHammer.Sessions, idSet).sub(sumPool(preHammer.Sessions, idSet))

	// Twin check: a streamed run and a plain run of the same fresh seed
	// must produce byte-identical traces.
	if *check {
		identical, err := twinStreamCheck(ctx, c, *seed, *n, *b)
		if err != nil {
			fatal(fmt.Errorf("loadgen: twin stream check: %w", err))
		}
		rep.StreamByteIdentical = &identical
	}

	if !*keep {
		cleanup(ids)
	}

	if err := rep.emit(*jsonOut); err != nil {
		fatal(err)
	}
	rep.printSummary(os.Stderr)
	if *check {
		if err := rep.gate(*p99ms, rec); err != nil {
			fatal(fmt.Errorf("loadgen: GATE FAILED: %w", err))
		}
		fmt.Fprintln(os.Stderr, "loadgen: all gates passed")
	}
}

// twinStreamCheck creates two sessions from one spec, runs one plain
// and one streamed to convergence, and compares the marshalled traces
// byte for byte.
func twinStreamCheck(ctx context.Context, c *client.Client, seed int64, n, b int) (bool, error) {
	spec := &bbncg.GeneratorSpec{Kind: "random", N: n, B: b, Seed: seed * 31}
	idA := fmt.Sprintf("loadgen-twin-%d-a", seed)
	idB := fmt.Sprintf("loadgen-twin-%d-b", seed)
	for _, id := range []string{idA, idB} {
		c.DeleteSession(ctx, id) //nolint:errcheck // absent is fine
		if _, err := c.CreateSession(ctx, api.CreateRequest{ID: id, Graph: spec}); err != nil {
			return false, err
		}
	}
	defer func() {
		c.DeleteSession(ctx, idA) //nolint:errcheck
		c.DeleteSession(ctx, idB) //nolint:errcheck
	}()
	plain, err := c.Dynamics(ctx, idA, 10_000)
	if err != nil {
		return false, err
	}
	var streamed []api.RoundTrace
	res, err := c.StreamDynamics(ctx, idB, 10_000, 0, func(rt api.RoundTrace) error {
		streamed = append(streamed, rt)
		return nil
	})
	if err != nil {
		return false, err
	}
	if !res.Summary.Converged || len(streamed) != len(plain.Trace) {
		return false, nil
	}
	for i := range streamed {
		got, err := json.Marshal(streamed[i])
		if err != nil {
			return false, err
		}
		want, err := json.Marshal(plain.Trace[i])
		if err != nil {
			return false, err
		}
		if string(got) != string(want) {
			return false, nil
		}
	}
	return true, nil
}

// buildReport folds the samples into quantiles and the histogram.
func (r *recorder) buildReport(elapsed time.Duration) *report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &report{
		DurationSec: elapsed.Seconds(),
		Failed:      len(r.failed),
		Classes:     make(map[string]classStats, len(r.samples)),
	}
	counts := make([]int, len(histEdges)+1)
	for class, xs := range r.samples {
		rep.Requests += len(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		q := func(p float64) float64 {
			if len(sorted) == 0 {
				return 0
			}
			i := int(p * float64(len(sorted)-1))
			return sorted[i]
		}
		cs := classStats{Count: len(sorted), P50: q(0.50), P90: q(0.90), P99: q(0.99), Max: sorted[len(sorted)-1]}
		rep.Classes[class] = cs
		if cs.P99 > rep.WorstP99 {
			rep.WorstP99 = cs.P99
		}
		for _, x := range xs {
			i := sort.SearchFloat64s(histEdges, x)
			counts[i]++
		}
	}
	if rep.DurationSec > 0 {
		rep.OpsPerSec = float64(rep.Requests) / rep.DurationSec
	}
	for i, le := range histEdges {
		rep.Histogram = append(rep.Histogram, histBucket{LE: le, Count: counts[i]})
	}
	rep.Histogram = append(rep.Histogram, histBucket{LE: 0, Count: counts[len(histEdges)]})
	return rep
}

// emit writes the JSON report to path ("" skips, "-" is stdout).
func (rep *report) emit(path string) error {
	if path == "" {
		return nil
	}
	var out *os.File
	if path == "-" {
		out = os.Stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// printSummary renders the human-readable digest on w.
func (rep *report) printSummary(w *os.File) {
	fmt.Fprintf(w, "loadgen: %d sessions, %d requests in %.2fs (%.0f ops/s), %d failed\n",
		rep.Sessions, rep.Requests, rep.DurationSec, rep.OpsPerSec, rep.Failed)
	classes := make([]string, 0, len(rep.Classes))
	for class := range rep.Classes {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		cs := rep.Classes[class]
		fmt.Fprintf(w, "loadgen:   %-13s %6d ops  p50 %7.2fms  p90 %7.2fms  p99 %7.2fms\n",
			class, cs.Count, cs.P50, cs.P90, cs.P99)
	}
	fmt.Fprintf(w, "loadgen: traffic counters: +%d stampSkips +%d deltaRepairs +%d resyncs +%d memoHits\n",
		rep.Traffic.StampSkips, rep.Traffic.DeltaRepairs, rep.Traffic.Resyncs, rep.Traffic.MemoHits)
	fmt.Fprintf(w, "loadgen: settled hammer:   +%d stampSkips +%d deltaRepairs +%d resyncs +%d memoHits\n",
		rep.Hammer.StampSkips, rep.Hammer.DeltaRepairs, rep.Hammer.Resyncs, rep.Hammer.MemoHits)
}

// gate enforces the -check assertions.
func (rep *report) gate(p99Ceiling float64, rec *recorder) error {
	var errs []error
	if rep.Failed > 0 {
		rec.mu.Lock()
		first := rec.failed[0]
		rec.mu.Unlock()
		errs = append(errs, fmt.Errorf("%d failed request(s), first: %s", rep.Failed, first))
	}
	if rep.Hammer.Resyncs != 0 || rep.Hammer.DeltaRepairs != 0 {
		errs = append(errs, fmt.Errorf("settled sessions left the warm path: +%d resyncs +%d deltaRepairs during the hammer phase",
			rep.Hammer.Resyncs, rep.Hammer.DeltaRepairs))
	}
	if rep.Hammer.MemoHits == 0 {
		errs = append(errs, errors.New("settled hammer phase recorded no memo hits (queries not riding the round memo)"))
	}
	if rep.StreamByteIdentical != nil && !*rep.StreamByteIdentical {
		errs = append(errs, errors.New("streamed trace differs from the plain response"))
	}
	if p99Ceiling > 0 && rep.WorstP99 > p99Ceiling {
		errs = append(errs, fmt.Errorf("worst class p99 %.2fms exceeds the %.2fms ceiling", rep.WorstP99, p99Ceiling))
	}
	return errors.Join(errs...)
}
