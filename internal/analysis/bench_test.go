package analysis

import (
	"testing"

	"repro/internal/construct"
	"repro/internal/core"
)

func BenchmarkAuditUnitBudget(b *testing.B) {
	d, _, err := construct.UnitSatellite(64, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AuditUnitBudget(d)
	}
}

func BenchmarkAuditTreeSumPath(b *testing.B) {
	d, _, err := construct.PerfectBinaryTree(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AuditTreeSumPath(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxTreeBallRadius(b *testing.B) {
	d, _, err := construct.PerfectBinaryTree(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxTreeBallRadius(d)
	}
}

func BenchmarkFoldExperiment(b *testing.B) {
	tree, _, err := construct.PerfectBinaryTree(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg := core.NewWeighted(tree.Clone())
		if _, err := FoldExperiment(wg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitGrowth(b *testing.B) {
	ns := []float64{8, 16, 32, 64, 128, 256, 512, 1024}
	ys := []float64{3, 4, 4, 5, 5, 6, 6, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitGrowth(ns, ys); err != nil {
			b.Fatal(err)
		}
	}
}
