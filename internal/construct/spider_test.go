package construct

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestSpiderShape(t *testing.T) {
	for k := 1; k <= 6; k++ {
		d, budgets, err := Spider(k)
		if err != nil {
			t.Fatal(err)
		}
		n := 3*k + 1
		if d.N() != n {
			t.Fatalf("k=%d: n = %d, want %d", k, d.N(), n)
		}
		if d.ArcCount() != n-1 {
			t.Fatalf("k=%d: arcs = %d, want %d (tree)", k, d.ArcCount(), n-1)
		}
		sum := 0
		for _, b := range budgets {
			sum += b
		}
		if sum != n-1 {
			t.Fatalf("k=%d: budget sum = %d, want n-1 = %d (Tree-BG)", k, sum, n-1)
		}
		a := d.Underlying()
		if !graph.IsConnected(a) {
			t.Fatalf("k=%d: spider disconnected", k)
		}
		if diam := graph.Diameter(a); diam != int32(SpiderDiameter(k)) {
			t.Fatalf("k=%d: diameter = %d, want %d", k, diam, SpiderDiameter(k))
		}
	}
}

func TestSpiderBudgets(t *testing.T) {
	_, budgets, err := Spider(4)
	if err != nil {
		t.Fatal(err)
	}
	// w and the three path ends have budget 0; x1,y1,z1 have budget 2.
	if budgets[0] != 0 {
		t.Fatal("centre should have budget 0")
	}
	for leg := 0; leg < 3; leg++ {
		first := leg*4 + 1
		last := leg*4 + 4
		if budgets[first] != 2 {
			t.Fatalf("leg head %d budget = %d, want 2", first, budgets[first])
		}
		if budgets[last] != 0 {
			t.Fatalf("leg end %d budget = %d, want 0", last, budgets[last])
		}
	}
}

func TestSpiderIsMAXEquilibrium(t *testing.T) {
	// Theorem 3.2: the spider is a Nash equilibrium of the MAX version,
	// despite its Theta(n) diameter.
	for k := 2; k <= 5; k++ {
		d, budgets, err := Spider(k)
		if err != nil {
			t.Fatal(err)
		}
		g := core.MustGame(budgets, core.MAX)
		dev, err := g.VerifyNash(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dev != nil {
			t.Fatalf("k=%d: spider not a MAX equilibrium: %v", k, dev)
		}
	}
}

func TestLargeSpiderIsNotSUMEquilibrium(t *testing.T) {
	// Theorem 3.3 caps SUM tree equilibria at O(log n) diameter, so a
	// large spider (diameter 16 at n = 25) must admit a SUM deviation.
	d, budgets, err := Spider(8)
	if err != nil {
		t.Fatal(err)
	}
	g := core.MustGame(budgets, core.SUM)
	dev, err := g.VerifyNash(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil {
		t.Fatal("large spider verified as SUM equilibrium, contradicting Theorem 3.3")
	}
}

func TestSpiderRejectsBadK(t *testing.T) {
	if _, _, err := Spider(0); err == nil {
		t.Fatal("Spider(0) accepted")
	}
}
